# coordattack — build, test, and reproduction targets.

GO ?= go

.PHONY: all build test test-race bench report quick-report fault-demo fuzz clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) vet ./...
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# Full-fidelity reproduction report (EXPERIMENTS.md body).
report:
	$(GO) run ./cmd/coordbench -markdown -out /tmp/coordattack-report.md
	@echo "report written to /tmp/coordattack-report.md"

quick-report:
	$(GO) run ./cmd/coordbench -quick

# Crash-fault injection on the two-generals good run: liveness drops from
# certainty to the fault-equivalent exact value while Pr[PA] stays under
# the Theorem 5.4 ceiling.
fault-demo:
	$(GO) run ./cmd/coordsim -protocol s:0.1 -graph pair -rounds 10 -run good -fault crash:2@4 -mc 20000

fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/run/

clean:
	$(GO) clean ./...
