# coordattack — build, test, and reproduction targets.

GO ?= go

.PHONY: all build test test-race bench report quick-report fuzz clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) vet ./...
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# Full-fidelity reproduction report (EXPERIMENTS.md body).
report:
	$(GO) run ./cmd/coordbench -markdown -out /tmp/coordattack-report.md
	@echo "report written to /tmp/coordattack-report.md"

quick-report:
	$(GO) run ./cmd/coordbench -quick

fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/run/

clean:
	$(GO) clean ./...
