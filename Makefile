# coordattack — build, test, and reproduction targets.

GO ?= go

.PHONY: all build test test-race bench bench-json bench-check report quick-report fault-demo service-demo sweep-demo persist-demo chaos-demo queue-demo cluster-demo cluster-chaos-demo cluster-hints-demo fuzz fuzz-spec clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) vet ./...
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# Throughput baseline: run the fixed protocol × graph × engine matrix
# and check in the next BENCH_N.json (compare against the previous one
# before merging a perf-sensitive change).
bench-json:
	@set -e; \
	n=$$(ls BENCH_*.json 2>/dev/null | wc -l); \
	n=$$(( n + 1 )); \
	$(GO) run ./cmd/coordbench -bench -out BENCH_$$n.json; \
	echo "wrote BENCH_$$n.json"

# Perf-regression smoke gate (CI): a quick matrix run must stay within
# 2x of the last reference-engine baseline. The fast engines beat it by
# an order of magnitude, so only an accidental fallback to the
# reference path (or a genuine engine regression) trips this.
bench-check:
	$(GO) run ./cmd/coordbench -bench -trials 2000 -baseline BENCH_1.json -max-slowdown 2 -out /dev/null

# Full-fidelity reproduction report (EXPERIMENTS.md body).
report:
	$(GO) run ./cmd/coordbench -markdown -out /tmp/coordattack-report.md
	@echo "report written to /tmp/coordattack-report.md"

quick-report:
	$(GO) run ./cmd/coordbench -quick

# Crash-fault injection on the two-generals good run: liveness drops from
# certainty to the fault-equivalent exact value while Pr[PA] stays under
# the Theorem 5.4 ceiling.
fault-demo:
	$(GO) run ./cmd/coordsim -protocol s:0.1 -graph pair -rounds 10 -run good -fault crash:2@4 -mc 20000

# Memoization demo: boot coordd, run the same job twice, and show the
# second answer coming straight from the result cache (/metrics).
service-demo:
	$(GO) build -o /tmp/coordd ./cmd/coordd
	@set -e; \
	/tmp/coordd -addr 127.0.0.1:8344 & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	for i in $$(seq 50); do \
		curl -sf http://127.0.0.1:8344/healthz >/dev/null && break; sleep 0.1; \
	done; \
	spec='{"protocol": "s:0.1", "rounds": 10, "trials": 20000, "seed": 7}'; \
	id=$$(curl -s http://127.0.0.1:8344/v1/jobs -d "$$spec" \
		| sed -n 's/.*"id": "\([^"]*\)".*/\1/p'); \
	echo "submitted $$id; polling..."; \
	while curl -s http://127.0.0.1:8344/v1/jobs/$$id \
		| grep -Eq '"state": "(queued|running)"'; do sleep 0.2; done; \
	curl -s http://127.0.0.1:8344/v1/jobs/$$id; echo; \
	echo "resubmitting the identical spec:"; \
	curl -s http://127.0.0.1:8344/v1/jobs -d "$$spec" | grep -E '"(state|cached)"'; \
	curl -s http://127.0.0.1:8344/metrics | grep ^coordd_cache

# Tradeoff-table demo: boot coordd, sweep rounds N × epsilon with the
# random-subset run sampler, and print the rolled-up L/U table. Down the
# diagonal (epsilon ≈ 1/(2N)) the measured ratio stays under N — the
# paper's L(F,R) ≤ ε·L(R) tradeoff (Theorem 5.4) made concrete over
# N ∈ {10, 100, 1000}. Takes a minute or two.
sweep-demo:
	$(GO) build -o /tmp/coordd ./cmd/coordd
	$(GO) build -o /tmp/coordbench ./cmd/coordbench
	@set -e; \
	/tmp/coordd -addr 127.0.0.1:8345 -workers 4 & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	for i in $$(seq 50); do \
		curl -sf http://127.0.0.1:8345/healthz >/dev/null && break; sleep 0.1; \
	done; \
	/tmp/coordbench -server http://127.0.0.1:8345 -sweep '{"base": {"sampler": "subset", "trials": 40000, "seed": 9}, "axes": {"rounds": [10, 100, 1000], "epsilon": [0.05, 0.005, 0.0005]}}'

# Durability demo: compute a result into an on-disk store, kill the
# daemon, restart it over the same directory, and watch the identical
# spec come back as a cache hit with the engine never having run.
persist-demo:
	$(GO) build -o /tmp/coordd ./cmd/coordd
	@set -e; \
	store=$$(mktemp -d); \
	spec='{"protocol": "s:0.1", "rounds": 10, "trials": 20000, "seed": 7}'; \
	/tmp/coordd -addr 127.0.0.1:8346 -store-dir $$store & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	for i in $$(seq 50); do \
		curl -sf http://127.0.0.1:8346/healthz >/dev/null && break; sleep 0.1; \
	done; \
	id=$$(curl -s http://127.0.0.1:8346/v1/jobs -d "$$spec" \
		| sed -n 's/.*"id": "\([^"]*\)".*/\1/p'); \
	echo "submitted $$id; polling..."; \
	while curl -s http://127.0.0.1:8346/v1/jobs/$$id \
		| grep -Eq '"state": "(queued|running)"'; do sleep 0.2; done; \
	echo "killing coordd and restarting over $$store"; \
	kill -TERM $$pid; wait $$pid || true; \
	/tmp/coordd -addr 127.0.0.1:8346 -store-dir $$store & pid=$$!; \
	for i in $$(seq 50); do \
		curl -sf http://127.0.0.1:8346/healthz >/dev/null && break; sleep 0.1; \
	done; \
	echo "resubmitting the identical spec after restart:"; \
	curl -s http://127.0.0.1:8346/v1/jobs -d "$$spec" | grep -E '"(state|cached)"'; \
	curl -s http://127.0.0.1:8346/metrics | grep -E '^coordd_(engine_runs|store_hits)_total'

# Chaos soak under the race detector: a stored daemon rides a
# fault-injected filesystem through healthy → disk outage → recovery
# while the harness asserts the operational invariants — no job lost or
# double-run (engine runs == distinct keys), the store degrades and
# un-degrades without a restart (>= 1 recovery), and injected engine
# panics fail only their own job.
chaos-demo:
	$(GO) test -race -v -run 'TestSoakDegradeRecoverExactlyOnce|TestEngineChaosPanicsAreIsolated' ./internal/chaos/

# Durable-queue demo: load a single-worker daemon with a backlog, kill
# it with SIGKILL (no drain, no goodbye), restart over the same
# -queue-dir, and watch the journal re-admit every accepted-but-
# unfinished job and run the backlog to completion — exactly once.
queue-demo:
	$(GO) build -o /tmp/coordd ./cmd/coordd
	@set -e; \
	qdir=$$(mktemp -d); \
	/tmp/coordd -addr 127.0.0.1:8347 -workers 1 -queue-dir $$qdir & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	for i in $$(seq 50); do \
		curl -sf http://127.0.0.1:8347/healthz >/dev/null && break; sleep 0.1; \
	done; \
	for seed in 1 2 3 4; do \
		curl -s http://127.0.0.1:8347/v1/jobs \
			-d "{\"protocol\": \"s:0.5\", \"rounds\": 10, \"trials\": 2000000, \"seed\": $$seed}" >/dev/null; \
	done; \
	echo "4 jobs accepted; SIGKILL with the queue non-empty"; \
	kill -9 $$pid; wait $$pid || true; \
	/tmp/coordd -addr 127.0.0.1:8347 -workers 2 -queue-dir $$qdir & pid=$$!; \
	for i in $$(seq 50); do \
		curl -sf http://127.0.0.1:8347/healthz >/dev/null && break; sleep 0.1; \
	done; \
	echo "restarted; waiting for the replayed backlog to settle"; \
	while curl -s http://127.0.0.1:8347/v1/jobs \
		| grep -Eq '"state": "(queued|running)"'; do sleep 0.2; done; \
	curl -s http://127.0.0.1:8347/v1/jobs | grep -E '"(id|state)":'; \
	curl -s http://127.0.0.1:8347/metrics | grep -E '^coordd_(queue_replayed_total|engine_runs_total)'

# Three-node cluster demo: static peers with consistent-hash result
# routing and idle-node work stealing. Proves (a) a key computed on A is
# served to B and C with their engines never running, (b) a backlog on A
# is stolen by idle peers and every job settles exactly once (total
# engine runs across the cluster == distinct keys), and (c) killing a
# node leaves the survivors serving.
cluster-demo:
	$(GO) build -o /tmp/coordd ./cmd/coordd
	@set -e; \
	root=$$(mktemp -d); \
	peers='127.0.0.1:8351,127.0.0.1:8352,127.0.0.1:8353'; \
	for p in 8351 8352 8353; do \
		mkdir -p $$root/$$p/store $$root/$$p/queue; \
		/tmp/coordd -addr 127.0.0.1:$$p -workers 1 -peers $$peers \
			-steal-interval 250ms \
			-store-dir $$root/$$p/store -queue-dir $$root/$$p/queue \
			& echo $$! > $$root/$$p.pid; \
	done; \
	trap 'kill $$(cat $$root/*.pid) 2>/dev/null || true' EXIT; \
	for p in 8351 8352 8353; do \
		for i in $$(seq 50); do \
			curl -sf http://127.0.0.1:$$p/healthz >/dev/null && break; sleep 0.1; \
		done; \
	done; \
	spec='{"protocol": "s:0.1", "rounds": 10, "trials": 20000, "seed": 41}'; \
	id=$$(curl -s http://127.0.0.1:8351/v1/jobs -d "$$spec" \
		| sed -n 's/.*"id": "\([^"]*\)".*/\1/p'); \
	while curl -s http://127.0.0.1:8351/v1/jobs/$$id \
		| grep -Eq '"state": "(queued|running)"'; do sleep 0.2; done; \
	sleep 2; \
	echo "--- computed on A; same spec on B and C settles with zero engine runs"; \
	for p in 8352 8353; do \
		id=$$(curl -s http://127.0.0.1:$$p/v1/jobs -d "$$spec" \
			| sed -n 's/.*"id": "\([^"]*\)".*/\1/p'); \
		while curl -s http://127.0.0.1:$$p/v1/jobs/$$id \
			| grep -Eq '"state": "(queued|running)"'; do sleep 0.2; done; \
		curl -s http://127.0.0.1:$$p/v1/jobs/$$id | grep -Eq '"state": "done"'; \
		runs=$$(curl -s http://127.0.0.1:$$p/metrics \
			| sed -n 's/^coordd_engine_runs_total //p'); \
		test "$$runs" = 0; \
		echo "node $$p: done, engine_runs=$$runs"; \
	done; \
	hits=$$(( $$(curl -s http://127.0.0.1:8352/metrics | sed -n 's/^coordd_peer_hits_total //p') \
		+ $$(curl -s http://127.0.0.1:8353/metrics | sed -n 's/^coordd_peer_hits_total //p') )); \
	test $$hits -ge 1; \
	echo "peer hits on B+C: $$hits"; \
	echo "--- 4-job backlog on A: surplus stolen by idle peers"; \
	for seed in 51 52 53 54; do \
		curl -s http://127.0.0.1:8351/v1/jobs \
			-d "{\"protocol\": \"s:0.5\", \"rounds\": 10, \"trials\": 1500000, \"seed\": $$seed}" >/dev/null; \
	done; \
	while curl -s http://127.0.0.1:8351/v1/jobs \
		| grep -Eq '"state": "(queued|running)"'; do sleep 0.3; done; \
	total=0; \
	for p in 8351 8352 8353; do \
		runs=$$(curl -s http://127.0.0.1:$$p/metrics \
			| sed -n 's/^coordd_engine_runs_total //p'); \
		total=$$(( total + runs )); \
	done; \
	test $$total -eq 5; \
	echo "engine runs across the cluster: $$total (5 distinct keys, exactly once)"; \
	donated=$$(curl -s http://127.0.0.1:8351/metrics \
		| sed -n 's/^coordd_jobs_donated_total //p'); \
	test $$donated -ge 1; \
	echo "jobs donated by A: $$donated"; \
	echo "--- killing C with SIGKILL; survivors keep serving"; \
	kill -9 $$(cat $$root/8353.pid); \
	curl -s http://127.0.0.1:8351/v1/jobs \
		-d '{"protocol": "s:0.1", "rounds": 10, "trials": 20000, "seed": 42}' \
		| grep -q '"id"'; \
	echo "A accepted new work with C dead"; \
	/tmp/coordd -addr 127.0.0.1:8353 -workers 1 -peers $$peers \
		-steal-interval 250ms \
		-store-dir $$root/8353/store -queue-dir $$root/8353/queue \
		& echo $$! > $$root/8353.pid; \
	for i in $$(seq 50); do \
		curl -sf http://127.0.0.1:8353/healthz >/dev/null && break; sleep 0.1; \
	done; \
	curl -s http://127.0.0.1:8353/v1/jobs -d "$$spec" | grep -Eq '"cached": true'; \
	echo "restarted C answered the original spec from its disk tier"; \
	echo "cluster-demo: OK"

# Cluster chaos demo: replication + repair under a real SIGKILL. Three
# nodes with -replicas 2 and a fast repair loop settle an 8-key load
# and converge every key onto two nodes; C is then SIGKILLed with a
# fresh backlog in flight and the survivors must serve every
# previously-settled key from their replicas; C restarts over a WIPED
# store directory and the anti-entropy repair loop re-populates it
# until the whole cluster reconverges (every key on >= 2 nodes,
# breakers back to closed).
cluster-chaos-demo:
	$(GO) build -o /tmp/coordd ./cmd/coordd
	@set -e; \
	root=$$(mktemp -d); \
	peers='127.0.0.1:8361,127.0.0.1:8362,127.0.0.1:8363'; \
	boot() { \
		/tmp/coordd -addr 127.0.0.1:$$1 -workers 1 -peers $$peers \
			-replicas 2 -repair-interval 500ms -steal-interval 250ms \
			-store-dir $$root/$$1/store -queue-dir $$root/$$1/queue \
			& echo $$! > $$root/$$1.pid; \
	}; \
	for p in 8361 8362 8363; do \
		mkdir -p $$root/$$p/store $$root/$$p/queue; boot $$p; \
	done; \
	trap 'kill $$(cat $$root/*.pid) 2>/dev/null || true' EXIT; \
	for p in 8361 8362 8363; do \
		for i in $$(seq 50); do \
			curl -sf http://127.0.0.1:$$p/healthz >/dev/null && break; sleep 0.1; \
		done; \
	done; \
	echo "--- settling 8 keys across the cluster"; \
	n=0; \
	for seed in 61 62 63 64 65 66 67 68; do \
		p=$$(( 8361 + n % 3 )); n=$$(( n + 1 )); \
		curl -s http://127.0.0.1:$$p/v1/jobs \
			-d "{\"protocol\": \"s:0.2\", \"rounds\": 10, \"trials\": 20000, \"seed\": $$seed}" >/dev/null; \
	done; \
	for p in 8361 8362 8363; do \
		while curl -s http://127.0.0.1:$$p/v1/jobs \
			| grep -Eq '"state": "(queued|running)"'; do sleep 0.2; done; \
	done; \
	keys=$$(for p in 8361 8362 8363; do curl -s http://127.0.0.1:$$p/v1/jobs; done \
		| sed -n 's/.*"key": "\([0-9a-f]*\)".*/\1/p' | sort -u); \
	test $$(echo "$$keys" | wc -l) -eq 8; \
	converge() { \
		for i in $$(seq 120); do \
			ok=1; \
			for k in $$1; do \
				c=0; \
				for p in 8361 8362 8363; do \
					curl -sf http://127.0.0.1:$$p/v1/peer/results/$$k >/dev/null && c=$$((c+1)) || true; \
				done; \
				test $$c -ge 2 || { ok=0; break; }; \
			done; \
			test $$ok = 1 && return 0; sleep 0.3; \
		done; \
		echo "replica convergence timed out"; return 1; \
	}; \
	converge "$$keys"; \
	echo "all 8 keys replicated onto >= 2 nodes"; \
	echo "--- fresh backlog on A, then SIGKILL C mid-load"; \
	for seed in 71 72 73 74; do \
		curl -s http://127.0.0.1:8361/v1/jobs \
			-d "{\"protocol\": \"s:0.5\", \"rounds\": 10, \"trials\": 1500000, \"seed\": $$seed}" >/dev/null; \
	done; \
	kill -9 $$(cat $$root/8363.pid); \
	for k in $$keys; do \
		curl -sf http://127.0.0.1:8361/v1/peer/results/$$k >/dev/null \
			|| curl -sf http://127.0.0.1:8362/v1/peer/results/$$k >/dev/null; \
	done; \
	echo "survivors serve every previously-settled key with C dead"; \
	while curl -s http://127.0.0.1:8361/v1/jobs \
		| grep -Eq '"state": "(queued|running)"'; do sleep 0.3; done; \
	echo "backlog settled on the survivors"; \
	echo "--- restarting C over a wiped store"; \
	rm -rf $$root/8363/store; mkdir -p $$root/8363/store; \
	boot 8363; \
	for i in $$(seq 50); do \
		curl -sf http://127.0.0.1:8363/healthz >/dev/null && break; sleep 0.1; \
	done; \
	for i in $$(seq 120); do \
		lk=$$(curl -s http://127.0.0.1:8363/v1/admin/cluster \
			| sed -n 's/.*"local_keys": \([0-9]*\).*/\1/p'); \
		test -n "$$lk" && test "$$lk" -ge 1 && break; sleep 0.3; \
	done; \
	test "$$lk" -ge 1; \
	echo "anti-entropy repair re-populated C's wiped store: local_keys=$$lk"; \
	allkeys=$$(for p in 8361 8362; do curl -s http://127.0.0.1:$$p/v1/jobs; done \
		| sed -n 's/.*"key": "\([0-9a-f]*\)".*/\1/p' | sort -u); \
	converge "$$allkeys"; \
	echo "cluster reconverged: every settled key on >= 2 nodes"; \
	for i in $$(seq 120); do \
		curl -s http://127.0.0.1:8361/v1/admin/cluster | grep -q '"breaker": "open"' || break; sleep 0.3; \
	done; \
	! curl -s http://127.0.0.1:8361/v1/admin/cluster | grep -q '"breaker": "open"'; \
	echo "survivor breakers recovered to closed"; \
	echo "cluster-chaos-demo: OK"

# Hinted-handoff demo: a replica down during a write is healed by hints
# alone — anti-entropy repair is OFF (-repair-interval 0) the whole
# time. Three nodes with full replication; C is SIGSTOPped so pushes
# toward it hang into failures and the failure detector marks it dead;
# a load settles on A and queues durable hints; SIGCONT revives C and
# the next successful ping drains the hints until C serves every key
# having run zero engines and zero repair passes.
cluster-hints-demo:
	$(GO) build -o /tmp/coordd ./cmd/coordd
	@set -e; \
	root=$$(mktemp -d); \
	peers='127.0.0.1:8371,127.0.0.1:8372,127.0.0.1:8373'; \
	for p in 8371 8372 8373; do \
		mkdir -p $$root/$$p/store $$root/$$p/queue; \
		/tmp/coordd -addr 127.0.0.1:$$p -workers 1 -peers $$peers \
			-replicas 3 -repair-interval 0 -steal-interval 0 \
			-probe-interval 200ms -probe-misses 2 \
			-store-dir $$root/$$p/store -queue-dir $$root/$$p/queue \
			& echo $$! > $$root/$$p.pid; \
	done; \
	trap 'kill -9 $$(cat $$root/*.pid) 2>/dev/null || true' EXIT; \
	for p in 8371 8372 8373; do \
		for i in $$(seq 50); do \
			curl -sf http://127.0.0.1:$$p/healthz >/dev/null && break; sleep 0.1; \
		done; \
	done; \
	echo "--- SIGSTOP C: pushes toward it will hang into hint-queued failures"; \
	kill -STOP $$(cat $$root/8373.pid); \
	for seed in 81 82 83; do \
		curl -s http://127.0.0.1:8371/v1/jobs \
			-d "{\"protocol\": \"s:0.2\", \"rounds\": 10, \"trials\": 20000, \"seed\": $$seed}" >/dev/null; \
	done; \
	while curl -s http://127.0.0.1:8371/v1/jobs \
		| grep -Eq '"state": "(queued|running)"'; do sleep 0.2; done; \
	for i in $$(seq 120); do \
		pending=$$(curl -s http://127.0.0.1:8371/metrics \
			| sed -n 's/^coordd_hints_pending //p'); \
		test -n "$$pending" && test "$$pending" -ge 1 && break; sleep 0.2; \
	done; \
	test "$$pending" -ge 1; \
	echo "hints queued on A while C is stopped: pending=$$pending"; \
	echo "--- SIGCONT C: the failure detector's next ping drains the hints"; \
	kill -CONT $$(cat $$root/8373.pid); \
	keys=$$(curl -s http://127.0.0.1:8371/v1/jobs \
		| sed -n 's/.*"key": "\([0-9a-f]*\)".*/\1/p' | sort -u); \
	test $$(echo "$$keys" | wc -l) -eq 3; \
	for i in $$(seq 150); do \
		ok=1; \
		for k in $$keys; do \
			curl -sf http://127.0.0.1:8373/v1/peer/results/$$k >/dev/null || { ok=0; break; }; \
		done; \
		test $$ok = 1 && break; sleep 0.2; \
	done; \
	test $$ok = 1; \
	echo "revived C serves every hinted key"; \
	runs=$$(curl -s http://127.0.0.1:8373/metrics \
		| sed -n 's/^coordd_engine_runs_total //p'); \
	test "$$runs" = 0; \
	echo "C engine runs: $$runs (hints healed it without computing)"; \
	curl -s http://127.0.0.1:8373/v1/admin/cluster | grep -q '"repair_runs": 0'; \
	curl -s http://127.0.0.1:8371/v1/admin/cluster | grep -q '"repair_runs": 0'; \
	echo "zero anti-entropy passes anywhere: hints did all the healing"; \
	delivered=$$(curl -s http://127.0.0.1:8371/metrics \
		| sed -n 's/^coordd_hints_delivered_total //p'); \
	test "$$delivered" -ge 1; \
	echo "hints delivered by A: $$delivered"; \
	echo "cluster-hints-demo: OK"

fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/run/

# Short canonicalization fuzz: the spec→key path must be idempotent and
# spelling-invariant (this is the CI smoke; raise -fuzztime locally).
fuzz-spec:
	$(GO) test -fuzz=FuzzCanonicalize -fuzztime=20s -run '^$$' ./internal/service/

clean:
	$(GO) clean ./...
