// Package impossibility implements the Gray / Halpern-Moses chain
// argument (§1's citation [G], [HM]): no deterministic protocol can
// satisfy validity, agreement, and nontriviality for coordinated attack.
//
// The argument, made executable: start from a run on which the protocol
// attacks everywhere (nontriviality), and peel away tuples one at a time —
// deliveries in descending round order, then inputs. Each removal changes
// the view of exactly one process (the removed message's receiver has no
// surviving causal path to anyone else), so at most one coordinate of the
// output vector can change per step. The chain ends at the empty run,
// where validity forces the all-zero vector; somewhere in between the
// vector was mixed — a concrete run with partial attack. FindViolation
// returns that run.
package impossibility

import (
	"errors"
	"fmt"
	"sort"

	"coordattack/internal/graph"
	"coordattack/internal/protocol"
	"coordattack/internal/run"
	"coordattack/internal/sim"
)

// ErrRandomized is returned when the protocol's outputs depend on its
// random tapes: the chain argument applies only to deterministic
// protocols (randomization is exactly the paper's escape hatch).
var ErrRandomized = errors.New("impossibility: protocol is randomized; chain argument does not apply")

// ErrNotLive is returned when the protocol does not attack everywhere on
// the starting run, so it fails nontriviality there and the chain has
// nowhere to start. (Such a protocol evades the impossibility by being
// useless, not by being clever.)
var ErrNotLive = errors.New("impossibility: protocol does not attack on the starting run")

// ErrNoViolation is returned when the chain reaches the empty run without
// encountering disagreement — possible only if the protocol violates
// validity instead (it attacked with no input), which is reported
// separately, or if determinism was misdetected.
var ErrNoViolation = errors.New("impossibility: chain ended without finding disagreement")

// ErrInvalid is returned when the protocol attacks on the empty run:
// a validity violation, the other horn of the impossibility.
var ErrInvalid = errors.New("impossibility: protocol violates validity on the input-free run")

// Violation is the constructive witness: a run on which the deterministic
// protocol produces partial attack.
type Violation struct {
	// Run is the disagreement run.
	Run *run.Run
	// Outputs is the decision vector on Run (index 1..m; index 0 unused).
	Outputs []bool
	// Steps is how many chain steps were examined before disagreement.
	Steps int
}

// FindViolation runs the chain argument for protocol p on graph g over n
// rounds, starting from the good run with inputs everywhere.
func FindViolation(p protocol.Protocol, g *graph.G, n int) (*Violation, error) {
	start, err := run.Good(g, n, g.Vertices()...)
	if err != nil {
		return nil, err
	}
	return FindViolationFrom(p, g, start)
}

// FindViolationFrom runs the chain argument starting from an arbitrary
// run on which p must attack everywhere.
func FindViolationFrom(p protocol.Protocol, g *graph.G, start *run.Run) (*Violation, error) {
	if g.NumVertices() < 2 {
		return nil, fmt.Errorf("impossibility: need at least 2 generals, got %d", g.NumVertices())
	}
	exec := func(r *run.Run) ([]bool, error) {
		// Two disjoint tape seeds: a deterministic protocol must ignore
		// them. Divergence means randomization.
		o1, err := sim.Outputs(p, g, r, sim.SeedTapes(0x51))
		if err != nil {
			return nil, err
		}
		o2, err := sim.Outputs(p, g, r, sim.SeedTapes(0xA7))
		if err != nil {
			return nil, err
		}
		for i := range o1 {
			if o1[i] != o2[i] {
				return nil, fmt.Errorf("%w (outputs differ on %v)", ErrRandomized, r)
			}
		}
		return o1, nil
	}

	outs, err := exec(start)
	if err != nil {
		return nil, err
	}
	if protocol.Classify(outs) != protocol.TotalAttack {
		return nil, fmt.Errorf("%w: outcome %v on %v", ErrNotLive, protocol.Classify(outs), start)
	}

	cur := start.Clone()
	steps := 0
	examine := func(next *run.Run) (*Violation, error) {
		steps++
		outs, err := exec(next)
		if err != nil {
			return nil, err
		}
		if protocol.Classify(outs) == protocol.PartialAttack {
			return &Violation{Run: next, Outputs: outs, Steps: steps}, nil
		}
		return nil, nil
	}

	// Phase 1: strip deliveries in descending (round, from, to) order, so
	// each removal is invisible to everyone but the receiver.
	deliveries := cur.Deliveries()
	sort.Slice(deliveries, func(a, b int) bool {
		if deliveries[a].Round != deliveries[b].Round {
			return deliveries[a].Round > deliveries[b].Round
		}
		if deliveries[a].From != deliveries[b].From {
			return deliveries[a].From > deliveries[b].From
		}
		return deliveries[a].To > deliveries[b].To
	})
	for _, d := range deliveries {
		next := cur.Clone().Drop(d.From, d.To, d.Round)
		v, err := examine(next)
		if err != nil {
			return nil, err
		}
		if v != nil {
			return v, nil
		}
		cur = next
	}

	// Phase 2: strip inputs; with no deliveries left, removing (v₀,i,0)
	// changes only i's view.
	inputs := cur.Inputs()
	for idx := len(inputs) - 1; idx >= 0; idx-- {
		next := cur.Clone().RemoveInput(inputs[idx])
		v, err := examine(next)
		if err != nil {
			return nil, err
		}
		if v != nil {
			return v, nil
		}
		cur = next
	}

	// Chain exhausted without disagreement: the empty run's outcome
	// decides which impossibility horn the protocol fell on.
	finalOuts, err := exec(cur)
	if err != nil {
		return nil, err
	}
	if protocol.Classify(finalOuts) == protocol.TotalAttack {
		return nil, fmt.Errorf("%w after %d steps", ErrInvalid, steps)
	}
	return nil, fmt.Errorf("%w after %d steps", ErrNoViolation, steps)
}
