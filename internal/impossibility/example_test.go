package impossibility_test

import (
	"fmt"
	"log"

	"coordattack/internal/baseline"
	"coordattack/internal/graph"
	"coordattack/internal/impossibility"
	"coordattack/internal/protocol"
)

// ExampleFindViolation runs the chain argument against the natural
// deterministic protocol and prints the disagreement it is forced into.
func ExampleFindViolation() {
	v, err := impossibility.FindViolation(baseline.NewDetFullInfo(), graph.Pair(), 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("outcome on witness run:", protocol.Classify(v.Outputs))
	fmt.Println("found within chain:", v.Steps >= 1)
	// Output:
	// outcome on witness run: PA
	// found within chain: true
}
