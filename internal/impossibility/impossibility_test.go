package impossibility

import (
	"errors"
	"testing"

	"coordattack/internal/baseline"
	"coordattack/internal/core"
	"coordattack/internal/graph"
	"coordattack/internal/protocol"
	"coordattack/internal/run"
	"coordattack/internal/sim"
)

// constProto always outputs the same decision — the two trivial evasions
// of the impossibility.
type constProto struct{ attack bool }

func (p constProto) Name() string { return "const" }

func (p constProto) NewMachine(cfg protocol.Config) (protocol.Machine, error) {
	return constMachine{attack: p.attack}, nil
}

type constMachine struct{ attack bool }

func (c constMachine) Send(int, graph.ProcID) protocol.Message { return baseline.DetMsg{} }
func (c constMachine) Step(int, []protocol.Received) error     { return nil }
func (c constMachine) Output() bool                            { return c.attack }

func TestFindViolationDetFullInfo(t *testing.T) {
	for _, build := range []func() (*graph.G, error){
		func() (*graph.G, error) { return graph.Complete(2) },
		func() (*graph.G, error) { return graph.Ring(4) },
		func() (*graph.G, error) { return graph.Star(4) },
	} {
		g, err := build()
		if err != nil {
			t.Fatal(err)
		}
		v, err := FindViolation(baseline.NewDetFullInfo(), g, 4)
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		if v.Run == nil || v.Steps < 1 {
			t.Fatalf("%v: degenerate violation %+v", g, v)
		}
		if err := v.Run.Validate(g); err != nil {
			t.Errorf("%v: violating run invalid: %v", g, err)
		}
		// Confirm the witness independently: executing the protocol on
		// the returned run really disagrees.
		oc, err := sim.Outcome(baseline.NewDetFullInfo(), g, v.Run, sim.SeedTapes(999))
		if err != nil {
			t.Fatal(err)
		}
		if oc != protocol.PartialAttack {
			t.Errorf("%v: witness run reproduces %v, want PA", g, oc)
		}
		if got := protocol.Classify(v.Outputs); got != protocol.PartialAttack {
			t.Errorf("%v: recorded outputs classify as %v", g, got)
		}
	}
}

func TestFindViolationDetThreshold(t *testing.T) {
	p, err := baseline.NewDetThreshold(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Pair()
	v, err := FindViolation(p, g, 6)
	if err != nil {
		t.Fatal(err)
	}
	oc, err := sim.Outcome(p, g, v.Run, sim.SeedTapes(1))
	if err != nil {
		t.Fatal(err)
	}
	if oc != protocol.PartialAttack {
		t.Errorf("threshold witness reproduces %v, want PA", oc)
	}
}

func TestNeverAttackerIsNotLive(t *testing.T) {
	_, err := FindViolation(constProto{attack: false}, graph.Pair(), 3)
	if !errors.Is(err, ErrNotLive) {
		t.Errorf("err = %v, want ErrNotLive", err)
	}
}

func TestAlwaysAttackerViolatesValidity(t *testing.T) {
	_, err := FindViolation(constProto{attack: true}, graph.Pair(), 3)
	if !errors.Is(err, ErrInvalid) {
		t.Errorf("err = %v, want ErrInvalid", err)
	}
}

func TestRandomizedProtocolIsRejectedOrEscapes(t *testing.T) {
	// Protocol S is exactly the paper's escape from the impossibility:
	// the chain argument must fail on it — either by detecting
	// randomization or because S does not attack deterministically on
	// the good run. It must never certify a "violation" of a protocol
	// whose worst-case disagreement is a controlled ε... unless the
	// specific sampled tapes genuinely disagree, which the error modes
	// below exclude for this seed choice.
	s := core.MustS(0.1)
	_, err := FindViolation(s, graph.Pair(), 4)
	if err == nil {
		t.Fatal("chain argument 'succeeded' against randomized Protocol S")
	}
	if !errors.Is(err, ErrRandomized) && !errors.Is(err, ErrNotLive) {
		t.Errorf("err = %v, want ErrRandomized or ErrNotLive", err)
	}
}

func TestSingleGeneralRejected(t *testing.T) {
	g := graph.MustNew(1, nil)
	if _, err := FindViolation(baseline.NewDetFullInfo(), g, 2); err == nil {
		t.Error("m=1 accepted")
	}
}

func TestFindViolationFromCustomStart(t *testing.T) {
	// Start from a good run with a single input: the chain still finds
	// disagreement for DetFullInfo.
	g := graph.Pair()
	start, err := run.Good(g, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	v, err := FindViolationFrom(baseline.NewDetFullInfo(), g, start)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Run.SubsetOf(start) {
		t.Error("witness run is not on the chain below the start run")
	}
}

func TestViolationStepsBounded(t *testing.T) {
	// The chain has |M| + |I| steps at most.
	g := graph.Pair()
	start, err := run.Good(g, 5, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	v, err := FindViolationFrom(baseline.NewDetFullInfo(), g, start)
	if err != nil {
		t.Fatal(err)
	}
	if max := start.NumDeliveries() + 2; v.Steps > max {
		t.Errorf("steps = %d > chain length %d", v.Steps, max)
	}
}
