package stats

import (
	"encoding/json"
	"math"
	"testing"
	"testing/quick"
)

func TestNewProportionValidation(t *testing.T) {
	if _, err := NewProportion(1, 0); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := NewProportion(-1, 5); err == nil {
		t.Error("negative hits accepted")
	}
	if _, err := NewProportion(6, 5); err == nil {
		t.Error("hits > trials accepted")
	}
	p, err := NewProportion(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Mean() != 0.75 {
		t.Errorf("Mean = %v, want 0.75", p.Mean())
	}
	if p.String() == "" {
		t.Error("empty String")
	}
}

func TestWilsonContainsMean(t *testing.T) {
	tests := []Proportion{
		{Hits: 0, Trials: 100},
		{Hits: 100, Trials: 100},
		{Hits: 50, Trials: 100},
		{Hits: 1, Trials: 10},
	}
	for _, p := range tests {
		lo, hi := p.Wilson(1.96)
		if lo < 0 || hi > 1 || lo > hi {
			t.Errorf("%v: Wilson = [%v, %v] malformed", p, lo, hi)
		}
		if m := p.Mean(); m < lo-1e-9 || m > hi+1e-9 {
			t.Errorf("%v: mean %v outside Wilson [%v, %v]", p, m, lo, hi)
		}
	}
	lo, hi := (Proportion{}).Wilson(1.96)
	if lo != 0 || hi != 1 {
		t.Errorf("empty proportion Wilson = [%v, %v], want [0,1]", lo, hi)
	}
}

func TestWilsonShrinksWithTrials(t *testing.T) {
	small := Proportion{Hits: 5, Trials: 10}
	large := Proportion{Hits: 500, Trials: 1000}
	sl, sh := small.Wilson(1.96)
	ll, lh := large.Wilson(1.96)
	if lh-ll >= sh-sl {
		t.Errorf("more trials did not shrink interval: %v vs %v", lh-ll, sh-sl)
	}
}

func TestHoeffding(t *testing.T) {
	r, err := HoeffdingRadius(10000, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(math.Log(2000) / 20000)
	if math.Abs(r-want) > 1e-12 {
		t.Errorf("radius = %v, want %v", r, want)
	}
	if _, err := HoeffdingRadius(0, 0.5); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := HoeffdingRadius(10, 1.5); err == nil {
		t.Error("delta > 1 accepted")
	}
	p := Proportion{Hits: 5000, Trials: 10000}
	ok, err := p.Consistent(0.5, 0.001)
	if err != nil || !ok {
		t.Errorf("0.5 estimate inconsistent with 0.5 exact: ok=%v err=%v", ok, err)
	}
	ok, err = p.Consistent(0.9, 0.001)
	if err != nil || ok {
		t.Errorf("0.5 estimate consistent with 0.9 exact: ok=%v err=%v", ok, err)
	}
}

func TestRunningMoments(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Variance() != 0 || r.StdErr() != 0 {
		t.Error("zero-value Running not zeroed")
	}
	data := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range data {
		r.Add(x)
	}
	if r.N() != len(data) {
		t.Errorf("N = %d", r.N())
	}
	if math.Abs(r.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", r.Mean())
	}
	// Sample variance of this classic dataset is 32/7.
	if want := 32.0 / 7; math.Abs(r.Variance()-want) > 1e-12 {
		t.Errorf("Variance = %v, want %v", r.Variance(), want)
	}
	if r.StdDev() <= 0 || r.StdErr() <= 0 {
		t.Error("spread stats not positive")
	}
}

func TestIntHistogram(t *testing.T) {
	var h IntHistogram
	if h.Total() != 0 || h.Mean() != 0 || h.Frac(3) != 0 {
		t.Error("zero-value histogram not empty")
	}
	for _, v := range []int{3, 1, 3, 2, 3} {
		h.Add(v)
	}
	if h.Total() != 5 || h.Count(3) != 3 || h.Count(9) != 0 {
		t.Errorf("counts wrong: total=%d c3=%d", h.Total(), h.Count(3))
	}
	if got := h.Values(); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("Values = %v", got)
	}
	if math.Abs(h.Frac(3)-0.6) > 1e-12 {
		t.Errorf("Frac(3) = %v", h.Frac(3))
	}
	if math.Abs(h.Mean()-2.4) > 1e-12 {
		t.Errorf("Mean = %v, want 2.4", h.Mean())
	}
	if h.String() != "1:1 2:1 3:3" {
		t.Errorf("String = %q", h.String())
	}
}

func TestQuickWilsonWellFormed(t *testing.T) {
	f := func(hitsRaw, trialsRaw uint16) bool {
		trials := int(trialsRaw%1000) + 1
		hits := int(hitsRaw) % (trials + 1)
		p, err := NewProportion(hits, trials)
		if err != nil {
			return false
		}
		lo, hi := p.Wilson(1.96)
		m := p.Mean()
		return lo >= 0 && hi <= 1 && lo <= m+1e-9 && m <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickRunningMeanBounded(t *testing.T) {
	f := func(xs []float64) bool {
		var r Running
		lo, hi := math.Inf(1), math.Inf(-1)
		count := 0
		for _, x := range xs {
			// Skip non-finite and near-overflow magnitudes; Welford is
			// not an arbitrary-precision accumulator.
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e15 {
				continue
			}
			r.Add(x)
			count++
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		if count == 0 {
			return true
		}
		return r.Mean() >= lo-1e-9 && r.Mean() <= hi+1e-9 && r.Variance() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntervalJSONRoundTrip(t *testing.T) {
	p := Proportion{Hits: 7, Trials: 100}
	iv := p.WilsonInterval(1.96)
	if iv.Width() <= 0 {
		t.Fatalf("degenerate interval %+v", iv)
	}
	lo, hi := p.Wilson(1.96)
	if iv.Lo != lo || iv.Hi != hi {
		t.Errorf("WilsonInterval %+v disagrees with Wilson (%v, %v)", iv, lo, hi)
	}
	data, err := json.Marshal(iv)
	if err != nil {
		t.Fatal(err)
	}
	var back Interval
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != iv {
		t.Errorf("round trip changed the interval: got %+v want %+v", back, iv)
	}
	pd, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"hits":7,"trials":100}`; string(pd) != want {
		t.Errorf("Proportion wire form drifted: got %s want %s", pd, want)
	}
	var pb Proportion
	if err := json.Unmarshal(pd, &pb); err != nil {
		t.Fatal(err)
	}
	if pb != p {
		t.Errorf("round trip changed the proportion: got %+v want %+v", pb, p)
	}
}
