// Package stats provides the scalar statistics the experiment harness
// needs: frequency estimators with Wilson score confidence intervals,
// Hoeffding deviation bounds, running moments, and simple histograms.
// Everything is stdlib-only and deterministic.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Proportion is a Bernoulli frequency estimate: hits out of trials. The
// JSON field names are part of the service API (see internal/service)
// and must not change.
type Proportion struct {
	Hits   int `json:"hits"`
	Trials int `json:"trials"`
}

// NewProportion returns the estimate hits/trials. trials must be
// positive and hits within [0, trials].
func NewProportion(hits, trials int) (Proportion, error) {
	if trials <= 0 {
		return Proportion{}, fmt.Errorf("stats: trials must be positive, got %d", trials)
	}
	if hits < 0 || hits > trials {
		return Proportion{}, fmt.Errorf("stats: hits %d outside [0, %d]", hits, trials)
	}
	return Proportion{Hits: hits, Trials: trials}, nil
}

// Mean is the point estimate hits/trials.
func (p Proportion) Mean() float64 {
	if p.Trials == 0 {
		return 0
	}
	return float64(p.Hits) / float64(p.Trials)
}

// Wilson returns the Wilson score interval at confidence z (e.g. z=1.96
// for 95%). Unlike the normal approximation it behaves sensibly at the
// boundaries p≈0 and p≈1, where most of our probabilities live.
func (p Proportion) Wilson(z float64) (lo, hi float64) {
	if p.Trials == 0 {
		return 0, 1
	}
	n := float64(p.Trials)
	phat := p.Mean()
	z2 := z * z
	denom := 1 + z2/n
	center := (phat + z2/(2*n)) / denom
	margin := z / denom * math.Sqrt(phat*(1-phat)/n+z2/(4*n*n))
	lo = center - margin
	hi = center + margin
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// Interval is a closed confidence interval [Lo, Hi] — the JSON-stable
// wire form of the Wilson and Hoeffding bounds served by the experiment
// service. The field names are part of the service API.
type Interval struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

// Width reports Hi − Lo, the figure of merit for "how converged is this
// estimate" progress reporting.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// WilsonInterval packages Wilson's bounds as an Interval.
func (p Proportion) WilsonInterval(z float64) Interval {
	lo, hi := p.Wilson(z)
	return Interval{Lo: lo, Hi: hi}
}

// HoeffdingRadius returns the two-sided deviation radius t such that
// Pr[|p̂ − p| ≥ t] ≤ delta, by Hoeffding's inequality:
// t = sqrt(ln(2/δ) / (2n)). Used by tests that compare Monte-Carlo
// estimates against exact values.
func HoeffdingRadius(trials int, delta float64) (float64, error) {
	if trials <= 0 {
		return 0, fmt.Errorf("stats: trials must be positive, got %d", trials)
	}
	if delta <= 0 || delta >= 1 {
		return 0, fmt.Errorf("stats: delta %v outside (0,1)", delta)
	}
	return math.Sqrt(math.Log(2/delta) / (2 * float64(trials))), nil
}

// Consistent reports whether estimate p̂ is within the Hoeffding radius
// of the exact value at failure probability delta.
func (p Proportion) Consistent(exact, delta float64) (bool, error) {
	radius, err := HoeffdingRadius(p.Trials, delta)
	if err != nil {
		return false, err
	}
	return math.Abs(p.Mean()-exact) <= radius, nil
}

// String renders "0.1234 (k/n)".
func (p Proportion) String() string {
	return fmt.Sprintf("%.4f (%d/%d)", p.Mean(), p.Hits, p.Trials)
}

// Running accumulates mean and variance online (Welford's algorithm).
// The zero value is ready to use.
type Running struct {
	n    int
	mean float64
	m2   float64
}

// Add feeds one observation.
func (r *Running) Add(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N reports the number of observations.
func (r *Running) N() int { return r.n }

// Mean reports the sample mean (0 with no observations).
func (r *Running) Mean() float64 { return r.mean }

// Variance reports the unbiased sample variance (0 with < 2 observations).
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev reports the sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// StdErr reports the standard error of the mean.
func (r *Running) StdErr() float64 {
	if r.n == 0 {
		return 0
	}
	return r.StdDev() / math.Sqrt(float64(r.n))
}

// IntHistogram counts occurrences of small integer values (levels,
// counts, cut rounds). The zero value is ready to use.
type IntHistogram struct {
	counts map[int]int
	total  int
}

// Add records one observation.
func (h *IntHistogram) Add(v int) {
	if h.counts == nil {
		h.counts = make(map[int]int)
	}
	h.counts[v]++
	h.total++
}

// Count reports occurrences of v.
func (h *IntHistogram) Count(v int) int { return h.counts[v] }

// Total reports the number of observations.
func (h *IntHistogram) Total() int { return h.total }

// Frac reports the fraction of observations equal to v.
func (h *IntHistogram) Frac(v int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[v]) / float64(h.total)
}

// Values returns the observed values in ascending order.
func (h *IntHistogram) Values() []int {
	vs := make([]int, 0, len(h.counts))
	for v := range h.counts {
		vs = append(vs, v)
	}
	sort.Ints(vs)
	return vs
}

// Mean reports the mean of the observations.
func (h *IntHistogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	sum := 0
	for v, c := range h.counts {
		sum += v * c
	}
	return float64(sum) / float64(h.total)
}

// String renders "v:count" pairs in order.
func (h *IntHistogram) String() string {
	var b strings.Builder
	for i, v := range h.Values() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%d", v, h.counts[v])
	}
	return b.String()
}
