package async

import (
	"container/heap"
	"fmt"
	"sort"

	"coordattack/internal/graph"
	"coordattack/internal/protocol"
	"coordattack/internal/run"
	"coordattack/internal/sim"
)

// EventExecute runs the protocol through a genuine discrete-event
// simulation: a priority queue of timestamped events, one state machine
// per general advancing on its own clock — no global rounds anywhere in
// the mechanism. Each general, on entering a round, sends its messages
// (scheduling their arrivals through the latency adversary), then
// advances when every neighbor's message for the round has arrived or
// its timeout fires, discarding stragglers; messages that outrun their
// receiver wait in a future-round buffer.
//
// Its semantics are exactly those of the InducedRun reduction — the
// property TestEventEngineMatchesReduction holds the two implementations
// equal on every sampled adversary — which is the §8 claim made
// mechanical twice over: an honest asynchronous executor and the
// synchronous engine on the induced run cannot be told apart.
func EventExecute(p protocol.Protocol, cfg Config, tapes sim.Tapes) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := cfg.G.NumVertices()
	machines := make([]protocol.Machine, m+1)
	inputSet := make(map[graph.ProcID]bool, len(cfg.Inputs))
	for _, i := range cfg.Inputs {
		inputSet[i] = true
	}
	for i := 1; i <= m; i++ {
		id := graph.ProcID(i)
		c := protocol.Config{ID: id, G: cfg.G, N: cfg.N, Input: inputSet[id], Tape: tapes(id)}
		mach, err := p.NewMachine(c)
		if err != nil {
			return nil, fmt.Errorf("async: creating machine %d: %w", i, err)
		}
		machines[i] = mach
	}

	type buffered struct {
		from graph.ProcID
		msg  protocol.Message
	}
	induced, err := run.New(cfg.N)
	if err != nil {
		return nil, err
	}
	for _, i := range cfg.Inputs {
		induced.AddInput(i)
	}
	var (
		q       eventQueue
		round   = make([]int, m+1) // current round per process (0 = done)
		gen     = make([]int, m+1) // timeout generation, invalidates stale timeouts
		inbox   = make([][]buffered, m+1)
		arrived = make([]map[graph.ProcID]bool, m+1)
		future  = make([]map[int][]buffered, m+1) // messages that outran their receiver
		enter   = make([][]int, m+1)
	)
	for i := 1; i <= m; i++ {
		enter[i] = make([]int, cfg.N+2)
		arrived[i] = make(map[graph.ProcID]bool)
		future[i] = make(map[int][]buffered)
	}

	var enterRound func(i graph.ProcID, r, t int) error
	advance := func(i graph.ProcID, t int) error {
		r := round[i]
		msgs := inbox[i]
		sort.Slice(msgs, func(a, b int) bool { return msgs[a].from < msgs[b].from })
		received := make([]protocol.Received, 0, len(msgs))
		for _, b := range msgs {
			received = append(received, protocol.Received{From: b.from, Msg: b.msg})
			if err := induced.Deliver(b.from, i, r); err != nil {
				return err
			}
		}
		if err := machines[i].Step(r, received); err != nil {
			return fmt.Errorf("async: machine %d step %d: %w", i, r, err)
		}
		inbox[i] = nil
		arrived[i] = make(map[graph.ProcID]bool)
		gen[i]++
		if r == cfg.N {
			round[i] = 0 // done
			enter[i][cfg.N+1] = t
			return nil
		}
		return enterRound(i, r+1, t)
	}
	tryEarlyAdvance := func(i graph.ProcID, t int) error {
		if round[i] == 0 {
			return nil
		}
		for _, nb := range cfg.G.Neighbors(i) {
			if !arrived[i][nb] {
				return nil // missing or dropped: wait for the timeout
			}
		}
		return advance(i, t)
	}
	enterRound = func(i graph.ProcID, r, t int) error {
		round[i] = r
		enter[i][r] = t
		for _, nb := range cfg.G.Neighbors(i) {
			msg := machines[i].Send(r, nb)
			if msg == nil {
				return fmt.Errorf("async: machine %d sent nil in round %d", i, r)
			}
			ticks, drop := cfg.Latency(i, nb, r)
			if drop {
				continue
			}
			if ticks < 1 {
				return fmt.Errorf("async: latency %d < 1 for (%d→%d, r%d)", ticks, i, nb, r)
			}
			heap.Push(&q, event{time: t + ticks, kind: kindArrival, proc: nb, from: i, round: r, msg: msg})
		}
		heap.Push(&q, event{time: t + cfg.Timeout, kind: kindTimeout, proc: i, round: r, gen: gen[i]})
		// Messages that outran us are already here.
		for _, b := range future[i][r] {
			inbox[i] = append(inbox[i], b)
			arrived[i][b.from] = true
		}
		delete(future[i], r)
		return tryEarlyAdvance(i, t)
	}

	for i := 1; i <= m; i++ {
		if err := enterRound(graph.ProcID(i), 1, 0); err != nil {
			return nil, err
		}
	}
	for q.Len() > 0 {
		ev := heap.Pop(&q).(event)
		switch ev.kind {
		case kindArrival:
			switch {
			case round[ev.proc] == ev.round:
				inbox[ev.proc] = append(inbox[ev.proc], buffered{from: ev.from, msg: ev.msg})
				arrived[ev.proc][ev.from] = true
				if err := tryEarlyAdvance(ev.proc, ev.time); err != nil {
					return nil, err
				}
			case round[ev.proc] != 0 && ev.round > round[ev.proc]:
				// The sender outran the receiver: park the message until
				// the receiver enters that round.
				future[ev.proc][ev.round] = append(future[ev.proc][ev.round],
					buffered{from: ev.from, msg: ev.msg})
			default:
				// Straggler for a past round (or receiver finished):
				// the adversary wins this one; discard.
			}
		case kindTimeout:
			if round[ev.proc] == ev.round && gen[ev.proc] == ev.gen {
				if err := advance(ev.proc, ev.time); err != nil {
					return nil, err
				}
			}
		}
	}
	outs := make([]bool, m+1)
	for i := 1; i <= m; i++ {
		outs[i] = machines[i].Output()
	}
	return &Result{Outputs: outs, Induced: induced, EnterTimes: enter}, nil
}

const (
	kindArrival = iota + 1
	kindTimeout
)

type event struct {
	time  int
	kind  int
	proc  graph.ProcID
	from  graph.ProcID
	round int
	gen   int
	msg   protocol.Message
}

// eventQueue orders events by (time, kind, proc, from, round): arrivals
// strictly before timeouts at equal timestamps, so a message landing
// exactly at a deadline still counts — matching InducedRun's inclusive
// comparison.
type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(a, b int) bool {
	if q[a].time != q[b].time {
		return q[a].time < q[b].time
	}
	if q[a].kind != q[b].kind {
		return q[a].kind < q[b].kind
	}
	if q[a].proc != q[b].proc {
		return q[a].proc < q[b].proc
	}
	if q[a].from != q[b].from {
		return q[a].from < q[b].from
	}
	return q[a].round < q[b].round
}
func (q eventQueue) Swap(a, b int) { q[a], q[b] = q[b], q[a] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	*q = old[:n-1]
	return ev
}
