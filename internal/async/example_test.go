package async_test

import (
	"fmt"
	"log"

	"coordattack/internal/async"
	"coordattack/internal/core"
	"coordattack/internal/graph"
	"coordattack/internal/sim"
)

// ExampleInducedRun shows the §8 reduction: a fast network under a
// 3-tick timeout induces the good run, so every synchronous theorem
// applies verbatim.
func ExampleInducedRun() {
	g := graph.Pair()
	induced, _, err := async.InducedRun(async.Config{
		G: g, N: 4, Timeout: 3, Latency: async.FixedLatency(1),
		Inputs: []graph.ProcID{1, 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deliveries: %d of %d possible\n", induced.NumDeliveries(), 2*g.NumEdges()*4)
	// Output:
	// deliveries: 8 of 8 possible
}

// ExampleEventExecute runs Protocol S on the event-queue engine and
// confirms it matches the reduction.
func ExampleEventExecute() {
	g := graph.Pair()
	s := core.MustS(0.5)
	cfg := async.Config{
		G: g, N: 6, Timeout: 2, Latency: async.FixedLatency(2),
		Inputs: []graph.ProcID{1, 2},
	}
	ev, err := async.EventExecute(s, cfg, sim.SeedTapes(7))
	if err != nil {
		log.Fatal(err)
	}
	red, err := async.Execute(s, cfg, sim.SeedTapes(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("engines agree:", ev.Induced.Equal(red.Induced) && ev.Outcome() == red.Outcome())
	// Output:
	// engines agree: true
}
