package async

import (
	"math"
	"testing"
	"testing/quick"

	"coordattack/internal/causality"
	"coordattack/internal/core"
	"coordattack/internal/graph"
	"coordattack/internal/rng"
	"coordattack/internal/run"
	"coordattack/internal/sim"
)

func TestConfigValidation(t *testing.T) {
	g := graph.Pair()
	lat := FixedLatency(1)
	bad := []Config{
		{N: 2, Timeout: 3, Latency: lat},                                  // nil graph
		{G: g, N: 0, Timeout: 3, Latency: lat},                            // bad N
		{G: g, N: 2, Timeout: 0, Latency: lat},                            // bad timeout
		{G: g, N: 2, Timeout: 3},                                          // nil latency
		{G: g, N: 2, Timeout: 3, Latency: lat, Inputs: []graph.ProcID{9}}, // bad input
	}
	for i, cfg := range bad {
		if _, _, err := InducedRun(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestFastNetworkInducesGoodRun(t *testing.T) {
	// Latency 1 ≤ τ everywhere: every message beats every deadline, so
	// the induced run is the good run and rounds stay in lockstep.
	g, err := graph.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{G: g, N: 5, Timeout: 3, Latency: FixedLatency(1),
		Inputs: []graph.ProcID{1, 2, 3, 4}}
	induced, enter, err := InducedRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	good, err := run.Good(g, 5, 1, 2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !induced.Equal(good) {
		t.Errorf("induced run %v != good run", induced)
	}
	// With early advance everyone moves at the all-in time (1 tick).
	for i := 1; i <= 4; i++ {
		for r := 1; r <= 5; r++ {
			if enter[i][r] != r-1 {
				t.Errorf("enter[%d][%d] = %d, want %d", i, r, enter[i][r], r-1)
			}
		}
	}
}

func TestSlowMessagesAreLost(t *testing.T) {
	// Latency above τ: nothing ever arrives in time; the induced run is
	// silent and rounds advance at the timeout.
	g := graph.Pair()
	cfg := Config{G: g, N: 3, Timeout: 2, Latency: FixedLatency(5),
		Inputs: []graph.ProcID{1}}
	induced, enter, err := InducedRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if induced.NumDeliveries() != 0 {
		t.Errorf("slow network delivered %d messages", induced.NumDeliveries())
	}
	for r := 1; r <= 3; r++ {
		if enter[1][r+1] != enter[1][r]+2 {
			t.Errorf("no-progress round should advance by τ")
		}
	}
}

func TestCutLink(t *testing.T) {
	g, err := graph.Line(3)
	if err != nil {
		t.Fatal(err)
	}
	lat := CutLink(FixedLatency(1), 1, 2, 2)
	cfg := Config{G: g, N: 4, Timeout: 3, Latency: lat, Inputs: []graph.ProcID{1}}
	induced, _, err := InducedRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !induced.Delivered(1, 2, 1) || !induced.Delivered(2, 1, 1) {
		t.Error("round 1 on link 1-2 should be delivered")
	}
	for r := 2; r <= 4; r++ {
		if induced.Delivered(1, 2, r) || induced.Delivered(2, 1, r) {
			t.Errorf("round %d on cut link delivered", r)
		}
	}
	if !induced.Delivered(2, 3, 4) {
		t.Error("other link should be unaffected")
	}
}

func TestStragglerToleratedByEarlyNeighbors(t *testing.T) {
	// A message with latency τ+1 from a process that advanced EARLY can
	// still make its receiver's deadline if the receiver entered the
	// round later — timing matters beyond per-message latency. Construct:
	// K_2; round 1: 2→1 slow (drop), 1→2 fast; so process 1 advances at
	// its deadline, process 2 early. In round 2 a medium-latency message
	// from 2 can reach 1 even though the same latency would miss between
	// lockstep processes.
	g := graph.Pair()
	lat := func(from, to graph.ProcID, round int) (int, bool) {
		switch {
		case round == 1 && from == 2:
			return 1, true // drop: 1 waits out its timeout
		case round == 1:
			return 1, false
		case round == 2 && from == 2:
			return 4, false // medium: would miss a lockstep deadline (τ=3)
		default:
			return 1, false
		}
	}
	cfg := Config{G: g, N: 2, Timeout: 3, Latency: lat, Inputs: []graph.ProcID{1}}
	induced, enter, err := InducedRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Process 2 advanced at time 1 (early: got 1's fast message... wait —
	// early advance requires ALL neighbor messages in; 2's only neighbor
	// is 1, whose message arrived at t=1, so 2 advances at t=1. Process 1
	// got nothing (drop), advances at τ=3.
	if enter[2][2] != 1 || enter[1][2] != 3 {
		t.Fatalf("enter times [1]=%d [2]=%d, want 3 and 1", enter[1][2], enter[2][2])
	}
	// Round 2: 2 sends at t=1, latency 4 → arrives t=5. 1 entered round
	// 2 at t=3, deadline 6 → delivered despite latency > τ.
	if !induced.Delivered(2, 1, 2) {
		t.Error("head-start message lost; timing reduction wrong")
	}
}

func TestExecuteMatchesSyncOnInducedRun(t *testing.T) {
	// The reduction theorem, tested: asynchronous execution of Protocol S
	// equals the synchronous engine on the induced run, tape for tape.
	g, err := graph.Ring(5)
	if err != nil {
		t.Fatal(err)
	}
	s := core.MustS(0.2)
	latTape := rng.NewTape(77)
	for trial := 0; trial < 40; trial++ {
		lat, err := RandomLatency(1, 5, 0.15, latTape.Fork(uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{G: g, N: 6, Timeout: 3, Latency: lat,
			Inputs: []graph.ProcID{1, 3}}
		res, err := Execute(s, cfg, sim.SeedTapes(uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		syncOuts, err := sim.Outputs(s, g, res.Induced, sim.SeedTapes(uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		for i := range syncOuts {
			if res.Outputs[i] != syncOuts[i] {
				t.Fatalf("trial %d: async and sync-on-induced disagree: %v vs %v",
					trial, res.Outputs, syncOuts)
			}
		}
		if res.Outcome().String() == "" {
			t.Error("empty outcome")
		}
	}
}

func TestAsyncAgreementStillHolds(t *testing.T) {
	// Theorems survive the reduction: against any latency adversary the
	// disagreement probability of Protocol S stays ≤ ε. Exact check via
	// the induced run's analysis.
	g := graph.Pair()
	eps := 0.25
	s := core.MustS(eps)
	latTape := rng.NewTape(5)
	for trial := 0; trial < 50; trial++ {
		lat, err := RandomLatency(1, 6, 0.3, latTape.Fork(uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{G: g, N: 8, Timeout: 4, Latency: lat, Inputs: []graph.ProcID{1, 2}}
		induced, _, err := InducedRun(cfg)
		if err != nil {
			t.Fatal(err)
		}
		a, err := s.Analyze(g, induced)
		if err != nil {
			t.Fatal(err)
		}
		if a.PPartial > eps+1e-12 {
			t.Fatalf("async adversary broke agreement: PA = %v on %v", a.PPartial, induced)
		}
	}
}

func TestRandomLatencyValidation(t *testing.T) {
	tape := rng.NewTape(1)
	if _, err := RandomLatency(0, 5, 0, tape); err == nil {
		t.Error("lo=0 accepted")
	}
	if _, err := RandomLatency(3, 2, 0, tape); err == nil {
		t.Error("hi<lo accepted")
	}
	if _, err := RandomLatency(1, 2, 1.5, tape); err == nil {
		t.Error("dropP>1 accepted")
	}
}

func TestRandomLatencyConsistent(t *testing.T) {
	lat, err := RandomLatency(1, 9, 0.5, rng.NewTape(3))
	if err != nil {
		t.Fatal(err)
	}
	t1, d1 := lat(1, 2, 4)
	t2, d2 := lat(1, 2, 4)
	if t1 != t2 || d1 != d2 {
		t.Error("repeated queries for the same message disagree")
	}
}

func TestQuickLargerTimeoutNeverLosesDeliveries(t *testing.T) {
	// Monotonicity: raising τ can only add deliveries to the induced run
	// when processes stay in lockstep (fixed uniform latency).
	g, err := graph.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	f := func(latRaw, tauRaw uint8) bool {
		lat := int(latRaw%6) + 1
		tau := int(tauRaw%6) + 1
		small := Config{G: g, N: 4, Timeout: tau, Latency: FixedLatency(lat)}
		big := Config{G: g, N: 4, Timeout: tau + 1, Latency: FixedLatency(lat)}
		rs, _, err := InducedRun(small)
		if err != nil {
			return false
		}
		rb, _, err := InducedRun(big)
		if err != nil {
			return false
		}
		return rs.SubsetOf(rb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestInducedLevelDegradesWithLatency(t *testing.T) {
	// Liveness through the reduction: the slower the network relative to
	// τ, the lower the induced run's ML — async latency is a liveness
	// attack, never a safety one.
	g := graph.Pair()
	var prev = math.MaxInt
	for _, lat := range []int{1, 3, 5} {
		cfg := Config{G: g, N: 10, Timeout: 4, Latency: FixedLatency(lat),
			Inputs: []graph.ProcID{1, 2}}
		induced, _, err := InducedRun(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ml, err := causality.RunModLevel(induced, 2)
		if err != nil {
			t.Fatal(err)
		}
		if ml > prev {
			t.Errorf("latency %d raised ML to %d (prev %d)", lat, ml, prev)
		}
		prev = ml
	}
}
