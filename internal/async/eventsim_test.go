package async

import (
	"testing"

	"coordattack/internal/baseline"
	"coordattack/internal/core"
	"coordattack/internal/graph"
	"coordattack/internal/rng"
	"coordattack/internal/sim"
)

func TestEventEngineMatchesReduction(t *testing.T) {
	// The centerpiece: the honest event-queue executor and the InducedRun
	// reduction agree on the induced run, the entry times, and every
	// output bit, across random latency adversaries, graphs, and
	// timeouts.
	graphs := []*graph.G{graph.Pair()}
	if g, err := graph.Ring(5); err == nil {
		graphs = append(graphs, g)
	}
	if g, err := graph.Star(4); err == nil {
		graphs = append(graphs, g)
	}
	s := core.MustS(0.2)
	latTape := rng.NewTape(31)
	for _, g := range graphs {
		inputs := []graph.ProcID{1}
		if g.NumVertices() >= 3 {
			inputs = append(inputs, 3)
		}
		for trial := 0; trial < 30; trial++ {
			lat, err := RandomLatency(1, 6, 0.2, latTape.Fork(uint64(trial)))
			if err != nil {
				t.Fatal(err)
			}
			for _, tau := range []int{1, 3, 5} {
				cfg := Config{G: g, N: 6, Timeout: tau, Latency: lat, Inputs: inputs}
				fromReduction, err := Execute(s, cfg, sim.SeedTapes(uint64(trial)))
				if err != nil {
					t.Fatal(err)
				}
				fromEvents, err := EventExecute(s, cfg, sim.SeedTapes(uint64(trial)))
				if err != nil {
					t.Fatal(err)
				}
				if !fromEvents.Induced.Equal(fromReduction.Induced) {
					t.Fatalf("%v τ=%d trial %d: induced runs differ:\nevents:    %v\nreduction: %v",
						g, tau, trial, fromEvents.Induced, fromReduction.Induced)
				}
				for i := 1; i <= g.NumVertices(); i++ {
					if fromEvents.Outputs[i] != fromReduction.Outputs[i] {
						t.Fatalf("%v τ=%d trial %d: outputs differ at %d", g, tau, trial, i)
					}
					for r := 1; r <= cfg.N+1; r++ {
						if fromEvents.EnterTimes[i][r] != fromReduction.EnterTimes[i][r] {
							t.Fatalf("%v τ=%d trial %d: enter[%d][%d] = %d vs %d",
								g, tau, trial, i, r,
								fromEvents.EnterTimes[i][r], fromReduction.EnterTimes[i][r])
						}
					}
				}
			}
		}
	}
}

func TestEventEngineFastNetworkLockstep(t *testing.T) {
	g, err := graph.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := EventExecute(core.MustS(0.5), Config{
		G: g, N: 4, Timeout: 3, Latency: FixedLatency(1),
		Inputs: g.Vertices(),
	}, sim.SeedTapes(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		for r := 1; r <= 4; r++ {
			if res.EnterTimes[i][r] != r-1 {
				t.Errorf("enter[%d][%d] = %d, want %d", i, r, res.EnterTimes[i][r], r-1)
			}
		}
	}
	if got, want := res.Induced.NumDeliveries(), 2*4*4; got != want {
		t.Errorf("induced |M| = %d, want %d (everything delivered)", got, want)
	}
}

func TestEventEngineStragglersDiscarded(t *testing.T) {
	// τ=1 with latency 2: every message misses its round; the induced
	// run is empty... unless a receiver is still behind, but with τ=1
	// everyone moves in lockstep, so all messages are one round late.
	g := graph.Pair()
	res, err := EventExecute(baseline.NewA(), Config{
		G: g, N: 4, Timeout: 1, Latency: FixedLatency(2),
		Inputs: []graph.ProcID{1, 2},
	}, sim.SeedTapes(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Induced.NumDeliveries() != 0 {
		t.Errorf("stragglers delivered: %v", res.Induced)
	}
	if res.Outputs[1] || res.Outputs[2] {
		t.Error("attack with no information")
	}
}

func TestEventEngineValidation(t *testing.T) {
	g := graph.Pair()
	if _, err := EventExecute(core.MustS(0.1), Config{G: g, N: 0, Timeout: 1, Latency: FixedLatency(1)},
		sim.SeedTapes(1)); err == nil {
		t.Error("bad config accepted")
	}
	// Zero-tick latency is a model violation.
	zero := func(graph.ProcID, graph.ProcID, int) (int, bool) { return 0, false }
	if _, err := EventExecute(core.MustS(0.1), Config{G: g, N: 2, Timeout: 2, Latency: zero},
		sim.SeedTapes(1)); err == nil {
		t.Error("zero latency accepted")
	}
}

func TestEventEngineDeterministic(t *testing.T) {
	g, err := graph.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	lat, err := RandomLatency(1, 4, 0.3, rng.NewTape(9))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{G: g, N: 5, Timeout: 2, Latency: lat, Inputs: []graph.ProcID{2}}
	a, err := EventExecute(core.MustS(0.3), cfg, sim.SeedTapes(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := EventExecute(core.MustS(0.3), cfg, sim.SeedTapes(7))
	if err != nil {
		t.Fatal(err)
	}
	if !a.Induced.Equal(b.Induced) {
		t.Error("event engine not deterministic")
	}
	for i := range a.Outputs {
		if a.Outputs[i] != b.Outputs[i] {
			t.Error("outputs not deterministic")
		}
	}
}
