// Package async realizes the paper's closing remark that the results
// "can be extended to an asynchronous model" (§8), as an executable
// reduction.
//
// Processes run in continuous virtual time with no shared round clock.
// Each message (i, j, r) has an adversary-chosen latency (or is dropped).
// A timeout synchronizer rebuilds rounds: process j enters round r+1 when
// every neighbor's round-r message has arrived, or after a timeout of τ
// ticks, whichever is first; round-r messages that arrive after j has
// advanced are discarded.
//
// The reduction: an asynchronous execution *induces* a synchronous run —
// the set of (i, j, r) tuples whose messages beat the receiver's advance
// — and the protocol's outputs are exactly those of the synchronous
// engine on the induced run with the same tapes (property-tested in this
// package). Every theorem of the paper then applies verbatim to the
// induced run: unsafety stays ≤ ε against any latency adversary, and
// liveness is min(1, ε·ML(induced run)) — latency attacks can only lower
// the level, never break agreement.
package async

import (
	"fmt"

	"coordattack/internal/graph"
	"coordattack/internal/protocol"
	"coordattack/internal/rng"
	"coordattack/internal/run"
	"coordattack/internal/sim"
)

// Latency decides one message's fate: its virtual latency ≥ 1, or drop.
type Latency func(from, to graph.ProcID, round int) (ticks int, drop bool)

// FixedLatency delays every message by the same number of ticks.
func FixedLatency(ticks int) Latency {
	return func(graph.ProcID, graph.ProcID, int) (int, bool) { return ticks, false }
}

// RandomLatency draws each message's latency uniformly from [lo, hi] and
// drops it with probability dropP, using the given tape. The returned
// Latency caches its decisions so repeated queries for the same message
// are consistent.
func RandomLatency(lo, hi int, dropP float64, tape *rng.Tape) (Latency, error) {
	if lo < 1 || hi < lo {
		return nil, fmt.Errorf("async: latency range [%d, %d] invalid (need 1 ≤ lo ≤ hi)", lo, hi)
	}
	if dropP < 0 || dropP > 1 {
		return nil, fmt.Errorf("async: drop probability %v outside [0,1]", dropP)
	}
	type key struct {
		from, to graph.ProcID
		round    int
	}
	type fate struct {
		ticks int
		drop  bool
	}
	cache := make(map[key]fate)
	return func(from, to graph.ProcID, round int) (int, bool) {
		k := key{from: from, to: to, round: round}
		if f, ok := cache[k]; ok {
			return f.ticks, f.drop
		}
		ticks, err := tape.IntRange(lo, hi)
		if err != nil {
			ticks = hi // exhausted tape degrades to worst latency
		}
		drop, err := tape.Bernoulli(dropP)
		if err != nil {
			drop = false
		}
		f := fate{ticks: ticks, drop: drop}
		cache[k] = f
		return f.ticks, f.drop
	}, nil
}

// CutLink makes all messages on the undirected link {a, b} infinitely
// slow from the given round on, wrapping an inner latency.
func CutLink(inner Latency, a, b graph.ProcID, fromRound int) Latency {
	return func(from, to graph.ProcID, round int) (int, bool) {
		onLink := (from == a && to == b) || (from == b && to == a)
		if onLink && round >= fromRound {
			return 1, true
		}
		return inner(from, to, round)
	}
}

// Config describes one asynchronous execution.
type Config struct {
	G *graph.G
	// N is the number of synchronizer rounds.
	N int
	// Timeout τ ≥ 1 is how many ticks a process waits in a round before
	// advancing without stragglers.
	Timeout int
	// Latency is the adversary.
	Latency Latency
	// Inputs lists the generals that receive the attack signal.
	Inputs []graph.ProcID
}

func (c Config) validate() error {
	if c.G == nil {
		return fmt.Errorf("async: nil graph")
	}
	if c.N < 1 {
		return fmt.Errorf("async: need N ≥ 1, got %d", c.N)
	}
	if c.Timeout < 1 {
		return fmt.Errorf("async: need timeout ≥ 1, got %d", c.Timeout)
	}
	if c.Latency == nil {
		return fmt.Errorf("async: nil latency")
	}
	for _, i := range c.Inputs {
		if i < 1 || int(i) > c.G.NumVertices() {
			return fmt.Errorf("async: input %d not a vertex", i)
		}
	}
	return nil
}

// Result of an asynchronous execution.
type Result struct {
	// Outputs is the decision vector, index 1..m (index 0 unused).
	Outputs []bool
	// Induced is the synchronous run the execution reduces to.
	Induced *run.Run
	// EnterTimes[i][r] is the virtual time process i entered round r
	// (index [1..m][1..N+1]; column N+1 is the finish time).
	EnterTimes [][]int
}

// Outcome classifies the result.
func (r *Result) Outcome() protocol.Outcome { return protocol.Classify(r.Outputs) }

// InducedRun computes only the reduction — the synchronous run induced by
// the timing structure — without executing any protocol. The induced run
// is a pure function of (graph, N, timeout, latency).
func InducedRun(cfg Config) (*run.Run, [][]int, error) {
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	m := cfg.G.NumVertices()
	enter := make([][]int, m+1)
	for i := 1; i <= m; i++ {
		enter[i] = make([]int, cfg.N+2)
		enter[i][1] = 0 // everyone starts round 1 at time 0
	}
	induced, err := run.New(cfg.N)
	if err != nil {
		return nil, nil, err
	}
	for _, in := range cfg.Inputs {
		induced.AddInput(in)
	}
	for r := 1; r <= cfg.N; r++ {
		for j := 1; j <= m; j++ {
			pj := graph.ProcID(j)
			deadline := enter[j][r] + cfg.Timeout
			// Earliest time all neighbor round-r messages are in.
			allIn := enter[j][r]
			anyDropped := false
			for _, i := range cfg.G.Neighbors(pj) {
				ticks, drop := cfg.Latency(i, pj, r)
				if drop {
					anyDropped = true
					continue
				}
				if a := enter[i][r] + ticks; a > allIn {
					allIn = a
				}
			}
			advance := deadline
			if !anyDropped && allIn < deadline {
				advance = allIn
			}
			enter[j][r+1] = advance
			// A round-r message is delivered iff it arrives by the
			// moment j advances (and is not dropped).
			for _, i := range cfg.G.Neighbors(pj) {
				ticks, drop := cfg.Latency(i, pj, r)
				if drop {
					continue
				}
				if enter[i][r]+ticks <= advance {
					if err := induced.Deliver(i, pj, r); err != nil {
						return nil, nil, err
					}
				}
			}
		}
	}
	return induced, enter, nil
}

// Execute runs the protocol asynchronously: it computes the induced run
// and drives the synchronous engine on it — which, by the synchronizer's
// construction, is exactly what the per-process event execution does.
func Execute(p protocol.Protocol, cfg Config, tapes sim.Tapes) (*Result, error) {
	induced, enter, err := InducedRun(cfg)
	if err != nil {
		return nil, err
	}
	outs, err := sim.Outputs(p, cfg.G, induced, tapes)
	if err != nil {
		return nil, err
	}
	return &Result{Outputs: outs, Induced: induced, EnterTimes: enter}, nil
}
