package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"coordattack/internal/cluster"
	"coordattack/internal/mc"
	"coordattack/internal/queue"
)

// This file enumerates the crash schedule of the two-phase steal
// handoff. For victim V, thief T, and stolen key K the phases are:
//
//	intent  — V journals K's record re-stamped with T (fsynced),
//	adopt   — T journals K into its own WAL and enqueues it,
//	commit  — T posts the commit; V tombstones K's intent.
//
// Each subtest crashes one or both nodes between two phases and
// asserts the invariant the protocol promises: the key's engine runs
// exactly once cluster-wide, and no crash point strands it.
//
//	P1  T never adopts (no crash)        → V reclaims, runs locally
//	P2  T never adopts, V dies post-intent → V's replay re-attaches the
//	    follower, which reclaims and runs locally
//	P3  T adopts, dies before commit     → T's replay runs K; V's
//	    follower waits it out and serves the result as a peer hit
//	P4  T adopts+commits, V dies after   → V's replay has no record of
//	    K; T runs it
//	P5  commit lands, T dies before running K → T's replay runs K
//	P6  commit lands, both die           → T's replay runs K; V's
//	    replay has no record of K
//
// Kill fidelity: the journal handle is closed first (appends stop
// reaching disk, like a SIGKILL), the HTTP handler is swapped out
// (peers see errors), and the pool is drained with an already-expired
// context (in-flight work is abandoned). Restart reopens the journal
// directory into a fresh Server on the same address.

const (
	crashBlockerSeed = 424242
	crashStolenSeedA = 1001
	crashStolenSeedB = 1002
)

// runCounter tallies *completed* engine runs per canonical key across
// every node and every restart in one scenario — the cluster-wide
// exactly-once ledger.
type runCounter struct {
	mu   sync.Mutex
	runs map[string]int
}

func newRunCounter() *runCounter { return &runCounter{runs: make(map[string]int)} }

func (cc *runCounter) add(spec JobSpec) {
	canon, err := spec.Canonicalize()
	if err != nil {
		return
	}
	cc.mu.Lock()
	cc.runs[canon.Key()]++
	cc.mu.Unlock()
}

func (cc *runCounter) get(key string) int {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.runs[key]
}

// assertNoDoubles fails if any key anywhere in the scenario completed
// more than one engine run.
func (cc *runCounter) assertNoDoubles(t *testing.T) {
	t.Helper()
	cc.mu.Lock()
	defer cc.mu.Unlock()
	for key, n := range cc.runs {
		if n > 1 {
			t.Errorf("key %s ran %d engines, want at most 1", key[:16], n)
		}
	}
}

// crashNode is one cluster member with a stable loopback address that
// survives kill/restart cycles: the httptest listener stays up for the
// whole scenario; only the Server behind its swapHandler changes.
type crashNode struct {
	t        *testing.T
	sh       *swapHandler
	addr     string
	dir      string
	s        *Server
	jl       *queue.Journal
	gate     chan struct{}
	gateOnce *sync.Once
}

func newCrashNode(t *testing.T) *crashNode {
	t.Helper()
	sh := &swapHandler{}
	srv := httptest.NewServer(sh)
	t.Cleanup(srv.Close)
	return &crashNode{t: t, sh: sh, addr: srv.URL, dir: t.TempDir()}
}

// boot starts (or restarts) the node over its journal directory. Jobs
// whose seed is in gateSeeds block inside the engine until openGate —
// the scenario's handle on "crash while this job is pending/running".
func (n *crashNode) boot(cc *runCounter, peers []string, cfg Config, gateSeeds ...uint64) {
	n.t.Helper()
	jl, err := queue.OpenJournal(n.dir, queue.JournalOptions{Logf: n.t.Logf})
	if err != nil {
		n.t.Fatal(err)
	}
	cl, err := cluster.New(cluster.Options{
		Self:             n.addr,
		Peers:            peers,
		Timeout:          300 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  100 * time.Millisecond,
		Logf:             n.t.Logf,
	})
	if err != nil {
		n.t.Fatal(err)
	}
	n.gate = make(chan struct{})
	n.gateOnce = &sync.Once{}
	gate := n.gate
	gated := make(map[uint64]bool, len(gateSeeds))
	for _, s := range gateSeeds {
		gated[s] = true
	}
	cfg.Cluster = cl
	cfg.Journal = jl
	cfg.WatchdogInterval = -1
	if cfg.StealInterval == 0 {
		cfg.StealInterval = -1 // scenarios drive the handoff by hand
	}
	cfg.WrapEngine = func(engine string, next RunFunc) RunFunc {
		return func(ctx context.Context, spec JobSpec, workers int, progress func(mc.Snapshot)) (json.RawMessage, error) {
			if gated[spec.Seed] {
				select {
				case <-gate:
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
			body, err := next(ctx, spec, workers, progress)
			if err == nil {
				cc.add(spec)
			}
			return body, err
		}
	}
	n.jl = jl
	n.s = New(cfg)
	n.sh.set(n.s.Handler())
	s, once, g := n.s, n.gateOnce, n.gate
	n.t.Cleanup(func() {
		once.Do(func() { close(g) })
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	})
}

func (n *crashNode) openGate() { n.gateOnce.Do(func() { close(n.gate) }) }

// kill simulates a node death: the journal handle closes first (so no
// settle written after this instant reaches disk), peers start seeing
// errors, and in-flight work is abandoned mid-run.
func (n *crashNode) kill() {
	n.t.Helper()
	n.jl.Close()
	n.sh.set(nil) // swapHandler answers 503 until the next boot
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = n.s.Drain(ctx)
	n.s, n.jl = nil, nil
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(15 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// nodeHasResult probes a node's peer results endpoint for key.
func nodeHasResult(addr, key string) bool {
	resp, err := http.Get(addr + cluster.ResultsPathPrefix + key)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}

// saturateAndGrant fills the victim — a gated blocker pins its single
// worker, two more submissions build surplus — then extracts a one-job
// grant for the thief's address, journaling the intent (phase one).
// Returns the grant and the submitted jobs' ids by key.
func saturateAndGrant(t *testing.T, v *crashNode, thiefAddr string) (grant []cluster.StolenJob, ids map[string]string) {
	t.Helper()
	blocker := JobSpec{Protocol: "a", Graph: "pair", Trials: 30, Seed: crashBlockerSeed}
	st, err := v.s.Submit(blocker)
	if err != nil {
		t.Fatal(err)
	}
	ids = map[string]string{st.Key: st.ID}
	waitUntil(t, "blocker to occupy the worker", func() bool { return v.s.running.Load() == 1 })
	for _, seed := range []uint64{crashStolenSeedA, crashStolenSeedB} {
		st, err := v.s.Submit(JobSpec{Protocol: "a", Graph: "pair", Trials: 30, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		ids[st.Key] = st.ID
	}
	grant = v.s.stealVictim(1, thiefAddr)
	if len(grant) != 1 {
		t.Fatalf("stealVictim granted %d jobs, want 1", len(grant))
	}
	return grant, ids
}

func TestStealCrashSchedule(t *testing.T) {
	// P1: the thief never durably takes the job (it answers, but knows
	// nothing of K). The victim's follower exhausts its poll budget and
	// reclaims; every key runs exactly once, all on the victim.
	t.Run("P1_thief_never_adopts", func(t *testing.T) {
		cc := newRunCounter()
		v, th := newCrashNode(t), newCrashNode(t)
		peers := []string{v.addr, th.addr}
		v.boot(cc, peers, Config{Workers: 1, StealPollInterval: 25 * time.Millisecond, StealPollFailures: 4}, crashBlockerSeed)
		th.boot(cc, peers, Config{Workers: 1})
		grant, ids := saturateAndGrant(t, v, th.addr)
		k := grant[0].Key

		waitUntil(t, "victim to reclaim the unadopted job", func() bool {
			return v.s.Metrics().JobsReclaimed.Load() == 1
		})
		v.openGate()
		for _, id := range ids {
			if st := waitDone(t, v.s, id); st.State != StateDone {
				t.Fatalf("job %s: %s (%s)", id, st.State, st.Error)
			}
		}
		if got := cc.get(k); got != 1 {
			t.Fatalf("stolen key ran %d engines, want 1", got)
		}
		if got := th.s.Metrics().JobsStolen.Load(); got != 0 {
			t.Fatalf("thief adopted %d jobs, want 0", got)
		}
		cc.assertNoDoubles(t)
	})

	// P2: same, but the victim dies right after journaling the intent.
	// Its replay must re-attach the follower (not blindly re-enqueue),
	// discover the thief never took the job, and run it locally once.
	t.Run("P2_victim_dies_after_intent", func(t *testing.T) {
		cc := newRunCounter()
		v, th := newCrashNode(t), newCrashNode(t)
		peers := []string{v.addr, th.addr}
		// Poll interval ~1h: the first instance's follower never fires
		// before the kill, so the crash point is exactly "intent on disk,
		// nothing else happened".
		v.boot(cc, peers, Config{Workers: 1, StealPollInterval: time.Hour, StealPollFailures: 4}, crashBlockerSeed)
		th.boot(cc, peers, Config{Workers: 1})
		grant, _ := saturateAndGrant(t, v, th.addr)
		k := grant[0].Key
		v.kill()

		v.boot(cc, peers, Config{Workers: 1, StealPollInterval: 25 * time.Millisecond, StealPollFailures: 4})
		if got := v.s.Metrics().QueueReplayed.Load(); got != 3 {
			t.Fatalf("victim replayed %d records, want 3 (blocker, filler, intent)", got)
		}
		waitUntil(t, "replayed follower to reclaim", func() bool {
			return v.s.Metrics().JobsReclaimed.Load() == 1
		})
		waitUntil(t, "reclaimed key to run locally", func() bool { return nodeHasResult(v.addr, k) })
		if got := cc.get(k); got != 1 {
			t.Fatalf("stolen key ran %d engines, want 1", got)
		}
		cc.assertNoDoubles(t)
	})

	// P3: the thief journals the job (adopt) and dies before the commit.
	// Its restart replays and runs K; the victim's follower — which keeps
	// polling because the thief provably knows the job — serves the
	// result as a peer hit. No reclaim, no second run.
	t.Run("P3_thief_dies_before_commit", func(t *testing.T) {
		cc := newRunCounter()
		v, th := newCrashNode(t), newCrashNode(t)
		peers := []string{v.addr, th.addr}
		v.boot(cc, peers, Config{Workers: 1, StealPollInterval: 25 * time.Millisecond, StealPollFailures: 1000}, crashBlockerSeed)
		th.boot(cc, peers, Config{Workers: 1}, crashStolenSeedA, crashStolenSeedB)
		grant, ids := saturateAndGrant(t, v, th.addr)
		k := grant[0].Key

		adopted, committed := th.s.adoptStolen(grant)
		if adopted != 1 || len(committed) != 1 || committed[0] != k {
			t.Fatalf("adopt: adopted=%d committed=%v", adopted, committed)
		}
		// Crash before the commit leaves: K is in both WALs.
		th.kill()

		th.boot(cc, peers, Config{Workers: 1})
		if st := waitDone(t, v.s, ids[k]); st.State != StateDone {
			t.Fatalf("victim job for stolen key: %s (%s)", st.State, st.Error)
		}
		if got := cc.get(k); got != 1 {
			t.Fatalf("stolen key ran %d engines, want 1", got)
		}
		if got := v.s.Metrics().JobsReclaimed.Load(); got != 0 {
			t.Fatalf("victim reclaimed %d jobs, want 0 (thief's WAL owned it)", got)
		}
		if got := v.s.Metrics().PeerHits.Load(); got != 1 {
			t.Fatalf("victim peer hits = %d, want 1", got)
		}
		cc.assertNoDoubles(t)
	})

	// P4: full handoff (adopt + commit), then the victim dies. Its
	// replay must have no record of K — the commit tombstoned the intent
	// — while the thief computes it once.
	t.Run("P4_victim_dies_after_commit", func(t *testing.T) {
		cc := newRunCounter()
		v, th := newCrashNode(t), newCrashNode(t)
		peers := []string{v.addr, th.addr}
		v.boot(cc, peers, Config{Workers: 1, StealPollInterval: time.Hour, StealPollFailures: 4}, crashBlockerSeed)
		th.boot(cc, peers, Config{Workers: 1})
		grant, _ := saturateAndGrant(t, v, th.addr)
		k := grant[0].Key

		_, committed := th.s.adoptStolen(grant)
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		err := th.s.cluster.CommitSteal(ctx, v.addr, committed)
		cancel()
		if err != nil {
			t.Fatalf("commit: %v", err)
		}
		v.kill()

		v.boot(cc, peers, Config{Workers: 1, StealPollInterval: 25 * time.Millisecond, StealPollFailures: 4})
		if got := v.s.Metrics().QueueReplayed.Load(); got != 2 {
			t.Fatalf("victim replayed %d records, want 2 (the commit tombstoned the intent)", got)
		}
		waitUntil(t, "thief to compute the stolen key", func() bool { return nodeHasResult(th.addr, k) })
		if got := cc.get(k); got != 1 {
			t.Fatalf("stolen key ran %d engines, want 1", got)
		}
		if got := v.s.Metrics().JobsReclaimed.Load(); got != 0 {
			t.Fatalf("restarted victim reclaimed %d jobs, want 0", got)
		}
		cc.assertNoDoubles(t)
	})

	// P5: commit lands, then the thief dies before running K. Its
	// replay runs it; the victim's follower (still polling — the commit
	// cleared the WAL, not the in-memory job) gets the result.
	t.Run("P5_thief_dies_after_commit_before_run", func(t *testing.T) {
		cc := newRunCounter()
		v, th := newCrashNode(t), newCrashNode(t)
		peers := []string{v.addr, th.addr}
		v.boot(cc, peers, Config{Workers: 1, StealPollInterval: 25 * time.Millisecond, StealPollFailures: 1000}, crashBlockerSeed)
		th.boot(cc, peers, Config{Workers: 1}, crashStolenSeedA, crashStolenSeedB)
		grant, ids := saturateAndGrant(t, v, th.addr)
		k := grant[0].Key

		_, committed := th.s.adoptStolen(grant)
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		err := th.s.cluster.CommitSteal(ctx, v.addr, committed)
		cancel()
		if err != nil {
			t.Fatalf("commit: %v", err)
		}
		th.kill() // K ran 0 times; it exists only in the thief's WAL

		th.boot(cc, peers, Config{Workers: 1})
		if st := waitDone(t, v.s, ids[k]); st.State != StateDone {
			t.Fatalf("victim job for stolen key: %s (%s)", st.State, st.Error)
		}
		if got := cc.get(k); got != 1 {
			t.Fatalf("stolen key ran %d engines, want 1", got)
		}
		cc.assertNoDoubles(t)
	})

	// P6: commit lands, then both nodes die. The victim's replay has no
	// record of K (tombstoned); the thief's replay runs it once. The
	// cluster keeps the promise even though the submitting client's
	// daemon forgot the job existed.
	t.Run("P6_both_die_after_commit", func(t *testing.T) {
		cc := newRunCounter()
		v, th := newCrashNode(t), newCrashNode(t)
		peers := []string{v.addr, th.addr}
		v.boot(cc, peers, Config{Workers: 1, StealPollInterval: time.Hour, StealPollFailures: 4}, crashBlockerSeed)
		th.boot(cc, peers, Config{Workers: 1}, crashStolenSeedA, crashStolenSeedB)
		grant, _ := saturateAndGrant(t, v, th.addr)
		k := grant[0].Key

		_, committed := th.s.adoptStolen(grant)
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		err := th.s.cluster.CommitSteal(ctx, v.addr, committed)
		cancel()
		if err != nil {
			t.Fatalf("commit: %v", err)
		}
		th.kill()
		v.kill()

		th.boot(cc, peers, Config{Workers: 1})
		v.boot(cc, peers, Config{Workers: 1, StealPollInterval: 25 * time.Millisecond, StealPollFailures: 4})
		if got := v.s.Metrics().QueueReplayed.Load(); got != 2 {
			t.Fatalf("victim replayed %d records, want 2", got)
		}
		waitUntil(t, "restarted thief to compute the stolen key", func() bool { return nodeHasResult(th.addr, k) })
		if got := cc.get(k); got != 1 {
			t.Fatalf("stolen key ran %d engines, want 1", got)
		}
		if got := v.s.Metrics().JobsReclaimed.Load(); got != 0 {
			t.Fatalf("restarted victim reclaimed %d jobs, want 0", got)
		}
		cc.assertNoDoubles(t)
	})
}
