package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"coordattack/internal/cluster"
	"coordattack/internal/mc"
	"coordattack/internal/queue"
	"coordattack/internal/store"
)

// The anti-entropy repair loop: a node whose store holds bodies its
// replica peers are missing must probe them (HEAD) and push exactly the
// missing ones, resuming its cursor across batch-bounded passes.
func TestRepairPassHealsMissingReplicas(t *testing.T) {
	shA, shB := &swapHandler{}, &swapHandler{}
	srvA := httptest.NewServer(shA)
	srvB := httptest.NewServer(shB)
	defer srvA.Close()
	defer srvB.Close()

	st, err := store.Open(t.TempDir(), store.Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	mk := func(self string, cfg Config) *Server {
		cl, err := cluster.New(cluster.Options{
			Self:    self,
			Peers:   []string{srvA.URL, srvB.URL},
			Timeout: 500 * time.Millisecond,
			Logf:    t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Cluster = cl
		cfg.WatchdogInterval = -1
		cfg.StealInterval = -1
		s := New(cfg)
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = s.Drain(ctx)
		})
		return s
	}
	// RepairInterval -1: the test drives passes by hand, synchronously.
	a := mk(srvA.URL, Config{Workers: 1, Store: st, RepairInterval: -1, RepairBatch: 2})
	b := mk(srvB.URL, Config{Workers: 1, RepairInterval: -1})
	shA.set(a.Handler())
	shB.set(b.Handler())

	// Three bodies durable on A only. Factor 2 over two members puts B in
	// every key's replica set, so all three are under-replicated.
	keys := make([]string, 3)
	for i := range keys {
		keys[i] = fmt.Sprintf("%064x", i+1)
		if err := st.Put(keys[i], json.RawMessage(fmt.Sprintf(`{"n":%d}`, i+1))); err != nil {
			t.Fatal(err)
		}
	}

	ctx := context.Background()
	scanned, repaired := a.repairPass(ctx)
	if scanned != 2 || repaired != 2 {
		t.Fatalf("pass 1: scanned=%d repaired=%d, want 2/2 (batch bound)", scanned, repaired)
	}
	// Pass 2 resumes after the cursor: the one remaining key is pushed,
	// the wrap-around re-probe of an already-healed key pushes nothing.
	scanned, repaired = a.repairPass(ctx)
	if scanned != 2 || repaired != 1 {
		t.Fatalf("pass 2: scanned=%d repaired=%d, want 2/1 (cursor resume)", scanned, repaired)
	}
	for _, k := range keys {
		if !nodeHasResult(srvB.URL, k) {
			t.Fatalf("replica %s still missing key %s after repair", srvB.URL, k[:16])
		}
	}
	if got := a.Metrics().ReplicaRepairs.Load(); got != 3 {
		t.Fatalf("replica repairs = %d, want 3", got)
	}
	// A healed cluster repairs nothing more.
	if _, repaired = a.repairPass(ctx); repaired != 0 {
		t.Fatalf("steady-state pass repaired %d, want 0", repaired)
	}

	// The admin endpoint surfaces the replication summary next to the
	// ring snapshot (self/peers stay top-level).
	adm := httpGetJSON(t, srvA.URL+"/v1/admin/cluster")
	if adm["self"] != cluster.NormalizeAddr(srvA.URL) {
		t.Fatalf("admin self = %v", adm["self"])
	}
	rep, ok := adm["replication"].(map[string]any)
	if !ok {
		t.Fatalf("admin endpoint missing replication summary: %v", adm)
	}
	if rep["local_keys"] != float64(3) || rep["repairs"] != float64(3) {
		t.Fatalf("replication summary = %v, want local_keys=3 repairs=3", rep)
	}
	if rep["repair_runs"] != float64(3) {
		t.Fatalf("repair_runs = %v, want 3", rep["repair_runs"])
	}
}

// The 429 Retry-After estimate is per scheduling class: a backlog of
// multi-minute sweep cells must not inflate an interactive client's
// backoff, and vice versa.
func TestRetryAfterPerClass(t *testing.T) {
	gate := make(chan struct{})
	s := New(Config{
		Workers:          1,
		WatchdogInterval: -1,
		WrapEngine: func(engine string, next RunFunc) RunFunc {
			return func(ctx context.Context, spec JobSpec, workers int, progress func(mc.Snapshot)) (json.RawMessage, error) {
				select {
				case <-gate:
				case <-ctx.Done():
					return nil, ctx.Err()
				}
				return next(ctx, spec, workers, progress)
			}
		},
	})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	}()
	defer close(gate) // LIFO: release the blocker before draining

	// A gated blocker pins the worker; then 2 interactive and 3 sweep
	// jobs queue behind it.
	if _, err := s.Submit(JobSpec{Protocol: "a", Graph: "pair", Trials: 30, Seed: 9000}); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "blocker to occupy the worker", func() bool { return s.running.Load() == 1 })
	for seed := uint64(9001); seed <= 9002; seed++ {
		if _, err := s.Submit(JobSpec{Protocol: "a", Graph: "pair", Trials: 30, Seed: seed}); err != nil {
			t.Fatal(err)
		}
	}
	for seed := uint64(9003); seed <= 9005; seed++ {
		if _, err := s.submit(JobSpec{Protocol: "a", Graph: "pair", Trials: 30, Seed: seed}, queue.ClassSweep, "sweep:test"); err != nil {
			t.Fatal(err)
		}
	}

	// Observed history: interactive jobs take ~1 s, sweep cells ~100 s.
	s.metrics.ObserveJobSeconds(1.0, queue.ClassInteractive)
	s.metrics.ObserveJobSeconds(100.0, queue.ClassSweep)

	secsI, depth, capacity := s.retryAfter(queue.ClassInteractive)
	secsS, _, _ := s.retryAfter(queue.ClassSweep)
	if depth != 5 || capacity != 64 {
		t.Fatalf("depth=%d capacity=%d, want 5/64", depth, capacity)
	}
	// interactive: ceil((2+1)/1 × 1 s) = 3; sweep: ceil((3+1)/1 × 100 s)
	// = 400, clamped to the 300 s ceiling.
	if secsI != 3 {
		t.Fatalf("interactive Retry-After = %d, want 3", secsI)
	}
	if secsS != 300 {
		t.Fatalf("sweep Retry-After = %d, want 300 (clamped)", secsS)
	}

	// A class with no completions yet borrows the overall mean rather
	// than defaulting to the 1 s floor.
	m := NewMetrics()
	m.ObserveJobSeconds(40, queue.ClassInteractive)
	if got := m.MeanJobSecondsClass(queue.ClassSweep); got != 40 {
		t.Fatalf("unobserved class mean = %g, want overall mean 40", got)
	}
}
