package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// slowWriter is an http.ResponseWriter+Flusher whose every Write stalls,
// simulating a client that cannot keep up with the 10 Hz snapshot rate.
type slowWriter struct {
	delay  time.Duration
	header http.Header

	mu     sync.Mutex
	buf    bytes.Buffer
	writes int
}

func (w *slowWriter) Header() http.Header { return w.header }
func (w *slowWriter) WriteHeader(int)     {}
func (w *slowWriter) Flush()              {}
func (w *slowWriter) Write(p []byte) (int, error) {
	time.Sleep(w.delay)
	w.mu.Lock()
	defer w.mu.Unlock()
	w.writes++
	return w.buf.Write(p)
}

// TestWatchSlowClientCoalesces drives streamNDJSON with a reader that
// takes 500 ms per line while snapshots are produced at 10 Hz: the
// stream must skip intermediate snapshots (coalesce) rather than
// backlog or block the producer, and still end with the terminal state.
func TestWatchSlowClientCoalesces(t *testing.T) {
	const totalSnapshots = 15

	w := &slowWriter{delay: 500 * time.Millisecond, header: make(http.Header)}
	var coalesced atomic.Int64
	var produced atomic.Int64
	snapshot := func() (any, bool) {
		n := produced.Add(1)
		term := n >= totalSnapshots
		return map[string]any{"seq": n, "terminal": term}, term
	}

	start := time.Now()
	streamNDJSON(w, w, nil, nil, &coalesced, snapshot)
	elapsed := time.Since(start)

	var lines []struct {
		Seq      int64 `json:"seq"`
		Terminal bool  `json:"terminal"`
	}
	sc := bufio.NewScanner(&w.buf)
	for sc.Scan() {
		var line struct {
			Seq      int64 `json:"seq"`
			Terminal bool  `json:"terminal"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, line)
	}
	if len(lines) == 0 {
		t.Fatal("no lines written")
	}

	last := lines[len(lines)-1]
	if !last.Terminal || last.Seq != totalSnapshots {
		t.Errorf("stream ended with %+v, want the terminal snapshot %d", last, totalSnapshots)
	}
	if int64(len(lines)) >= produced.Load() {
		t.Errorf("wrote %d of %d snapshots: slow client got a backlog instead of coalescing", len(lines), produced.Load())
	}
	if coalesced.Load() == 0 {
		t.Error("no snapshots counted as coalesced")
	}
	// Monotonic: coalescing may skip states but never reorders them.
	for i := 1; i < len(lines); i++ {
		if lines[i].Seq <= lines[i-1].Seq {
			t.Errorf("line %d seq %d not after %d", i, lines[i].Seq, lines[i-1].Seq)
		}
	}
	// The producer ran at ~10 Hz for 15 snapshots (~1.5 s). If the slow
	// writer had throttled it, production alone would have taken ~7.5 s.
	if elapsed > 6*time.Second {
		t.Errorf("stream took %v: the slow client throttled the producer", elapsed)
	}
}

// TestWatchFastClientGetsEveryTerminalState checks the no-backpressure
// path end to end on a real job via the existing HTTP handler — covered
// by TestHTTPWatchStreamsProgress — so here we only pin the unit
// behavior: an immediately-terminal snapshot yields exactly one line.
func TestWatchImmediatelyTerminal(t *testing.T) {
	w := &slowWriter{header: make(http.Header)}
	var coalesced atomic.Int64
	streamNDJSON(w, w, nil, nil, &coalesced, func() (any, bool) {
		return map[string]string{"state": "done"}, true
	})
	got := bytes.TrimSpace(w.buf.Bytes())
	if bytes.ContainsRune(got, '\n') {
		t.Errorf("terminal-at-start stream wrote more than one line:\n%s", got)
	}
	if len(got) == 0 {
		t.Error("terminal-at-start stream wrote nothing")
	}
	if coalesced.Load() != 0 {
		t.Errorf("coalesced = %d on a one-line stream", coalesced.Load())
	}
}

// TestWatchClientDisconnectEndsStream closes the client mid-stream and
// checks the producer loop exits instead of ticking forever.
func TestWatchClientDisconnectEndsStream(t *testing.T) {
	w := &slowWriter{header: make(http.Header)}
	clientGone := make(chan struct{})
	var coalesced atomic.Int64
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		streamNDJSON(w, w, clientGone, nil, &coalesced, func() (any, bool) {
			return map[string]string{"state": "running"}, false
		})
	}()
	time.Sleep(250 * time.Millisecond)
	close(clientGone)
	select {
	case <-finished:
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not end after client disconnect")
	}
}
