package service

import (
	"bytes"
	"context"
	"encoding/json"
	"runtime"
	"testing"
	"time"

	"coordattack/internal/stats"
)

// drain shuts a test server down, cancelling whatever is still running.
func drain(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = s.Drain(ctx)
}

// waitState polls until the job reaches a terminal state.
func waitState(t *testing.T, s *Server, id string, timeout time.Duration) *Status {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st, err := s.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", id, st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestSubmitRunsAndMemoizes(t *testing.T) {
	s := New(Config{Workers: 2})
	defer drain(t, s)

	spec := JobSpec{Protocol: "s:0.3", Trials: 2000, Seed: 9}
	first, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if first.State != StateQueued {
		t.Fatalf("first submission state %s, want queued", first.State)
	}
	fin := waitState(t, s, first.ID, 10*time.Second)
	if fin.State != StateDone || fin.Cached {
		t.Fatalf("first job finished %s cached=%v", fin.State, fin.Cached)
	}
	if fin.Progress.Completed != 2000 || fin.Progress.CIWidth >= 1 {
		t.Errorf("final progress %+v not settled", fin.Progress)
	}

	// The identical computation, spelled differently: answered from the
	// cache, bit-identical to the first result.
	second, err := s.Submit(JobSpec{Engine: "MC", Protocol: " S:0.3 ", Graph: "pair", Run: "GOOD", Trials: 2000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if second.State != StateDone || !second.Cached {
		t.Fatalf("second submission state %s cached=%v, want done from cache", second.State, second.Cached)
	}
	if !bytes.Equal(second.Result, fin.Result) {
		t.Errorf("cached result differs from computed result:\n%s\nvs\n%s", second.Result, fin.Result)
	}
	if hits, _ := s.CacheStats(); hits != 1 {
		t.Errorf("cache hits = %d, want 1", hits)
	}

	var body struct {
		Result struct {
			Completed int `json:"completed"`
		} `json:"result"`
		Partial bool `json:"partial"`
	}
	if err := json.Unmarshal(second.Result, &body); err != nil {
		t.Fatal(err)
	}
	if body.Result.Completed != 2000 || body.Partial {
		t.Errorf("cached body %+v", body)
	}
}

// TestCancelMidFlightReturnsPartial is the e2e acceptance check: a
// 1e5-trial job cancelled mid-flight settles as cancelled with a
// partial result, and no worker goroutines are left behind.
func TestCancelMidFlightReturnsPartial(t *testing.T) {
	s := New(Config{Workers: 1})
	defer drain(t, s)
	base := runtime.NumGoroutine()

	st, err := s.Submit(JobSpec{Protocol: "s:0.05", Graph: "complete:8", Rounds: 40, Trials: 100_000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for real progress so the cancellation is genuinely mid-flight.
	deadline := time.Now().Add(10 * time.Second)
	for {
		cur, err := s.Get(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.Progress.Completed > 0 {
			break
		}
		if cur.State.Terminal() {
			t.Fatalf("job finished (%s) before it could be cancelled", cur.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("no progress observed")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	fin := waitState(t, s, st.ID, 10*time.Second)
	if fin.State != StateCancelled {
		t.Fatalf("state %s, want cancelled", fin.State)
	}
	if fin.Result == nil {
		t.Fatal("cancelled job carried no partial result")
	}
	var body struct {
		Result struct {
			Completed int `json:"completed"`
			Trials    int `json:"trials"`
		} `json:"result"`
		Partial bool `json:"partial"`
	}
	if err := json.Unmarshal(fin.Result, &body); err != nil {
		t.Fatal(err)
	}
	if !body.Partial || body.Result.Completed == 0 || body.Result.Completed >= body.Result.Trials {
		t.Errorf("partial body %+v, want 0 < completed < %d", body, body.Result.Trials)
	}
	// Partial results must not poison the cache.
	if _, ok := s.cache.Get(fin.Key); ok {
		t.Error("partial result entered the cache")
	}

	// Every mc worker goroutine must have exited.
	leakDeadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base+2 {
		if time.Now().After(leakDeadline) {
			t.Fatalf("goroutines leaked: %d now vs %d at start", runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPrecisionJobStopsEarly is the adaptive-stopping acceptance check:
// a served job with a precision block halts once every Wilson 95%
// interval is at most the target width, reports the trials actually
// run, and still memoizes (the stopping rule is deterministic).
func TestPrecisionJobStopsEarly(t *testing.T) {
	s := New(Config{Workers: 2})
	defer drain(t, s)

	spec := JobSpec{
		Protocol: "s:0.3", Run: "cut:5", Trials: 100_000, Seed: 9,
		Precision: &PrecisionSpec{CIWidth: 0.02},
	}
	st, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	fin := waitState(t, s, st.ID, 30*time.Second)
	if fin.State != StateDone {
		t.Fatalf("precision job ended %s: %s", fin.State, fin.Error)
	}
	var body mcBody
	if err := json.Unmarshal(fin.Result, &body); err != nil {
		t.Fatal(err)
	}
	if !body.Result.Stopped {
		t.Error("job did not report an early stop")
	}
	if body.Result.Completed >= body.Result.Trials {
		t.Errorf("completed %d of %d trials: no budget saved", body.Result.Completed, body.Result.Trials)
	}
	for _, iv := range []struct {
		name string
		iv   stats.Interval
	}{{"ta", body.TAWilson95}, {"pa", body.PAWilson95}, {"na", body.NAWilson95}} {
		if w := iv.iv.Width(); w > 0.02 {
			t.Errorf("%s interval width %v over the 0.02 target", iv.name, w)
		}
	}
	if body.Partial {
		t.Error("early stop mislabeled as a partial result")
	}

	// Early-stopped bodies are as cacheable as fixed-count ones.
	again, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || !bytes.Equal(again.Result, fin.Result) {
		t.Error("early-stopped result not served bit-identically from cache")
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	defer drain(t, s)
	slow := func(seed uint64) JobSpec {
		return JobSpec{Protocol: "s:0.05", Graph: "complete:8", Rounds: 40, Trials: 100_000, Seed: seed}
	}
	if _, err := s.Submit(slow(1)); err != nil {
		t.Fatal(err)
	}
	// The worker may or may not have dequeued job 1 yet; keep adding
	// until the queue rejects, which must happen by the third job.
	var sawFull bool
	for seed := uint64(2); seed <= 4; seed++ {
		if _, err := s.Submit(slow(seed)); err == ErrQueueFull {
			sawFull = true
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if !sawFull {
		t.Error("queue never pushed back")
	}
	if s.Metrics().JobsRejected.Load() == 0 {
		t.Error("rejected jobs not counted")
	}
}

func TestDrainRejectsNewWork(t *testing.T) {
	s := New(Config{Workers: 1})
	st, err := s.Submit(JobSpec{Protocol: "s:0.5", Rounds: 4, Trials: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// The queued job was allowed to finish.
	fin, err := s.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateDone {
		t.Errorf("queued job state after drain: %s, want done", fin.State)
	}
	if _, err := s.Submit(JobSpec{Protocol: "s:0.5", Trials: 100}); err != ErrDraining {
		t.Errorf("submit while draining: %v, want ErrDraining", err)
	}
}

func TestExperimentEngineJob(t *testing.T) {
	s := New(Config{Workers: 1})
	defer drain(t, s)
	st, err := s.Submit(JobSpec{Engine: "experiment", Experiment: "t1", Quick: true, Trials: 500})
	if err != nil {
		t.Fatal(err)
	}
	fin := waitState(t, s, st.ID, 30*time.Second)
	if fin.State != StateDone {
		t.Fatalf("experiment job ended %s: %s", fin.State, fin.Error)
	}
	var body struct {
		ID string `json:"id"`
		OK bool   `json:"ok"`
	}
	if err := json.Unmarshal(fin.Result, &body); err != nil {
		t.Fatal(err)
	}
	if body.ID != "T1" || !body.OK {
		t.Errorf("experiment body %+v", body)
	}
	// Same experiment again: memoized.
	again, err := s.Submit(JobSpec{Engine: "EXPERIMENT", Experiment: "T1", Quick: true, Trials: 500})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || !bytes.Equal(again.Result, fin.Result) {
		t.Errorf("experiment result not served from cache")
	}
}

func TestDeadlineExpiryCancelsJob(t *testing.T) {
	s := New(Config{Workers: 1, JobTimeout: 50 * time.Millisecond})
	defer drain(t, s)
	st, err := s.Submit(JobSpec{Protocol: "s:0.05", Graph: "complete:8", Rounds: 40, Trials: 5_000_000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	fin := waitState(t, s, st.ID, 10*time.Second)
	if fin.State != StateCancelled {
		t.Errorf("deadline-expired job state %s, want cancelled", fin.State)
	}
}
