package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"coordattack/internal/cluster"
)

// clusterTrio boots three coordd servers joined as a 3-node cluster
// with full replication (factor 3), so every key's replica set is the
// whole membership — the shape read-repair and hint tests need.
func clusterTrio(t *testing.T, mkCfg func(i int) Config) (srvs [3]*Server, shs [3]*swapHandler, addrs [3]string) {
	t.Helper()
	for i := range shs {
		shs[i] = &swapHandler{}
		hs := httptest.NewServer(shs[i])
		t.Cleanup(hs.Close)
		addrs[i] = hs.URL
	}
	for i := range srvs {
		cl, err := cluster.New(cluster.Options{
			Self:             addrs[i],
			Peers:            addrs[:],
			Factor:           3,
			Timeout:          500 * time.Millisecond,
			BreakerThreshold: 3,
			BreakerCooldown:  200 * time.Millisecond,
			Logf:             t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg := mkCfg(i)
		cfg.Cluster = cl
		if cfg.WatchdogInterval == 0 {
			cfg.WatchdogInterval = -1
		}
		s := New(cfg)
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = s.Drain(ctx)
		})
		srvs[i] = s
		shs[i].set(s.Handler())
	}
	return srvs, shs, addrs
}

// Tentpole: hinted handoff end to end inside the service. A replica
// push that bounces off a dark peer queues a hint; the failure detector
// notices the peer healing and the hint drains — the peer ends up with
// the body having run zero engines, with anti-entropy disabled the
// whole time.
func TestClusterPeerHintedHandoffDelivery(t *testing.T) {
	srvs, shs, addrs := clusterTrio(t, func(i int) Config {
		return Config{
			Workers:       1,
			StealInterval: -1,
			ProbeInterval: 50 * time.Millisecond,
			ProbeMisses:   2,
		}
	})
	a, b := srvs[0], srvs[1]
	addrB := addrs[1]

	// B goes dark: its listener answers 503 to everything, so pushes
	// and pings both fail. (The listener stays up — the breaker sees
	// fast refusals, the detector sees misses.)
	shB := shs[1]
	shB.set(nil)

	// Compute on A a key owned by B: the owner consult fails, A
	// computes locally, and the replica push to B bounces into a hint.
	spec := specOwnedBy(t, a.cluster, addrB, 50)
	canon, err := spec.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	key := canon.Key()
	st, err := a.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st = waitDone(t, a, st.ID); st.State != StateDone {
		t.Fatalf("compute with dark peer: %s (%s)", st.State, st.Error)
	}

	normB := cluster.NormalizeAddr(addrB)
	deadline := time.Now().Add(5 * time.Second)
	for a.hints.PendingFor(normB) == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := a.hints.PendingFor(normB); got == 0 {
		t.Fatal("failed replica push never queued a hint")
	}
	if pf := a.Metrics().PushFailures(); pf[normB] == 0 {
		t.Fatalf("push failure not counted for %s: %v", normB, pf)
	}
	// The detector must have marked B dead by now (2 misses at 50 ms).
	for a.cluster.PeerHealth(normB) != cluster.HealthDead && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := a.cluster.PeerHealth(normB); got != cluster.HealthDead {
		t.Fatalf("peer health = %q, want dead", got)
	}

	// Heal B. The next successful ping fires OnAlive and the hint
	// drains — B ends up holding the body without running anything.
	shB.set(b.Handler())
	for a.hints.PendingFor(normB) > 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := a.hints.PendingFor(normB); got != 0 {
		t.Fatalf("%d hints still pending after the peer healed", got)
	}
	has, err := a.cluster.HasResult(context.Background(), normB, key)
	if err != nil || !has {
		t.Fatalf("healed peer missing the hinted body: has=%v err=%v", has, err)
	}
	if got := b.Metrics().EngineRuns.Load(); got != 0 {
		t.Fatalf("B ran %d engines; hint delivery must not compute", got)
	}
	if got := a.hints.Stats().Delivered; got == 0 {
		t.Fatal("delivered counter did not move")
	}

	// Idempotency: delivering the same hint again (the peer flapping
	// mid-drain would do this) rewrites identical bytes and still runs
	// no engine.
	bodyBefore, found, err := a.cluster.FetchFrom(context.Background(), normB, key)
	if err != nil || !found {
		t.Fatalf("could not fetch the delivered body back: found=%v err=%v", found, err)
	}
	if err := a.hints.Add(normB, key); err != nil {
		t.Fatal(err)
	}
	a.deliverHints(normB)
	bodyAfter, found, err := a.cluster.FetchFrom(context.Background(), normB, key)
	if err != nil || !found || string(bodyAfter) != string(bodyBefore) {
		t.Fatalf("duplicate delivery changed stored bytes:\nbefore: %s\nafter:  %s", bodyBefore, bodyAfter)
	}
	if got := b.Metrics().EngineRuns.Load(); got != 0 {
		t.Fatalf("duplicate delivery ran %d engines", got)
	}
}

// Satellite: fetch-path read-repair. With anti-entropy off, a fetch
// that recovers a body from one replica pushes it to the replica-set
// members that missed it, off the request path.
func TestClusterPeerReadRepairHealsReplica(t *testing.T) {
	srvs, _, addrs := clusterTrio(t, func(i int) Config {
		return Config{Workers: 1, StealInterval: -1, ProbeInterval: -1}
	})
	a, b, c := srvs[0], srvs[1], srvs[2]

	// Pre-seed the body onto C only (bit-exact peer PUT), then submit
	// on A: A misses locally, recovers the body from C, and read-repair
	// must close B's gap — all with zero engine runs anywhere.
	spec := JobSpec{Protocol: "a", Graph: "pair", Trials: 40, Seed: 9}
	canon, err := spec.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	key := canon.Key()
	body := `{"preloaded":"read-repair"}`
	req, _ := http.NewRequest(http.MethodPut, addrs[2]+cluster.ResultsPathPrefix+key, strings.NewReader(body))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("peer PUT answered %d", resp.StatusCode)
	}

	st, err := a.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st = waitDone(t, a, st.ID); st.State != StateDone || string(st.Result) != body {
		t.Fatalf("fall-through fetch: state=%s result=%s", st.State, st.Result)
	}
	if got := a.Metrics().EngineRuns.Load(); got != 0 {
		t.Fatalf("A ran %d engines, want 0", got)
	}

	// Read-repair runs async off the request path; wait for B to hold
	// the body.
	normB := cluster.NormalizeAddr(addrs[1])
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if has, err := a.cluster.HasResult(context.Background(), normB, key); err == nil && has {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if has, err := a.cluster.HasResult(context.Background(), normB, key); err != nil || !has {
		t.Fatalf("read-repair never pushed the body to B: has=%v err=%v", has, err)
	}
	if got := a.Metrics().ReadRepairs.Load(); got == 0 {
		t.Fatal("read-repair counter did not move")
	}
	for _, s := range []*Server{b, c} {
		if got := s.Metrics().EngineRuns.Load(); got != 0 {
			t.Fatalf("a replica ran %d engines; healing must not compute", got)
		}
	}
}

// Satellite: the repair-pass budget derives from the repair interval
// when not set, clamped to [1s, 10s], and an explicit value wins.
func TestRepairTimeoutScalesWithInterval(t *testing.T) {
	cases := []struct {
		interval, explicit, want time.Duration
	}{
		{100 * time.Millisecond, 0, time.Second},              // clamped up
		{5 * time.Second, 0, 5 * time.Second},                 // tracks the interval
		{time.Minute, 0, 10 * time.Second},                    // clamped down
		{5 * time.Second, 30 * time.Second, 30 * time.Second}, // explicit wins
	}
	for _, tc := range cases {
		cfg := Config{RepairInterval: tc.interval, RepairTimeout: tc.explicit}.withDefaults()
		if cfg.RepairTimeout != tc.want {
			t.Errorf("interval %v explicit %v: timeout %v, want %v",
				tc.interval, tc.explicit, cfg.RepairTimeout, tc.want)
		}
	}
}
