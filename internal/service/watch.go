package service

import (
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// watchInterval is the target snapshot rate of /watch streams: one
// status line every 100 ms (10 Hz) while the watched object runs.
const watchInterval = 100 * time.Millisecond

// streamNDJSON streams snapshots to w as NDJSON with backpressure
// coalescing. Two goroutines share a one-slot latest-value mailbox:
//
//   - The producer (this goroutine) snapshots at 10 Hz and overwrites
//     the mailbox. It never blocks on the connection, so a stalled
//     client cannot slow snapshot production or anything behind it.
//   - The writer drains the mailbox and encodes to the connection at
//     whatever pace the client sustains. When it falls behind, the
//     overwritten snapshots are simply never sent — the next write
//     carries the latest state, not a stale backlog.
//
// Every skipped snapshot increments coalesced. snapshot returns the
// current view and whether it is terminal; the stream always ends with
// a terminal line (or when the client goes away). done should close
// when the watched object settles, so the terminal line is written
// promptly instead of at the next tick.
func streamNDJSON(w http.ResponseWriter, flusher http.Flusher, clientGone <-chan struct{}, done <-chan struct{}, coalesced *atomic.Int64, snapshot func() (any, bool)) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)

	var (
		mu       sync.Mutex
		latest   any
		terminal bool
	)
	pending := make(chan struct{}, 1)
	// publish snapshots into the mailbox and reports terminality. A
	// non-nil latest being overwritten is exactly one coalesced (never
	// written) snapshot.
	publish := func() bool {
		v, term := snapshot()
		mu.Lock()
		if latest != nil {
			coalesced.Add(1)
		}
		latest, terminal = v, term
		mu.Unlock()
		select {
		case pending <- struct{}{}:
		default:
		}
		return term
	}

	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		enc := json.NewEncoder(w)
		for range pending {
			mu.Lock()
			v, term := latest, terminal
			latest = nil
			mu.Unlock()
			if v == nil {
				continue
			}
			if err := enc.Encode(v); err != nil {
				return
			}
			flusher.Flush()
			if term {
				return
			}
		}
	}()

	ticker := time.NewTicker(watchInterval)
	defer ticker.Stop()
	for !publish() {
		select {
		case <-ticker.C:
		case <-done:
			// Settled: the next publish sees the terminal state. Nil the
			// channel so a (theoretical) non-terminal snapshot race does
			// not spin this loop.
			done = nil
		case <-clientGone:
			close(pending)
			<-writerDone
			return
		case <-writerDone:
			// Write error: the client is gone.
			return
		}
	}
	close(pending)
	<-writerDone
}
