package service

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"coordattack/internal/store"
)

// slowSweepSpec expands to one slow cell per seed — enough work per
// cell that a cancel lands while the sweep is still in flight.
func slowSweepSpec(seeds []uint64) SweepSpec {
	return SweepSpec{
		Base: JobSpec{Protocol: "s:0.05", Graph: "complete:8", Rounds: 40, Trials: 500_000},
		Axes: SweepAxes{Seeds: seeds},
	}
}

func TestCancelSweepSettlesEveryCell(t *testing.T) {
	s := New(Config{Workers: 1})
	defer drain(t, s)

	st, err := s.SubmitSweep(slowSweepSpec([]uint64{1, 2, 3, 4, 5, 6}))
	if err != nil {
		t.Fatal(err)
	}
	// Let the dispatcher get at least one cell onto a worker first.
	deadline := time.Now().Add(10 * time.Second)
	for {
		cur, err := s.GetSweep(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.Table[0].State == StateRunning || cur.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first cell never started")
		}
		time.Sleep(time.Millisecond)
	}

	if _, err := s.CancelSweep(st.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	fin := waitSweep(t, s, st.ID, 10*time.Second)
	if fin.State != StateCancelled {
		t.Fatalf("cancelled sweep ended %s", fin.State)
	}
	// Every cell is terminal — none left parked "queued" forever, in
	// particular the ones the dispatcher had not yet submitted.
	for i, row := range fin.Table {
		if !row.State.Terminal() {
			t.Errorf("cell %d still %s after sweep cancel", i, row.State)
		}
	}

	// Idempotent on a settled sweep: same terminal status, no error.
	again, err := s.CancelSweep(st.ID)
	if err != nil || again.State != StateCancelled {
		t.Errorf("re-cancel: %+v, %v", again, err)
	}

	// Unknown sweeps are not invented.
	if _, err := s.CancelSweep("sw999999"); err != ErrNotFound {
		t.Errorf("cancel unknown sweep: %v, want ErrNotFound", err)
	}

	// The freed workers pick up new jobs immediately.
	job, err := s.Submit(JobSpec{Protocol: "s:0.5", Rounds: 2, Trials: 300, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if fin := waitState(t, s, job.ID, 10*time.Second); fin.State != StateDone {
		t.Errorf("post-cancel job ended %s, want done", fin.State)
	}
}

func TestHTTPSweepCancel(t *testing.T) {
	_, ts := testHTTPServer(t, Config{Workers: 1})

	body := `{"base": {"protocol": "s:0.05", "graph": "complete:8", "rounds": 40, "trials": 500000},
	          "axes": {"seeds": [1, 2, 3, 4]}}`
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st SweepStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST code %d", resp.StatusCode)
	}

	del := func(id string) (int, *SweepStatus) {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweeps/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out SweepStatus
		if resp.StatusCode < 300 {
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatal(err)
			}
		}
		return resp.StatusCode, &out
	}

	if code, _ := del(st.ID); code != http.StatusOK {
		t.Fatalf("DELETE code %d, want 200", code)
	}
	var fin SweepStatus
	deadline := time.Now().Add(10 * time.Second)
	for {
		if getJSON(t, ts.URL+"/v1/sweeps/"+st.ID, &fin) != http.StatusOK {
			t.Fatal("poll failed")
		}
		if fin.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep stuck in %s after DELETE", fin.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if fin.State != StateCancelled {
		t.Errorf("sweep ended %s, want cancelled", fin.State)
	}

	// Idempotent second DELETE on the settled sweep.
	if code, again := del(st.ID); code != http.StatusOK || again.State != StateCancelled {
		t.Errorf("re-DELETE code %d state %s", code, again.State)
	}
	if code, _ := del("sw999999"); code != http.StatusNotFound {
		t.Errorf("DELETE unknown sweep code %d, want 404", code)
	}
}

// TestHTTPAdminStore drives the store admin surface through a degrade →
// rescan-recover cycle and checks the store-less 404.
func TestHTTPAdminStore(t *testing.T) {
	parent := t.TempDir()
	dir := filepath.Join(parent, "store")
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := testHTTPServer(t, Config{Workers: 1, Store: st})

	var health struct {
		Degraded   bool                    `json:"degraded"`
		Entries    int                     `json:"entries"`
		Recoveries int64                   `json:"recoveries"`
		Quarantine []store.QuarantineEntry `json:"quarantine"`
	}
	if code := getJSON(t, ts.URL+"/v1/admin/store", &health); code != http.StatusOK || health.Degraded {
		t.Fatalf("healthy admin/store: code %d %+v", code, health)
	}
	if health.Quarantine == nil {
		t.Error("quarantine is null, want []")
	}

	// Break the disk out from under the store, force a write so it
	// demotes, and watch the admin surface report it.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(strings.Repeat("a", 64), []byte("x")); err == nil {
		t.Fatal("Put on broken root succeeded")
	}
	if code := getJSON(t, ts.URL+"/v1/admin/store", &health); code != http.StatusOK || !health.Degraded {
		t.Fatalf("degraded admin/store: code %d %+v", code, health)
	}

	// Heal the disk; POST rescan recovers without a restart.
	if err := os.Remove(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/admin/store/rescan", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var rep store.RescanReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !rep.Recovered || rep.Degraded {
		t.Errorf("rescan code %d report %+v, want recovery", resp.StatusCode, rep)
	}
	if code := getJSON(t, ts.URL+"/v1/admin/store", &health); code != http.StatusOK || health.Degraded || health.Recoveries < 1 {
		t.Errorf("post-rescan admin/store: code %d %+v", code, health)
	}
}

func TestHTTPAdminStoreDisabled(t *testing.T) {
	_, ts := testHTTPServer(t, Config{Workers: 1})
	if code := getJSON(t, ts.URL+"/v1/admin/store", nil); code != http.StatusNotFound {
		t.Errorf("admin/store without a store: code %d, want 404", code)
	}
	resp, err := http.Post(ts.URL+"/v1/admin/store/rescan", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("rescan without a store: code %d, want 404", resp.StatusCode)
	}
}
