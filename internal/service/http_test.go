package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

func testHTTPServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	})
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, body string) (int, *Status) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatalf("decoding %s: %v", data, err)
		}
	}
	return resp.StatusCode, &st
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		if err := json.Unmarshal(data, v); err != nil {
			t.Fatalf("decoding %s: %v", data, err)
		}
	}
	return resp.StatusCode
}

// TestHTTPEndToEnd is the served version of the acceptance flow: submit
// a job, poll it to completion, submit the identical spec again, and
// verify via /metrics that the second answer came from the cache with a
// bit-identical result.
func TestHTTPEndToEnd(t *testing.T) {
	_, ts := testHTTPServer(t, Config{Workers: 2})

	const spec = `{"protocol": "s:0.3", "trials": 2000, "seed": 9}`
	code, st := postJob(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("first POST code %d, want 202", code)
	}

	var fin Status
	deadline := time.Now().Add(15 * time.Second)
	for {
		if getJSON(t, ts.URL+"/v1/jobs/"+st.ID, &fin) != http.StatusOK {
			t.Fatal("poll failed")
		}
		if fin.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", fin.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if fin.State != StateDone {
		t.Fatalf("job ended %s: %s", fin.State, fin.Error)
	}

	code, st2 := postJob(t, ts, spec)
	if code != http.StatusOK || st2.State != StateDone || !st2.Cached {
		t.Fatalf("second POST code %d state %s cached %v, want immediate cache hit", code, st2.State, st2.Cached)
	}
	if !bytes.Equal(st2.Result, fin.Result) {
		t.Error("cached result not bit-identical to computed result")
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"coordd_cache_hits_total 1",
		"coordd_jobs_completed_total 1",
		"coordd_jobs_submitted_total 2",
		"coordd_trials_executed_total 2000",
		"coordd_job_duration_seconds_bucket",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	var health struct {
		Status   string `json:"status"`
		Draining bool   `json:"draining"`
	}
	if getJSON(t, ts.URL+"/healthz", &health) != http.StatusOK || health.Status != "ok" || health.Draining {
		t.Errorf("healthz %+v", health)
	}
}

func TestHTTPValidationAndErrors(t *testing.T) {
	_, ts := testHTTPServer(t, Config{Workers: 1})

	if code, _ := postJob(t, ts, `{"protocol": "zzz"}`); code != http.StatusBadRequest {
		t.Errorf("bad protocol: code %d, want 400", code)
	}
	if code, _ := postJob(t, ts, `{"protocol": "s:0.1", "fault": "rand:NaN", "trials": 10}`); code != http.StatusBadRequest {
		t.Errorf("NaN fault: code %d, want 400", code)
	}
	if code, _ := postJob(t, ts, `{"protocl": "s:0.1"}`); code != http.StatusBadRequest {
		t.Errorf("typoed field: code %d, want 400", code)
	}
	if code, _ := postJob(t, ts, `not json`); code != http.StatusBadRequest {
		t.Errorf("garbage body: code %d, want 400", code)
	}
	if getJSON(t, ts.URL+"/v1/jobs/j999999", nil) != http.StatusNotFound {
		t.Error("unknown job should 404")
	}

	var exps struct {
		Experiments []string `json:"experiments"`
	}
	if getJSON(t, ts.URL+"/v1/experiments", &exps) != http.StatusOK || len(exps.Experiments) < 20 {
		t.Errorf("experiments registry %+v", exps)
	}
}

func TestHTTPQueueFull429(t *testing.T) {
	_, ts := testHTTPServer(t, Config{Workers: 1, QueueDepth: 1})
	slow := func(seed int) string {
		return fmt.Sprintf(`{"protocol": "s:0.05", "graph": "complete:8", "rounds": 40, "trials": 100000, "seed": %d}`, seed)
	}
	var over *http.Response
	for seed := 1; seed <= 4; seed++ {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(slow(seed)))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			over = resp
			break
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("seed %d: code %d", seed, resp.StatusCode)
		}
	}
	if over == nil {
		t.Fatal("queue never answered 429")
	}
	defer over.Body.Close()

	// The 429 carries a Retry-After header derived from the queue depth
	// and a structured JSON body mirroring it.
	secs, err := strconv.Atoi(over.Header.Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Errorf("Retry-After header %q, want a positive integer", over.Header.Get("Retry-After"))
	}
	var body struct {
		Error         string `json:"error"`
		RetryAfterSec int    `json:"retry_after_sec"`
		QueueDepth    int    `json:"queue_depth"`
		QueueCapacity int    `json:"queue_capacity"`
	}
	if err := json.NewDecoder(over.Body).Decode(&body); err != nil {
		t.Fatalf("429 body not structured JSON: %v", err)
	}
	if body.Error == "" || body.RetryAfterSec != secs || body.QueueCapacity != 1 {
		t.Errorf("429 body %+v inconsistent with header %d", body, secs)
	}

	// A sweep submitted into the same slammed queue is shed the same
	// way: 429 with Retry-After, instead of parking a dispatcher.
	sweepBody := `{"base": {"protocol": "s:0.3", "trials": 1000, "seed": 77}, "axes": {"rounds": [6, 8]}}`
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(sweepBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("sweep into a full queue: code %d, want 429", resp.StatusCode)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("sweep 429 Retry-After %q", resp.Header.Get("Retry-After"))
	}
}

func TestHTTPWatchStreamsProgress(t *testing.T) {
	_, ts := testHTTPServer(t, Config{Workers: 1})
	code, st := postJob(t, ts, `{"protocol": "s:0.2", "trials": 30000, "seed": 4}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST code %d", code)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/watch")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	var lines []Status
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		var line Status
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Fatal("no stream lines")
	}
	last := lines[len(lines)-1]
	if !last.State.Terminal() {
		t.Errorf("stream ended in non-terminal state %s", last.State)
	}
	if last.State == StateDone && last.Progress.Completed != 30000 {
		t.Errorf("final progress %+v", last.Progress)
	}
}

func TestHTTPCancelPreservesPartial(t *testing.T) {
	_, ts := testHTTPServer(t, Config{Workers: 1})
	code, st := postJob(t, ts, `{"protocol": "s:0.05", "graph": "complete:8", "rounds": 40, "trials": 100000, "seed": 13}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST code %d", code)
	}
	// Wait for progress, then cancel over HTTP.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var cur Status
		getJSON(t, ts.URL+"/v1/jobs/"+st.ID, &cur)
		if cur.Progress.Completed > 0 || cur.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no progress")
		}
		time.Sleep(time.Millisecond)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE code %d", resp.StatusCode)
	}
	var fin Status
	deadline = time.Now().Add(10 * time.Second)
	for {
		getJSON(t, ts.URL+"/v1/jobs/"+st.ID, &fin)
		if fin.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never settled after cancel")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if fin.State != StateCancelled {
		t.Errorf("state %s, want cancelled", fin.State)
	}
	var body struct {
		Partial bool `json:"partial"`
		Result  struct {
			Completed int `json:"completed"`
		} `json:"result"`
	}
	if fin.Result == nil {
		t.Fatal("cancelled job carried no result body")
	}
	if err := json.Unmarshal(fin.Result, &body); err != nil {
		t.Fatal(err)
	}
	if !body.Partial || body.Result.Completed == 0 {
		t.Errorf("cancelled job body %+v, want nonempty partial", body)
	}
}
