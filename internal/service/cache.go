package service

import (
	"container/list"
	"sync"
)

// Cache memoizes completed job bodies by canonical spec key. It is a
// plain LRU over result bytes: values are immutable once stored, so a
// hit can be served concurrently without copying. Only fully completed
// results are stored — partial (cancelled) bodies never enter.
type Cache struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recently used
	entries map[string]*list.Element
	hits    int64
	misses  int64
}

type cacheEntry struct {
	key  string
	body []byte
}

// NewCache returns a cache holding at most max entries; max < 1 is
// treated as 1.
func NewCache(max int) *Cache {
	if max < 1 {
		max = 1
	}
	return &Cache{
		max:     max,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// Get returns the memoized body for key and whether it was present,
// counting a hit or a miss.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// Put stores body under key, evicting the least recently used entry
// when full. Re-putting an existing key refreshes its recency; the body
// is assumed identical (keys are content addresses).
func (c *Cache) Put(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, body: body})
	for c.order.Len() > c.max {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
	}
}

// Len reports the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats reports lifetime hit and miss counts.
func (c *Cache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
