package service

import (
	"context"
	"encoding/json"
	"net/http"
)

// This file is the cluster's active-healing layer: fetch-path
// read-repair and hinted-handoff delivery, both driven by the peer
// failure detector (internal/cluster/detector.go) started in New.
//
// The division of labor with the anti-entropy repair loop
// (replicate.go): repair is the slow, complete backstop that eventually
// walks every local key; read-repair and hints are the fast paths that
// heal the specific gaps the node just observed — a fetch that fell
// through part of the replica set, a push that bounced off a dead peer
// — the moment the information exists, instead of an interval later.

// readRepairBudget bounds concurrently in-flight read-repair
// goroutines. The budget is a skip gate, not a queue: a fetch storm
// past the budget just leaves those keys to the repair loop.
const readRepairBudget = 4

// handlePeerPing serves GET /v1/peer/ping, the failure detector's
// heartbeat target. Deliberately minimal: it answers as soon as the
// HTTP stack is serving, independent of queue depth or store health —
// liveness ("the process answers") is exactly what the detector is
// measuring, breakers and /healthz cover the rest.
func (s *Server) handlePeerPing(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Ok bool `json:"ok"`
	}{Ok: true})
}

// readRepair pushes a body recovered from peer `source` back to every
// replica-set member that provably missed it: every set member before
// source in ring order was consulted and answered miss or error, and
// this node itself missed locally. Runs off the request path under the
// in-flight budget; a full budget skips (the repair loop is the
// backstop). Pushes that fail queue hints like any replica push.
func (s *Server) readRepair(key string, body json.RawMessage, source string) {
	if s.cluster == nil || source == "" {
		return
	}
	select {
	case s.rrSem <- struct{}{}:
	default:
		return
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		<-s.rrSem
		return
	}
	s.wg.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.wg.Done()
		defer func() { <-s.rrSem }()
		for _, addr := range s.cluster.ReplicaSet(key) {
			if addr == s.cluster.Self() {
				continue
			}
			if addr == source {
				// The serving peer holds the body by definition; replicas
				// after it in ring order were never consulted, but probing
				// them is cheap and closes their gap too.
				continue
			}
			has, err := s.cluster.HasResult(context.Background(), addr, key)
			if err != nil {
				// Unreachable replica: leave a hint, same as a failed push.
				s.hintAdd(addr, key)
				continue
			}
			if has {
				continue
			}
			if err := s.cluster.PushTo(context.Background(), addr, key, body); err != nil {
				s.metrics.IncReplicaPushFailure(addr)
				s.hintAdd(addr, key)
				continue
			}
			s.metrics.ReplicaPushes.Add(1)
			s.metrics.ReadRepairs.Add(1)
		}
	}()
}

// hintAdd queues a hinted handoff: addr is owed key's body. Nil-safe
// for standalone servers.
func (s *Server) hintAdd(addr, key string) {
	if s.hints == nil {
		return
	}
	_ = s.hints.Add(addr, key)
}

// onPeerAlive is the failure detector's OnAlive callback: every
// successful ping of a peer with pending hints triggers a delivery
// drain for that peer (the dead→alive transition is the interesting
// case, but hints queued against a peer the detector never saw die —
// a transient refusal — drain on the next probe too). One drain per
// peer runs at a time; delivery is idempotent so an overlap would be
// harmless, the latch just keeps it tidy.
func (s *Server) onPeerAlive(addr string, becameAlive bool) {
	if s.hints == nil || s.hints.PendingFor(addr) == 0 {
		return
	}
	s.hintMu.Lock()
	if s.hintActive[addr] {
		s.hintMu.Unlock()
		return
	}
	s.hintActive[addr] = true
	s.hintMu.Unlock()
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.hintMu.Lock()
		delete(s.hintActive, addr)
		s.hintMu.Unlock()
		return
	}
	s.wg.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.wg.Done()
		defer func() {
			s.hintMu.Lock()
			delete(s.hintActive, addr)
			s.hintMu.Unlock()
		}()
		s.deliverHints(addr)
	}()
}

// deliverHints drains addr's hint queue, oldest first: for each hinted
// key the body is re-read from the local tiers and pushed. A push
// failure aborts the drain (the peer flapped; the next successful ping
// retries), a missing local body clears the hint (nothing to deliver —
// the key was GC'd or quarantined; repair would find the same nothing).
// Delivery is idempotent end to end: the receiving handler stores
// verbatim bytes under a content-addressed key, so a duplicate PUT
// rewrites the identical body and runs no engine.
func (s *Server) deliverHints(addr string) {
	for _, key := range s.hints.Pending(addr) {
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if draining {
			return
		}
		body, ok := s.cache.Get(key)
		if !ok {
			body, ok = s.storeGet(key)
		}
		if !ok {
			_ = s.hints.Delivered(addr, key)
			continue
		}
		if err := s.cluster.PushTo(context.Background(), addr, key, body); err != nil {
			s.metrics.IncReplicaPushFailure(addr)
			return
		}
		_ = s.hints.Delivered(addr, key)
		s.metrics.ReplicaPushes.Add(1)
	}
}
