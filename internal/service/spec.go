// Package service is the serving layer over the reproduction's engines.
// It turns JSON job specs into canonical content-addressed cache keys,
// schedules jobs on a bounded worker pool with per-job deadlines and a
// FIFO queue with backpressure, memoizes completed results so repeated
// queries are answered without re-simulating, and exposes the whole
// thing over HTTP (see cmd/coordd).
//
// The flow is: spec → Canonicalize → Key → cache lookup → scheduler →
// engine (mc.Estimate or an internal/experiments entry) → cache fill.
// Canonicalization is load-bearing: it fills every default explicitly
// and normalizes spelling so that two requests meaning the same
// computation always collide on the same key. spec_golden_test.go pins
// the keys; changing canonicalization without bumping keyVersion is a
// silent cache-poisoning bug.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"

	"coordattack/internal/experiments"
)

// keyVersion prefixes every cache key. Bump it whenever canonicalization
// or result serialization changes meaning, so stale keys can never alias
// new results. v2: precision (adaptive early stopping) joined the
// canonical form, and graph-size/run-cost limits changed which specs are
// accepted.
const keyVersion = "coordd/v2"

// Spec limits protect the daemon from absurd requests.
const (
	MaxTrials = 10_000_000
	MaxRounds = 10_000
	// MaxProcs bounds the number of processes a served job's graph may
	// have: a daemon answering the open internet must not build
	// million-vertex graphs on request.
	MaxProcs = 128
	// maxRunCost bounds Rounds·V², a proxy for the memory a fixed run
	// over the graph costs to materialize.
	maxRunCost = 1 << 22
)

// Engine names accepted in JobSpec.Engine.
const (
	EngineMC         = "mc"
	EngineExperiment = "experiment"
)

// JobSpec is the wire form of one experiment request. The zero value of
// every field means "use the default"; Canonicalize fills the defaults
// in explicitly so that specs that mean the same computation serialize
// to the same canonical form.
type JobSpec struct {
	// Engine selects the computation: "mc" (Monte-Carlo estimation via
	// internal/mc, the default) or "experiment" (one of the registered
	// T/F reproduction experiments).
	Engine string `json:"engine,omitempty"`

	// Monte-Carlo engine fields, in the CLI spec languages of
	// internal/cliutil (see the coordsim docs).
	Protocol string `json:"protocol,omitempty"` // required for engine=mc, e.g. "s:0.1"
	Graph    string `json:"graph,omitempty"`    // default "pair"
	Rounds   int    `json:"rounds,omitempty"`   // default 10
	Inputs   string `json:"inputs,omitempty"`   // default "all"
	// Run fixes the run to condition on (default "good"); Sampler draws
	// a fresh run per trial ("loss:P" or "subset"). Exactly one of the
	// two is active.
	Run     string `json:"run,omitempty"`
	Sampler string `json:"sampler,omitempty"`
	Trials  int    `json:"trials,omitempty"` // default 20000
	// Seed roots all randomness; 0 means the default seed 1 (mc) or
	// 1992 (experiment).
	Seed uint64 `json:"seed,omitempty"`
	// Fault injects process faults, in coordsim's -fault language:
	// "kind:proc[@round],..." or "rand:P".
	Fault string `json:"fault,omitempty"`
	// MaxFailures is the failed-trial budget; 0 defaults to 0 (fail
	// fast) for fault-free jobs and to Trials when Fault is set, since
	// fatally-faulty trials are then the expected outcome being measured.
	MaxFailures int `json:"max_failures,omitempty"`

	// Precision, when set, turns on adaptive early stopping for an mc
	// job: trial dispatch halts once every outcome probability's Wilson
	// 95% interval is narrower than Precision.CIWidth, and the result
	// reports the trials actually run. It changes the computed result,
	// so it is part of the cache key.
	Precision *PrecisionSpec `json:"precision,omitempty"`

	// Experiment engine fields.
	Experiment string `json:"experiment,omitempty"` // required for engine=experiment, e.g. "T3"
	Quick      bool   `json:"quick,omitempty"`

	// TimeoutSec caps this job's runtime below the server default. It
	// does not affect the computed result, so it is excluded from the
	// cache key.
	TimeoutSec int `json:"timeout_sec,omitempty"`

	// Priority orders this job within its scheduler flow: higher runs
	// first, ties break by deadline then admission order. In [-100,
	// 100]; 0 is the default class. Like TimeoutSec it does not affect
	// the computed result, so it is excluded from the cache key — jobs
	// differing only in priority coalesce.
	Priority int `json:"priority,omitempty"`
}

// PrecisionSpec is the wire form of an adaptive-early-stopping request.
// The stopping rule is deterministic — evaluated every 1000 dispatched
// trials on the order-independent cumulative tally — so an early-stopped
// result is as cacheable as a fixed-count one.
type PrecisionSpec struct {
	// CIWidth is the target full width of the widest Wilson 95% interval
	// among the TA/PA/NA estimates, in (0, 1).
	CIWidth float64 `json:"ci_width"`
}

// normSpec trims and lowercases a whole spec string.
func normSpec(s string) string { return strings.ToLower(strings.TrimSpace(s)) }

// normRunSpec lowercases only the name part of a run spec: the payload
// of "custom:N=...;I=...;M=..." is case-sensitive.
func normRunSpec(s string) string {
	s = strings.TrimSpace(s)
	name, args, ok := strings.Cut(s, ":")
	name = strings.ToLower(name)
	if !ok {
		return name
	}
	return name + ":" + args
}

// Canonicalize validates the spec and returns the canonical copy: every
// default filled explicitly, spelling normalized, engines' unused
// fields verified empty. The canonical form is what Key hashes and what
// the scheduler executes, so Canonicalize is the single place where a
// request's meaning is decided.
func (s JobSpec) Canonicalize() (JobSpec, error) {
	c := JobSpec{
		Engine:      normSpec(s.Engine),
		Protocol:    normSpec(s.Protocol),
		Graph:       normSpec(s.Graph),
		Rounds:      s.Rounds,
		Inputs:      normSpec(s.Inputs),
		Run:         normRunSpec(s.Run),
		Sampler:     normSpec(s.Sampler),
		Trials:      s.Trials,
		Seed:        s.Seed,
		Fault:       normSpec(s.Fault),
		MaxFailures: s.MaxFailures,
		Experiment:  strings.ToUpper(strings.TrimSpace(s.Experiment)),
		Quick:       s.Quick,
		TimeoutSec:  s.TimeoutSec,
		Priority:    s.Priority,
	}
	if p := s.Precision; p != nil {
		if p.CIWidth == 0 {
			// A zero precision block means "no early stopping": normalize
			// it away so it cannot split the cache key.
			c.Precision = nil
		} else if !(p.CIWidth > 0 && p.CIWidth < 1) { // negation also catches NaN
			return JobSpec{}, fmt.Errorf("service: precision ci_width must be in (0, 1), got %v", p.CIWidth)
		} else {
			c.Precision = &PrecisionSpec{CIWidth: p.CIWidth}
		}
	}
	if c.Engine == "" {
		c.Engine = EngineMC
	}
	if c.TimeoutSec < 0 {
		return JobSpec{}, fmt.Errorf("service: timeout_sec must be nonnegative, got %d", c.TimeoutSec)
	}
	if c.Priority < -100 || c.Priority > 100 {
		return JobSpec{}, fmt.Errorf("service: priority must be in -100..100, got %d", c.Priority)
	}
	switch c.Engine {
	case EngineMC:
		return c.canonicalizeMC()
	case EngineExperiment:
		return c.canonicalizeExperiment()
	default:
		return JobSpec{}, fmt.Errorf("service: unknown engine %q (want %q or %q)", c.Engine, EngineMC, EngineExperiment)
	}
}

func (c JobSpec) canonicalizeMC() (JobSpec, error) {
	if c.Experiment != "" || c.Quick {
		return JobSpec{}, fmt.Errorf("service: experiment fields set on an mc job")
	}
	if c.Protocol == "" {
		return JobSpec{}, fmt.Errorf("service: mc job needs a protocol spec")
	}
	if c.Graph == "" {
		c.Graph = "pair"
	}
	if c.Rounds == 0 {
		c.Rounds = 10
	}
	if c.Rounds < 1 || c.Rounds > MaxRounds {
		return JobSpec{}, fmt.Errorf("service: rounds must be in 1..%d, got %d", MaxRounds, c.Rounds)
	}
	if c.Inputs == "" {
		c.Inputs = "all"
	}
	if c.Run != "" && c.Sampler != "" {
		return JobSpec{}, fmt.Errorf("service: run and sampler are mutually exclusive")
	}
	if c.Run == "" && c.Sampler == "" {
		c.Run = "good"
	}
	if c.Trials == 0 {
		c.Trials = 20000
	}
	if c.Trials < 1 || c.Trials > MaxTrials {
		return JobSpec{}, fmt.Errorf("service: trials must be in 1..%d, got %d", MaxTrials, c.Trials)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Fault == "none" {
		c.Fault = ""
	}
	if c.MaxFailures < 0 {
		return JobSpec{}, fmt.Errorf("service: max_failures must be nonnegative, got %d", c.MaxFailures)
	}
	if c.MaxFailures == 0 && c.Fault != "" {
		c.MaxFailures = c.Trials
	}
	if c.MaxFailures > c.Trials {
		c.MaxFailures = c.Trials
	}
	// Reject absurd graph arguments before ParseGraph builds them: the
	// full vertex-count and run-cost limits are enforced inside
	// buildMCInputs, but a hostile "complete:1000000" must fail fast
	// instead of exhausting memory first.
	if err := boundGraphSpec(c.Graph); err != nil {
		return JobSpec{}, err
	}
	// Parse every sub-spec now so an invalid job is rejected at submit
	// time with a 400, not discovered by a worker.
	if _, err := buildMCInputs(c); err != nil {
		return JobSpec{}, err
	}
	return c, nil
}

// boundGraphSpec is the cheap pre-filter on a graph spec's integer
// arguments. Specs whose vertex count is exponential in the argument
// (hypercube, tree) get a correspondingly tighter limit; everything else
// is held to MaxProcs, with the exact post-parse check in buildMCInputs.
func boundGraphSpec(spec string) error {
	name, args, _ := strings.Cut(spec, ":")
	limit := MaxProcs
	switch name {
	case "hypercube", "cube", "tree", "binarytree":
		limit = 10
	}
	for _, tok := range strings.FieldsFunc(args, func(r rune) bool { return r == ':' || r == 'x' }) {
		if n, err := strconv.Atoi(tok); err == nil && n > limit {
			return fmt.Errorf("service: graph %q argument %d over the served limit %d", spec, n, limit)
		}
	}
	return nil
}

func (c JobSpec) canonicalizeExperiment() (JobSpec, error) {
	if c.Protocol != "" || c.Graph != "" || c.Rounds != 0 || c.Inputs != "" ||
		c.Run != "" || c.Sampler != "" || c.Fault != "" || c.MaxFailures != 0 ||
		c.Precision != nil {
		return JobSpec{}, fmt.Errorf("service: mc fields set on an experiment job")
	}
	if c.Experiment == "" {
		return JobSpec{}, fmt.Errorf("service: experiment job needs an experiment id")
	}
	e, err := experiments.ByID(c.Experiment)
	if err != nil {
		return JobSpec{}, err
	}
	c.Experiment = e.ID // registry spelling, so "t3" and "T3" share a key
	if c.Trials < 0 || c.Trials > MaxTrials {
		return JobSpec{}, fmt.Errorf("service: trials must be in 0..%d, got %d", MaxTrials, c.Trials)
	}
	// Fill the engine defaults explicitly (experiments.Options
	// withDefaults) so spec{} and spec{Trials: 20000, Seed: 1992} share
	// a key.
	if c.Trials == 0 {
		c.Trials = 20000
		if c.Quick {
			c.Trials = 4000
		}
	}
	if c.Seed == 0 {
		c.Seed = 1992
	}
	return c, nil
}

// Key returns the content-addressed cache key of a canonical spec: a
// sha256 over a versioned, fixed-order serialization of every
// result-affecting field. Non-semantic fields (TimeoutSec) are
// deliberately absent. Call Key only on the output of Canonicalize.
func (c JobSpec) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", keyVersion)
	fmt.Fprintf(&b, "engine=%s\n", c.Engine)
	fmt.Fprintf(&b, "protocol=%s\n", c.Protocol)
	fmt.Fprintf(&b, "graph=%s\n", c.Graph)
	fmt.Fprintf(&b, "rounds=%d\n", c.Rounds)
	fmt.Fprintf(&b, "inputs=%s\n", c.Inputs)
	fmt.Fprintf(&b, "run=%s\n", c.Run)
	fmt.Fprintf(&b, "sampler=%s\n", c.Sampler)
	fmt.Fprintf(&b, "trials=%d\n", c.Trials)
	fmt.Fprintf(&b, "seed=%d\n", c.Seed)
	fmt.Fprintf(&b, "fault=%s\n", c.Fault)
	fmt.Fprintf(&b, "max_failures=%d\n", c.MaxFailures)
	ciWidth := 0.0
	if c.Precision != nil {
		ciWidth = c.Precision.CIWidth
	}
	fmt.Fprintf(&b, "ci_width=%g\n", ciWidth)
	fmt.Fprintf(&b, "experiment=%s\n", c.Experiment)
	fmt.Fprintf(&b, "quick=%t\n", c.Quick)
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}
