package service

import (
	"bytes"
	"fmt"
	"testing"
)

func TestCacheHitMissAndStats(t *testing.T) {
	c := NewCache(4)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", []byte("alpha"))
	body, ok := c.Get("a")
	if !ok || !bytes.Equal(body, []byte("alpha")) {
		t.Fatalf("get a = %q, %v", body, ok)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = (%d, %d), want (1, 1)", hits, misses)
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	c := NewCache(2)
	c.Put("a", []byte("1"))
	c.Put("b", []byte("2"))
	if _, ok := c.Get("a"); !ok { // touch a: b becomes LRU
		t.Fatal("a missing")
	}
	c.Put("c", []byte("3"))
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should have survived")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c should be present")
	}
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
}

func TestCacheRePutRefreshes(t *testing.T) {
	c := NewCache(2)
	c.Put("a", []byte("1"))
	c.Put("b", []byte("2"))
	c.Put("a", []byte("1")) // refresh recency, not a new entry
	c.Put("c", []byte("3"))
	if _, ok := c.Get("a"); !ok {
		t.Error("refreshed a should have survived")
	}
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := NewCache(8)
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%16)
				c.Put(key, []byte(key))
				c.Get(key)
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	if c.Len() > 8 {
		t.Errorf("len = %d exceeds max 8", c.Len())
	}
}
