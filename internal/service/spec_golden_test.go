package service

import (
	"testing"
)

// TestGoldenKeys pins the cache key of representative canonical specs.
// These hashes are API: a change here means every deployed cache would
// silently stop (or worse, wrongly keep) matching, so any intentional
// canonicalization change must bump keyVersion and update these values
// in the same commit.
func TestGoldenKeys(t *testing.T) {
	cases := []struct {
		name string
		spec JobSpec
		want string
	}{
		{
			name: "minimal mc",
			spec: JobSpec{Protocol: "s:0.1"},
			want: "356d867c4bc4af464fa74af63ed6b0c1098129bca0e0da5841d4c9ae3e2bf4c6",
		},
		{
			name: "mc distinct seed",
			spec: JobSpec{Protocol: "s:0.1", Seed: 2},
			want: "0ba2051d578be5a45b61eaf1b1e8b3dd8f02c9ca23efe0ccaf5f0cf06e464571",
		},
		{
			name: "mc with fault",
			spec: JobSpec{Protocol: "s:0.1", Fault: "crash:2@4"},
			want: "6df711317bf57bf1887a76d1cddf68f297895a0e72adf70a18255dc141fe3e31",
		},
		{
			name: "mc sampler",
			spec: JobSpec{Protocol: "s:0.1", Sampler: "loss:0.2"},
			want: "91ee344a07da88f447160138e1467df68524e964b807c185f6cfd43df5b46be7",
		},
		{
			name: "mc with precision",
			spec: JobSpec{Protocol: "s:0.1", Precision: &PrecisionSpec{CIWidth: 0.02}},
			want: "bcb92189acef50192cc5fccbbf97a187fd3ee8c5df55d3237d7c793b8df7605b",
		},
		{
			name: "experiment",
			spec: JobSpec{Engine: "experiment", Experiment: "t3"},
			want: "37bc909b15ad7cb3dfc1f6fef15e1408f196fc759670231e3a9930344aeba40c",
		},
	}
	for _, tc := range cases {
		canon, err := tc.spec.Canonicalize()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got := canon.Key(); got != tc.want {
			t.Errorf("%s: key drifted:\n got %s\nwant %s", tc.name, got, tc.want)
		}
	}
}

// TestKeyInsensitiveToSpelling checks that requests meaning the same
// computation collide on one key: explicit defaults, case, whitespace,
// and non-semantic fields must not split the cache.
func TestKeyInsensitiveToSpelling(t *testing.T) {
	mustKey := func(s JobSpec) string {
		t.Helper()
		c, err := s.Canonicalize()
		if err != nil {
			t.Fatal(err)
		}
		return c.Key()
	}
	base := mustKey(JobSpec{Protocol: "s:0.1"})
	same := []JobSpec{
		{Engine: "MC", Protocol: " S:0.1 "},
		{Protocol: "s:0.1", Graph: "PAIR", Rounds: 10, Inputs: "ALL", Run: "GOOD"},
		{Protocol: "s:0.1", Trials: 20000, Seed: 1},
		{Protocol: "s:0.1", TimeoutSec: 30},              // non-semantic: excluded from key
		{Protocol: "s:0.1", Precision: &PrecisionSpec{}}, // zero block normalized away
	}
	for i, s := range same {
		if k := mustKey(s); k != base {
			t.Errorf("spelling %d split the key: %s vs %s", i, k, base)
		}
	}
	different := []JobSpec{
		{Protocol: "s:0.2"},
		{Protocol: "s:0.1", Rounds: 11},
		{Protocol: "s:0.1", Seed: 2},
		{Protocol: "s:0.1", Trials: 19999},
		{Protocol: "s:0.1", Graph: "ring:4"},
		{Protocol: "s:0.1", Fault: "crash:2@4"},
		{Protocol: "s:0.1", Precision: &PrecisionSpec{CIWidth: 0.02}},
	}
	for i, s := range different {
		if k := mustKey(s); k == base {
			t.Errorf("variant %d should have a distinct key", i)
		}
	}

	// Precision is semantic: distinct targets split the key, and the
	// same target always lands on the same key.
	pa := mustKey(JobSpec{Protocol: "s:0.1", Precision: &PrecisionSpec{CIWidth: 0.02}})
	pb := mustKey(JobSpec{Protocol: "s:0.1", Precision: &PrecisionSpec{CIWidth: 2e-2}})
	pc := mustKey(JobSpec{Protocol: "s:0.1", Precision: &PrecisionSpec{CIWidth: 0.05}})
	if pa != pb {
		t.Errorf("equal ci_width spellings split the key: %s vs %s", pa, pb)
	}
	if pa == pc {
		t.Error("distinct ci_width targets share a key")
	}

	// Fault jobs: the implicit failure budget (MaxFailures defaults to
	// Trials when a fault plan is set) must equal the explicit spelling.
	fa := mustKey(JobSpec{Protocol: "s:0.1", Fault: "crash:2@4"})
	fb := mustKey(JobSpec{Protocol: "s:0.1", Fault: "CRASH:2@4", MaxFailures: 20000})
	if fa != fb {
		t.Errorf("implicit and explicit failure budgets split the key: %s vs %s", fa, fb)
	}

	// Experiment ids are case-insensitive and engine defaults explicit.
	ea := mustKey(JobSpec{Engine: "experiment", Experiment: "t3"})
	eb := mustKey(JobSpec{Engine: "EXPERIMENT", Experiment: "T3", Trials: 20000, Seed: 1992})
	if ea != eb {
		t.Errorf("experiment spellings split the key: %s vs %s", ea, eb)
	}
}

func TestCanonicalizeFillsDefaults(t *testing.T) {
	c, err := JobSpec{Protocol: "s:0.1"}.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	want := JobSpec{
		Engine: "mc", Protocol: "s:0.1", Graph: "pair", Rounds: 10,
		Inputs: "all", Run: "good", Trials: 20000, Seed: 1,
	}
	if c != want {
		t.Errorf("canonical form:\n got %+v\nwant %+v", c, want)
	}
}

func TestCanonicalizeRejects(t *testing.T) {
	bad := []JobSpec{
		{},                                                  // mc without protocol
		{Engine: "warp", Protocol: "s:0.1"},                 // unknown engine
		{Protocol: "zzz"},                                   // unparseable protocol
		{Protocol: "s:0.1", Graph: "zzz"},                   // unparseable graph
		{Protocol: "s:0.1", Run: "zzz"},                     // unparseable run
		{Protocol: "s:0.1", Fault: "zzz"},                   // unparseable fault
		{Protocol: "s:0.1", Fault: "rand:NaN"},              // non-finite fault probability
		{Protocol: "s:0.1", Sampler: "zzz"},                 // unknown sampler
		{Protocol: "s:0.1", Sampler: "loss:2"},              // out-of-range loss
		{Protocol: "s:0.1", Run: "good", Sampler: "subset"}, // both run and sampler
		{Protocol: "s:0.1", Trials: -1},                     // negative trials
		{Protocol: "s:0.1", Trials: MaxTrials + 1},
		{Protocol: "s:0.1", Rounds: MaxRounds + 1},
		{Protocol: "s:0.1", MaxFailures: -1},
		{Protocol: "s:0.1", TimeoutSec: -1},
		{Protocol: "s:0.1", Inputs: "99"},                             // input not a vertex
		{Protocol: "s:0.1", Precision: &PrecisionSpec{CIWidth: -0.1}}, // bad precision
		{Protocol: "s:0.1", Precision: &PrecisionSpec{CIWidth: 1}},
		{Protocol: "s:0.1", Graph: "complete:1000000"},                // absurd graph, pre-filtered
		{Protocol: "s:0.1", Graph: "hypercube:40"},                    // exponential argument
		{Protocol: "s:0.1", Graph: "grid:100x100"},                    // passes pre-filter, fails MaxProcs
		{Protocol: "s:0.1", Graph: "complete:100", Rounds: MaxRounds}, // run cost over budget
		{Engine: "experiment", Experiment: "T3", Precision: &PrecisionSpec{CIWidth: 0.1}},
		{Engine: "experiment"}, // no experiment id
		{Engine: "experiment", Experiment: "T99"},
		{Engine: "experiment", Experiment: "T3", Protocol: "s:0.1"}, // mixed fields
		{Engine: "experiment", Experiment: "T3", Trials: -5},
		{Protocol: "s:0.1", Experiment: "T3"}, // experiment field on mc job
	}
	for i, s := range bad {
		if _, err := s.Canonicalize(); err == nil {
			t.Errorf("spec %d (%+v) accepted", i, s)
		}
	}
}
