package service

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"coordattack/internal/mc"
)

// stallWrapper wedges the engine for jobs carrying the marked seed: the
// run blocks on the channel, ignoring ctx entirely — the failure mode
// the watchdog exists for. Other jobs pass through untouched.
func stallWrapper(markSeed uint64, block chan struct{}) func(string, RunFunc) RunFunc {
	return func(name string, next RunFunc) RunFunc {
		return func(ctx context.Context, spec JobSpec, workers int, progress func(mc.Snapshot)) (json.RawMessage, error) {
			if spec.Seed == markSeed {
				<-block
			}
			return next(ctx, spec, workers, progress)
		}
	}
}

func TestWatchdogKillsStuckJobAndFreesSlot(t *testing.T) {
	block := make(chan struct{})
	s := New(Config{
		Workers:          1,
		JobTimeout:       50 * time.Millisecond,
		WatchdogInterval: 20 * time.Millisecond,
		WatchdogGrace:    50 * time.Millisecond,
		WrapEngine:       stallWrapper(666, block),
	})
	defer drain(t, s)
	defer close(block)

	st, err := s.Submit(JobSpec{Protocol: "s:0.5", Rounds: 2, Trials: 300, Seed: 666})
	if err != nil {
		t.Fatal(err)
	}
	fin := waitState(t, s, st.ID, 10*time.Second)
	if fin.State != StateFailed {
		t.Fatalf("stuck job settled %s, want failed", fin.State)
	}
	if !strings.Contains(fin.Error, "watchdog killed stuck job") {
		t.Errorf("stuck job error %q does not name the watchdog", fin.Error)
	}
	if got := s.Metrics().WatchdogKills.Load(); got != 1 {
		t.Errorf("watchdog kills = %d, want 1", got)
	}
	if got := s.running.Load(); got != 0 {
		t.Errorf("running gauge = %d after kill, want 0", got)
	}

	// The single worker slot was freed: a subsequent job runs to
	// completion even though the wedged goroutine is still blocked.
	st2, err := s.Submit(JobSpec{Protocol: "s:0.5", Rounds: 2, Trials: 300, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	fin2 := waitState(t, s, st2.ID, 10*time.Second)
	if fin2.State != StateDone {
		t.Fatalf("follow-up job settled %s, want done (worker slot not reclaimed?)", fin2.State)
	}
}

func TestWatchdogSparesSlowButAliveJobs(t *testing.T) {
	// Deadline shorter than the run, but the engine honors ctx: the job
	// settles as an ordinary deadline cancellation with a partial body,
	// and the watchdog — scanning far faster than the grace period —
	// must never claim it.
	s := New(Config{
		Workers:          1,
		JobTimeout:       100 * time.Millisecond,
		WatchdogInterval: 10 * time.Millisecond,
		WatchdogGrace:    10 * time.Second,
	})
	defer drain(t, s)

	st, err := s.Submit(JobSpec{Protocol: "s:0.05", Graph: "complete:8", Rounds: 40, Trials: 2_000_000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	fin := waitState(t, s, st.ID, 10*time.Second)
	if fin.State != StateCancelled {
		t.Fatalf("deadline job settled %s, want cancelled", fin.State)
	}
	if got := s.Metrics().WatchdogKills.Load(); got != 0 {
		t.Errorf("watchdog kills = %d for a ctx-honoring job, want 0", got)
	}
}

func TestJobsGCEvictsOldestSettledOnly(t *testing.T) {
	block := make(chan struct{})
	s := New(Config{
		Workers:      2,
		JobRetention: 2,
		// The stalled job must survive the whole test; keep the watchdog
		// and deadline far away.
		JobTimeout: time.Minute,
		WrapEngine: stallWrapper(666, block),
	})
	defer drain(t, s)
	defer close(block)

	// One unsettled job occupies a worker for the duration.
	stuck, err := s.Submit(JobSpec{Protocol: "s:0.5", Rounds: 2, Trials: 300, Seed: 666})
	if err != nil {
		t.Fatal(err)
	}

	var ids []string
	for seed := uint64(1); seed <= 4; seed++ {
		st, err := s.Submit(JobSpec{Protocol: "s:0.5", Rounds: 2, Trials: 300, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, s, st.ID, 10*time.Second)
		ids = append(ids, st.ID)
	}

	// Four settled jobs against a retention of 2: the two oldest are
	// evicted (the GC runs in the worker after settle, so poll briefly).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := s.Get(ids[0]); err == ErrNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("oldest settled job never evicted")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := s.Get(ids[1]); err != ErrNotFound {
		t.Errorf("second-oldest settled job still queryable, want evicted")
	}
	if _, err := s.Get(ids[3]); err != nil {
		t.Errorf("newest settled job evicted: %v", err)
	}
	if _, err := s.Get(stuck.ID); err != nil {
		t.Errorf("unsettled job evicted: %v", err)
	}
	if got := s.Metrics().JobsEvicted.Load(); got < 2 {
		t.Errorf("jobs evicted metric = %d, want >= 2", got)
	}
}
