package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"time"

	"coordattack/internal/cluster"
	"coordattack/internal/queue"
)

// This file is the service side of the static-peer cluster
// (internal/cluster): the peer-protocol HTTP handlers, the worker-path
// peer lookup, and the work-stealing machinery.
//
// Results are content-addressed (coordd/v2 keys), so any node can serve
// any node's result byte-for-byte. The consistent-hash ring names a
// replica set per key — the owner plus its distinct successors, Factor
// peers in total; a local miss consults the replicas in ring order
// before running the engine, and every computed body is replicated to
// all of them (the anti-entropy loop in replicate.go heals any push
// that failed), so any single node death loses no cached result.
//
// Stealing moves *pending* jobs from a saturated node (the victim) to
// an idle one (the thief) in two phases. INTENT: the victim re-stamps
// the job's journal record with the thief's address (fsynced) before
// the grant leaves; the job stays pending in its journal. COMMIT: the
// thief appends the job to its own WAL, then posts a commit, and only
// then does the victim tombstone. A crash at any point leaves at least
// one journal owning the job, and the victim's follower (awaitStolen)
// reclaims it for local re-run only once the thief provably has no
// record of it — so a thief+victim double crash strands nothing and no
// crash schedule runs a key twice.

// maxPeerBodyBytes bounds a replicated result body accepted over PUT.
const maxPeerBodyBytes = 32 << 20

// validKey reports whether key looks like a coordd/v2 result key: 64
// lowercase hex digits. Peer endpoints reject anything else before
// touching the cache or disk.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// handlePeerGetResult serves GET /v1/peer/results/{key}: the bit-exact
// stored body for a settled key, or 404 on a clean miss. Peers use it
// both for owner lookups and for following stolen jobs.
func (s *Server) handlePeerGetResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !validKey(key) {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "malformed result key"})
		return
	}
	body, ok := s.cache.Get(key)
	if !ok {
		if body, ok = s.storeGet(key); ok {
			s.cache.Put(key, body)
		}
	}
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no result for key"})
		return
	}
	if r.Method != http.MethodHead {
		// HEAD probes from the repair loop are existence checks, not
		// served results.
		s.metrics.PeerServed.Add(1)
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(body)
}

// handlePeerPutResult accepts PUT /v1/peer/results/{key}: a peer
// replicating a computed body to this node (the key's ring owner). The
// bytes are stored verbatim — they must stay bit-identical cluster-wide.
func (s *Server) handlePeerPutResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !validKey(key) {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "malformed result key"})
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxPeerBodyBytes+1))
	if err != nil || len(body) == 0 || len(body) > maxPeerBodyBytes || !json.Valid(body) {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad result body"})
		return
	}
	s.cache.Put(key, json.RawMessage(body))
	s.storePut(key, json.RawMessage(body))
	w.WriteHeader(http.StatusNoContent)
}

// handlePeerSteal serves POST /v1/peer/steal: an idle peer asking this
// node to donate pending work.
func (s *Server) handlePeerSteal(w http.ResponseWriter, r *http.Request) {
	var req cluster.StealRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Want < 1 {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad steal request"})
		return
	}
	writeJSON(w, http.StatusOK, cluster.StealResponse{Jobs: s.stealVictim(req.Want, req.Thief)})
}

// handlePeerStealCommit serves POST /v1/peer/steal/commit: the thief
// confirming it has journaled the listed stolen keys into its own WAL.
// Only now does the victim tombstone its intent records — ownership has
// provably transferred. A commit for a key this node has meanwhile
// reclaimed (the thief went quiet past the poll budget, then the commit
// arrived late) is ignored: the local journal record backs the local
// re-run, and content-addressed results make the overlap harmless.
func (s *Server) handlePeerStealCommit(w http.ResponseWriter, r *http.Request) {
	var req cluster.CommitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Thief == "" {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad steal commit"})
		return
	}
	for _, key := range req.Keys {
		if !validKey(key) {
			continue
		}
		s.mu.Lock()
		j := s.inflight[key]
		s.mu.Unlock()
		if j == nil {
			continue
		}
		j.mu.Lock()
		committed := j.stolenBy == req.Thief
		j.mu.Unlock()
		if committed {
			s.journalSettle(j)
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

// handlePeerKnowsJob serves GET /v1/peer/jobs/{key}: whether this node
// has any durable record of key — an in-flight job (its own journal
// accept), or a cached/stored result. The victim's stolen-job follower
// uses it to distinguish a thief that is still working (or restarted
// with the job in its WAL) from one that never durably took the job.
func (s *Server) handlePeerKnowsJob(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !validKey(key) {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "malformed result key"})
		return
	}
	s.mu.Lock()
	_, inflight := s.inflight[key]
	s.mu.Unlock()
	known := inflight
	if !known {
		_, known = s.cache.Get(key)
	}
	if !known {
		_, known = s.storeGet(key)
	}
	if !known {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown key"})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Known bool `json:"known"`
	}{Known: true})
}

// handleAdminCluster serves GET /v1/admin/cluster: ring membership,
// per-peer breaker state, the peer request counters, and the
// replication/repair health summary.
func (s *Server) handleAdminCluster(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: "cluster disabled"})
		return
	}
	writeJSON(w, http.StatusOK, adminCluster{
		Snapshot:    s.cluster.Snapshot(),
		Replication: s.replicationInfo(),
	})
}

// peerFetch consults the key's replica set for an already-computed
// body: the ring owner first, then each distinct successor, skipping
// self (the local tiers already missed). Called on the worker path
// before the engine runs; any peer failure degrades to local compute —
// a dead replica costs one breaker-limited timeout, never correctness.
// The serving peer's address comes back with the body so the caller's
// read-repair can skip the one replica known to hold it.
func (s *Server) peerFetch(j *Job) (json.RawMessage, string, bool) {
	if s.cluster == nil {
		return nil, "", false
	}
	body, from, ok := s.cluster.FetchResult(j.ctx, j.key)
	if !ok {
		return nil, "", false
	}
	return json.RawMessage(body), from, true
}

// settlePeerResult finishes j with a body retrieved from a peer —
// served as a cache hit: memoized locally, full trial count, no engine
// run counted.
func (s *Server) settlePeerResult(j *Job, body json.RawMessage) {
	s.cache.Put(j.key, body)
	s.storePut(j.key, body)
	j.mu.Lock()
	j.cached = true
	j.stolenBy = ""
	j.mu.Unlock()
	j.completed.Store(int64(j.spec.Trials))
	if j.finish(StateDone, body, "") {
		s.metrics.JobsCompleted.Add(1)
		s.metrics.PeerHits.Add(1)
	}
}

// replicateResult pushes a freshly computed body to every member of the
// key's replica set (owner + distinct successors, self excluded), off
// the worker path. A push that fails is no longer silently dropped: it
// is counted per peer (coordd_replica_push_failures_total{peer}) and a
// hint is queued so the failure detector delivers the body the moment
// the peer answers a probe again — the anti-entropy repair loop stays
// as the backstop, not the primary heal. The body is already durable
// locally (storePut runs before this), so the hint carries only the
// (peer, key) pair.
func (s *Server) replicateResult(key string, body json.RawMessage) {
	if s.cluster == nil {
		return
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for _, addr := range s.cluster.ReplicaSet(key) {
			if addr == s.cluster.Self() {
				continue
			}
			if err := s.cluster.PushTo(context.Background(), addr, key, body); err != nil {
				s.metrics.IncReplicaPushFailure(addr)
				s.hintAdd(addr, key)
				continue
			}
			s.metrics.ReplicaPushes.Add(1)
		}
	}()
}

// stealVictim donates up to want pending jobs to thief. The grant is
// capped at the backlog surplus beyond this node's own worker pool —
// a node never donates work its own idle-in-a-moment workers would
// take next. Donated jobs keep their HTTP-visible Job here: the journal
// record is re-stamped as a steal intent (fsynced before the grant
// leaves; the tombstone waits for the thief's commit) and a follower
// goroutine polls the thief for the result.
func (s *Server) stealVictim(want int, thief string) []cluster.StolenJob {
	if s.cluster == nil || want < 1 {
		return nil
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	surplus := s.sched.Depth() - s.cfg.Workers
	if surplus < want {
		want = surplus
	}
	if want < 1 {
		s.mu.Unlock()
		return nil
	}
	items := s.sched.Steal(want)
	granted := make([]cluster.StolenJob, 0, len(items))
	var followers []*Job
	for _, it := range items {
		j := it.Payload.(*Job)
		j.mu.Lock()
		terminal := j.state.Terminal()
		if !terminal {
			j.stolenBy = thief
		}
		j.mu.Unlock()
		if terminal {
			// Cancelled while queued; Cancel already settled and
			// tombstoned it. Popping it here just swept it out.
			continue
		}
		specJSON, err := json.Marshal(j.spec)
		if err != nil {
			continue
		}
		j.item = nil
		granted = append(granted, cluster.StolenJob{
			Key:      j.key,
			Flow:     it.Flow,
			Class:    string(it.Class),
			Priority: it.Priority,
			Spec:     specJSON,
		})
		followers = append(followers, j)
		s.metrics.JobsDonated.Add(1)
		s.wg.Add(1)
	}
	s.mu.Unlock()
	for _, j := range followers {
		// Phase one: stamp the journal record with the thief's address
		// before the grant leaves. The job stays pending here — only the
		// thief's commit (after it journals the job itself) tombstones it,
		// so no crash schedule leaves the job owned by nobody's WAL.
		s.journalIntent(j, thief)
		go s.awaitStolen(j, thief)
	}
	return granted
}

// journalIntent re-stamps j's pending journal record with the thief's
// address (phase one of the two-phase handoff), only if j owns its
// record. Ownership is NOT cleared: the victim's journal keeps the job
// until the thief's commit settles it.
func (s *Server) journalIntent(j *Job, thief string) {
	if s.journal == nil {
		return
	}
	s.mu.Lock()
	owned := j.journaled
	s.mu.Unlock()
	if owned {
		_ = s.journal.Intent(j.key, thief)
	}
}

// awaitStolen is the victim's remote follower for one donated job: it
// polls the thief for the result, settles the local Job when it lands,
// and falls back to local recompute if the thief provably lost the job.
// The job stays "queued" (with stolen_by set) while remote, so API
// cancel keeps working through the normal queued-cancel path.
//
// The reclaim rule is the liveness half of the two-phase handoff: a
// poll that errors AND a clean miss from a thief with no record of the
// key both count against the poll budget; a thief that answers "I know
// this job" (running it, or restarted with it in its WAL) resets the
// budget. Reclaiming trades the L/U-style residual — a thief that
// revives with the job in its WAL *after* the budget re-runs the key
// once more elsewhere — for never stranding a job; results are content-
// addressed, so the overlap costs compute, never correctness.
func (s *Server) awaitStolen(j *Job, thief string) {
	defer s.wg.Done()
	tick := time.NewTicker(s.cfg.StealPollInterval)
	defer tick.Stop()
	fails := 0
	for {
		select {
		case <-j.done:
			// Settled through the API (cancel) — Cancel did the
			// accounting and the journal tombstone; nothing left to
			// follow.
			j.cancel()
			return
		case <-j.ctx.Done():
			if j.finishIfQueued(StateCancelled, j.ctx.Err().Error()) {
				s.metrics.JobsCancelled.Add(1)
			}
			s.journalSettle(j)
			s.dropInflight(j)
			return
		case <-tick.C:
		}
		body, found, err := s.cluster.FetchFrom(j.ctx, thief, j.key)
		if found {
			s.settlePeerResult(j, body)
			// The intent record may still be pending (the thief's commit
			// crashed or lost a race); the body is durable locally now, so
			// the journal is done with this job either way.
			s.journalSettle(j)
			j.cancel()
			s.dropInflight(j)
			return
		}
		if err == nil {
			// Clean miss: no result yet. Ask whether the thief still has
			// any record of the job before counting the miss against the
			// reclaim budget — a restarted-but-recovering thief (journaled,
			// crashed before running) answers yes and must be waited out,
			// one that never durably took the job answers no.
			if known, kerr := s.cluster.KnowsJob(j.ctx, thief, j.key); kerr == nil && known {
				fails = 0
				continue
			}
		}
		fails++
		if fails < s.cfg.StealPollFailures {
			continue
		}
		// Thief presumed to have lost the job: take it back. The intent
		// record is re-stamped as a plain accept (reclaiming must survive
		// a crash here too) and the job re-enqueues past MaxDepth —
		// accepted work is never dropped.
		s.mu.Lock()
		if s.draining {
			// Leave the intent record pending: the job settles cancelled
			// for this process's clients, but a restart replays the intent
			// and the job still runs somewhere — journal ownership is not
			// discarded on the way down.
			s.mu.Unlock()
			if j.finishIfQueued(StateCancelled, "cluster: thief lost during drain") {
				s.metrics.JobsCancelled.Add(1)
			}
			s.dropInflight(j)
			return
		}
		j.mu.Lock()
		j.stolenBy = ""
		j.mu.Unlock()
		it := &queue.Item{
			Key:      j.key,
			Flow:     "interactive",
			Class:    queue.ClassInteractive,
			Priority: j.spec.Priority,
			Deadline: j.deadline,
			Payload:  j,
		}
		j.item = it
		s.journalAccept(j, it)
		s.mu.Unlock()
		s.sched.PushReplay(it)
		s.metrics.JobsReclaimed.Add(1)
		return
	}
}

// adoptStolen admits jobs granted by a victim into this node's own
// queue, registry, and journal. Keys already settled or in flight
// locally are skipped — the victim's follower finds the body through
// the results endpoint either way. It returns how many jobs entered the
// local queue and the victim keys this node now durably owns (freshly
// journaled, already settled, or already in flight under a local
// accept) — the set the steal loop commits back to the victim.
func (s *Server) adoptStolen(jobs []cluster.StolenJob) (adopted int, committed []string) {
	for _, sj := range jobs {
		var spec JobSpec
		if err := json.Unmarshal(sj.Spec, &spec); err != nil {
			continue
		}
		canon, err := spec.Canonicalize()
		if err != nil {
			continue
		}
		// Adopt under our own canonical key. On version skew it may
		// differ from the victim's; the victim's follower then falls back
		// to recompute — degraded, never wrong. Only same-key adoptions
		// are committed: the victim tombstones the key it granted, so the
		// commit must vouch for that exact key.
		key := canon.Key()
		if _, ok := s.cache.Get(key); ok {
			if key == sj.Key {
				committed = append(committed, key)
			}
			continue
		}
		if body, ok := s.storeGet(key); ok {
			s.cache.Put(key, body)
			if key == sj.Key {
				committed = append(committed, key)
			}
			continue
		}
		j := s.newJob(canon, key)
		class := queue.Class(sj.Class)
		if class == "" {
			class = queue.ClassInteractive
		}
		j.class = class
		flow := sj.Flow
		if flow == "" {
			flow = "interactive"
		}
		it := &queue.Item{
			Key:      key,
			Flow:     flow,
			Class:    class,
			Priority: sj.Priority,
			Deadline: j.deadline,
			Payload:  j,
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			j.cancel()
			continue
		}
		if s.inflight[key] != nil {
			// Already queued or running here under a local accept record;
			// this node owns the key's fate, so the victim can tombstone.
			s.mu.Unlock()
			j.cancel()
			if key == sj.Key {
				committed = append(committed, key)
			}
			continue
		}
		s.jobs[j.id] = j
		s.inflight[key] = j
		j.item = it
		s.journalAccept(j, it)
		s.mu.Unlock()
		// Replay admission: a steal this node asked for must not bounce
		// off its own MaxDepth.
		s.sched.PushReplay(it)
		s.metrics.JobsStolen.Add(1)
		adopted++
		if key == sj.Key {
			committed = append(committed, key)
		}
	}
	return adopted, committed
}

// stealLoop runs on every cluster node: whenever the local pool has
// idle workers and an empty backlog, it asks each live peer in turn to
// donate pending work. Stopped by Drain.
func (s *Server) stealLoop(interval time.Duration) {
	defer close(s.stealDone)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.stealStop:
			return
		case <-tick.C:
		}
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if draining {
			return
		}
		free := s.cfg.Workers - int(s.running.Load())
		if free < 1 || s.sched.Depth() > 0 {
			continue
		}
		for _, peer := range s.cluster.PeerAddrs() {
			if free < 1 {
				break
			}
			if s.cluster.PeerDown(peer) {
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			jobs, err := s.cluster.StealFrom(ctx, peer, free)
			cancel()
			if err != nil || len(jobs) == 0 {
				continue
			}
			adopted, committed := s.adoptStolen(jobs)
			free -= adopted
			if len(committed) > 0 {
				// Phase two: the stolen keys are in this node's WAL (or
				// already settled here); tell the victim it may tombstone
				// its intents. A failed commit is safe — the victim keeps
				// its records and its follower waits on this node, which
				// now provably knows the jobs.
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				if err := s.cluster.CommitSteal(ctx, peer, committed); err == nil {
					s.metrics.StealCommits.Add(1)
				}
				cancel()
			}
		}
	}
}
