package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"time"

	"coordattack/internal/cluster"
	"coordattack/internal/queue"
)

// This file is the service side of the static-peer cluster
// (internal/cluster): the peer-protocol HTTP handlers, the worker-path
// peer lookup, and the work-stealing machinery.
//
// Results are content-addressed (coordd/v2 keys), so any node can serve
// any node's result byte-for-byte. The consistent-hash ring names one
// owner peer per key; a local miss consults the owner before running
// the engine, and every computed body is replicated to its owner so the
// owner's answer is authoritative for the whole cluster.
//
// Stealing moves *pending* jobs from a saturated node (the victim) to
// an idle one (the thief). The handoff transfers journal ownership —
// the victim tombstones its accept record, the thief appends its own —
// so a crash on either side re-runs the job at most once. The victim
// keeps the HTTP-visible Job and follows the thief's result remotely,
// falling back to local recompute if the thief is presumed dead.

// maxPeerBodyBytes bounds a replicated result body accepted over PUT.
const maxPeerBodyBytes = 32 << 20

// stolenPollInterval is how often a victim polls the thief for the
// result of a donated job.
const stolenPollInterval = 200 * time.Millisecond

// stolenPollFailures is how many consecutive poll errors the victim
// tolerates before presuming the thief dead and recomputing locally.
const stolenPollFailures = 4

// validKey reports whether key looks like a coordd/v2 result key: 64
// lowercase hex digits. Peer endpoints reject anything else before
// touching the cache or disk.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// handlePeerGetResult serves GET /v1/peer/results/{key}: the bit-exact
// stored body for a settled key, or 404 on a clean miss. Peers use it
// both for owner lookups and for following stolen jobs.
func (s *Server) handlePeerGetResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !validKey(key) {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "malformed result key"})
		return
	}
	body, ok := s.cache.Get(key)
	if !ok {
		if body, ok = s.storeGet(key); ok {
			s.cache.Put(key, body)
		}
	}
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no result for key"})
		return
	}
	s.metrics.PeerServed.Add(1)
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(body)
}

// handlePeerPutResult accepts PUT /v1/peer/results/{key}: a peer
// replicating a computed body to this node (the key's ring owner). The
// bytes are stored verbatim — they must stay bit-identical cluster-wide.
func (s *Server) handlePeerPutResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !validKey(key) {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "malformed result key"})
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxPeerBodyBytes+1))
	if err != nil || len(body) == 0 || len(body) > maxPeerBodyBytes || !json.Valid(body) {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad result body"})
		return
	}
	s.cache.Put(key, json.RawMessage(body))
	s.storePut(key, json.RawMessage(body))
	w.WriteHeader(http.StatusNoContent)
}

// handlePeerSteal serves POST /v1/peer/steal: an idle peer asking this
// node to donate pending work.
func (s *Server) handlePeerSteal(w http.ResponseWriter, r *http.Request) {
	var req cluster.StealRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Want < 1 {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad steal request"})
		return
	}
	writeJSON(w, http.StatusOK, cluster.StealResponse{Jobs: s.stealVictim(req.Want, req.Thief)})
}

// handleAdminCluster serves GET /v1/admin/cluster: ring membership,
// per-peer breaker state, and the peer request counters.
func (s *Server) handleAdminCluster(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: "cluster disabled"})
		return
	}
	writeJSON(w, http.StatusOK, s.cluster.Snapshot())
}

// peerFetch consults the key's ring owner for an already-computed body.
// Called on the worker path after the local cache and store both missed,
// only for keys this node does not own (the owner never dials out for
// its own keys — it either has the body or is about to compute it). Any
// peer failure degrades to local compute; a dead owner costs one
// breaker-limited timeout, never correctness.
func (s *Server) peerFetch(j *Job) (json.RawMessage, bool) {
	if s.cluster == nil || s.cluster.OwnsLocally(j.key) {
		return nil, false
	}
	body, ok := s.cluster.FetchResult(j.ctx, j.key)
	if !ok {
		return nil, false
	}
	return json.RawMessage(body), true
}

// settlePeerResult finishes j with a body retrieved from a peer —
// served as a cache hit: memoized locally, full trial count, no engine
// run counted.
func (s *Server) settlePeerResult(j *Job, body json.RawMessage) {
	s.cache.Put(j.key, body)
	s.storePut(j.key, body)
	j.mu.Lock()
	j.cached = true
	j.stolenBy = ""
	j.mu.Unlock()
	j.completed.Store(int64(j.spec.Trials))
	if j.finish(StateDone, body, "") {
		s.metrics.JobsCompleted.Add(1)
		s.metrics.PeerHits.Add(1)
	}
}

// replicateToOwner pushes a freshly computed body to the key's ring
// owner, best-effort and off the worker path. The owner being current
// is what lets any node answer any key with one owner-routed hop.
func (s *Server) replicateToOwner(key string, body json.RawMessage) {
	if s.cluster == nil || s.cluster.OwnsLocally(key) {
		return
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.cluster.PushResult(context.Background(), key, body)
	}()
}

// stealVictim donates up to want pending jobs to thief. The grant is
// capped at the backlog surplus beyond this node's own worker pool —
// a node never donates work its own idle-in-a-moment workers would
// take next. Donated jobs keep their HTTP-visible Job here: the journal
// record is tombstoned (ownership transfers to the thief's journal) and
// a follower goroutine polls the thief for the result.
func (s *Server) stealVictim(want int, thief string) []cluster.StolenJob {
	if s.cluster == nil || want < 1 {
		return nil
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	surplus := s.sched.Depth() - s.cfg.Workers
	if surplus < want {
		want = surplus
	}
	if want < 1 {
		s.mu.Unlock()
		return nil
	}
	items := s.sched.Steal(want)
	granted := make([]cluster.StolenJob, 0, len(items))
	var followers []*Job
	for _, it := range items {
		j := it.Payload.(*Job)
		j.mu.Lock()
		terminal := j.state.Terminal()
		if !terminal {
			j.stolenBy = thief
		}
		j.mu.Unlock()
		if terminal {
			// Cancelled while queued; Cancel already settled and
			// tombstoned it. Popping it here just swept it out.
			continue
		}
		specJSON, err := json.Marshal(j.spec)
		if err != nil {
			continue
		}
		j.item = nil
		granted = append(granted, cluster.StolenJob{
			Key:      j.key,
			Flow:     it.Flow,
			Class:    string(it.Class),
			Priority: it.Priority,
			Spec:     specJSON,
		})
		followers = append(followers, j)
		s.metrics.JobsDonated.Add(1)
		s.wg.Add(1)
	}
	s.mu.Unlock()
	for _, j := range followers {
		// Tombstone after the grant is assembled: ownership now belongs
		// to the thief's journal (it re-appends on adoption).
		s.journalSettle(j)
		go s.awaitStolen(j, thief)
	}
	return granted
}

// awaitStolen is the victim's remote follower for one donated job: it
// polls the thief for the result, settles the local Job when it lands,
// and falls back to local recompute if the thief stops answering. The
// job stays "queued" (with stolen_by set) while remote, so API cancel
// keeps working through the normal queued-cancel path.
func (s *Server) awaitStolen(j *Job, thief string) {
	defer s.wg.Done()
	tick := time.NewTicker(stolenPollInterval)
	defer tick.Stop()
	fails := 0
	for {
		select {
		case <-j.done:
			// Settled through the API (cancel) — Cancel did the
			// accounting; nothing left to follow.
			j.cancel()
			return
		case <-j.ctx.Done():
			if j.finishIfQueued(StateCancelled, j.ctx.Err().Error()) {
				s.metrics.JobsCancelled.Add(1)
			}
			s.dropInflight(j)
			return
		case <-tick.C:
		}
		body, found, err := s.cluster.FetchFrom(j.ctx, thief, j.key)
		if found {
			s.settlePeerResult(j, body)
			j.cancel()
			s.dropInflight(j)
			return
		}
		if err == nil {
			// Clean miss: the thief has it queued or running. Keep waiting.
			fails = 0
			continue
		}
		fails++
		if fails < stolenPollFailures && !s.cluster.PeerDown(thief) {
			continue
		}
		// Thief presumed dead: take the job back. Re-journal (the
		// tombstone transferred ownership away; reclaiming must survive
		// a crash here too) and re-enqueue past MaxDepth — accepted work
		// is never dropped.
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			if j.finishIfQueued(StateCancelled, "cluster: thief lost during drain") {
				s.metrics.JobsCancelled.Add(1)
			}
			s.dropInflight(j)
			return
		}
		j.mu.Lock()
		j.stolenBy = ""
		j.mu.Unlock()
		it := &queue.Item{
			Key:      j.key,
			Flow:     "interactive",
			Class:    queue.ClassInteractive,
			Priority: j.spec.Priority,
			Deadline: j.deadline,
			Payload:  j,
		}
		j.item = it
		s.journalAccept(j, it)
		s.mu.Unlock()
		s.sched.PushReplay(it)
		s.metrics.JobsReclaimed.Add(1)
		return
	}
}

// adoptStolen admits jobs granted by a victim into this node's own
// queue, registry, and journal. Keys already settled or in flight
// locally are skipped — the victim's follower finds the body through
// the results endpoint either way. Returns how many jobs were adopted.
func (s *Server) adoptStolen(jobs []cluster.StolenJob) int {
	adopted := 0
	for _, sj := range jobs {
		var spec JobSpec
		if err := json.Unmarshal(sj.Spec, &spec); err != nil {
			continue
		}
		canon, err := spec.Canonicalize()
		if err != nil {
			continue
		}
		// Adopt under our own canonical key. On version skew it may
		// differ from the victim's; the victim's follower then falls back
		// to recompute — degraded, never wrong.
		key := canon.Key()
		if _, ok := s.cache.Get(key); ok {
			continue
		}
		if body, ok := s.storeGet(key); ok {
			s.cache.Put(key, body)
			continue
		}
		j := s.newJob(canon, key)
		class := queue.Class(sj.Class)
		if class == "" {
			class = queue.ClassInteractive
		}
		flow := sj.Flow
		if flow == "" {
			flow = "interactive"
		}
		it := &queue.Item{
			Key:      key,
			Flow:     flow,
			Class:    class,
			Priority: sj.Priority,
			Deadline: j.deadline,
			Payload:  j,
		}
		s.mu.Lock()
		if s.draining || s.inflight[key] != nil {
			s.mu.Unlock()
			j.cancel()
			continue
		}
		s.jobs[j.id] = j
		s.inflight[key] = j
		j.item = it
		s.journalAccept(j, it)
		s.mu.Unlock()
		// Replay admission: a steal this node asked for must not bounce
		// off its own MaxDepth.
		s.sched.PushReplay(it)
		s.metrics.JobsStolen.Add(1)
		adopted++
	}
	return adopted
}

// stealLoop runs on every cluster node: whenever the local pool has
// idle workers and an empty backlog, it asks each live peer in turn to
// donate pending work. Stopped by Drain.
func (s *Server) stealLoop(interval time.Duration) {
	defer close(s.stealDone)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.stealStop:
			return
		case <-tick.C:
		}
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if draining {
			return
		}
		free := s.cfg.Workers - int(s.running.Load())
		if free < 1 || s.sched.Depth() > 0 {
			continue
		}
		for _, peer := range s.cluster.PeerAddrs() {
			if free < 1 {
				break
			}
			if s.cluster.PeerDown(peer) {
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			jobs, err := s.cluster.StealFrom(ctx, peer, free)
			cancel()
			if err != nil || len(jobs) == 0 {
				continue
			}
			free -= s.adoptStolen(jobs)
		}
	}
}
