package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"coordattack/internal/cluster"
	"coordattack/internal/hints"
	"coordattack/internal/queue"
	"coordattack/internal/store"
)

// Metrics holds the daemon's counters and the job-latency histogram,
// rendered in Prometheus text exposition format at /metrics. Everything
// is stdlib: atomics for counters, a fixed-bucket histogram under a
// mutex.
type Metrics struct {
	JobsSubmitted atomic.Int64
	JobsCompleted atomic.Int64
	JobsFailed    atomic.Int64
	JobsCancelled atomic.Int64
	JobsRejected  atomic.Int64 // queue-full 429s
	JobsCoalesced atomic.Int64 // submissions attached to an identical in-flight job
	JobsEvicted   atomic.Int64 // settled jobs evicted past the retention limit

	// WatchdogKills counts jobs the stuck-job watchdog declared wedged
	// (past deadline, no progress movement) and force-failed, freeing
	// their worker slots.
	WatchdogKills atomic.Int64

	// QueueReplayed counts accepted-but-unsettled jobs re-admitted from
	// the pending-queue journal on restart — the crash-durability win.
	QueueReplayed atomic.Int64

	// PeerHits counts local misses answered with a body fetched from a
	// cluster peer instead of an engine run — the cluster-wide
	// memoization win (includes stolen-job results retrieved by their
	// victims).
	PeerHits atomic.Int64
	// PeerServed counts results this node served to peers over
	// GET /v1/peer/results.
	PeerServed atomic.Int64
	// JobsStolen counts pending jobs this node adopted from saturated
	// peers; JobsDonated counts pending jobs it granted to idle ones.
	JobsStolen  atomic.Int64
	JobsDonated atomic.Int64
	// JobsReclaimed counts donated jobs taken back and re-enqueued
	// locally after their thief stopped answering.
	JobsReclaimed atomic.Int64
	// StealCommits counts successful phase-two commits this thief posted
	// back to victims after journaling stolen jobs into its own WAL.
	StealCommits atomic.Int64
	// ReplicaPushes counts result bodies successfully pushed to replica
	// peers (owner or successor), both on the compute path and by the
	// anti-entropy repair loop.
	ReplicaPushes atomic.Int64
	// ReplicaRepairs counts bodies the anti-entropy repair loop pushed
	// to replicas found missing them — the under-replication it healed.
	ReplicaRepairs atomic.Int64
	// ReadRepairs counts bodies pushed back to replica-set members that
	// missed them, triggered by a fetch falling through the set — the
	// fast-path heal, as opposed to the repair loop's background walk.
	ReadRepairs atomic.Int64

	// pfMu guards pushFailures, the per-peer count of replica pushes
	// that failed (the previously silent "healed later" path), rendered
	// as coordd_replica_push_failures_total{peer}.
	pfMu         sync.Mutex
	pushFailures map[string]int64

	// EngineRuns counts actual engine executions: submissions minus
	// cache hits, coalesced attaches, rejections, and queued cancels.
	// JobsSubmitted − EngineRuns is the work the memoization layer saved.
	EngineRuns atomic.Int64
	// EnginePanics counts engine executions that died by panic and were
	// recovered into a single failed job (the daemon kept serving).
	EnginePanics atomic.Int64

	SweepsSubmitted atomic.Int64 // sweep requests accepted
	SweepsRejected  atomic.Int64 // sweeps rejected with queue-full backpressure
	SweepsEvicted   atomic.Int64 // settled sweeps evicted past the retention limit
	SweepCells      atomic.Int64 // grid cells expanded across all sweeps

	// WatchCoalesced counts snapshots skipped on /watch streams because
	// the client could not keep up at 10 Hz: each skip means the next
	// write carried a strictly newer state instead of a stale backlog.
	WatchCoalesced atomic.Int64

	TrialsExecuted atomic.Int64 // mc trials completed, across all jobs

	mu      sync.Mutex
	buckets []float64 // upper bounds, seconds, ascending
	counts  []int64   // cumulative-on-render, raw per-bucket here
	sum     float64
	count   int64
	// classSum/classCount split the duration observations by scheduling
	// class, feeding the per-class Retry-After estimate: a saturating
	// sweep's long cells must not inflate interactive clients' backoff.
	classSum   map[queue.Class]float64
	classCount map[queue.Class]int64
}

// defaultBuckets spans microsecond cache hits to multi-minute sweeps.
var defaultBuckets = []float64{
	0.000_1, 0.001, 0.01, 0.1, 0.5, 1, 5, 30, 60, 300,
}

// NewMetrics returns a Metrics with the default latency buckets.
func NewMetrics() *Metrics {
	b := make([]float64, len(defaultBuckets))
	copy(b, defaultBuckets)
	sort.Float64s(b)
	return &Metrics{
		buckets:      b,
		counts:       make([]int64, len(b)),
		classSum:     make(map[queue.Class]float64),
		classCount:   make(map[queue.Class]int64),
		pushFailures: make(map[string]int64),
	}
}

// IncReplicaPushFailure counts one failed replica push toward peer.
func (m *Metrics) IncReplicaPushFailure(peer string) {
	m.pfMu.Lock()
	m.pushFailures[peer]++
	m.pfMu.Unlock()
}

// PushFailures snapshots the per-peer failed-push counters.
func (m *Metrics) PushFailures() map[string]int64 {
	m.pfMu.Lock()
	defer m.pfMu.Unlock()
	out := make(map[string]int64, len(m.pushFailures))
	for k, v := range m.pushFailures {
		out[k] = v
	}
	return out
}

// ObserveJobSeconds records one job's wall-clock duration under its
// scheduling class.
func (m *Metrics) ObserveJobSeconds(s float64, class queue.Class) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, ub := range m.buckets {
		if s <= ub {
			m.counts[i]++
			break
		}
	}
	m.sum += s
	m.count++
	m.classSum[class] += s
	m.classCount[class]++
}

// MeanJobSeconds reports the observed mean job duration, or 0 before
// any job has completed.
func (m *Metrics) MeanJobSeconds() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.count == 0 {
		return 0
	}
	return m.sum / float64(m.count)
}

// MeanJobSecondsClass reports the observed mean job duration for one
// scheduling class, falling back to the overall mean before any job of
// that class has completed (and 0 before any job at all has). It feeds
// the per-class Retry-After estimate on 429s.
func (m *Metrics) MeanJobSecondsClass(class queue.Class) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n := m.classCount[class]; n > 0 {
		return m.classSum[class] / float64(n)
	}
	if m.count == 0 {
		return 0
	}
	return m.sum / float64(m.count)
}

// Gauges carries point-in-time values the server computes at render
// time (queue depth, running jobs, cache and store state).
type Gauges struct {
	JobsQueued int
	// QueueInteractive/QueueSweep split JobsQueued by scheduling class;
	// QueueOldestAgeSec is the head-of-line wait of the oldest pending
	// job.
	QueueInteractive  int
	QueueSweep        int
	QueueOldestAgeSec float64
	JobsRunning       int
	CacheSize         int
	CacheHits         int64
	CacheMisses       int64
	// StoreEnabled marks a daemon with a durable tier configured; Store
	// is its counter/gauge snapshot (zero when disabled, so the metric
	// surface stays stable either way).
	StoreEnabled bool
	Store        store.Stats
	// JournalEnabled marks a daemon with a pending-queue journal;
	// Journal is its snapshot.
	JournalEnabled bool
	Journal        queue.JournalStats
	// QueueFlows is the DRR ring size — the registered fairness flows.
	// Bounded by queue depth (empty flows are reaped), so growth here
	// means the reap invariant broke.
	QueueFlows int
	// ClusterEnabled marks a daemon joined to a peer set; Cluster is its
	// ring/breaker/request-counter snapshot.
	ClusterEnabled bool
	Cluster        cluster.Snapshot
	// HintsEnabled marks a daemon with a hinted-handoff log (every
	// clustered daemon has one; it is durable only under -queue-dir);
	// Hints is its snapshot.
	HintsEnabled bool
	Hints        hints.Stats
}

// WritePrometheus renders every metric in Prometheus text format.
func (m *Metrics) WritePrometheus(w io.Writer, g Gauges) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("coordd_jobs_submitted_total", "Jobs accepted for scheduling.", m.JobsSubmitted.Load())
	counter("coordd_jobs_completed_total", "Jobs that finished successfully.", m.JobsCompleted.Load())
	counter("coordd_jobs_failed_total", "Jobs that ended in an error.", m.JobsFailed.Load())
	counter("coordd_jobs_cancelled_total", "Jobs cancelled or deadline-expired.", m.JobsCancelled.Load())
	counter("coordd_jobs_rejected_total", "Jobs rejected with queue-full backpressure.", m.JobsRejected.Load())
	counter("coordd_jobs_coalesced_total", "Submissions attached to an identical in-flight job.", m.JobsCoalesced.Load())
	counter("coordd_jobs_evicted_total", "Settled jobs evicted past the retention limit.", m.JobsEvicted.Load())
	counter("coordd_watchdog_kills_total", "Stuck jobs killed by the watchdog.", m.WatchdogKills.Load())
	counter("coordd_engine_runs_total", "Engine executions actually performed.", m.EngineRuns.Load())
	counter("coordd_engine_panics_total", "Engine panics recovered into single-job failures.", m.EnginePanics.Load())
	counter("coordd_sweeps_submitted_total", "Parameter sweeps accepted.", m.SweepsSubmitted.Load())
	counter("coordd_sweeps_rejected_total", "Sweeps rejected with queue-full backpressure.", m.SweepsRejected.Load())
	counter("coordd_sweeps_evicted_total", "Settled sweeps evicted past the retention limit.", m.SweepsEvicted.Load())
	counter("coordd_sweep_cells_total", "Grid cells expanded across all sweeps.", m.SweepCells.Load())
	counter("coordd_cache_hits_total", "Result-cache hits.", g.CacheHits)
	counter("coordd_cache_misses_total", "Result-cache misses.", g.CacheMisses)
	counter("coordd_watch_coalesced_total", "Watch-stream snapshots skipped for slow clients.", m.WatchCoalesced.Load())
	counter("coordd_trials_executed_total", "Monte-Carlo trials completed across all jobs.", m.TrialsExecuted.Load())
	counter("coordd_store_hits_total", "Durable-store hits.", g.Store.Hits)
	counter("coordd_store_misses_total", "Durable-store misses.", g.Store.Misses)
	counter("coordd_store_writes_total", "Bodies written through to the durable store.", g.Store.Writes)
	counter("coordd_store_evictions_total", "Durable-store entries evicted by the size-budget GC.", g.Store.Evictions)
	counter("coordd_store_quarantined_total", "Corrupt durable-store entries quarantined on read.", g.Store.Quarantined)
	counter("coordd_store_recoveries_total", "Degraded-store recoveries back to read-write.", g.Store.Recoveries)
	counter("coordd_queue_replayed_total", "Pending jobs re-admitted from the queue journal on restart.", m.QueueReplayed.Load())
	counter("coordd_peer_hits_total", "Local misses answered by a cluster peer instead of an engine run.", m.PeerHits.Load())
	counter("coordd_peer_served_total", "Results served to cluster peers.", m.PeerServed.Load())
	counter("coordd_jobs_stolen_total", "Pending jobs adopted from saturated peers.", m.JobsStolen.Load())
	counter("coordd_jobs_donated_total", "Pending jobs granted to idle peers.", m.JobsDonated.Load())
	counter("coordd_jobs_reclaimed_total", "Donated jobs taken back after their thief stopped answering.", m.JobsReclaimed.Load())
	counter("coordd_steal_commits_total", "Two-phase steal commits posted back to victims.", m.StealCommits.Load())
	counter("coordd_replica_pushes_total", "Result bodies successfully pushed to replica peers.", m.ReplicaPushes.Load())
	counter("coordd_replica_repairs_total", "Under-replicated bodies healed by the anti-entropy repair loop.", m.ReplicaRepairs.Load())
	counter("coordd_read_repairs_total", "Bodies pushed back to replicas that missed them after a fall-through fetch.", m.ReadRepairs.Load())
	counter("coordd_queue_journal_accepts_total", "Accept records appended to the queue journal.", g.Journal.Accepts)
	counter("coordd_queue_journal_settles_total", "Settle tombstones appended to the queue journal.", g.Journal.Settles)
	counter("coordd_queue_journal_truncated_total", "Undecodable journal records skipped on replay.", g.Journal.Truncated)
	counter("coordd_queue_journal_compactions_total", "Queue journal compactions (open-time and live).", g.Journal.Compactions)
	gauge("coordd_jobs_queued", "Jobs waiting in the scheduler.", g.JobsQueued)
	fmt.Fprintf(w, "# HELP coordd_queue_depth Pending jobs by scheduling class.\n# TYPE coordd_queue_depth gauge\n")
	fmt.Fprintf(w, "coordd_queue_depth{class=\"interactive\"} %d\n", g.QueueInteractive)
	fmt.Fprintf(w, "coordd_queue_depth{class=\"sweep\"} %d\n", g.QueueSweep)
	fmt.Fprintf(w, "# HELP coordd_queue_oldest_age_seconds Wait of the oldest pending job.\n# TYPE coordd_queue_oldest_age_seconds gauge\ncoordd_queue_oldest_age_seconds %g\n", g.QueueOldestAgeSec)
	journalDegraded := 0
	if g.Journal.Degraded {
		journalDegraded = 1
	}
	gauge("coordd_queue_journal_degraded", "1 when a write error demoted the queue journal to memory-only.", journalDegraded)
	gauge("coordd_jobs_running", "Jobs currently executing.", g.JobsRunning)
	gauge("coordd_cache_entries", "Entries in the result cache.", g.CacheSize)
	gauge("coordd_store_entries", "Entries in the durable store.", g.Store.Entries)
	fmt.Fprintf(w, "# HELP coordd_store_bytes On-disk bytes in the durable store.\n# TYPE coordd_store_bytes gauge\ncoordd_store_bytes %d\n", g.Store.Bytes)
	degraded := 0
	if g.Store.Degraded {
		degraded = 1
	}
	gauge("coordd_store_degraded", "1 when a write error demoted the store to read-only.", degraded)
	gauge("coordd_queue_flows", "Registered fairness flows in the DRR ring.", g.QueueFlows)
	if g.ClusterEnabled {
		fmt.Fprintf(w, "# HELP coordd_peer_requests_total Peer-protocol requests by peer, operation, and outcome.\n# TYPE coordd_peer_requests_total counter\n")
		for _, r := range g.Cluster.Requests {
			fmt.Fprintf(w, "coordd_peer_requests_total{peer=%q,op=%q,outcome=%q} %d\n", r.Peer, r.Op, r.Outcome, r.Count)
		}
		fmt.Fprintf(w, "# HELP coordd_peer_breaker_open 1 when the peer's circuit breaker is open.\n# TYPE coordd_peer_breaker_open gauge\n")
		for _, p := range g.Cluster.Peers {
			open := 0
			if p.Breaker == cluster.StateOpen {
				open = 1
			}
			fmt.Fprintf(w, "coordd_peer_breaker_open{peer=%q} %d\n", p.Addr, open)
		}
		fmt.Fprintf(w, "# HELP coordd_peer_health Failure-detector peer state: 0 unknown, 1 alive, 2 suspect, 3 dead.\n# TYPE coordd_peer_health gauge\n")
		for _, p := range g.Cluster.Peers {
			var h int
			switch p.Health {
			case cluster.HealthAlive:
				h = 1
			case cluster.HealthSuspect:
				h = 2
			case cluster.HealthDead:
				h = 3
			}
			fmt.Fprintf(w, "coordd_peer_health{peer=%q} %d\n", p.Addr, h)
		}
		fmt.Fprintf(w, "# HELP coordd_replica_push_failures_total Replica pushes that failed, by target peer (hint queued; repair is the backstop).\n# TYPE coordd_replica_push_failures_total counter\n")
		pf := m.PushFailures()
		peers := make([]string, 0, len(pf))
		for p := range pf {
			peers = append(peers, p)
		}
		sort.Strings(peers)
		for _, p := range peers {
			fmt.Fprintf(w, "coordd_replica_push_failures_total{peer=%q} %d\n", p, pf[p])
		}
	}
	if g.HintsEnabled {
		counter("coordd_hints_queued_total", "Hinted handoffs queued after failed replica pushes.", g.Hints.Adds)
		counter("coordd_hints_delivered_total", "Hinted handoffs delivered to recovered peers.", g.Hints.Delivered)
		counter("coordd_hints_dropped_total", "Hints shed oldest-first under the hint-log byte cap.", g.Hints.Dropped)
		counter("coordd_hints_replayed_total", "Pending hints recovered from the hint log on restart.", int64(g.Hints.Replayed))
		counter("coordd_hints_truncated_total", "Undecodable hint-log records skipped on replay.", g.Hints.Truncated)
		gauge("coordd_hints_pending", "Hints currently queued for unreachable peers.", g.Hints.Pending)
		hintsDegraded := 0
		if g.Hints.Degraded {
			hintsDegraded = 1
		}
		gauge("coordd_hints_degraded", "1 when a write error demoted the hint log to memory-only.", hintsDegraded)
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	fmt.Fprintf(w, "# HELP coordd_job_duration_seconds Job wall-clock duration.\n")
	fmt.Fprintf(w, "# TYPE coordd_job_duration_seconds histogram\n")
	cum := int64(0)
	for i, ub := range m.buckets {
		cum += m.counts[i]
		fmt.Fprintf(w, "coordd_job_duration_seconds_bucket{le=%q} %d\n", formatBound(ub), cum)
	}
	fmt.Fprintf(w, "coordd_job_duration_seconds_bucket{le=\"+Inf\"} %d\n", m.count)
	fmt.Fprintf(w, "coordd_job_duration_seconds_sum %g\n", m.sum)
	fmt.Fprintf(w, "coordd_job_duration_seconds_count %d\n", m.count)
}

func formatBound(ub float64) string { return fmt.Sprintf("%g", ub) }
