package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Metrics holds the daemon's counters and the job-latency histogram,
// rendered in Prometheus text exposition format at /metrics. Everything
// is stdlib: atomics for counters, a fixed-bucket histogram under a
// mutex.
type Metrics struct {
	JobsSubmitted atomic.Int64
	JobsCompleted atomic.Int64
	JobsFailed    atomic.Int64
	JobsCancelled atomic.Int64
	JobsRejected  atomic.Int64 // queue-full 429s
	JobsCoalesced atomic.Int64 // submissions attached to an identical in-flight job

	// EngineRuns counts actual engine executions: submissions minus
	// cache hits, coalesced attaches, rejections, and queued cancels.
	// JobsSubmitted − EngineRuns is the work the memoization layer saved.
	EngineRuns atomic.Int64

	SweepsSubmitted atomic.Int64 // sweep requests accepted
	SweepCells      atomic.Int64 // grid cells expanded across all sweeps

	TrialsExecuted atomic.Int64 // mc trials completed, across all jobs

	mu      sync.Mutex
	buckets []float64 // upper bounds, seconds, ascending
	counts  []int64   // cumulative-on-render, raw per-bucket here
	sum     float64
	count   int64
}

// defaultBuckets spans microsecond cache hits to multi-minute sweeps.
var defaultBuckets = []float64{
	0.000_1, 0.001, 0.01, 0.1, 0.5, 1, 5, 30, 60, 300,
}

// NewMetrics returns a Metrics with the default latency buckets.
func NewMetrics() *Metrics {
	b := make([]float64, len(defaultBuckets))
	copy(b, defaultBuckets)
	sort.Float64s(b)
	return &Metrics{buckets: b, counts: make([]int64, len(b))}
}

// ObserveJobSeconds records one job's wall-clock duration.
func (m *Metrics) ObserveJobSeconds(s float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, ub := range m.buckets {
		if s <= ub {
			m.counts[i]++
			break
		}
	}
	m.sum += s
	m.count++
}

// Gauges carries point-in-time values the server computes at render
// time (queue depth, running jobs, cache state).
type Gauges struct {
	JobsQueued  int
	JobsRunning int
	CacheSize   int
	CacheHits   int64
	CacheMisses int64
}

// WritePrometheus renders every metric in Prometheus text format.
func (m *Metrics) WritePrometheus(w io.Writer, g Gauges) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("coordd_jobs_submitted_total", "Jobs accepted for scheduling.", m.JobsSubmitted.Load())
	counter("coordd_jobs_completed_total", "Jobs that finished successfully.", m.JobsCompleted.Load())
	counter("coordd_jobs_failed_total", "Jobs that ended in an error.", m.JobsFailed.Load())
	counter("coordd_jobs_cancelled_total", "Jobs cancelled or deadline-expired.", m.JobsCancelled.Load())
	counter("coordd_jobs_rejected_total", "Jobs rejected with queue-full backpressure.", m.JobsRejected.Load())
	counter("coordd_jobs_coalesced_total", "Submissions attached to an identical in-flight job.", m.JobsCoalesced.Load())
	counter("coordd_engine_runs_total", "Engine executions actually performed.", m.EngineRuns.Load())
	counter("coordd_sweeps_submitted_total", "Parameter sweeps accepted.", m.SweepsSubmitted.Load())
	counter("coordd_sweep_cells_total", "Grid cells expanded across all sweeps.", m.SweepCells.Load())
	counter("coordd_cache_hits_total", "Result-cache hits.", g.CacheHits)
	counter("coordd_cache_misses_total", "Result-cache misses.", g.CacheMisses)
	counter("coordd_trials_executed_total", "Monte-Carlo trials completed across all jobs.", m.TrialsExecuted.Load())
	gauge("coordd_jobs_queued", "Jobs waiting in the FIFO queue.", g.JobsQueued)
	gauge("coordd_jobs_running", "Jobs currently executing.", g.JobsRunning)
	gauge("coordd_cache_entries", "Entries in the result cache.", g.CacheSize)

	m.mu.Lock()
	defer m.mu.Unlock()
	fmt.Fprintf(w, "# HELP coordd_job_duration_seconds Job wall-clock duration.\n")
	fmt.Fprintf(w, "# TYPE coordd_job_duration_seconds histogram\n")
	cum := int64(0)
	for i, ub := range m.buckets {
		cum += m.counts[i]
		fmt.Fprintf(w, "coordd_job_duration_seconds_bucket{le=%q} %d\n", formatBound(ub), cum)
	}
	fmt.Fprintf(w, "coordd_job_duration_seconds_bucket{le=\"+Inf\"} %d\n", m.count)
	fmt.Fprintf(w, "coordd_job_duration_seconds_sum %g\n", m.sum)
	fmt.Fprintf(w, "coordd_job_duration_seconds_count %d\n", m.count)
}

func formatBound(ub float64) string { return fmt.Sprintf("%g", ub) }
