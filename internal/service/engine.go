package service

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"runtime/debug"
	"strconv"
	"strings"

	"coordattack/internal/causality"
	"coordattack/internal/cliutil"
	"coordattack/internal/experiments"
	"coordattack/internal/fault"
	"coordattack/internal/graph"
	"coordattack/internal/mc"
	"coordattack/internal/rng"
	"coordattack/internal/run"
	"coordattack/internal/stats"
)

// An engine turns one canonical JobSpec into a JSON result body. A
// cancelled or deadline-expired mc job returns its partial body
// *together with* the context error; the scheduler keeps the body and
// marks the job cancelled. Bodies are built deterministically from the
// spec, which is what makes cache hits bit-identical to recomputation.
type engine interface {
	run(ctx context.Context, spec JobSpec, p runParams) (json.RawMessage, error)
}

// runParams is what the scheduler, not the spec, decides about one
// engine execution: the trial-parallelism budget (so a loaded pool
// does not oversubscribe the CPU — budgets never change the numbers,
// only the speed) and the progress observer.
type runParams struct {
	workers  int
	progress func(mc.Snapshot)
}

// RunFunc is one engine execution as a plain function: what
// Config.WrapEngine intercepts. The workers and progress arguments
// mirror runParams; wrappers must forward both for the scheduler's
// trial budgeting and watchdog liveness tracking to keep working.
type RunFunc func(ctx context.Context, spec JobSpec, workers int, progress func(mc.Snapshot)) (json.RawMessage, error)

// engineRunFunc adapts a registry engine to the RunFunc shape.
func engineRunFunc(eng engine) RunFunc {
	return func(ctx context.Context, spec JobSpec, workers int, progress func(mc.Snapshot)) (json.RawMessage, error) {
		return eng.run(ctx, spec, runParams{workers: workers, progress: progress})
	}
}

// engines is the registry the scheduler dispatches through, keyed by
// JobSpec.Engine. The experiment engine carries a service-lifetime
// level-table memo: repeated submissions (and the prefix ladders inside
// one experiment) share causality work across jobs. The memo never
// changes results — only how often the closure is recomputed — so
// cache-hit bodies stay bit-identical to recomputation.
func engineRegistry() map[string]engine {
	return map[string]engine{
		EngineMC:         mcEngine{},
		EngineExperiment: expEngine{memo: causality.NewMemo()},
	}
}

// PanicError is the structured failure a recovered engine panic settles
// its job with: the panicking engine, the panic value, and a truncated
// stack. One panicking job must never take the worker pool down — the
// paper's processes die individually, not as a system.
type PanicError struct {
	Engine string
	Value  any
	Stack  string
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("service: engine %q panicked: %v\n%s", e.Engine, e.Value, e.Stack)
}

// panicStackLimit bounds the stack carried in a job's error message; the
// top frames are the useful ones.
const panicStackLimit = 2048

// runEngine runs fn with panic isolation: a panic anywhere under the
// engine (a bad protocol implementation, an arithmetic edge case, an
// injected chaos fault) becomes a *PanicError failing this one job
// instead of killing the worker goroutine and, with it, the daemon's
// capacity. The recovery sits outside any Config.WrapEngine wrapper,
// so wrapper-injected panics are isolated exactly like engine ones.
func runEngine(name string, fn RunFunc, ctx context.Context, spec JobSpec, p runParams) (body json.RawMessage, err error) {
	defer func() {
		if r := recover(); r != nil {
			stack := debug.Stack()
			if len(stack) > panicStackLimit {
				stack = stack[:panicStackLimit]
			}
			body = nil
			err = &PanicError{Engine: name, Value: r, Stack: string(stack)}
		}
	}()
	return fn(ctx, spec, p.workers, p.progress)
}

// mcInputs is a parsed mc job: everything mc.Estimate needs except the
// context and observers.
type mcInputs struct {
	cfg mc.Config
}

// buildMCInputs parses a canonical mc spec into an mc.Config. It is
// also canonicalization's validator: every sub-spec parse error
// surfaces here, at submit time.
func buildMCInputs(c JobSpec) (*mcInputs, error) {
	p, err := cliutil.ParseProtocol(c.Protocol)
	if err != nil {
		return nil, err
	}
	g, err := cliutil.ParseGraph(c.Graph, c.Seed)
	if err != nil {
		return nil, err
	}
	// Exact size limits, after the cheap boundGraphSpec pre-filter:
	// products (grid:RxC) and exponentials (hypercube:D) can pass the
	// per-argument bound while the built graph does not.
	if v := g.NumVertices(); v > MaxProcs {
		return nil, fmt.Errorf("service: graph %q has %d processes, served limit %d", c.Graph, v, MaxProcs)
	} else if cost := c.Rounds * v * v; cost > maxRunCost {
		return nil, fmt.Errorf("service: rounds×V² = %d over the served limit %d", cost, maxRunCost)
	}
	inputs, err := cliutil.ParseInputs(c.Inputs, g)
	if err != nil {
		return nil, err
	}
	cfg := mc.Config{
		Protocol:    p,
		Graph:       g,
		Trials:      c.Trials,
		Seed:        c.Seed,
		MaxFailures: c.MaxFailures,
	}
	if c.Precision != nil {
		// CheckEvery stays at the mc default (1000): it is part of what
		// the stopping point means, so it is deliberately not a knob.
		cfg.TargetCIWidth = c.Precision.CIWidth
	}
	if c.Sampler != "" {
		cfg.Sampler, err = parseSampler(c.Sampler, g, c.Rounds, inputs)
		if err != nil {
			return nil, err
		}
	} else {
		cfg.Run, err = cliutil.ParseRun(c.Run, g, c.Rounds, inputs, c.Seed)
		if err != nil {
			return nil, err
		}
	}
	if c.Fault != "" {
		plan, err := parseFaultSpec(c.Fault, g, c.Rounds, c.Seed)
		if err != nil {
			return nil, err
		}
		cfg.Protocol = fault.Inject(p, plan)
	}
	return &mcInputs{cfg: cfg}, nil
}

// parseSampler parses a per-trial run sampler spec:
//
//	loss:P — a good run with each delivery independently lost with
//	         probability P, resampled per trial
//	subset — a uniformly random subset of the good run's deliveries
//
// The returned sampler derives each trial's run from the tape the mc
// harness hands it, so the determinism discipline (trial t depends only
// on (seed, t)) holds.
func parseSampler(spec string, g *graph.G, rounds int, inputs []graph.ProcID) (mc.RunSampler, error) {
	name, args, _ := strings.Cut(spec, ":")
	switch name {
	case "loss":
		p, err := strconv.ParseFloat(args, 64)
		if err != nil || math.IsNaN(p) || p < 0 || p > 1 {
			return nil, fmt.Errorf("service: sampler %q: want loss:P with P in [0,1]", spec)
		}
		return func(trial uint64, tape *rng.Tape) (*run.Run, error) {
			return run.RandomLoss(g, rounds, p, tape, inputs...)
		}, nil
	case "subset":
		if args != "" {
			return nil, fmt.Errorf("service: sampler %q: subset takes no argument", spec)
		}
		return func(trial uint64, tape *rng.Tape) (*run.Run, error) {
			return run.RandomSubset(g, rounds, tape)
		}, nil
	default:
		return nil, fmt.Errorf("service: unknown sampler spec %q (want loss:P or subset)", spec)
	}
}

// parseFaultSpec mirrors coordsim's -fault language: "rand:P" samples a
// plan from the job seed, anything else is fault.Parse's explicit
// kind:proc[@round] list.
func parseFaultSpec(spec string, g *graph.G, rounds int, seed uint64) (*fault.Plan, error) {
	if rest, ok := strings.CutPrefix(spec, "rand:"); ok {
		pf, err := strconv.ParseFloat(rest, 64)
		if err != nil || math.IsNaN(pf) || pf < 0 || pf > 1 {
			return nil, fmt.Errorf("service: bad fault spec %q: want rand:P with P in [0,1]", spec)
		}
		return fault.Sample(seed, 0, g, rounds, fault.SampleConfig{PFault: pf})
	}
	return fault.Parse(spec, g.NumVertices(), rounds)
}

// mcBody is the JSON result body of an mc job. Like mc.Result, its
// field names are API.
type mcBody struct {
	Result *mc.Result `json:"result"`
	// Wilson 95% intervals over the completed trials, precomputed so
	// clients need no statistics code.
	TAWilson95 stats.Interval `json:"ta_wilson95"`
	PAWilson95 stats.Interval `json:"pa_wilson95"`
	NAWilson95 stats.Interval `json:"na_wilson95"`
	// Partial marks a result from a cancelled or deadline-expired job:
	// proportions cover only the completed trials. Partial bodies are
	// never cached.
	Partial bool   `json:"partial,omitempty"`
	Error   string `json:"error,omitempty"`
}

type mcEngine struct{}

func (mcEngine) run(ctx context.Context, spec JobSpec, p runParams) (json.RawMessage, error) {
	in, err := buildMCInputs(spec)
	if err != nil {
		return nil, err
	}
	cfg := in.cfg
	cfg.Ctx = ctx
	cfg.Workers = p.workers
	cfg.Progress = p.progress
	res, estErr := mc.Estimate(cfg)
	if res == nil {
		return nil, estErr
	}
	const z95 = 1.959963984540054
	body := mcBody{
		Result:     res,
		TAWilson95: res.TA.WilsonInterval(z95),
		PAWilson95: res.PA.WilsonInterval(z95),
		NAWilson95: res.NA.WilsonInterval(z95),
	}
	if estErr != nil {
		body.Partial = true
		body.Error = estErr.Error()
	}
	data, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	return data, estErr
}

type expEngine struct {
	memo *causality.Memo
}

func (x expEngine) run(ctx context.Context, spec JobSpec, p runParams) (json.RawMessage, error) {
	e, err := experiments.ByID(spec.Experiment)
	if err != nil {
		return nil, err
	}
	res, err := e.Run(experiments.Options{
		Trials: spec.Trials, Seed: spec.Seed, Quick: spec.Quick, Ctx: ctx, Memo: x.memo,
	})
	if err != nil {
		return nil, err
	}
	return res.JSON()
}
