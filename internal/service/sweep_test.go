package service

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestSweepExpansion checks grid expansion mechanics: cartesian order,
// axis application, fault_rate 0 meaning "no fault", and key-level
// deduplication of cells that spell the same computation.
func TestSweepExpansion(t *testing.T) {
	cells, _, err := SweepSpec{
		Base: JobSpec{Protocol: "s:0.1", Trials: 2000},
		Axes: SweepAxes{Rounds: []int{8, 10}, FaultRate: []float64{0, 0.25}},
	}.expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("expanded %d cells, want 4", len(cells))
	}
	first := cells[0]
	if first.params["rounds"] != "8" || first.params["fault_rate"] != "0" {
		t.Errorf("first cell params %v", first.params)
	}
	if first.spec.Rounds != 8 || first.spec.Fault != "" {
		t.Errorf("fault_rate 0 cell spec %+v, want no fault plan", first.spec)
	}
	last := cells[3]
	if last.spec.Rounds != 10 || last.spec.Fault != "rand:0.25" {
		t.Errorf("last cell spec %+v", last.spec)
	}
	// Every cell is canonical: defaults are filled in.
	for i, c := range cells {
		if c.spec.Graph != "pair" || c.spec.Trials != 2000 || c.spec.Seed != 1 {
			t.Errorf("cell %d not canonical: %+v", i, c.spec)
		}
	}

	// Duplicate axis values and spellings of the default collapse.
	deduped, _, err := SweepSpec{
		Base: JobSpec{Protocol: "s:0.1"},
		Axes: SweepAxes{Rounds: []int{10, 10}, Trials: []int{20000, 20000}},
	}.expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(deduped) != 1 {
		t.Errorf("duplicated axes expanded to %d cells, want 1", len(deduped))
	}

	// An epsilon axis derives the protocol spec; the base may omit it.
	eps, _, err := SweepSpec{
		Axes: SweepAxes{Epsilon: []float64{0.1, 0.2}},
	}.expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) != 2 || eps[0].spec.Protocol != "s:0.1" || eps[1].spec.Protocol != "s:0.2" {
		t.Errorf("epsilon cells %+v", eps)
	}
}

func TestSweepExpansionRejects(t *testing.T) {
	bad := []SweepSpec{
		{}, // no protocol and no epsilon axis
		{Base: JobSpec{Engine: "experiment", Experiment: "T3"}},                      // non-mc engine
		{Base: JobSpec{Protocol: "a"}, Axes: SweepAxes{Epsilon: []float64{0.1}}},     // epsilon over a non-s protocol
		{Base: JobSpec{Protocol: "s:0.1"}, Axes: SweepAxes{Rounds: []int{-3}}},       // invalid cell
		{Base: JobSpec{Protocol: "s:0.1"}, Axes: SweepAxes{FaultRate: []float64{2}}}, // bad fault probability
		{
			Base: JobSpec{Protocol: "s:0.1"},
			Axes: SweepAxes{Rounds: seqInts(1, 20), Trials: seqInts(100, 20)}, // 400 > MaxSweepCells
		},
	}
	for i, ss := range bad {
		if _, _, err := ss.expand(); err == nil {
			t.Errorf("sweep %d accepted", i)
		}
	}
}

func seqInts(start, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = start + i
	}
	return out
}

// TestSweepGoldenKey pins the sweep key of a representative grid. Like
// the job golden keys, this hash is API: it must only move together
// with a sweepKeyVersion (or keyVersion) bump. It also checks the
// content-address property: axis value order and duplicates do not
// change the key, while a different grid does.
func TestSweepGoldenKey(t *testing.T) {
	base := SweepSpec{
		Base: JobSpec{Protocol: "s:0.1", Trials: 2000},
		Axes: SweepAxes{Rounds: []int{8, 10}, FaultRate: []float64{0, 0.25}},
	}
	_, key, err := base.expand()
	if err != nil {
		t.Fatal(err)
	}
	const want = "bd2d2dca94bb2fc3289e4d8b76d773fa020f6fdb330e0ff8eda20cbb1de46376"
	if key != want {
		t.Errorf("sweep key drifted:\n got %s\nwant %s", key, want)
	}

	reordered := SweepSpec{
		Base: JobSpec{Engine: "MC", Protocol: " S:0.1 ", Trials: 2000},
		Axes: SweepAxes{Rounds: []int{10, 8, 10}, FaultRate: []float64{0.25, 0}},
	}
	if _, k, err := reordered.expand(); err != nil || k != key {
		t.Errorf("reordered axes changed the key: %s vs %s (%v)", k, key, err)
	}

	bigger := base
	bigger.Axes.Rounds = []int{8, 10, 12}
	if _, k, err := bigger.expand(); err != nil || k == key {
		t.Errorf("different grid shares the key (%v)", err)
	}
}

// TestSweepEndToEndAndResubmission is the tentpole acceptance test: a
// rounds×fault_rate sweep completes with per-cell Wilson intervals in
// the aggregate table, and re-submitting the identical sweep is served
// entirely from the result cache — zero new engine runs, zero new
// trials.
func TestSweepEndToEndAndResubmission(t *testing.T) {
	s := New(Config{Workers: 2})
	defer drain(t, s)

	spec := SweepSpec{
		Base: JobSpec{Protocol: "s:0.3", Trials: 2000, Seed: 9},
		Axes: SweepAxes{Rounds: []int{6, 8}, FaultRate: []float64{0, 0.5}},
	}
	st, err := s.SubmitSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cells != 4 {
		t.Fatalf("sweep expanded %d cells, want 4", st.Cells)
	}
	fin := waitSweep(t, s, st.ID, 30*time.Second)
	if fin.State != StateDone || fin.Done != 4 {
		t.Fatalf("sweep ended %s done=%d: %+v", fin.State, fin.Done, fin)
	}
	for i, row := range fin.Table {
		if row.State != StateDone {
			t.Fatalf("cell %d state %s: %s", i, row.State, row.Error)
		}
		if row.TA == nil || row.PA == nil || row.NA == nil {
			t.Fatalf("cell %d missing Wilson intervals: %+v", i, row)
		}
		if row.TA.Width() <= 0 || row.TA.Lo < 0 || row.TA.Hi > 1 {
			t.Errorf("cell %d TA interval %+v not a probability interval", i, row.TA)
		}
		if row.Completed != 2000 {
			t.Errorf("cell %d completed %d trials, want 2000", i, row.Completed)
		}
	}

	engineRuns := s.Metrics().EngineRuns.Load()
	trials := s.Metrics().TrialsExecuted.Load()
	if engineRuns != 4 {
		t.Errorf("first sweep ran the engine %d times, want 4", engineRuns)
	}

	// The identical sweep again: every cell is a cache hit.
	again, err := s.SubmitSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	if again.Key != fin.Key {
		t.Errorf("resubmitted sweep key %s differs from %s", again.Key, fin.Key)
	}
	fin2 := waitSweep(t, s, again.ID, 10*time.Second)
	if fin2.State != StateDone || fin2.Done != 4 {
		t.Fatalf("resubmitted sweep ended %s done=%d", fin2.State, fin2.Done)
	}
	for i, row := range fin2.Table {
		if !row.Cached {
			t.Errorf("resubmitted cell %d not served from cache: %+v", i, row)
		}
	}
	if n := s.Metrics().EngineRuns.Load(); n != engineRuns {
		t.Errorf("resubmission ran the engine (%d → %d runs)", engineRuns, n)
	}
	if n := s.Metrics().TrialsExecuted.Load(); n != trials {
		t.Errorf("resubmission executed new trials (%d → %d)", trials, n)
	}
}

func waitSweep(t *testing.T, s *Server, id string, timeout time.Duration) *SweepStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st, err := s.GetSweep(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep %s stuck in state %s (%d/%d done)", id, st.State, st.Done, st.Cells)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestHTTPSweepEndpoints drives the sweep over the wire: POST, poll,
// and watch until the aggregate table is terminal.
func TestHTTPSweepEndpoints(t *testing.T) {
	_, ts := testHTTPServer(t, Config{Workers: 2})

	body := `{"base": {"protocol": "s:0.3", "trials": 1000, "seed": 3},
	          "axes": {"rounds": [6, 8], "fault_rate": [0, 0.5]}}`
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st SweepStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || st.Cells != 4 {
		t.Fatalf("POST code %d cells %d, want 202 with 4 cells", resp.StatusCode, st.Cells)
	}

	// Watch until terminal; the last NDJSON line is the settled table.
	wresp, err := http.Get(ts.URL + "/v1/sweeps/" + st.ID + "/watch")
	if err != nil {
		t.Fatal(err)
	}
	defer wresp.Body.Close()
	if ct := wresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("watch content type %q", ct)
	}
	var last SweepStatus
	sc := bufio.NewScanner(wresp.Body)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lines := 0
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 || last.State != StateDone || last.Done != 4 {
		t.Fatalf("watch ended after %d lines in %s (%d done)", lines, last.State, last.Done)
	}

	// Poll and list agree with the watch's terminal view.
	var polled SweepStatus
	if getJSON(t, ts.URL+"/v1/sweeps/"+st.ID, &polled) != http.StatusOK || polled.State != StateDone {
		t.Errorf("GET sweep: %+v", polled)
	}
	var all []SweepStatus
	if getJSON(t, ts.URL+"/v1/sweeps", &all) != http.StatusOK || len(all) != 1 {
		t.Errorf("sweep list: %+v", all)
	}
	if getJSON(t, ts.URL+"/v1/sweeps/sw999999", nil) != http.StatusNotFound {
		t.Error("unknown sweep should 404")
	}

	// Invalid sweeps are 400s.
	for _, bad := range []string{
		`{"base": {"protocol": "zzz"}, "axes": {"rounds": [5]}}`,
		`{"axes": {"rounds": [5]}}`,
		`{"bse": {}}`,
		`not json`,
	} {
		resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad sweep %q: code %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestSweepRetentionEvictsSettled pins the sweep GC: with retention 1,
// an old settled sweep 404s once a newer one settles, while unsettled
// sweeps survive no matter how old they are.
func TestSweepRetentionEvictsSettled(t *testing.T) {
	s := New(Config{Workers: 2, SweepRetention: 1})
	defer drain(t, s)

	// An unsettled sweep: one slow cell that outlives the whole test.
	slow, err := s.SubmitSweep(SweepSpec{
		Base: JobSpec{Protocol: "s:0.05", Graph: "complete:8", Rounds: 40, Trials: 100_000, Seed: 50},
	})
	if err != nil {
		t.Fatal(err)
	}

	tiny := func(seed uint64) SweepSpec {
		return SweepSpec{Base: JobSpec{Protocol: "s:0.5", Rounds: 4, Trials: 200, Seed: seed}}
	}
	first, err := s.SubmitSweep(tiny(1))
	if err != nil {
		t.Fatal(err)
	}
	waitSweep(t, s, first.ID, 15*time.Second)
	second, err := s.SubmitSweep(tiny(2))
	if err != nil {
		t.Fatal(err)
	}
	waitSweep(t, s, second.ID, 15*time.Second)

	// The GC pass runs just after a sweep settles; poll for the eviction.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := s.GetSweep(first.ID); err == ErrNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("settled sweep past the retention limit never evicted")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := s.GetSweep(second.ID); err != nil {
		t.Errorf("newest settled sweep evicted: %v", err)
	}
	if st, err := s.GetSweep(slow.ID); err != nil || st.State.Terminal() {
		t.Errorf("unsettled sweep evicted or settled early (err %v)", err)
	}
	if n := s.Metrics().SweepsEvicted.Load(); n != 1 {
		t.Errorf("sweeps evicted = %d, want 1", n)
	}
	// The evicted sweep is absent from the listing too.
	for _, st := range s.Sweeps() {
		if st.ID == first.ID {
			t.Error("evicted sweep still listed")
		}
	}
}
