package service

import (
	"bytes"
	"context"
	"encoding/json"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// blockingEngine is a test double that parks every run until released,
// so a burst of identical submissions is guaranteed to overlap one
// in-flight leader. Runs counts actual executions independently of the
// server's own EngineRuns metric.
type blockingEngine struct {
	release chan struct{}
	runs    atomic.Int64
	body    json.RawMessage
	err     error
}

func (e *blockingEngine) run(ctx context.Context, spec JobSpec, p runParams) (json.RawMessage, error) {
	e.runs.Add(1)
	select {
	case <-e.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return e.body, e.err
}

// installEngine swaps the mc engine before any job is submitted; the
// queue channel orders the write before every worker read.
func installEngine(s *Server, e engine) { s.engines[EngineMC] = e }

// TestCoalescingConcurrentIdenticalSubmissions is the throughput
// acceptance check: 8 concurrent submissions of one canonical spec run
// the engine exactly once — one leader, seven coalesced followers, all
// settling with bit-identical bodies. Run under -race this also proves
// the registry handoff is properly synchronized.
func TestCoalescingConcurrentIdenticalSubmissions(t *testing.T) {
	s := New(Config{Workers: 2})
	defer drain(t, s)
	be := &blockingEngine{release: make(chan struct{}), body: json.RawMessage(`{"ok":true}`)}
	installEngine(s, be)

	spec := JobSpec{Protocol: "s:0.3", Trials: 2000, Seed: 9}
	const burst = 8
	ids := make([]string, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := s.Submit(spec)
			if err != nil {
				t.Errorf("submission %d: %v", i, err)
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	close(be.release)

	leaders, followers := 0, 0
	var body json.RawMessage
	for _, id := range ids {
		fin := waitState(t, s, id, 10*time.Second)
		if fin.State != StateDone {
			t.Fatalf("job %s ended %s: %s", id, fin.State, fin.Error)
		}
		if fin.Coalesced {
			followers++
		} else {
			leaders++
		}
		if body == nil {
			body = fin.Result
		} else if !bytes.Equal(body, fin.Result) {
			t.Errorf("job %s body diverged:\n%s\nvs\n%s", id, fin.Result, body)
		}
	}
	if leaders != 1 || followers != burst-1 {
		t.Errorf("leaders=%d followers=%d, want 1 and %d", leaders, followers, burst-1)
	}
	if n := be.runs.Load(); n != 1 {
		t.Errorf("engine ran %d times, want exactly 1", n)
	}
	m := s.Metrics()
	if n := m.EngineRuns.Load(); n != 1 {
		t.Errorf("EngineRuns = %d, want 1", n)
	}
	if n := m.JobsCoalesced.Load(); n != int64(burst-1) {
		t.Errorf("JobsCoalesced = %d, want %d", n, burst-1)
	}
	if n := m.JobsCompleted.Load(); n != burst {
		t.Errorf("JobsCompleted = %d, want %d (followers count as completions)", n, burst)
	}

	// Once the leader settled, the same spec is a plain cache hit: no
	// new engine run, no coalescing.
	again, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || again.Coalesced || again.State != StateDone {
		t.Errorf("post-settle resubmission: %+v, want served from cache", again)
	}
	if n := m.EngineRuns.Load(); n != 1 {
		t.Errorf("resubmission re-ran the engine (%d runs)", n)
	}
}

// TestCoalescedFollowerMirrorsFailure: a failing leader propagates its
// terminal state and error to every follower — nothing enters the
// cache, so a later submission runs the engine again.
func TestCoalescedFollowerMirrorsFailure(t *testing.T) {
	s := New(Config{Workers: 1})
	defer drain(t, s)
	be := &blockingEngine{release: make(chan struct{}), err: context.DeadlineExceeded}
	installEngine(s, be)

	spec := JobSpec{Protocol: "s:0.4", Trials: 1000, Seed: 2}
	leader, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the leader is running, so the next submission must
	// coalesce rather than race it to the queue.
	deadline := time.Now().Add(5 * time.Second)
	for be.runs.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leader never started")
		}
		time.Sleep(time.Millisecond)
	}
	follower, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !follower.Coalesced {
		t.Fatalf("second submission did not coalesce: %+v", follower)
	}
	close(be.release)

	lf := waitState(t, s, leader.ID, 10*time.Second)
	ff := waitState(t, s, follower.ID, 10*time.Second)
	if lf.State != StateFailed || ff.State != StateFailed {
		t.Fatalf("leader=%s follower=%s, want both failed", lf.State, ff.State)
	}
	if ff.Error != lf.Error {
		t.Errorf("follower error %q differs from leader's %q", ff.Error, lf.Error)
	}
	if _, ok := s.cache.Get(lf.Key); ok {
		t.Error("failed body entered the cache")
	}
}

// TestCancelFollowerLeavesLeader: cancelling a coalesced follower
// detaches only that follower; the leader still completes and so do
// its other followers.
func TestCancelFollowerLeavesLeader(t *testing.T) {
	s := New(Config{Workers: 1})
	defer drain(t, s)
	be := &blockingEngine{release: make(chan struct{}), body: json.RawMessage(`{"ok":true}`)}
	installEngine(s, be)

	spec := JobSpec{Protocol: "s:0.5", Trials: 1000, Seed: 6}
	leader, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for be.runs.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leader never started")
		}
		time.Sleep(time.Millisecond)
	}
	f1, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !f1.Coalesced || !f2.Coalesced {
		t.Fatalf("followers did not coalesce: %+v %+v", f1, f2)
	}
	if st, err := s.Cancel(f1.ID); err != nil || st.State != StateCancelled {
		t.Fatalf("cancel follower: %+v, %v", st, err)
	}
	close(be.release)

	if fin := waitState(t, s, leader.ID, 10*time.Second); fin.State != StateDone {
		t.Errorf("leader ended %s after follower cancel", fin.State)
	}
	if fin := waitState(t, s, f2.ID, 10*time.Second); fin.State != StateDone {
		t.Errorf("surviving follower ended %s", fin.State)
	}
	if fin, err := s.Get(f1.ID); err != nil || fin.State != StateCancelled {
		t.Errorf("cancelled follower state %+v, %v", fin, err)
	}
}

// TestTrialWorkerBudgetDefaults pins the per-job parallelism budget
// computation: GOMAXPROCS split across the pool, floored at 1, with an
// explicit setting passed through untouched.
func TestTrialWorkerBudgetDefaults(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	if got := (Config{Workers: 2}).withDefaults().TrialWorkers; got != max(1, procs/2) {
		t.Errorf("Workers=2: TrialWorkers=%d, want %d", got, max(1, procs/2))
	}
	if got := (Config{Workers: 4 * procs}).withDefaults().TrialWorkers; got != 1 {
		t.Errorf("oversubscribed pool: TrialWorkers=%d, want floor of 1", got)
	}
	if got := (Config{Workers: 2, TrialWorkers: 7}).withDefaults().TrialWorkers; got != 7 {
		t.Errorf("explicit budget rewritten to %d", got)
	}
}

// captureEngine records the runParams the scheduler hands it.
type captureEngine struct {
	workers chan int
}

func (e captureEngine) run(ctx context.Context, spec JobSpec, p runParams) (json.RawMessage, error) {
	e.workers <- p.workers
	return json.RawMessage(`{}`), nil
}

// TestTrialWorkerBudgetReachesEngine checks the scheduler→engine wiring
// of the budget (the mc-side contract that the budget bounds concurrent
// trials is mc's TestWorkerBudgetRespected).
func TestTrialWorkerBudgetReachesEngine(t *testing.T) {
	s := New(Config{Workers: 1, TrialWorkers: 3})
	defer drain(t, s)
	ce := captureEngine{workers: make(chan int, 1)}
	installEngine(s, ce)
	if _, err := s.Submit(JobSpec{Protocol: "s:0.3", Trials: 500}); err != nil {
		t.Fatal(err)
	}
	select {
	case w := <-ce.workers:
		if w != 3 {
			t.Errorf("engine received workers=%d, want 3", w)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("engine never ran")
	}
}
