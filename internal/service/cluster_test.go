package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"coordattack/internal/cluster"
	"coordattack/internal/mc"
)

// swapHandler lets a test stand up the HTTP listener first (the cluster
// needs every peer's address before any Server exists) and install the
// real handler afterwards.
type swapHandler struct {
	mu sync.Mutex
	h  http.Handler
}

func (s *swapHandler) set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := s.h
	s.mu.Unlock()
	if h == nil {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// clusterPair boots two coordd servers on loopback joined as a 2-node
// cluster and returns them with their advertised addresses.
func clusterPair(t *testing.T, cfgA, cfgB Config) (a, b *Server, addrA, addrB string) {
	t.Helper()
	shA, shB := &swapHandler{}, &swapHandler{}
	srvA := httptest.NewServer(shA)
	srvB := httptest.NewServer(shB)
	t.Cleanup(srvA.Close)
	t.Cleanup(srvB.Close)
	addrA, addrB = srvA.URL, srvB.URL

	mk := func(self string, cfg Config) *Server {
		cl, err := cluster.New(cluster.Options{
			Self:             self,
			Peers:            []string{addrA, addrB},
			Timeout:          500 * time.Millisecond,
			BreakerThreshold: 3,
			BreakerCooldown:  200 * time.Millisecond,
			Logf:             t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Cluster = cl
		if cfg.WatchdogInterval == 0 {
			cfg.WatchdogInterval = -1
		}
		s := New(cfg)
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = s.Drain(ctx)
		})
		return s
	}
	a = mk(addrA, cfgA)
	b = mk(addrB, cfgB)
	shA.set(a.Handler())
	shB.set(b.Handler())
	return a, b, addrA, addrB
}

// specOwnedBy searches seeds until the canonical key's ring owner is
// owner — so tests can aim a submission at a specific node's arc.
func specOwnedBy(t *testing.T, c *cluster.Cluster, owner string, trials int) JobSpec {
	t.Helper()
	for seed := uint64(1); seed < 4000; seed++ {
		spec := JobSpec{Protocol: "a", Graph: "pair", Trials: trials, Seed: seed}
		canon, err := spec.Canonicalize()
		if err != nil {
			t.Fatal(err)
		}
		if c.Owner(canon.Key()) == cluster.NormalizeAddr(owner) {
			return spec
		}
	}
	t.Fatal("no seed found mapping to the requested owner")
	return JobSpec{}
}

func waitDone(t *testing.T, s *Server, id string) *Status {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		st, err := s.Get(id)
		if err != nil {
			t.Fatalf("job %s: %v", id, err)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s never settled", id)
	return nil
}

// A key computed on one node must be served to the other as a cache
// hit: replication pushes the body to the ring owner, and the miss path
// consults the owner before running the engine — zero extra engine runs.
func TestClusterPeerResultHit(t *testing.T) {
	a, b, _, addrB := clusterPair(t,
		Config{Workers: 1, StealInterval: -1},
		Config{Workers: 1, StealInterval: -1},
	)
	// A key B owns, computed on A: the body lands on B by replication,
	// so B's submission finds it locally — and a third node would find
	// it via the owner. Either path costs zero engine runs.
	spec := specOwnedBy(t, a.cluster, addrB, 50)
	st, err := a.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st = waitDone(t, a, st.ID)
	if st.State != StateDone {
		t.Fatalf("compute on A: %s (%s)", st.State, st.Error)
	}
	// Replication to the owner is async; give it a beat.
	deadline := time.Now().Add(5 * time.Second)
	for b.Metrics().EngineRuns.Load() == 0 && time.Now().Before(deadline) {
		stB, err := b.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		stB = waitDone(t, b, stB.ID)
		if stB.State != StateDone {
			t.Fatalf("on B: %s (%s)", stB.State, stB.Error)
		}
		if stB.Cached {
			if string(stB.Result) != string(st.Result) {
				t.Fatalf("peer-served bytes differ:\nA: %s\nB: %s", st.Result, stB.Result)
			}
			if b.Metrics().EngineRuns.Load() != 0 {
				t.Fatalf("B ran the engine despite the replicated result")
			}
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("B never served the replicated result as a cache hit (engine runs on B: %d)",
		b.Metrics().EngineRuns.Load())
}

// A local miss for a key whose owner already holds the body must be
// answered by a peer fetch on the worker path, counted as a peer hit
// with no engine run.
func TestClusterWorkerPathPeerFetch(t *testing.T) {
	a, _, _, addrB := clusterPair(t,
		Config{Workers: 1, StealInterval: -1},
		Config{Workers: 1, StealInterval: -1},
	)
	// A spec owned by B, pre-loaded into B's tiers via the peer PUT
	// endpoint (bit-exact replication path), then submitted on A: A's
	// worker must fetch it from B instead of computing.
	spec := specOwnedBy(t, a.cluster, addrB, 60)
	canon, err := spec.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	key := canon.Key()
	body := []byte(`{"preloaded":true}`)
	req, _ := http.NewRequest(http.MethodPut, addrB+cluster.ResultsPathPrefix+key, strings.NewReader(string(body)))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("peer PUT answered %d", resp.StatusCode)
	}

	st, err := a.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st = waitDone(t, a, st.ID)
	if st.State != StateDone || string(st.Result) != string(body) {
		t.Fatalf("peer fetch: state=%s result=%s", st.State, st.Result)
	}
	if got := a.Metrics().EngineRuns.Load(); got != 0 {
		t.Fatalf("A ran %d engines, want 0 (peer fetch should answer)", got)
	}
	if got := a.Metrics().PeerHits.Load(); got != 1 {
		t.Fatalf("peer hits = %d, want 1", got)
	}
}

// Work stealing end to end: a saturated victim's pending jobs are
// adopted by an idle thief, every job settles done on the victim, and
// each distinct key runs an engine exactly once across the cluster.
func TestClusterStealExactlyOnce(t *testing.T) {
	gate := make(chan struct{})
	var gated sync.Once
	a, b, _, _ := clusterPair(t,
		Config{
			Workers:       1,
			StealInterval: -1, // A never steals; it is the victim
			WrapEngine: func(engine string, next RunFunc) RunFunc {
				return func(ctx context.Context, spec JobSpec, workers int, progress func(mc.Snapshot)) (json.RawMessage, error) {
					block := false
					gated.Do(func() { block = true })
					if block {
						select {
						case <-gate:
						case <-ctx.Done():
							return nil, ctx.Err()
						}
					}
					return next(ctx, spec, workers, progress)
				}
			},
		},
		Config{Workers: 2, StealInterval: 50 * time.Millisecond},
	)

	// Job 1 occupies A's only worker (gated); jobs 2..4 queue behind it.
	ids := make([]string, 0, 4)
	for i := 0; i < 4; i++ {
		st, err := a.Submit(JobSpec{Protocol: "a", Graph: "pair", Trials: 40, Seed: uint64(100 + i)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	// B's steal loop (50 ms) should lift the surplus: depth 3 minus
	// A's pool of 1 leaves 2 stealable jobs.
	deadline := time.Now().Add(10 * time.Second)
	for a.Metrics().JobsDonated.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if got := a.Metrics().JobsDonated.Load(); got != 2 {
		t.Fatalf("A donated %d jobs, want 2 (depth 3 − 1 worker)", got)
	}
	close(gate)

	for _, id := range ids {
		if st := waitDone(t, a, id); st.State != StateDone {
			t.Fatalf("job %s: %s (%s)", id, st.State, st.Error)
		}
	}
	runsA, runsB := a.Metrics().EngineRuns.Load(), b.Metrics().EngineRuns.Load()
	if runsA+runsB != 4 {
		t.Fatalf("engine runs A=%d B=%d, want exactly 4 total (one per key)", runsA, runsB)
	}
	if got := b.Metrics().JobsStolen.Load(); got != 2 {
		t.Fatalf("B adopted %d jobs, want 2", got)
	}
	if got := a.Metrics().PeerHits.Load(); got != 2 {
		t.Fatalf("A retrieved %d stolen results, want 2", got)
	}
}

// Satellite: peer-failure degradation. A dead owner costs latency only:
// submissions on its arcs fall through to local compute, the breaker
// opens after the configured failures (stopping further dials), healthz
// reports it, and a recovered peer closes it again.
func TestClusterDeadPeerDegradesAndRecovers(t *testing.T) {
	// Reserve an address, then kill it: the peer is down from the start.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := "http://" + l.Addr().String()
	l.Close()

	shA := &swapHandler{}
	srvA := httptest.NewServer(shA)
	defer srvA.Close()
	cl, err := cluster.New(cluster.Options{
		Self:             srvA.URL,
		Peers:            []string{srvA.URL, deadAddr},
		Timeout:          200 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  100 * time.Millisecond,
		Logf:             t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := New(Config{Workers: 1, Cluster: cl, StealInterval: -1, WatchdogInterval: -1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = a.Drain(ctx)
	}()
	shA.set(a.Handler())

	// Three distinct keys on the dead peer's arcs: each submission must
	// still settle done (local compute), and the third failed dial opens
	// the breaker.
	found := 0
	for seed := uint64(1); seed < 4000 && found < 3; seed++ {
		spec := JobSpec{Protocol: "a", Graph: "pair", Trials: 30, Seed: seed}
		canon, err := spec.Canonicalize()
		if err != nil {
			t.Fatal(err)
		}
		if cl.Owner(canon.Key()) != cluster.NormalizeAddr(deadAddr) {
			continue
		}
		found++
		st, err := a.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		if st = waitDone(t, a, st.ID); st.State != StateDone {
			t.Fatalf("dead-peer fallback: %s (%s)", st.State, st.Error)
		}
	}
	if found < 3 {
		t.Fatalf("only %d specs found on the dead peer's arcs", found)
	}
	if !cl.PeerDown(deadAddr) {
		t.Fatal("breaker should be open after 3 failed owner dials")
	}

	// healthz reflects it: cluster degraded, the peer marked open.
	hz := httpGetJSON(t, srvA.URL+"/healthz")
	if hz["cluster"] != "degraded" {
		t.Fatalf("healthz cluster = %v, want degraded", hz["cluster"])
	}
	peers, _ := hz["peers"].(map[string]any)
	if peers[cluster.NormalizeAddr(deadAddr)] != "open" {
		t.Fatalf("healthz peers = %v, want %s open", peers, deadAddr)
	}

	// Recovery: something starts answering at the dead address. After
	// the cooldown, the next probe succeeds (a clean 404 miss counts)
	// and the breaker closes.
	l2, err := net.Listen("tcp", strings.TrimPrefix(deadAddr, "http://"))
	if err != nil {
		t.Skipf("could not rebind %s: %v", deadAddr, err)
	}
	revived := &http.Server{Handler: http.NotFoundHandler()}
	go revived.Serve(l2)
	defer revived.Close()

	deadline := time.Now().Add(5 * time.Second)
	for cl.PeerDown(deadAddr) && time.Now().Before(deadline) {
		time.Sleep(120 * time.Millisecond) // past the 100 ms cooldown
		_, _, _ = cl.FetchFrom(context.Background(), deadAddr, fmt.Sprintf("%064d", 0))
	}
	if cl.PeerDown(deadAddr) {
		t.Fatal("breaker never closed after the peer recovered")
	}
	hz = httpGetJSON(t, srvA.URL+"/healthz")
	if hz["cluster"] != "ok" {
		t.Fatalf("healthz cluster = %v after recovery, want ok", hz["cluster"])
	}
}

// The admin endpoint exposes the ring and breaker state; standalone
// daemons answer 404.
func TestClusterAdminEndpoint(t *testing.T) {
	a, _, addrA, addrB := clusterPair(t,
		Config{Workers: 1, StealInterval: -1},
		Config{Workers: 1, StealInterval: -1},
	)
	snapBody := httpGetJSON(t, addrA+"/v1/admin/cluster")
	if snapBody["self"] != cluster.NormalizeAddr(addrA) {
		t.Fatalf("admin cluster self = %v", snapBody["self"])
	}
	peersAny, _ := snapBody["peers"].([]any)
	if len(peersAny) != 1 {
		t.Fatalf("admin cluster peers = %v, want the one peer %s", snapBody["peers"], addrB)
	}
	_ = a

	standalone := New(Config{Workers: 1, WatchdogInterval: -1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = standalone.Drain(ctx)
	}()
	srv := httptest.NewServer(standalone.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/admin/cluster")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("standalone admin cluster answered %d, want 404", resp.StatusCode)
	}
}

// Peer endpoints validate keys and reject junk bodies.
func TestPeerEndpointValidation(t *testing.T) {
	s := New(Config{Workers: 1, WatchdogInterval: -1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	}()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + cluster.ResultsPathPrefix + "not-a-key")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad key answered %d, want 400", resp.StatusCode)
	}
	key := fmt.Sprintf("%064x", 1)
	resp, err = http.Get(srv.URL + cluster.ResultsPathPrefix + key)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown key answered %d, want 404", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodPut, srv.URL+cluster.ResultsPathPrefix+key, strings.NewReader("not json"))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("junk PUT answered %d, want 400", resp.StatusCode)
	}
}

func httpGetJSON(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
	return out
}
