package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"coordattack/internal/queue"
	"coordattack/internal/stats"
)

// sweepKeyVersion prefixes every sweep key, versioned independently of
// the job keyVersion (which is hashed into every cell key anyway).
const sweepKeyVersion = "coordd-sweep/v1"

// MaxSweepCells bounds the grid size of one sweep request, counted
// before deduplication so a hostile product of axes fails fast.
const MaxSweepCells = 256

// SweepSpec is the wire form of a parameter sweep: one base mc job spec
// plus value axes. The grid is the cartesian product of the axes, each
// cell a copy of the base with the axis values applied, canonicalized
// through the ordinary JobSpec path — so cells share the spec→key→cache
// machinery with individually submitted jobs, and a sweep re-run after
// its cells completed costs zero new trials.
type SweepSpec struct {
	Base JobSpec   `json:"base"`
	Axes SweepAxes `json:"axes"`
}

// SweepAxes are the supported sweep dimensions. Empty axes are skipped;
// all-empty axes make a one-cell sweep of the base spec.
type SweepAxes struct {
	// Graphs substitutes the base graph spec.
	Graphs []string `json:"graphs,omitempty"`
	// Rounds substitutes the round count.
	Rounds []int `json:"rounds,omitempty"`
	// Epsilon substitutes the per-round abort probability of the
	// randomized protocol, rewriting the protocol spec to "s:EPS"; it
	// requires the base protocol to be empty or an "s:..." spec.
	Epsilon []float64 `json:"epsilon,omitempty"`
	// FaultRate substitutes the fault spec with "rand:P"; 0 means no
	// fault injection for that cell.
	FaultRate []float64 `json:"fault_rate,omitempty"`
	// Trials substitutes the trial budget.
	Trials []int `json:"trials,omitempty"`
	// Seeds substitutes the root seed.
	Seeds []uint64 `json:"seeds,omitempty"`
}

// sweepCell is one grid point: the canonical job spec it expands to,
// its content key, and the axis coordinates for presentation. The jobID
// is filled by the dispatcher when the cell is submitted.
type sweepCell struct {
	params map[string]string
	spec   JobSpec
	key    string

	mu     sync.Mutex
	jobID  string
	errMsg string // submit-time failure (drain/abort), when jobID is empty
}

// axisValue is one (name, rendered value, apply) triple during
// expansion.
type axisValue struct {
	name  string
	value string
	apply func(*JobSpec)
}

// axes flattens the non-empty axes into expansion order. The order is
// fixed — it determines grid enumeration order, though not the sweep
// key, which is order-independent.
func (a SweepAxes) axes() []([]axisValue) {
	var out [][]axisValue
	add := func(vals []axisValue) {
		if len(vals) > 0 {
			out = append(out, vals)
		}
	}
	var g []axisValue
	for _, v := range a.Graphs {
		v := v
		g = append(g, axisValue{"graph", normSpec(v), func(s *JobSpec) { s.Graph = v }})
	}
	add(g)
	var r []axisValue
	for _, v := range a.Rounds {
		v := v
		r = append(r, axisValue{"rounds", fmt.Sprintf("%d", v), func(s *JobSpec) { s.Rounds = v }})
	}
	add(r)
	var e []axisValue
	for _, v := range a.Epsilon {
		v := v
		e = append(e, axisValue{"epsilon", fmt.Sprintf("%g", v), func(s *JobSpec) { s.Protocol = fmt.Sprintf("s:%g", v) }})
	}
	add(e)
	var f []axisValue
	for _, v := range a.FaultRate {
		v := v
		f = append(f, axisValue{"fault_rate", fmt.Sprintf("%g", v), func(s *JobSpec) {
			if v == 0 {
				s.Fault = ""
			} else {
				s.Fault = fmt.Sprintf("rand:%g", v)
			}
		}})
	}
	add(f)
	var t []axisValue
	for _, v := range a.Trials {
		v := v
		t = append(t, axisValue{"trials", fmt.Sprintf("%d", v), func(s *JobSpec) { s.Trials = v }})
	}
	add(t)
	var sd []axisValue
	for _, v := range a.Seeds {
		v := v
		sd = append(sd, axisValue{"seed", fmt.Sprintf("%d", v), func(s *JobSpec) { s.Seed = v }})
	}
	add(sd)
	return out
}

// expand validates the sweep and returns its deduplicated cell grid in
// enumeration order plus the sweep key. Every cell is canonicalized
// through JobSpec.Canonicalize, so an invalid grid point rejects the
// whole sweep at submit time. Cells whose canonical keys collide (two
// spellings of one computation, or a duplicated axis value) are merged,
// keeping the first occurrence.
func (ss SweepSpec) expand() ([]*sweepCell, string, error) {
	if e := normSpec(ss.Base.Engine); e != "" && e != EngineMC {
		return nil, "", fmt.Errorf("service: sweeps support only the mc engine, got %q", ss.Base.Engine)
	}
	if len(ss.Axes.Epsilon) > 0 {
		if p := normSpec(ss.Base.Protocol); p != "" && !strings.HasPrefix(p, "s") {
			return nil, "", fmt.Errorf("service: epsilon axis needs an s:EPS base protocol, got %q", ss.Base.Protocol)
		}
	} else if normSpec(ss.Base.Protocol) == "" {
		return nil, "", fmt.Errorf("service: sweep base needs a protocol (or an epsilon axis)")
	}

	axes := ss.Axes.axes()
	cells := 1
	for _, ax := range axes {
		cells *= len(ax)
		if cells > MaxSweepCells {
			return nil, "", fmt.Errorf("service: sweep grid exceeds %d cells", MaxSweepCells)
		}
	}

	var out []*sweepCell
	seen := make(map[string]bool)
	// pick[i] indexes the chosen value of axes[i]; odometer enumeration.
	pick := make([]int, len(axes))
	for {
		spec := ss.Base
		params := make(map[string]string, len(axes))
		for i, ax := range axes {
			av := ax[pick[i]]
			av.apply(&spec)
			params[av.name] = av.value
		}
		canon, err := spec.Canonicalize()
		if err != nil {
			return nil, "", fmt.Errorf("service: sweep cell %v: %w", params, err)
		}
		if key := canon.Key(); !seen[key] {
			seen[key] = true
			out = append(out, &sweepCell{params: params, spec: canon, key: key})
		}
		// Advance the odometer, most-significant axis first.
		i := len(axes) - 1
		for ; i >= 0; i-- {
			pick[i]++
			if pick[i] < len(axes[i]) {
				break
			}
			pick[i] = 0
		}
		if i < 0 {
			break
		}
	}

	// The sweep key is content-addressed over the *set* of cell keys:
	// axis reorderings and duplicate values that expand to the same grid
	// share a key.
	keys := make([]string, 0, len(out))
	for _, c := range out {
		keys = append(keys, c.key)
	}
	sort.Strings(keys)
	sum := sha256.Sum256([]byte(sweepKeyVersion + "\n" + strings.Join(keys, "\n")))
	return out, hex.EncodeToString(sum[:]), nil
}

// Sweep is one submitted sweep: its cells, dispatched as ordinary jobs,
// and a done channel closed when every cell has settled.
type Sweep struct {
	id    string
	key   string
	cells []*sweepCell
	done  chan struct{}
	// cancelled stops the dispatcher from submitting further cells;
	// set by CancelSweep.
	cancelled atomic.Bool
}

// SweepRow is one cell of the tradeoff table served by the sweep
// endpoints. For a done cell the Wilson 95% intervals of the outcome
// estimates are rolled up from the job body, TA being the liveness (L)
// and PA the unsafety (U) of the paper's tradeoff; LOverU is their
// point-estimate ratio when PA is nonzero — the quantity the paper
// bounds by the round count.
type SweepRow struct {
	Params    map[string]string `json:"params"`
	JobID     string            `json:"job_id,omitempty"`
	Key       string            `json:"key"`
	State     State             `json:"state"`
	Cached    bool              `json:"cached,omitempty"`
	Coalesced bool              `json:"coalesced,omitempty"`
	Completed int               `json:"completed,omitempty"`
	Stopped   bool              `json:"stopped,omitempty"`
	TA        *stats.Interval   `json:"ta_wilson95,omitempty"`
	PA        *stats.Interval   `json:"pa_wilson95,omitempty"`
	NA        *stats.Interval   `json:"na_wilson95,omitempty"`
	LOverU    float64           `json:"l_over_u,omitempty"`
	Error     string            `json:"error,omitempty"`
}

// SweepStatus is the aggregate wire form of a sweep.
type SweepStatus struct {
	ID    string `json:"id"`
	Key   string `json:"key"`
	State State  `json:"state"`
	Cells int    `json:"cells"`
	// Done/Failed/Cancelled count settled cells; Done counts successes
	// only.
	Done      int        `json:"done"`
	Failed    int        `json:"failed,omitempty"`
	Cancelled int        `json:"cancelled,omitempty"`
	Table     []SweepRow `json:"table"`
}

// SubmitSweep expands spec into its cell grid and schedules every cell
// as an ordinary job through Submit — so cells are answered from the
// result cache, coalesced onto in-flight twins, or enqueued, exactly
// like individual submissions. The returned status is the submission-
// time view; poll or watch the sweep for the rolled-up table.
func (s *Server) SubmitSweep(spec SweepSpec) (*SweepStatus, error) {
	cells, key, err := spec.expand()
	if err != nil {
		return nil, err
	}
	s.metrics.SweepsSubmitted.Add(1)
	s.metrics.SweepCells.Add(int64(len(cells)))

	sw := &Sweep{key: key, cells: cells, done: make(chan struct{})}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	if s.sched.Depth() >= s.cfg.QueueDepth {
		// Overload shedding: a sweep accepted while the queue is slammed
		// would park a dispatcher goroutine spinning on ErrQueueFull.
		// Rejecting up front (429 + Retry-After) keeps degraded operation
		// cheap and honest — the client retries when there is room.
		s.mu.Unlock()
		s.metrics.SweepsRejected.Add(1)
		return nil, ErrQueueFull
	}
	s.nextID++
	sw.id = fmt.Sprintf("sw%06d", s.nextID)
	s.sweeps[sw.id] = sw
	// Registering the dispatcher under the lock orders this Add before
	// Drain's Wait: a sweep accepted before draining is always waited
	// for.
	s.wg.Add(1)
	s.mu.Unlock()
	go s.dispatchSweep(sw)
	return s.sweepStatus(sw), nil
}

// dispatchSweep submits every cell, riding out queue-full backpressure
// with a small backoff and aborting the remainder when the server
// drains, then waits for all submitted cells to settle before marking
// the sweep done.
func (s *Server) dispatchSweep(sw *Sweep) {
	defer s.wg.Done()
	// LIFO: the sweep settles (done closes), then the GC pass runs, so a
	// just-settled sweep immediately counts toward the retention limit.
	defer s.gcSweeps()
	defer close(sw.done)
	var jobs []*Job
	for _, c := range sw.cells {
		for {
			if sw.cancelled.Load() {
				// Sweep-level cancel: stop dispatching. Every cell never
				// submitted settles as cancelled right here; cells already
				// in flight were cancelled by CancelSweep's fan-out and
				// settle through their jobs.
				for _, rest := range sw.cells {
					rest.mu.Lock()
					if rest.jobID == "" && rest.errMsg == "" {
						rest.errMsg = "sweep cancelled"
					}
					rest.mu.Unlock()
				}
				goto wait
			}
			// Cells enter the scheduler on the sweep's own flow: the fair
			// pass round-robins this sweep against the interactive flow
			// (and other sweeps), so a saturating grid no longer starves
			// singleton submissions.
			st, err := s.submit(c.spec, queue.ClassSweep, sw.id)
			if err == nil {
				c.mu.Lock()
				c.jobID = st.ID
				c.mu.Unlock()
				if j, jerr := s.job(st.ID); jerr == nil {
					jobs = append(jobs, j)
				}
				break
			}
			if err == ErrQueueFull {
				time.Sleep(5 * time.Millisecond)
				continue
			}
			// Draining (or a spec regression): record and stop
			// dispatching — the cells already in flight still settle.
			c.mu.Lock()
			c.errMsg = err.Error()
			c.mu.Unlock()
			if err == ErrDraining {
				for _, rest := range sw.cells {
					rest.mu.Lock()
					if rest.jobID == "" && rest.errMsg == "" {
						rest.errMsg = ErrDraining.Error()
					}
					rest.mu.Unlock()
				}
				goto wait
			}
			break
		}
	}
wait:
	for _, j := range jobs {
		<-j.done
	}
}

// sweepStatus renders the aggregate view: per-cell job status with the
// Wilson intervals unpacked from done bodies, and the rolled-up state —
// running until every cell settles, then done / failed / cancelled by
// worst cell outcome.
func (s *Server) sweepStatus(sw *Sweep) *SweepStatus {
	st := &SweepStatus{
		ID:    sw.id,
		Key:   sw.key,
		Cells: len(sw.cells),
		Table: make([]SweepRow, 0, len(sw.cells)),
	}
	settled := 0
	for _, c := range sw.cells {
		row := SweepRow{Params: c.params, Key: c.key, State: StateQueued}
		c.mu.Lock()
		jobID, errMsg := c.jobID, c.errMsg
		c.mu.Unlock()
		if jobID != "" {
			if js, err := s.Get(jobID); err == nil {
				row.JobID = js.ID
				row.State = js.State
				row.Cached = js.Cached
				row.Coalesced = js.Coalesced
				row.Completed = js.Progress.Completed
				row.Error = js.Error
				if js.State == StateDone {
					fillRowFromBody(&row, js.Result)
				}
			}
		} else if errMsg != "" {
			row.State = StateCancelled
			row.Error = errMsg
		}
		if row.State.Terminal() {
			settled++
			switch row.State {
			case StateDone:
				st.Done++
			case StateFailed:
				st.Failed++
			default:
				st.Cancelled++
			}
		}
		st.Table = append(st.Table, row)
	}
	switch {
	case settled < len(sw.cells):
		st.State = StateRunning
	case st.Failed > 0:
		st.State = StateFailed
	case st.Cancelled > 0:
		st.State = StateCancelled
	default:
		st.State = StateDone
	}
	return st
}

// fillRowFromBody unpacks a done mc body's intervals into the row. A
// body that does not parse as an mc result (foreign engine, corrupt
// cache) just leaves the intervals absent.
func fillRowFromBody(row *SweepRow, body json.RawMessage) {
	var b mcBody
	if err := json.Unmarshal(body, &b); err != nil || b.Result == nil {
		return
	}
	ta, pa, na := b.TAWilson95, b.PAWilson95, b.NAWilson95
	row.TA, row.PA, row.NA = &ta, &pa, &na
	row.Stopped = b.Result.Stopped
	if b.Result.Completed > 0 && b.Result.PA.Hits > 0 {
		row.LOverU = b.Result.TA.Mean() / b.Result.PA.Mean()
	}
}

// gcSweeps evicts the oldest settled sweeps past the retention limit,
// so Server.sweeps stays bounded in a long-lived daemon. Unsettled
// sweeps never count against the limit and are never evicted — only
// knowledge that has fully settled (and whose cells are memoized in the
// result cache anyway) is forgotten. Evicted sweep ids answer 404.
func (s *Server) gcSweeps() {
	s.mu.Lock()
	defer s.mu.Unlock()
	settled := make([]*Sweep, 0, len(s.sweeps))
	for _, sw := range s.sweeps {
		select {
		case <-sw.done:
			settled = append(settled, sw)
		default:
		}
	}
	if len(settled) <= s.cfg.SweepRetention {
		return
	}
	sort.Slice(settled, func(a, b int) bool { return settled[a].id < settled[b].id })
	for _, sw := range settled[:len(settled)-s.cfg.SweepRetention] {
		delete(s.sweeps, sw.id)
		s.metrics.SweepsEvicted.Add(1)
	}
}

// sweep looks a sweep up by id.
func (s *Server) sweep(id string) (*Sweep, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw, ok := s.sweeps[id]
	if !ok {
		return nil, ErrNotFound
	}
	return sw, nil
}

// CancelSweep cancels a whole sweep: the dispatcher stops submitting
// further cells, and the cancellation fans out to every cell already
// dispatched through the ordinary job Cancel path — queued cells settle
// immediately, running cells when their engine notices, settled cells
// are untouched (per-job Cancel is idempotent), so cancelling a settled
// sweep is a no-op that just returns its status. Unknown ids are
// ErrNotFound.
func (s *Server) CancelSweep(id string) (*SweepStatus, error) {
	sw, err := s.sweep(id)
	if err != nil {
		return nil, err
	}
	sw.cancelled.Store(true)
	for _, c := range sw.cells {
		c.mu.Lock()
		jobID := c.jobID
		c.mu.Unlock()
		if jobID != "" {
			// The job may have been evicted by the jobs GC; a missing id
			// just means that cell settled long ago.
			_, _ = s.Cancel(jobID)
		}
	}
	return s.sweepStatus(sw), nil
}

// GetSweep returns a sweep's current aggregate status.
func (s *Server) GetSweep(id string) (*SweepStatus, error) {
	sw, err := s.sweep(id)
	if err != nil {
		return nil, err
	}
	return s.sweepStatus(sw), nil
}

// Sweeps lists every known sweep, oldest first.
func (s *Server) Sweeps() []*SweepStatus {
	s.mu.Lock()
	all := make([]*Sweep, 0, len(s.sweeps))
	for _, sw := range s.sweeps {
		all = append(all, sw)
	}
	s.mu.Unlock()
	sort.Slice(all, func(a, b int) bool { return all[a].id < all[b].id })
	out := make([]*SweepStatus, len(all))
	for i, sw := range all {
		out[i] = s.sweepStatus(sw)
	}
	return out
}
