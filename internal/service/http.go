package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"coordattack/internal/cluster"
	"coordattack/internal/experiments"
	"coordattack/internal/queue"
	"coordattack/internal/store"
)

// Handler returns the daemon's HTTP API:
//
//	POST   /v1/jobs            submit a JobSpec (200 done-from-cache, 202 queued)
//	GET    /v1/jobs            list all jobs
//	GET    /v1/jobs/{id}       poll one job's status/progress/result
//	GET    /v1/jobs/{id}/watch stream NDJSON status lines until terminal
//	DELETE /v1/jobs/{id}       cancel a job (partial result preserved)
//	POST   /v1/sweeps          submit a SweepSpec: base job + axes (202 accepted)
//	GET    /v1/sweeps          list all sweeps
//	GET    /v1/sweeps/{id}     poll a sweep's aggregate tradeoff table
//	GET    /v1/sweeps/{id}/watch stream NDJSON aggregate status until terminal
//	DELETE /v1/sweeps/{id}     cancel a sweep (fans out to unsettled cells)
//	GET    /v1/experiments     list the registered experiment engine ids
//	GET    /v1/peer/results/{key} serve a stored result to a cluster peer
//	PUT    /v1/peer/results/{key} accept a replicated result from a peer
//	POST   /v1/peer/steal      donate pending jobs to an idle peer
//	POST   /v1/peer/steal/commit thief confirms stolen jobs are in its WAL
//	GET    /v1/peer/jobs/{key} whether this node has any record of a key
//	GET    /v1/peer/ping       failure-detector heartbeat (always 200)
//	GET    /v1/admin/store     durable-store state + quarantine listing
//	POST   /v1/admin/store/rescan re-verify entries, re-admit repaired ones
//	GET    /v1/admin/cluster   ring membership, breaker states, peer counters
//	GET    /healthz            liveness + queue gauges
//	GET    /metrics            Prometheus text exposition
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/watch", s.handleWatch)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("POST /v1/sweeps", s.handleSubmitSweep)
	mux.HandleFunc("GET /v1/sweeps", s.handleListSweeps)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleGetSweep)
	mux.HandleFunc("GET /v1/sweeps/{id}/watch", s.handleWatchSweep)
	mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleCancelSweep)
	mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	mux.HandleFunc("GET /v1/peer/results/{key}", s.handlePeerGetResult)
	mux.HandleFunc("PUT /v1/peer/results/{key}", s.handlePeerPutResult)
	mux.HandleFunc("POST /v1/peer/steal", s.handlePeerSteal)
	mux.HandleFunc("POST /v1/peer/steal/commit", s.handlePeerStealCommit)
	mux.HandleFunc("GET /v1/peer/jobs/{key}", s.handlePeerKnowsJob)
	mux.HandleFunc("GET /v1/peer/ping", s.handlePeerPing)
	mux.HandleFunc("GET /v1/admin/store", s.handleAdminStore)
	mux.HandleFunc("POST /v1/admin/store/rescan", s.handleAdminStoreRescan)
	mux.HandleFunc("GET /v1/admin/cluster", s.handleAdminCluster)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

type apiError struct {
	Error string `json:"error"`
}

// overloadError is the structured body of a 429: it tells the client
// not just that it was shed but when to come back and how deep the
// backlog is, mirroring the Retry-After header.
type overloadError struct {
	Error         string `json:"error"`
	RetryAfterSec int    `json:"retry_after_sec"`
	QueueDepth    int    `json:"queue_depth"`
	QueueCapacity int    `json:"queue_capacity"`
}

// writeOverload answers a queue-full rejection with a Retry-After
// header derived from the rejected class's queue depth and observed
// mean job duration, plus the structured JSON body.
func (s *Server) writeOverload(w http.ResponseWriter, err error, class queue.Class) {
	secs, depth, capacity := s.retryAfter(class)
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSON(w, http.StatusTooManyRequests, overloadError{
		Error:         err.Error(),
		RetryAfterSec: secs,
		QueueDepth:    depth,
		QueueCapacity: capacity,
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	// Unknown fields are rejected rather than ignored: a typoed field
	// name would otherwise silently canonicalize to a different job.
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("decoding job spec: %v", err)})
		return
	}
	st, err := s.Submit(spec)
	switch {
	case err == nil:
		code := http.StatusAccepted
		if st.State == StateDone {
			code = http.StatusOK
		}
		writeJSON(w, code, st)
	case errors.Is(err, ErrQueueFull):
		s.writeOverload(w, err, queue.ClassInteractive)
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error()})
	default:
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	st, err := s.Get(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleWatch streams the job's status as NDJSON — one compact JSON
// object per line, roughly 10 Hz while the job runs, ending with the
// terminal status line. Clients get live trial-count and CI-width
// progress without polling. A client that cannot keep up at 10 Hz gets
// coalesced snapshots: intermediate states are skipped so every line it
// does receive is the latest state at write time (see streamNDJSON).
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	j, err := s.job(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: err.Error()})
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusNotImplemented, apiError{Error: "streaming unsupported"})
		return
	}
	streamNDJSON(w, flusher, r.Context().Done(), j.done, &s.metrics.WatchCoalesced, func() (any, bool) {
		st := j.status()
		return st, st.State.Terminal()
	})
}

func (s *Server) handleSubmitSweep(w http.ResponseWriter, r *http.Request) {
	var spec SweepSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("decoding sweep spec: %v", err)})
		return
	}
	st, err := s.SubmitSweep(spec)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, st)
	case errors.Is(err, ErrQueueFull):
		s.writeOverload(w, err, queue.ClassSweep)
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error()})
	default:
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
	}
}

func (s *Server) handleListSweeps(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Sweeps())
}

func (s *Server) handleGetSweep(w http.ResponseWriter, r *http.Request) {
	st, err := s.GetSweep(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleWatchSweep streams the sweep's aggregate status as NDJSON,
// mirroring the per-job watch — one compact line per tick, ending with
// the terminal aggregate (every cell settled) — with the same slow-
// client coalescing: aggregate tables are the biggest lines the daemon
// writes, so skipping stale ones matters most here.
func (s *Server) handleWatchSweep(w http.ResponseWriter, r *http.Request) {
	sw, err := s.sweep(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: err.Error()})
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusNotImplemented, apiError{Error: "streaming unsupported"})
		return
	}
	streamNDJSON(w, flusher, r.Context().Done(), sw.done, &s.metrics.WatchCoalesced, func() (any, bool) {
		st := s.sweepStatus(sw)
		return st, st.State.Terminal()
	})
}

// handleCancelSweep cancels a sweep. Idempotent: cancelling a settled
// sweep changes nothing and returns its (terminal) status.
func (s *Server) handleCancelSweep(w http.ResponseWriter, r *http.Request) {
	st, err := s.CancelSweep(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// adminStore is the body of GET /v1/admin/store: the operator's view of
// the durable tiers — the result store (degraded or not, how big, what
// is sitting in quarantine awaiting repair or post-mortem) and, when
// configured, the pending-queue journal's health.
type adminStore struct {
	Degraded   bool                    `json:"degraded"`
	Entries    int                     `json:"entries"`
	Bytes      int64                   `json:"bytes"`
	Recoveries int64                   `json:"recoveries"`
	Quarantine []store.QuarantineEntry `json:"quarantine"`
	// Journal is the pending-queue journal snapshot, absent when no
	// journal is configured.
	Journal *queue.JournalStats `json:"journal,omitempty"`
}

func (s *Server) handleAdminStore(w http.ResponseWriter, r *http.Request) {
	if s.store == nil && s.journal == nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: "store disabled"})
		return
	}
	body := adminStore{Quarantine: []store.QuarantineEntry{}}
	if s.store != nil {
		st := s.store.Stats()
		body.Degraded = st.Degraded
		body.Entries = st.Entries
		body.Bytes = st.Bytes
		body.Recoveries = st.Recoveries
		if q := s.store.Quarantine(); q != nil {
			body.Quarantine = q
		}
	}
	if s.journal != nil {
		js := s.journal.Stats()
		body.Journal = &js
	}
	writeJSON(w, http.StatusOK, body)
}

// handleAdminStoreRescan runs the store maintenance pass: probe the
// write path (possibly un-degrading), re-verify every entry, re-admit
// quarantine files that verify again. Safe to call on a healthy store.
func (s *Server) handleAdminStoreRescan(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: "store disabled"})
		return
	}
	writeJSON(w, http.StatusOK, s.store.Rescan())
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Experiments []string `json:"experiments"`
	}{Experiments: experiments.IDs()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	g := s.gauges()
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	storeState := "off"
	if g.StoreEnabled {
		storeState = "ok"
		if g.Store.Degraded {
			storeState = "degraded"
		}
	}
	journalState := "off"
	if g.JournalEnabled {
		journalState = "ok"
		if g.Journal.Degraded {
			journalState = "degraded"
		}
	}
	// clusterState is "degraded" while any peer's breaker is open — the
	// node still serves everything, at local-compute cost for that
	// peer's arcs.
	clusterState := "off"
	var peers map[string]string
	var peerHealth map[string]string
	if g.ClusterEnabled {
		clusterState = "ok"
		peers = make(map[string]string, len(g.Cluster.Peers))
		for _, p := range g.Cluster.Peers {
			peers[p.Addr] = string(p.Breaker)
			if p.Breaker == cluster.StateOpen {
				clusterState = "degraded"
			}
			if p.Health != "" {
				if peerHealth == nil {
					peerHealth = make(map[string]string, len(g.Cluster.Peers))
				}
				peerHealth[p.Addr] = p.Health
				if p.Health == cluster.HealthDead {
					clusterState = "degraded"
				}
			}
		}
	}
	hintsState := "off"
	if g.HintsEnabled {
		hintsState = "ok"
		if g.Hints.Degraded {
			hintsState = "degraded"
		}
	}
	writeJSON(w, http.StatusOK, struct {
		Status      string         `json:"status"`
		JobsQueued  int            `json:"jobs_queued"`
		Queue       map[string]int `json:"queue"`
		JobsRunning int            `json:"jobs_running"`
		Draining    bool           `json:"draining"`
		Store       string         `json:"store"`
		Journal     string         `json:"journal"`
		Cluster     string         `json:"cluster"`
		// Peers maps each peer to its breaker state ("closed"/"open"/
		// "half-open"); PeerHealth maps those the failure detector has
		// probed to alive/suspect/dead.
		Peers      map[string]string `json:"peers,omitempty"`
		PeerHealth map[string]string `json:"peer_health,omitempty"`
		// Hints is the hinted-handoff log state ("off"/"ok"/"degraded");
		// HintsPending is its queued-hint count.
		Hints        string `json:"hints"`
		HintsPending int    `json:"hints_pending,omitempty"`
	}{
		Status:     "ok",
		JobsQueued: g.JobsQueued,
		Queue: map[string]int{
			"interactive": g.QueueInteractive,
			"sweep":       g.QueueSweep,
		},
		JobsRunning:  g.JobsRunning,
		Draining:     draining,
		Store:        storeState,
		Journal:      journalState,
		Cluster:      clusterState,
		Peers:        peers,
		PeerHealth:   peerHealth,
		Hints:        hintsState,
		HintsPending: g.Hints.Pending,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WritePrometheus(w, s.gauges())
}
