package service

import (
	"reflect"
	"strings"
	"testing"
)

// FuzzCanonicalize drives arbitrary job specs through canonicalization
// and checks its contracts on every accepted spec:
//
//   - idempotence: canonicalizing a canonical spec is the identity;
//   - key stability: re-spelling a spec (case, surrounding whitespace)
//     never moves it to a different cache key;
//   - and, implicitly, that no input panics or builds an absurdly large
//     graph/run (the size guards reject those before construction).
func FuzzCanonicalize(f *testing.F) {
	f.Add("mc", "s:0.1", "pair", 10, "all", "good", "", 20000, uint64(1), "", 0, 0.0, "", false, 0)
	f.Add("", "s:0.25", "ring:6", 12, "1,2", "cut:7", "", 5000, uint64(3), "crash:2@4", 7, 0.02, "", false, 30)
	f.Add("mc", "a", "complete:5", 8, "", "", "loss:0.2", 1000, uint64(9), "", 0, 0.0, "", false, 0)
	f.Add("mc", "s:0.5", "grid:3x4", 6, "all", "", "subset", 100, uint64(2), "rand:0.3", 0, 0.1, "", false, 0)
	f.Add("experiment", "", "", 0, "", "", "", 4000, uint64(1992), "", 0, 0.0, "T3", true, 0)
	f.Add("mc", "s:0.1", "hypercube:3", 4, "all", "good", "", 50, uint64(5), "", 0, 0.5, "", false, 1)
	f.Add("mc", "s:0.1", "complete:1000000", 10, "all", "good", "", 100, uint64(1), "", 0, 0.0, "", false, 0)

	f.Fuzz(func(t *testing.T, engine, protocol, graph string, rounds int,
		inputs, runSpec, sampler string, trials int, seed uint64,
		fault string, maxFailures int, ciWidth float64,
		experiment string, quick bool, timeoutSec int) {

		spec := JobSpec{
			Engine: engine, Protocol: protocol, Graph: graph, Rounds: rounds,
			Inputs: inputs, Run: runSpec, Sampler: sampler, Trials: trials,
			Seed: seed, Fault: fault, MaxFailures: maxFailures,
			Precision:  &PrecisionSpec{CIWidth: ciWidth},
			Experiment: experiment, Quick: quick, TimeoutSec: timeoutSec,
		}
		canon, err := spec.Canonicalize()
		if err != nil {
			return // rejected specs only need to not panic
		}
		key := canon.Key()

		// Idempotence: the canonical form is a fixed point with the same
		// key.
		canon2, err := canon.Canonicalize()
		if err != nil {
			t.Fatalf("canonical spec rejected on re-canonicalization: %v\nspec: %+v", err, canon)
		}
		if !reflect.DeepEqual(canon2, canon) {
			t.Fatalf("canonicalization not idempotent:\n first %+v\nsecond %+v", canon, canon2)
		}
		if canon2.Key() != key {
			t.Fatalf("key moved under re-canonicalization: %s vs %s", canon2.Key(), key)
		}

		// Spelling invariance: case and surrounding whitespace never
		// change the meaning, so they must never change the key. The run
		// spec's payload after ':' is case-sensitive (custom runs), so
		// only its name is re-spelled — mirroring normRunSpec.
		respelled := JobSpec{
			Engine:   " " + strings.ToUpper(engine) + "\t",
			Protocol: strings.ToUpper(protocol) + " ",
			Graph:    " " + strings.ToUpper(graph),
			Rounds:   rounds,
			Inputs:   strings.ToUpper(inputs),
			Run:      upperRunName(runSpec),
			Sampler:  strings.ToUpper(sampler),
			Trials:   trials, Seed: seed,
			Fault: strings.ToUpper(fault), MaxFailures: maxFailures,
			Precision:  &PrecisionSpec{CIWidth: ciWidth},
			Experiment: " " + strings.ToLower(experiment), Quick: quick,
			TimeoutSec: timeoutSec,
		}
		rcanon, err := respelled.Canonicalize()
		if err != nil {
			t.Fatalf("accepted spec rejected after re-spelling: %v\noriginal: %+v", err, spec)
		}
		if rcanon.Key() != key {
			t.Fatalf("re-spelling split the key:\n %s (%+v)\n %s (%+v)", key, canon, rcanon.Key(), rcanon)
		}
	})
}

// upperRunName uppercases only the name part of a run spec, leaving the
// case-sensitive payload after ':' alone.
func upperRunName(s string) string {
	name, args, ok := strings.Cut(s, ":")
	if !ok {
		return strings.ToUpper(name)
	}
	return strings.ToUpper(name) + ":" + args
}
