package service

import (
	"context"
	"sort"
	"time"

	"coordattack/internal/cluster"
	"coordattack/internal/hints"
)

// This file is the anti-entropy repair loop: the background half of
// successor replication. The synchronous half (replicateResult in
// peer.go) pushes every freshly computed body to the key's replica set;
// this loop walks the local durable store and re-pushes any body a
// replica peer turns out not to hold — because a push failed while the
// peer was down, because the peer restarted with an empty disk, or
// because a membership edit moved the key's replica set. Like the steal
// loop it is idle-paced: one bounded batch of keys per tick, probed
// with cheap HEAD requests, pushing bodies only on a confirmed miss.

// adminCluster is the body of GET /v1/admin/cluster: the cluster
// snapshot (ring membership, breakers, request counters) plus the
// replication health summary. The snapshot is embedded so its fields
// stay top-level — operators and smoke tests read .self and .peers.
type adminCluster struct {
	cluster.Snapshot
	Replication *ReplicationInfo `json:"replication,omitempty"`
}

// ReplicationInfo summarizes this node's replication state for the
// admin endpoint.
type ReplicationInfo struct {
	// LocalKeys is how many results the local durable store holds —
	// the key space the repair loop walks. -1 when no store is
	// configured (nothing durable to repair from).
	LocalKeys int `json:"local_keys"`
	// Pushes and Repairs mirror coordd_replica_pushes_total and
	// coordd_replica_repairs_total.
	Pushes  int64 `json:"pushes"`
	Repairs int64 `json:"repairs"`
	// RepairRuns counts completed repair passes; LastRepairUnix is the
	// wall-clock second the latest one finished (0 before the first).
	RepairRuns     int64 `json:"repair_runs"`
	LastRepairUnix int64 `json:"last_repair_unix,omitempty"`
	// ReadRepairs mirrors coordd_read_repairs_total: bodies pushed back
	// to replicas that a fall-through fetch proved were missing them.
	ReadRepairs int64 `json:"read_repairs"`
	// PushFailures is the per-peer count of replica pushes that failed
	// (each queued a hint), mirroring
	// coordd_replica_push_failures_total{peer}.
	PushFailures map[string]int64 `json:"push_failures,omitempty"`
	// Hints is the hinted-handoff log snapshot: pending/delivered/
	// dropped counts and whether the log degraded to memory-only.
	Hints *hints.Stats `json:"hints,omitempty"`
}

// replicationInfo snapshots the replication summary for the admin
// endpoint. Called with s.cluster non-nil.
func (s *Server) replicationInfo() *ReplicationInfo {
	info := &ReplicationInfo{
		LocalKeys:   -1,
		Pushes:      s.metrics.ReplicaPushes.Load(),
		Repairs:     s.metrics.ReplicaRepairs.Load(),
		ReadRepairs: s.metrics.ReadRepairs.Load(),
	}
	if pf := s.metrics.PushFailures(); len(pf) > 0 {
		info.PushFailures = pf
	}
	if s.hints != nil {
		hs := s.hints.Stats()
		info.Hints = &hs
	}
	if s.store != nil {
		info.LocalKeys = s.store.Len()
	}
	s.repairMu.Lock()
	info.RepairRuns = s.repairRuns
	if !s.lastRepair.IsZero() {
		info.LastRepairUnix = s.lastRepair.Unix()
	}
	s.repairMu.Unlock()
	return info
}

// repairLoop drives one repair pass per tick until Drain stops it.
func (s *Server) repairLoop(interval time.Duration) {
	defer close(s.repairDone)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.repairStop:
			return
		case <-tick.C:
		}
		// The pass budget scales with the interval (cfg.RepairTimeout,
		// clamped to [1s, 10s] by default) so short intervals cannot
		// overlap a stuck pass — and it must never wedge Drain.
		ctx, cancel := context.WithTimeout(context.Background(), s.cfg.RepairTimeout)
		s.repairPass(ctx)
		cancel()
	}
}

// repairPass probes one batch of local store keys, resuming after the
// previous pass's cursor, and pushes any body a replica peer is
// missing. It returns how many keys were scanned and how many bodies
// were pushed (exposed for tests; the loop ignores them).
func (s *Server) repairPass(ctx context.Context) (scanned, repaired int) {
	keys := s.store.Keys()
	if len(keys) > 0 {
		s.repairMu.Lock()
		cur := s.repairCur
		s.repairMu.Unlock()
		// Resume after the cursor; sort.SearchStrings on the sorted key
		// list finds the first key past it, wrapping at the end.
		start := 0
		if cur != "" {
			start = sort.SearchStrings(keys, cur)
			if start < len(keys) && keys[start] == cur {
				start++
			}
		}
		batch := s.cfg.RepairBatch
		if batch > len(keys) {
			batch = len(keys)
		}
		for i := 0; i < batch; i++ {
			select {
			case <-ctx.Done():
				return scanned, repaired
			case <-s.repairStop:
				return scanned, repaired
			default:
			}
			key := keys[(start+i)%len(keys)]
			scanned++
			s.repairMu.Lock()
			s.repairCur = key
			s.repairMu.Unlock()
			repaired += s.repairKey(ctx, key)
		}
	}
	s.repairMu.Lock()
	s.repairRuns++
	s.lastRepair = time.Now()
	s.repairMu.Unlock()
	return scanned, repaired
}

// repairKey probes key's replica peers and pushes the local body to any
// that miss it, returning how many pushes it made. Probe errors (peer
// down, breaker open) skip the peer — the next pass retries; pushing
// through an open breaker would just burn the probe budget.
func (s *Server) repairKey(ctx context.Context, key string) int {
	pushed := 0
	var body []byte
	for _, addr := range s.cluster.ReplicaSet(key) {
		if addr == s.cluster.Self() {
			continue
		}
		has, err := s.cluster.HasResult(ctx, addr, key)
		if err != nil || has {
			continue
		}
		if body == nil {
			b, ok := s.storeGet(key)
			if !ok {
				return pushed // evicted since the key list was taken
			}
			body = b
		}
		if err := s.cluster.PushTo(ctx, addr, key, body); err == nil {
			pushed++
			s.metrics.ReplicaPushes.Add(1)
			s.metrics.ReplicaRepairs.Add(1)
		}
	}
	return pushed
}
