package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"coordattack/internal/cluster"
	"coordattack/internal/hints"
	"coordattack/internal/mc"
	"coordattack/internal/queue"
	"coordattack/internal/stats"
	"coordattack/internal/store"
)

// Config tunes the scheduler.
type Config struct {
	// Workers is the number of concurrent jobs; 0 means 2.
	Workers int
	// TrialWorkers is the Monte-Carlo parallelism budget of one job. The
	// default (0) divides GOMAXPROCS evenly across the job pool, never
	// below 1, so a fully loaded pool runs at most ~GOMAXPROCS trial
	// goroutines instead of Workers×GOMAXPROCS.
	TrialWorkers int
	// QueueDepth bounds the pending submission queue; a full queue
	// rejects with ErrQueueFull (HTTP 429). 0 means 64. Journal replay
	// on restart may exceed it — accepted work is never dropped.
	QueueDepth int
	// StrictFIFO disables fair sharing: the scheduler degrades to one
	// global FIFO in admission order, ignoring flows, priorities, and
	// deadlines — the pre-scheduler behavior, kept for operators who
	// want it back (-fair-share=false).
	StrictFIFO bool
	// InteractiveWeight is how many interactive jobs the scheduler pops
	// per sweep-flow pop; 0 means 1 (equal shares). Raising it biases
	// the pool toward latency-sensitive singleton submissions.
	InteractiveWeight int
	// Journal, when non-nil, is the crash-safe pending-queue WAL
	// (internal/queue): every accepted job is appended (fsynced) before
	// its 202, tombstoned when it settles, and re-admitted by New on
	// restart. A nil Journal keeps the pending queue memory-only.
	Journal *queue.Journal
	// CacheSize bounds the result cache entry count; 0 means 1024.
	CacheSize int
	// JobTimeout is the per-job deadline; 0 means 5 minutes. A spec's
	// timeout_sec can lower it per job, never raise it.
	JobTimeout time.Duration
	// Store, when non-nil, is the durable second result tier under the
	// in-memory LRU: completed bodies are written through to it, and a
	// memory miss consults it before running the engine — which is what
	// makes a restarted daemon serve prior results as cache hits. A nil
	// Store keeps the daemon memory-only.
	Store *store.Store
	// SweepRetention bounds how many settled sweeps stay queryable;
	// older settled sweeps are evicted (404) so Server.sweeps cannot
	// grow without bound in a long-lived daemon. Unsettled sweeps are
	// never evicted. 0 means 256.
	SweepRetention int
	// JobRetention bounds how many settled jobs stay queryable in
	// Server.jobs, mirroring SweepRetention: the oldest settled jobs
	// past the limit are evicted (404). Unsettled jobs are never
	// evicted. 0 means 4096.
	JobRetention int
	// WatchdogInterval is how often the stuck-job watchdog scans for
	// running jobs past their deadline with no progress movement; 0
	// means 5 s, negative disables the watchdog.
	WatchdogInterval time.Duration
	// WatchdogGrace is how far past its deadline — with no progress
	// callback movement for at least as long — a running job must be
	// before the watchdog declares it stuck and kills it. 0 means 30 s.
	WatchdogGrace time.Duration
	// WrapEngine, when non-nil, wraps every engine execution: it
	// receives the engine name and the underlying run function and
	// returns the function actually run (still under panic isolation).
	// Chaos harnesses inject stalls and panics here.
	WrapEngine func(engine string, next RunFunc) RunFunc
	// Cluster, when non-nil, joins this daemon to a static peer set
	// (internal/cluster): local misses consult the key's ring owner
	// before running the engine, computed bodies replicate to their
	// owners, idle workers steal pending jobs from saturated peers, and
	// the peer-protocol endpoints under /v1/peer/ are served. A nil
	// Cluster keeps the daemon standalone.
	Cluster *cluster.Cluster
	// StealInterval is how often an idle node polls peers for stealable
	// work; 0 means 1 s, negative disables stealing (the node still
	// serves and fetches peer results).
	StealInterval time.Duration
	// StealPollInterval is how often a victim polls the thief for a
	// donated job's result; 0 means 200 ms.
	StealPollInterval time.Duration
	// StealPollFailures is how many consecutive unanswered (or
	// answered-but-unknowing) polls the victim tolerates before
	// presuming the thief dead and reclaiming the job; 0 means 4.
	StealPollFailures int
	// RepairInterval is how often the anti-entropy repair loop walks a
	// batch of local store keys and re-replicates any whose replica
	// peers are missing them; 0 means 5 s, negative disables repair.
	// Only meaningful with both Cluster and Store configured.
	RepairInterval time.Duration
	// RepairBatch bounds how many local keys one repair pass probes; 0
	// means 128. The cursor persists across passes, so the whole key
	// space is walked eventually regardless of batch size.
	RepairBatch int
	// RepairTimeout bounds one anti-entropy repair pass. <= 0 derives it
	// from RepairInterval, clamped to [1s, 10s], so a short interval
	// cannot overlap a stuck pass and a long one is not starved by its
	// own budget.
	RepairTimeout time.Duration
	// Hints, when non-nil, is the durable hinted-handoff log
	// (internal/hints): replica pushes that fail queue a (peer, key)
	// hint there and the failure detector drains it the moment the peer
	// answers a probe again. When nil and a Cluster is configured, the
	// server keeps a memory-only hint log — same healing behavior, no
	// crash durability.
	Hints *hints.Log
	// ProbeInterval is how often the peer failure detector pings every
	// peer (GET /v1/peer/ping); 0 means 1 s, negative disables the
	// detector (hints then deliver only via explicit replay or repair).
	ProbeInterval time.Duration
	// ProbeMisses is how many consecutive failed pings mark a peer dead;
	// 0 means 3.
	ProbeMisses int
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = 2
	}
	if c.TrialWorkers == 0 {
		c.TrialWorkers = runtime.GOMAXPROCS(0) / c.Workers
		if c.TrialWorkers < 1 {
			c.TrialWorkers = 1
		}
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.InteractiveWeight == 0 {
		c.InteractiveWeight = 1
	}
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	}
	if c.JobTimeout == 0 {
		c.JobTimeout = 5 * time.Minute
	}
	if c.SweepRetention == 0 {
		c.SweepRetention = 256
	}
	if c.JobRetention == 0 {
		c.JobRetention = 4096
	}
	if c.WatchdogInterval == 0 {
		c.WatchdogInterval = 5 * time.Second
	}
	if c.WatchdogGrace == 0 {
		c.WatchdogGrace = 30 * time.Second
	}
	if c.StealInterval == 0 {
		c.StealInterval = time.Second
	}
	if c.StealPollInterval == 0 {
		c.StealPollInterval = 200 * time.Millisecond
	}
	if c.StealPollFailures == 0 {
		c.StealPollFailures = 4
	}
	if c.RepairInterval == 0 {
		c.RepairInterval = 5 * time.Second
	}
	if c.RepairBatch == 0 {
		c.RepairBatch = 128
	}
	if c.RepairTimeout <= 0 {
		rt := c.RepairInterval
		if rt < time.Second {
			rt = time.Second
		}
		if rt > 10*time.Second {
			rt = 10 * time.Second
		}
		c.RepairTimeout = rt
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeMisses == 0 {
		c.ProbeMisses = 3
	}
	return c
}

// State is a job's lifecycle stage.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Sentinel errors the HTTP layer maps to status codes.
var (
	ErrQueueFull = fmt.Errorf("service: queue full")
	ErrDraining  = fmt.Errorf("service: server draining")
	ErrNotFound  = fmt.Errorf("service: no such job")
)

// Job is one scheduled computation. Progress counters are atomics so
// polling never contends with the worker; everything else is guarded by
// mu.
type Job struct {
	id   string
	key  string
	spec JobSpec // canonical
	// class is the scheduling class this job was admitted under, feeding
	// the per-class duration observations behind Retry-After. Written
	// once at admission (before the job is shared), read afterwards.
	class queue.Class

	ctx      context.Context
	cancel   context.CancelFunc
	done     chan struct{}
	deadline time.Time // ctx's deadline, cached for the watchdog

	completed atomic.Int64
	failed    atomic.Int64
	// lastMove is the wall-clock nanos of the last *advance* of the
	// progress counters (or of the run start). The watchdog reads it to
	// distinguish a slow-but-alive engine from a wedged one.
	lastMove atomic.Int64
	// slotFreed guards the running-gauge decrement: either the worker
	// (engine returned) or the watchdog (job declared stuck) frees the
	// slot, never both.
	slotFreed atomic.Bool

	mu        sync.Mutex
	state     State
	cached    bool
	coalesced bool
	// stolenBy is the peer currently computing this job after a steal
	// handoff; the job stays "queued" here while its follower goroutine
	// (awaitStolen) watches the thief.
	stolenBy string
	body     json.RawMessage
	errMsg   string
	token    *workerToken // the worker currently running this job

	// item is this job's scheduler entry while pending, and journaled
	// marks the job that owns its key's journal accept record (coalesced
	// followers share the key but never the record). Both are guarded by
	// Server.mu, not this mu.
	item      *queue.Item
	journaled bool
}

// Progress is the polling/streaming view of a job's advancement. CIWidth
// is the full width of the 95% Hoeffding deviation interval at the
// current completed-trial count: the caller-visible "how converged am I"
// number (1 before any trial completes).
type Progress struct {
	Trials    int     `json:"trials"`
	Completed int     `json:"completed"`
	Failed    int     `json:"failed"`
	CIWidth   float64 `json:"ci_width"`
}

// Status is the wire form of a job, served by every jobs endpoint.
type Status struct {
	ID     string `json:"id"`
	Key    string `json:"key"`
	State  State  `json:"state"`
	Cached bool   `json:"cached,omitempty"`
	// Coalesced marks a submission that attached to an identical
	// in-flight job instead of running the engine itself; it settles with
	// a copy of that job's outcome.
	Coalesced bool `json:"coalesced,omitempty"`
	// StolenBy names the peer currently computing this job after a
	// work-stealing handoff; empty once it settles or is reclaimed.
	StolenBy string          `json:"stolen_by,omitempty"`
	Spec     JobSpec         `json:"spec"`
	Progress Progress        `json:"progress"`
	Result   json.RawMessage `json:"result,omitempty"`
	Error    string          `json:"error,omitempty"`
}

func (j *Job) status() *Status {
	completed := int(j.completed.Load())
	width := 1.0
	if completed > 0 {
		if r, err := stats.HoeffdingRadius(completed, 0.05); err == nil {
			width = 2 * r
		}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return &Status{
		ID:        j.id,
		Key:       j.key,
		State:     j.state,
		Cached:    j.cached,
		Coalesced: j.coalesced,
		StolenBy:  j.stolenBy,
		Spec:      j.spec,
		Progress: Progress{
			Trials:    j.spec.Trials,
			Completed: completed,
			Failed:    int(j.failed.Load()),
			CIWidth:   width,
		},
		Result: j.body,
		Error:  j.errMsg,
	}
}

// finish moves the job to a terminal state exactly once.
func (j *Job) finish(state State, body json.RawMessage, errMsg string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return false
	}
	j.state = state
	j.body = body
	j.errMsg = errMsg
	close(j.done)
	return true
}

// finishIfQueued settles a job that never started running. A running
// job must settle through its worker instead, so the engine's partial
// result is preserved.
func (j *Job) finishIfQueued(state State, errMsg string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = state
	j.errMsg = errMsg
	close(j.done)
	return true
}

// Server is the job orchestrator: a bounded fair-share scheduler
// (internal/queue) drained by a fixed worker pool, a content-addressed
// result cache in front, an optional crash-safe pending-queue journal
// underneath, and a job registry behind the HTTP handlers (http.go).
type Server struct {
	cfg     Config
	cache   *Cache
	store   *store.Store     // nil = memory-only
	journal *queue.Journal   // nil = pending queue is memory-only
	cluster *cluster.Cluster // nil = standalone daemon
	hints   *hints.Log       // nil = standalone daemon (clustered servers always have one)
	metrics *Metrics
	engines map[string]engine

	running atomic.Int64

	mu   sync.Mutex
	jobs map[string]*Job
	// inflight maps a canonical key to the one job currently queued or
	// running for it: the coalescing registry. Entries are removed when
	// the job settles (after a successful body is cached), so a key
	// absent here with a cache miss really does need a fresh engine run.
	inflight map[string]*Job
	sweeps   map[string]*Sweep
	sched    *queue.Sched
	draining bool
	nextID   int64

	wg sync.WaitGroup

	// watchStop/watchDone bracket the stuck-job watchdog goroutine
	// (watchdog.go); both are nil when the watchdog is disabled.
	watchStop chan struct{}
	watchDone chan struct{}

	// stealStop/stealDone bracket the work-stealing loop (peer.go); both
	// are nil when the daemon is standalone or stealing is disabled.
	stealStop chan struct{}
	stealDone chan struct{}

	// repairStop/repairDone bracket the anti-entropy repair loop
	// (replicate.go); both are nil when repair is disabled. The cursor
	// and pass counters live behind repairMu.
	repairStop chan struct{}
	repairDone chan struct{}
	repairMu   sync.Mutex
	repairCur  string // last store key probed; next pass resumes after it
	repairRuns int64
	lastRepair time.Time

	// detectorOn marks a started failure detector so Drain knows to stop
	// it (set once in New, read in Drain).
	detectorOn bool
	// hintMu guards hintActive: the per-peer "a delivery goroutine is
	// already draining this peer" latch, so overlapping alive signals do
	// not double-deliver concurrently (delivery itself is idempotent).
	hintMu     sync.Mutex
	hintActive map[string]bool
	// rrSem is the read-repair in-flight budget: a full channel means
	// new read-repairs are skipped, not queued — the anti-entropy loop
	// remains the backstop.
	rrSem chan struct{}
}

// workerToken is one worker goroutine's claim on a pool slot. The
// watchdog abandons a token when its worker is wedged inside an engine
// that ignores cancellation: the wg share is released (so Drain does
// not wait on the wedged goroutine), a replacement worker is spawned,
// and the wedged goroutine exits the pool loop if the engine ever
// returns.
type workerToken struct {
	released  atomic.Bool
	abandoned atomic.Bool
}

// release gives up the token's wg share exactly once, no matter whether
// the worker itself or the watchdog triggers it.
func (t *workerToken) release(wg *sync.WaitGroup) {
	if t.released.CompareAndSwap(false, true) {
		wg.Done()
	}
}

// New starts a Server with cfg's worker pool already running. When a
// journal is configured, the pending jobs it recovered are re-admitted
// (ahead of new submissions) before the pool starts.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:        cfg,
		cache:      NewCache(cfg.CacheSize),
		store:      cfg.Store,
		journal:    cfg.Journal,
		cluster:    cfg.Cluster,
		hints:      cfg.Hints,
		metrics:    NewMetrics(),
		engines:    engineRegistry(),
		jobs:       make(map[string]*Job),
		inflight:   make(map[string]*Job),
		sweeps:     make(map[string]*Sweep),
		hintActive: make(map[string]bool),
		rrSem:      make(chan struct{}, readRepairBudget),
		sched: queue.NewSched(queue.SchedOptions{
			MaxDepth: cfg.QueueDepth,
			Strict:   cfg.StrictFIFO,
			Weight: func(c queue.Class) int {
				if c == queue.ClassInteractive {
					return cfg.InteractiveWeight
				}
				return 1
			},
		}),
	}
	s.replayJournal()
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	if cfg.WatchdogInterval > 0 {
		s.watchStop = make(chan struct{})
		s.watchDone = make(chan struct{})
		go s.watchdog(cfg.WatchdogInterval)
	}
	if s.cluster != nil && cfg.StealInterval > 0 {
		s.stealStop = make(chan struct{})
		s.stealDone = make(chan struct{})
		go s.stealLoop(cfg.StealInterval)
	}
	if s.cluster != nil && s.store != nil && cfg.RepairInterval > 0 {
		s.repairStop = make(chan struct{})
		s.repairDone = make(chan struct{})
		go s.repairLoop(cfg.RepairInterval)
	}
	if s.cluster != nil {
		if s.hints == nil {
			// Every clustered server gets a hint log; without a configured
			// durable one it is memory-only (Open with an empty dir cannot
			// fail).
			s.hints, _ = hints.Open("", hints.Options{})
		}
		if cfg.ProbeInterval > 0 {
			s.detectorOn = true
			s.cluster.StartDetector(cluster.DetectorOptions{
				Interval: cfg.ProbeInterval,
				Misses:   cfg.ProbeMisses,
				OnAlive:  s.onPeerAlive,
			})
		}
	}
	return s
}

// Metrics exposes the server's counters (for tests and /metrics).
func (s *Server) Metrics() *Metrics { return s.metrics }

// CacheStats exposes the cache's hit/miss counters.
func (s *Server) CacheStats() (hits, misses int64) { return s.cache.Stats() }

// Submit canonicalizes spec, answers from the cache when possible,
// coalesces onto an identical in-flight job otherwise, and only then
// enqueues a fresh one. The returned Status is the submission-time
// view: state "done" with the result inline on a cache hit, "queued"
// (possibly coalesced) otherwise. Backpressure and drain are reported
// as ErrQueueFull and ErrDraining.
func (s *Server) Submit(spec JobSpec) (*Status, error) {
	return s.submit(spec, queue.ClassInteractive, "interactive")
}

// submit is Submit with an explicit scheduling envelope: individual
// submissions share the "interactive" flow, sweep cells ride their
// sweep's own flow (class "sweep"), so the fair scheduler round-robins
// sweeps against singletons instead of draining whichever came first.
func (s *Server) submit(spec JobSpec, class queue.Class, flow string) (*Status, error) {
	canon, err := spec.Canonicalize()
	if err != nil {
		return nil, err
	}
	key := canon.Key()
	s.metrics.JobsSubmitted.Add(1)

	j := s.newJob(canon, key)
	j.class = class
	if body, ok := s.cache.Get(key); ok {
		s.serveCached(j, body)
		return j.status(), nil
	}
	if body, ok := s.storeGet(key); ok {
		// Disk tier hit — a prior (possibly pre-restart) run settled this
		// key. Promote it into the memory LRU and serve it as a cache
		// hit; no engine run, so coordd_engine_runs_total stays put.
		s.cache.Put(key, body)
		s.serveCached(j, body)
		return j.status(), nil
	}

	s.mu.Lock()
	if leader, ok := s.inflight[key]; ok {
		// An identical job is already queued or running: attach to it
		// instead of computing twice. The wg.Add is safe here because a
		// registered leader's worker cannot have exited yet — it drops
		// the registry entry (under this lock) before returning.
		j.coalesced = true
		s.jobs[j.id] = j
		s.metrics.JobsCoalesced.Add(1)
		s.wg.Add(1)
		s.mu.Unlock()
		go s.follow(j, leader)
		return j.status(), nil
	}
	if body, ok := s.cache.Get(key); ok {
		// The leader settled between the unlocked cache check and here.
		// Its body was cached before the registry entry was dropped, so
		// this second check under the lock cannot miss.
		s.mu.Unlock()
		s.serveCached(j, body)
		return j.status(), nil
	}
	if s.draining {
		s.mu.Unlock()
		j.cancel()
		return nil, ErrDraining
	}
	it := &queue.Item{
		Key:      key,
		Flow:     flow,
		Class:    class,
		Priority: canon.Priority,
		Deadline: j.deadline,
		Payload:  j,
	}
	if err := s.sched.Push(it); err != nil {
		s.mu.Unlock()
		j.cancel()
		s.metrics.JobsRejected.Add(1)
		return nil, ErrQueueFull
	}
	s.jobs[j.id] = j
	s.inflight[key] = j
	j.item = it
	s.journalAccept(j, it)
	s.mu.Unlock()
	return j.status(), nil
}

// journalAccept appends j's accept record (fsynced) under s.mu, so the
// job's 202 is only sent once the accept is durable and no settle for
// this key can be logged before it. Rejected jobs never reach here — a
// full queue costs no fsync. Journal errors are advisory: the journal
// demotes itself to memory-only and admission proceeds.
func (s *Server) journalAccept(j *Job, it *queue.Item) {
	if s.journal == nil {
		return
	}
	specJSON, err := json.Marshal(j.spec)
	if err != nil {
		return
	}
	j.journaled = true
	_ = s.journal.Accept(queue.Record{
		Key:      j.key,
		Flow:     it.Flow,
		Class:    string(it.Class),
		Priority: it.Priority,
		Spec:     specJSON,
	})
}

// journalSettle tombstones j's journal entry, exactly once, and only if
// j owns it — coalesced followers share the leader's key but must not
// erase its pending record.
func (s *Server) journalSettle(j *Job) {
	if s.journal == nil {
		return
	}
	s.mu.Lock()
	owned := j.journaled
	j.journaled = false
	s.mu.Unlock()
	if owned {
		_ = s.journal.Settle(j.key)
	}
}

// replayJournal re-admits the pending jobs the journal recovered: each
// record's spec is re-canonicalized, answered from the durable result
// store when the settle beat the crash but its tombstone did not, and
// otherwise pushed back onto the scheduler (bypassing MaxDepth —
// accepted work is never dropped) in its original flow, with its
// original admission time. Records that no longer canonicalize (a spec
// regression across versions) are tombstoned and dropped; a key that
// re-canonicalizes differently (keyVersion bump) is re-accepted under
// the new key so a later crash replays the right one.
func (s *Server) replayJournal() {
	if s.journal == nil {
		return
	}
	for _, rec := range s.journal.Pending() {
		var spec JobSpec
		if err := json.Unmarshal(rec.Spec, &spec); err != nil {
			_ = s.journal.Settle(rec.Key)
			continue
		}
		canon, err := spec.Canonicalize()
		if err != nil {
			_ = s.journal.Settle(rec.Key)
			continue
		}
		key := canon.Key()
		j := s.newJob(canon, key)
		s.metrics.QueueReplayed.Add(1)
		if body, ok := s.storeGet(key); ok {
			// The engine ran and the body persisted before the crash; only
			// the tombstone was lost. Serve the stored result — no second
			// engine run — and settle the journal now.
			s.cache.Put(key, body)
			s.serveCached(j, body)
			_ = s.journal.Settle(rec.Key)
			continue
		}
		if key != rec.Key {
			_ = s.journal.Settle(rec.Key)
		}
		class := queue.Class(rec.Class)
		if class == "" {
			class = queue.ClassInteractive
		}
		flow := rec.Flow
		if flow == "" {
			flow = "interactive"
		}
		j.class = class
		if rec.Op == queue.OpIntent && rec.Thief != "" && s.cluster != nil && key == rec.Key {
			// The crash interrupted a steal handoff after the intent was
			// journaled but before the thief's commit tombstoned it. The
			// thief may well hold the job (it journaled it and crashed
			// before committing — its own replay re-runs it), or it may
			// never have durably taken it. Re-attach the follower: it polls
			// the recorded thief and reclaims for a local re-run only once
			// the thief provably has no record of the key. Blindly
			// re-enqueuing here would be the double-execution half of the
			// double-crash window the two-phase handoff closes.
			j.stolenBy = rec.Thief
			s.mu.Lock()
			s.jobs[j.id] = j
			s.inflight[key] = j
			j.journaled = true
			s.wg.Add(1)
			s.mu.Unlock()
			go s.awaitStolen(j, rec.Thief)
			continue
		}
		it := &queue.Item{
			Key:      key,
			Flow:     flow,
			Class:    class,
			Priority: rec.Priority,
			Deadline: j.deadline,
			Payload:  j,
		}
		if rec.At > 0 {
			it.Enqueued = time.Unix(0, rec.At)
		}
		s.mu.Lock()
		s.jobs[j.id] = j
		s.inflight[key] = j
		j.item = it
		if key == rec.Key {
			j.journaled = true
		} else {
			s.journalAccept(j, it)
		}
		s.mu.Unlock()
		s.sched.PushReplay(it)
	}
}

// serveCached settles a freshly created job inline with a memoized body.
func (s *Server) serveCached(j *Job, body json.RawMessage) {
	j.cached = true
	j.state = StateDone
	j.body = body
	j.completed.Store(int64(j.spec.Trials))
	close(j.done)
	j.cancel()
	s.register(j)
}

// storeGet consults the durable tier; a nil store always misses.
func (s *Server) storeGet(key string) (json.RawMessage, bool) {
	if s.store == nil {
		return nil, false
	}
	return s.store.Get(key)
}

// storePut writes a completed body through to the durable tier. Store
// errors are advisory — the job already succeeded and is cached in
// memory; the store demotes itself to read-only (and logs once), so the
// daemon degrades to memory-only instead of failing jobs.
func (s *Server) storePut(key string, body json.RawMessage) {
	if s.store == nil {
		return
	}
	_ = s.store.Put(key, body)
}

// follow settles a coalesced follower when its leader does, mirroring
// the leader's terminal state, body, and progress counters — a done
// leader hands every follower the identical result bytes, a failed or
// cancelled one propagates its error. The follower's own deadline and
// Cancel still apply: they detach it without touching the leader.
func (s *Server) follow(j, leader *Job) {
	defer s.wg.Done()
	defer j.cancel()
	select {
	case <-leader.done:
		leader.mu.Lock()
		state, body, errMsg := leader.state, leader.body, leader.errMsg
		leader.mu.Unlock()
		storeMax(&j.completed, leader.completed.Load())
		storeMax(&j.failed, leader.failed.Load())
		if j.finish(state, body, errMsg) {
			switch state {
			case StateDone:
				s.metrics.JobsCompleted.Add(1)
			case StateFailed:
				s.metrics.JobsFailed.Add(1)
			default:
				s.metrics.JobsCancelled.Add(1)
			}
		}
	case <-j.ctx.Done():
		if j.finishIfQueued(StateCancelled, j.ctx.Err().Error()) {
			s.metrics.JobsCancelled.Add(1)
		}
	case <-j.done: // cancelled directly through the API
	}
	s.gcJobs()
}

func (s *Server) newJob(canon JobSpec, key string) *Job {
	timeout := s.cfg.JobTimeout
	if t := time.Duration(canon.TimeoutSec) * time.Second; t > 0 && t < timeout {
		timeout = t
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	deadline, _ := ctx.Deadline()
	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("j%06d", s.nextID)
	s.mu.Unlock()
	return &Job{
		id: id, key: key, spec: canon,
		class: queue.ClassInteractive,
		ctx:   ctx, cancel: cancel, deadline: deadline,
		done:  make(chan struct{}),
		state: StateQueued,
	}
}

func (s *Server) register(j *Job) {
	s.mu.Lock()
	s.jobs[j.id] = j
	s.mu.Unlock()
	s.gcJobs()
}

// gcJobs evicts the oldest settled jobs past the retention limit,
// mirroring gcSweeps: Server.jobs (the id → job map behind GET
// /v1/jobs/{id}) must not grow without bound in a long-lived daemon.
// Unsettled jobs never count against the limit and are never evicted.
// Evicted job ids answer 404; their results stay memoized in the cache
// and store under the spec key.
func (s *Server) gcJobs() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.jobs) <= s.cfg.JobRetention {
		return
	}
	settled := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		select {
		case <-j.done:
			settled = append(settled, j)
		default:
		}
	}
	if len(settled) <= s.cfg.JobRetention {
		return
	}
	sort.Slice(settled, func(a, b int) bool { return settled[a].id < settled[b].id })
	for _, j := range settled[:len(settled)-s.cfg.JobRetention] {
		delete(s.jobs, j.id)
		s.metrics.JobsEvicted.Add(1)
	}
}

func (s *Server) job(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j, nil
}

// Get returns a job's current status.
func (s *Server) Get(id string) (*Status, error) {
	j, err := s.job(id)
	if err != nil {
		return nil, err
	}
	return j.status(), nil
}

// Jobs lists every known job, oldest first.
func (s *Server) Jobs() []*Status {
	s.mu.Lock()
	all := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		all = append(all, j)
	}
	s.mu.Unlock()
	sort.Slice(all, func(a, b int) bool { return all[a].id < all[b].id })
	out := make([]*Status, len(all))
	for i, j := range all {
		out[i] = j.status()
	}
	return out
}

// Cancel cancels a job. A queued job is finished immediately; a running
// one has its context cancelled and settles (possibly with a partial
// result) when its engine returns.
func (s *Server) Cancel(id string) (*Status, error) {
	j, err := s.job(id)
	if err != nil {
		return nil, err
	}
	j.cancel()
	if j.finishIfQueued(StateCancelled, context.Canceled.Error()) {
		// Finished here means the worker never started it; the worker
		// skips already-terminal jobs, so this is the only accounting.
		// A running job settles through its worker, keeping whatever
		// partial result the engine salvages. A settled leader must
		// leave the coalescing registry now — its worker's own drop only
		// happens once the job is dequeued. Withdraw it from the
		// scheduler too (freeing queue capacity immediately) and
		// tombstone its journal entry so a restart does not resurrect a
		// cancelled job.
		s.mu.Lock()
		it := j.item
		s.mu.Unlock()
		if it != nil {
			s.sched.Remove(it)
		}
		s.journalSettle(j)
		s.dropInflight(j)
		s.metrics.JobsCancelled.Add(1)
	}
	return j.status(), nil
}

// dropInflight removes j from the coalescing registry if it is still
// the registered job for its key.
func (s *Server) dropInflight(j *Job) {
	s.mu.Lock()
	if s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
	s.mu.Unlock()
}

func (s *Server) worker() {
	t := &workerToken{}
	defer t.release(&s.wg)
	for {
		it, ok := s.sched.Next()
		if !ok {
			return
		}
		s.runJob(it.Payload.(*Job), t)
		if t.abandoned.Load() {
			// The watchdog replaced this worker while it was wedged in an
			// engine; its pool slot belongs to the replacement now.
			return
		}
	}
}

// storeMax raises a to at least v without ever lowering it (progress
// snapshots can arrive out of store order across mc workers) and
// reports whether it raised it — i.e. whether this snapshot was real
// forward movement, which is what feeds the watchdog's liveness clock.
func storeMax(a *atomic.Int64, v int64) bool {
	for {
		cur := a.Load()
		if v <= cur {
			return false
		}
		if a.CompareAndSwap(cur, v) {
			return true
		}
	}
}

// freeSlot decrements the running gauge for j exactly once: either the
// worker (engine returned) or the watchdog (job declared stuck) gets
// there first.
func (s *Server) freeSlot(j *Job) {
	if j.slotFreed.CompareAndSwap(false, true) {
		s.running.Add(-1)
	}
}

func (s *Server) runJob(j *Job, t *workerToken) {
	defer j.cancel()
	// The registry entry outlives the job body on purpose: the success
	// path caches the body first, so by the time the key leaves the
	// registry a re-submission is guaranteed to hit the cache.
	defer s.dropInflight(j)
	// LIFO: the journal tombstone lands while the key is still in the
	// coalescing registry, so a fresh accept of the same key cannot be
	// logged before this settle and then erased by it.
	defer s.journalSettle(j)
	j.mu.Lock()
	if j.state.Terminal() { // cancelled while queued
		j.mu.Unlock()
		return
	}
	j.mu.Unlock()
	// Cluster lookup sits between the local tiers and the engine: the
	// key's ring owner may already hold the body another node computed.
	// Checked before the job is marked running — a peer hit settles it
	// as a cache hit with no engine run counted. A hit that had to come
	// from a peer means some replicas (this node included, if it is in
	// the set) were missing the body: read-repair pushes it back to
	// them off the request path.
	if body, from, ok := s.peerFetch(j); ok {
		s.settlePeerResult(j, body)
		s.readRepair(j.key, body, from)
		return
	}
	j.mu.Lock()
	if j.state.Terminal() { // cancelled during the peer lookup
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.token = t
	j.mu.Unlock()
	j.lastMove.Store(time.Now().UnixNano())

	s.running.Add(1)
	s.metrics.EngineRuns.Add(1)
	start := time.Now()
	run := engineRunFunc(s.engines[j.spec.Engine])
	if s.cfg.WrapEngine != nil {
		// The wrapper sits *inside* the panic isolation, so an injected
		// chaos panic is recovered like any engine panic.
		run = s.cfg.WrapEngine(j.spec.Engine, run)
	}
	body, err := runEngine(j.spec.Engine, run, j.ctx, j.spec, runParams{
		workers: s.cfg.TrialWorkers,
		progress: func(snap mc.Snapshot) {
			moved := storeMax(&j.completed, int64(snap.Completed))
			if storeMax(&j.failed, int64(snap.Failed)) {
				moved = true
			}
			if moved {
				j.lastMove.Store(time.Now().UnixNano())
			}
		},
	})
	s.metrics.ObserveJobSeconds(time.Since(start).Seconds(), j.class)
	s.metrics.TrialsExecuted.Add(j.completed.Load())
	s.freeSlot(j)

	var pe *PanicError
	won := false
	switch {
	case err == nil:
		// Cache before finish even if the watchdog already failed this
		// job: the body is valid deterministic work, and caching it first
		// preserves the registry-outlives-body ordering for followers.
		s.cache.Put(j.key, body)
		s.storePut(j.key, body)
		s.replicateResult(j.key, body)
		if won = j.finish(StateDone, body, ""); won {
			s.metrics.JobsCompleted.Add(1)
		}
	case errors.As(err, &pe):
		// A recovered engine panic fails this one job; the worker — and
		// the daemon — keep serving. Checked before the context, so a
		// panic racing a deadline still reports as the failure it is.
		s.metrics.EnginePanics.Add(1)
		if won = j.finish(StateFailed, nil, err.Error()); won {
			s.metrics.JobsFailed.Add(1)
		}
	case j.ctx.Err() != nil:
		// Cancelled or deadline-expired: keep the partial body so the
		// client still gets every completed trial.
		if won = j.finish(StateCancelled, body, err.Error()); won {
			s.metrics.JobsCancelled.Add(1)
		}
	default:
		if won = j.finish(StateFailed, body, err.Error()); won {
			s.metrics.JobsFailed.Add(1)
		}
	}
	_ = won // the watchdog may have settled the job first; metrics stay single-counted
	j.mu.Lock()
	j.token = nil
	j.mu.Unlock()
	s.gcJobs()
}

// gauges snapshots the point-in-time values for /metrics and /healthz.
func (s *Server) gauges() Gauges {
	hits, misses := s.cache.Stats()
	byClass := s.sched.DepthByClass()
	g := Gauges{
		JobsQueued:        s.sched.Depth(),
		QueueInteractive:  byClass[queue.ClassInteractive],
		QueueSweep:        byClass[queue.ClassSweep],
		QueueOldestAgeSec: s.sched.OldestAge(time.Now()).Seconds(),
		QueueFlows:        s.sched.Flows(),
		JobsRunning:       int(s.running.Load()),
		CacheSize:         s.cache.Len(),
		CacheHits:         hits,
		CacheMisses:       misses,
	}
	if s.store != nil {
		g.Store = s.store.Stats()
		g.StoreEnabled = true
	}
	if s.journal != nil {
		g.Journal = s.journal.Stats()
		g.JournalEnabled = true
	}
	if s.cluster != nil {
		g.Cluster = s.cluster.Snapshot()
		g.ClusterEnabled = true
	}
	if s.hints != nil {
		g.Hints = s.hints.Stats()
		g.HintsEnabled = true
	}
	return g
}

// retryAfter estimates the seconds until queue space frees up for one
// scheduling class: that class's queued backlog divided across the
// worker pool, scaled by the class's observed mean job duration (the
// overall mean before the class has finished anything, 1 s before
// anything at all has), clamped to [1, 300]. It is the Retry-After
// header on 429 responses; using per-class means keeps a saturating
// sweep's multi-minute cells from inflating interactive clients'
// backoff by two orders of magnitude.
func (s *Server) retryAfter(class queue.Class) (secs, depth, capacity int) {
	depth = s.sched.Depth()
	capacity = s.cfg.QueueDepth
	classDepth := s.sched.DepthByClass()[class]
	mean := s.metrics.MeanJobSecondsClass(class)
	if mean <= 0 {
		mean = 1
	}
	est := math.Ceil(float64(classDepth+1) / float64(s.cfg.Workers) * mean)
	secs = int(est)
	if secs < 1 {
		secs = 1
	}
	if secs > 300 {
		secs = 300
	}
	return secs, depth, capacity
}

// Drain stops accepting jobs, lets queued and running work finish, and
// returns when the pool is idle. If ctx expires first every in-flight
// job is cancelled (settling with partial results) and Drain still
// waits for the workers to exit before returning ctx's error.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		s.sched.Close()
		if s.watchStop != nil {
			// Stop the watchdog before waiting on the pool: a kill racing
			// the drain would otherwise spawn a replacement worker while
			// wg.Wait is in flight.
			close(s.watchStop)
		}
		if s.stealStop != nil {
			// Stop the steal loop too: a draining node must neither adopt
			// new work nor keep polling peers.
			close(s.stealStop)
		}
		if s.repairStop != nil {
			close(s.repairStop)
		}
	}
	s.mu.Unlock()
	if s.watchDone != nil {
		<-s.watchDone
	}
	if s.stealDone != nil {
		<-s.stealDone
	}
	if s.repairDone != nil {
		<-s.repairDone
	}
	if s.detectorOn {
		// Synchronous: after this returns no OnAlive callback can fire,
		// so no new hint-delivery goroutine can race the wg.Wait below
		// (the ones already spawned hold wg shares and drain normally).
		s.cluster.StopDetector()
	}

	idle := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for _, j := range s.jobs {
			j.cancel()
		}
		s.mu.Unlock()
		<-idle
		return ctx.Err()
	}
}
