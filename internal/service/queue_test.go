package service

import (
	"context"
	"encoding/json"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"coordattack/internal/mc"
	"coordattack/internal/queue"
)

// slowWrapper injects a fixed per-run delay, so queue order is
// observable: with a slowed single worker, whichever job pops next is
// still popping when the test looks.
func slowWrapper(d time.Duration) func(string, RunFunc) RunFunc {
	return func(name string, next RunFunc) RunFunc {
		return func(ctx context.Context, spec JobSpec, workers int, progress func(mc.Snapshot)) (json.RawMessage, error) {
			time.Sleep(d)
			return next(ctx, spec, workers, progress)
		}
	}
}

// TestFairShareInteractiveBeatsSweep is the fairness acceptance test: a
// saturating MaxSweepCells-cell sweep is queued on one slowed worker,
// then a single interactive job arrives. Under the old FIFO the
// interactive job would wait behind every cell (engine runs at its
// completion >= 257); under fair sharing the interactive flow gets
// every other pop, so it completes almost immediately.
func TestFairShareInteractiveBeatsSweep(t *testing.T) {
	s := New(Config{
		Workers:    1,
		QueueDepth: 2 * MaxSweepCells,
		WrapEngine: slowWrapper(3 * time.Millisecond),
	})
	defer drain(t, s)

	seeds := make([]uint64, MaxSweepCells)
	for i := range seeds {
		seeds[i] = uint64(1000 + i)
	}
	sw, err := s.SubmitSweep(SweepSpec{
		Base: JobSpec{Protocol: "s:0.5", Rounds: 2, Trials: 200},
		Axes: SweepAxes{Seeds: seeds},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sw.Cells != MaxSweepCells {
		t.Fatalf("sweep expanded to %d cells, want %d", sw.Cells, MaxSweepCells)
	}

	st, err := s.Submit(JobSpec{Protocol: "s:0.3", Rounds: 2, Trials: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	fin := waitState(t, s, st.ID, 30*time.Second)
	if fin.State != StateDone {
		t.Fatalf("interactive job settled %s: %s", fin.State, fin.Error)
	}
	runsAtDone := s.Metrics().EngineRuns.Load()
	swStatus, err := s.GetSweep(sw.ID)
	if err != nil {
		t.Fatal(err)
	}
	if runsAtDone >= MaxSweepCells {
		t.Fatalf("interactive job waited for %d engine runs — starved behind the sweep", runsAtDone)
	}
	if swStatus.State != StateRunning {
		t.Fatalf("sweep already %s when the interactive job finished (runs=%d)", swStatus.State, runsAtDone)
	}
	t.Logf("interactive job done after %d engine runs; sweep still running", runsAtDone)

	// The per-class gauges see the backlog while the sweep drains.
	g := s.gauges()
	if g.QueueSweep == 0 {
		t.Errorf("queue_depth{class=sweep} = 0 while the sweep is running")
	}
	if g.QueueOldestAgeSec <= 0 {
		t.Errorf("queue oldest age = %g with a non-empty backlog", g.QueueOldestAgeSec)
	}
}

// TestPriorityOrdersWithinFlow: with the single worker held by a gate
// job, a high-priority submission leapfrogs an earlier low-priority one.
func TestPriorityOrdersWithinFlow(t *testing.T) {
	block := make(chan struct{})
	var mu sync.Mutex
	var order []uint64
	s := New(Config{
		Workers:          1,
		WatchdogInterval: -1,
		WrapEngine: func(name string, next RunFunc) RunFunc {
			return func(ctx context.Context, spec JobSpec, workers int, progress func(mc.Snapshot)) (json.RawMessage, error) {
				mu.Lock()
				order = append(order, spec.Seed)
				mu.Unlock()
				if spec.Seed == 666 {
					<-block
				}
				return next(ctx, spec, workers, progress)
			}
		},
	})
	defer drain(t, s)

	gate, err := s.Submit(JobSpec{Protocol: "s:0.5", Rounds: 2, Trials: 200, Seed: 666})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the gate job holds the worker, so both later jobs are
	// pending together when the worker next pops.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := s.Get(gate.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("gate job stuck in %s", st.State)
		}
		time.Sleep(time.Millisecond)
	}
	low, err := s.Submit(JobSpec{Protocol: "s:0.5", Rounds: 2, Trials: 200, Seed: 100, Priority: -1})
	if err != nil {
		t.Fatal(err)
	}
	high, err := s.Submit(JobSpec{Protocol: "s:0.5", Rounds: 2, Trials: 200, Seed: 200, Priority: 5})
	if err != nil {
		t.Fatal(err)
	}
	close(block)
	waitState(t, s, low.ID, 10*time.Second)
	waitState(t, s, high.ID, 10*time.Second)

	mu.Lock()
	got := append([]uint64(nil), order...)
	mu.Unlock()
	want := []uint64{666, 200, 100}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("execution order %v, want %v", got, want)
	}
}

// TestPriorityExcludedFromKey: jobs differing only in priority coalesce
// onto one engine run, like TimeoutSec.
func TestPriorityExcludedFromKey(t *testing.T) {
	a, err := JobSpec{Protocol: "s:0.5", Rounds: 2, Trials: 200, Seed: 3}.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	b, err := JobSpec{Protocol: "s:0.5", Rounds: 2, Trials: 200, Seed: 3, Priority: 9}.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	if a.Key() != b.Key() {
		t.Fatal("priority changed the cache key")
	}
	if _, err := (JobSpec{Protocol: "s:0.5", Priority: 101}).Canonicalize(); err == nil {
		t.Fatal("priority 101 accepted, want out-of-range rejection")
	}
}

// TestJournalRestartReplay: jobs accepted but unfinished when the
// daemon dies un-drained are re-admitted from the journal on restart
// and each runs exactly once.
func TestJournalRestartReplay(t *testing.T) {
	qdir := filepath.Join(t.TempDir(), "queue")
	j1, err := queue.OpenJournal(qdir, queue.JournalOptions{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(j1.Close)
	block := make(chan struct{})
	s1 := New(Config{
		Workers:          1,
		Journal:          j1,
		WatchdogInterval: -1,
		WrapEngine:       stallWrapper(666, block),
	})
	// The gate job occupies the only worker; the rest stay pending —
	// accepted, journaled, never started.
	gate, err := s1.Submit(JobSpec{Protocol: "s:0.5", Rounds: 2, Trials: 200, Seed: 666})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := s1.Get(gate.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("gate job stuck in %s", st.State)
		}
		time.Sleep(time.Millisecond)
	}
	keys := make(map[string]bool)
	keys[gate.Key] = true
	for seed := uint64(1); seed <= 3; seed++ {
		st, err := s1.Submit(JobSpec{Protocol: "s:0.5", Rounds: 2, Trials: 200, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		keys[st.Key] = true
	}
	if st := j1.Stats(); st.Pending != 4 {
		t.Fatalf("journal pending = %d before crash, want 4", st.Pending)
	}
	// Simulated SIGKILL: s1 is abandoned un-drained, its journal handle
	// left open, exactly as a dead process would leave them.
	t.Cleanup(func() {
		close(block)
		drain(t, s1)
	})

	j2, err := queue.OpenJournal(qdir, queue.JournalOptions{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(j2.Close)
	if got := len(j2.Pending()); got != 4 {
		t.Fatalf("journal recovered %d pending records, want 4", got)
	}
	s2 := New(Config{Workers: 2, Journal: j2})
	defer drain(t, s2)
	if got := s2.Metrics().QueueReplayed.Load(); got != 4 {
		t.Fatalf("queue_replayed_total = %d, want 4", got)
	}
	deadline = time.Now().Add(30 * time.Second)
	for {
		jobs := s2.Jobs()
		settled := 0
		for _, st := range jobs {
			if st.State.Terminal() {
				settled++
			}
		}
		if len(jobs) == 4 && settled == 4 {
			for _, st := range jobs {
				if st.State != StateDone {
					t.Fatalf("replayed job %s settled %s: %s", st.ID, st.State, st.Error)
				}
				if !keys[st.Key] {
					t.Fatalf("replayed job %s has unknown key %s", st.ID, st.Key)
				}
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replayed jobs did not settle: %d jobs, %d settled", len(jobs), settled)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Exactly once: four distinct keys, four engine runs, no pending
	// journal entries left to resurrect.
	if runs := s2.Metrics().EngineRuns.Load(); runs != 4 {
		t.Fatalf("engine runs after replay = %d, want 4", runs)
	}
	if st := j2.Stats(); st.Pending != 0 {
		t.Fatalf("journal pending = %d after settlement, want 0", st.Pending)
	}
}
