package service

import (
	"fmt"
	"time"
)

// WatchdogError is the structured failure a stuck job settles with: the
// job was past its deadline by more than the grace period and its
// progress counters had not moved for at least as long, so the watchdog
// declared the engine wedged and killed the job.
//
// A healthy engine never meets this error — a deadline-expired engine
// that honors its context returns promptly and settles the job as
// cancelled with a partial result. The watchdog exists for the engine
// that ignores cancellation entirely (an infinite loop, a blocked
// syscall): without it, that engine's job never settles and its worker
// slot is lost until restart.
type WatchdogError struct {
	JobID    string
	Deadline time.Time
	IdleFor  time.Duration
	Grace    time.Duration
}

func (e *WatchdogError) Error() string {
	return fmt.Sprintf("service: watchdog killed stuck job %s: %s past deadline, no progress for %s (grace %s)",
		e.JobID, time.Since(e.Deadline).Round(time.Millisecond), e.IdleFor.Round(time.Millisecond), e.Grace)
}

// watchdog is the stuck-job monitor goroutine: every interval it scans
// the running jobs for one that is past its deadline with no progress
// movement for longer than the grace period, and kills what it finds.
// Started by New when Config.WatchdogInterval > 0; stopped by Drain.
func (s *Server) watchdog(interval time.Duration) {
	defer close(s.watchDone)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.watchStop:
			return
		case <-ticker.C:
			s.scanStuck(time.Now())
		}
	}
}

// scanStuck collects the currently stuck jobs and kills each one. The
// stuck predicate is deliberately conservative — both clauses must hold
// for the full grace period:
//
//   - the job is running on a worker and its deadline passed more than
//     grace ago (the context fired and the engine still has not
//     returned), and
//   - the progress counters have not advanced for more than grace (the
//     engine is not merely finishing a slow tail of trials).
func (s *Server) scanStuck(now time.Time) {
	grace := s.cfg.WatchdogGrace
	s.mu.Lock()
	var stuck []*Job
	for _, j := range s.jobs {
		j.mu.Lock()
		running := j.state == StateRunning && j.token != nil
		j.mu.Unlock()
		if !running || now.Before(j.deadline.Add(grace)) {
			continue
		}
		if now.Sub(time.Unix(0, j.lastMove.Load())) <= grace {
			continue
		}
		stuck = append(stuck, j)
	}
	s.mu.Unlock()
	for _, j := range stuck {
		s.killStuck(j, now)
	}
}

// killStuck settles a stuck job as failed with a WatchdogError, frees
// its worker slot, and restores pool capacity by abandoning the wedged
// worker goroutine and spawning a replacement. The wedged goroutine is
// left blocked in its engine: if the engine ever returns, the goroutine
// notices its abandoned token and exits instead of rejoining the pool.
func (s *Server) killStuck(j *Job, now time.Time) {
	j.mu.Lock()
	t := j.token
	j.mu.Unlock()
	werr := &WatchdogError{
		JobID:    j.id,
		Deadline: j.deadline,
		IdleFor:  now.Sub(time.Unix(0, j.lastMove.Load())),
		Grace:    s.cfg.WatchdogGrace,
	}
	if !j.finish(StateFailed, nil, werr.Error()) {
		// The engine returned between the scan and here; the worker
		// settled the job itself and nothing is stuck anymore.
		return
	}
	j.cancel()
	s.metrics.WatchdogKills.Add(1)
	s.metrics.JobsFailed.Add(1)
	s.freeSlot(j)
	s.journalSettle(j)
	s.dropInflight(j)
	if t != nil {
		t.abandoned.Store(true)
		s.mu.Lock()
		if !s.draining {
			// Replace the wedged worker so the pool keeps its capacity.
			// In the rare race where the engine returned just after the
			// scan, the "wedged" worker sees the abandoned flag too late
			// and keeps looping shareless until drain — a brief +1 of
			// capacity, never a loss.
			s.wg.Add(1)
			go s.worker()
		}
		s.mu.Unlock()
		t.release(&s.wg)
	}
	s.gcJobs()
}
