package service

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"coordattack/internal/store"
)

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestRestartServesFromStore is the durability acceptance check: a
// result computed before a "crash" (server torn down, new server booted
// over the same store directory) is served as a cache hit, byte for
// byte, with zero engine runs on the new server.
func TestRestartServesFromStore(t *testing.T) {
	dir := t.TempDir()
	spec := JobSpec{Protocol: "s:0.3", Trials: 2000, Seed: 21}

	s1 := New(Config{Workers: 2, Store: openStore(t, dir)})
	st, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	fin := waitState(t, s1, st.ID, 10*time.Second)
	if fin.State != StateDone {
		t.Fatalf("job ended %s: %s", fin.State, fin.Error)
	}
	drain(t, s1)

	// The restart: a fresh process would reopen the same directory.
	s2 := New(Config{Workers: 2, Store: openStore(t, dir)})
	defer drain(t, s2)
	hit, err := s2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if hit.State != StateDone || !hit.Cached {
		t.Fatalf("post-restart submission state %s cached=%v, want done from store", hit.State, hit.Cached)
	}
	if !bytes.Equal(hit.Result, fin.Result) {
		t.Errorf("post-restart result not byte-identical:\n%s\nvs\n%s", hit.Result, fin.Result)
	}
	if runs := s2.Metrics().EngineRuns.Load(); runs != 0 {
		t.Errorf("engine runs after restart = %d, want 0", runs)
	}
	// The disk hit was promoted into the memory LRU: a third submission
	// is a plain memory hit.
	again, err := s2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || !bytes.Equal(again.Result, fin.Result) {
		t.Error("promoted entry not served from the memory tier")
	}
	if hits, _ := s2.CacheStats(); hits != 1 {
		t.Errorf("memory cache hits = %d, want 1 (the promoted re-hit)", hits)
	}
}

// TestCorruptStoreEntryQuarantinedAndRecomputed flips one byte of the
// persisted entry: the restarted server must quarantine it, miss
// cleanly, recompute — and land on the identical bytes, because results
// are deterministic in the canonical spec.
func TestCorruptStoreEntryQuarantinedAndRecomputed(t *testing.T) {
	dir := t.TempDir()
	spec := JobSpec{Protocol: "s:0.25", Trials: 1500, Seed: 33}

	s1 := New(Config{Workers: 1, Store: openStore(t, dir)})
	st, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	fin := waitState(t, s1, st.ID, 10*time.Second)
	if fin.State != StateDone {
		t.Fatalf("job ended %s: %s", fin.State, fin.Error)
	}
	drain(t, s1)

	// Flip a byte in the middle of the stored body.
	path := filepath.Join(dir, fin.Key[:2], fin.Key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := New(Config{Workers: 1, Store: openStore(t, dir)})
	defer drain(t, s2)
	st2, err := s2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Cached {
		t.Fatal("corrupt entry served as a cache hit")
	}
	fin2 := waitState(t, s2, st2.ID, 10*time.Second)
	if fin2.State != StateDone {
		t.Fatalf("recompute ended %s: %s", fin2.State, fin2.Error)
	}
	if !bytes.Equal(fin2.Result, fin.Result) {
		t.Error("recomputed result differs from the pre-corruption body")
	}
	if runs := s2.Metrics().EngineRuns.Load(); runs != 1 {
		t.Errorf("engine runs = %d, want exactly the one recompute", runs)
	}
	if q := s2.gauges().Store.Quarantined; q != 1 {
		t.Errorf("quarantined = %d, want 1", q)
	}
	if _, err := os.Stat(filepath.Join(dir, "quarantine", fin.Key)); err != nil {
		t.Errorf("corrupt entry not preserved in quarantine: %v", err)
	}
}

// panicEngine panics on a marked spec and delegates otherwise, so one
// test server can run poisoned and healthy jobs side by side.
type panicEngine struct {
	inner engine
}

const panicSeed = 666

func (p panicEngine) run(ctx context.Context, spec JobSpec, rp runParams) (json.RawMessage, error) {
	if spec.Seed == panicSeed {
		panic("injected engine fault")
	}
	return p.inner.run(ctx, spec, rp)
}

// TestWorkerPanicFailsOnlyThatJob injects a panicking engine run and
// checks the blast radius: the poisoned job settles as failed with a
// structured panic error, and the same worker goes on to complete a
// healthy job — the daemon never stops serving.
func TestWorkerPanicFailsOnlyThatJob(t *testing.T) {
	s := New(Config{Workers: 1})
	defer drain(t, s)
	s.engines[EngineMC] = panicEngine{inner: mcEngine{}}

	bad, err := s.Submit(JobSpec{Protocol: "s:0.3", Trials: 500, Seed: panicSeed})
	if err != nil {
		t.Fatal(err)
	}
	good, err := s.Submit(JobSpec{Protocol: "s:0.3", Trials: 500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}

	finBad := waitState(t, s, bad.ID, 10*time.Second)
	if finBad.State != StateFailed {
		t.Fatalf("poisoned job state %s, want failed", finBad.State)
	}
	if !strings.Contains(finBad.Error, "panicked") || !strings.Contains(finBad.Error, "injected engine fault") {
		t.Errorf("poisoned job error %q does not describe the panic", finBad.Error)
	}
	if finBad.Result != nil {
		t.Error("poisoned job carried a result body")
	}

	finGood := waitState(t, s, good.ID, 10*time.Second)
	if finGood.State != StateDone {
		t.Fatalf("healthy job after panic ended %s: %s", finGood.State, finGood.Error)
	}
	if n := s.Metrics().EnginePanics.Load(); n != 1 {
		t.Errorf("engine panics = %d, want 1", n)
	}
	// Failed bodies never reach either cache tier.
	if _, ok := s.cache.Get(finBad.Key); ok {
		t.Error("panicked job entered the memory cache")
	}
}

// TestStoreWriteFailureDegradesToMemoryOnly breaks the store directory
// under a live server: the next completed job must still be served and
// memoized in memory, with the store demoted (gauge flipped) instead of
// the job failing.
func TestStoreWriteFailureDegradesToMemoryOnly(t *testing.T) {
	parent := t.TempDir()
	dir := filepath.Join(parent, "store")
	s := New(Config{Workers: 1, Store: openStore(t, dir)})
	defer drain(t, s)

	// Break the disk out from under the daemon.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir, []byte("disk gone"), 0o644); err != nil {
		t.Fatal(err)
	}

	spec := JobSpec{Protocol: "s:0.3", Trials: 800, Seed: 5}
	st, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	fin := waitState(t, s, st.ID, 10*time.Second)
	if fin.State != StateDone {
		t.Fatalf("job on broken store ended %s: %s", fin.State, fin.Error)
	}
	if !s.gauges().Store.Degraded {
		t.Error("store not reported degraded after write failure")
	}
	// Memory tier still memoizes.
	again, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || !bytes.Equal(again.Result, fin.Result) {
		t.Error("memory-only memoization broken after store degradation")
	}
}
