package run

import (
	"fmt"
	"math/bits"

	"coordattack/internal/graph"
)

// Set is a flat bitset representation of a run over a fixed universe of
// m processes and n rounds: one bit per possible input (v₀, i, 0) and one
// bit per possible delivery tuple (from, to, round). It answers the same
// questions as *Run — HasInput, Delivered — in O(1) with zero allocation,
// which is what the fast trial engines execute against; *Run stays the
// canonical, graph-agnostic representation for everything else.
//
// Delivery (from, to, round) lives at bit
//
//	((round-1)·m + (from-1))·m + (to-1)
//
// so ascending bit order is exactly the canonical (round, from, to) order
// used by Run.Deliveries, Key, and Format — converting Set → Run → Set is
// the identity, which FuzzRunSetRoundTrip pins.
//
// A Set is not safe for concurrent mutation. Engines treat a loaded Set
// as frozen, exactly like a *Run handed to an engine.
type Set struct {
	n, m   int
	inputs []uint64 // bit i-1 set ⇔ (v₀, i, 0) ∈ I(R)
	msgs   []uint64 // delivery bitset, indexed as above
}

// NewSet returns an empty set over n ≥ 1 rounds and m ≥ 1 processes.
func NewSet(n, m int) (*Set, error) {
	s := &Set{}
	if err := s.Reset(n, m); err != nil {
		return nil, err
	}
	return s, nil
}

// MustNewSet is NewSet but panics on error, for tests and literals.
func MustNewSet(n, m int) *Set {
	s, err := NewSet(n, m)
	if err != nil {
		panic(err)
	}
	return s
}

// Reset clears the set and re-dimensions it for n rounds and m processes,
// reusing the backing arrays when they are large enough. This is the
// pool-recycle entry point: one Set serves many (n, m) shapes.
func (s *Set) Reset(n, m int) error {
	if n < 1 {
		return fmt.Errorf("run: set needs N ≥ 1, got %d", n)
	}
	if m < 1 {
		return fmt.Errorf("run: set needs m ≥ 1, got %d", m)
	}
	s.n, s.m = n, m
	s.inputs = resizeCleared(s.inputs, (m+63)/64)
	s.msgs = resizeCleared(s.msgs, (n*m*m+63)/64)
	return nil
}

func resizeCleared(w []uint64, words int) []uint64 {
	if cap(w) < words {
		return make([]uint64, words)
	}
	w = w[:words]
	for i := range w {
		w[i] = 0
	}
	return w
}

// N reports the number of rounds.
func (s *Set) N() int { return s.n }

// M reports the process universe size.
func (s *Set) M() int { return s.m }

func (s *Set) deliveryBit(from, to graph.ProcID, round int) (word int, mask uint64, ok bool) {
	if round < 1 || round > s.n || from < 1 || int(from) > s.m || to < 1 || int(to) > s.m {
		return 0, 0, false
	}
	idx := ((round-1)*s.m+int(from-1))*s.m + int(to-1)
	return idx >> 6, 1 << uint(idx&63), true
}

// AddInput records (v₀, i, 0) ∈ I(R). i must be in 1..m.
func (s *Set) AddInput(i graph.ProcID) error {
	if i < 1 || int(i) > s.m {
		return fmt.Errorf("run: set input %d outside 1..%d", i, s.m)
	}
	s.inputs[(i-1)>>6] |= 1 << uint((i-1)&63)
	return nil
}

// HasInput reports whether (v₀, i, 0) ∈ I(R).
func (s *Set) HasInput(i graph.ProcID) bool {
	if i < 1 || int(i) > s.m {
		return false
	}
	return s.inputs[(i-1)>>6]&(1<<uint((i-1)&63)) != 0
}

// AnyInput reports whether I(R) is nonempty.
func (s *Set) AnyInput() bool {
	for _, w := range s.inputs {
		if w != 0 {
			return true
		}
	}
	return false
}

// Deliver records (from, to, round) ∈ M(R), with the same constraints as
// Run.Deliver plus the universe bound from, to ≤ m.
func (s *Set) Deliver(from, to graph.ProcID, round int) error {
	if from == to {
		return fmt.Errorf("run: self-delivery at process %d", from)
	}
	word, mask, ok := s.deliveryBit(from, to, round)
	if !ok {
		return fmt.Errorf("run: delivery (%d,%d,%d) outside set universe N=%d m=%d",
			from, to, round, s.n, s.m)
	}
	s.msgs[word] |= mask
	return nil
}

// Delivered reports whether (from, to, round) ∈ M(R). Out-of-universe
// tuples are simply absent, matching Run.Delivered.
func (s *Set) Delivered(from, to graph.ProcID, round int) bool {
	word, mask, ok := s.deliveryBit(from, to, round)
	return ok && s.msgs[word]&mask != 0
}

// NumDeliveries reports |M(R)|.
func (s *Set) NumDeliveries() int {
	total := 0
	for _, w := range s.msgs {
		total += bits.OnesCount64(w)
	}
	return total
}

// LoadRun clears the set and loads r into the universe of m processes.
// It fails if any input or delivery endpoint falls outside 1..m — *Run
// does not bound process IDs, so the caller names the universe (normally
// the graph's vertex count).
func (s *Set) LoadRun(r *Run, m int) error {
	if err := s.Reset(r.n, m); err != nil {
		return err
	}
	for i := range r.inputs {
		if err := s.AddInput(i); err != nil {
			return err
		}
	}
	for d := range r.msgs {
		if err := s.Deliver(d.From, d.To, d.Round); err != nil {
			return err
		}
	}
	return nil
}

// Run converts the set back to the canonical representation. The result
// Equal()s — and has the same Key and Format as — any run the set was
// loaded from within the same universe.
func (s *Set) Run() *Run {
	r := MustNew(s.n)
	for i := 1; i <= s.m; i++ {
		if s.HasInput(graph.ProcID(i)) {
			r.AddInput(graph.ProcID(i))
		}
	}
	s.ForEachDelivery(func(d Delivery) {
		r.msgs[d] = true
	})
	return r
}

// ForEachDelivery calls f for every delivery in canonical (round, from,
// to) order, allocating nothing. It word-skips empty regions, so sparse
// sets iterate in time proportional to the population count.
func (s *Set) ForEachDelivery(f func(Delivery)) {
	m := s.m
	for wi, w := range s.msgs {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			w &= w - 1
			idx := wi<<6 + bit
			to := idx % m
			rest := idx / m
			f(Delivery{
				From:  graph.ProcID(rest%m + 1),
				To:    graph.ProcID(to + 1),
				Round: rest/m + 1,
			})
		}
	}
}

// Equal reports whether two sets describe the same run over the same
// universe.
func (s *Set) Equal(o *Set) bool {
	if o == nil || s.n != o.n || s.m != o.m {
		return false
	}
	for i := range s.inputs {
		if s.inputs[i] != o.inputs[i] {
			return false
		}
	}
	for i := range s.msgs {
		if s.msgs[i] != o.msgs[i] {
			return false
		}
	}
	return true
}
