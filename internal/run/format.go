package run

import (
	"fmt"
	"strconv"
	"strings"

	"coordattack/internal/graph"
)

// Format serializes the run compactly and losslessly:
//
//	N=<n>;I=<i1,i2,...>;M=<f>t<t>r<r>,...
//
// for example "N=3;I=1,2;M=1t2r1,2t1r3". Parse inverts it. The format is
// stable and used by the CLIs to pass explicit runs on the command line.
func Format(r *Run) string {
	var b strings.Builder
	fmt.Fprintf(&b, "N=%d;I=", r.N())
	for idx, i := range r.Inputs() {
		if idx > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", i)
	}
	b.WriteString(";M=")
	for idx, d := range r.Deliveries() {
		if idx > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%dt%dr%d", d.From, d.To, d.Round)
	}
	return b.String()
}

// Parse inverts Format.
func Parse(s string) (*Run, error) {
	parts := strings.Split(s, ";")
	if len(parts) != 3 {
		return nil, fmt.Errorf("run: parse %q: want 3 ';'-separated sections, got %d", s, len(parts))
	}
	nPart, ok := strings.CutPrefix(parts[0], "N=")
	if !ok {
		return nil, fmt.Errorf("run: parse %q: first section must be N=<n>", s)
	}
	n, err := strconv.Atoi(nPart)
	if err != nil {
		return nil, fmt.Errorf("run: parse N: %w", err)
	}
	r, err := New(n)
	if err != nil {
		return nil, err
	}
	iPart, ok := strings.CutPrefix(parts[1], "I=")
	if !ok {
		return nil, fmt.Errorf("run: parse %q: second section must be I=<list>", s)
	}
	if iPart != "" {
		for _, tok := range strings.Split(iPart, ",") {
			v, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("run: parse input %q: %w", tok, err)
			}
			if v < 1 {
				return nil, fmt.Errorf("run: input process %d must be ≥ 1", v)
			}
			r.AddInput(graph.ProcID(v))
		}
	}
	mPart, ok := strings.CutPrefix(parts[2], "M=")
	if !ok {
		return nil, fmt.Errorf("run: parse %q: third section must be M=<list>", s)
	}
	if mPart != "" {
		for _, tok := range strings.Split(mPart, ",") {
			d, err := parseDelivery(tok)
			if err != nil {
				return nil, err
			}
			if err := r.Deliver(d.From, d.To, d.Round); err != nil {
				return nil, fmt.Errorf("run: parse delivery %q: %w", tok, err)
			}
		}
	}
	return r, nil
}

func parseDelivery(tok string) (Delivery, error) {
	fromPart, rest, ok := strings.Cut(tok, "t")
	if !ok {
		return Delivery{}, fmt.Errorf("run: delivery %q: want <f>t<t>r<r>", tok)
	}
	toPart, roundPart, ok := strings.Cut(rest, "r")
	if !ok {
		return Delivery{}, fmt.Errorf("run: delivery %q: want <f>t<t>r<r>", tok)
	}
	from, err := strconv.Atoi(fromPart)
	if err != nil {
		return Delivery{}, fmt.Errorf("run: delivery sender %q: %w", fromPart, err)
	}
	to, err := strconv.Atoi(toPart)
	if err != nil {
		return Delivery{}, fmt.Errorf("run: delivery receiver %q: %w", toPart, err)
	}
	round, err := strconv.Atoi(roundPart)
	if err != nil {
		return Delivery{}, fmt.Errorf("run: delivery round %q: %w", roundPart, err)
	}
	return Delivery{From: graph.ProcID(from), To: graph.ProcID(to), Round: round}, nil
}
