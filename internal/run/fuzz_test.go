package run

import (
	"strings"
	"testing"

	"coordattack/internal/graph"
)

// FuzzParse checks that Parse never panics and that every successfully
// parsed run survives a Format/Parse round trip.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"N=3;I=1,2;M=1t2r1,2t1r3",
		"N=1;I=;M=",
		"N=10;I=5;M=1t2r10",
		"N=3;I=1;M=1t2r1,1t2r1", // duplicate tuple: set semantics
		"N=;I=;M=",
		"N=3;I=1,2",
		"garbage",
		"N=3;I=-1;M=",
		"N=3;I=1;M=0t2r1",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		r, err := Parse(s)
		if err != nil {
			return
		}
		back, err := Parse(Format(r))
		if err != nil {
			t.Fatalf("re-parse of formatted run failed: %v (input %q)", err, s)
		}
		if !back.Equal(r) {
			t.Fatalf("format/parse round trip changed run (input %q)", s)
		}
	})
}

// FuzzKeyEqualConsistency checks that Key collisions imply equality for
// runs built from fuzzer-shaped tuples.
func FuzzKeyEqualConsistency(f *testing.F) {
	f.Add(uint8(3), uint8(1), uint8(2), uint8(1), uint8(2), uint8(1), uint8(3))
	f.Fuzz(func(t *testing.T, n, i1, f1, t1, r1, f2, r2 uint8) {
		rounds := int(n%6) + 1
		a := MustNew(rounds)
		b := MustNew(rounds)
		if i1 > 0 {
			a.AddInput(graph.ProcID(i1%8) + 1)
			b.AddInput(graph.ProcID(i1%8) + 1)
		}
		addDelivery(a, f1, t1, r1, rounds)
		addDelivery(b, f1, t1, r1, rounds)
		addDelivery(a, f2, f1, r2, rounds)
		if (a.Key() == b.Key()) != a.Equal(b) {
			t.Fatalf("Key/Equal inconsistent:\na=%v\nb=%v", a, b)
		}
		if strings.Contains(a.Key(), "\n") {
			t.Fatal("key contains newline")
		}
	})
}

func addDelivery(r *Run, from, to, round uint8, n int) {
	f := graph.ProcID(from%8) + 1
	tt := graph.ProcID(to%8) + 1
	rr := int(round%uint8(n)) + 1
	if f == tt {
		return
	}
	r.MustDeliver(f, tt, rr)
}
