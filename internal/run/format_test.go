package run

import (
	"testing"
	"testing/quick"

	"coordattack/internal/graph"
	"coordattack/internal/rng"
)

func TestFormatParseRoundTrip(t *testing.T) {
	r := MustNew(3)
	r.AddInput(2).AddInput(1)
	r.MustDeliver(1, 2, 1).MustDeliver(2, 1, 3)
	s := Format(r)
	if want := "N=3;I=1,2;M=1t2r1,2t1r3"; s != want {
		t.Errorf("Format = %q, want %q", s, want)
	}
	back, err := Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(r) {
		t.Errorf("round trip lost data: %v vs %v", back, r)
	}
}

func TestFormatEmptyRun(t *testing.T) {
	r := MustNew(2)
	s := Format(r)
	if want := "N=2;I=;M="; s != want {
		t.Errorf("Format = %q, want %q", s, want)
	}
	back, err := Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(r) {
		t.Error("empty round trip failed")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	bad := []string{
		"",
		"N=3",
		"N=3;I=1",
		"N=x;I=;M=",
		"X=3;I=;M=",
		"N=3;J=;M=",
		"N=3;I=;X=",
		"N=0;I=;M=",
		"N=3;I=a;M=",
		"N=3;I=0;M=",
		"N=3;I=;M=1t2",
		"N=3;I=;M=1-2r1",
		"N=3;I=;M=at2r1",
		"N=3;I=;M=1tbr1",
		"N=3;I=;M=1t2rc",
		"N=3;I=;M=1t2r9", // round out of range
		"N=3;I=;M=1t1r1", // self delivery
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded", s)
		}
	}
}

func TestQuickFormatParseIdentity(t *testing.T) {
	g, err := graph.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64) bool {
		r, err := RandomSubset(g, 4, rng.NewTape(seed))
		if err != nil {
			return false
		}
		back, err := Parse(Format(r))
		return err == nil && back.Equal(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
