package run_test

import (
	"testing"

	"coordattack/internal/causality"
	"coordattack/internal/graph"
	"coordattack/internal/run"
)

// FuzzRunSetRoundTrip drives the bitset representation with arbitrary
// delivery/input tuples and checks that Set ↔ *run.Run conversion is
// lossless: the round-tripped run has identical Format and Key, and the
// flows-to relation — the semantic content a run carries — answers the
// same on both. The fuzzer owns the shape (N, m, tuple stream), so any
// indexing bug in the bit layout shows up as a corrupted round trip.
func FuzzRunSetRoundTrip(f *testing.F) {
	f.Add(uint8(3), uint8(4), []byte{1, 2, 1, 0, 2, 1, 3, 1, 3, 4, 2, 0})
	f.Add(uint8(1), uint8(2), []byte{})
	f.Add(uint8(6), uint8(8), []byte{7, 8, 6, 1, 8, 7, 1, 0, 1, 8, 3, 1})
	f.Fuzz(func(t *testing.T, nRaw, mRaw uint8, tuples []byte) {
		n := int(nRaw%8) + 1
		m := int(mRaw%10) + 1
		r := run.MustNew(n)
		for len(tuples) >= 4 {
			from := graph.ProcID(int(tuples[0])%m) + 1
			to := graph.ProcID(int(tuples[1])%m) + 1
			round := int(tuples[2])%n + 1
			if tuples[3]&1 == 1 {
				r.AddInput(graph.ProcID(int(tuples[3])%m) + 1)
			}
			if from != to {
				r.MustDeliver(from, to, round)
			}
			tuples = tuples[4:]
		}

		s := run.MustNewSet(n, m)
		if err := s.LoadRun(r, m); err != nil {
			t.Fatalf("LoadRun rejected an in-universe run: %v", err)
		}
		back := s.Run()
		if !back.Equal(r) {
			t.Fatalf("round trip changed run:\n  in  %v\n  out %v", r, back)
		}
		if back.Key() != r.Key() {
			t.Fatalf("round trip changed Key:\n  in  %q\n  out %q", r.Key(), back.Key())
		}
		if run.Format(back) != run.Format(r) {
			t.Fatalf("round trip changed Format:\n  in  %q\n  out %q", run.Format(r), run.Format(back))
		}

		// The flows-to relation must agree tuple for tuple. Keep the probe
		// grid small: flows-to is cubic-ish and the fuzzer runs this body
		// thousands of times.
		for i := graph.ProcID(1); int(i) <= m && i <= 3; i++ {
			for j := graph.ProcID(1); int(j) <= m && j <= 3; j++ {
				for s0 := 0; s0 <= n && s0 <= 2; s0++ {
					if causality.FlowsTo(r, m, i, s0, j, n) != causality.FlowsTo(back, m, i, s0, j, n) {
						t.Fatalf("FlowsTo(%d@%d → %d@%d) differs after round trip on %v", i, s0, j, n, r)
					}
				}
			}
		}

		// Loading the round-tripped run reproduces the identical bitset.
		s2 := run.MustNewSet(n, m)
		if err := s2.LoadRun(back, m); err != nil {
			t.Fatal(err)
		}
		if !s.Equal(s2) {
			t.Fatal("re-loading the round-tripped run produced a different bitset")
		}
	})
}
