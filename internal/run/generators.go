package run

import (
	"fmt"

	"coordattack/internal/graph"
	"coordattack/internal/rng"
)

// Good returns the fully reliable run R_g on graph g: the given processes
// receive inputs and every message on every edge in both directions is
// delivered in every round 1..n. This is the run on which Protocol A
// attains liveness 1 (§3).
func Good(g *graph.G, n int, inputs ...graph.ProcID) (*Run, error) {
	r, err := New(n)
	if err != nil {
		return nil, err
	}
	for _, i := range inputs {
		if i < 1 || int(i) > g.NumVertices() {
			return nil, fmt.Errorf("run: input process %d not in graph with m=%d", i, g.NumVertices())
		}
		r.AddInput(i)
	}
	for _, e := range g.Edges() {
		for round := 1; round <= n; round++ {
			if err := r.Deliver(e.A, e.B, round); err != nil {
				return nil, err
			}
			if err := r.Deliver(e.B, e.A, round); err != nil {
				return nil, err
			}
		}
	}
	return r, nil
}

// AllInputs returns every vertex of g, for use as Good's input list when
// every general receives the attack signal.
func AllInputs(g *graph.G) []graph.ProcID { return g.Vertices() }

// Silent returns the run with the given inputs and no deliveries at all.
// With no inputs it is the run on which validity forces silence.
func Silent(n int, inputs ...graph.ProcID) (*Run, error) {
	r, err := New(n)
	if err != nil {
		return nil, err
	}
	for _, i := range inputs {
		r.AddInput(i)
	}
	return r, nil
}

// CutAt returns a copy of r with every delivery in rounds ≥ round removed:
// the "links all crash at round" pattern that is the worst case for
// Protocol A (the adversary guessing rfire is exactly CutAt(good, rfire)).
func CutAt(r *Run, round int) *Run {
	return r.Restrict(func(d Delivery) bool { return d.Round < round })
}

// Prefix returns a copy of r keeping only deliveries in rounds ≤ k.
// Prefix(r, n) is r itself; Prefix(r, 0) removes all deliveries.
func Prefix(r *Run, k int) *Run {
	return r.Restrict(func(d Delivery) bool { return d.Round <= k })
}

// DropLink returns a copy of r with all deliveries between a and b (both
// directions, all rounds) removed.
func DropLink(r *Run, a, b graph.ProcID) *Run {
	return r.Restrict(func(d Delivery) bool {
		return !(d.From == a && d.To == b) && !(d.From == b && d.To == a)
	})
}

// Isolate returns a copy of r with every delivery into or out of process
// i removed (inputs untouched). Isolate(R, 1) ∪ {(v₀,1,0)} is the run
// family of Lemma A.5, in which process 1 is causally independent of
// everyone else.
func Isolate(r *Run, i graph.ProcID) *Run {
	return r.Restrict(func(d Delivery) bool {
		return d.From != i && d.To != i
	})
}

// Tree returns the run of Lemma A.6: input only at root, and for every
// round 1..n exactly the down-tree deliveries parent→child of a BFS
// spanning tree rooted at root. On this run ML(R) = 1: every process hears
// the input and hears from the root, but the root never hears back.
func Tree(g *graph.G, n int, root graph.ProcID) (*Run, error) {
	if g.Eccentricity(root) > n {
		return nil, fmt.Errorf("run: tree run needs height ≤ N; eccentricity(%d)=%d > N=%d",
			root, g.Eccentricity(root), n)
	}
	parent, err := g.SpanningTree(root)
	if err != nil {
		return nil, fmt.Errorf("run: building tree run: %w", err)
	}
	r, err := New(n)
	if err != nil {
		return nil, err
	}
	r.AddInput(root)
	for child, p := range parent {
		if p == graph.Env {
			continue
		}
		for round := 1; round <= n; round++ {
			if err := r.Deliver(p, child, round); err != nil {
				return nil, err
			}
		}
	}
	return r, nil
}

// RandomLoss returns a run drawn from the weak adversary of §8: starting
// from the given inputs, each directed (edge, round) message is delivered
// independently with probability 1-p, using tape for randomness.
func RandomLoss(g *graph.G, n int, p float64, tape *rng.Tape, inputs ...graph.ProcID) (*Run, error) {
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("run: loss probability %v outside [0,1]", p)
	}
	r, err := Silent(n, inputs...)
	if err != nil {
		return nil, err
	}
	for _, e := range g.Edges() {
		for round := 1; round <= n; round++ {
			for _, dir := range [2][2]graph.ProcID{{e.A, e.B}, {e.B, e.A}} {
				lost, err := tape.Bernoulli(p)
				if err != nil {
					return nil, err
				}
				if !lost {
					if err := r.Deliver(dir[0], dir[1], round); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return r, nil
}

// RandomSubset returns a uniformly random run: each input present with
// probability half and each directed (edge, round) delivery present with
// probability half. Used by property tests to sample the adversary's
// entire run space.
func RandomSubset(g *graph.G, n int, tape *rng.Tape) (*Run, error) {
	r, err := New(n)
	if err != nil {
		return nil, err
	}
	for _, v := range g.Vertices() {
		b, err := tape.Bit()
		if err != nil {
			return nil, err
		}
		if b == 1 {
			r.AddInput(v)
		}
	}
	for _, e := range g.Edges() {
		for round := 1; round <= n; round++ {
			for _, dir := range [2][2]graph.ProcID{{e.A, e.B}, {e.B, e.A}} {
				b, err := tape.Bit()
				if err != nil {
					return nil, err
				}
				if b == 1 {
					if err := r.Deliver(dir[0], dir[1], round); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return r, nil
}

// slots lists every possible directed delivery tuple for g over n rounds,
// in canonical order.
func slots(g *graph.G, n int) []Delivery {
	es := g.Edges()
	out := make([]Delivery, 0, 2*len(es)*n)
	for round := 1; round <= n; round++ {
		for _, e := range es {
			out = append(out, Delivery{From: e.A, To: e.B, Round: round})
			out = append(out, Delivery{From: e.B, To: e.A, Round: round})
		}
	}
	return out
}

// Slots returns every possible directed delivery tuple for g over n
// rounds, in canonical (round, from, to) order. The strong adversary's run
// space is exactly the power set of these tuples crossed with input sets.
func Slots(g *graph.G, n int) []Delivery { return slots(g, n) }

// MaxEnumeration bounds the run-space size Enumerate will walk; beyond
// roughly 2^22 runs exhaustive search stops being a test-time tool.
const MaxEnumeration = 1 << 22

// Enumerate calls visit for every run of g over n rounds whose input set
// is drawn from inputSets (pass nil for "all subsets of vertices"). It
// returns an error if the space exceeds MaxEnumeration runs or visit
// returns an error; visit may return ErrStopEnumeration to end early.
func Enumerate(g *graph.G, n int, inputSets [][]graph.ProcID, visit func(*Run) error) error {
	sl := slots(g, n)
	if len(sl) > 21 {
		return fmt.Errorf("run: enumeration over %d delivery slots (>21) is infeasible", len(sl))
	}
	if inputSets == nil {
		m := g.NumVertices()
		if m > 8 {
			return fmt.Errorf("run: enumeration over all input subsets needs m ≤ 8, got %d", m)
		}
		for mask := 0; mask < 1<<uint(m); mask++ {
			var set []graph.ProcID
			for i := 0; i < m; i++ {
				if mask&(1<<uint(i)) != 0 {
					set = append(set, graph.ProcID(i+1))
				}
			}
			inputSets = append(inputSets, set)
		}
	}
	total := uint64(len(inputSets)) << uint(len(sl))
	if total > MaxEnumeration {
		return fmt.Errorf("run: enumeration of %d runs exceeds limit %d", total, MaxEnumeration)
	}
	for _, inputs := range inputSets {
		for mask := uint64(0); mask < 1<<uint(len(sl)); mask++ {
			r := MustNew(n)
			for _, i := range inputs {
				r.AddInput(i)
			}
			for b, d := range sl {
				if mask&(1<<uint(b)) != 0 {
					r.msgs[d] = true
				}
			}
			if err := visit(r); err != nil {
				if err == ErrStopEnumeration {
					return nil
				}
				return err
			}
		}
	}
	return nil
}

// ErrStopEnumeration may be returned by an Enumerate visitor to end the
// walk early without error.
var ErrStopEnumeration = fmt.Errorf("run: stop enumeration")
