package run

import (
	"fmt"
	"strings"
)

// PrefixKey is a canonical identity for a truncated run, used as the
// memoization key for level-table caches: two (run, cutoff) pairs share a
// key exactly when Prefix(r, k) would produce Equal runs. The string form
// keeps keys comparable and printable in cache statistics.
type PrefixKey string

// PrefixKey returns the key identifying Prefix(r, k) — the run with only
// deliveries in rounds ≤ k — without materializing the truncated run.
// PrefixKey(r.N()) identifies r itself. Sweep grids evaluating the same
// run prefix under many protocol parameters collide on this key, which is
// where the level-table memo earns its keep.
func (r *Run) PrefixKey(k int) PrefixKey {
	if k > r.n {
		k = r.n
	}
	var b strings.Builder
	fmt.Fprintf(&b, "N=%d|I=", r.n)
	for _, i := range r.Inputs() {
		fmt.Fprintf(&b, "%d,", i)
	}
	b.WriteString("|M=")
	for _, d := range r.Deliveries() {
		if d.Round <= k {
			fmt.Fprintf(&b, "%d>%d@%d,", d.From, d.To, d.Round)
		}
	}
	return PrefixKey(b.String())
}
