// Package run implements the paper's runs: R = I(R) ∪ M(R) (§2).
//
// A run is pure data — which processes receive the "try to attack" input
// at round 0, and which (sender, receiver, round) messages are delivered
// during rounds 1..N. Execution engines consume runs; adversaries are
// searches over or distributions on runs; every probability in the paper
// is conditioned on a run. Keeping runs first-class makes clipping,
// enumeration, minimization, and worst-case search direct.
package run

import (
	"fmt"
	"sort"
	"strings"

	"coordattack/internal/graph"
)

// Delivery is a tuple (from, to, round) ∈ M(R): the message sent by from
// to to in the given round is delivered. Rounds are 1..N.
type Delivery struct {
	From  graph.ProcID
	To    graph.ProcID
	Round int
}

func (d Delivery) String() string {
	return fmt.Sprintf("(%d,%d,%d)", d.From, d.To, d.Round)
}

// Run is one run R over N protocol rounds. The zero value is unusable;
// construct with New. Mutating methods return the receiver for chaining.
// A Run is not safe for concurrent mutation; treat it as frozen once it is
// handed to an engine or experiment.
type Run struct {
	n      int
	inputs map[graph.ProcID]bool
	msgs   map[Delivery]bool
}

// New returns an empty run (no inputs, no deliveries) over n ≥ 1 rounds.
func New(n int) (*Run, error) {
	if n < 1 {
		return nil, fmt.Errorf("run: need N ≥ 1, got %d", n)
	}
	return &Run{
		n:      n,
		inputs: make(map[graph.ProcID]bool),
		msgs:   make(map[Delivery]bool),
	}, nil
}

// MustNew is New but panics on error, for literals in tests and examples.
func MustNew(n int) *Run {
	r, err := New(n)
	if err != nil {
		panic(err)
	}
	return r
}

// N reports the number of protocol rounds.
func (r *Run) N() int { return r.n }

// AddInput records that process i receives the input signal: the tuple
// (v₀, i, 0) ∈ I(R). Adding an existing input is a no-op.
func (r *Run) AddInput(i graph.ProcID) *Run {
	r.inputs[i] = true
	return r
}

// RemoveInput deletes (v₀, i, 0) from I(R).
func (r *Run) RemoveInput(i graph.ProcID) *Run {
	delete(r.inputs, i)
	return r
}

// HasInput reports whether (v₀, i, 0) ∈ I(R).
func (r *Run) HasInput(i graph.ProcID) bool { return r.inputs[i] }

// AnyInput reports whether I(R) is nonempty. Validity constrains exactly
// the runs for which this is false.
func (r *Run) AnyInput() bool { return len(r.inputs) > 0 }

// Inputs returns the processes with inputs, sorted ascending.
func (r *Run) Inputs() []graph.ProcID {
	out := make([]graph.ProcID, 0, len(r.inputs))
	for i := range r.inputs {
		out = append(out, i)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Deliver records that the message from→to in the given round is
// delivered. Returns an error if the round is outside 1..N or the
// endpoints coincide.
func (r *Run) Deliver(from, to graph.ProcID, round int) error {
	if round < 1 || round > r.n {
		return fmt.Errorf("run: round %d outside 1..%d", round, r.n)
	}
	if from == to {
		return fmt.Errorf("run: self-delivery at process %d", from)
	}
	r.msgs[Delivery{From: from, To: to, Round: round}] = true
	return nil
}

// MustDeliver is Deliver but panics on error.
func (r *Run) MustDeliver(from, to graph.ProcID, round int) *Run {
	if err := r.Deliver(from, to, round); err != nil {
		panic(err)
	}
	return r
}

// Drop removes a delivery tuple; dropping an absent tuple is a no-op.
func (r *Run) Drop(from, to graph.ProcID, round int) *Run {
	delete(r.msgs, Delivery{From: from, To: to, Round: round})
	return r
}

// Delivered reports whether (from, to, round) ∈ M(R).
func (r *Run) Delivered(from, to graph.ProcID, round int) bool {
	return r.msgs[Delivery{From: from, To: to, Round: round}]
}

// Deliveries returns M(R) sorted by (round, from, to).
func (r *Run) Deliveries() []Delivery {
	out := make([]Delivery, 0, len(r.msgs))
	for d := range r.msgs {
		out = append(out, d)
	}
	sortDeliveries(out)
	return out
}

func sortDeliveries(ds []Delivery) {
	sort.Slice(ds, func(a, b int) bool {
		if ds[a].Round != ds[b].Round {
			return ds[a].Round < ds[b].Round
		}
		if ds[a].From != ds[b].From {
			return ds[a].From < ds[b].From
		}
		return ds[a].To < ds[b].To
	})
}

// NumDeliveries reports |M(R)|.
func (r *Run) NumDeliveries() int { return len(r.msgs) }

// Clone returns a deep copy.
func (r *Run) Clone() *Run {
	c := MustNew(r.n)
	for i := range r.inputs {
		c.inputs[i] = true
	}
	for d := range r.msgs {
		c.msgs[d] = true
	}
	return c
}

// Equal reports whether two runs have the same N, inputs, and deliveries.
func (r *Run) Equal(o *Run) bool {
	if o == nil || r.n != o.n || len(r.inputs) != len(o.inputs) || len(r.msgs) != len(o.msgs) {
		return false
	}
	for i := range r.inputs {
		if !o.inputs[i] {
			return false
		}
	}
	for d := range r.msgs {
		if !o.msgs[d] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether r's inputs and deliveries are both subsets of
// o's (with equal N). Clipping always produces a subset of its argument.
func (r *Run) SubsetOf(o *Run) bool {
	if o == nil || r.n != o.n {
		return false
	}
	for i := range r.inputs {
		if !o.inputs[i] {
			return false
		}
	}
	for d := range r.msgs {
		if !o.msgs[d] {
			return false
		}
	}
	return true
}

// Key returns a canonical string identity for use as a map key in
// adversary searches and deduplication. Equal runs have equal keys.
func (r *Run) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "N=%d|I=", r.n)
	for _, i := range r.Inputs() {
		fmt.Fprintf(&b, "%d,", i)
	}
	b.WriteString("|M=")
	for _, d := range r.Deliveries() {
		fmt.Fprintf(&b, "%d>%d@%d,", d.From, d.To, d.Round)
	}
	return b.String()
}

// String renders the run compactly for traces and error messages.
func (r *Run) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Run{N=%d inputs=%v |M|=%d", r.n, r.Inputs(), len(r.msgs))
	if len(r.msgs) > 0 && len(r.msgs) <= 12 {
		b.WriteString(" M=")
		for _, d := range r.Deliveries() {
			b.WriteString(d.String())
		}
	}
	b.WriteByte('}')
	return b.String()
}

// Validate checks the run against a graph: every delivery must use an edge
// of g in a round within 1..N, and every input must name a vertex of g.
func (r *Run) Validate(g *graph.G) error {
	for i := range r.inputs {
		if i < 1 || int(i) > g.NumVertices() {
			return fmt.Errorf("run: input at %d, not a vertex of %v", i, g)
		}
	}
	for d := range r.msgs {
		if !g.HasEdge(d.From, d.To) {
			return fmt.Errorf("run: delivery %v uses a non-edge of %v", d, g)
		}
	}
	return nil
}

// Restrict returns a copy of r keeping only deliveries accepted by keep.
// Inputs are preserved. This is the workhorse for building damaged runs.
func (r *Run) Restrict(keep func(Delivery) bool) *Run {
	c := MustNew(r.n)
	for i := range r.inputs {
		c.inputs[i] = true
	}
	for d := range r.msgs {
		if keep(d) {
			c.msgs[d] = true
		}
	}
	return c
}

// Union returns a new run with the inputs and deliveries of both r and o.
// The runs must have equal N.
func (r *Run) Union(o *Run) (*Run, error) {
	if r.n != o.n {
		return nil, fmt.Errorf("run: union of runs with N=%d and N=%d", r.n, o.n)
	}
	c := r.Clone()
	for i := range o.inputs {
		c.inputs[i] = true
	}
	for d := range o.msgs {
		c.msgs[d] = true
	}
	return c, nil
}
