package run

import (
	"testing"

	"coordattack/internal/graph"
	"coordattack/internal/rng"
)

func mustComplete(t *testing.T, m int) *graph.G {
	t.Helper()
	g, err := graph.Complete(m)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSetMatchesRunOnRandomSubsets(t *testing.T) {
	g := mustComplete(t, 5)
	stream := rng.NewStream(404)
	for trial := uint64(0); trial < 40; trial++ {
		r, err := RandomSubset(g, 4, stream.Tape(trial, 0))
		if err != nil {
			t.Fatal(err)
		}
		s := MustNewSet(4, 5)
		if err := s.LoadRun(r, 5); err != nil {
			t.Fatal(err)
		}
		if s.N() != r.N() || s.M() != 5 {
			t.Fatalf("dims (%d, %d)", s.N(), s.M())
		}
		for i := graph.ProcID(1); i <= 5; i++ {
			if s.HasInput(i) != r.HasInput(i) {
				t.Fatalf("trial %d: HasInput(%d) mismatch", trial, i)
			}
		}
		if s.AnyInput() != r.AnyInput() {
			t.Fatalf("trial %d: AnyInput mismatch", trial)
		}
		for round := 1; round <= 4; round++ {
			for from := graph.ProcID(1); from <= 5; from++ {
				for to := graph.ProcID(1); to <= 5; to++ {
					if s.Delivered(from, to, round) != r.Delivered(from, to, round) {
						t.Fatalf("trial %d: Delivered(%d,%d,%d) mismatch", trial, from, to, round)
					}
				}
			}
		}
		if s.NumDeliveries() != r.NumDeliveries() {
			t.Fatalf("trial %d: NumDeliveries %d != %d", trial, s.NumDeliveries(), r.NumDeliveries())
		}
		back := s.Run()
		if !back.Equal(r) {
			t.Fatalf("trial %d: round trip lost the run:\n  in  %v\n  out %v", trial, r, back)
		}
		if back.Key() != r.Key() || Format(back) != Format(r) {
			t.Fatalf("trial %d: round trip changed Key/Format", trial)
		}
	}
}

func TestSetForEachDeliveryCanonicalOrder(t *testing.T) {
	r := MustNew(3).
		MustDeliver(2, 1, 3).
		MustDeliver(1, 2, 1).
		MustDeliver(3, 1, 1).
		MustDeliver(1, 3, 2)
	s := MustNewSet(3, 3)
	if err := s.LoadRun(r, 3); err != nil {
		t.Fatal(err)
	}
	var got []Delivery
	s.ForEachDelivery(func(d Delivery) { got = append(got, d) })
	want := r.Deliveries() // sorted by (round, from, to)
	if len(got) != len(want) {
		t.Fatalf("got %d deliveries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: got %v, want %v (bit order must equal canonical order)", i, got[i], want[i])
		}
	}
}

func TestSetRejectsOutOfUniverse(t *testing.T) {
	s := MustNewSet(2, 3)
	if err := s.Deliver(1, 4, 1); err == nil {
		t.Fatal("Deliver accepted a receiver outside the universe")
	}
	if err := s.Deliver(1, 2, 3); err == nil {
		t.Fatal("Deliver accepted a round outside 1..N")
	}
	if err := s.Deliver(2, 2, 1); err == nil {
		t.Fatal("Deliver accepted a self-delivery")
	}
	if err := s.AddInput(0); err == nil {
		t.Fatal("AddInput accepted process 0")
	}
	if s.Delivered(1, 4, 1) || s.HasInput(9) {
		t.Fatal("out-of-universe queries must answer false")
	}
	r := MustNew(2).MustDeliver(1, 7, 1)
	if err := s.LoadRun(r, 3); err == nil {
		t.Fatal("LoadRun accepted a run outside the universe")
	}
}

func TestSetResetReusesBacking(t *testing.T) {
	s := MustNewSet(6, 8)
	if err := s.Deliver(1, 2, 3); err != nil {
		t.Fatal(err)
	}
	if err := s.AddInput(5); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := s.Reset(4, 6); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Reset into a smaller universe allocates %v, want 0", allocs)
	}
	if s.NumDeliveries() != 0 || s.AnyInput() {
		t.Fatal("Reset left stale bits")
	}
	if s.Delivered(1, 2, 3) {
		t.Fatal("Reset left a stale delivery visible")
	}
}

func TestSetEqual(t *testing.T) {
	a := MustNewSet(2, 3)
	b := MustNewSet(2, 3)
	if !a.Equal(b) {
		t.Fatal("empty sets must be equal")
	}
	if err := a.Deliver(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	if a.Equal(b) {
		t.Fatal("sets with different deliveries compare equal")
	}
	if a.Equal(MustNewSet(2, 4)) || a.Equal(nil) {
		t.Fatal("dimension/nil mismatches compare equal")
	}
}

func TestPrefixKeyMatchesPrefix(t *testing.T) {
	g := mustComplete(t, 4)
	stream := rng.NewStream(77)
	for trial := uint64(0); trial < 25; trial++ {
		r, err := RandomSubset(g, 5, stream.Tape(trial, 0))
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k <= 6; k++ {
			// The key of "r truncated at k" must be the key the truncated
			// run reports for itself in full.
			pref := Prefix(r, k)
			if got, want := r.PrefixKey(k), pref.PrefixKey(pref.N()); got != want {
				t.Fatalf("trial %d k=%d: PrefixKey mismatch\n  got  %q\n  want %q", trial, k, got, want)
			}
		}
		if r.PrefixKey(r.N()) != r.PrefixKey(99) {
			t.Fatal("k beyond N must clamp to N")
		}
	}
	// Distinct prefixes get distinct keys.
	a := MustNew(3).MustDeliver(1, 2, 1).MustDeliver(1, 2, 2)
	if a.PrefixKey(1) == a.PrefixKey(2) {
		t.Fatal("prefixes differing at round 2 share a key")
	}
	// Same prefix, different suffix: keys collide (that is the point).
	b := a.Clone().MustDeliver(2, 1, 3)
	if a.PrefixKey(1) != b.PrefixKey(1) {
		t.Fatal("runs agreeing through round 1 must share PrefixKey(1)")
	}
}
