package run

import (
	"errors"
	"testing"
	"testing/quick"

	"coordattack/internal/graph"
	"coordattack/internal/rng"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("New(0) succeeded")
	}
	if _, err := New(-3); err == nil {
		t.Error("New(-3) succeeded")
	}
	r, err := New(5)
	if err != nil {
		t.Fatal(err)
	}
	if r.N() != 5 {
		t.Errorf("N = %d, want 5", r.N())
	}
}

func TestInputs(t *testing.T) {
	r := MustNew(3)
	if r.AnyInput() {
		t.Error("fresh run has inputs")
	}
	r.AddInput(2).AddInput(1).AddInput(2)
	if got := r.Inputs(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Inputs = %v, want [1 2]", got)
	}
	if !r.HasInput(1) || r.HasInput(3) {
		t.Error("HasInput wrong")
	}
	r.RemoveInput(1)
	if r.HasInput(1) {
		t.Error("RemoveInput did not remove")
	}
	if !r.AnyInput() {
		t.Error("AnyInput false with input at 2")
	}
}

func TestDeliverValidation(t *testing.T) {
	r := MustNew(3)
	if err := r.Deliver(1, 2, 0); err == nil {
		t.Error("round 0 delivery accepted")
	}
	if err := r.Deliver(1, 2, 4); err == nil {
		t.Error("round N+1 delivery accepted")
	}
	if err := r.Deliver(1, 1, 2); err == nil {
		t.Error("self delivery accepted")
	}
	if err := r.Deliver(1, 2, 3); err != nil {
		t.Errorf("valid delivery rejected: %v", err)
	}
	if !r.Delivered(1, 2, 3) {
		t.Error("Delivered(1,2,3) false after Deliver")
	}
	if r.Delivered(2, 1, 3) {
		t.Error("reverse direction spuriously delivered")
	}
}

func TestDeliveriesSorted(t *testing.T) {
	r := MustNew(4)
	r.MustDeliver(2, 1, 3).MustDeliver(1, 2, 1).MustDeliver(3, 1, 1).MustDeliver(1, 3, 1)
	ds := r.Deliveries()
	want := []Delivery{{1, 2, 1}, {1, 3, 1}, {3, 1, 1}, {2, 1, 3}}
	if len(ds) != len(want) {
		t.Fatalf("Deliveries = %v", ds)
	}
	for i := range want {
		if ds[i] != want[i] {
			t.Fatalf("Deliveries[%d] = %v, want %v", i, ds[i], want[i])
		}
	}
	if got := r.NumDeliveries(); got != 4 {
		t.Errorf("NumDeliveries = %d, want 4", got)
	}
}

func TestDrop(t *testing.T) {
	r := MustNew(2)
	r.MustDeliver(1, 2, 1)
	r.Drop(1, 2, 1)
	if r.Delivered(1, 2, 1) {
		t.Error("Drop did not remove delivery")
	}
	r.Drop(1, 2, 2) // absent: no-op, must not panic
}

func TestCloneEqualKey(t *testing.T) {
	r := MustNew(3)
	r.AddInput(1).MustDeliver(1, 2, 2).MustDeliver(2, 1, 3)
	c := r.Clone()
	if !r.Equal(c) || !c.Equal(r) {
		t.Error("clone not Equal to original")
	}
	if r.Key() != c.Key() {
		t.Error("clone Key differs")
	}
	c.MustDeliver(1, 2, 1)
	if r.Equal(c) {
		t.Error("Equal after divergence")
	}
	if r.Key() == c.Key() {
		t.Error("Key equal after divergence")
	}
	if r.Delivered(1, 2, 1) {
		t.Error("mutating clone leaked into original")
	}
	if r.Equal(nil) {
		t.Error("Equal(nil) true")
	}
	r2 := MustNew(4)
	if r.Equal(r2) {
		t.Error("runs with different N Equal")
	}
}

func TestSubsetOf(t *testing.T) {
	big := MustNew(3)
	big.AddInput(1).AddInput(2).MustDeliver(1, 2, 1).MustDeliver(2, 1, 2)
	small := MustNew(3)
	small.AddInput(1).MustDeliver(1, 2, 1)
	if !small.SubsetOf(big) {
		t.Error("subset not detected")
	}
	if big.SubsetOf(small) {
		t.Error("superset reported as subset")
	}
	if !big.SubsetOf(big) {
		t.Error("run not subset of itself")
	}
	if small.SubsetOf(nil) {
		t.Error("SubsetOf(nil) true")
	}
	otherN := MustNew(4)
	if small.SubsetOf(otherN) {
		t.Error("subset across different N")
	}
	inputOnly := MustNew(3)
	inputOnly.AddInput(3)
	if inputOnly.SubsetOf(big) {
		t.Error("input 3 not in big, yet subset")
	}
}

func TestValidate(t *testing.T) {
	g := graph.MustNew(3, []graph.Edge{{A: 1, B: 2}, {A: 2, B: 3}})
	r := MustNew(2)
	r.AddInput(1).MustDeliver(1, 2, 1)
	if err := r.Validate(g); err != nil {
		t.Errorf("valid run rejected: %v", err)
	}
	bad := MustNew(2)
	bad.MustDeliver(1, 3, 1) // non-edge
	if err := bad.Validate(g); err == nil {
		t.Error("non-edge delivery accepted")
	}
	badInput := MustNew(2)
	badInput.AddInput(7)
	if err := badInput.Validate(g); err == nil {
		t.Error("out-of-graph input accepted")
	}
}

func TestRestrictAndUnion(t *testing.T) {
	r := MustNew(3)
	r.AddInput(1).MustDeliver(1, 2, 1).MustDeliver(1, 2, 2).MustDeliver(2, 1, 3)
	odd := r.Restrict(func(d Delivery) bool { return d.Round%2 == 1 })
	if odd.NumDeliveries() != 2 || !odd.HasInput(1) {
		t.Errorf("Restrict wrong: %v", odd)
	}
	even := r.Restrict(func(d Delivery) bool { return d.Round%2 == 0 })
	u, err := odd.Union(even)
	if err != nil {
		t.Fatal(err)
	}
	if !u.Equal(r) {
		t.Errorf("odd ∪ even != original: %v vs %v", u, r)
	}
	other := MustNew(4)
	if _, err := r.Union(other); err == nil {
		t.Error("union across N succeeded")
	}
}

func TestGood(t *testing.T) {
	g := graph.MustNew(3, []graph.Edge{{A: 1, B: 2}, {A: 2, B: 3}})
	r, err := Good(g, 4, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.NumDeliveries(); got != 2*2*4 {
		t.Errorf("good run |M| = %d, want 16", got)
	}
	if !r.HasInput(1) || !r.HasInput(3) || r.HasInput(2) {
		t.Errorf("good run inputs = %v", r.Inputs())
	}
	for round := 1; round <= 4; round++ {
		if !r.Delivered(1, 2, round) || !r.Delivered(2, 1, round) {
			t.Errorf("round %d edge 1-2 not fully delivered", round)
		}
	}
	if r.Delivered(1, 3, 1) {
		t.Error("good run delivered on a non-edge")
	}
	if _, err := Good(g, 4, 9); err == nil {
		t.Error("Good with out-of-range input succeeded")
	}
}

func TestAllInputs(t *testing.T) {
	g := graph.MustNew(3, []graph.Edge{{A: 1, B: 2}, {A: 2, B: 3}})
	ins := AllInputs(g)
	if len(ins) != 3 || ins[0] != 1 || ins[2] != 3 {
		t.Errorf("AllInputs = %v", ins)
	}
}

func TestSilent(t *testing.T) {
	r, err := Silent(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumDeliveries() != 0 || !r.HasInput(2) {
		t.Errorf("Silent wrong: %v", r)
	}
}

func TestCutAtAndPrefix(t *testing.T) {
	g := graph.Pair()
	good, err := Good(g, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	cut := CutAt(good, 3)
	for round := 1; round <= 5; round++ {
		want := round < 3
		if cut.Delivered(1, 2, round) != want {
			t.Errorf("CutAt(3): round %d delivered=%v, want %v", round, !want, want)
		}
	}
	pre := Prefix(good, 2)
	if pre.NumDeliveries() != 2*2 {
		t.Errorf("Prefix(2) |M| = %d, want 4", pre.NumDeliveries())
	}
	if !Prefix(good, 5).Equal(good) {
		t.Error("Prefix(N) != original")
	}
	if Prefix(good, 0).NumDeliveries() != 0 {
		t.Error("Prefix(0) kept deliveries")
	}
}

func TestDropLink(t *testing.T) {
	g, err := graph.Line(3)
	if err != nil {
		t.Fatal(err)
	}
	good, err := Good(g, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	cut := DropLink(good, 2, 1)
	if cut.Delivered(1, 2, 1) || cut.Delivered(2, 1, 2) {
		t.Error("DropLink left deliveries on dropped link")
	}
	if !cut.Delivered(2, 3, 1) {
		t.Error("DropLink removed deliveries on other links")
	}
}

func TestIsolate(t *testing.T) {
	g, err := graph.Complete(3)
	if err != nil {
		t.Fatal(err)
	}
	good, err := Good(g, 2, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	iso := Isolate(good, 1)
	for _, d := range iso.Deliveries() {
		if d.From == 1 || d.To == 1 {
			t.Fatalf("Isolate left delivery %v touching process 1", d)
		}
	}
	if !iso.Delivered(2, 3, 1) || !iso.Delivered(3, 2, 2) {
		t.Error("Isolate removed deliveries not touching process 1")
	}
	if !iso.HasInput(1) {
		t.Error("Isolate must not remove inputs")
	}
}

func TestTreeRun(t *testing.T) {
	g, err := graph.Ring(5)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Tree(g, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !r.HasInput(1) || len(r.Inputs()) != 1 {
		t.Errorf("tree run inputs = %v, want [1]", r.Inputs())
	}
	// Down-tree only: no delivery into the root, 4 tree edges × 4 rounds.
	for _, d := range r.Deliveries() {
		if d.To == 1 {
			t.Errorf("tree run delivers into root: %v", d)
		}
	}
	if got := r.NumDeliveries(); got != 4*4 {
		t.Errorf("tree run |M| = %d, want 16", got)
	}
	// Too few rounds for the eccentricity: must fail.
	line, err := graph.Line(6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Tree(line, 3, 1); err == nil {
		t.Error("Tree with N < eccentricity succeeded")
	}
}

func TestRandomLoss(t *testing.T) {
	g, err := graph.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	tape := rng.NewTape(5)
	r0, err := RandomLoss(g, 3, 0, tape, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := r0.NumDeliveries(), 2*6*3; got != want {
		t.Errorf("p=0 |M| = %d, want %d (all delivered)", got, want)
	}
	r1, err := RandomLoss(g, 3, 1, tape, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r1.NumDeliveries() != 0 {
		t.Errorf("p=1 delivered %d messages", r1.NumDeliveries())
	}
	rHalf, err := RandomLoss(g, 50, 0.5, tape, 1)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(rHalf.NumDeliveries()) / float64(2*6*50)
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("p=0.5 delivered fraction %v far from 0.5", frac)
	}
	if _, err := RandomLoss(g, 3, -0.1, tape); err == nil {
		t.Error("negative p accepted")
	}
}

func TestRandomSubsetDeterministic(t *testing.T) {
	g, err := graph.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	a, err := RandomSubset(g, 3, rng.NewTape(11))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomSubset(g, 3, rng.NewTape(11))
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("same-seed RandomSubset runs differ")
	}
}

func TestSlots(t *testing.T) {
	g := graph.Pair()
	sl := Slots(g, 3)
	if len(sl) != 6 {
		t.Fatalf("Slots = %v, want 6 tuples", sl)
	}
	if sl[0].Round != 1 || sl[5].Round != 3 {
		t.Errorf("Slots not round-ordered: %v", sl)
	}
}

func TestEnumerateCountsPairRuns(t *testing.T) {
	g := graph.Pair()
	const n = 2 // 4 slots, 2 input subsets given below
	count := 0
	err := Enumerate(g, n, [][]graph.ProcID{{}, {1, 2}}, func(r *Run) error {
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 16; count != want {
		t.Errorf("enumerated %d runs, want %d", count, want)
	}
}

func TestEnumerateAllInputSubsets(t *testing.T) {
	g := graph.Pair()
	count := 0
	if err := Enumerate(g, 1, nil, func(r *Run) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if want := 4 * 4; count != want { // 2^2 input sets × 2^2 delivery slots
		t.Errorf("enumerated %d runs, want %d", count, want)
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	g := graph.Pair()
	count := 0
	err := Enumerate(g, 1, [][]graph.ProcID{{}}, func(r *Run) error {
		count++
		if count == 3 {
			return ErrStopEnumeration
		}
		return nil
	})
	if err != nil {
		t.Fatalf("early stop reported error: %v", err)
	}
	if count != 3 {
		t.Errorf("visited %d runs after stop, want 3", count)
	}
}

func TestEnumeratePropagatesVisitorError(t *testing.T) {
	g := graph.Pair()
	boom := errors.New("boom")
	err := Enumerate(g, 1, [][]graph.ProcID{{}}, func(r *Run) error { return boom })
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
}

func TestEnumerateRejectsHugeSpaces(t *testing.T) {
	g, err := graph.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	// 6 edges × 2 dirs × 2 rounds = 24 slots > 21.
	if err := Enumerate(g, 2, nil, func(r *Run) error { return nil }); err == nil {
		t.Error("huge enumeration accepted")
	}
}

func TestQuickRestrictIsSubset(t *testing.T) {
	g, err := graph.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64, k uint8) bool {
		r, err := RandomSubset(g, 4, rng.NewTape(seed))
		if err != nil {
			return false
		}
		p := Prefix(r, int(k%6))
		return p.SubsetOf(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickKeyAgreesWithEqual(t *testing.T) {
	g := graph.Pair()
	f := func(s1, s2 uint64) bool {
		a, err := RandomSubset(g, 3, rng.NewTape(s1))
		if err != nil {
			return false
		}
		b, err := RandomSubset(g, 3, rng.NewTape(s2))
		if err != nil {
			return false
		}
		return a.Equal(b) == (a.Key() == b.Key())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
