// Package trace renders runs and executions as ASCII spacetime diagrams —
// processes as columns, rounds as rows, deliveries as arrows — the
// pictures distributed-computing papers draw when reasoning about
// information flow, generated from the real artifacts.
package trace

import (
	"fmt"
	"strings"

	"coordattack/internal/causality"
	"coordattack/internal/graph"
	"coordattack/internal/protocol"
	"coordattack/internal/run"
)

// Spacetime renders the run as a round-by-round diagram. Each round block
// shows, for every delivered tuple (i, j, r), a line "i --> j"; lost
// sends are not shown (the adversary ate them). Inputs appear at round 0.
// When levels is true, each process column is annotated with its modified
// level at the end of each round.
func Spacetime(r *run.Run, m int, levels bool) (string, error) {
	if m < 1 {
		return "", fmt.Errorf("trace: need m ≥ 1, got %d", m)
	}
	var mt *causality.LevelTable
	if levels {
		var err error
		mt, err = causality.NewModLevelTable(r, m)
		if err != nil {
			return "", err
		}
	}
	var b strings.Builder
	header(&b, m)
	// Round 0: inputs.
	fmt.Fprintf(&b, "r=%-3d ", 0)
	for i := 1; i <= m; i++ {
		if r.HasInput(graph.ProcID(i)) {
			b.WriteString("  v₀!")
		} else {
			b.WriteString("   . ")
		}
	}
	annotate(&b, mt, m, 0)
	b.WriteByte('\n')

	byRound := make([][]run.Delivery, r.N()+1)
	for _, d := range r.Deliveries() {
		byRound[d.Round] = append(byRound[d.Round], d)
	}
	for round := 1; round <= r.N(); round++ {
		fmt.Fprintf(&b, "r=%-3d ", round)
		for i := 1; i <= m; i++ {
			b.WriteString("   | ")
		}
		annotate(&b, mt, m, round)
		b.WriteByte('\n')
		for _, d := range byRound[round] {
			fmt.Fprintf(&b, "      %s\n", arrow(d, m))
		}
	}
	return b.String(), nil
}

func header(b *strings.Builder, m int) {
	b.WriteString("      ")
	for i := 1; i <= m; i++ {
		fmt.Fprintf(b, "  P%-2d ", i)
	}
	b.WriteByte('\n')
}

func annotate(b *strings.Builder, mt *causality.LevelTable, m, round int) {
	if mt == nil {
		return
	}
	b.WriteString("   ML=[")
	for i := 1; i <= m; i++ {
		if i > 1 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(b, "%d", mt.At(graph.ProcID(i), round))
	}
	b.WriteByte(']')
}

// arrow draws one delivery as a left-to-right (or right-to-left) arrow
// across the process columns.
func arrow(d run.Delivery, m int) string {
	lo, hi := d.From, d.To
	leftToRight := lo < hi
	if !leftToRight {
		lo, hi = hi, lo
	}
	cells := make([]string, m)
	for i := range cells {
		cells[i] = "     "
	}
	for i := int(lo); i <= int(hi); i++ {
		switch {
		case i == int(d.From):
			if leftToRight {
				cells[i-1] = "   *-"
			} else {
				cells[i-1] = "  -* "
			}
		case i == int(d.To):
			if leftToRight {
				cells[i-1] = "-->  "
			} else {
				cells[i-1] = "  <--"
			}
		default:
			cells[i-1] = "-----"
		}
	}
	return strings.Join(cells, "")
}

// ExecutionSummary renders one execution's decisions beneath its run
// diagram: the output bit per general and the outcome classification.
func ExecutionSummary(e *protocol.Execution) string {
	var b strings.Builder
	b.WriteString("decisions: ")
	for i := 1; i < len(e.Locals); i++ {
		if i > 1 {
			b.WriteByte(' ')
		}
		mark := "0"
		if e.Locals[i].Output {
			mark = "1"
		}
		fmt.Fprintf(&b, "P%d=%s", i, mark)
	}
	fmt.Fprintf(&b, "  → %v\n", e.Outcome())
	return b.String()
}
