package trace

import (
	"strings"
	"testing"

	"coordattack/internal/baseline"
	"coordattack/internal/graph"
	"coordattack/internal/run"
	"coordattack/internal/sim"
)

func TestSpacetimeBasics(t *testing.T) {
	r := run.MustNew(2)
	r.AddInput(1)
	r.MustDeliver(1, 2, 1).MustDeliver(2, 1, 2)
	out, err := Spacetime(r, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"P1", "P2", "v₀!", "r=0", "r=1", "r=2", "*-", "-->", "<--"} {
		if !strings.Contains(out, want) {
			t.Errorf("spacetime missing %q:\n%s", want, out)
		}
	}
}

func TestSpacetimeWithLevels(t *testing.T) {
	g := graph.Pair()
	good, err := run.Good(g, 3, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Spacetime(good, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ML=[") {
		t.Errorf("levels annotation missing:\n%s", out)
	}
	if !strings.Contains(out, "ML=[1 0]") {
		t.Errorf("round-0 levels wrong:\n%s", out)
	}
}

func TestSpacetimeLongArrow(t *testing.T) {
	// Delivery across non-adjacent columns spans the middle ones.
	r := run.MustNew(1)
	r.MustDeliver(1, 3, 1)
	out, err := Spacetime(r, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "*-") || !strings.Contains(out, "-->") || !strings.Contains(out, "-----") {
		t.Errorf("long arrow malformed:\n%s", out)
	}
}

func TestSpacetimeValidation(t *testing.T) {
	r := run.MustNew(1)
	if _, err := Spacetime(r, 0, false); err == nil {
		t.Error("m=0 accepted")
	}
	// Levels require m ≥ 2.
	if _, err := Spacetime(r, 1, true); err == nil {
		t.Error("levels with m=1 accepted")
	}
}

func TestExecutionSummary(t *testing.T) {
	g := graph.Pair()
	good, err := run.Good(g, 2, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := sim.Execute(baseline.NewDetFullInfo(), g, good, sim.SeedTapes(1))
	if err != nil {
		t.Fatal(err)
	}
	out := ExecutionSummary(exec)
	for _, want := range []string{"P1=1", "P2=1", "TA"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q: %s", want, out)
		}
	}
}
