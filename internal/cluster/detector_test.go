package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// flipHandler is an http.Handler whose status code can be swapped at
// runtime: the test's stand-in for a peer that dies and recovers.
type flipHandler struct {
	status atomic.Int64
}

func (h *flipHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(int(h.status.Load()))
}

func TestPeerHealthStateMachine(t *testing.T) {
	h := &flipHandler{}
	h.status.Store(http.StatusOK)
	srv := httptest.NewServer(h)
	defer srv.Close()
	c, err := New(Options{
		Self:             "http://self.invalid:1",
		Peers:            []string{srv.URL},
		BreakerThreshold: 3,
		BreakerCooldown:  time.Hour, // breakers must recover via ping, not cooldown
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := NormalizeAddr(srv.URL)
	if got := c.PeerHealth(addr); got != "" {
		t.Fatalf("health before any probe = %q, want unknown", got)
	}
	if c.PeerDown(addr) {
		t.Fatal("unknown health must not count as down")
	}

	ctx := context.Background()
	became, err := c.Ping(ctx, addr)
	if err != nil || !became {
		t.Fatalf("first ping: became=%v err=%v, want transition to alive", became, err)
	}
	if got := c.PeerHealth(addr); got != HealthAlive {
		t.Fatalf("health after ping = %q", got)
	}
	if became, _ = c.Ping(ctx, addr); became {
		t.Fatal("second successful ping reported a transition")
	}

	// The peer starts answering 503: a corpse with a listener. One miss
	// is suspicion; the threshold (3) is death.
	h.status.Store(http.StatusServiceUnavailable)
	if _, err := c.Ping(ctx, addr); err == nil {
		t.Fatal("ping against 503 succeeded")
	}
	if got := c.PeerHealth(addr); got != HealthSuspect {
		t.Fatalf("health after one miss = %q, want suspect", got)
	}
	if c.PeerDown(addr) {
		t.Fatal("suspect peer reported down")
	}
	c.Ping(ctx, addr)
	c.Ping(ctx, addr)
	if got := c.PeerHealth(addr); got != HealthDead {
		t.Fatalf("health after threshold misses = %q, want dead", got)
	}
	if !c.PeerDown(addr) {
		t.Fatal("dead peer not reported down")
	}
	// Three ping failures also opened the breaker (threshold 3).
	if snap := c.Snapshot(); snap.Peers[0].Breaker != StateOpen {
		t.Fatalf("breaker after ping misses = %s, want open", snap.Peers[0].Breaker)
	}

	// Recovery: the next successful ping flips health to alive AND
	// closes the breaker proactively — no half-open request sacrifice,
	// and the hour-long cooldown never elapses.
	h.status.Store(http.StatusOK)
	became, err = c.Ping(ctx, addr)
	if err != nil || !became {
		t.Fatalf("recovery ping: became=%v err=%v", became, err)
	}
	if c.PeerDown(addr) {
		t.Fatal("recovered peer still reported down")
	}
	snap := c.Snapshot()
	if snap.Peers[0].Breaker != StateClosed {
		t.Fatalf("breaker after recovery ping = %s, want closed", snap.Peers[0].Breaker)
	}
	if snap.Peers[0].Health != HealthAlive || snap.Peers[0].LastSeenUnix == 0 {
		t.Fatalf("snapshot health = %+v", snap.Peers[0])
	}
}

func TestPeerPing404IsAlive(t *testing.T) {
	// An older coordd build has no ping route and answers 404; the
	// process is plainly alive and must not be declared dead.
	srv := httptest.NewServer(http.NotFoundHandler())
	defer srv.Close()
	c, err := New(Options{Self: "http://self.invalid:1", Peers: []string{srv.URL}})
	if err != nil {
		t.Fatal(err)
	}
	became, err := c.Ping(context.Background(), srv.URL)
	if err != nil || !became {
		t.Fatalf("ping against 404: became=%v err=%v", became, err)
	}
	if got := c.PeerHealth(srv.URL); got != HealthAlive {
		t.Fatalf("health = %q, want alive", got)
	}
}

func TestPeerDetectorLoopAndOnAlive(t *testing.T) {
	h := &flipHandler{}
	h.status.Store(http.StatusServiceUnavailable)
	srv := httptest.NewServer(h)
	defer srv.Close()
	c, err := New(Options{
		Self:            "http://self.invalid:1",
		Peers:           []string{srv.URL},
		BreakerCooldown: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := NormalizeAddr(srv.URL)

	var mu sync.Mutex
	var transitions []string
	c.StartDetector(DetectorOptions{
		Interval: 10 * time.Millisecond,
		Misses:   2,
		OnAlive: func(a string, became bool) {
			if became {
				mu.Lock()
				transitions = append(transitions, a)
				mu.Unlock()
			}
		},
	})
	// Double-start is a no-op, and the loop drives the peer dead.
	c.StartDetector(DetectorOptions{Interval: time.Millisecond})
	deadline := time.Now().Add(5 * time.Second)
	for c.PeerHealth(addr) != HealthDead {
		if time.Now().After(deadline) {
			t.Fatal("detector never marked the 503 peer dead")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Heal the peer: the loop notices within a few intervals and fires
	// the dead→alive transition callback exactly once.
	h.status.Store(http.StatusOK)
	for c.PeerHealth(addr) != HealthAlive {
		if time.Now().After(deadline) {
			t.Fatal("detector never revived the healed peer")
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	got := len(transitions)
	mu.Unlock()
	if got != 1 || transitions[0] != addr {
		t.Fatalf("alive transitions = %v, want exactly one for %s", transitions, addr)
	}

	// StopDetector is synchronous: after it returns, no further state
	// changes happen even if the peer flips again.
	c.StopDetector()
	c.StopDetector() // idempotent
	h.status.Store(http.StatusServiceUnavailable)
	time.Sleep(50 * time.Millisecond)
	if got := c.PeerHealth(addr); got != HealthAlive {
		t.Fatalf("health changed after StopDetector: %q", got)
	}
}
