package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// Peer health states, as reported by the failure detector. The zero
// value "" means unknown: no detector has probed the peer yet, and
// nothing (PeerDown included) may treat unknown as dead.
const (
	// HealthAlive: the peer answered its most recent ping.
	HealthAlive = "alive"
	// HealthSuspect: at least one ping missed, fewer than the
	// consecutive-miss threshold.
	HealthSuspect = "suspect"
	// HealthDead: misses reached the threshold. Dead peers are skipped
	// by PeerDown consumers (steal victim selection, local-compute
	// fallback) and watched for the dead→alive transition that triggers
	// hint delivery.
	HealthDead = "dead"
)

// DetectorOptions configures StartDetector.
type DetectorOptions struct {
	// Interval between ping rounds; <= 0 means 1 s.
	Interval time.Duration
	// Misses is the consecutive failed-ping count that marks a peer
	// dead; <= 0 means 3.
	Misses int
	// OnAlive, when non-nil, is called after every successful ping with
	// the peer's address and whether this ping was a transition to alive
	// (the peer was previously suspect, dead, or unknown). Hint delivery
	// hooks here: a dead→alive edge is the moment to drain the peer's
	// hint queue. Called from the detector goroutine; implementations
	// must not block for long (they gate the next ping of that peer).
	OnAlive func(addr string, becameAlive bool)
}

// Ping probes one peer's liveness with GET /v1/peer/ping. It bypasses
// the breaker's Allow gate — the whole point of the detector is to
// probe peers the breaker has written off — but feeds the breaker's
// Success/Failure, so a recovered peer's breaker closes proactively
// instead of sacrificing a real request to the half-open probe.
//
// Liveness semantics: any 2xx, or a 404 (the process answered; an older
// build without the ping route still counts as alive), means alive. A
// 5xx or transport error is a miss — a process that answers 503 is a
// corpse with a listener.
//
// It returns whether this ping transitioned the peer to alive, and the
// probe error if the ping missed.
func (c *Cluster) Ping(ctx context.Context, peerAddr string) (becameAlive bool, err error) {
	p, ok := c.peers[NormalizeAddr(peerAddr)]
	if !ok {
		return false, fmt.Errorf("cluster: unknown peer %s", peerAddr)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.addr+PingPath, nil)
	if err != nil {
		return false, err
	}
	resp, err := c.client.Do(req)
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode/100 == 2 || resp.StatusCode == http.StatusNotFound {
			p.breaker.Success()
			c.count(p.addr, "ping", "ok")
			return p.markAlive(), nil
		}
		err = fmt.Errorf("cluster: peer %s answered %d to ping", p.addr, resp.StatusCode)
	}
	p.breaker.Failure()
	c.count(p.addr, "ping", "error")
	p.markMissed(c.detectorMisses())
	return false, err
}

// markAlive records a successful ping and reports whether it was a
// transition (the peer was not already alive).
func (p *peer) markAlive() bool {
	p.hmu.Lock()
	defer p.hmu.Unlock()
	was := p.health
	p.health = HealthAlive
	p.misses = 0
	p.lastSeen = time.Now()
	return was != HealthAlive
}

// markMissed records a failed ping against the consecutive-miss
// threshold.
func (p *peer) markMissed(threshold int) {
	p.hmu.Lock()
	defer p.hmu.Unlock()
	p.misses++
	if p.misses >= threshold {
		p.health = HealthDead
	} else {
		p.health = HealthSuspect
	}
}

// PeerHealth returns the detector's view of addr: HealthAlive,
// HealthSuspect, HealthDead, or "" when never probed.
func (c *Cluster) PeerHealth(addr string) string {
	p, ok := c.peers[NormalizeAddr(addr)]
	if !ok {
		return ""
	}
	p.hmu.Lock()
	defer p.hmu.Unlock()
	return p.health
}

// detectorMisses reads the configured consecutive-miss threshold,
// defaulting to 3 for direct Ping calls outside a running detector.
func (c *Cluster) detectorMisses() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.detMisses <= 0 {
		return 3
	}
	return c.detMisses
}

// StartDetector launches the heartbeat loop: every Interval it pings
// all peers in parallel, each ping bounded by the cluster's peer
// timeout. Starting an already-running detector is a no-op.
func (c *Cluster) StartDetector(opts DetectorOptions) {
	interval := opts.Interval
	if interval <= 0 {
		interval = time.Second
	}
	misses := opts.Misses
	if misses <= 0 {
		misses = 3
	}
	c.mu.Lock()
	if c.detStop != nil {
		c.mu.Unlock()
		return
	}
	c.detMisses = misses
	stop := make(chan struct{})
	done := make(chan struct{})
	c.detStop, c.detDone = stop, done
	c.mu.Unlock()

	go func() {
		defer close(done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			// Ping every peer in parallel; the round joins before the
			// next tick so stop is synchronous and rounds never overlap.
			var wg sync.WaitGroup
			for _, addr := range c.order {
				wg.Add(1)
				go func(addr string) {
					defer wg.Done()
					ctx, cancel := context.WithTimeout(context.Background(), c.timeout)
					defer cancel()
					became, err := c.Ping(ctx, addr)
					if err == nil && opts.OnAlive != nil {
						opts.OnAlive(addr, became)
					}
				}(addr)
			}
			wg.Wait()
			select {
			case <-stop:
				return
			case <-ticker.C:
			}
		}
	}()
}

// StopDetector stops the heartbeat loop and blocks until it has fully
// exited — after it returns, no further pings or OnAlive callbacks
// fire. Idempotent; a never-started detector is a no-op.
func (c *Cluster) StopDetector() {
	c.mu.Lock()
	stop, done := c.detStop, c.detDone
	c.detStop, c.detDone = nil, nil
	c.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}
