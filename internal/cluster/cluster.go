package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Peer-protocol paths, served by the coordd HTTP layer and dialed by
// this client. The contract: GET returns the bit-identical stored body
// for a key (404 = clean miss), PUT replicates a computed body to its
// ring owner, and POST /v1/peer/steal hands accepted-but-unstarted jobs
// from an overloaded peer's queue to an idle one.
const (
	ResultsPathPrefix = "/v1/peer/results/"
	StealPath         = "/v1/peer/steal"
	StealCommitPath   = "/v1/peer/steal/commit"
	JobsPathPrefix    = "/v1/peer/jobs/"
	// PingPath is the failure detector's heartbeat target: any answer
	// from the process (including 404 from an older build) counts as
	// alive; only transport errors and 5xx count as misses.
	PingPath = "/v1/peer/ping"
)

// maxResultBytes bounds a fetched result body; anything bigger than
// this is not a coordd result and is treated as a peer error.
const maxResultBytes = 32 << 20

// StolenJob is one unit of pending work handed from a victim's queue to
// a thief, carrying everything the thief needs to re-admit it locally:
// the victim's canonical key (what the victim will poll for), the
// scheduling envelope, and the canonical spec JSON.
type StolenJob struct {
	Key      string          `json:"key"`
	Flow     string          `json:"flow,omitempty"`
	Class    string          `json:"class,omitempty"`
	Priority int             `json:"priority,omitempty"`
	Spec     json.RawMessage `json:"spec"`
}

// StealRequest is the body of POST /v1/peer/steal: how many jobs the
// thief can take and the thief's advertise address, which the victim
// polls for the stolen jobs' results.
type StealRequest struct {
	Want  int    `json:"want"`
	Thief string `json:"thief"`
}

// StealResponse is the victim's grant (possibly empty).
type StealResponse struct {
	Jobs []StolenJob `json:"jobs"`
}

// CommitRequest is the body of POST /v1/peer/steal/commit: the thief
// confirms it has journaled the listed stolen keys into its own WAL,
// which licenses the victim to tombstone its intent records. Until this
// arrives the victim's journal still owns the jobs, so a thief crash
// before commit strands nothing.
type CommitRequest struct {
	Thief string   `json:"thief"`
	Keys  []string `json:"keys"`
}

// Options configures New.
type Options struct {
	// Self is this node's advertise address — how peers reach it (e.g.
	// "http://10.0.0.1:8344" or "10.0.0.1:8344"; a missing scheme
	// defaults to http). Self is always a ring member.
	Self string
	// Peers are the other cluster members' advertise addresses. Self may
	// appear in the list (operators pass one identical -peers flag to
	// every node) and is filtered out of the dial set.
	Peers []string
	// VNodes is the virtual-node count per peer; <= 0 means
	// DefaultVNodes.
	VNodes int
	// Factor is the replication factor: how many distinct ring members
	// (owner first, then clockwise successors) hold each result. <= 0
	// means DefaultFactor; values above the member count are clamped.
	Factor int
	// Transport, when non-nil, replaces the HTTP transport used for all
	// peer requests. The chaos harness injects a fault transport here;
	// production leaves it nil (http.DefaultTransport).
	Transport http.RoundTripper
	// Timeout bounds one peer HTTP exchange; 0 means 500 ms. Peer
	// lookups sit on the job path, so this is deliberately short: a slow
	// peer must cost less than the engine run it might save.
	Timeout time.Duration
	// BreakerThreshold is the consecutive-failure count that opens a
	// peer's circuit breaker; 0 means 3.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker short-circuits
	// requests before admitting a probe; 0 means 10 s.
	BreakerCooldown time.Duration
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)

	// now overrides the breaker clock in tests.
	now func() time.Time
}

// peer is one remote cluster member: its address, breaker state, and
// the failure detector's health view.
type peer struct {
	addr    string
	breaker *Breaker

	hmu      sync.Mutex
	health   string // "", HealthAlive, HealthSuspect, HealthDead
	misses   int    // consecutive failed pings
	lastSeen time.Time
}

// reqKey labels one cell of the peer-request counter matrix.
type reqKey struct{ peer, op, outcome string }

// Cluster is the node-local cluster view: the ring, the dialable peers,
// their breakers, and the request counters. Safe for concurrent use.
type Cluster struct {
	self    string
	vnodes  int
	factor  int
	ring    *Ring
	peers   map[string]*peer // addr → peer, self excluded
	order   []string         // sorted peer addrs, self excluded
	client  *http.Client
	timeout time.Duration
	logf    func(string, ...any)

	mu   sync.Mutex
	reqs map[reqKey]int64

	// Failure detector loop state, guarded by mu.
	detStop   chan struct{}
	detDone   chan struct{}
	detMisses int
}

// NormalizeAddr canonicalizes a peer address: trims space and trailing
// slashes and defaults the scheme to http, so "10.0.0.1:8344" and
// "http://10.0.0.1:8344/" are the same ring member.
func NormalizeAddr(addr string) string {
	addr = strings.TrimRight(strings.TrimSpace(addr), "/")
	if addr == "" {
		return ""
	}
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return addr
}

// New builds the cluster view. The ring contains self plus every peer;
// the dial set is the peers only.
func New(opts Options) (*Cluster, error) {
	self := NormalizeAddr(opts.Self)
	if self == "" {
		return nil, fmt.Errorf("cluster: empty self (advertise) address")
	}
	members := []string{self}
	peers := make(map[string]*peer)
	for _, p := range opts.Peers {
		addr := NormalizeAddr(p)
		if addr == "" || addr == self {
			continue
		}
		members = append(members, addr)
		if _, ok := peers[addr]; !ok {
			peers[addr] = &peer{
				addr:    addr,
				breaker: newBreaker(opts.BreakerThreshold, opts.BreakerCooldown, opts.now),
			}
		}
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("cluster: no peers besides self %s", self)
	}
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = 500 * time.Millisecond
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	vnodes := opts.VNodes
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	factor := opts.Factor
	if factor <= 0 {
		factor = DefaultFactor
	}
	if factor > len(members) {
		factor = len(members)
	}
	order := make([]string, 0, len(peers))
	for addr := range peers {
		order = append(order, addr)
	}
	sort.Strings(order)
	return &Cluster{
		self:    self,
		vnodes:  vnodes,
		factor:  factor,
		ring:    NewRing(members, vnodes),
		peers:   peers,
		order:   order,
		client:  &http.Client{Timeout: timeout, Transport: opts.Transport},
		timeout: timeout,
		logf:    logf,
		reqs:    make(map[reqKey]int64),
	}, nil
}

// Self returns this node's normalized advertise address.
func (c *Cluster) Self() string { return c.self }

// Owner returns the ring owner of key (possibly self).
func (c *Cluster) Owner(key string) string { return c.ring.Owner(key) }

// OwnsLocally reports whether this node is key's ring owner.
func (c *Cluster) OwnsLocally(key string) bool { return c.ring.Owner(key) == c.self }

// Factor returns the effective replication factor.
func (c *Cluster) Factor() int { return c.factor }

// ReplicaSet returns key's replica set: the ring owner plus its
// distinct clockwise successors, Factor peers in total (fewer when the
// ring is smaller). Every node computes the same set for a key.
func (c *Cluster) ReplicaSet(key string) []string { return c.ring.Owners(key, c.factor) }

// HoldsKey reports whether this node is in key's replica set — i.e.
// whether the replication protocol wants a copy of key's result here.
func (c *Cluster) HoldsKey(key string) bool {
	for _, addr := range c.ReplicaSet(key) {
		if addr == c.self {
			return true
		}
	}
	return false
}

// PeerAddrs returns the dialable peers (self excluded), sorted.
func (c *Cluster) PeerAddrs() []string {
	out := make([]string, len(c.order))
	copy(out, c.order)
	return out
}

// PeerDown reports whether addr is presumed dead: its breaker is
// currently refusing requests, or the failure detector has marked it
// dead. Unknown health ("", detector never probed) does not count —
// a node without a running detector sees exactly the old breaker-only
// behavior.
func (c *Cluster) PeerDown(addr string) bool {
	p, ok := c.peers[NormalizeAddr(addr)]
	if !ok {
		return false
	}
	if p.breaker.State() == StateOpen {
		return true
	}
	p.hmu.Lock()
	defer p.hmu.Unlock()
	return p.health == HealthDead
}

func (c *Cluster) count(peerAddr, op, outcome string) {
	c.mu.Lock()
	c.reqs[reqKey{peerAddr, op, outcome}]++
	c.mu.Unlock()
}

// FetchResult consults key's replica set for a stored result: the ring
// owner first, then each distinct successor, skipping self (the caller
// already missed locally). It returns on the first hit, along with the
// address of the peer that served it (so the caller's read-repair can
// exclude the one replica known to hold the body); misses and failures
// fall through to the next replica — a peer problem must never be worse
// than a cache miss.
func (c *Cluster) FetchResult(ctx context.Context, key string) ([]byte, string, bool) {
	for _, addr := range c.ReplicaSet(key) {
		if addr == c.self {
			continue
		}
		if body, found, _ := c.FetchFrom(ctx, addr, key); found {
			return body, addr, true
		}
	}
	return nil, "", false
}

// FetchFrom asks one specific peer for key's result bytes. It returns
// (body, true, nil) on a hit, (nil, false, nil) on a clean miss (the
// peer answered 404 — alive, no result yet), and (nil, false, err) on a
// breaker-open short circuit or transport/protocol failure.
func (c *Cluster) FetchFrom(ctx context.Context, peerAddr, key string) ([]byte, bool, error) {
	p, ok := c.peers[NormalizeAddr(peerAddr)]
	if !ok {
		return nil, false, fmt.Errorf("cluster: unknown peer %s", peerAddr)
	}
	if !p.breaker.Allow() {
		c.count(p.addr, "results", "open")
		return nil, false, fmt.Errorf("cluster: breaker open for %s", p.addr)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.addr+ResultsPathPrefix+key, nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		p.breaker.Failure()
		c.count(p.addr, "results", "error")
		return nil, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		body, err := io.ReadAll(io.LimitReader(resp.Body, maxResultBytes+1))
		if err != nil || len(body) > maxResultBytes {
			p.breaker.Failure()
			c.count(p.addr, "results", "error")
			return nil, false, fmt.Errorf("cluster: reading result from %s: %v", p.addr, err)
		}
		p.breaker.Success()
		c.count(p.addr, "results", "hit")
		return body, true, nil
	case http.StatusNotFound:
		p.breaker.Success()
		c.count(p.addr, "results", "miss")
		return nil, false, nil
	default:
		p.breaker.Failure()
		c.count(p.addr, "results", "error")
		return nil, false, fmt.Errorf("cluster: peer %s answered %d", p.addr, resp.StatusCode)
	}
}

// PushResult replicates a computed body to every member of key's
// replica set except self — the ring owner and its distinct successors
// — so any single node death loses no cached result. It returns how
// many pushes succeeded. Best-effort: failures cost nothing but the
// breaker bookkeeping (the body is already safe locally), and the
// anti-entropy repair loop closes any gap later.
func (c *Cluster) PushResult(ctx context.Context, key string, body []byte) int {
	pushed := 0
	for _, addr := range c.ReplicaSet(key) {
		if addr == c.self {
			continue
		}
		if err := c.PushTo(ctx, addr, key, body); err == nil {
			pushed++
		}
	}
	return pushed
}

// PushTo replicates a computed body to one specific peer.
func (c *Cluster) PushTo(ctx context.Context, peerAddr, key string, body []byte) error {
	p, ok := c.peers[NormalizeAddr(peerAddr)]
	if !ok {
		return fmt.Errorf("cluster: unknown peer %s", peerAddr)
	}
	if !p.breaker.Allow() {
		c.count(p.addr, "replicate", "open")
		return fmt.Errorf("cluster: breaker open for %s", p.addr)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, p.addr+ResultsPathPrefix+key, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		p.breaker.Failure()
		c.count(p.addr, "replicate", "error")
		c.logf("cluster: replicating %s to %s: %v", key[:8], p.addr, err)
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		p.breaker.Failure()
		c.count(p.addr, "replicate", "error")
		c.logf("cluster: replicating %s to %s: status %d", key[:8], p.addr, resp.StatusCode)
		return fmt.Errorf("cluster: peer %s answered %d", p.addr, resp.StatusCode)
	}
	p.breaker.Success()
	c.count(p.addr, "replicate", "ok")
	return nil
}

// HasResult asks one peer whether it holds key's result, without
// transferring the body (HEAD). The anti-entropy repair loop uses it to
// probe replicas cheaply before pushing.
func (c *Cluster) HasResult(ctx context.Context, peerAddr, key string) (bool, error) {
	p, ok := c.peers[NormalizeAddr(peerAddr)]
	if !ok {
		return false, fmt.Errorf("cluster: unknown peer %s", peerAddr)
	}
	if !p.breaker.Allow() {
		c.count(p.addr, "probe", "open")
		return false, fmt.Errorf("cluster: breaker open for %s", p.addr)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodHead, p.addr+ResultsPathPrefix+key, nil)
	if err != nil {
		return false, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		p.breaker.Failure()
		c.count(p.addr, "probe", "error")
		return false, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		p.breaker.Success()
		c.count(p.addr, "probe", "hit")
		return true, nil
	case http.StatusNotFound:
		p.breaker.Success()
		c.count(p.addr, "probe", "miss")
		return false, nil
	default:
		p.breaker.Failure()
		c.count(p.addr, "probe", "error")
		return false, fmt.Errorf("cluster: peer %s answered %d", p.addr, resp.StatusCode)
	}
}

// StealFrom asks one peer to hand over up to want pending jobs. An
// empty grant is a normal outcome (the peer is not overloaded), not a
// failure.
func (c *Cluster) StealFrom(ctx context.Context, peerAddr string, want int) ([]StolenJob, error) {
	p, ok := c.peers[NormalizeAddr(peerAddr)]
	if !ok {
		return nil, fmt.Errorf("cluster: unknown peer %s", peerAddr)
	}
	if !p.breaker.Allow() {
		c.count(p.addr, "steal", "open")
		return nil, fmt.Errorf("cluster: breaker open for %s", p.addr)
	}
	reqBody, err := json.Marshal(StealRequest{Want: want, Thief: c.self})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.addr+StealPath, bytes.NewReader(reqBody))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		p.breaker.Failure()
		c.count(p.addr, "steal", "error")
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		p.breaker.Failure()
		c.count(p.addr, "steal", "error")
		return nil, fmt.Errorf("cluster: peer %s answered %d to steal", p.addr, resp.StatusCode)
	}
	var grant StealResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxResultBytes)).Decode(&grant); err != nil {
		p.breaker.Failure()
		c.count(p.addr, "steal", "error")
		return nil, err
	}
	p.breaker.Success()
	if len(grant.Jobs) > 0 {
		c.count(p.addr, "steal", "hit")
	} else {
		c.count(p.addr, "steal", "miss")
	}
	return grant.Jobs, nil
}

// CommitSteal tells the victim that this thief has journaled the listed
// stolen keys into its own WAL — phase two of the steal handoff. Only
// after a 2xx here is the victim's journal clear of the jobs; on any
// failure the victim keeps its intent records and its follower/replay
// machinery guarantees the jobs still run somewhere.
func (c *Cluster) CommitSteal(ctx context.Context, victimAddr string, keys []string) error {
	p, ok := c.peers[NormalizeAddr(victimAddr)]
	if !ok {
		return fmt.Errorf("cluster: unknown peer %s", victimAddr)
	}
	if !p.breaker.Allow() {
		c.count(p.addr, "commit", "open")
		return fmt.Errorf("cluster: breaker open for %s", p.addr)
	}
	reqBody, err := json.Marshal(CommitRequest{Thief: c.self, Keys: keys})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.addr+StealCommitPath, bytes.NewReader(reqBody))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		p.breaker.Failure()
		c.count(p.addr, "commit", "error")
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		p.breaker.Failure()
		c.count(p.addr, "commit", "error")
		return fmt.Errorf("cluster: peer %s answered %d to steal commit", p.addr, resp.StatusCode)
	}
	p.breaker.Success()
	c.count(p.addr, "commit", "ok")
	return nil
}

// KnowsJob asks one peer whether it has any record of key — an inflight
// job, a cached or stored result. The victim's stolen-job follower uses
// it to distinguish "thief is working on it / restarted with it in its
// WAL" (keep waiting) from "thief never durably took it" (reclaim and
// run locally). (true, nil) = peer knows the key; (false, nil) = peer
// is alive and has no record; err = can't tell.
func (c *Cluster) KnowsJob(ctx context.Context, peerAddr, key string) (bool, error) {
	p, ok := c.peers[NormalizeAddr(peerAddr)]
	if !ok {
		return false, fmt.Errorf("cluster: unknown peer %s", peerAddr)
	}
	if !p.breaker.Allow() {
		c.count(p.addr, "jobs", "open")
		return false, fmt.Errorf("cluster: breaker open for %s", p.addr)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.addr+JobsPathPrefix+key, nil)
	if err != nil {
		return false, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		p.breaker.Failure()
		c.count(p.addr, "jobs", "error")
		return false, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		p.breaker.Success()
		c.count(p.addr, "jobs", "hit")
		return true, nil
	case http.StatusNotFound:
		p.breaker.Success()
		c.count(p.addr, "jobs", "miss")
		return false, nil
	default:
		p.breaker.Failure()
		c.count(p.addr, "jobs", "error")
		return false, fmt.Errorf("cluster: peer %s answered %d", p.addr, resp.StatusCode)
	}
}

// ReqStat is one cell of the peer-request counter matrix, the
// coordd_peer_requests_total{peer,op,outcome} series.
type ReqStat struct {
	Peer    string `json:"peer"`
	Op      string `json:"op"`
	Outcome string `json:"outcome"`
	Count   int64  `json:"count"`
}

// PeerInfo is one peer's operational state for /healthz and the admin
// endpoint.
type PeerInfo struct {
	Addr     string `json:"addr"`
	Breaker  string `json:"breaker"`
	Failures int    `json:"consecutive_failures,omitempty"`
	// Health is the failure detector's view: alive, suspect, or dead.
	// Empty when no detector has probed this peer.
	Health string `json:"health,omitempty"`
	// Misses is the current consecutive failed-ping count.
	Misses int `json:"missed_pings,omitempty"`
	// LastSeenUnix is when the peer last answered a ping (unix seconds);
	// 0 when it never has.
	LastSeenUnix int64 `json:"last_seen_unix,omitempty"`
}

// Snapshot is the point-in-time cluster view served by
// GET /v1/admin/cluster and folded into /metrics and /healthz.
type Snapshot struct {
	Self string `json:"self"`
	// Members is the full ring membership (self included), sorted — the
	// denominator operators compare the replication factor against.
	Members  []string   `json:"members"`
	VNodes   int        `json:"vnodes"`
	Factor   int        `json:"factor"`
	Peers    []PeerInfo `json:"peers"`
	Requests []ReqStat  `json:"requests"`
}

// Snapshot captures the current peer and counter state, peers and
// counters in stable sorted order.
func (c *Cluster) Snapshot() Snapshot {
	snap := Snapshot{Self: c.self, VNodes: c.vnodes, Factor: c.factor}
	snap.Members = append(append(snap.Members, c.self), c.order...)
	sort.Strings(snap.Members)
	for _, addr := range c.order {
		p := c.peers[addr]
		info := PeerInfo{
			Addr:     p.addr,
			Breaker:  p.breaker.State(),
			Failures: p.breaker.Failures(),
		}
		p.hmu.Lock()
		info.Health = p.health
		info.Misses = p.misses
		if !p.lastSeen.IsZero() {
			info.LastSeenUnix = p.lastSeen.Unix()
		}
		p.hmu.Unlock()
		snap.Peers = append(snap.Peers, info)
	}
	c.mu.Lock()
	for k, v := range c.reqs {
		snap.Requests = append(snap.Requests, ReqStat{Peer: k.peer, Op: k.op, Outcome: k.outcome, Count: v})
	}
	c.mu.Unlock()
	sort.Slice(snap.Requests, func(a, b int) bool {
		x, y := snap.Requests[a], snap.Requests[b]
		if x.Peer != y.Peer {
			return x.Peer < y.Peer
		}
		if x.Op != y.Op {
			return x.Op < y.Op
		}
		return x.Outcome < y.Outcome
	})
	return snap
}
