package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Peer-protocol paths, served by the coordd HTTP layer and dialed by
// this client. The contract: GET returns the bit-identical stored body
// for a key (404 = clean miss), PUT replicates a computed body to its
// ring owner, and POST /v1/peer/steal hands accepted-but-unstarted jobs
// from an overloaded peer's queue to an idle one.
const (
	ResultsPathPrefix = "/v1/peer/results/"
	StealPath         = "/v1/peer/steal"
)

// maxResultBytes bounds a fetched result body; anything bigger than
// this is not a coordd result and is treated as a peer error.
const maxResultBytes = 32 << 20

// StolenJob is one unit of pending work handed from a victim's queue to
// a thief, carrying everything the thief needs to re-admit it locally:
// the victim's canonical key (what the victim will poll for), the
// scheduling envelope, and the canonical spec JSON.
type StolenJob struct {
	Key      string          `json:"key"`
	Flow     string          `json:"flow,omitempty"`
	Class    string          `json:"class,omitempty"`
	Priority int             `json:"priority,omitempty"`
	Spec     json.RawMessage `json:"spec"`
}

// StealRequest is the body of POST /v1/peer/steal: how many jobs the
// thief can take and the thief's advertise address, which the victim
// polls for the stolen jobs' results.
type StealRequest struct {
	Want  int    `json:"want"`
	Thief string `json:"thief"`
}

// StealResponse is the victim's grant (possibly empty).
type StealResponse struct {
	Jobs []StolenJob `json:"jobs"`
}

// Options configures New.
type Options struct {
	// Self is this node's advertise address — how peers reach it (e.g.
	// "http://10.0.0.1:8344" or "10.0.0.1:8344"; a missing scheme
	// defaults to http). Self is always a ring member.
	Self string
	// Peers are the other cluster members' advertise addresses. Self may
	// appear in the list (operators pass one identical -peers flag to
	// every node) and is filtered out of the dial set.
	Peers []string
	// Replicas is the virtual-node count per peer; <= 0 means
	// DefaultReplicas.
	Replicas int
	// Timeout bounds one peer HTTP exchange; 0 means 500 ms. Peer
	// lookups sit on the job path, so this is deliberately short: a slow
	// peer must cost less than the engine run it might save.
	Timeout time.Duration
	// BreakerThreshold is the consecutive-failure count that opens a
	// peer's circuit breaker; 0 means 3.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker short-circuits
	// requests before admitting a probe; 0 means 10 s.
	BreakerCooldown time.Duration
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)

	// now overrides the breaker clock in tests.
	now func() time.Time
}

// peer is one remote cluster member: its address plus breaker state.
type peer struct {
	addr    string
	breaker *Breaker
}

// reqKey labels one cell of the peer-request counter matrix.
type reqKey struct{ peer, op, outcome string }

// Cluster is the node-local cluster view: the ring, the dialable peers,
// their breakers, and the request counters. Safe for concurrent use.
type Cluster struct {
	self     string
	replicas int
	ring     *Ring
	peers    map[string]*peer // addr → peer, self excluded
	order    []string         // sorted peer addrs, self excluded
	client   *http.Client
	timeout  time.Duration
	logf     func(string, ...any)

	mu   sync.Mutex
	reqs map[reqKey]int64
}

// NormalizeAddr canonicalizes a peer address: trims space and trailing
// slashes and defaults the scheme to http, so "10.0.0.1:8344" and
// "http://10.0.0.1:8344/" are the same ring member.
func NormalizeAddr(addr string) string {
	addr = strings.TrimRight(strings.TrimSpace(addr), "/")
	if addr == "" {
		return ""
	}
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return addr
}

// New builds the cluster view. The ring contains self plus every peer;
// the dial set is the peers only.
func New(opts Options) (*Cluster, error) {
	self := NormalizeAddr(opts.Self)
	if self == "" {
		return nil, fmt.Errorf("cluster: empty self (advertise) address")
	}
	members := []string{self}
	peers := make(map[string]*peer)
	for _, p := range opts.Peers {
		addr := NormalizeAddr(p)
		if addr == "" || addr == self {
			continue
		}
		members = append(members, addr)
		if _, ok := peers[addr]; !ok {
			peers[addr] = &peer{
				addr:    addr,
				breaker: newBreaker(opts.BreakerThreshold, opts.BreakerCooldown, opts.now),
			}
		}
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("cluster: no peers besides self %s", self)
	}
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = 500 * time.Millisecond
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	replicas := opts.Replicas
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	order := make([]string, 0, len(peers))
	for addr := range peers {
		order = append(order, addr)
	}
	sort.Strings(order)
	return &Cluster{
		self:     self,
		replicas: replicas,
		ring:     NewRing(members, replicas),
		peers:    peers,
		order:    order,
		client:   &http.Client{Timeout: timeout},
		timeout:  timeout,
		logf:     logf,
		reqs:     make(map[reqKey]int64),
	}, nil
}

// Self returns this node's normalized advertise address.
func (c *Cluster) Self() string { return c.self }

// Owner returns the ring owner of key (possibly self).
func (c *Cluster) Owner(key string) string { return c.ring.Owner(key) }

// OwnsLocally reports whether this node is key's ring owner.
func (c *Cluster) OwnsLocally(key string) bool { return c.ring.Owner(key) == c.self }

// PeerAddrs returns the dialable peers (self excluded), sorted.
func (c *Cluster) PeerAddrs() []string {
	out := make([]string, len(c.order))
	copy(out, c.order)
	return out
}

// PeerDown reports whether addr's breaker is currently refusing
// requests — the "presumed dead" signal the victim-side result poller
// uses to fall back to local compute.
func (c *Cluster) PeerDown(addr string) bool {
	p, ok := c.peers[NormalizeAddr(addr)]
	if !ok {
		return false
	}
	return p.breaker.State() == StateOpen
}

func (c *Cluster) count(peerAddr, op, outcome string) {
	c.mu.Lock()
	c.reqs[reqKey{peerAddr, op, outcome}]++
	c.mu.Unlock()
}

// FetchResult consults key's ring owner for a stored result. It returns
// (nil, false) immediately when this node owns the key (there is no
// better authority to ask), when the owner's breaker is open, or on any
// miss or failure — a peer problem must never be worse than a cache
// miss.
func (c *Cluster) FetchResult(ctx context.Context, key string) ([]byte, bool) {
	owner := c.ring.Owner(key)
	if owner == c.self {
		return nil, false
	}
	body, found, _ := c.FetchFrom(ctx, owner, key)
	return body, found
}

// FetchFrom asks one specific peer for key's result bytes. It returns
// (body, true, nil) on a hit, (nil, false, nil) on a clean miss (the
// peer answered 404 — alive, no result yet), and (nil, false, err) on a
// breaker-open short circuit or transport/protocol failure.
func (c *Cluster) FetchFrom(ctx context.Context, peerAddr, key string) ([]byte, bool, error) {
	p, ok := c.peers[NormalizeAddr(peerAddr)]
	if !ok {
		return nil, false, fmt.Errorf("cluster: unknown peer %s", peerAddr)
	}
	if !p.breaker.Allow() {
		c.count(p.addr, "results", "open")
		return nil, false, fmt.Errorf("cluster: breaker open for %s", p.addr)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.addr+ResultsPathPrefix+key, nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		p.breaker.Failure()
		c.count(p.addr, "results", "error")
		return nil, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		body, err := io.ReadAll(io.LimitReader(resp.Body, maxResultBytes+1))
		if err != nil || len(body) > maxResultBytes {
			p.breaker.Failure()
			c.count(p.addr, "results", "error")
			return nil, false, fmt.Errorf("cluster: reading result from %s: %v", p.addr, err)
		}
		p.breaker.Success()
		c.count(p.addr, "results", "hit")
		return body, true, nil
	case http.StatusNotFound:
		p.breaker.Success()
		c.count(p.addr, "results", "miss")
		return nil, false, nil
	default:
		p.breaker.Failure()
		c.count(p.addr, "results", "error")
		return nil, false, fmt.Errorf("cluster: peer %s answered %d", p.addr, resp.StatusCode)
	}
}

// PushResult replicates a computed body to key's ring owner, so later
// lookups anywhere in the cluster find it with one hop to the owner.
// No-op when this node owns the key. Best-effort: failures cost nothing
// but the breaker bookkeeping — the body is already safe locally.
func (c *Cluster) PushResult(ctx context.Context, key string, body []byte) {
	owner := c.ring.Owner(key)
	if owner == c.self {
		return
	}
	p, ok := c.peers[owner]
	if !ok {
		return
	}
	if !p.breaker.Allow() {
		c.count(p.addr, "replicate", "open")
		return
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, p.addr+ResultsPathPrefix+key, bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		p.breaker.Failure()
		c.count(p.addr, "replicate", "error")
		c.logf("cluster: replicating %s to %s: %v", key[:8], p.addr, err)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		p.breaker.Failure()
		c.count(p.addr, "replicate", "error")
		c.logf("cluster: replicating %s to %s: status %d", key[:8], p.addr, resp.StatusCode)
		return
	}
	p.breaker.Success()
	c.count(p.addr, "replicate", "ok")
}

// StealFrom asks one peer to hand over up to want pending jobs. An
// empty grant is a normal outcome (the peer is not overloaded), not a
// failure.
func (c *Cluster) StealFrom(ctx context.Context, peerAddr string, want int) ([]StolenJob, error) {
	p, ok := c.peers[NormalizeAddr(peerAddr)]
	if !ok {
		return nil, fmt.Errorf("cluster: unknown peer %s", peerAddr)
	}
	if !p.breaker.Allow() {
		c.count(p.addr, "steal", "open")
		return nil, fmt.Errorf("cluster: breaker open for %s", p.addr)
	}
	reqBody, err := json.Marshal(StealRequest{Want: want, Thief: c.self})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.addr+StealPath, bytes.NewReader(reqBody))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		p.breaker.Failure()
		c.count(p.addr, "steal", "error")
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		p.breaker.Failure()
		c.count(p.addr, "steal", "error")
		return nil, fmt.Errorf("cluster: peer %s answered %d to steal", p.addr, resp.StatusCode)
	}
	var grant StealResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxResultBytes)).Decode(&grant); err != nil {
		p.breaker.Failure()
		c.count(p.addr, "steal", "error")
		return nil, err
	}
	p.breaker.Success()
	if len(grant.Jobs) > 0 {
		c.count(p.addr, "steal", "hit")
	} else {
		c.count(p.addr, "steal", "miss")
	}
	return grant.Jobs, nil
}

// ReqStat is one cell of the peer-request counter matrix, the
// coordd_peer_requests_total{peer,op,outcome} series.
type ReqStat struct {
	Peer    string `json:"peer"`
	Op      string `json:"op"`
	Outcome string `json:"outcome"`
	Count   int64  `json:"count"`
}

// PeerInfo is one peer's operational state for /healthz and the admin
// endpoint.
type PeerInfo struct {
	Addr     string `json:"addr"`
	Breaker  string `json:"breaker"`
	Failures int    `json:"consecutive_failures,omitempty"`
}

// Snapshot is the point-in-time cluster view served by
// GET /v1/admin/cluster and folded into /metrics and /healthz.
type Snapshot struct {
	Self     string     `json:"self"`
	Replicas int        `json:"replicas"`
	Peers    []PeerInfo `json:"peers"`
	Requests []ReqStat  `json:"requests"`
}

// Snapshot captures the current peer and counter state, peers and
// counters in stable sorted order.
func (c *Cluster) Snapshot() Snapshot {
	snap := Snapshot{Self: c.self, Replicas: c.replicas}
	for _, addr := range c.order {
		p := c.peers[addr]
		snap.Peers = append(snap.Peers, PeerInfo{
			Addr:     p.addr,
			Breaker:  p.breaker.State(),
			Failures: p.breaker.Failures(),
		})
	}
	c.mu.Lock()
	for k, v := range c.reqs {
		snap.Requests = append(snap.Requests, ReqStat{Peer: k.peer, Op: k.op, Outcome: k.outcome, Count: v})
	}
	c.mu.Unlock()
	sort.Slice(snap.Requests, func(a, b int) bool {
		x, y := snap.Requests[a], snap.Requests[b]
		if x.Peer != y.Peer {
			return x.Peer < y.Peer
		}
		if x.Op != y.Op {
			return x.Op < y.Op
		}
		return x.Outcome < y.Outcome
	})
	return snap
}
