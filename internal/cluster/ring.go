// Package cluster turns a set of coordd daemons into a static-peer
// cluster: a deterministic consistent-hash ring maps every content-
// addressed result key to one owning peer, a small HTTP client fetches
// and replicates result bytes peer-to-peer and pulls pending work from
// overloaded peers, and a per-peer circuit breaker makes a dead peer
// cost only latency — never correctness or availability.
//
// The package is deliberately below internal/service in the dependency
// order: it knows about peers, keys, and opaque result bytes, not about
// jobs, sweeps, or the scheduler. The service layer wires the two
// together (peer endpoints, the lookup path, the work-stealing loop).
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// DefaultVNodes is the virtual-node count per peer. 128 vnodes keep
// the arc-length imbalance across a handful of peers within a few
// percent while the ring stays tiny (3 peers × 128 = 384 points).
const DefaultVNodes = 128

// DefaultFactor is the default replication factor: every result lives
// on its ring owner plus one distinct successor, so any single node
// death loses no cached results.
const DefaultFactor = 2

// ringVersion salts every ring point so the key→owner mapping can be
// versioned independently of the peers' addresses.
const ringVersion = "coordd-ring/v1"

// Ring is a consistent-hash ring over peer addresses. It is immutable
// after construction and safe for concurrent use. The mapping depends
// only on the *set* of peers — construction sorts and dedupes, and
// every vnode's position is a pure hash of (peer, replica index) — so
// any ordering of the same peer list yields the identical ring, and
// removing one peer remaps only the arcs that peer owned.
type Ring struct {
	peers  []string
	vnodes []vnode
}

type vnode struct {
	hash uint64
	peer string
}

// NewRing builds the ring from the peer set with vnodes virtual nodes
// per peer (<= 0 means DefaultVNodes). Duplicate peers are collapsed.
func NewRing(peers []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(peers))
	uniq := make([]string, 0, len(peers))
	for _, p := range peers {
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		uniq = append(uniq, p)
	}
	sort.Strings(uniq)
	r := &Ring{peers: uniq}
	r.vnodes = make([]vnode, 0, len(uniq)*vnodes)
	for _, p := range uniq {
		for i := 0; i < vnodes; i++ {
			r.vnodes = append(r.vnodes, vnode{hash: pointHash(p, i), peer: p})
		}
	}
	sort.Slice(r.vnodes, func(a, b int) bool {
		if r.vnodes[a].hash != r.vnodes[b].hash {
			return r.vnodes[a].hash < r.vnodes[b].hash
		}
		// A full-hash collision between distinct peers is vanishingly
		// rare, but the tie must still break identically on every node.
		return r.vnodes[a].peer < r.vnodes[b].peer
	})
	return r
}

// pointHash places one virtual node: the first 8 bytes of
// sha256(version \x00 peer \x00 replica), independent of every other
// peer in the ring.
func pointHash(peer string, replica int) uint64 {
	var idx [8]byte
	binary.BigEndian.PutUint64(idx[:], uint64(replica))
	h := sha256.New()
	h.Write([]byte(ringVersion))
	h.Write([]byte{0})
	h.Write([]byte(peer))
	h.Write([]byte{0})
	h.Write(idx[:])
	var sum [sha256.Size]byte
	return binary.BigEndian.Uint64(h.Sum(sum[:0])[:8])
}

// keyHash places a result key on the ring.
func keyHash(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// Owner returns the peer owning key: the first virtual node clockwise
// from the key's ring position. An empty ring owns nothing ("").
func (r *Ring) Owner(key string) string {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// Owners returns key's replica set: up to n distinct peers collected by
// walking the ring clockwise from the key's position. The first entry
// is the owner (== Owner(key)), the second its distinct successor, and
// so on. Fewer than n peers in the ring yields all of them. The walk
// skips virtual nodes of peers already collected, so the set is always
// distinct and its order is a pure function of the key and the peer
// set — every node computes the same replica set.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.vnodes) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.peers) {
		n = len(r.peers)
	}
	h := keyHash(key)
	start := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })
	if start == len(r.vnodes) {
		start = 0
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.vnodes) && len(out) < n; i++ {
		p := r.vnodes[(start+i)%len(r.vnodes)].peer
		if seen[p] {
			continue
		}
		seen[p] = true
		out = append(out, p)
	}
	return out
}

// Peers returns the sorted deduplicated peer set.
func (r *Ring) Peers() []string {
	out := make([]string, len(r.peers))
	copy(out, r.peers)
	return out
}
