package cluster

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestBreakerOpensAtThresholdAndProbes(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	b := newBreaker(3, 10*time.Second, clock)

	if b.State() != StateClosed || !b.Allow() {
		t.Fatalf("fresh breaker not closed/allowing: %s", b.State())
	}
	b.Failure()
	b.Failure()
	if b.State() != StateClosed || !b.Allow() {
		t.Fatalf("below threshold should stay closed, got %s", b.State())
	}
	b.Failure() // third consecutive failure: open
	if b.State() != StateOpen {
		t.Fatalf("at threshold want open, got %s", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a request inside the cooldown")
	}
	if b.Failures() != 3 {
		t.Fatalf("failures = %d, want 3", b.Failures())
	}

	// Cooldown elapses: exactly one probe is admitted.
	now = now.Add(11 * time.Second)
	if b.State() != StateHalfOpen {
		t.Fatalf("after cooldown want half-open, got %s", b.State())
	}
	if !b.Allow() {
		t.Fatal("half-open breaker refused the probe")
	}
	if b.Allow() {
		t.Fatal("second concurrent probe admitted")
	}

	// Failed probe re-opens for another full cooldown.
	b.Failure()
	if b.State() != StateOpen || b.Allow() {
		t.Fatalf("failed probe should re-open, got %s", b.State())
	}
	now = now.Add(11 * time.Second)
	if !b.Allow() {
		t.Fatal("probe refused after second cooldown")
	}
	b.Success()
	if b.State() != StateClosed || !b.Allow() || b.Failures() != 0 {
		t.Fatalf("successful probe should close: state=%s failures=%d", b.State(), b.Failures())
	}
}

// An open breaker whose cooldown has just elapsed must admit exactly
// one probe no matter how many goroutines race Allow — run under -race
// this also proves the half-open transition itself is data-race free.
func TestBreakerHalfOpenAdmitsSingleConcurrentProbe(t *testing.T) {
	var clockMu sync.Mutex
	now := time.Unix(1000, 0)
	clock := func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return now
	}
	b := newBreaker(3, 10*time.Second, clock)
	for i := 0; i < 3; i++ {
		b.Failure()
	}
	if b.State() != StateOpen {
		t.Fatalf("breaker not open: %s", b.State())
	}
	for round := 0; round < 20; round++ {
		clockMu.Lock()
		now = now.Add(11 * time.Second) // past the cooldown: half-open
		clockMu.Unlock()

		const goroutines = 16
		var admitted atomic.Int64
		start := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < goroutines; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				if b.Allow() {
					admitted.Add(1)
				}
			}()
		}
		close(start)
		wg.Wait()
		if got := admitted.Load(); got != 1 {
			t.Fatalf("round %d: %d concurrent probes admitted, want exactly 1", round, got)
		}
		// The probe fails: re-open and race the next cooldown expiry.
		b.Failure()
	}
	// A successful probe closes the breaker for everyone.
	clockMu.Lock()
	now = now.Add(11 * time.Second)
	clockMu.Unlock()
	if !b.Allow() {
		t.Fatal("probe refused after final cooldown")
	}
	b.Success()
	if b.State() != StateClosed {
		t.Fatalf("state after successful probe = %s, want closed", b.State())
	}
}

func TestBreakerSuccessResetsConsecutiveCount(t *testing.T) {
	b := newBreaker(3, time.Second, nil)
	for i := 0; i < 10; i++ {
		b.Failure()
		b.Failure()
		b.Success() // never three in a row
	}
	if b.State() != StateClosed {
		t.Fatalf("interleaved successes must keep the breaker closed, got %s", b.State())
	}
}
