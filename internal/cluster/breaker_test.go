package cluster

import (
	"testing"
	"time"
)

func TestBreakerOpensAtThresholdAndProbes(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	b := newBreaker(3, 10*time.Second, clock)

	if b.State() != StateClosed || !b.Allow() {
		t.Fatalf("fresh breaker not closed/allowing: %s", b.State())
	}
	b.Failure()
	b.Failure()
	if b.State() != StateClosed || !b.Allow() {
		t.Fatalf("below threshold should stay closed, got %s", b.State())
	}
	b.Failure() // third consecutive failure: open
	if b.State() != StateOpen {
		t.Fatalf("at threshold want open, got %s", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a request inside the cooldown")
	}
	if b.Failures() != 3 {
		t.Fatalf("failures = %d, want 3", b.Failures())
	}

	// Cooldown elapses: exactly one probe is admitted.
	now = now.Add(11 * time.Second)
	if b.State() != StateHalfOpen {
		t.Fatalf("after cooldown want half-open, got %s", b.State())
	}
	if !b.Allow() {
		t.Fatal("half-open breaker refused the probe")
	}
	if b.Allow() {
		t.Fatal("second concurrent probe admitted")
	}

	// Failed probe re-opens for another full cooldown.
	b.Failure()
	if b.State() != StateOpen || b.Allow() {
		t.Fatalf("failed probe should re-open, got %s", b.State())
	}
	now = now.Add(11 * time.Second)
	if !b.Allow() {
		t.Fatal("probe refused after second cooldown")
	}
	b.Success()
	if b.State() != StateClosed || !b.Allow() || b.Failures() != 0 {
		t.Fatalf("successful probe should close: state=%s failures=%d", b.State(), b.Failures())
	}
}

func TestBreakerSuccessResetsConsecutiveCount(t *testing.T) {
	b := newBreaker(3, time.Second, nil)
	for i := 0; i < 10; i++ {
		b.Failure()
		b.Failure()
		b.Success() // never three in a row
	}
	if b.State() != StateClosed {
		t.Fatalf("interleaved successes must keep the breaker closed, got %s", b.State())
	}
}
