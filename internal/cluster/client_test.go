package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// fakePeer is a minimal peer-protocol server: a key→body map plus a
// steal grant.
type fakePeer struct {
	results map[string][]byte
	grant   []StolenJob
	gets    atomic.Int64
	puts    atomic.Int64
	steals  atomic.Int64
}

func (f *fakePeer) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+ResultsPathPrefix+"{key}", func(w http.ResponseWriter, r *http.Request) {
		f.gets.Add(1)
		body, ok := f.results[r.PathValue("key")]
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Write(body)
	})
	mux.HandleFunc("PUT "+ResultsPathPrefix+"{key}", func(w http.ResponseWriter, r *http.Request) {
		f.puts.Add(1)
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST "+StealPath, func(w http.ResponseWriter, r *http.Request) {
		f.steals.Add(1)
		var req StealRequest
		json.NewDecoder(r.Body).Decode(&req)
		json.NewEncoder(w).Encode(StealResponse{Jobs: f.grant})
	})
	return mux
}

func reqCount(snap Snapshot, op, outcome string) int64 {
	var n int64
	for _, r := range snap.Requests {
		if r.Op == op && r.Outcome == outcome {
			n += r.Count
		}
	}
	return n
}

func TestFetchHitMissAndCounters(t *testing.T) {
	fp := &fakePeer{results: map[string][]byte{"abc123": []byte(`{"x":1}`)}}
	srv := httptest.NewServer(fp.handler())
	defer srv.Close()

	c, err := New(Options{Self: "http://self.invalid:1", Peers: []string{srv.URL}})
	if err != nil {
		t.Fatal(err)
	}
	body, found, err := c.FetchFrom(context.Background(), srv.URL, "abc123")
	if err != nil || !found || string(body) != `{"x":1}` {
		t.Fatalf("hit: body=%q found=%v err=%v", body, found, err)
	}
	_, found, err = c.FetchFrom(context.Background(), srv.URL, "nope")
	if err != nil || found {
		t.Fatalf("miss should be clean: found=%v err=%v", found, err)
	}
	snap := c.Snapshot()
	if reqCount(snap, "results", "hit") != 1 || reqCount(snap, "results", "miss") != 1 {
		t.Fatalf("counter mismatch: %+v", snap.Requests)
	}
	if snap.Peers[0].Breaker != StateClosed {
		t.Fatalf("breaker should be closed after hit+miss, got %s", snap.Peers[0].Breaker)
	}
}

func TestFetchResultRoutesToOwnerAndSkipsSelf(t *testing.T) {
	fp := &fakePeer{results: map[string][]byte{}}
	srv := httptest.NewServer(fp.handler())
	defer srv.Close()
	c, err := New(Options{Self: "http://self.invalid:1", Peers: []string{srv.URL}})
	if err != nil {
		t.Fatal(err)
	}
	// Find one key owned by the peer and one owned by self.
	var peerKey, selfKey string
	for _, k := range randomKeys(200, 21) {
		if c.OwnsLocally(k) {
			selfKey = k
		} else {
			peerKey = k
		}
		if peerKey != "" && selfKey != "" {
			break
		}
	}
	if peerKey == "" || selfKey == "" {
		t.Fatal("could not find keys on both arcs")
	}
	fp.results[peerKey] = []byte("peer-bytes")
	if body, ok := c.FetchResult(context.Background(), peerKey); !ok || string(body) != "peer-bytes" {
		t.Fatalf("owner-routed fetch failed: %q %v", body, ok)
	}
	if _, ok := c.FetchResult(context.Background(), selfKey); ok {
		t.Fatal("self-owned key must not be fetched from a peer")
	}
	if got := fp.gets.Load(); got != 1 {
		t.Fatalf("peer saw %d GETs, want 1 (self-owned key must not dial out)", got)
	}
}

func TestBreakerOpensOnDeadPeerAndShortCircuits(t *testing.T) {
	// A listener that is immediately closed: every dial fails fast.
	srv := httptest.NewServer(http.NotFoundHandler())
	dead := srv.URL
	srv.Close()

	c, err := New(Options{
		Self:             "http://self.invalid:1",
		Peers:            []string{dead},
		Timeout:          200 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, found, err := c.FetchFrom(context.Background(), dead, "k"); found || err == nil {
			t.Fatalf("dead peer fetch %d should error", i)
		}
	}
	snap := c.Snapshot()
	if snap.Peers[0].Breaker != StateOpen {
		t.Fatalf("breaker after 3 failures = %s, want open", snap.Peers[0].Breaker)
	}
	if !c.PeerDown(dead) {
		t.Fatal("PeerDown should report the open breaker")
	}
	// Short circuit: no more dials, outcome "open" counted.
	if _, _, err := c.FetchFrom(context.Background(), dead, "k"); err == nil {
		t.Fatal("open breaker should refuse")
	}
	if _, err := c.StealFrom(context.Background(), dead, 1); err == nil {
		t.Fatal("open breaker should refuse steal too")
	}
	snap = c.Snapshot()
	if reqCount(snap, "results", "open") != 1 || reqCount(snap, "steal", "open") != 1 {
		t.Fatalf("short-circuit counters wrong: %+v", snap.Requests)
	}
	if reqCount(snap, "results", "error") != 3 {
		t.Fatalf("error count = %d, want 3", reqCount(snap, "results", "error"))
	}
}

func TestStealFromGrants(t *testing.T) {
	fp := &fakePeer{grant: []StolenJob{{Key: "k1", Class: "interactive", Spec: json.RawMessage(`{"protocol":"a"}`)}}}
	srv := httptest.NewServer(fp.handler())
	defer srv.Close()
	c, err := New(Options{Self: "http://self.invalid:1", Peers: []string{srv.URL}})
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := c.StealFrom(context.Background(), srv.URL, 2)
	if err != nil || len(jobs) != 1 || jobs[0].Key != "k1" {
		t.Fatalf("steal: jobs=%+v err=%v", jobs, err)
	}
	fp.grant = nil
	jobs, err = c.StealFrom(context.Background(), srv.URL, 2)
	if err != nil || len(jobs) != 0 {
		t.Fatalf("empty grant: jobs=%+v err=%v", jobs, err)
	}
	snap := c.Snapshot()
	if reqCount(snap, "steal", "hit") != 1 || reqCount(snap, "steal", "miss") != 1 {
		t.Fatalf("steal counters wrong: %+v", snap.Requests)
	}
}

func TestPushResultReplicatesToOwner(t *testing.T) {
	fp := &fakePeer{}
	srv := httptest.NewServer(fp.handler())
	defer srv.Close()
	c, err := New(Options{Self: "http://self.invalid:1", Peers: []string{srv.URL}})
	if err != nil {
		t.Fatal(err)
	}
	var peerKey, selfKey string
	for _, k := range randomKeys(200, 23) {
		if c.OwnsLocally(k) {
			selfKey = k
		} else {
			peerKey = k
		}
		if peerKey != "" && selfKey != "" {
			break
		}
	}
	c.PushResult(context.Background(), peerKey, []byte("b"))
	c.PushResult(context.Background(), selfKey, []byte("b"))
	if got := fp.puts.Load(); got != 1 {
		t.Fatalf("owner saw %d PUTs, want 1", got)
	}
	if n := reqCount(c.Snapshot(), "replicate", "ok"); n != 1 {
		t.Fatalf("replicate ok count = %d, want 1", n)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{Self: "", Peers: []string{"http://a:1"}}); err == nil {
		t.Fatal("empty self must be rejected")
	}
	if _, err := New(Options{Self: "http://a:1", Peers: []string{"a:1", "http://a:1/"}}); err == nil {
		t.Fatal("peer list collapsing to self-only must be rejected")
	}
	c, err := New(Options{Self: "a:1", Peers: []string{"http://a:1", "b:2", "b:2/"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.PeerAddrs(); len(got) != 1 || got[0] != "http://b:2" {
		t.Fatalf("normalized peers = %v, want [http://b:2]", got)
	}
	if c.Self() != "http://a:1" {
		t.Fatalf("self = %s", c.Self())
	}
}
