package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// fakePeer is a minimal peer-protocol server: a key→body map plus a
// steal grant.
type fakePeer struct {
	results    map[string][]byte
	grant      []StolenJob
	gets       atomic.Int64
	puts       atomic.Int64
	steals     atomic.Int64
	lastCommit atomic.Value // CommitRequest
}

func (f *fakePeer) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+ResultsPathPrefix+"{key}", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodHead {
			f.gets.Add(1)
		}
		body, ok := f.results[r.PathValue("key")]
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Write(body)
	})
	mux.HandleFunc("PUT "+ResultsPathPrefix+"{key}", func(w http.ResponseWriter, r *http.Request) {
		f.puts.Add(1)
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST "+StealPath, func(w http.ResponseWriter, r *http.Request) {
		f.steals.Add(1)
		var req StealRequest
		json.NewDecoder(r.Body).Decode(&req)
		json.NewEncoder(w).Encode(StealResponse{Jobs: f.grant})
	})
	mux.HandleFunc("POST "+StealCommitPath, func(w http.ResponseWriter, r *http.Request) {
		var req CommitRequest
		json.NewDecoder(r.Body).Decode(&req)
		f.lastCommit.Store(req)
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET "+JobsPathPrefix+"{key}", func(w http.ResponseWriter, r *http.Request) {
		if _, ok := f.results[r.PathValue("key")]; !ok {
			http.NotFound(w, r)
			return
		}
		json.NewEncoder(w).Encode(map[string]bool{"known": true})
	})
	return mux
}

func reqCount(snap Snapshot, op, outcome string) int64 {
	var n int64
	for _, r := range snap.Requests {
		if r.Op == op && r.Outcome == outcome {
			n += r.Count
		}
	}
	return n
}

func TestFetchHitMissAndCounters(t *testing.T) {
	fp := &fakePeer{results: map[string][]byte{"abc123": []byte(`{"x":1}`)}}
	srv := httptest.NewServer(fp.handler())
	defer srv.Close()

	c, err := New(Options{Self: "http://self.invalid:1", Peers: []string{srv.URL}})
	if err != nil {
		t.Fatal(err)
	}
	body, found, err := c.FetchFrom(context.Background(), srv.URL, "abc123")
	if err != nil || !found || string(body) != `{"x":1}` {
		t.Fatalf("hit: body=%q found=%v err=%v", body, found, err)
	}
	_, found, err = c.FetchFrom(context.Background(), srv.URL, "nope")
	if err != nil || found {
		t.Fatalf("miss should be clean: found=%v err=%v", found, err)
	}
	snap := c.Snapshot()
	if reqCount(snap, "results", "hit") != 1 || reqCount(snap, "results", "miss") != 1 {
		t.Fatalf("counter mismatch: %+v", snap.Requests)
	}
	if snap.Peers[0].Breaker != StateClosed {
		t.Fatalf("breaker should be closed after hit+miss, got %s", snap.Peers[0].Breaker)
	}
}

func TestFetchResultConsultsReplicaSet(t *testing.T) {
	fp := &fakePeer{results: map[string][]byte{}}
	srv := httptest.NewServer(fp.handler())
	defer srv.Close()
	c, err := New(Options{Self: "http://self.invalid:1", Peers: []string{srv.URL}})
	if err != nil {
		t.Fatal(err)
	}
	// Find one key owned by the peer and one owned by self. With two
	// members and the default factor 2 both are in every replica set.
	var peerKey, selfKey string
	for _, k := range randomKeys(200, 21) {
		if c.OwnsLocally(k) {
			selfKey = k
		} else {
			peerKey = k
		}
		if peerKey != "" && selfKey != "" {
			break
		}
	}
	if peerKey == "" || selfKey == "" {
		t.Fatal("could not find keys on both arcs")
	}
	fp.results[peerKey] = []byte("peer-bytes")
	if body, from, ok := c.FetchResult(context.Background(), peerKey); !ok || string(body) != "peer-bytes" || from != NormalizeAddr(srv.URL) {
		t.Fatalf("owner-routed fetch failed: %q from %q %v", body, from, ok)
	}
	// A self-owned key falls through to its successor replica: the lookup
	// must dial the peer (it may hold the copy after a local disk loss)
	// and miss cleanly when it does not.
	if _, _, ok := c.FetchResult(context.Background(), selfKey); ok {
		t.Fatal("successor without the body must be a clean miss")
	}
	if got := fp.gets.Load(); got != 2 {
		t.Fatalf("peer saw %d GETs, want 2 (self-owned key must fall through to its successor)", got)
	}
	// Once the successor holds the body, the fall-through finds it.
	fp.results[selfKey] = []byte("successor-bytes")
	if body, _, ok := c.FetchResult(context.Background(), selfKey); !ok || string(body) != "successor-bytes" {
		t.Fatalf("successor fetch failed: %q %v", body, ok)
	}
}

func TestBreakerOpensOnDeadPeerAndShortCircuits(t *testing.T) {
	// A listener that is immediately closed: every dial fails fast.
	srv := httptest.NewServer(http.NotFoundHandler())
	dead := srv.URL
	srv.Close()

	c, err := New(Options{
		Self:             "http://self.invalid:1",
		Peers:            []string{dead},
		Timeout:          200 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, found, err := c.FetchFrom(context.Background(), dead, "k"); found || err == nil {
			t.Fatalf("dead peer fetch %d should error", i)
		}
	}
	snap := c.Snapshot()
	if snap.Peers[0].Breaker != StateOpen {
		t.Fatalf("breaker after 3 failures = %s, want open", snap.Peers[0].Breaker)
	}
	if !c.PeerDown(dead) {
		t.Fatal("PeerDown should report the open breaker")
	}
	// Short circuit: no more dials, outcome "open" counted.
	if _, _, err := c.FetchFrom(context.Background(), dead, "k"); err == nil {
		t.Fatal("open breaker should refuse")
	}
	if _, err := c.StealFrom(context.Background(), dead, 1); err == nil {
		t.Fatal("open breaker should refuse steal too")
	}
	snap = c.Snapshot()
	if reqCount(snap, "results", "open") != 1 || reqCount(snap, "steal", "open") != 1 {
		t.Fatalf("short-circuit counters wrong: %+v", snap.Requests)
	}
	if reqCount(snap, "results", "error") != 3 {
		t.Fatalf("error count = %d, want 3", reqCount(snap, "results", "error"))
	}
}

func TestStealFromGrants(t *testing.T) {
	fp := &fakePeer{grant: []StolenJob{{Key: "k1", Class: "interactive", Spec: json.RawMessage(`{"protocol":"a"}`)}}}
	srv := httptest.NewServer(fp.handler())
	defer srv.Close()
	c, err := New(Options{Self: "http://self.invalid:1", Peers: []string{srv.URL}})
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := c.StealFrom(context.Background(), srv.URL, 2)
	if err != nil || len(jobs) != 1 || jobs[0].Key != "k1" {
		t.Fatalf("steal: jobs=%+v err=%v", jobs, err)
	}
	fp.grant = nil
	jobs, err = c.StealFrom(context.Background(), srv.URL, 2)
	if err != nil || len(jobs) != 0 {
		t.Fatalf("empty grant: jobs=%+v err=%v", jobs, err)
	}
	snap := c.Snapshot()
	if reqCount(snap, "steal", "hit") != 1 || reqCount(snap, "steal", "miss") != 1 {
		t.Fatalf("steal counters wrong: %+v", snap.Requests)
	}
}

func TestPushResultFansOutToReplicaSet(t *testing.T) {
	fp := &fakePeer{}
	srv := httptest.NewServer(fp.handler())
	defer srv.Close()
	c, err := New(Options{Self: "http://self.invalid:1", Peers: []string{srv.URL}})
	if err != nil {
		t.Fatal(err)
	}
	var peerKey, selfKey string
	for _, k := range randomKeys(200, 23) {
		if c.OwnsLocally(k) {
			selfKey = k
		} else {
			peerKey = k
		}
		if peerKey != "" && selfKey != "" {
			break
		}
	}
	// Factor 2 over two members: every key's replica set is both nodes,
	// so each push fans out to the single non-self replica regardless of
	// which arc owns the key.
	if n := c.PushResult(context.Background(), peerKey, []byte("b")); n != 1 {
		t.Fatalf("peer-owned push count = %d, want 1", n)
	}
	if n := c.PushResult(context.Background(), selfKey, []byte("b")); n != 1 {
		t.Fatalf("self-owned push count = %d, want 1 (successor copy)", n)
	}
	if got := fp.puts.Load(); got != 2 {
		t.Fatalf("peer saw %d PUTs, want 2", got)
	}
	if n := reqCount(c.Snapshot(), "replicate", "ok"); n != 2 {
		t.Fatalf("replicate ok count = %d, want 2", n)
	}
}

func TestHasResultAndKnowsJob(t *testing.T) {
	fp := &fakePeer{results: map[string][]byte{"held": []byte("x")}}
	srv := httptest.NewServer(fp.handler())
	defer srv.Close()
	c, err := New(Options{Self: "http://self.invalid:1", Peers: []string{srv.URL}})
	if err != nil {
		t.Fatal(err)
	}
	if has, err := c.HasResult(context.Background(), srv.URL, "held"); err != nil || !has {
		t.Fatalf("HasResult(held) = %v, %v; want true", has, err)
	}
	if has, err := c.HasResult(context.Background(), srv.URL, "absent"); err != nil || has {
		t.Fatalf("HasResult(absent) = %v, %v; want clean false", has, err)
	}
	if known, err := c.KnowsJob(context.Background(), srv.URL, "held"); err != nil || !known {
		t.Fatalf("KnowsJob(held) = %v, %v; want true", known, err)
	}
	if known, err := c.KnowsJob(context.Background(), srv.URL, "absent"); err != nil || known {
		t.Fatalf("KnowsJob(absent) = %v, %v; want clean false", known, err)
	}
	snap := c.Snapshot()
	if reqCount(snap, "probe", "hit") != 1 || reqCount(snap, "probe", "miss") != 1 {
		t.Fatalf("probe counters wrong: %+v", snap.Requests)
	}
	if reqCount(snap, "jobs", "hit") != 1 || reqCount(snap, "jobs", "miss") != 1 {
		t.Fatalf("jobs counters wrong: %+v", snap.Requests)
	}
}

func TestCommitStealPostsKeys(t *testing.T) {
	fp := &fakePeer{}
	srv := httptest.NewServer(fp.handler())
	defer srv.Close()
	c, err := New(Options{Self: "http://self.invalid:1", Peers: []string{srv.URL}})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CommitSteal(context.Background(), srv.URL, []string{"k1", "k2"}); err != nil {
		t.Fatalf("commit: %v", err)
	}
	got := fp.lastCommit.Load()
	if got == nil {
		t.Fatal("peer never saw the commit")
	}
	req := got.(CommitRequest)
	if req.Thief != c.Self() || len(req.Keys) != 2 || req.Keys[0] != "k1" || req.Keys[1] != "k2" {
		t.Fatalf("commit request = %+v", req)
	}
	if n := reqCount(c.Snapshot(), "commit", "ok"); n != 1 {
		t.Fatalf("commit ok count = %d, want 1", n)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{Self: "", Peers: []string{"http://a:1"}}); err == nil {
		t.Fatal("empty self must be rejected")
	}
	if _, err := New(Options{Self: "http://a:1", Peers: []string{"a:1", "http://a:1/"}}); err == nil {
		t.Fatal("peer list collapsing to self-only must be rejected")
	}
	c, err := New(Options{Self: "a:1", Peers: []string{"http://a:1", "b:2", "b:2/"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.PeerAddrs(); len(got) != 1 || got[0] != "http://b:2" {
		t.Fatalf("normalized peers = %v, want [http://b:2]", got)
	}
	if c.Self() != "http://a:1" {
		t.Fatalf("self = %s", c.Self())
	}
}
