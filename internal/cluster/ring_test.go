package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

// randomKeys returns n deterministic pseudo-random hex-ish keys.
func randomKeys(n int, seed int64) []string {
	r := rand.New(rand.NewSource(seed))
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%016x%016x%016x%016x", r.Uint64(), r.Uint64(), r.Uint64(), r.Uint64())
	}
	return keys
}

// The ring mapping must depend only on the peer *set*: any ordering of
// the same peers yields the identical key→owner mapping over ≥1k keys.
func TestRingOrderIndependence(t *testing.T) {
	peers := []string{
		"http://10.0.0.1:8344",
		"http://10.0.0.2:8344",
		"http://10.0.0.3:8344",
		"http://10.0.0.4:8344",
		"http://10.0.0.5:8344",
	}
	keys := randomKeys(2000, 1)
	base := NewRing(peers, 0)
	want := make([]string, len(keys))
	for i, k := range keys {
		want[i] = base.Owner(k)
	}
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		shuffled := append([]string(nil), peers...)
		r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		ring := NewRing(shuffled, 0)
		for i, k := range keys {
			if got := ring.Owner(k); got != want[i] {
				t.Fatalf("trial %d: key %s owner %s, want %s (order %v)", trial, k[:16], got, want[i], shuffled)
			}
		}
	}
	// Duplicates collapse: the same set with repeats is the same ring.
	dup := append(append([]string(nil), peers...), peers[0], peers[3])
	ring := NewRing(dup, 0)
	for i, k := range keys {
		if got := ring.Owner(k); got != want[i] {
			t.Fatalf("duplicated peer list changed owner of %s: %s != %s", k[:16], got, want[i])
		}
	}
}

// Removing one peer must remap only that peer's arcs: every key the
// departed peer did not own keeps its owner.
func TestRingRemovalRemapsOnlyDepartedArcs(t *testing.T) {
	peers := []string{
		"http://10.0.0.1:8344",
		"http://10.0.0.2:8344",
		"http://10.0.0.3:8344",
		"http://10.0.0.4:8344",
	}
	keys := randomKeys(2000, 3)
	full := NewRing(peers, 0)
	for _, departed := range peers {
		var rest []string
		for _, p := range peers {
			if p != departed {
				rest = append(rest, p)
			}
		}
		smaller := NewRing(rest, 0)
		moved := 0
		for _, k := range keys {
			before, after := full.Owner(k), smaller.Owner(k)
			if before == departed {
				moved++
				if after == departed {
					t.Fatalf("key %s still owned by departed peer %s", k[:16], departed)
				}
				continue
			}
			if before != after {
				t.Fatalf("key %s moved %s → %s though %s departed", k[:16], before, after, departed)
			}
		}
		// Sanity: the departed peer actually owned a share of the space.
		if moved == 0 {
			t.Fatalf("departed peer %s owned none of %d keys", departed, len(keys))
		}
	}
}

// Every peer must own a non-trivial share of the key space — the vnode
// count is doing its balancing job.
func TestRingBalance(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1", "http://c:1"}
	ring := NewRing(peers, 0)
	counts := make(map[string]int)
	keys := randomKeys(3000, 11)
	for _, k := range keys {
		counts[ring.Owner(k)]++
	}
	for _, p := range peers {
		if counts[p] < len(keys)/10 {
			t.Fatalf("peer %s owns only %d of %d keys — ring badly imbalanced: %v", p, counts[p], len(keys), counts)
		}
	}
}

// Owners collects distinct clockwise successors: owner first, no
// repeats, clamped to the peer count, identical for any peer ordering.
func TestRingOwnersReplicaSets(t *testing.T) {
	peers := []string{
		"http://10.0.0.1:8344",
		"http://10.0.0.2:8344",
		"http://10.0.0.3:8344",
		"http://10.0.0.4:8344",
	}
	ring := NewRing(peers, 0)
	keys := randomKeys(500, 13)
	for _, k := range keys {
		set := ring.Owners(k, 2)
		if len(set) != 2 {
			t.Fatalf("Owners(%s, 2) returned %d peers", k[:16], len(set))
		}
		if set[0] != ring.Owner(k) {
			t.Fatalf("Owners first entry %s != Owner %s", set[0], ring.Owner(k))
		}
		if set[0] == set[1] {
			t.Fatalf("replica set repeats a peer: %v", set)
		}
		// n above the peer count clamps to all peers, still distinct.
		all := ring.Owners(k, 99)
		if len(all) != len(peers) {
			t.Fatalf("Owners(k, 99) = %d peers, want %d", len(all), len(peers))
		}
		seen := make(map[string]bool)
		for _, p := range all {
			if seen[p] {
				t.Fatalf("Owners(k, 99) repeats %s", p)
			}
			seen[p] = true
		}
	}
	// Replica sets are a pure function of the peer *set*.
	shuffled := []string{peers[2], peers[0], peers[3], peers[1]}
	other := NewRing(shuffled, 0)
	for _, k := range keys {
		a, b := ring.Owners(k, 3), other.Owners(k, 3)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("replica set order-dependent for %s: %v vs %v", k[:16], a, b)
			}
		}
	}
	if got := NewRing(nil, 0).Owners("k", 2); got != nil {
		t.Fatalf("empty ring Owners = %v, want nil", got)
	}
	if got := ring.Owners("k", 0); got != nil {
		t.Fatalf("Owners(k, 0) = %v, want nil", got)
	}
}

// The successor (second replica) must also be spread across the peers:
// vnode interleaving, not arc adjacency, picks it.
func TestRingSuccessorBalance(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	ring := NewRing(peers, 0)
	counts := make(map[string]int)
	keys := randomKeys(4000, 17)
	for _, k := range keys {
		counts[ring.Owners(k, 2)[1]]++
	}
	for _, p := range peers {
		if counts[p] < len(keys)/12 {
			t.Fatalf("peer %s is successor for only %d of %d keys: %v", p, counts[p], len(keys), counts)
		}
	}
}

// Owner is stable for the same key and empty rings degrade gracefully.
func TestRingEdgeCases(t *testing.T) {
	if owner := NewRing(nil, 0).Owner("k"); owner != "" {
		t.Fatalf("empty ring owner = %q, want empty", owner)
	}
	one := NewRing([]string{"http://solo:1"}, 4)
	for _, k := range randomKeys(50, 5) {
		if owner := one.Owner(k); owner != "http://solo:1" {
			t.Fatalf("single-peer ring owner = %q", owner)
		}
	}
	ring := NewRing([]string{"http://a:1", "http://b:1"}, 0)
	for _, k := range randomKeys(50, 9) {
		if ring.Owner(k) != ring.Owner(k) {
			t.Fatalf("owner of %s unstable", k)
		}
	}
}
