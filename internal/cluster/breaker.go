package cluster

import (
	"sync"
	"time"
)

// Breaker states as reported by State and the /healthz peers map.
const (
	StateClosed   = "closed"
	StateOpen     = "open"
	StateHalfOpen = "half-open"
)

// Breaker is a per-peer circuit breaker: after Threshold consecutive
// failures it opens for Cooldown, short-circuiting every request to the
// peer (Allow returns false) so a dead peer costs one timeout per
// cooldown instead of one per lookup. After the cooldown one probe
// request is let through (half-open); its success closes the breaker,
// its failure re-opens it for another cooldown.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu        sync.Mutex
	fails     int
	openUntil time.Time
	probing   bool
}

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	if cooldown <= 0 {
		cooldown = 10 * time.Second
	}
	if now == nil {
		now = time.Now
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// Allow reports whether a request may be sent. While open it refuses;
// once the cooldown has elapsed it admits exactly one probe at a time.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.fails < b.threshold {
		return true
	}
	if b.now().Before(b.openUntil) {
		return false
	}
	if b.probing {
		return false
	}
	b.probing = true
	return true
}

// Success records a successful exchange with the peer, closing the
// breaker.
func (b *Breaker) Success() {
	b.mu.Lock()
	b.fails = 0
	b.probing = false
	b.mu.Unlock()
}

// Failure records a failed exchange; at the threshold the breaker
// (re-)opens for a full cooldown.
func (b *Breaker) Failure() {
	b.mu.Lock()
	b.fails++
	b.probing = false
	if b.fails >= b.threshold {
		b.openUntil = b.now().Add(b.cooldown)
	}
	b.mu.Unlock()
}

// State reports "closed", "open", or "half-open" (cooldown elapsed,
// next request is a probe).
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.fails < b.threshold {
		return StateClosed
	}
	if b.probing || !b.now().Before(b.openUntil) {
		return StateHalfOpen
	}
	return StateOpen
}

// Failures reports the consecutive-failure count.
func (b *Breaker) Failures() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fails
}
