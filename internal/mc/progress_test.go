package mc

import (
	"sync"
	"testing"

	"coordattack/internal/core"
	"coordattack/internal/graph"
	"coordattack/internal/run"
)

// TestEstimateProgress checks that the Progress callback fires on the
// configured interval, that the final snapshot reports the settled
// counts, and that observation never changes the numbers.
func TestEstimateProgress(t *testing.T) {
	g := graph.Pair()
	r, err := run.Good(g, 4, g.Vertices()...)
	if err != nil {
		t.Fatal(err)
	}
	var (
		mu    sync.Mutex
		snaps []Snapshot
	)
	cfg := Config{
		Protocol: core.MustS(0.4), Graph: g, Run: r, Trials: 1000, Seed: 3,
		ProgressEvery: 100,
		Progress: func(s Snapshot) {
			mu.Lock()
			snaps = append(snaps, s)
			mu.Unlock()
		},
	}
	res, err := Estimate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) < 10 {
		t.Fatalf("got %d snapshots, want ≥ 10 for 1000 trials every 100", len(snaps))
	}
	last := snaps[len(snaps)-1]
	if last.Completed+last.Failed != cfg.Trials || last.Trials != cfg.Trials {
		t.Errorf("final snapshot %+v does not report the settled counts", last)
	}

	// The observed job must produce the same Result as the unobserved one.
	plain := cfg
	plain.Progress = nil
	plain.ProgressEvery = 0
	res2, err := Estimate(plain)
	if err != nil {
		t.Fatal(err)
	}
	if res.TA != res2.TA || res.PA != res2.PA || res.NA != res2.NA || res.Completed != res2.Completed {
		t.Errorf("progress observation changed the result: %+v vs %+v", res, res2)
	}
}

func TestEstimateRejectsNegativeProgressInterval(t *testing.T) {
	g := graph.Pair()
	r := run.MustNew(2)
	if _, err := Estimate(Config{Protocol: core.MustS(0.5), Graph: g, Run: r, Trials: 5, ProgressEvery: -1}); err == nil {
		t.Error("negative ProgressEvery accepted")
	}
}
