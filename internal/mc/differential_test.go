package mc

import (
	"bytes"
	"encoding/json"
	"testing"

	"coordattack/internal/baseline"
	"coordattack/internal/core"
	"coordattack/internal/graph"
	"coordattack/internal/protocol"
	"coordattack/internal/rng"
	"coordattack/internal/run"
)

// The mc differential suite: every job is run twice — fast path and
// Reference — and the marshalled Results must be byte-identical. This is
// the estimator-level guarantee on top of the sim-level suite: not just
// per-trial outputs but failure accounting, attack counts, proportions,
// and adaptive stopping points survive the engine swap.

func diffGraphs(t *testing.T) map[string]*graph.G {
	t.Helper()
	complete4, err := graph.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	ring6, err := graph.Ring(6)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*graph.G{"pair": graph.Pair(), "complete:4": complete4, "ring:6": ring6}
}

func diffProtocols(t *testing.T) map[string]protocol.Protocol {
	t.Helper()
	return map[string]protocol.Protocol{
		"s:0.1":       core.MustS(0.1),
		"detfullinfo": baseline.NewDetFullInfo(),
	}
}

// estimateJSON runs cfg and marshals the Result; estimation errors are
// returned as text so failure-path configs can diff error presence too.
func estimateJSON(t *testing.T, cfg Config) []byte {
	t.Helper()
	res, err := Estimate(cfg)
	if res == nil {
		t.Fatalf("Estimate returned nil result (err %v)", err)
	}
	buf, jerr := json.Marshal(res)
	if jerr != nil {
		t.Fatal(jerr)
	}
	if err != nil {
		buf = append(buf, []byte("\nerror: "+err.Error())...)
	}
	return buf
}

func assertPathsAgree(t *testing.T, name string, cfg Config) {
	t.Helper()
	fast := cfg
	fast.Reference = false
	ref := cfg
	ref.Reference = true
	got := estimateJSON(t, fast)
	want := estimateJSON(t, ref)
	if !bytes.Equal(got, want) {
		t.Errorf("%s: fast and reference results differ\nfast:      %s\nreference: %s", name, got, want)
	}
}

func subsetSampler(g *graph.G, n int) RunSampler {
	return func(trial uint64, tape *rng.Tape) (*run.Run, error) {
		return run.RandomSubset(g, n, tape)
	}
}

// TestFastPathMatchesReferenceJSON sweeps ≥50 randomized seeds per
// protocol × graph cell, half the seeds on a fixed random run and half
// through the random-subset sampler, at varying worker counts.
func TestFastPathMatchesReferenceJSON(t *testing.T) {
	const (
		nSeeds = 50
		n      = 6
		trials = 24
	)
	for gname, g := range diffGraphs(t) {
		for pname, p := range diffProtocols(t) {
			for i := 0; i < nSeeds; i++ {
				seed := rng.Mix64(uint64(i)*0x9e3779b97f4a7c15 + 0x5EED)
				cfg := Config{
					Protocol: p,
					Graph:    g,
					Trials:   trials,
					Seed:     seed,
					Workers:  1 + i%3,
				}
				name := gname + "/" + pname
				if i%2 == 0 {
					r, err := run.RandomSubset(g, n, rng.NewTape(rng.Mix64(seed^1)))
					if err != nil {
						t.Fatal(err)
					}
					cfg.Run = r
					assertPathsAgree(t, name+"/fixed", cfg)
				} else {
					cfg.Sampler = subsetSampler(g, n)
					assertPathsAgree(t, name+"/sampler", cfg)
				}
			}
		}
	}
}

// TestFastPathFailureAccountingMatches pins the failure bookkeeping: a
// sampler that errors on a deterministic subset of trials must yield
// identical Completed/Failed splits (and identical error reports) on
// both paths, within budget and when the budget blows.
func TestFastPathFailureAccountingMatches(t *testing.T) {
	g := graph.Pair()
	base := Config{
		Protocol: core.MustS(0.3),
		Graph:    g,
		Sampler:  failingSampler(g, 5, func(trial uint64) bool { return trial%7 == 3 }),
		Trials:   200,
		Seed:     41,
	}
	within := base
	within.MaxFailures = 200
	assertPathsAgree(t, "within-budget", within)

	blown := base
	blown.MaxFailures = 3
	blown.Workers = 1 // deterministic attempted-set when the breaker trips
	assertPathsAgree(t, "budget-blown", blown)
}

// TestFastPathAdaptiveStoppingMatches: the CheckEvery batch boundaries
// and the stop decision are tally-driven, so the early-stopping point
// must be bit-identical across paths.
func TestFastPathAdaptiveStoppingMatches(t *testing.T) {
	g, err := graph.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	r, err := run.Good(g, 6, g.Vertices()...)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Protocol:      core.MustS(0.2),
		Graph:         g,
		Run:           r,
		Trials:        4000,
		Seed:          9,
		TargetCIWidth: 0.25,
		CheckEvery:    64,
	}
	assertPathsAgree(t, "adaptive", cfg)
}

// TestFastPathGating pins which configurations take the fast path.
func TestFastPathGating(t *testing.T) {
	g := graph.Pair()
	r, err := run.Good(g, 4, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := core.MustS(0.1)
	fixed := Config{Protocol: s, Graph: g, Run: r, Trials: 1, Seed: 1}
	if !FastPathAvailable(fixed) {
		t.Error("fixed-run S job should take the fast path")
	}
	sampled := fixed
	sampled.Run = nil
	sampled.Sampler = subsetSampler(g, 4)
	if !FastPathAvailable(sampled) {
		t.Error("sampler S job should take the fast path")
	}
	forced := fixed
	forced.Reference = true
	if FastPathAvailable(forced) {
		t.Error("Reference must force the reference path")
	}
	mutated := fixed
	mutated.Mutator = func(trial uint64, p protocol.Protocol) (protocol.Protocol, error) { return p, nil }
	if FastPathAvailable(mutated) {
		t.Error("mutator jobs must take the reference path")
	}
	slow := fixed
	slow.Protocol = baseline.NewA()
	if FastPathAvailable(slow) {
		t.Error("protocol A has no fast state; gate must refuse")
	}
	badRun := fixed
	badRun.Run = run.MustNew(4).MustDeliver(1, 3, 1) // process 3 off the Pair graph
	if FastPathAvailable(badRun) {
		t.Error("an invalid fixed run must fall back so per-trial failures match")
	}
	// And the invalid-run fallback must still produce identical results.
	badRun.Trials = 20
	badRun.MaxFailures = 20
	assertPathsAgree(t, "invalid-fixed-run", badRun)
}
