package mc

import (
	"fmt"

	"coordattack/internal/stats"
)

// PrecisionConfig asks for an estimate of a chosen outcome probability
// with a target confidence-interval half-width, instead of a fixed trial
// budget: trials double until the Wilson interval at the given z is
// narrow enough (or MaxTrials is hit).
type PrecisionConfig struct {
	// Base is the estimation job; its Trials field is the starting
	// budget (default 1000).
	Base Config
	// HalfWidth is the target Wilson half-width (required, in (0, 0.5)).
	HalfWidth float64
	// Z is the Wilson z-score (default 1.96 ≈ 95%).
	Z float64
	// MaxTrials caps the doubling (default 1 << 20).
	MaxTrials int
}

// PrecisionResult reports the final estimate and the budget it took.
type PrecisionResult struct {
	Result *Result
	// Trials is the final budget used.
	Trials int
	// Achieved reports whether the target half-width was reached for all
	// three outcome probabilities before MaxTrials.
	Achieved bool
}

// EstimateToPrecision runs Estimate with a doubling trial budget until
// the Wilson intervals of TA, PA, and NA are all narrower than the
// target. Determinism: trial t always uses the tapes derived from
// (seed, t), so growing the budget extends — never resamples — the
// earlier trials' universe, and the final result is reproducible.
func EstimateToPrecision(cfg PrecisionConfig) (*PrecisionResult, error) {
	if cfg.HalfWidth <= 0 || cfg.HalfWidth >= 0.5 {
		return nil, fmt.Errorf("mc: target half-width %v outside (0, 0.5)", cfg.HalfWidth)
	}
	if cfg.Z == 0 {
		cfg.Z = 1.96
	}
	if cfg.Z < 0 {
		return nil, fmt.Errorf("mc: z-score %v must be positive", cfg.Z)
	}
	if cfg.MaxTrials == 0 {
		cfg.MaxTrials = 1 << 20
	}
	trials := cfg.Base.Trials
	if trials <= 0 {
		trials = 1000
	}
	for {
		base := cfg.Base
		base.Trials = trials
		res, err := Estimate(base)
		if err != nil {
			return nil, err
		}
		if wide := widest(res); wide <= cfg.HalfWidth {
			return &PrecisionResult{Result: res, Trials: trials, Achieved: true}, nil
		}
		if trials >= cfg.MaxTrials {
			return &PrecisionResult{Result: res, Trials: trials, Achieved: false}, nil
		}
		trials *= 2
		if trials > cfg.MaxTrials {
			trials = cfg.MaxTrials
		}
	}
}

func widest(res *Result) float64 {
	wide := 0.0
	for _, p := range []stats.Proportion{res.TA, res.PA, res.NA} {
		lo, hi := p.Wilson(1.96)
		if hw := (hi - lo) / 2; hw > wide {
			wide = hw
		}
	}
	return wide
}
