package mc

import (
	"testing"

	"coordattack/internal/core"
	"coordattack/internal/graph"
	"coordattack/internal/run"
)

func precisionBase(t *testing.T) Config {
	t.Helper()
	g := graph.Pair()
	good, err := run.Good(g, 5, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Cut at 3 → ML = 2 → Pr[TA] = 0.4: mid-range probabilities whose
	// Wilson intervals genuinely need trials to narrow.
	return Config{Protocol: core.MustS(0.2), Graph: g, Run: run.CutAt(good, 3), Seed: 5}
}

func TestEstimateToPrecisionValidation(t *testing.T) {
	base := precisionBase(t)
	if _, err := EstimateToPrecision(PrecisionConfig{Base: base, HalfWidth: 0}); err == nil {
		t.Error("zero half-width accepted")
	}
	if _, err := EstimateToPrecision(PrecisionConfig{Base: base, HalfWidth: 0.6}); err == nil {
		t.Error("half-width ≥ 0.5 accepted")
	}
	if _, err := EstimateToPrecision(PrecisionConfig{Base: base, HalfWidth: 0.1, Z: -1}); err == nil {
		t.Error("negative z accepted")
	}
}

func TestEstimateToPrecisionReachesTarget(t *testing.T) {
	base := precisionBase(t)
	base.Trials = 200
	res, err := EstimateToPrecision(PrecisionConfig{Base: base, HalfWidth: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Achieved {
		t.Fatalf("target not achieved at %d trials", res.Trials)
	}
	if res.Trials <= 200 {
		t.Errorf("no doubling happened: %d trials", res.Trials)
	}
	if w := widest(res.Result); w > 0.02 {
		t.Errorf("widest half-width %v > target", w)
	}
	// The estimate must still match the exact analysis.
	s := core.MustS(0.2)
	a, err := s.Analyze(base.Graph, base.Run)
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := res.Result.TA.Consistent(a.PTotal, 1e-9); err != nil || !ok {
		t.Errorf("precision estimate %v inconsistent with exact %v", res.Result.TA, a.PTotal)
	}
}

func TestEstimateToPrecisionRespectsCap(t *testing.T) {
	base := precisionBase(t)
	base.Trials = 100
	res, err := EstimateToPrecision(PrecisionConfig{Base: base, HalfWidth: 0.0001, MaxTrials: 800})
	if err != nil {
		t.Fatal(err)
	}
	if res.Achieved {
		t.Error("impossible precision reported achieved")
	}
	if res.Trials != 800 {
		t.Errorf("cap not respected: %d trials", res.Trials)
	}
}

func TestEstimateToPrecisionDeterministic(t *testing.T) {
	base := precisionBase(t)
	base.Trials = 250
	a, err := EstimateToPrecision(PrecisionConfig{Base: base, HalfWidth: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimateToPrecision(PrecisionConfig{Base: base, HalfWidth: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	if a.Trials != b.Trials || a.Result.TA != b.Result.TA {
		t.Error("precision estimation not deterministic")
	}
}
