package mc

import (
	"sync/atomic"
	"testing"

	"coordattack/internal/baseline"
	"coordattack/internal/graph"
	"coordattack/internal/rng"
	"coordattack/internal/run"
)

// cutRunA is the shared fixture for the adaptive tests: Protocol A on
// the cut-at-7 run of a 12-round pair exchange, whose exact outcome
// distribution (TA 5/11, PA 1/11, NA 5/11) keeps all three Wilson
// intervals genuinely wide until a few thousand trials.
func cutRunA(t *testing.T) (*graph.G, *run.Run) {
	t.Helper()
	g := graph.Pair()
	good, err := run.Good(g, 12, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	return g, run.CutAt(good, 7)
}

// TestEarlyStopDeterministicPinned pins the exact trial count at which
// the default stopping rule fires — and the exact counts it fires with —
// at several worker counts. The stopping decision is made at CheckEvery
// batch boundaries on the order-independent cumulative tally, so these
// numbers are part of the determinism contract: a change here means
// early-stopped cache keys no longer reproduce their bodies.
func TestEarlyStopDeterministicPinned(t *testing.T) {
	g, r := cutRunA(t)
	for _, workers := range []int{1, 3, 8} {
		res, err := Estimate(Config{
			Protocol: baseline.NewA(), Graph: g, Run: r,
			Trials: 100_000, Seed: 42, Workers: workers,
			TargetCIWidth: 0.05, CheckEvery: 500,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !res.Stopped {
			t.Fatalf("workers=%d: early stop did not fire", workers)
		}
		if res.Completed != 2000 || res.Failed != 0 {
			t.Errorf("workers=%d: completed=%d failed=%d, want exactly 2000/0",
				workers, res.Completed, res.Failed)
		}
		if res.TA.Hits != 920 || res.PA.Hits != 187 || res.NA.Hits != 893 {
			t.Errorf("workers=%d: tallies TA=%d PA=%d NA=%d, want 920/187/893",
				workers, res.TA.Hits, res.PA.Hits, res.NA.Hits)
		}
		if res.Trials != 100_000 {
			t.Errorf("workers=%d: requested trials rewritten to %d", workers, res.Trials)
		}
		if w := widestWilsonWidth(res); w > 0.05 {
			t.Errorf("workers=%d: stopped with widest interval %v > target 0.05", workers, w)
		}
	}
}

// TestStopWhenCustomPredicate checks that an arbitrary predicate halts
// dispatch at the first batch boundary where it holds.
func TestStopWhenCustomPredicate(t *testing.T) {
	g, r := cutRunA(t)
	res, err := Estimate(Config{
		Protocol: baseline.NewA(), Graph: g, Run: r,
		Trials: 50_000, Seed: 7, Workers: 4,
		CheckEvery: 1000,
		StopWhen:   func(r *Result) bool { return r.Completed >= 2500 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped || res.Completed != 3000 {
		t.Errorf("stopped=%v completed=%d, want stop at the 3000-trial boundary",
			res.Stopped, res.Completed)
	}
}

// TestNoEarlyStopWhenTargetUnreachable: a target the budget cannot reach
// runs every trial and reports an ordinary completion, not a stop.
func TestNoEarlyStopWhenTargetUnreachable(t *testing.T) {
	g, r := cutRunA(t)
	res, err := Estimate(Config{
		Protocol: baseline.NewA(), Graph: g, Run: r,
		Trials: 2000, Seed: 3, TargetCIWidth: 0.001, CheckEvery: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped || res.Completed != 2000 {
		t.Errorf("stopped=%v completed=%d, want full 2000-trial completion", res.Stopped, res.Completed)
	}
}

func TestAdaptiveValidation(t *testing.T) {
	g, r := cutRunA(t)
	base := Config{Protocol: baseline.NewA(), Graph: g, Run: r, Trials: 100}
	bad := []func(*Config){
		func(c *Config) { c.TargetCIWidth = -0.1 },
		func(c *Config) { c.TargetCIWidth = 1 },
		func(c *Config) { c.CheckEvery = -5 },
	}
	for i, mutate := range bad {
		cfg := base
		mutate(&cfg)
		if _, err := Estimate(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

// TestWorkerBudgetRespected asserts the scheduler-facing contract of
// Config.Workers: the number of concurrently executing trial goroutines
// never exceeds the budget, so a service pool running N jobs with a
// per-job budget of W holds at most N·W trial goroutines. The sampler
// runs inside every trial, which makes it the concurrency probe.
func TestWorkerBudgetRespected(t *testing.T) {
	g := graph.Pair()
	const budget = 3
	var cur, peak atomic.Int64
	sampler := func(trial uint64, tape *rng.Tape) (*run.Run, error) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		defer cur.Add(-1)
		return run.Good(g, 6, 1, 2)
	}
	res, err := Estimate(Config{
		Protocol: baseline.NewA(), Graph: g, Sampler: sampler,
		Trials: 4000, Seed: 5, Workers: budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 4000 {
		t.Fatalf("completed %d/4000", res.Completed)
	}
	if p := peak.Load(); p > budget {
		t.Errorf("observed %d concurrent trials, budget %d", p, budget)
	}
}
