package mc

import (
	"testing"

	"coordattack/internal/core"
	"coordattack/internal/graph"
	"coordattack/internal/run"
)

// TestFixedRunAllocRegression pins the fast path's allocation behavior
// at the estimator level: growing the trial count must not grow the
// allocation count beyond a sliver of per-block page refills, because
// the steady-state trial loop itself allocates nothing. The reference
// loop allocates machines, inboxes, and tapes every trial (tens of
// allocations), so any silent fallback or per-trial garbage fails this
// immediately.
func TestFixedRunAllocRegression(t *testing.T) {
	g, err := graph.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	r, err := run.Good(g, n, g.Vertices()...)
	if err != nil {
		t.Fatal(err)
	}
	estimate := func(trials int) func() {
		return func() {
			if _, err := Estimate(Config{
				Protocol: core.MustS(0.1),
				Graph:    g,
				Run:      r,
				Trials:   trials,
				Seed:     1992,
				Workers:  1,
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	const base, extra = 512, 8192
	baseAllocs := testing.AllocsPerRun(1, estimate(base))
	moreAllocs := testing.AllocsPerRun(1, estimate(base+extra))
	perTrial := (moreAllocs - baseAllocs) / extra
	if perTrial > 0.5 {
		t.Errorf("fast fixed-run estimator allocates %.3f/trial (base %v, grown %v), want ~0",
			perTrial, baseAllocs, moreAllocs)
	}
}
