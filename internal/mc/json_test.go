package mc

import (
	"encoding/json"
	"reflect"
	"testing"

	"coordattack/internal/core"
	"coordattack/internal/graph"
	"coordattack/internal/run"
	"coordattack/internal/stats"
)

// TestResultJSONRoundTrip marshals a real estimation Result and checks
// the wire form inverts losslessly — the service API depends on it.
func TestResultJSONRoundTrip(t *testing.T) {
	g := graph.Pair()
	r, err := run.Good(g, 6, g.Vertices()...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Estimate(Config{Protocol: core.MustS(0.3), Graph: g, Run: r, Trials: 500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*res, back) {
		t.Errorf("round trip changed the result:\n got %+v\nwant %+v", back, *res)
	}
}

// TestResultJSONFieldNames pins the wire field names: renaming any of
// them silently breaks every coordd client, so this golden test makes
// the break loud.
func TestResultJSONFieldNames(t *testing.T) {
	res := Result{
		Trials:       4,
		Completed:    3,
		Failed:       1,
		TA:           stats.Proportion{Hits: 2, Trials: 3},
		PA:           stats.Proportion{Hits: 1, Trials: 3},
		NA:           stats.Proportion{Hits: 0, Trials: 3},
		AttackCounts: []int{0, 2, 1},
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	const want = `{"trials":4,"completed":3,"failed":1,` +
		`"ta":{"hits":2,"trials":3},"pa":{"hits":1,"trials":3},"na":{"hits":0,"trials":3},` +
		`"attack_counts":[0,2,1]}`
	if string(data) != want {
		t.Errorf("wire form drifted:\n got %s\nwant %s", data, want)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	s := Snapshot{Trials: 100, Completed: 42, Failed: 3}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	const want = `{"trials":100,"completed":42,"failed":3}`
	if string(data) != want {
		t.Errorf("wire form drifted:\n got %s\nwant %s", data, want)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Errorf("round trip changed the snapshot: got %+v want %+v", back, s)
	}
}
