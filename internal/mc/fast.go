package mc

import (
	"fmt"

	"coordattack/internal/rng"
	"coordattack/internal/sim"
)

// Fast execution path: when the protocol exposes a zero-alloc engine
// (protocol.FastProtocol → sim.Engine), Monte-Carlo workers run trials
// against pooled engines instead of building machines, inboxes, and
// tapes per trial. The path is gated conservatively — any doubt falls
// back to the reference loop — and is bit-identical to it: same tape
// seeds per (Seed, trial, proc), same transition order, same failure
// accounting. The differential suite runs every job both ways and
// compares Result JSON byte for byte.

// newFastPath classifies cfg. It returns a warm engine pool for
// fixed-run jobs, or fastSampler=true for sampler jobs whose workers
// build per-horizon engines lazily. Jobs with a Mutator always take the
// reference path: the mutated protocol varies per trial, so a prebuilt
// engine would execute the wrong protocol.
func newFastPath(cfg Config) (*sim.EnginePool, bool) {
	if cfg.Reference || cfg.Mutator != nil {
		return nil, false
	}
	if cfg.Sampler != nil {
		// Probe the shape with a throwaway horizon; the per-trial horizon
		// is only known once each run is sampled.
		if _, err := sim.NewEngine(cfg.Protocol, cfg.Graph, 1); err != nil {
			return nil, false
		}
		return nil, true
	}
	pool, err := sim.NewEnginePool(cfg.Protocol, cfg.Graph, cfg.Run.N())
	if err != nil {
		return nil, false
	}
	// An invalid fixed run fails every trial on the reference path; keep
	// that accounting (and its error text) by falling back.
	probe := pool.Get()
	loadErr := probe.LoadRun(cfg.Run)
	pool.Put(probe)
	if loadErr != nil {
		return nil, false
	}
	return pool, true
}

// fastFixedTrials is the fixed-run fast worker loop: one warm engine per
// worker, the run bitset loaded once, then a steady-state trial loop
// that allocates nothing (the alloc-regression test pins it).
func (e *estimator) fastFixedTrials(local *tally, w, workers, lo, hi int) {
	cfg := e.cfg
	m := cfg.Graph.NumVertices()
	eng := e.pool.Get()
	defer e.pool.Put(eng)
	if err := eng.LoadRun(cfg.Run); err != nil {
		// Unreachable after the newFastPath probe, but account for it the
		// way the reference loop would rather than aborting the job.
		for trial := lo + w; trial < hi; trial += workers {
			e.fail(local, trial, fmt.Errorf("mc: trial %d: %w", trial, err))
		}
		return
	}
	for trial := lo + w; trial < hi; trial += workers {
		if e.ctx.Err() != nil {
			return
		}
		outs, err := eng.Trial(e.protoStream, uint64(trial))
		if err != nil {
			e.fail(local, trial, fmt.Errorf("mc: trial %d: %w", trial, err))
			continue
		}
		e.record(local, outs, m)
	}
}

// fastSamplerTrials is the sampler fast worker loop: the run is drawn
// per trial (that allocation is the sampler's), then executed on a
// lazily built engine reused while the sampled horizon stays the same.
// The sampler tape is a single reused Tape reseeded to the exact state
// of runStream.Tape(trial, 0), so sampled runs match the reference path
// bit for bit.
func (e *estimator) fastSamplerTrials(local *tally, w, workers, lo, hi int) {
	cfg := e.cfg
	m := cfg.Graph.NumVertices()
	var eng *sim.Engine
	tape := rng.NewTape(0)
	for trial := lo + w; trial < hi; trial += workers {
		if e.ctx.Err() != nil {
			return
		}
		e.runStream.Reseed(tape, uint64(trial), 0)
		r, err := cfg.Sampler(uint64(trial), tape)
		if err != nil {
			e.fail(local, trial, fmt.Errorf("mc: sampling run for trial %d: %w", trial, err))
			continue
		}
		if eng == nil || eng.N() != r.N() {
			eng, err = sim.NewEngine(cfg.Protocol, cfg.Graph, r.N())
			if err != nil {
				e.fail(local, trial, fmt.Errorf("mc: trial %d: %w", trial, err))
				continue
			}
		}
		if err := eng.LoadRun(r); err != nil {
			e.fail(local, trial, fmt.Errorf("mc: trial %d: %w", trial, err))
			continue
		}
		outs, err := eng.Trial(e.protoStream, uint64(trial))
		if err != nil {
			e.fail(local, trial, fmt.Errorf("mc: trial %d: %w", trial, err))
			continue
		}
		e.record(local, outs, m)
	}
}
