package mc

import (
	"math"
	"testing"

	"coordattack/internal/baseline"
	"coordattack/internal/core"
	"coordattack/internal/graph"
	"coordattack/internal/rng"
	"coordattack/internal/run"
)

func TestEstimateValidation(t *testing.T) {
	g := graph.Pair()
	r := run.MustNew(2)
	s := core.MustS(0.5)
	bad := []Config{
		{Graph: g, Run: r, Trials: 10},                          // nil protocol
		{Protocol: s, Run: r, Trials: 10},                       // nil graph
		{Protocol: s, Graph: g, Trials: 10},                     // no run or sampler
		{Protocol: s, Graph: g, Run: r, Trials: 0},              // no trials
		{Protocol: s, Graph: g, Run: r, Trials: 5, Workers: -1}, // bad workers
	}
	for i, cfg := range bad {
		if _, err := Estimate(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestEstimateMatchesExactForS(t *testing.T) {
	// The MC estimate of Protocol S on a fixed run must agree with the
	// closed-form analysis to within the Hoeffding radius.
	eps := 0.2
	s := core.MustS(eps)
	g := graph.Pair()
	r, err := run.Good(g, 4, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Analyze(g, r)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Estimate(Config{Protocol: s, Graph: g, Run: r, Trials: 20000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := res.TA.Consistent(a.PTotal, 1e-6); err != nil || !ok {
		t.Errorf("TA %v inconsistent with exact %v", res.TA, a.PTotal)
	}
	if ok, err := res.PA.Consistent(a.PPartial, 1e-6); err != nil || !ok {
		t.Errorf("PA %v inconsistent with exact %v", res.PA, a.PPartial)
	}
	for i := graph.ProcID(1); i <= 2; i++ {
		p, err := res.AttackProportion(i)
		if err != nil {
			t.Fatal(err)
		}
		if ok, _ := p.Consistent(a.PAttack[i], 1e-6); !ok {
			t.Errorf("attack[%d] = %v inconsistent with exact %v", i, p, a.PAttack[i])
		}
	}
	if _, err := res.AttackProportion(9); err == nil {
		t.Error("out-of-range attack proportion accepted")
	}
}

func TestEstimateDeterministicAcrossWorkerCounts(t *testing.T) {
	s := core.MustS(0.3)
	g := graph.Pair()
	r, err := run.Good(g, 5, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Estimate(Config{Protocol: s, Graph: g, Run: r, Trials: 2000, Seed: 7, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 7} {
		res, err := Estimate(Config{Protocol: s, Graph: g, Run: r, Trials: 2000, Seed: 7, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if res.TA != base.TA || res.PA != base.PA || res.NA != base.NA {
			t.Errorf("workers=%d changed results: %+v vs %+v", workers, res, base)
		}
		for i := range base.AttackCounts {
			if res.AttackCounts[i] != base.AttackCounts[i] {
				t.Errorf("workers=%d changed attack counts", workers)
			}
		}
	}
}

func TestEstimateWithSampler(t *testing.T) {
	// Weak adversary sampler: loss probability 0 must reproduce the
	// good run exactly (liveness 1 for Protocol A).
	g := graph.Pair()
	a := baseline.NewA()
	sampler := func(trial uint64, tape *rng.Tape) (*run.Run, error) {
		return run.RandomLoss(g, 6, 0, tape, 1, 2)
	}
	res, err := Estimate(Config{Protocol: a, Graph: g, Sampler: sampler, Trials: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.TA.Mean() != 1 {
		t.Errorf("lossless sampler: TA = %v, want 1", res.TA)
	}

	// Loss probability 1: nothing delivered, nobody attacks.
	sampler1 := func(trial uint64, tape *rng.Tape) (*run.Run, error) {
		return run.RandomLoss(g, 6, 1, tape, 1, 2)
	}
	res1, err := Estimate(Config{Protocol: a, Graph: g, Sampler: sampler1, Trials: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res1.NA.Mean() != 1 {
		t.Errorf("total-loss sampler: NA = %v, want 1", res1.NA)
	}
}

func TestEstimateSamplerDeterministic(t *testing.T) {
	g := graph.Pair()
	s := core.MustS(0.25)
	sampler := func(trial uint64, tape *rng.Tape) (*run.Run, error) {
		return run.RandomLoss(g, 5, 0.3, tape, 1)
	}
	r1, err := Estimate(Config{Protocol: s, Graph: g, Sampler: sampler, Trials: 1000, Seed: 11, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Estimate(Config{Protocol: s, Graph: g, Sampler: sampler, Trials: 1000, Seed: 11, Workers: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r1.TA != r2.TA || r1.PA != r2.PA {
		t.Errorf("sampler results depend on worker count: %+v vs %+v", r1, r2)
	}
}

func TestEstimateErrorPropagates(t *testing.T) {
	g := graph.Pair()
	s := core.MustS(0.5)
	sampler := func(trial uint64, tape *rng.Tape) (*run.Run, error) {
		bad := run.MustNew(2)
		bad.AddInput(7) // not a vertex: Outputs will reject
		return bad, nil
	}
	if _, err := Estimate(Config{Protocol: s, Graph: g, Sampler: sampler, Trials: 10, Seed: 1}); err == nil {
		t.Error("bad sampled run did not surface an error")
	}
}

func TestProbabilitiesSumToOne(t *testing.T) {
	g := graph.Pair()
	s := core.MustS(0.4)
	r, err := run.Good(g, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Estimate(Config{Protocol: s, Graph: g, Run: r, Trials: 3000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sum := res.TA.Mean() + res.PA.Mean() + res.NA.Mean()
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("outcome fractions sum to %v", sum)
	}
}
