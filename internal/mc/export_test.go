package mc

// FastPathAvailable exposes the fast-path gate so tests can assert which
// configurations actually bypass the reference loop.
func FastPathAvailable(cfg Config) bool {
	pool, fastSampler := newFastPath(cfg)
	return pool != nil || fastSampler
}
