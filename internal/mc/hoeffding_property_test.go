package mc

import (
	"math"
	"testing"

	"coordattack/internal/baseline"
	"coordattack/internal/stats"
)

// TestEarlyStoppedEstimatesSatisfyHoeffding is the statistical-safety
// property of adaptive early stopping: halting when the Wilson interval
// is narrow must not bias the estimate outside its deviation bound.
// For 50 independent seeds, the early-stopped estimate of each outcome
// probability must lie within the Hoeffding radius (at δ=1e-6, so the
// whole test fails spuriously with probability < 1.5e-4) of the exact
// value from internal/baseline's closed-form analysis of Protocol A.
func TestEarlyStoppedEstimatesSatisfyHoeffding(t *testing.T) {
	g, r := cutRunA(t)
	exact, err := baseline.AnalyzeA(r)
	if err != nil {
		t.Fatal(err)
	}
	const delta = 1e-6
	stoppedRuns := 0
	for seed := uint64(1); seed <= 50; seed++ {
		res, err := Estimate(Config{
			Protocol: baseline.NewA(), Graph: g, Run: r,
			Trials: 100_000, Seed: seed, TargetCIWidth: 0.05, CheckEvery: 500,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Stopped {
			stoppedRuns++
		}
		radius, err := stats.HoeffdingRadius(res.Completed, delta)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, c := range []struct {
			name  string
			est   stats.Proportion
			exact float64
		}{
			{"TA", res.TA, exact.PTotal},
			{"PA", res.PA, exact.PPartial},
			{"NA", res.NA, exact.PNone},
		} {
			if d := math.Abs(c.est.Mean() - c.exact); d > radius {
				t.Errorf("seed %d: %s estimate %v deviates %v from exact %v (> Hoeffding radius %v at n=%d)",
					seed, c.name, c.est.Mean(), d, c.exact, radius, res.Completed)
			}
		}
	}
	// The property is about *early-stopped* estimates: the budget is far
	// beyond what the target needs, so every seed must actually stop.
	if stoppedRuns != 50 {
		t.Errorf("only %d/50 seeds stopped early; the property was not exercised", stoppedRuns)
	}
}
