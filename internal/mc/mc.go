// Package mc is the Monte-Carlo harness: it estimates outcome
// probabilities Pr[TA|R], Pr[PA|R], Pr[NA|R] and per-process attack
// probabilities Pr[D_i|R] by repeated execution with independent tapes.
//
// Determinism discipline: trial t always uses the tapes derived from
// (seed, t), whatever the worker count, so results are bit-for-bit
// reproducible and parallelism is purely a speedup. When a RunSampler is
// set, trial t's run likewise depends only on (seed, t).
package mc

import (
	"fmt"
	"runtime"
	"sync"

	"coordattack/internal/graph"
	"coordattack/internal/protocol"
	"coordattack/internal/rng"
	"coordattack/internal/run"
	"coordattack/internal/sim"
	"coordattack/internal/stats"
)

// RunSampler draws the run for one trial — the weak adversary of §8 is a
// RunSampler. The tape is derived from (seed, trial) and is independent
// of the protocol tapes of the same trial.
type RunSampler func(trial uint64, tape *rng.Tape) (*run.Run, error)

// Config describes one estimation job.
type Config struct {
	Protocol protocol.Protocol
	Graph    *graph.G
	// Run is the fixed run to condition on; ignored when Sampler is set.
	Run *run.Run
	// Sampler, when non-nil, draws a fresh run per trial.
	Sampler RunSampler
	Trials  int
	Seed    uint64
	// Workers is the parallelism; 0 means GOMAXPROCS.
	Workers int
}

func (c Config) validate() error {
	if c.Protocol == nil {
		return fmt.Errorf("mc: nil protocol")
	}
	if c.Graph == nil {
		return fmt.Errorf("mc: nil graph")
	}
	if c.Run == nil && c.Sampler == nil {
		return fmt.Errorf("mc: need a run or a sampler")
	}
	if c.Trials <= 0 {
		return fmt.Errorf("mc: trials must be positive, got %d", c.Trials)
	}
	if c.Workers < 0 {
		return fmt.Errorf("mc: workers must be nonnegative, got %d", c.Workers)
	}
	return nil
}

// Result aggregates an estimation job's outcomes.
type Result struct {
	Trials int
	TA     stats.Proportion // total attack — the liveness estimate
	PA     stats.Proportion // partial attack — the unsafety estimate
	NA     stats.Proportion
	// AttackCounts[i] is how many trials process i attacked (index 1..m;
	// index 0 unused): the Pr[D_i|R] estimates.
	AttackCounts []int
}

// AttackProportion returns the Pr[D_i|R] estimate for process i.
func (r *Result) AttackProportion(i graph.ProcID) (stats.Proportion, error) {
	if int(i) < 1 || int(i) >= len(r.AttackCounts) {
		return stats.Proportion{}, fmt.Errorf("mc: process %d out of range", i)
	}
	return stats.NewProportion(r.AttackCounts[i], r.Trials)
}

type tally struct {
	ta, pa, na int
	attacks    []int
}

func (t *tally) merge(o *tally) {
	t.ta += o.ta
	t.pa += o.pa
	t.na += o.na
	for i := range t.attacks {
		t.attacks[i] += o.attacks[i]
	}
}

// Estimate runs the job. The same Config always yields the same Result.
func Estimate(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Trials {
		workers = cfg.Trials
	}
	m := cfg.Graph.NumVertices()
	protoStream := rng.NewStream(cfg.Seed)
	runStream := rng.NewStream(rng.Mix64(cfg.Seed ^ 0xc0ffee))

	tallies := make([]*tally, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		tallies[w] = &tally{attacks: make([]int, m+1)}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := tallies[w]
			for trial := w; trial < cfg.Trials; trial += workers {
				r := cfg.Run
				if cfg.Sampler != nil {
					var err error
					r, err = cfg.Sampler(uint64(trial), runStream.Tape(uint64(trial), 0))
					if err != nil {
						errs[w] = fmt.Errorf("mc: sampling run for trial %d: %w", trial, err)
						return
					}
				}
				outs, err := sim.Outputs(cfg.Protocol, cfg.Graph, r, sim.StreamTapes(protoStream, uint64(trial)))
				if err != nil {
					errs[w] = fmt.Errorf("mc: trial %d: %w", trial, err)
					return
				}
				for i := 1; i <= m; i++ {
					if outs[i] {
						local.attacks[i]++
					}
				}
				switch protocol.Classify(outs) {
				case protocol.TotalAttack:
					local.ta++
				case protocol.PartialAttack:
					local.pa++
				default:
					local.na++
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	total := &tally{attacks: make([]int, m+1)}
	for _, t := range tallies {
		total.merge(t)
	}
	res := &Result{Trials: cfg.Trials, AttackCounts: total.attacks}
	var err error
	if res.TA, err = stats.NewProportion(total.ta, cfg.Trials); err != nil {
		return nil, err
	}
	if res.PA, err = stats.NewProportion(total.pa, cfg.Trials); err != nil {
		return nil, err
	}
	if res.NA, err = stats.NewProportion(total.na, cfg.Trials); err != nil {
		return nil, err
	}
	return res, nil
}
