// Package mc is the Monte-Carlo harness: it estimates outcome
// probabilities Pr[TA|R], Pr[PA|R], Pr[NA|R] and per-process attack
// probabilities Pr[D_i|R] by repeated execution with independent tapes.
//
// Determinism discipline: trial t always uses the tapes derived from
// (seed, t), whatever the worker count, so results are bit-for-bit
// reproducible and parallelism is purely a speedup. When a RunSampler is
// set, trial t's run likewise depends only on (seed, t); when a Mutator
// is set, trial t's protocol likewise depends only on t.
//
// Failure handling: a trial can fail — the sampler errors, a machine
// panics (recovered by sim), or fault injection makes a machine
// misbehave fatally. Failed trials are counted against the MaxFailures
// budget instead of aborting the whole job; once the budget is exceeded
// (or the Ctx is cancelled, or its deadline passes) every worker stops
// promptly and Estimate returns the partial Result accumulated so far
// together with a joined error.
package mc

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"coordattack/internal/graph"
	"coordattack/internal/protocol"
	"coordattack/internal/rng"
	"coordattack/internal/run"
	"coordattack/internal/sim"
	"coordattack/internal/stats"
)

// RunSampler draws the run for one trial — the weak adversary of §8 is a
// RunSampler. The tape is derived from (seed, trial) and is independent
// of the protocol tapes of the same trial.
type RunSampler func(trial uint64, tape *rng.Tape) (*run.Run, error)

// Mutator derives the protocol executed in one trial from the base
// protocol — per-trial fault injection (internal/fault.Mutator) plugs in
// here. It must be deterministic in trial.
type Mutator func(trial uint64, p protocol.Protocol) (protocol.Protocol, error)

// Config describes one estimation job.
type Config struct {
	Protocol protocol.Protocol
	Graph    *graph.G
	// Run is the fixed run to condition on; ignored when Sampler is set.
	Run *run.Run
	// Sampler, when non-nil, draws a fresh run per trial.
	Sampler RunSampler
	// Mutator, when non-nil, transforms the protocol per trial.
	Mutator Mutator
	Trials  int
	Seed    uint64
	// Workers is the parallelism; 0 means GOMAXPROCS.
	Workers int
	// Ctx, when non-nil, cancels the job early: on cancellation (or
	// deadline) Estimate stops all workers promptly and returns the
	// partial Result with the context error joined in. Nil means
	// context.Background().
	Ctx context.Context
	// MaxFailures is the failure budget: up to this many failed trials
	// are recorded and skipped; one more cancels the job. 0 (the
	// default) fails fast on the first failed trial — but even then the
	// partial Result is returned beside the error.
	MaxFailures int
	// Progress, when non-nil, is called from worker goroutines roughly
	// every ProgressEvery finished trials (and once more when the last
	// worker exits). It observes the job — it can never influence it —
	// so determinism of the Result is unaffected. It must be safe for
	// concurrent use and cheap; a slow callback stalls a worker.
	Progress func(Snapshot)
	// ProgressEvery is the finished-trial interval between Progress
	// calls; 0 means every 1000 trials.
	ProgressEvery int
	// StopWhen, when non-nil, turns on adaptive early stopping: it is
	// evaluated on the cumulative partial Result at deterministic batch
	// boundaries (every CheckEvery dispatched trials), and returning true
	// halts dispatch of further trials. Because the batch contents depend
	// only on (Seed, trial) and the predicate sees only the
	// order-independent cumulative tally, the stopping point is exactly
	// reproducible at any worker count. The predicate must not retain the
	// Result it is handed.
	StopWhen func(r *Result) bool
	// TargetCIWidth, when > 0 and StopWhen is nil, installs the default
	// stopping rule: halt once the full width of the widest Wilson 95%
	// interval among TA/PA/NA is at most this value. Must be in [0, 1).
	TargetCIWidth float64
	// CheckEvery is the dispatched-trial batch size between StopWhen
	// evaluations; 0 means every 1000 trials. Smaller batches stop closer
	// to the target at the cost of more synchronization barriers.
	CheckEvery int
	// Reference forces the reference (allocating) execution path even
	// when the protocol has a zero-alloc fast state. The fast path is
	// bit-identical to the reference by construction — the differential
	// suite runs every job both ways and compares Result JSON — so the
	// only reason to set this is that comparison itself.
	Reference bool
}

// Snapshot is one progress observation of a running job: how many of
// the requested trials have finished, split into completions and
// failures. Snapshots are monotone in Completed+Failed but may arrive
// out of order across workers.
type Snapshot struct {
	Trials    int `json:"trials"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
}

func (c Config) validate() error {
	if c.Protocol == nil {
		return fmt.Errorf("mc: nil protocol")
	}
	if c.Graph == nil {
		return fmt.Errorf("mc: nil graph")
	}
	if c.Run == nil && c.Sampler == nil {
		return fmt.Errorf("mc: need a run or a sampler")
	}
	if c.Trials <= 0 {
		return fmt.Errorf("mc: trials must be positive, got %d", c.Trials)
	}
	if c.Workers < 0 {
		return fmt.Errorf("mc: workers must be nonnegative, got %d", c.Workers)
	}
	if c.MaxFailures < 0 {
		return fmt.Errorf("mc: max failures must be nonnegative, got %d", c.MaxFailures)
	}
	if c.ProgressEvery < 0 {
		return fmt.Errorf("mc: progress interval must be nonnegative, got %d", c.ProgressEvery)
	}
	if c.TargetCIWidth < 0 || c.TargetCIWidth >= 1 {
		return fmt.Errorf("mc: target ci width %v outside [0, 1)", c.TargetCIWidth)
	}
	if c.CheckEvery < 0 {
		return fmt.Errorf("mc: check interval must be nonnegative, got %d", c.CheckEvery)
	}
	return nil
}

// Result aggregates an estimation job's outcomes. When every trial
// succeeds, Completed == Trials and Failed == 0; a partial Result (from
// cancellation or budget exhaustion) reports exactly the trials that
// were attempted. All proportions are over Completed trials.
//
// The JSON field names are the wire form served by cmd/coordd (see
// internal/service) and must not change; json_test.go pins them.
type Result struct {
	// Trials is the requested trial count.
	Trials int `json:"trials"`
	// Completed is how many trials executed to an outcome.
	Completed int `json:"completed"`
	// Failed is how many trials failed (sampler error, machine error or
	// recovered panic).
	Failed int              `json:"failed"`
	TA     stats.Proportion `json:"ta"` // total attack — the liveness estimate
	PA     stats.Proportion `json:"pa"` // partial attack — the unsafety estimate
	NA     stats.Proportion `json:"na"`
	// AttackCounts[i] is how many trials process i attacked (index 1..m;
	// index 0 unused): the Pr[D_i|R] estimates.
	AttackCounts []int `json:"attack_counts"`
	// Stopped marks a result halted by adaptive early stopping
	// (Config.StopWhen / TargetCIWidth): the interval converged before
	// the full budget, so Completed+Failed < Trials by design, not by
	// cancellation.
	Stopped bool `json:"stopped,omitempty"`
}

// AttackProportion returns the Pr[D_i|R] estimate for process i.
func (r *Result) AttackProportion(i graph.ProcID) (stats.Proportion, error) {
	if int(i) < 1 || int(i) >= len(r.AttackCounts) {
		return stats.Proportion{}, fmt.Errorf("mc: process %d out of range", i)
	}
	return stats.NewProportion(r.AttackCounts[i], r.Completed)
}

// trialError is one failed trial, retained (up to a cap) for the joined
// error report.
type trialError struct {
	trial uint64
	err   error
}

// maxReportedErrors caps how many per-trial errors the joined error
// carries; the Failed count is always exact.
const maxReportedErrors = 8

type tally struct {
	ta, pa, na int
	completed  int
	failed     int
	attacks    []int
	errs       []trialError
}

func (t *tally) merge(o *tally) {
	t.ta += o.ta
	t.pa += o.pa
	t.na += o.na
	t.completed += o.completed
	t.failed += o.failed
	for i := range t.attacks {
		t.attacks[i] += o.attacks[i]
	}
	t.errs = append(t.errs, o.errs...)
}

// tallyPool recycles per-worker tallies across ranges so the adaptive
// stopping loop (one runRange per CheckEvery batch) does not allocate a
// fresh tally and attacks slice per batch per worker.
var tallyPool = sync.Pool{New: func() any { return new(tally) }}

func getTally(m int) *tally {
	t := tallyPool.Get().(*tally)
	if cap(t.attacks) < m+1 {
		t.attacks = make([]int, m+1)
	}
	t.attacks = t.attacks[:m+1]
	for i := range t.attacks {
		t.attacks[i] = 0
	}
	t.ta, t.pa, t.na = 0, 0, 0
	t.completed, t.failed = 0, 0
	t.errs = t.errs[:0]
	return t
}

func putTally(t *tally) { tallyPool.Put(t) }

// z95 is the 95% normal quantile used by the default stopping rule.
const z95 = 1.959963984540054

// widestWilsonWidth is the full width of the widest Wilson 95% interval
// among TA/PA/NA — the default early-stopping criterion: all three
// outcome probabilities must have converged. With no completed trials
// every interval is [0,1], so the rule never fires vacuously.
func widestWilsonWidth(r *Result) float64 {
	w := 0.0
	for _, p := range []stats.Proportion{r.TA, r.PA, r.NA} {
		if iw := p.WilsonInterval(z95).Width(); iw > w {
			w = iw
		}
	}
	return w
}

// estimator is the shared state of one Estimate call: derived context,
// tape streams, the cross-batch atomic counters, and the cumulative
// tally. It exists so the adaptive early-stopping path can run the same
// deterministic trial loop over successive ranges.
type estimator struct {
	cfg     Config
	ctx     context.Context
	cancel  context.CancelFunc
	workers int

	protoStream rng.Stream
	runStream   rng.Stream

	// Fast path (see fast.go): pool is set for fixed-run jobs whose
	// protocol has a zero-alloc engine; fastSampler marks sampler jobs
	// whose workers build per-horizon engines lazily. Both nil/false
	// means every trial goes through the reference engine.
	pool        *sim.EnginePool
	fastSampler bool

	// failures counts failed trials across workers; passing MaxFailures
	// trips the breaker and cancels the siblings.
	failures atomic.Int64
	// Progress plumbing: completions and finished trials are counted in
	// atomics shared across workers so a Snapshot can be emitted every
	// `every` finished trials without touching the per-worker tallies.
	completedCount atomic.Int64
	finishedCount  atomic.Int64
	every          int64

	total *tally
}

func (e *estimator) budgetBlown() bool {
	return e.failures.Load() > int64(e.cfg.MaxFailures)
}

func (e *estimator) report() {
	e.cfg.Progress(Snapshot{
		Trials:    e.cfg.Trials,
		Completed: int(e.completedCount.Load()),
		Failed:    int(e.failures.Load()),
	})
}

func (e *estimator) tick() {
	if e.cfg.Progress == nil {
		return
	}
	if n := e.finishedCount.Add(1); n%e.every == 0 {
		e.report()
	}
}

// fail books one failed trial into the worker's tally, charges the
// shared budget, and cancels the siblings once it is blown.
func (e *estimator) fail(local *tally, trial int, err error) {
	local.failed++
	if len(local.errs) < maxReportedErrors {
		local.errs = append(local.errs, trialError{trial: uint64(trial), err: err})
	}
	if e.failures.Add(1) > int64(e.cfg.MaxFailures) {
		e.cancel() // budget exhausted: stop the siblings promptly
	}
	e.tick()
}

// record books one completed trial's decision vector into the worker's
// tally. outs is indexed 1..m and may be reused by the caller's engine.
func (e *estimator) record(local *tally, outs []bool, m int) {
	local.completed++
	e.completedCount.Add(1)
	for i := 1; i <= m; i++ {
		if outs[i] {
			local.attacks[i]++
		}
	}
	switch protocol.Classify(outs) {
	case protocol.TotalAttack:
		local.ta++
	case protocol.PartialAttack:
		local.pa++
	default:
		local.na++
	}
	e.tick()
}

// referenceTrials is the reference worker loop: trials lo+w, lo+w+workers,
// ... < hi through sim.Outputs with freshly built machines and tapes.
func (e *estimator) referenceTrials(local *tally, w, workers, lo, hi int) {
	cfg := e.cfg
	m := cfg.Graph.NumVertices()
	for trial := lo + w; trial < hi; trial += workers {
		if e.ctx.Err() != nil {
			return
		}
		r := cfg.Run
		if cfg.Sampler != nil {
			var err error
			r, err = cfg.Sampler(uint64(trial), e.runStream.Tape(uint64(trial), 0))
			if err != nil {
				e.fail(local, trial, fmt.Errorf("mc: sampling run for trial %d: %w", trial, err))
				continue
			}
		}
		p := cfg.Protocol
		if cfg.Mutator != nil {
			var err error
			p, err = cfg.Mutator(uint64(trial), p)
			if err != nil {
				e.fail(local, trial, fmt.Errorf("mc: mutating protocol for trial %d: %w", trial, err))
				continue
			}
		}
		outs, err := sim.Outputs(p, cfg.Graph, r, sim.StreamTapes(e.protoStream, uint64(trial)))
		if err != nil {
			e.fail(local, trial, fmt.Errorf("mc: trial %d: %w", trial, err))
			continue
		}
		e.record(local, outs, m)
	}
}

// runRange executes trials [lo, hi) on the worker pool and folds their
// tallies into the cumulative total. Trial t's tapes depend only on
// (Seed, t) and the merge is order-independent, so the result of a range
// is identical at any worker count and any batch decomposition — and
// identical between the reference and fast worker loops, which the
// differential suite enforces.
func (e *estimator) runRange(lo, hi int) {
	m := e.cfg.Graph.NumVertices()
	workers := e.workers
	if workers > hi-lo {
		workers = hi - lo
	}
	tallies := make([]*tally, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		tallies[w] = getTally(m)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			switch {
			case e.pool != nil:
				e.fastFixedTrials(tallies[w], w, workers, lo, hi)
			case e.fastSampler:
				e.fastSamplerTrials(tallies[w], w, workers, lo, hi)
			default:
				e.referenceTrials(tallies[w], w, workers, lo, hi)
			}
		}(w)
	}
	wg.Wait()
	for _, t := range tallies {
		e.total.merge(t)
		putTally(t)
	}
}

// result builds the cumulative Result from the tally so far.
func (e *estimator) result() (*Result, error) {
	total := e.total
	res := &Result{
		Trials:       e.cfg.Trials,
		Completed:    total.completed,
		Failed:       total.failed,
		AttackCounts: total.attacks,
	}
	if total.completed > 0 {
		var err error
		if res.TA, err = stats.NewProportion(total.ta, total.completed); err != nil {
			return nil, err
		}
		if res.PA, err = stats.NewProportion(total.pa, total.completed); err != nil {
			return nil, err
		}
		if res.NA, err = stats.NewProportion(total.na, total.completed); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Estimate runs the job. The same Config always yields the same Result:
// per-trial outcomes depend only on (Seed, trial), and aggregation is
// order-independent, so the worker count never changes the numbers —
// including the Completed/Failed counts, as long as the job is not
// cancelled mid-flight (failures within budget do not break
// determinism; they are skipped identically at every parallelism).
// Adaptive early stopping (StopWhen / TargetCIWidth) preserves this:
// the stopping rule is evaluated only at CheckEvery-trial batch
// boundaries on the cumulative tally, so the halting point — and with
// it Completed, Failed, and every proportion — is the same at any
// worker count.
//
// Estimate returns a non-nil partial Result together with the error
// when the job ends early: the error joins the context error and/or a
// budget-exhaustion report with up to 8 per-trial failures. An
// early-stopped job is not an error: it returns Result.Stopped == true
// and a nil error.
func Estimate(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ctx := cfg.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Trials {
		workers = cfg.Trials
	}
	every := int64(cfg.ProgressEvery)
	if every == 0 {
		every = 1000
	}
	e := &estimator{
		cfg:         cfg,
		ctx:         ctx,
		cancel:      cancel,
		workers:     workers,
		protoStream: rng.NewStream(cfg.Seed),
		runStream:   rng.NewStream(rng.Mix64(cfg.Seed ^ 0xc0ffee)),
		every:       every,
		total:       &tally{attacks: make([]int, cfg.Graph.NumVertices()+1)},
	}
	e.pool, e.fastSampler = newFastPath(cfg)

	stop := cfg.StopWhen
	if stop == nil && cfg.TargetCIWidth > 0 {
		target := cfg.TargetCIWidth
		stop = func(r *Result) bool { return widestWilsonWidth(r) <= target }
	}

	stopped := false
	if stop == nil {
		e.runRange(0, cfg.Trials)
	} else {
		check := cfg.CheckEvery
		if check == 0 {
			check = 1000
		}
		for lo := 0; lo < cfg.Trials; lo += check {
			if ctx.Err() != nil || e.budgetBlown() {
				break
			}
			hi := lo + check
			if hi > cfg.Trials {
				hi = cfg.Trials
			}
			e.runRange(lo, hi)
			interim, err := e.result()
			if err != nil {
				return nil, err
			}
			if stop(interim) {
				// Only a halt with budget left to burn counts as an
				// early stop; converging exactly at the last batch is an
				// ordinary completion.
				stopped = hi < cfg.Trials
				break
			}
		}
	}
	// One final Snapshot so observers always see the settled counts even
	// when Trials is not a multiple of the reporting interval.
	if cfg.Progress != nil {
		e.report()
	}

	total := e.total
	res, err := e.result()
	if err != nil {
		return nil, err
	}
	res.Stopped = stopped

	// Degradation report: a cancelled or budget-blown job still returns
	// the partial Result, with every cause joined into one error.
	// Failures within budget degrade gracefully: they are reported in
	// res.Failed, the job runs every remaining trial, and the error is
	// nil.
	var causes []error
	if cfg.Ctx != nil && cfg.Ctx.Err() != nil {
		causes = append(causes, cfg.Ctx.Err())
	}
	if e.budgetBlown() {
		causes = append(causes, fmt.Errorf("mc: failure budget exhausted (%d failed > MaxFailures %d)",
			total.failed, cfg.MaxFailures))
	}
	if len(causes) == 0 {
		return res, nil
	}
	// The retained per-trial errors are sorted by trial index so the
	// report is stable whatever the scheduling.
	sort.Slice(total.errs, func(a, b int) bool { return total.errs[a].trial < total.errs[b].trial })
	if len(total.errs) > maxReportedErrors {
		total.errs = total.errs[:maxReportedErrors]
	}
	for _, te := range total.errs {
		causes = append(causes, te.err)
	}
	causes = append([]error{fmt.Errorf("mc: %d/%d trials completed, %d failed",
		total.completed, cfg.Trials, total.failed)}, causes...)
	return res, errors.Join(causes...)
}
