// Package mc is the Monte-Carlo harness: it estimates outcome
// probabilities Pr[TA|R], Pr[PA|R], Pr[NA|R] and per-process attack
// probabilities Pr[D_i|R] by repeated execution with independent tapes.
//
// Determinism discipline: trial t always uses the tapes derived from
// (seed, t), whatever the worker count, so results are bit-for-bit
// reproducible and parallelism is purely a speedup. When a RunSampler is
// set, trial t's run likewise depends only on (seed, t); when a Mutator
// is set, trial t's protocol likewise depends only on t.
//
// Failure handling: a trial can fail — the sampler errors, a machine
// panics (recovered by sim), or fault injection makes a machine
// misbehave fatally. Failed trials are counted against the MaxFailures
// budget instead of aborting the whole job; once the budget is exceeded
// (or the Ctx is cancelled, or its deadline passes) every worker stops
// promptly and Estimate returns the partial Result accumulated so far
// together with a joined error.
package mc

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"coordattack/internal/graph"
	"coordattack/internal/protocol"
	"coordattack/internal/rng"
	"coordattack/internal/run"
	"coordattack/internal/sim"
	"coordattack/internal/stats"
)

// RunSampler draws the run for one trial — the weak adversary of §8 is a
// RunSampler. The tape is derived from (seed, trial) and is independent
// of the protocol tapes of the same trial.
type RunSampler func(trial uint64, tape *rng.Tape) (*run.Run, error)

// Mutator derives the protocol executed in one trial from the base
// protocol — per-trial fault injection (internal/fault.Mutator) plugs in
// here. It must be deterministic in trial.
type Mutator func(trial uint64, p protocol.Protocol) (protocol.Protocol, error)

// Config describes one estimation job.
type Config struct {
	Protocol protocol.Protocol
	Graph    *graph.G
	// Run is the fixed run to condition on; ignored when Sampler is set.
	Run *run.Run
	// Sampler, when non-nil, draws a fresh run per trial.
	Sampler RunSampler
	// Mutator, when non-nil, transforms the protocol per trial.
	Mutator Mutator
	Trials  int
	Seed    uint64
	// Workers is the parallelism; 0 means GOMAXPROCS.
	Workers int
	// Ctx, when non-nil, cancels the job early: on cancellation (or
	// deadline) Estimate stops all workers promptly and returns the
	// partial Result with the context error joined in. Nil means
	// context.Background().
	Ctx context.Context
	// MaxFailures is the failure budget: up to this many failed trials
	// are recorded and skipped; one more cancels the job. 0 (the
	// default) fails fast on the first failed trial — but even then the
	// partial Result is returned beside the error.
	MaxFailures int
	// Progress, when non-nil, is called from worker goroutines roughly
	// every ProgressEvery finished trials (and once more when the last
	// worker exits). It observes the job — it can never influence it —
	// so determinism of the Result is unaffected. It must be safe for
	// concurrent use and cheap; a slow callback stalls a worker.
	Progress func(Snapshot)
	// ProgressEvery is the finished-trial interval between Progress
	// calls; 0 means every 1000 trials.
	ProgressEvery int
}

// Snapshot is one progress observation of a running job: how many of
// the requested trials have finished, split into completions and
// failures. Snapshots are monotone in Completed+Failed but may arrive
// out of order across workers.
type Snapshot struct {
	Trials    int `json:"trials"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
}

func (c Config) validate() error {
	if c.Protocol == nil {
		return fmt.Errorf("mc: nil protocol")
	}
	if c.Graph == nil {
		return fmt.Errorf("mc: nil graph")
	}
	if c.Run == nil && c.Sampler == nil {
		return fmt.Errorf("mc: need a run or a sampler")
	}
	if c.Trials <= 0 {
		return fmt.Errorf("mc: trials must be positive, got %d", c.Trials)
	}
	if c.Workers < 0 {
		return fmt.Errorf("mc: workers must be nonnegative, got %d", c.Workers)
	}
	if c.MaxFailures < 0 {
		return fmt.Errorf("mc: max failures must be nonnegative, got %d", c.MaxFailures)
	}
	if c.ProgressEvery < 0 {
		return fmt.Errorf("mc: progress interval must be nonnegative, got %d", c.ProgressEvery)
	}
	return nil
}

// Result aggregates an estimation job's outcomes. When every trial
// succeeds, Completed == Trials and Failed == 0; a partial Result (from
// cancellation or budget exhaustion) reports exactly the trials that
// were attempted. All proportions are over Completed trials.
//
// The JSON field names are the wire form served by cmd/coordd (see
// internal/service) and must not change; json_test.go pins them.
type Result struct {
	// Trials is the requested trial count.
	Trials int `json:"trials"`
	// Completed is how many trials executed to an outcome.
	Completed int `json:"completed"`
	// Failed is how many trials failed (sampler error, machine error or
	// recovered panic).
	Failed int              `json:"failed"`
	TA     stats.Proportion `json:"ta"` // total attack — the liveness estimate
	PA     stats.Proportion `json:"pa"` // partial attack — the unsafety estimate
	NA     stats.Proportion `json:"na"`
	// AttackCounts[i] is how many trials process i attacked (index 1..m;
	// index 0 unused): the Pr[D_i|R] estimates.
	AttackCounts []int `json:"attack_counts"`
}

// AttackProportion returns the Pr[D_i|R] estimate for process i.
func (r *Result) AttackProportion(i graph.ProcID) (stats.Proportion, error) {
	if int(i) < 1 || int(i) >= len(r.AttackCounts) {
		return stats.Proportion{}, fmt.Errorf("mc: process %d out of range", i)
	}
	return stats.NewProportion(r.AttackCounts[i], r.Completed)
}

// trialError is one failed trial, retained (up to a cap) for the joined
// error report.
type trialError struct {
	trial uint64
	err   error
}

// maxReportedErrors caps how many per-trial errors the joined error
// carries; the Failed count is always exact.
const maxReportedErrors = 8

type tally struct {
	ta, pa, na int
	completed  int
	failed     int
	attacks    []int
	errs       []trialError
}

func (t *tally) merge(o *tally) {
	t.ta += o.ta
	t.pa += o.pa
	t.na += o.na
	t.completed += o.completed
	t.failed += o.failed
	for i := range t.attacks {
		t.attacks[i] += o.attacks[i]
	}
	t.errs = append(t.errs, o.errs...)
}

// Estimate runs the job. The same Config always yields the same Result:
// per-trial outcomes depend only on (Seed, trial), and aggregation is
// order-independent, so the worker count never changes the numbers —
// including the Completed/Failed counts, as long as the job is not
// cancelled mid-flight (failures within budget do not break
// determinism; they are skipped identically at every parallelism).
//
// Estimate returns a non-nil partial Result together with the error
// when the job ends early: the error joins the context error and/or a
// budget-exhaustion report with up to 8 per-trial failures.
func Estimate(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ctx := cfg.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Trials {
		workers = cfg.Trials
	}
	m := cfg.Graph.NumVertices()
	protoStream := rng.NewStream(cfg.Seed)
	runStream := rng.NewStream(rng.Mix64(cfg.Seed ^ 0xc0ffee))

	// failures counts failed trials across workers; passing MaxFailures
	// trips the breaker and cancels the siblings.
	var failures atomic.Int64
	budgetBlown := func() bool { return failures.Load() > int64(cfg.MaxFailures) }

	// Progress plumbing: completions and finished trials are counted in
	// atomics shared across workers so a Snapshot can be emitted every
	// `every` finished trials without touching the per-worker tallies.
	var completedCount, finishedCount atomic.Int64
	every := cfg.ProgressEvery
	if every == 0 {
		every = 1000
	}
	report := func() {
		cfg.Progress(Snapshot{
			Trials:    cfg.Trials,
			Completed: int(completedCount.Load()),
			Failed:    int(failures.Load()),
		})
	}
	tick := func() {
		if cfg.Progress == nil {
			return
		}
		if n := finishedCount.Add(1); n%int64(every) == 0 {
			report()
		}
	}

	tallies := make([]*tally, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		tallies[w] = &tally{attacks: make([]int, m+1)}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := tallies[w]
			for trial := w; trial < cfg.Trials; trial += workers {
				if ctx.Err() != nil {
					return
				}
				fail := func(err error) {
					local.failed++
					if len(local.errs) < maxReportedErrors {
						local.errs = append(local.errs, trialError{trial: uint64(trial), err: err})
					}
					if failures.Add(1) > int64(cfg.MaxFailures) {
						cancel() // budget exhausted: stop the siblings promptly
					}
					tick()
				}
				r := cfg.Run
				if cfg.Sampler != nil {
					var err error
					r, err = cfg.Sampler(uint64(trial), runStream.Tape(uint64(trial), 0))
					if err != nil {
						fail(fmt.Errorf("mc: sampling run for trial %d: %w", trial, err))
						continue
					}
				}
				p := cfg.Protocol
				if cfg.Mutator != nil {
					var err error
					p, err = cfg.Mutator(uint64(trial), p)
					if err != nil {
						fail(fmt.Errorf("mc: mutating protocol for trial %d: %w", trial, err))
						continue
					}
				}
				outs, err := sim.Outputs(p, cfg.Graph, r, sim.StreamTapes(protoStream, uint64(trial)))
				if err != nil {
					fail(fmt.Errorf("mc: trial %d: %w", trial, err))
					continue
				}
				local.completed++
				completedCount.Add(1)
				for i := 1; i <= m; i++ {
					if outs[i] {
						local.attacks[i]++
					}
				}
				switch protocol.Classify(outs) {
				case protocol.TotalAttack:
					local.ta++
				case protocol.PartialAttack:
					local.pa++
				default:
					local.na++
				}
				tick()
			}
		}(w)
	}
	wg.Wait()
	// One final Snapshot so observers always see the settled counts even
	// when Trials is not a multiple of the reporting interval.
	if cfg.Progress != nil {
		report()
	}

	total := &tally{attacks: make([]int, m+1)}
	for _, t := range tallies {
		total.merge(t)
	}
	res := &Result{
		Trials:       cfg.Trials,
		Completed:    total.completed,
		Failed:       total.failed,
		AttackCounts: total.attacks,
	}
	if total.completed > 0 {
		var err error
		if res.TA, err = stats.NewProportion(total.ta, total.completed); err != nil {
			return nil, err
		}
		if res.PA, err = stats.NewProportion(total.pa, total.completed); err != nil {
			return nil, err
		}
		if res.NA, err = stats.NewProportion(total.na, total.completed); err != nil {
			return nil, err
		}
	}

	// Degradation report: a cancelled or budget-blown job still returns
	// the partial Result, with every cause joined into one error.
	// Failures within budget degrade gracefully: they are reported in
	// res.Failed, the job runs every remaining trial, and the error is
	// nil.
	var causes []error
	if cfg.Ctx != nil && cfg.Ctx.Err() != nil {
		causes = append(causes, cfg.Ctx.Err())
	}
	if budgetBlown() {
		causes = append(causes, fmt.Errorf("mc: failure budget exhausted (%d failed > MaxFailures %d)",
			total.failed, cfg.MaxFailures))
	}
	if len(causes) == 0 {
		return res, nil
	}
	// The retained per-trial errors are sorted by trial index so the
	// report is stable whatever the scheduling.
	sort.Slice(total.errs, func(a, b int) bool { return total.errs[a].trial < total.errs[b].trial })
	if len(total.errs) > maxReportedErrors {
		total.errs = total.errs[:maxReportedErrors]
	}
	for _, te := range total.errs {
		causes = append(causes, te.err)
	}
	causes = append([]error{fmt.Errorf("mc: %d/%d trials completed, %d failed",
		total.completed, cfg.Trials, total.failed)}, causes...)
	return res, errors.Join(causes...)
}
