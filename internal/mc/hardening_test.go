package mc

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"coordattack/internal/core"
	"coordattack/internal/graph"
	"coordattack/internal/protocol"
	"coordattack/internal/rng"
	"coordattack/internal/run"
	"coordattack/internal/sim"
)

// failingSampler returns the good run except on trials where pick says
// to fail.
func failingSampler(g *graph.G, n int, pick func(trial uint64) bool) RunSampler {
	return func(trial uint64, tape *rng.Tape) (*run.Run, error) {
		if pick(trial) {
			return nil, fmt.Errorf("injected sampler failure on trial %d", trial)
		}
		return run.Good(g, n, 1, 2)
	}
}

// TestSamplerErrorCancelsSiblings is the wasted-work regression: with
// fail-fast semantics (MaxFailures 0) and an always-erroring sampler,
// the cancel signal must stop the other workers promptly instead of
// letting them grind through a million trials.
func TestSamplerErrorCancelsSiblings(t *testing.T) {
	g := graph.Pair()
	const trials = 1_000_000
	res, err := Estimate(Config{
		Protocol: core.MustS(0.5),
		Graph:    g,
		Sampler:  failingSampler(g, 2, func(uint64) bool { return true }),
		Trials:   trials,
		Seed:     1,
		Workers:  8,
	})
	if err == nil {
		t.Fatal("always-erroring sampler produced no error")
	}
	if res == nil {
		t.Fatal("no partial result returned")
	}
	attempted := res.Completed + res.Failed
	if attempted >= trials/2 {
		t.Errorf("cancel did not propagate: %d of %d trials attempted", attempted, trials)
	}
	if res.Completed != 0 {
		t.Errorf("Completed = %d, want 0", res.Completed)
	}
	if res.Failed < 1 {
		t.Errorf("Failed = %d, want ≥ 1", res.Failed)
	}
}

// TestFailureBudgetGracefulDegradation: failures within MaxFailures are
// counted and skipped, every other trial still runs, the error is nil,
// and the partial counts are exact and identical at every worker count.
func TestFailureBudgetGracefulDegradation(t *testing.T) {
	g := graph.Pair()
	const trials = 1000
	wantFailed := 0
	for trial := 0; trial < trials; trial++ {
		if trial%10 == 3 {
			wantFailed++
		}
	}
	var results []*Result
	for _, workers := range []int{1, 8} {
		res, err := Estimate(Config{
			Protocol:    core.MustS(0.5),
			Graph:       g,
			Sampler:     failingSampler(g, 4, func(trial uint64) bool { return trial%10 == 3 }),
			Trials:      trials,
			Seed:        7,
			Workers:     workers,
			MaxFailures: trials, // ample budget: never aborts
		})
		if err != nil {
			t.Fatalf("workers=%d: failures within budget must not error: %v", workers, err)
		}
		if res.Failed != wantFailed || res.Completed != trials-wantFailed {
			t.Errorf("workers=%d: Completed/Failed = %d/%d, want %d/%d",
				workers, res.Completed, res.Failed, trials-wantFailed, wantFailed)
		}
		results = append(results, res)
	}
	a, b := results[0], results[1]
	if a.TA != b.TA || a.PA != b.PA || a.NA != b.NA || a.Completed != b.Completed || a.Failed != b.Failed {
		t.Errorf("results differ across worker counts:\n1: %+v\n8: %+v", a, b)
	}
	for i := range a.AttackCounts {
		if a.AttackCounts[i] != b.AttackCounts[i] {
			t.Errorf("AttackCounts[%d] differ: %d vs %d", i, a.AttackCounts[i], b.AttackCounts[i])
		}
	}
}

// TestBudgetExhaustionReturnsPartialResult: one failure beyond the
// budget aborts the job with a joined error and a partial Result whose
// counts reflect exactly the attempted trials.
func TestBudgetExhaustionReturnsPartialResult(t *testing.T) {
	g := graph.Pair()
	res, err := Estimate(Config{
		Protocol:    core.MustS(0.5),
		Graph:       g,
		Sampler:     failingSampler(g, 2, func(uint64) bool { return true }),
		Trials:      100,
		Seed:        3,
		Workers:     4,
		MaxFailures: 5,
	})
	if err == nil {
		t.Fatal("exhausted budget produced no error")
	}
	if res == nil {
		t.Fatal("no partial result")
	}
	if res.Failed <= 5 {
		t.Errorf("Failed = %d, want > MaxFailures 5", res.Failed)
	}
	if res.Completed+res.Failed > res.Trials {
		t.Errorf("attempted %d > requested %d", res.Completed+res.Failed, res.Trials)
	}
}

// TestCancelledContextStopsJob: a pre-cancelled context stops the job
// before any trial runs; the context error is in the joined error.
func TestCancelledContextStopsJob(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := graph.Pair()
	good, err := run.Good(g, 4, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, eerr := Estimate(Config{
		Protocol: core.MustS(0.5),
		Graph:    g,
		Run:      good,
		Trials:   100_000,
		Seed:     1,
		Ctx:      ctx,
	})
	if eerr == nil {
		t.Fatal("cancelled context produced no error")
	}
	if !errors.Is(eerr, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", eerr)
	}
	if res == nil || res.Completed != 0 || res.Failed != 0 {
		t.Errorf("partial result = %+v, want zero attempted trials", res)
	}
}

// TestDeadlineStopsJob: a context deadline halts a long job partway and
// surfaces DeadlineExceeded with the partial tallies.
func TestDeadlineStopsJob(t *testing.T) {
	g := graph.Pair()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	slow := func(trial uint64, tape *rng.Tape) (*run.Run, error) {
		time.Sleep(time.Millisecond)
		return run.Good(g, 2, 1, 2)
	}
	const trials = 1_000_000 // hours of work without the deadline
	res, err := Estimate(Config{
		Protocol: core.MustS(0.5),
		Graph:    g,
		Sampler:  slow,
		Trials:   trials,
		Seed:     1,
		Workers:  4,
		Ctx:      ctx,
	})
	if err == nil {
		t.Fatal("deadline produced no error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error %v does not wrap DeadlineExceeded", err)
	}
	if res == nil || res.Completed+res.Failed >= trials {
		t.Errorf("deadline did not stop the job early: %+v", res)
	}
}

// alwaysPanicProto panics in Step on every machine — the recovered-panic
// failure path end to end through mc.
type alwaysPanicProto struct{}

func (alwaysPanicProto) Name() string { return "always-panic" }

func (alwaysPanicProto) NewMachine(cfg protocol.Config) (protocol.Machine, error) {
	return alwaysPanicMachine{}, nil
}

type alwaysPanicMachine struct{}

type dummyMsg struct{}

func (dummyMsg) CAMessage() {}

func (alwaysPanicMachine) Send(int, graph.ProcID) protocol.Message { return dummyMsg{} }
func (alwaysPanicMachine) Step(int, []protocol.Received) error     { panic("injected") }
func (alwaysPanicMachine) Output() bool                            { return false }

// TestMachinePanicCountsAsFailedTrial: panics recovered by sim surface
// as failed trials, not process crashes, and within budget the job
// completes without error.
func TestMachinePanicCountsAsFailedTrial(t *testing.T) {
	g := graph.Pair()
	good, err := run.Good(g, 2, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, eerr := Estimate(Config{
		Protocol:    alwaysPanicProto{},
		Graph:       g,
		Run:         good,
		Trials:      3,
		Seed:        1,
		MaxFailures: 5,
	})
	if eerr != nil {
		t.Fatalf("panics within budget must not error the job: %v", eerr)
	}
	if res.Failed != 3 || res.Completed != 0 {
		t.Errorf("Completed/Failed = %d/%d, want 0/3", res.Completed, res.Failed)
	}
}

// TestMutatorHonoredPerTrial: the Mutator transforms the protocol of
// exactly the trials it targets, deterministically.
func TestMutatorHonoredPerTrial(t *testing.T) {
	g := graph.Pair()
	good, err := run.Good(g, 2, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	mut := func(trial uint64, p protocol.Protocol) (protocol.Protocol, error) {
		if trial%2 == 1 {
			return alwaysPanicProto{}, nil
		}
		return p, nil
	}
	res, eerr := Estimate(Config{
		Protocol:    core.MustS(0.5),
		Graph:       g,
		Run:         good,
		Mutator:     mut,
		Trials:      100,
		Seed:        1,
		Workers:     4,
		MaxFailures: 100,
	})
	if eerr != nil {
		t.Fatal(eerr)
	}
	if res.Failed != 50 || res.Completed != 50 {
		t.Errorf("Completed/Failed = %d/%d, want 50/50", res.Completed, res.Failed)
	}
	// The error path must be sim's MachineError, proving the panic was
	// recovered inside the engine.
	_, serr := sim.Outputs(alwaysPanicProto{}, g, good, sim.SeedTapes(1))
	if !errors.Is(serr, sim.ErrMachineFault) {
		t.Errorf("panic not converted to MachineError: %v", serr)
	}
}
