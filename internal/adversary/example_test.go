package adversary_test

import (
	"fmt"
	"log"

	"coordattack/internal/adversary"
	"coordattack/internal/core"
	"coordattack/internal/graph"
)

// ExampleExhaustive computes U_s(S) exactly by enumerating the strong
// adversary's entire run space on a tiny instance: the maximum is ε,
// rediscovering Theorem 6.7's tightness.
func ExampleExhaustive() {
	g := graph.Pair()
	s := core.MustS(0.25)
	res, err := adversary.Exhaustive(g, 2, adversary.ExactSObjective(s, g))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("U_s(S) = %.2f over %d runs\n", res.Value, res.Evaluations)
	// Output:
	// U_s(S) = 0.25 over 64 runs
}

// ExampleHillClimb searches a space too large to enumerate and still
// finds the exact worst case.
func ExampleHillClimb() {
	g, err := graph.Ring(4)
	if err != nil {
		log.Fatal(err)
	}
	s := core.MustS(0.1)
	res, err := adversary.HillClimb(g, 6, adversary.ExactSObjective(s, g),
		adversary.HillConfig{Restarts: 2, Steps: 60, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("worst Pr[PA|R] found: %.2f\n", res.Value)
	// Output:
	// worst Pr[PA|R] found: 0.10
}
