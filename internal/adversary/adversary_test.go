package adversary

import (
	"math"
	"testing"

	"coordattack/internal/baseline"
	"coordattack/internal/core"
	"coordattack/internal/graph"
	"coordattack/internal/mc"
	"coordattack/internal/run"
)

func TestExhaustiveFindsExactUnsafetyOfS(t *testing.T) {
	// Tiny instance: K_2, N=2 → 2^4 delivery patterns × 2^2 input sets.
	// The exhaustive max of Pr[PA|R] must be exactly ε (Theorem 6.7 is
	// tight; UnsafetySup).
	eps := 0.25
	s := core.MustS(eps)
	g := graph.Pair()
	res, err := Exhaustive(g, 2, ExactSObjective(s, g))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-eps) > 1e-12 {
		t.Errorf("exhaustive U_s(S) = %v, want ε = %v (worst run %v)", res.Value, eps, res.Run)
	}
	if res.Evaluations != 64 {
		t.Errorf("evaluated %d runs, want 64", res.Evaluations)
	}
}

func TestExhaustiveFindsExactUnsafetyOfA(t *testing.T) {
	// K_2, N=3: U_s(A) = 1/(N-1) = 0.5, found exhaustively.
	g := graph.Pair()
	res, err := Exhaustive(g, 3, ExactAObjective())
	if err != nil {
		t.Fatal(err)
	}
	want, err := baseline.WorstCutUnsafetyA(3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-want) > 1e-12 {
		t.Errorf("exhaustive U_s(A) = %v, want %v", res.Value, want)
	}
}

func TestExhaustiveRejectsHugeSpace(t *testing.T) {
	g, err := graph.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Exhaustive(g, 3, ExactAObjective()); err == nil {
		t.Error("huge exhaustive search accepted")
	}
}

func TestStructuredFamilyContainsWorstCases(t *testing.T) {
	// The structured family must already realize U_s for both protocols
	// at sizes where exhaustive search is impossible.
	g := graph.Pair()
	const n = 12
	family, err := Structured(g, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(family) == 0 {
		t.Fatal("empty family")
	}
	for _, r := range family {
		if err := r.Validate(g); err != nil {
			t.Fatalf("family contains invalid run: %v", err)
		}
	}

	eps := 0.05
	s := core.MustS(eps)
	resS, err := SearchFamily(family, ExactSObjective(s, g))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(resS.Value-eps) > 1e-12 {
		t.Errorf("family U_s(S) = %v, want ε = %v", resS.Value, eps)
	}

	resA, err := SearchFamily(family, ExactAObjective())
	if err != nil {
		t.Fatal(err)
	}
	wantA, err := baseline.WorstCutUnsafetyA(n)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(resA.Value-wantA) > 1e-12 {
		t.Errorf("family U_s(A) = %v, want %v", resA.Value, wantA)
	}
}

func TestSearchFamilyEmpty(t *testing.T) {
	if _, err := SearchFamily(nil, ExactAObjective()); err == nil {
		t.Error("empty family accepted")
	}
}

func TestHillClimbMatchesExhaustive(t *testing.T) {
	// On a small instance the hill climber must find the true maximum
	// (it starts from the structured family's best, so this also guards
	// against regressions in the proposal loop).
	eps := 0.3
	s := core.MustS(eps)
	g := graph.Pair()
	const n = 2
	exact, err := Exhaustive(g, n, ExactSObjective(s, g))
	if err != nil {
		t.Fatal(err)
	}
	hill, err := HillClimb(g, n, ExactSObjective(s, g), HillConfig{Restarts: 3, Steps: 60, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hill.Value-exact.Value) > 1e-12 {
		t.Errorf("hill climb found %v, exhaustive %v", hill.Value, exact.Value)
	}
}

func TestHillClimbOnLargerGraph(t *testing.T) {
	// Ring of 4, N=6: exhaustive is impossible; the climber must still
	// reach ε (we know U_s(S) = ε exactly from UnsafetySup).
	eps := 0.1
	s := core.MustS(eps)
	g, err := graph.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := HillClimb(g, 6, ExactSObjective(s, g), HillConfig{Restarts: 2, Steps: 80, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-eps) > 1e-12 {
		t.Errorf("hill climb U_s(S) = %v, want ε = %v", res.Value, eps)
	}
}

func TestHillClimbValidation(t *testing.T) {
	g := graph.Pair()
	if _, err := HillClimb(g, 2, ExactAObjective(), HillConfig{Restarts: 0, Steps: 5}); err == nil {
		t.Error("restarts=0 accepted")
	}
	if _, err := HillClimb(g, 2, ExactAObjective(), HillConfig{Restarts: 1, Steps: 0}); err == nil {
		t.Error("steps=0 accepted")
	}
}

func TestHillClimbDeterministic(t *testing.T) {
	eps := 0.2
	s := core.MustS(eps)
	g := graph.Pair()
	cfg := HillConfig{Restarts: 2, Steps: 40, Seed: 77}
	a, err := HillClimb(g, 4, ExactSObjective(s, g), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := HillClimb(g, 4, ExactSObjective(s, g), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Value != b.Value || !a.Run.Equal(b.Run) {
		t.Error("hill climb not deterministic for fixed seed")
	}
}

func TestMCObjectiveAgreesWithExact(t *testing.T) {
	eps := 0.3
	s := core.MustS(eps)
	g := graph.Pair()
	good, err := run.Good(g, 4, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := run.CutAt(good, 3)
	exactObj := ExactSObjective(s, g)
	exact, err := exactObj(r)
	if err != nil {
		t.Fatal(err)
	}
	mcObj := MCObjective(s, g, 20000, 5)
	est, err := mcObj(r)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-exact) > 0.02 {
		t.Errorf("MC objective %v vs exact %v", est, exact)
	}
}

func TestWeakSamplerZeroLossIsGoodRun(t *testing.T) {
	g, err := graph.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	s := core.MustS(0.25)
	res, err := mc.Estimate(mc.Config{
		Protocol: s, Graph: g,
		Sampler: WeakSampler(g, 8, 0, 1, 2, 3, 4),
		Trials:  2000, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Lossless weak adversary = good run: liveness = min(1, ε·ML(R_g)).
	good, err := run.Good(g, 8, 1, 2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Analyze(g, good)
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := res.TA.Consistent(a.PTotal, 1e-6); err != nil || !ok {
		t.Errorf("weak(p=0) TA %v inconsistent with good-run exact %v", res.TA, a.PTotal)
	}
}

func TestWeakAdversaryDisagreementFarBelowEpsilon(t *testing.T) {
	// §8's observation: against random loss the *expected* disagreement
	// is far below the worst case ε, because landing rfire in the unit
	// window requires adversarial precision that random loss lacks.
	g := graph.Pair()
	eps := 0.2
	s := core.MustS(eps)
	res, err := mc.Estimate(mc.Config{
		Protocol: s, Graph: g,
		Sampler: WeakSampler(g, 30, 0.05, 1, 2),
		Trials:  4000, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PA.Mean() > eps/2 {
		t.Errorf("weak-adversary disagreement %v not well below ε = %v", res.PA, eps)
	}
	if res.TA.Mean() < 0.9 {
		t.Errorf("weak-adversary liveness %v unexpectedly low", res.TA)
	}
}
