// Package adversary implements the paper's adversaries.
//
// The strong adversary A_s of §2 is "the set of all runs": the unsafety
// U_s(F) = max_R Pr[PA|R] is a maximization over runs, which this package
// performs three ways — exhaustively for small instances, over structured
// run families that contain the known-worst runs by construction, and by
// randomized hill-climbing for larger instances. The weak adversary of §8
// (iid message loss with unknown probability p) is a run sampler.
package adversary

import (
	"fmt"

	"coordattack/internal/baseline"
	"coordattack/internal/core"
	"coordattack/internal/graph"
	"coordattack/internal/mc"
	"coordattack/internal/protocol"
	"coordattack/internal/rng"
	"coordattack/internal/run"
)

// Objective scores a run; unsafety search maximizes Pr[PA|R].
type Objective func(r *run.Run) (float64, error)

// Result is the best run a search found and its objective value.
type Result struct {
	Run         *run.Run
	Value       float64
	Evaluations int
}

// ExactSObjective scores runs by Protocol S's closed-form Pr[PA|R]; the
// search objective is then noiseless and the returned maximum exact.
func ExactSObjective(s *core.S, g *graph.G) Objective {
	return func(r *run.Run) (float64, error) {
		a, err := s.Analyze(g, r)
		if err != nil {
			return 0, err
		}
		return a.PPartial, nil
	}
}

// ExactAObjective scores runs by Protocol A's closed-form Pr[PA|R].
func ExactAObjective() Objective {
	return func(r *run.Run) (float64, error) {
		d, err := baseline.AnalyzeA(r)
		if err != nil {
			return 0, err
		}
		return d.PPartial, nil
	}
}

// MCObjective scores runs by a Monte-Carlo estimate of Pr[PA|R] — for
// protocols without a closed form. The same run always gets the same
// score (fixed seed), so searches remain deterministic.
func MCObjective(p protocol.Protocol, g *graph.G, trials int, seed uint64) Objective {
	return func(r *run.Run) (float64, error) {
		res, err := mc.Estimate(mc.Config{
			Protocol: p, Graph: g, Run: r, Trials: trials, Seed: seed,
		})
		if err != nil {
			return 0, err
		}
		return res.PA.Mean(), nil
	}
}

// Exhaustive maximizes the objective over every run of g with n rounds —
// all input subsets, all delivery subsets. Feasible only for tiny
// instances (see run.Enumerate's limits).
func Exhaustive(g *graph.G, n int, obj Objective) (*Result, error) {
	best := &Result{}
	err := run.Enumerate(g, n, nil, func(r *run.Run) error {
		v, err := obj(r)
		if err != nil {
			return err
		}
		best.Evaluations++
		if v > best.Value || best.Run == nil {
			best.Value = v
			best.Run = r.Clone()
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("adversary: exhaustive search: %w", err)
	}
	return best, nil
}

// Structured returns the curated run family that provably contains the
// worst case for Protocols A and S: for a range of input sets, the good
// run, every cut-at-round run, every prefix run, total silence, the
// spanning-tree run, and single-drop runs.
func Structured(g *graph.G, n int) ([]*run.Run, error) {
	inputSets := [][]graph.ProcID{
		g.Vertices(),                    // everyone signaled
		{1},                             // only the distinguished general
		{graph.ProcID(g.NumVertices())}, // only the "far" general
	}
	var out []*run.Run
	for _, inputs := range inputSets {
		good, err := run.Good(g, n, inputs...)
		if err != nil {
			return nil, err
		}
		out = append(out, good)
		for c := 1; c <= n; c++ {
			out = append(out, run.CutAt(good, c))
			out = append(out, run.Prefix(good, c-1))
		}
		silent, err := run.Silent(n, inputs...)
		if err != nil {
			return nil, err
		}
		out = append(out, silent)
		// Single-drop runs: the good run minus one delivery.
		for _, d := range good.Deliveries() {
			out = append(out, good.Clone().Drop(d.From, d.To, d.Round))
		}
	}
	if g.NumVertices() >= 2 && g.Connected() && g.Eccentricity(1) <= n {
		tree, err := run.Tree(g, n, 1)
		if err != nil {
			return nil, err
		}
		out = append(out, tree)
	}
	return out, nil
}

// SearchFamily maximizes the objective over an explicit family of runs.
func SearchFamily(family []*run.Run, obj Objective) (*Result, error) {
	if len(family) == 0 {
		return nil, fmt.Errorf("adversary: empty run family")
	}
	best := &Result{}
	for _, r := range family {
		v, err := obj(r)
		if err != nil {
			return nil, err
		}
		best.Evaluations++
		if best.Run == nil || v > best.Value {
			best.Value = v
			best.Run = r.Clone()
		}
	}
	return best, nil
}

// HillConfig tunes the randomized search.
type HillConfig struct {
	Restarts int // independent starts (≥ 1)
	Steps    int // neighbor proposals per start (≥ 1)
	Seed     uint64
}

func (c HillConfig) validate() error {
	if c.Restarts < 1 || c.Steps < 1 {
		return fmt.Errorf("adversary: hill climb needs restarts ≥ 1 and steps ≥ 1, got %d/%d",
			c.Restarts, c.Steps)
	}
	return nil
}

// HillClimb maximizes the objective by randomized local search over the
// full run space: starts from random runs (plus the structured family's
// best as one seed start) and proposes single-tuple toggles — flip one
// delivery or one input — accepting improvements. With an exact
// objective this is a deterministic, repeatable search.
func HillClimb(g *graph.G, n int, obj Objective, cfg HillConfig) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	slots := run.Slots(g, n)
	m := g.NumVertices()
	tape := rng.NewTape(cfg.Seed)

	best := &Result{}
	consider := func(r *run.Run) (float64, error) {
		v, err := obj(r)
		if err != nil {
			return 0, err
		}
		best.Evaluations++
		if best.Run == nil || v > best.Value {
			best.Value = v
			best.Run = r.Clone()
		}
		return v, nil
	}

	// Seed start: best of the structured family.
	family, err := Structured(g, n)
	if err != nil {
		return nil, err
	}
	famBest, err := SearchFamily(family, obj)
	if err != nil {
		return nil, err
	}
	best.Evaluations += famBest.Evaluations
	starts := []*run.Run{famBest.Run}
	for rs := 1; rs < cfg.Restarts; rs++ {
		r, err := run.RandomSubset(g, n, tape)
		if err != nil {
			return nil, err
		}
		starts = append(starts, r)
	}
	if famBest.Value > best.Value || best.Run == nil {
		best.Value = famBest.Value
		best.Run = famBest.Run.Clone()
	}

	for _, start := range starts {
		cur := start.Clone()
		curVal, err := consider(cur)
		if err != nil {
			return nil, err
		}
		for step := 0; step < cfg.Steps; step++ {
			cand := cur.Clone()
			// Toggle one input with probability ~1/8, else one delivery.
			which, err := tape.UintN(8)
			if err != nil {
				return nil, err
			}
			if which == 0 || len(slots) == 0 {
				v, err := tape.IntRange(1, m)
				if err != nil {
					return nil, err
				}
				p := graph.ProcID(v)
				if cand.HasInput(p) {
					cand.RemoveInput(p)
				} else {
					cand.AddInput(p)
				}
			} else {
				idx, err := tape.UintN(uint64(len(slots)))
				if err != nil {
					return nil, err
				}
				d := slots[idx]
				if cand.Delivered(d.From, d.To, d.Round) {
					cand.Drop(d.From, d.To, d.Round)
				} else if err := cand.Deliver(d.From, d.To, d.Round); err != nil {
					return nil, err
				}
			}
			v, err := consider(cand)
			if err != nil {
				return nil, err
			}
			if v > curVal {
				cur, curVal = cand, v
			}
		}
	}
	return best, nil
}

// WeakSampler returns the §8 weak adversary as an mc.RunSampler: every
// message is lost independently with probability p; the given processes
// receive the input.
func WeakSampler(g *graph.G, n int, p float64, inputs ...graph.ProcID) mc.RunSampler {
	return func(trial uint64, tape *rng.Tape) (*run.Run, error) {
		return run.RandomLoss(g, n, p, tape, inputs...)
	}
}
