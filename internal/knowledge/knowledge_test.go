package knowledge

import (
	"testing"

	"coordattack/internal/causality"
	"coordattack/internal/graph"
	"coordattack/internal/run"
)

func newSpace(t *testing.T, g *graph.G, n int) *Space {
	t.Helper()
	s, err := NewSpace(g, n)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSpaceValidation(t *testing.T) {
	if _, err := NewSpace(graph.MustNew(1, nil), 2); err == nil {
		t.Error("m=1 accepted")
	}
	big, err := graph.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSpace(big, 3); err == nil {
		t.Error("huge space accepted")
	}
}

func TestSpaceSize(t *testing.T) {
	s := newSpace(t, graph.Pair(), 2)
	// 2^2 input subsets × 2^(2·2) delivery subsets.
	if s.Size() != 4*16 {
		t.Errorf("size = %d, want 64", s.Size())
	}
	if len(s.Runs()) != s.Size() {
		t.Error("Runs length mismatch")
	}
}

func TestKnowsInputIffHeardIt(t *testing.T) {
	// K_i("some input") ⟺ the input's information flowed to i — the
	// h = 1 case of the level/knowledge correspondence, on every run.
	g := graph.Pair()
	s := newSpace(t, g, 2)
	vals := s.Eval(InputArrived)
	for i := graph.ProcID(1); i <= 2; i++ {
		ki, err := s.KnowsAll(i, vals)
		if err != nil {
			t.Fatal(err)
		}
		for idx, r := range s.Runs() {
			heard := causality.InputArrival(r, 2)[i] <= r.N()
			if ki[idx] != heard {
				t.Fatalf("run %v: K_%d(input) = %v, flow says %v", r, i, ki[idx], heard)
			}
		}
	}
}

func TestDepthEqualsInformationLevel(t *testing.T) {
	// The centerpiece: the §4 combinatorial level L_i(R) equals the
	// Halpern-Moses knowledge depth of "some input arrived", on every
	// run of every enumerable space tried. Two independent
	// implementations (flows-to DP vs indistinguishability classes) must
	// agree exactly.
	type spaceSpec struct {
		g *graph.G
		n int
	}
	ring3, err := graph.Ring(3)
	if err != nil {
		t.Fatal(err)
	}
	specs := []spaceSpec{
		{graph.Pair(), 1},
		{graph.Pair(), 2},
		{graph.Pair(), 3},
		{ring3, 1},
	}
	for _, spec := range specs {
		s := newSpace(t, spec.g, spec.n)
		m := spec.g.NumVertices()
		for _, r := range s.Runs() {
			lt, err := causality.NewLevelTable(r, m)
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i <= m; i++ {
				depth, err := s.Depth(graph.ProcID(i), InputArrived, r)
				if err != nil {
					t.Fatal(err)
				}
				if want := lt.Final(graph.ProcID(i)); depth != want {
					t.Fatalf("(%v, N=%d) run %v: knowledge depth of %d = %d, level = %d",
						spec.g, spec.n, r, i, depth, want)
				}
			}
		}
	}
}

func TestCommonKnowledgeOfInputIsUnattainable(t *testing.T) {
	// The classic result behind the whole problem: over links that can
	// drop anything, "an input arrived" can NEVER become common
	// knowledge — on any run of the space, including the good run. This
	// is the epistemic face of the chain argument of T7.
	s := newSpace(t, graph.Pair(), 2)
	ck, err := s.CommonKnowledgeAll(InputArrived)
	if err != nil {
		t.Fatal(err)
	}
	for idx, r := range s.Runs() {
		if ck[idx] {
			t.Fatalf("common knowledge of the input attained on %v", r)
		}
	}
}

func TestCommonKnowledgeOfTautology(t *testing.T) {
	s := newSpace(t, graph.Pair(), 1)
	ck, err := s.CommonKnowledgeAll(func(*run.Run) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	for idx := range ck {
		if !ck[idx] {
			t.Fatal("tautology not common knowledge")
		}
	}
}

func TestKnowledgeImpliesTruth(t *testing.T) {
	// The T axiom: K_i φ ⟹ φ, for the input fact on every run.
	s := newSpace(t, graph.Pair(), 2)
	vals := s.Eval(InputArrived)
	for i := graph.ProcID(1); i <= 2; i++ {
		ki, err := s.KnowsAll(i, vals)
		if err != nil {
			t.Fatal(err)
		}
		for idx := range ki {
			if ki[idx] && !vals[idx] {
				t.Fatalf("K_%d φ without φ at run %v", i, s.Runs()[idx])
			}
		}
	}
}

func TestKnowledgeIntrospection(t *testing.T) {
	// Positive introspection: K_i φ ⟹ K_i K_i φ (classes are classes).
	s := newSpace(t, graph.Pair(), 2)
	vals := s.Eval(InputArrived)
	for i := graph.ProcID(1); i <= 2; i++ {
		ki, err := s.KnowsAll(i, vals)
		if err != nil {
			t.Fatal(err)
		}
		kki, err := s.KnowsAll(i, ki)
		if err != nil {
			t.Fatal(err)
		}
		for idx := range ki {
			if ki[idx] != kki[idx] {
				t.Fatalf("introspection failed at %v", s.Runs()[idx])
			}
		}
	}
}

func TestEDecreasing(t *testing.T) {
	// E φ ⟹ φ pointwise, and iterating E is monotone decreasing — the
	// property that makes knowledge depth well-defined.
	s := newSpace(t, graph.Pair(), 2)
	cur := s.Eval(InputArrived)
	for h := 0; h < 4; h++ {
		next, err := s.EveryoneKnowsAll(cur)
		if err != nil {
			t.Fatal(err)
		}
		for idx := range cur {
			if next[idx] && !cur[idx] {
				t.Fatalf("E^%d grew at %v", h+1, s.Runs()[idx])
			}
		}
		cur = next
	}
}

func TestErrorsOnForeignRun(t *testing.T) {
	s := newSpace(t, graph.Pair(), 2)
	foreign := run.MustNew(5)
	if _, err := s.Depth(1, InputArrived, foreign); err == nil {
		t.Error("foreign run accepted")
	}
	if _, err := s.Knows(1, InputArrived, foreign); err == nil {
		t.Error("foreign run accepted by Knows")
	}
	good := s.Runs()[0]
	if _, err := s.Knows(9, InputArrived, good); err == nil {
		t.Error("out-of-range process accepted")
	}
	if _, err := s.KnowsAll(1, []bool{true}); err == nil {
		t.Error("short fact vector accepted")
	}
}
