// Package knowledge implements the Halpern-Moses epistemic semantics that
// §4 of the paper cites as the meaning of its information levels.
//
// A fact is a predicate on runs. Process i *knows* a fact at the end of
// run R if the fact holds on every run indistinguishable from R to i —
// where indistinguishability is the paper's own Clip-based relation
// (Lemma 4.2): R ≡ᵢ R̃ iff Clip_i(R) = Clip_i(R̃). "Everyone knows"
// (E φ) and its iterates E^h φ are built on top, and the *knowledge
// depth* of i is the largest h with K_i E^(h-1) φ.
//
// The punchline, verified by experiment T17 and this package's tests: for
// φ = "some input arrived", the knowledge depth of i in R equals the
// paper's information level L_i(R) on every run of every enumerable
// space. The combinatorial levels of §4 and the semantic knowledge of
// [HM] are the same thing — computed by two entirely independent
// implementations here.
//
// Everything is exact: the package enumerates the full run space (all
// input subsets × all delivery subsets), so it is limited to small
// instances, exactly like the exhaustive adversary.
package knowledge

import (
	"fmt"

	"coordattack/internal/causality"
	"coordattack/internal/graph"
	"coordattack/internal/run"
)

// Fact is a predicate on runs.
type Fact func(r *run.Run) bool

// InputArrived is the paper's base fact: I(R) ≠ ∅.
func InputArrived(r *run.Run) bool { return r.AnyInput() }

// Space is a fully enumerated run space for one (graph, N) pair, with
// clip-equivalence classes precomputed for every process.
type Space struct {
	g    *graph.G
	n    int
	m    int
	runs []*run.Run
	// index maps run keys to positions in runs.
	index map[string]int
	// class[i][idx] = identifier of idx's ≡ᵢ equivalence class; runs
	// share a class iff their Clip_i keys coincide.
	class [][]int
	// members[i][c] = indices of the runs in class c of process i.
	members [][][]int
}

// NewSpace enumerates every run of g over n rounds. It fails, like
// run.Enumerate, when the space is too large to enumerate.
func NewSpace(g *graph.G, n int) (*Space, error) {
	m := g.NumVertices()
	if m < 2 {
		return nil, fmt.Errorf("knowledge: need m ≥ 2, got %d", m)
	}
	s := &Space{g: g, n: n, m: m, index: make(map[string]int)}
	err := run.Enumerate(g, n, nil, func(r *run.Run) error {
		c := r.Clone()
		s.index[c.Key()] = len(s.runs)
		s.runs = append(s.runs, c)
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.class = make([][]int, m+1)
	s.members = make([][][]int, m+1)
	for i := 1; i <= m; i++ {
		s.class[i] = make([]int, len(s.runs))
		classOf := make(map[string]int)
		for idx, r := range s.runs {
			key := causality.Clip(r, m, graph.ProcID(i)).Key()
			c, ok := classOf[key]
			if !ok {
				c = len(s.members[i])
				classOf[key] = c
				s.members[i] = append(s.members[i], nil)
			}
			s.class[i][idx] = c
			s.members[i][c] = append(s.members[i][c], idx)
		}
	}
	return s, nil
}

// Size reports the number of runs in the space.
func (s *Space) Size() int { return len(s.runs) }

// Runs returns the enumerated runs (shared slice; treat as read-only).
func (s *Space) Runs() []*run.Run { return s.runs }

// find locates a run in the space.
func (s *Space) find(r *run.Run) (int, error) {
	idx, ok := s.index[r.Key()]
	if !ok {
		return 0, fmt.Errorf("knowledge: run %v not in the (m=%d, N=%d) space", r, s.m, s.n)
	}
	return idx, nil
}

// Eval evaluates a fact on every run, as a bit vector indexed like Runs.
func (s *Space) Eval(fact Fact) []bool {
	vals := make([]bool, len(s.runs))
	for idx, r := range s.runs {
		vals[idx] = fact(r)
	}
	return vals
}

// KnowsAll returns, for every run, whether process i knows the fact
// (given as a bit vector): true iff the fact holds on i's entire
// clip-equivalence class.
func (s *Space) KnowsAll(i graph.ProcID, vals []bool) ([]bool, error) {
	if int(i) < 1 || int(i) > s.m {
		return nil, fmt.Errorf("knowledge: process %d out of range 1..%d", i, s.m)
	}
	if len(vals) != len(s.runs) {
		return nil, fmt.Errorf("knowledge: fact vector has %d entries, space has %d", len(vals), len(s.runs))
	}
	classTrue := make([]bool, len(s.members[i]))
	for c, idxs := range s.members[i] {
		classTrue[c] = true
		for _, idx := range idxs {
			if !vals[idx] {
				classTrue[c] = false
				break
			}
		}
	}
	out := make([]bool, len(s.runs))
	for idx := range s.runs {
		out[idx] = classTrue[s.class[i][idx]]
	}
	return out, nil
}

// EveryoneKnowsAll is the E operator: E φ holds on a run iff every
// process knows φ there.
func (s *Space) EveryoneKnowsAll(vals []bool) ([]bool, error) {
	out := make([]bool, len(s.runs))
	for idx := range out {
		out[idx] = true
	}
	for i := 1; i <= s.m; i++ {
		ki, err := s.KnowsAll(graph.ProcID(i), vals)
		if err != nil {
			return nil, err
		}
		for idx := range out {
			out[idx] = out[idx] && ki[idx]
		}
	}
	return out, nil
}

// Knows reports whether process i knows the fact at the end of run r.
func (s *Space) Knows(i graph.ProcID, fact Fact, r *run.Run) (bool, error) {
	idx, err := s.find(r)
	if err != nil {
		return false, err
	}
	ki, err := s.KnowsAll(i, s.Eval(fact))
	if err != nil {
		return false, err
	}
	return ki[idx], nil
}

// Depth returns the knowledge depth of process i for the fact in run r:
// the largest h ≥ 1 with K_i E^(h-1) φ, or 0 if i does not even know φ.
// For φ = InputArrived this equals the paper's L_i(R) — tested
// exhaustively.
func (s *Space) Depth(i graph.ProcID, fact Fact, r *run.Run) (int, error) {
	idx, err := s.find(r)
	if err != nil {
		return 0, err
	}
	cur := s.Eval(fact) // E^0 φ
	depth := 0
	for h := 1; h <= s.n+2; h++ {
		ki, err := s.KnowsAll(i, cur)
		if err != nil {
			return 0, err
		}
		if !ki[idx] {
			break
		}
		depth = h
		cur, err = s.EveryoneKnowsAll(cur)
		if err != nil {
			return 0, err
		}
	}
	return depth, nil
}

// CommonKnowledgeAll reports, per run, whether the fact is common
// knowledge: the greatest fixpoint of E — equivalently, E^h φ for every
// h. The two-generals impossibility is the statement that "attack" can
// never become common knowledge; over a finite space the fixpoint is
// computed by iterating E until stable.
func (s *Space) CommonKnowledgeAll(fact Fact) ([]bool, error) {
	cur := s.Eval(fact)
	for {
		next, err := s.EveryoneKnowsAll(cur)
		if err != nil {
			return nil, err
		}
		stable := true
		for idx := range cur {
			if cur[idx] != next[idx] {
				stable = false
				break
			}
		}
		cur = next
		if stable {
			return cur, nil
		}
	}
}
