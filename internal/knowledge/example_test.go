package knowledge_test

import (
	"fmt"
	"log"

	"coordattack/internal/graph"
	"coordattack/internal/knowledge"
	"coordattack/internal/run"
)

// ExampleSpace_Depth shows the §4 correspondence: only general 1 is
// signaled and one message crosses. General 2 reaches depth 2 (it heard
// from 1, so it knows that 1 knows), while general 1 — hearing nothing
// back — is stuck at depth 1; the depths equal the information levels
// L_i(R) exactly.
func ExampleSpace_Depth() {
	g := graph.Pair()
	space, err := knowledge.NewSpace(g, 2)
	if err != nil {
		log.Fatal(err)
	}
	r := run.MustNew(2)
	r.AddInput(1)
	r.MustDeliver(1, 2, 1)
	for i := graph.ProcID(1); i <= 2; i++ {
		depth, err := space.Depth(i, knowledge.InputArrived, r)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("general %d: depth %d\n", i, depth)
	}
	// Output:
	// general 1: depth 1
	// general 2: depth 2
}

// ExampleSpace_CommonKnowledgeAll shows the famous negative result: over
// links that can drop anything, the input can never become common
// knowledge — not even on the fully reliable run.
func ExampleSpace_CommonKnowledgeAll() {
	space, err := knowledge.NewSpace(graph.Pair(), 2)
	if err != nil {
		log.Fatal(err)
	}
	ck, err := space.CommonKnowledgeAll(knowledge.InputArrived)
	if err != nil {
		log.Fatal(err)
	}
	attained := 0
	for _, v := range ck {
		if v {
			attained++
		}
	}
	fmt.Printf("runs where the input is common knowledge: %d of %d\n", attained, space.Size())
	// Output:
	// runs where the input is common knowledge: 0 of 64
}
