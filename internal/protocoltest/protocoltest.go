// Package protocoltest is a reusable conformance suite for
// coordinated-attack protocols: any protocol.Protocol implementation can
// be checked against the §2 model's ground rules — non-nil messages every
// round, determinism in (run, α), validity, loop/channel engine
// agreement, and (for randomized protocols) bounded tape usage. The
// repository's own protocol zoo runs through it; downstream protocol
// authors can too.
package protocoltest

import (
	"fmt"
	"testing"

	"coordattack/internal/graph"
	"coordattack/internal/protocol"
	"coordattack/internal/rng"
	"coordattack/internal/run"
	"coordattack/internal/sim"
)

// Options tunes the conformance suite.
type Options struct {
	// Runs is how many random runs to sample (default 40).
	Runs int
	// Seed roots the sampling (default 7).
	Seed uint64
	// MaxTapeBits, when positive, asserts the paper's J bound: no
	// process may consume more random bits than this per execution.
	MaxTapeBits int
	// SkipValidity skips the validity check, for protocols that are
	// deliberately invalid (none in this repository).
	SkipValidity bool
}

func (o Options) withDefaults() Options {
	if o.Runs == 0 {
		o.Runs = 40
	}
	if o.Seed == 0 {
		o.Seed = 7
	}
	return o
}

// Conformance runs the full suite for protocol p on graph g over n
// rounds. Failures are reported through t with the offending run
// attached.
func Conformance(t *testing.T, p protocol.Protocol, g *graph.G, n int, opts Options) {
	t.Helper()
	opts = opts.withDefaults()
	runTape := rng.NewTape(opts.Seed)

	for trial := 0; trial < opts.Runs; trial++ {
		r, err := run.RandomSubset(g, n, runTape)
		if err != nil {
			t.Fatalf("protocoltest: sampling run: %v", err)
		}
		seed := opts.Seed ^ uint64(trial*7919+13)

		// Determinism: two executions with identical tapes agree.
		o1, err := sim.Outputs(p, g, r, sim.SeedTapes(seed))
		if err != nil {
			t.Fatalf("protocoltest: %s on %v: %v", p.Name(), r, err)
		}
		o2, err := sim.Outputs(p, g, r, sim.SeedTapes(seed))
		if err != nil {
			t.Fatalf("protocoltest: %s re-execution: %v", p.Name(), err)
		}
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Fatalf("protocoltest: %s not deterministic in (run, α) on %v", p.Name(), r)
			}
		}

		// Engine agreement: channel engine must match the loop engine.
		conc, err := sim.ConcurrentOutputs(p, g, r, sim.SeedTapes(seed))
		if err != nil {
			t.Fatalf("protocoltest: %s concurrent engine: %v", p.Name(), err)
		}
		for i := range o1 {
			if o1[i] != conc[i] {
				t.Fatalf("protocoltest: %s engines disagree on %v", p.Name(), r)
			}
		}

		// Validity: strip inputs, nobody may attack.
		if !opts.SkipValidity {
			stripped := r.Clone()
			for _, i := range stripped.Inputs() {
				stripped.RemoveInput(i)
			}
			outs, err := sim.Outputs(p, g, stripped, sim.SeedTapes(seed))
			if err != nil {
				t.Fatalf("protocoltest: %s validity execution: %v", p.Name(), err)
			}
			for i := 1; i < len(outs); i++ {
				if outs[i] {
					t.Fatalf("protocoltest: %s violates validity: process %d attacked on %v",
						p.Name(), i, stripped)
				}
			}
		}

		// Tape budget (the paper's J bound).
		if opts.MaxTapeBits > 0 {
			if err := checkTapeBudget(p, g, r, seed, opts.MaxTapeBits); err != nil {
				t.Fatalf("protocoltest: %s: %v", p.Name(), err)
			}
		}

		// Full trace must classify identically to the fast path.
		exec, err := sim.Execute(p, g, r, sim.SeedTapes(seed))
		if err != nil {
			t.Fatalf("protocoltest: %s trace execution: %v", p.Name(), err)
		}
		if exec.Outcome() != protocol.Classify(o1) {
			t.Fatalf("protocoltest: %s trace outcome differs from outputs on %v", p.Name(), r)
		}
	}
}

func checkTapeBudget(p protocol.Protocol, g *graph.G, r *run.Run, seed uint64, budget int) error {
	m := g.NumVertices()
	tapes := make(map[graph.ProcID]*rng.Tape, m)
	for i := 1; i <= m; i++ {
		tapes[graph.ProcID(i)] = rng.NewTape(seed + uint64(i))
	}
	if _, err := sim.Outputs(p, g, r, func(i graph.ProcID) *rng.Tape { return tapes[i] }); err != nil {
		return err
	}
	for i, tape := range tapes {
		if tape.Consumed() > budget {
			return fmt.Errorf("process %d consumed %d random bits, budget J = %d",
				i, tape.Consumed(), budget)
		}
	}
	return nil
}
