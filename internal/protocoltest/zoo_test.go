package protocoltest

import (
	"testing"

	"coordattack/internal/baseline"
	"coordattack/internal/core"
	"coordattack/internal/graph"
	"coordattack/internal/protocol"
	"coordattack/internal/rng"
	"coordattack/internal/run"
	"coordattack/internal/sim"
)

// TestZooConformance runs the entire protocol zoo through the suite on
// its natural topologies.
func TestZooConformance(t *testing.T) {
	pair := graph.Pair()
	ring4, err := graph.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	complete3, err := graph.Complete(3)
	if err != nil {
		t.Fatal(err)
	}
	sAlt, err := core.NewSAltValidity(0.2)
	if err != nil {
		t.Fatal(err)
	}
	slack, err := core.NewSWithSlack(0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	ax2, err := baseline.NewRepeatedA(2, baseline.CombineAll)
	if err != nil {
		t.Fatal(err)
	}
	axAny, err := baseline.NewRepeatedA(3, baseline.CombineAny)
	if err != nil {
		t.Fatal(err)
	}
	thr, err := baseline.NewDetThreshold(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	geoDist, err := core.GeometricFire(0.8)
	if err != nil {
		t.Fatal(err)
	}
	sGeo, err := core.NewSFire(geoDist)
	if err != nil {
		t.Fatal(err)
	}
	powDist, err := core.PowerFire(0.2, 2)
	if err != nil {
		t.Fatal(err)
	}
	sPow, err := core.NewSFire(powDist)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		p       protocol.Protocol
		g       *graph.G
		n       int
		maxBits int
	}{
		{"S on pair", core.MustS(0.2), pair, 6, 64},
		{"S on ring", core.MustS(0.1), ring4, 6, 64},
		{"S on complete", core.MustS(0.3), complete3, 5, 64},
		{"S-alt-validity", sAlt, pair, 6, 64},
		{"S slack 1", slack, ring4, 5, 64},
		{"A", baseline.NewA(), pair, 8, 128},
		{"A×2 all", ax2, pair, 8, 256},
		{"A×3 any", axAny, pair, 9, 384},
		{"RingRelay", baseline.NewRingRelay(), ring4, 10, 128},
		{"DetFullInfo", baseline.NewDetFullInfo(), ring4, 5, 0}, // det: no tape use at all
		{"DetThreshold", thr, complete3, 5, 0},
		{"XORCoins", baseline.NewXORCoins(), ring4, 4, 1},
		{"S[geometric]", sGeo, pair, 6, 64},
		{"S[power]", sPow, ring4, 5, 64},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			opts := Options{Runs: 25, Seed: 11, MaxTapeBits: tc.maxBits}
			Conformance(t, tc.p, tc.g, tc.n, opts)
		})
	}
}

// TestDeterministicProtocolsUseNoTape asserts J = 0 for the deterministic
// baselines explicitly (MaxTapeBits 0 disables the generic check, so this
// pins it directly).
func TestDeterministicProtocolsUseNoTape(t *testing.T) {
	ring4, err := graph.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	thr, err := baseline.NewDetThreshold(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	good, err := run.Good(ring4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []protocol.Protocol{baseline.NewDetFullInfo(), thr} {
		tapes := map[graph.ProcID]*rng.Tape{}
		for i := 1; i <= 4; i++ {
			tapes[graph.ProcID(i)] = rng.NewTape(uint64(i))
		}
		if _, err := sim.Outputs(p, ring4, good, func(i graph.ProcID) *rng.Tape { return tapes[i] }); err != nil {
			t.Fatal(err)
		}
		for i, tape := range tapes {
			if tape.Consumed() != 0 {
				t.Errorf("%s: process %d consumed %d bits, want 0", p.Name(), i, tape.Consumed())
			}
		}
	}
}
