// Package causality implements the information-flow machinery of §4 and
// the appendix: the flows-to relation, information heights and levels
// L_i^r(R), the modified levels ML_i^r(R) of §6, the clipping construction
// Clip_i(R), and causal independence (Appendix A).
//
// Everything here is exact combinatorics on runs — no randomness, no
// protocol. The lower bound (Theorem 5.4), Protocol S's analysis, and the
// second lower bound (Theorem A.1) all reduce to these computations.
package causality

import (
	"fmt"

	"coordattack/internal/graph"
	"coordattack/internal/run"
)

// Never is the sentinel "round" reported when information never arrives.
// It compares greater than every real round.
const Never = 1 << 30

// ArrivalFrom returns, for every process j (index 1..m; index 0 unused),
// the earliest round r such that (src, s) flows to (j, r) in run r0, or
// Never if no flow exists by round N. The flows-to relation is the
// reflexive transitive closure of "directly flows to" from §4: (i, r)
// directly flows to (k, r+1) iff i = k or (i, k, r+1) ∈ R.
func ArrivalFrom(r0 *run.Run, m int, src graph.ProcID, s int) []int {
	return NewIndex(r0, m).ArrivalFrom(src, s)
}

// FlowsTo reports whether (i, s) flows to (j, t) in r0 for processes i, j
// in 1..m.
func FlowsTo(r0 *run.Run, m int, i graph.ProcID, s int, j graph.ProcID, t int) bool {
	if t > r0.N() || s > t {
		return false
	}
	if i == j && s <= t {
		return true
	}
	return ArrivalFrom(r0, m, i, s)[j] <= t
}

// InputArrival returns, for every process j, the earliest round r such
// that (v₀, -1) flows to (j, r): the round at which j first "hears the
// input". A process with its own input hears it at round 0.
func InputArrival(r0 *run.Run, m int) []int {
	return NewIndex(r0, m).InputArrival()
}

// LevelTable holds, for one run, the earliest round at which each process
// attains each information height — for the plain level measure of §4 or
// the modified measure of §6. Build with NewLevelTable or NewModLevelTable
// and query per round; all per-process level facts in the repository come
// from here.
type LevelTable struct {
	m, n     int
	modified bool
	// firsts[h][j] = earliest round at which j reaches height h+1
	// (firsts[0] is height 1), or Never.
	firsts [][]int
}

// NewLevelTable computes the §4 level measure L_i^r(R) for all i, r.
// Requires m ≥ 2: with a single general the height recursion degenerates
// (its ∀-condition is vacuous), exactly as in the paper, which assumes
// m ≥ 2 throughout.
func NewLevelTable(r0 *run.Run, m int) (*LevelTable, error) {
	return newTable(r0, m, false)
}

// NewModLevelTable computes the §6 modified level measure ML_i^r(R):
// height 1 additionally requires that (1, 0) flows to (j, r), i.e. that j
// has heard from the distinguished process 1.
func NewModLevelTable(r0 *run.Run, m int) (*LevelTable, error) {
	return newTable(r0, m, true)
}

func newTable(r0 *run.Run, m int, modified bool) (*LevelTable, error) {
	if m < 2 {
		return nil, fmt.Errorf("causality: level measures need m ≥ 2, got %d", m)
	}
	n := r0.N()
	t := &LevelTable{m: m, n: n, modified: modified}
	// One delivery index serves every flow sweep in the table build —
	// previously each ArrivalFrom call re-bucketed M(R) by round.
	ix := NewIndex(r0, m)

	// Height 1.
	first := ix.InputArrival()
	if modified {
		fromOne := ix.ArrivalFrom(1, 0)
		for j := 1; j <= m; j++ {
			first[j] = maxInt(first[j], fromOne[j])
			if first[j] > n {
				first[j] = Never
			}
		}
	}
	cur := first
	t.firsts = append(t.firsts, cur)

	// Height h from h-1: j reaches h at the earliest round by which, for
	// every i ≠ j, information originating at (i, firsts[h-1][i]) has
	// arrived at j. Each increase in the system-wide minimum height costs
	// at least one round, so h ≤ n+1 suffices (cf. Lemma 5.1).
	for h := 2; h <= n+1; h++ {
		next := make([]int, m+1)
		for j := 1; j <= m; j++ {
			next[j] = 0
		}
		next[0] = Never
		alive := false
		arrivals := make([][]int, m+1)
		for i := 1; i <= m; i++ {
			if cur[i] == Never {
				continue
			}
			arrivals[i] = ix.ArrivalFrom(graph.ProcID(i), cur[i])
		}
		for j := 1; j <= m; j++ {
			worst := 0
			for i := 1; i <= m; i++ {
				if i == j {
					continue
				}
				if arrivals[i] == nil {
					worst = Never
					break
				}
				worst = maxInt(worst, arrivals[i][j])
			}
			if worst > n {
				worst = Never
			}
			next[j] = worst
			if worst != Never {
				alive = true
			}
		}
		if !alive {
			break
		}
		t.firsts = append(t.firsts, next)
		cur = next
	}
	return t, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Modified reports whether the table holds the modified (§6) measure.
func (t *LevelTable) Modified() bool { return t.modified }

// At returns the level of process i at the end of round r: the maximum
// height i can reach by round r (L_i^r or ML_i^r).
func (t *LevelTable) At(i graph.ProcID, r int) int {
	level := 0
	for h, firsts := range t.firsts {
		if firsts[i] <= r {
			level = h + 1
		} else {
			break
		}
	}
	return level
}

// Final returns the end-of-run level of process i: L_i(R) or ML_i(R).
func (t *LevelTable) Final(i graph.ProcID) int { return t.At(i, t.n) }

// Finals returns all end-of-run levels, index 1..m (index 0 unused).
func (t *LevelTable) Finals() []int {
	out := make([]int, t.m+1)
	for i := 1; i <= t.m; i++ {
		out[i] = t.Final(graph.ProcID(i))
	}
	return out
}

// Min returns the run-wide level: L(R) = min_i L_i(R) (or ML(R)).
func (t *LevelTable) Min() int {
	low := t.Final(1)
	for i := 2; i <= t.m; i++ {
		if l := t.Final(graph.ProcID(i)); l < low {
			low = l
		}
	}
	return low
}

// Max returns max_i over the end-of-run levels; Protocol S's exact
// partial-attack probability is ε·(Max − Min) (clamped), so adversary
// searches maximize this gap.
func (t *LevelTable) Max() int {
	high := t.Final(1)
	for i := 2; i <= t.m; i++ {
		if l := t.Final(graph.ProcID(i)); l > high {
			high = l
		}
	}
	return high
}

// Levels is shorthand for the final plain levels L_i(R); see LevelTable
// for per-round queries.
func Levels(r0 *run.Run, m int) ([]int, error) {
	t, err := NewLevelTable(r0, m)
	if err != nil {
		return nil, err
	}
	return t.Finals(), nil
}

// ModLevels is shorthand for the final modified levels ML_i(R).
func ModLevels(r0 *run.Run, m int) ([]int, error) {
	t, err := NewModLevelTable(r0, m)
	if err != nil {
		return nil, err
	}
	return t.Finals(), nil
}

// RunLevel returns L(R) = min_i L_i(R).
func RunLevel(r0 *run.Run, m int) (int, error) {
	t, err := NewLevelTable(r0, m)
	if err != nil {
		return 0, err
	}
	return t.Min(), nil
}

// RunModLevel returns ML(R) = min_i ML_i(R).
func RunModLevel(r0 *run.Run, m int) (int, error) {
	t, err := NewModLevelTable(r0, m)
	if err != nil {
		return 0, err
	}
	return t.Min(), nil
}

// ReachesSink returns canReach[k][r] = true iff (k, r) flows to (sink, N)
// in r0, for k in 1..m and r in 0..N. This is the backward sweep behind
// clipping and causal independence.
func ReachesSink(r0 *run.Run, m int, sink graph.ProcID) [][]bool {
	return NewIndex(r0, m).ReachesSink(sink)
}

// Clip returns Clip_i(R): the run keeping exactly the tuples of R whose
// receipt flows to (i, N) — deliveries (j, k, r) with (k, r) flowing to
// (i, N), and inputs (v₀, j, 0) with (j, 0) flowing to (i, N). By Lemma
// 4.2 the clipped run is indistinguishable from R to i and preserves
// L_i and ML_i.
func Clip(r0 *run.Run, m int, i graph.ProcID) *run.Run {
	canReach := ReachesSink(r0, m, i)
	out := run.MustNew(r0.N())
	for _, j := range r0.Inputs() {
		if j >= 1 && int(j) <= m && canReach[j][0] {
			out.AddInput(j)
		}
	}
	for _, d := range r0.Deliveries() {
		if canReach[d.To][d.Round] {
			out.MustDeliver(d.From, d.To, d.Round)
		}
	}
	return out
}

// IndistinguishableTo reports whether runs a and b are indistinguishable
// to process i in the syntactic sense of Lemma 4.2: their clips with
// respect to i coincide. Clip equality implies the semantic definition of
// §2 (identical local executions for every α and every protocol); the
// simulation engines property-test that implication.
func IndistinguishableTo(a, b *run.Run, m int, i graph.ProcID) bool {
	return Clip(a, m, i).Equal(Clip(b, m, i))
}

// CausallyIndependent reports whether i and j are causally independent in
// r0 (Appendix A): no k such that (k, 0) flows to both (i, N) and (j, N).
func CausallyIndependent(r0 *run.Run, m int, i, j graph.ProcID) bool {
	ix := NewIndex(r0, m)
	ri := ix.ReachesSink(i)
	rj := ix.ReachesSink(j)
	for k := 1; k <= m; k++ {
		if ri[k][0] && rj[k][0] {
			return false
		}
	}
	return true
}
