package causality

import (
	"sync/atomic"

	"coordattack/internal/graph"
	"coordattack/internal/run"
)

// indexBuilds counts Index constructions so tests can pin how often the
// per-run delivery index is (re)built. Before the index existed,
// deliveriesByRound was rebuilt on every ArrivalFrom call — m+1 times per
// level-table height; now one build serves an entire table.
var indexBuilds atomic.Int64

// Index is a per-run struct-of-arrays view of M(R): deliveries flattened
// into parallel from/to arrays in canonical order with CSR-style per-round
// offsets. Every flow computation in this package is a sweep over rounds,
// and the index turns each sweep into a walk of two flat arrays — no maps,
// no per-call [][]run.Delivery rebuilding, no allocation beyond the result.
//
// An Index is immutable after construction and safe for concurrent use; it
// snapshots the run, so mutating the run afterwards does not invalidate it
// (runs handed to analyses are frozen by convention anyway).
type Index struct {
	n, m   int
	from   []graph.ProcID // delivery senders, canonical (round, from, to) order
	to     []graph.ProcID // delivery receivers, parallel to from
	start  []int          // round r's deliveries occupy [start[r], start[r+1])
	inputs []graph.ProcID // I(R), ascending
}

// NewIndex builds the delivery index of r0 over the universe of m
// processes.
func NewIndex(r0 *run.Run, m int) *Index {
	indexBuilds.Add(1)
	ds := r0.Deliveries()
	n := r0.N()
	ix := &Index{
		n:      n,
		m:      m,
		from:   make([]graph.ProcID, len(ds)),
		to:     make([]graph.ProcID, len(ds)),
		start:  make([]int, n+2),
		inputs: r0.Inputs(),
	}
	idx := 0
	for r := 1; r <= n; r++ {
		ix.start[r] = idx
		for idx < len(ds) && ds[idx].Round == r {
			ix.from[idx] = ds[idx].From
			ix.to[idx] = ds[idx].To
			idx++
		}
	}
	ix.start[n+1] = len(ds)
	return ix
}

// N reports the run's round count.
func (ix *Index) N() int { return ix.n }

// M reports the process universe size.
func (ix *Index) M() int { return ix.m }

// ArrivalInto computes ArrivalFrom into a caller-owned buffer of length
// m+1, allocating nothing. This is the kernel every level-table height
// runs m times; the buffer contract keeps that loop garbage-free.
func (ix *Index) ArrivalInto(arrive []int, src graph.ProcID, s int) {
	for i := range arrive {
		arrive[i] = Never
	}
	if src < 1 || int(src) > ix.m || s > ix.n {
		return
	}
	arrive[src] = s
	for t := s + 1; t <= ix.n; t++ {
		for k, end := ix.start[t], ix.start[t+1]; k < end; k++ {
			// (from, t-1) flows from (src, s) iff arrive[from] ≤ t-1.
			if arrive[ix.from[k]] <= t-1 && t < arrive[ix.to[k]] {
				arrive[ix.to[k]] = t
			}
		}
	}
}

// ArrivalFrom is the allocating form of ArrivalInto, with the same
// semantics as the package-level ArrivalFrom.
func (ix *Index) ArrivalFrom(src graph.ProcID, s int) []int {
	arrive := make([]int, ix.m+1)
	ix.ArrivalInto(arrive, src, s)
	return arrive
}

// InputArrival returns, for every process j, the earliest round at which
// (v₀, -1) flows to (j, r), like the package-level InputArrival.
func (ix *Index) InputArrival() []int {
	first := make([]int, ix.m+1)
	for i := range first {
		first[i] = Never
	}
	if len(ix.inputs) == 0 {
		return first
	}
	scratch := make([]int, ix.m+1)
	for _, src := range ix.inputs {
		if src < 1 || int(src) > ix.m {
			continue
		}
		ix.ArrivalInto(scratch, src, 0)
		for j := 1; j <= ix.m; j++ {
			if scratch[j] < first[j] {
				first[j] = scratch[j]
			}
		}
	}
	return first
}

// ReachesSink computes the backward reachability table of the package-level
// ReachesSink over the index.
func (ix *Index) ReachesSink(sink graph.ProcID) [][]bool {
	canReach := make([][]bool, ix.m+1)
	for k := range canReach {
		canReach[k] = make([]bool, ix.n+1)
	}
	if sink >= 1 && int(sink) <= ix.m {
		for r := 0; r <= ix.n; r++ {
			canReach[sink][r] = true
		}
	}
	for r := ix.n - 1; r >= 0; r-- {
		for k := 1; k <= ix.m; k++ {
			if canReach[k][r] {
				continue
			}
			if canReach[k][r+1] {
				canReach[k][r] = true
				continue
			}
			for d, end := ix.start[r+1], ix.start[r+2]; d < end; d++ {
				if ix.from[d] == graph.ProcID(k) && canReach[ix.to[d]][r+1] {
					canReach[k][r] = true
					break
				}
			}
		}
	}
	return canReach
}
