package causality

import (
	"sync"

	"coordattack/internal/run"
)

// memoKey identifies a level table up to everything that determines it:
// the run's canonical identity (as a prefix key, so truncated evaluations
// of a shared run collide without materializing the truncation), the
// process universe, and which measure (plain L or modified ML) was asked
// for.
type memoKey struct {
	prefix   run.PrefixKey
	m        int
	modified bool
}

// MemoStats reports a memo's cumulative hit/miss counts and current size.
type MemoStats struct {
	Hits   uint64
	Misses uint64
	Size   int
}

// memoMaxEntries bounds a memo's footprint. A level table for an m-process
// n-round run is O(m·n) ints; sweep grids evaluate at most a few thousand
// distinct (run, measure) pairs, so the cap only trips on pathological
// workloads, where dropping the whole cache and rebuilding is fine.
const memoMaxEntries = 4096

// Memo caches level tables across Analyze/table calls keyed by run
// identity. Sweep grids in the service layer evaluate the same run prefix
// under many protocol parameters — ε, slack, thresholds — none of which
// enter the table, so every cell after the first is a hit. A Memo is safe
// for concurrent use; cached tables are immutable and shared.
type Memo struct {
	mu     sync.Mutex
	tables map[memoKey]*LevelTable
	hits   uint64
	misses uint64
}

// NewMemo returns an empty level-table cache.
func NewMemo() *Memo {
	return &Memo{tables: make(map[memoKey]*LevelTable)}
}

// Table returns the level table for r0 over m processes — NewLevelTable
// or NewModLevelTable according to modified — serving repeats from cache.
// A nil receiver computes without caching, so callers can thread an
// optional memo unconditionally.
func (mm *Memo) Table(r0 *run.Run, m int, modified bool) (*LevelTable, error) {
	if mm == nil {
		return newTable(r0, m, modified)
	}
	key := memoKey{prefix: r0.PrefixKey(r0.N()), m: m, modified: modified}
	mm.mu.Lock()
	if t, ok := mm.tables[key]; ok {
		mm.hits++
		mm.mu.Unlock()
		return t, nil
	}
	mm.misses++
	mm.mu.Unlock()

	// Build outside the lock: concurrent misses on the same key do
	// duplicate work but never block each other on a long table build.
	t, err := newTable(r0, m, modified)
	if err != nil {
		return nil, err
	}
	mm.mu.Lock()
	if len(mm.tables) >= memoMaxEntries {
		mm.tables = make(map[memoKey]*LevelTable)
	}
	mm.tables[key] = t
	mm.mu.Unlock()
	return t, nil
}

// Stats returns cumulative hit/miss counts and the current entry count.
func (mm *Memo) Stats() MemoStats {
	if mm == nil {
		return MemoStats{}
	}
	mm.mu.Lock()
	defer mm.mu.Unlock()
	return MemoStats{Hits: mm.hits, Misses: mm.misses, Size: len(mm.tables)}
}
