package causality

import (
	"testing"
	"testing/quick"

	"coordattack/internal/graph"
	"coordattack/internal/rng"
	"coordattack/internal/run"
)

func mustGood(t *testing.T, g *graph.G, n int, inputs ...graph.ProcID) *run.Run {
	t.Helper()
	r, err := run.Good(g, n, inputs...)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestArrivalFromSingleHop(t *testing.T) {
	r := run.MustNew(3)
	r.MustDeliver(1, 2, 2)
	a := ArrivalFrom(r, 2, 1, 0)
	if a[1] != 0 {
		t.Errorf("arrive at source = %d, want 0", a[1])
	}
	if a[2] != 2 {
		t.Errorf("arrive at 2 = %d, want 2", a[2])
	}
}

func TestArrivalFromChainAndStaleOrigin(t *testing.T) {
	// 1 →(r1)→ 2 →(r2)→ 3: arrival at 3 is round 2 from origin (1,0),
	// but from origin (1,1) the round-1 message predates the origin, so
	// information never reaches 2 or 3.
	r := run.MustNew(3)
	r.MustDeliver(1, 2, 1).MustDeliver(2, 3, 2)
	a0 := ArrivalFrom(r, 3, 1, 0)
	if a0[2] != 1 || a0[3] != 2 {
		t.Errorf("from (1,0): arrive = %v, want [_,0,1,2]", a0)
	}
	a1 := ArrivalFrom(r, 3, 1, 1)
	if a1[2] != Never || a1[3] != Never {
		t.Errorf("from (1,1): arrive = %v, want Never at 2 and 3", a1)
	}
}

func TestArrivalFromOutOfRangeSource(t *testing.T) {
	r := run.MustNew(2)
	a := ArrivalFrom(r, 2, 5, 0)
	for j := 1; j <= 2; j++ {
		if a[j] != Never {
			t.Errorf("arrival from bogus source at %d = %d, want Never", j, a[j])
		}
	}
	late := ArrivalFrom(r, 2, 1, 99) // origin after the run ends
	if late[1] != Never {
		t.Errorf("origin beyond N should never arrive, got %d", late[1])
	}
}

func TestFlowsToReflexiveOverTime(t *testing.T) {
	r := run.MustNew(4)
	if !FlowsTo(r, 2, 1, 0, 1, 3) {
		t.Error("(1,0) should flow to (1,3) with no messages at all")
	}
	if FlowsTo(r, 2, 1, 3, 1, 0) {
		t.Error("flow backwards in time")
	}
	if FlowsTo(r, 2, 1, 0, 2, 4) {
		t.Error("flow with no deliveries between distinct processes")
	}
}

func TestFlowsToTransitive(t *testing.T) {
	// Lemma 4.1 on a concrete instance, plus a property check below.
	r := run.MustNew(5)
	r.MustDeliver(1, 2, 2).MustDeliver(2, 3, 4)
	if !FlowsTo(r, 3, 1, 0, 2, 2) || !FlowsTo(r, 3, 2, 2, 3, 4) {
		t.Fatal("expected direct flows missing")
	}
	if !FlowsTo(r, 3, 1, 0, 3, 5) {
		t.Error("transitive flow (1,0)→(3,5) missing")
	}
}

func TestInputArrival(t *testing.T) {
	r := run.MustNew(3)
	r.AddInput(1)
	r.MustDeliver(1, 2, 1).MustDeliver(2, 3, 3)
	first := InputArrival(r, 3)
	if first[1] != 0 || first[2] != 1 || first[3] != 3 {
		t.Errorf("InputArrival = %v, want [_,0,1,3]", first)
	}
	empty := run.MustNew(2)
	for j, v := range InputArrival(empty, 2) {
		if j >= 1 && v != Never {
			t.Errorf("no-input run: InputArrival[%d] = %d, want Never", j, v)
		}
	}
}

func TestLevelTableRejectsSingleGeneral(t *testing.T) {
	r := run.MustNew(2)
	if _, err := NewLevelTable(r, 1); err == nil {
		t.Error("m=1 level table accepted; the height recursion is degenerate there")
	}
	if _, err := NewModLevelTable(r, 1); err == nil {
		t.Error("m=1 modified level table accepted")
	}
}

func TestLevelsGoodRunPair(t *testing.T) {
	// Good run, both inputs, m=2. Hand derivation: height h is first
	// reached at round h-1, so L_i(R) = N+1 for both generals.
	for _, n := range []int{1, 2, 5, 9} {
		r := mustGood(t, graph.Pair(), n, 1, 2)
		tab, err := NewLevelTable(r, 2)
		if err != nil {
			t.Fatal(err)
		}
		for i := graph.ProcID(1); i <= 2; i++ {
			if got := tab.Final(i); got != n+1 {
				t.Errorf("N=%d: L_%d = %d, want %d", n, i, got, n+1)
			}
		}
		if got := tab.Min(); got != n+1 {
			t.Errorf("N=%d: L(R) = %d, want %d", n, got, n+1)
		}
	}
}

func TestModLevelsGoodRunPair(t *testing.T) {
	// Hand-derived: with both inputs on K_2, mfirst_h(1) = 2⌊h/2⌋ and
	// mfirst_h(2) = 2⌈h/2⌉-1 for h ≥ 2. One general (which one depends on
	// the parity of N) tops out at ML = N, the other at N+1; hence
	// ML(R) = N, one below L(R) = N+1 (the Lemma 6.1 gap, realized).
	for _, n := range []int{2, 4, 7} {
		r := mustGood(t, graph.Pair(), n, 1, 2)
		tab, err := NewModLevelTable(r, 2)
		if err != nil {
			t.Fatal(err)
		}
		if got := tab.Min(); got != n {
			t.Errorf("N=%d: ML(R) = %d, want %d", n, got, n)
		}
		if got := tab.Max(); got != n+1 {
			t.Errorf("N=%d: max ML_i = %d, want %d", n, got, n+1)
		}
	}
}

func TestLevelsNoInput(t *testing.T) {
	r := mustGood(t, graph.Pair(), 3) // all messages, no input
	tab, err := NewLevelTable(r, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Final(1) != 0 || tab.Final(2) != 0 {
		t.Errorf("levels with no input = %v, want zeros", tab.Finals())
	}
}

func TestLevelsSilentRunWithInput(t *testing.T) {
	r, err := run.Silent(3, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := NewLevelTable(r, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Each hears only its own input: level exactly 1, never 2.
	if tab.Final(1) != 1 || tab.Final(2) != 1 {
		t.Errorf("silent-run levels = %v, want [_,1,1]", tab.Finals())
	}
	mt, err := NewModLevelTable(r, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Process 2 never hears from 1, so ML_2 = 0; ML_1 = 1.
	if mt.Final(1) != 1 || mt.Final(2) != 0 {
		t.Errorf("silent-run mod levels = %v, want [_,1,0]", mt.Finals())
	}
}

func TestLevelAtIsMonotoneInRound(t *testing.T) {
	g, err := graph.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	r := mustGood(t, g, 6, 1, 3)
	tab, err := NewLevelTable(r, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := graph.ProcID(1); i <= 4; i++ {
		prev := tab.At(i, 0)
		for round := 1; round <= 6; round++ {
			cur := tab.At(i, round)
			if cur < prev {
				t.Errorf("L_%d decreased from %d to %d at round %d", i, prev, cur, round)
			}
			prev = cur
		}
		if tab.At(i, 6) != tab.Final(i) {
			t.Errorf("At(i,N) != Final(i)")
		}
	}
}

func TestTreeRunLevels(t *testing.T) {
	// Lemma A.6: on the spanning-tree run, ML_1(R) = ML(R) = 1 and
	// L_1(R) = 1.
	for _, build := range []func() (*graph.G, error){
		func() (*graph.G, error) { return graph.Ring(5) },
		func() (*graph.G, error) { return graph.Complete(4) },
		func() (*graph.G, error) { return graph.Line(4) },
	} {
		g, err := build()
		if err != nil {
			t.Fatal(err)
		}
		n := g.NumVertices() // ≥ eccentricity, so the tree run exists
		r, err := run.Tree(g, n, 1)
		if err != nil {
			t.Fatal(err)
		}
		m := g.NumVertices()
		mt, err := NewModLevelTable(r, m)
		if err != nil {
			t.Fatal(err)
		}
		if got := mt.Final(1); got != 1 {
			t.Errorf("%v: ML_1(tree) = %d, want 1", g, got)
		}
		if got := mt.Min(); got != 1 {
			t.Errorf("%v: ML(tree) = %d, want 1", g, got)
		}
		lt, err := NewLevelTable(r, m)
		if err != nil {
			t.Fatal(err)
		}
		if got := lt.Final(1); got != 1 {
			t.Errorf("%v: L_1(tree) = %d, want 1", g, got)
		}
	}
}

func TestClipTreeRunForRoot(t *testing.T) {
	// Nothing flows back to the root on a tree run, so Clip_1 keeps only
	// the root's input: exactly the run R₂ = {(v₀,1,0)} of Theorem A.1.
	g, err := graph.Ring(5)
	if err != nil {
		t.Fatal(err)
	}
	r, err := run.Tree(g, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	clip := Clip(r, 5, 1)
	if clip.NumDeliveries() != 0 {
		t.Errorf("Clip_1(tree) kept %d deliveries, want 0", clip.NumDeliveries())
	}
	if !clip.HasInput(1) || len(clip.Inputs()) != 1 {
		t.Errorf("Clip_1(tree) inputs = %v, want [1]", clip.Inputs())
	}
}

func TestClipPreservesLevelAndIndistinguishability(t *testing.T) {
	// Lemma 4.2 on random runs: L_i(R) = L_i(Clip_i(R)) and the clip is
	// a subset indistinguishable to i; same for ML.
	g, err := graph.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	tape := rng.NewTape(99)
	for trial := 0; trial < 200; trial++ {
		r, err := run.RandomSubset(g, 4, tape)
		if err != nil {
			t.Fatal(err)
		}
		for i := graph.ProcID(1); i <= 4; i++ {
			clip := Clip(r, 4, i)
			if !clip.SubsetOf(r) {
				t.Fatalf("clip not a subset: %v ⊄ %v", clip, r)
			}
			lt, err := NewLevelTable(r, 4)
			if err != nil {
				t.Fatal(err)
			}
			ct, err := NewLevelTable(clip, 4)
			if err != nil {
				t.Fatal(err)
			}
			if lt.Final(i) != ct.Final(i) {
				t.Fatalf("L_%d changed under clip: %d → %d (run %v)", i, lt.Final(i), ct.Final(i), r)
			}
			mt, err := NewModLevelTable(r, 4)
			if err != nil {
				t.Fatal(err)
			}
			cmt, err := NewModLevelTable(clip, 4)
			if err != nil {
				t.Fatal(err)
			}
			if mt.Final(i) != cmt.Final(i) {
				t.Fatalf("ML_%d changed under clip: %d → %d", i, mt.Final(i), cmt.Final(i))
			}
			if !IndistinguishableTo(r, clip, 4, i) {
				t.Fatalf("run and its clip distinguishable to %d", i)
			}
		}
	}
}

func TestClipIdempotent(t *testing.T) {
	g, err := graph.Complete(3)
	if err != nil {
		t.Fatal(err)
	}
	tape := rng.NewTape(3)
	for trial := 0; trial < 100; trial++ {
		r, err := run.RandomSubset(g, 3, tape)
		if err != nil {
			t.Fatal(err)
		}
		for i := graph.ProcID(1); i <= 3; i++ {
			once := Clip(r, 3, i)
			twice := Clip(once, 3, i)
			if !once.Equal(twice) {
				t.Fatalf("clip not idempotent for i=%d on %v", i, r)
			}
		}
	}
}

func TestLemma52ClipDropsSomeoneALevel(t *testing.T) {
	// Lemma 5.2: if L_i(R) = l > 0 and R̃ = Clip_i(R), some k has
	// L_k(R̃) ≤ l-1.
	g, err := graph.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	tape := rng.NewTape(7)
	checked := 0
	for trial := 0; trial < 300; trial++ {
		r, err := run.RandomSubset(g, 4, tape)
		if err != nil {
			t.Fatal(err)
		}
		lt, err := NewLevelTable(r, 4)
		if err != nil {
			t.Fatal(err)
		}
		for i := graph.ProcID(1); i <= 4; i++ {
			l := lt.Final(i)
			if l == 0 {
				continue
			}
			checked++
			ct, err := NewLevelTable(Clip(r, 4, i), 4)
			if err != nil {
				t.Fatal(err)
			}
			if ct.Min() > l-1 {
				t.Fatalf("Lemma 5.2 violated: L_%d(R)=%d but min level of clip is %d (run %v)",
					i, l, ct.Min(), r)
			}
		}
	}
	if checked < 100 {
		t.Fatalf("only %d positive-level cases sampled; test too weak", checked)
	}
}

func TestLemma61And62ModLevelBounds(t *testing.T) {
	// Lemma 6.1: L_i - 1 ≤ ML_i ≤ L_i. Lemma 6.2: ML_j ≥ ML_i - 1.
	g, err := graph.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	tape := rng.NewTape(21)
	for trial := 0; trial < 300; trial++ {
		r, err := run.RandomSubset(g, 4, tape)
		if err != nil {
			t.Fatal(err)
		}
		lt, err := NewLevelTable(r, 4)
		if err != nil {
			t.Fatal(err)
		}
		mt, err := NewModLevelTable(r, 4)
		if err != nil {
			t.Fatal(err)
		}
		for i := graph.ProcID(1); i <= 4; i++ {
			l, ml := lt.Final(i), mt.Final(i)
			if ml > l || ml < l-1 {
				t.Fatalf("Lemma 6.1 violated at %d: L=%d ML=%d (run %v)", i, l, ml, r)
			}
			for j := graph.ProcID(1); j <= 4; j++ {
				if mt.Final(j) < ml-1 {
					t.Fatalf("Lemma 6.2 violated: ML_%d=%d ML_%d=%d", i, ml, j, mt.Final(j))
				}
			}
		}
	}
}

func TestCausalIndependence(t *testing.T) {
	// Run R̃ of Lemma A.5: input at 1 only, no deliveries touching 1;
	// 1 and any other process are causally independent.
	g, err := graph.Complete(3)
	if err != nil {
		t.Fatal(err)
	}
	r := run.MustNew(3)
	r.AddInput(1)
	r.MustDeliver(2, 3, 1).MustDeliver(3, 2, 2)
	if !CausallyIndependent(r, 3, 1, 2) {
		t.Error("1 and 2 should be causally independent")
	}
	if CausallyIndependent(r, 3, 2, 3) {
		t.Error("2 and 3 exchange messages; not independent")
	}
	good := mustGood(t, g, 3, 1)
	if CausallyIndependent(good, 3, 1, 2) {
		t.Error("good run: everyone causally linked")
	}
}

func TestReachesSinkSelf(t *testing.T) {
	r := run.MustNew(2)
	cr := ReachesSink(r, 2, 1)
	for round := 0; round <= 2; round++ {
		if !cr[1][round] {
			t.Errorf("(1,%d) should reach (1,N)", round)
		}
		if cr[2][round] {
			t.Errorf("(2,%d) should not reach (1,N) on empty run", round)
		}
	}
}

func TestQuickFlowsToTransitivity(t *testing.T) {
	// Lemma 4.1 as a property over random runs and random pairs.
	g, err := graph.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64, aRaw, bRaw, cRaw uint8, s1Raw, s2Raw uint8) bool {
		const n = 4
		r, err := run.RandomSubset(g, n, rng.NewTape(seed))
		if err != nil {
			return false
		}
		a := graph.ProcID(aRaw%4) + 1
		b := graph.ProcID(bRaw%4) + 1
		c := graph.ProcID(cRaw%4) + 1
		s1 := int(s1Raw % (n + 1))
		s2 := int(s2Raw % (n + 1))
		if !(FlowsTo(r, 4, a, 0, b, s1) && FlowsTo(r, 4, b, s1, c, s2)) {
			return true // antecedent fails; vacuously fine
		}
		return FlowsTo(r, 4, a, 0, c, s2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickLevelBoundedByNPlus1(t *testing.T) {
	g, err := graph.Complete(3)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%5) + 1
		r, err := run.RandomSubset(g, n, rng.NewTape(seed))
		if err != nil {
			return false
		}
		lt, err := NewLevelTable(r, 3)
		if err != nil {
			return false
		}
		for i := graph.ProcID(1); i <= 3; i++ {
			if lt.Final(i) > n+1 || lt.Final(i) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickMoreDeliveriesNeverLowerLevels(t *testing.T) {
	// Levels are monotone in the run: adding deliveries cannot decrease
	// any L_i. (Liveness of Protocol S inherits this monotonicity.)
	g, err := graph.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64, k uint8) bool {
		r, err := run.RandomSubset(g, 4, rng.NewTape(seed))
		if err != nil {
			return false
		}
		sub := run.Prefix(r, int(k%5))
		lt, err := NewLevelTable(r, 4)
		if err != nil {
			return false
		}
		st, err := NewLevelTable(sub, 4)
		if err != nil {
			return false
		}
		for i := graph.ProcID(1); i <= 4; i++ {
			if st.Final(i) > lt.Final(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
