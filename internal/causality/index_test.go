package causality

import (
	"testing"

	"coordattack/internal/graph"
	"coordattack/internal/rng"
	"coordattack/internal/run"
)

func randomRun(t *testing.T, m, n int, seed uint64) *run.Run {
	t.Helper()
	g, err := graph.Complete(m)
	if err != nil {
		t.Fatal(err)
	}
	r, err := run.RandomSubset(g, n, rng.NewTape(seed))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestIndexBuildCounts pins how many times the delivery index is built per
// entry point. The whole point of hoisting deliveriesByRound into Index is
// that one level-table build indexes the run once, not once per
// ArrivalFrom call; this test is the regression guard for that contract.
func TestIndexBuildCounts(t *testing.T) {
	r := randomRun(t, 4, 5, 11).AddInput(1)
	cases := []struct {
		name  string
		op    func() error
		wantB int64
	}{
		{"NewLevelTable", func() error { _, err := NewLevelTable(r, 4); return err }, 1},
		{"NewModLevelTable", func() error { _, err := NewModLevelTable(r, 4); return err }, 1},
		{"ArrivalFrom", func() error { ArrivalFrom(r, 4, 1, 0); return nil }, 1},
		{"InputArrival", func() error { InputArrival(r, 4); return nil }, 1},
		{"ReachesSink", func() error { ReachesSink(r, 4, 2); return nil }, 1},
		{"Clip", func() error { Clip(r, 4, 2); return nil }, 1},
		{"CausallyIndependent", func() error { CausallyIndependent(r, 4, 1, 2); return nil }, 1},
		{"FlowsTo", func() error { FlowsTo(r, 4, 1, 0, 2, 5); return nil }, 1},
	}
	for _, tc := range cases {
		before := IndexBuilds()
		if err := tc.op(); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got := IndexBuilds() - before; got != tc.wantB {
			t.Errorf("%s built the index %d times, want %d", tc.name, got, tc.wantB)
		}
	}
}

// TestIndexMatchesPackageFunctions cross-checks the Index methods against
// the package-level entry points on random runs (the package functions are
// thin wrappers, so this mostly guards against the wrapper and the method
// drifting apart in a refactor).
func TestIndexMatchesPackageFunctions(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		m, n := 5, 4
		r := randomRun(t, m, n, seed)
		ix := NewIndex(r, m)
		if ix.N() != n || ix.M() != m {
			t.Fatalf("index dims (%d, %d)", ix.N(), ix.M())
		}
		for src := graph.ProcID(1); int(src) <= m; src++ {
			for s := 0; s <= n; s++ {
				got := ix.ArrivalFrom(src, s)
				want := ArrivalFrom(r, m, src, s)
				for j := 1; j <= m; j++ {
					if got[j] != want[j] {
						t.Fatalf("seed %d: ArrivalFrom(%d, %d)[%d] = %d, want %d",
							seed, src, s, j, got[j], want[j])
					}
				}
			}
		}
		gotIn, wantIn := ix.InputArrival(), InputArrival(r, m)
		for j := 1; j <= m; j++ {
			if gotIn[j] != wantIn[j] {
				t.Fatalf("seed %d: InputArrival[%d] mismatch", seed, j)
			}
		}
		for sink := graph.ProcID(1); int(sink) <= m; sink++ {
			gotR, wantR := ix.ReachesSink(sink), ReachesSink(r, m, sink)
			for k := 1; k <= m; k++ {
				for rd := 0; rd <= n; rd++ {
					if gotR[k][rd] != wantR[k][rd] {
						t.Fatalf("seed %d: ReachesSink(%d)[%d][%d] mismatch", seed, sink, k, rd)
					}
				}
			}
		}
	}
}

// TestArrivalIntoZeroAlloc pins the no-allocation contract of the kernel
// the fast analyses lean on.
func TestArrivalIntoZeroAlloc(t *testing.T) {
	r := randomRun(t, 6, 6, 3).AddInput(2)
	ix := NewIndex(r, 6)
	buf := make([]int, 7)
	allocs := testing.AllocsPerRun(200, func() {
		ix.ArrivalInto(buf, 2, 0)
	})
	if allocs != 0 {
		t.Fatalf("ArrivalInto allocates %v per call, want 0", allocs)
	}
}

func TestIndexOutOfRangeSources(t *testing.T) {
	r := run.MustNew(3).MustDeliver(1, 2, 1)
	ix := NewIndex(r, 2)
	for _, src := range []graph.ProcID{0, 3} {
		a := ix.ArrivalFrom(src, 0)
		for j := 0; j <= 2; j++ {
			if a[j] != Never {
				t.Fatalf("src %d: arrive[%d] = %d, want Never", src, j, a[j])
			}
		}
	}
	if a := ix.ArrivalFrom(1, 4); a[1] != Never {
		t.Fatal("start round beyond N must yield all-Never")
	}
}

func TestMemoCachesTables(t *testing.T) {
	mm := NewMemo()
	r := randomRun(t, 4, 5, 9).AddInput(1)

	t1, err := mm.Table(r, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := mm.Table(r, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Fatal("second lookup of the same run must return the cached table")
	}
	// An Equal run built independently hits the same entry.
	t3, err := mm.Table(r.Clone(), 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if t3 != t1 {
		t.Fatal("an Equal clone must hit the cache")
	}
	// The plain measure is a distinct entry.
	t4, err := mm.Table(r, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if t4 == t1 {
		t.Fatal("plain and modified measures must not share entries")
	}
	if t4.Modified() {
		t.Fatal("plain lookup returned a modified table")
	}

	st := mm.Stats()
	if st.Hits != 2 || st.Misses != 2 || st.Size != 2 {
		t.Fatalf("Stats = %+v, want 2 hits, 2 misses, 2 entries", st)
	}

	// Cached answers match fresh ones.
	fresh, err := NewModLevelTable(r, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := graph.ProcID(1); i <= 4; i++ {
		if t1.Final(i) != fresh.Final(i) {
			t.Fatalf("cached table diverges at process %d", i)
		}
	}
}

func TestMemoNilReceiver(t *testing.T) {
	var mm *Memo
	r := randomRun(t, 3, 3, 1).AddInput(1)
	tab, err := mm.Table(r, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	if tab == nil {
		t.Fatal("nil memo must still compute")
	}
	if st := mm.Stats(); st != (MemoStats{}) {
		t.Fatalf("nil memo Stats = %+v", st)
	}
}

func TestMemoPropagatesErrors(t *testing.T) {
	mm := NewMemo()
	if _, err := mm.Table(run.MustNew(2), 1, false); err == nil {
		t.Fatal("m < 2 must error through the memo")
	}
}
