package causality

// IndexBuilds reports the number of Index constructions so far, for tests
// that pin how often the per-run delivery index is rebuilt.
func IndexBuilds() int64 { return indexBuilds.Load() }
