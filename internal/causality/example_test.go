package causality_test

import (
	"fmt"
	"log"

	"coordattack/internal/causality"
	"coordattack/internal/graph"
	"coordattack/internal/run"
)

// ExampleNewModLevelTable computes the §6 modified levels on the
// Lemma A.6 spanning-tree run: every general hears the input and the
// distinguished general, but nothing flows back — ML(R) = 1.
func ExampleNewModLevelTable() {
	g, err := graph.Ring(5)
	if err != nil {
		log.Fatal(err)
	}
	tree, err := run.Tree(g, 5, 1)
	if err != nil {
		log.Fatal(err)
	}
	mt, err := causality.NewModLevelTable(tree, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ML_i:", mt.Finals()[1:])
	fmt.Println("ML(R):", mt.Min())
	// Output:
	// ML_i: [1 1 1 1 1]
	// ML(R): 1
}

// ExampleClip demonstrates the lower bound's key construction: clipping
// keeps exactly the tuples whose receipt can influence process 1, and
// the result is indistinguishable from the original to process 1.
func ExampleClip() {
	r := run.MustNew(3)
	r.AddInput(1)
	r.MustDeliver(2, 1, 2) // flows to 1
	r.MustDeliver(1, 2, 3) // 2 has no time to reply: invisible to 1
	clip := causality.Clip(r, 2, 1)
	fmt.Println("kept deliveries:", clip.Deliveries())
	fmt.Println("indistinguishable to 1:", causality.IndistinguishableTo(r, clip, 2, 1))
	// Output:
	// kept deliveries: [(2,1,2)]
	// indistinguishable to 1: true
}

// ExampleCausallyIndependent shows Appendix A's notion on the run used in
// Lemma A.5: input at 1, all other messages avoiding process 1.
func ExampleCausallyIndependent() {
	r := run.MustNew(3)
	r.AddInput(1)
	r.MustDeliver(2, 3, 1).MustDeliver(3, 2, 2)
	fmt.Println("1 vs 2:", causality.CausallyIndependent(r, 3, 1, 2))
	fmt.Println("2 vs 3:", causality.CausallyIndependent(r, 3, 2, 3))
	// Output:
	// 1 vs 2: true
	// 2 vs 3: false
}
