package queue

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func item(flow string, class Class, key string) *Item {
	return &Item{Key: key, Flow: flow, Class: class, Enqueued: time.Now()}
}

// drainAll closes the scheduler and pops everything left, in order.
func drainAll(s *Sched) []*Item {
	s.Close()
	var out []*Item
	for {
		it, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, it)
	}
}

// TestFairShareRoundRobin: a big sweep flow and a trickle of interactive
// jobs must alternate — the sweep cannot drain first.
func TestFairShareRoundRobin(t *testing.T) {
	s := NewSched(SchedOptions{MaxDepth: 64})
	for i := 0; i < 10; i++ {
		if err := s.Push(item("sw1", ClassSweep, fmt.Sprintf("cell%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := s.Push(item("interactive", ClassInteractive, fmt.Sprintf("job%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	order := drainAll(s)
	// All three interactive jobs must appear within the first six pops:
	// round-robin over two flows yields at worst sweep,inter,sweep,inter,…
	seen := 0
	for i, it := range order {
		if it.Class == ClassInteractive {
			seen++
			if i >= 6 {
				t.Errorf("interactive job %s popped at position %d — starved by the sweep", it.Key, i)
			}
		}
	}
	if seen != 3 || len(order) != 13 {
		t.Fatalf("drained %d items, %d interactive, want 13/3", len(order), seen)
	}
}

// TestStrictFIFOIgnoresFlowsAndPriority: legacy mode is admission order,
// nothing else.
func TestStrictFIFOIgnoresFlowsAndPriority(t *testing.T) {
	s := NewSched(SchedOptions{MaxDepth: 16, Strict: true})
	a := item("sw1", ClassSweep, "a")
	b := item("interactive", ClassInteractive, "b")
	b.Priority = 9
	c := item("sw2", ClassSweep, "c")
	for _, it := range []*Item{a, b, c} {
		if err := s.Push(it); err != nil {
			t.Fatal(err)
		}
	}
	order := drainAll(s)
	if len(order) != 3 || order[0] != a || order[1] != b || order[2] != c {
		t.Fatalf("strict FIFO reordered: %v", keys(order))
	}
}

// TestPriorityAndDeadlineOrdering: within one flow, higher priority
// first, then earlier deadline, then admission order.
func TestPriorityAndDeadlineOrdering(t *testing.T) {
	s := NewSched(SchedOptions{MaxDepth: 16})
	now := time.Now()
	low := item("interactive", ClassInteractive, "low")
	low.Priority = -1
	urgent := item("interactive", ClassInteractive, "urgent")
	urgent.Priority = 2
	soon := item("interactive", ClassInteractive, "soon")
	soon.Deadline = now.Add(time.Second)
	later := item("interactive", ClassInteractive, "later")
	later.Deadline = now.Add(time.Hour)
	for _, it := range []*Item{low, later, soon, urgent} {
		if err := s.Push(it); err != nil {
			t.Fatal(err)
		}
	}
	got := keys(drainAll(s))
	want := []string{"urgent", "soon", "later", "low"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

// TestWeightedClasses: interactive weight 2 takes two pops per sweep pop.
func TestWeightedClasses(t *testing.T) {
	s := NewSched(SchedOptions{MaxDepth: 32, Weight: func(c Class) int {
		if c == ClassInteractive {
			return 2
		}
		return 1
	}})
	for i := 0; i < 4; i++ {
		if err := s.Push(item("interactive", ClassInteractive, fmt.Sprintf("i%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if err := s.Push(item("sw", ClassSweep, fmt.Sprintf("s%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	got := keys(drainAll(s))
	want := []string{"i0", "i1", "s0", "i2", "i3", "s1", "s2", "s3"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("weighted pop order %v, want %v", got, want)
		}
	}
}

// TestDepthBoundAndReplayBypass: Push refuses past MaxDepth, PushReplay
// never does.
func TestDepthBoundAndReplayBypass(t *testing.T) {
	s := NewSched(SchedOptions{MaxDepth: 2})
	if err := s.Push(item("interactive", ClassInteractive, "a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Push(item("interactive", ClassInteractive, "b")); err != nil {
		t.Fatal(err)
	}
	if err := s.Push(item("interactive", ClassInteractive, "c")); err != ErrFull {
		t.Fatalf("third push err = %v, want ErrFull", err)
	}
	s.PushReplay(item("interactive", ClassInteractive, "replayed"))
	if d := s.Depth(); d != 3 {
		t.Fatalf("depth = %d, want 3 after replay bypass", d)
	}
	if got := keys(drainAll(s)); len(got) != 3 {
		t.Fatalf("drained %v", got)
	}
}

// TestRemoveWithdrawsPending: a removed item neither reaches Next nor
// counts against depth; removing twice (or after pop) reports false.
func TestRemoveWithdrawsPending(t *testing.T) {
	s := NewSched(SchedOptions{MaxDepth: 8})
	a := item("sw", ClassSweep, "a")
	b := item("sw", ClassSweep, "b")
	c := item("interactive", ClassInteractive, "c")
	for _, it := range []*Item{a, b, c} {
		if err := s.Push(it); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Remove(b) {
		t.Fatal("Remove(b) = false, want true while pending")
	}
	if s.Remove(b) {
		t.Fatal("second Remove(b) = true")
	}
	if d := s.Depth(); d != 2 {
		t.Fatalf("depth after remove = %d, want 2", d)
	}
	got := keys(drainAll(s))
	for _, k := range got {
		if k == "b" {
			t.Fatal("removed item still popped")
		}
	}
	if len(got) != 2 {
		t.Fatalf("drained %v, want 2 items", got)
	}
	if s.Remove(a) {
		t.Fatal("Remove of an already-popped item = true")
	}
}

// TestDepthByClassAndOldestAge: the metrics views.
func TestDepthByClassAndOldestAge(t *testing.T) {
	s := NewSched(SchedOptions{MaxDepth: 8})
	old := item("interactive", ClassInteractive, "old")
	old.Enqueued = time.Now().Add(-3 * time.Second)
	if err := s.Push(old); err != nil {
		t.Fatal(err)
	}
	if err := s.Push(item("sw", ClassSweep, "s1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Push(item("sw", ClassSweep, "s2")); err != nil {
		t.Fatal(err)
	}
	d := s.DepthByClass()
	if d[ClassInteractive] != 1 || d[ClassSweep] != 2 {
		t.Fatalf("depth by class = %v", d)
	}
	if age := s.OldestAge(time.Now()); age < 2*time.Second {
		t.Fatalf("oldest age = %v, want >= 2s", age)
	}
	drainAll(s)
	if age := s.OldestAge(time.Now()); age != 0 {
		t.Fatalf("oldest age on empty queue = %v, want 0", age)
	}
}

// TestNextBlocksUntilPushAndCloseDrains: Next waits for work; Close
// lets the backlog drain before reporting empty.
func TestNextBlocksUntilPushAndCloseDrains(t *testing.T) {
	s := NewSched(SchedOptions{MaxDepth: 8})
	got := make(chan *Item, 1)
	go func() {
		it, ok := s.Next()
		if !ok {
			close(got)
			return
		}
		got <- it
	}()
	time.Sleep(10 * time.Millisecond)
	if err := s.Push(item("interactive", ClassInteractive, "late")); err != nil {
		t.Fatal(err)
	}
	select {
	case it := <-got:
		if it == nil || it.Key != "late" {
			t.Fatalf("blocked Next returned %v", it)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Next did not wake on Push")
	}
	if err := s.Push(item("interactive", ClassInteractive, "backlog")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if it, ok := s.Next(); !ok || it.Key != "backlog" {
		t.Fatalf("Next after Close = %v/%v, want the backlog item", it, ok)
	}
	if _, ok := s.Next(); ok {
		t.Fatal("Next on closed empty scheduler = ok")
	}
}

// TestConcurrentProducersConsumers: every pushed item is delivered
// exactly once under contention (run with -race).
func TestConcurrentProducersConsumers(t *testing.T) {
	const producers, perProducer, consumers = 8, 50, 4
	s := NewSched(SchedOptions{MaxDepth: producers * perProducer})
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			flow := fmt.Sprintf("flow%d", p%3)
			for i := 0; i < perProducer; i++ {
				if err := s.Push(item(flow, ClassSweep, fmt.Sprintf("p%d-%d", p, i))); err != nil {
					t.Errorf("push: %v", err)
				}
			}
		}(p)
	}
	seen := make(chan string, producers*perProducer)
	var cg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for {
				it, ok := s.Next()
				if !ok {
					return
				}
				seen <- it.Key
			}
		}()
	}
	wg.Wait()
	s.Close()
	cg.Wait()
	close(seen)
	got := make(map[string]int)
	for k := range seen {
		got[k]++
	}
	if len(got) != producers*perProducer {
		t.Fatalf("delivered %d distinct items, want %d", len(got), producers*perProducer)
	}
	for k, n := range got {
		if n != 1 {
			t.Fatalf("item %s delivered %d times", k, n)
		}
	}
}

func keys(items []*Item) []string {
	out := make([]string, len(items))
	for i, it := range items {
		out[i] = it.Key
	}
	return out
}
