package queue

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// The DRR ring must never retain an empty flow: after any interleaving
// of pushes, pops, and removes, every registered flow still holds at
// least one item, and a fully drained scheduler registers zero flows.
// This is the property that keeps a long-lived daemon's ring from
// growing one dead flow per settled sweep.
func TestFlowsReapedPropertyRandomInterleaving(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	s := NewSched(SchedOptions{MaxDepth: 10_000})
	var pending []*Item
	checkInvariant := func(step int) {
		s.mu.Lock()
		defer s.mu.Unlock()
		if len(s.flows) != len(s.ring) {
			t.Fatalf("step %d: flows map (%d) and ring (%d) diverged", step, len(s.flows), len(s.ring))
		}
		for id, f := range s.flows {
			if f.items.Len() == 0 {
				t.Fatalf("step %d: empty flow %q still registered", step, id)
			}
		}
		if s.depth == 0 && len(s.flows) != 0 {
			t.Fatalf("step %d: drained scheduler still registers %d flows", step, len(s.flows))
		}
	}
	for step := 0; step < 5000; step++ {
		switch op := r.Intn(3); {
		case op == 0 || len(pending) == 0: // push onto one of 8 sweep flows
			it := &Item{
				Key:      fmt.Sprintf("k%d", step),
				Flow:     fmt.Sprintf("sw%d", r.Intn(8)),
				Class:    ClassSweep,
				Priority: r.Intn(5) - 2,
			}
			if err := s.Push(it); err != nil {
				t.Fatalf("step %d: push: %v", step, err)
			}
			pending = append(pending, it)
		case op == 1: // pop
			it, ok := s.Next()
			if !ok {
				t.Fatalf("step %d: Next returned closed", step)
			}
			for i, p := range pending {
				if p == it {
					pending = append(pending[:i], pending[i+1:]...)
					break
				}
			}
		default: // remove a random pending item (cancel-withdrawal)
			i := r.Intn(len(pending))
			if !s.Remove(pending[i]) {
				t.Fatalf("step %d: Remove of a pending item returned false", step)
			}
			pending = append(pending[:i], pending[i+1:]...)
		}
		checkInvariant(step)
	}
	// Drain completely: zero flows must remain.
	for range pending {
		if _, ok := s.Next(); !ok {
			t.Fatal("drain: Next returned closed")
		}
	}
	if got := s.Flows(); got != 0 {
		t.Fatalf("drained scheduler registers %d flows, want 0", got)
	}
	if got := s.Depth(); got != 0 {
		t.Fatalf("drained scheduler depth %d, want 0", got)
	}
}

// A cancelled sweep's flow must be reaped the moment its last pending
// cell is withdrawn — the sweep-cancellation shape specifically.
func TestFlowsReapedOnSweepCancelWithdrawal(t *testing.T) {
	s := NewSched(SchedOptions{MaxDepth: 1000})
	for sweep := 0; sweep < 50; sweep++ {
		flow := fmt.Sprintf("sw%06d", sweep)
		cells := make([]*Item, 8)
		for i := range cells {
			cells[i] = &Item{Key: fmt.Sprintf("%s-c%d", flow, i), Flow: flow, Class: ClassSweep}
			if err := s.Push(cells[i]); err != nil {
				t.Fatal(err)
			}
		}
		// A couple of cells reach workers, the rest are cancel-withdrawn.
		s.Next()
		s.Next()
		for _, it := range cells {
			s.Remove(it) // popped items report false; fine
		}
		if got := s.Flows(); got != 0 {
			t.Fatalf("after sweep %d cancelled: %d flows registered, want 0", sweep, got)
		}
	}
	if d := s.Depth(); d != 0 {
		t.Fatalf("depth %d after all sweeps cancelled", d)
	}
}

// Removing the last item of the cursor flow must not leak its unspent
// DRR credit to the flow that slides into its slot: the next flow gets
// a fresh weight allotment, preserving fair alternation.
func TestRemoveResetsCursorFlowCredit(t *testing.T) {
	s := NewSched(SchedOptions{
		MaxDepth: 100,
		Weight: func(c Class) int {
			if c == ClassInteractive {
				return 4
			}
			return 1
		},
	})
	// Interactive flow first (cursor lands on it), then two sweep flows.
	inter := make([]*Item, 3)
	for i := range inter {
		inter[i] = &Item{Key: fmt.Sprintf("i%d", i), Flow: "interactive", Class: ClassInteractive}
		if err := s.Push(inter[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := s.Push(&Item{Key: fmt.Sprintf("a%d", i), Flow: "swA", Class: ClassSweep}); err != nil {
			t.Fatal(err)
		}
		if err := s.Push(&Item{Key: fmt.Sprintf("b%d", i), Flow: "swB", Class: ClassSweep}); err != nil {
			t.Fatal(err)
		}
	}
	// One pop charges the interactive flow's credit (4 → 3), then the
	// remaining interactive items are cancel-withdrawn, emptying the
	// cursor flow with credit outstanding.
	it, _ := s.Next()
	if it.Class != ClassInteractive {
		t.Fatalf("first pop should be interactive, got %s/%s", it.Flow, it.Key)
	}
	s.Remove(inter[1])
	s.Remove(inter[2])
	// The credit must not carry over: the sweep flows (weight 1) should
	// now alternate strictly instead of one of them burning the leaked
	// interactive credit in a 3-pop run.
	var order []string
	for i := 0; i < 6; i++ {
		it, ok := s.Next()
		if !ok {
			t.Fatal("unexpected close")
		}
		order = append(order, it.Flow)
	}
	for i := 1; i < len(order); i++ {
		if order[i] == order[i-1] {
			t.Fatalf("sweep flows did not alternate (leaked credit): %v", order)
		}
	}
}

func TestStealPopsInDRROrderAndReapsFlows(t *testing.T) {
	s := NewSched(SchedOptions{MaxDepth: 100})
	for i := 0; i < 3; i++ {
		if err := s.Push(&Item{Key: fmt.Sprintf("s%d", i), Flow: "sw1", Class: ClassSweep, Enqueued: time.Unix(int64(i), 0)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Push(&Item{Key: "hot", Flow: "interactive", Class: ClassInteractive, Priority: 10}); err != nil {
		t.Fatal(err)
	}

	got := s.Steal(10) // asks for more than exists: grants everything
	if len(got) != 4 {
		t.Fatalf("stole %d items, want 4", len(got))
	}
	if s.Depth() != 0 || s.Flows() != 0 {
		t.Fatalf("post-steal depth=%d flows=%d, want 0/0", s.Depth(), s.Flows())
	}
	// Stolen items are no longer removable (index reset on pop).
	if s.Remove(got[0]) {
		t.Fatal("stolen item still removable")
	}
	if extra := s.Steal(1); len(extra) != 0 {
		t.Fatalf("empty scheduler granted %d items", len(extra))
	}
}
