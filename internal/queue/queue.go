// Package queue is coordd's admission layer: a weighted fair-share
// scheduler over flows of pending work (sched.go, this file) and a
// crash-safe on-disk pending-queue journal (journal.go). Together they
// replace the service layer's bounded FIFO channel with the discipline
// the paper demands of its protocols — progress must be fair under
// overload, and accepted work must never be lost to a crash.
//
// The scheduler groups pending items into flows: every sweep is one
// flow, every interactive submitter shares the "interactive" flow, and
// a deficit-round-robin pass across the active flows picks the next
// item — so a 256-cell sweep and a single interactive job alternate
// pops instead of the sweep draining first. Within a flow, items order
// by priority (higher first), then deadline (earlier first), then
// admission order. A strict mode preserves the old global-FIFO
// semantics for operators who want them back.
package queue

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Class partitions flows for fairness weights and metrics labels.
type Class string

const (
	// ClassInteractive is the shared flow of individually submitted jobs.
	ClassInteractive Class = "interactive"
	// ClassSweep marks per-sweep flows (one flow per sweep id).
	ClassSweep Class = "sweep"
)

// ErrFull is returned by Push when the scheduler is at MaxDepth.
var ErrFull = fmt.Errorf("queue: scheduler full")

// Item is one pending unit of work. Key/Flow/Class/Priority/Deadline
// are scheduling inputs; Payload is the caller's job, opaque to the
// scheduler. An Item must be pushed at most once.
type Item struct {
	Key      string
	Flow     string
	Class    Class
	Priority int
	Deadline time.Time
	Enqueued time.Time
	Payload  any

	seq   uint64
	index int // position in its flow's heap; -1 once popped or removed
}

// SchedOptions tunes NewSched.
type SchedOptions struct {
	// MaxDepth bounds the total pending items; Push past it returns
	// ErrFull. 0 means 64. PushReplay ignores the bound — journal
	// re-admission must never drop accepted work.
	MaxDepth int
	// Strict disables fair sharing: one global FIFO in admission order,
	// ignoring flows, priorities, and deadlines — the legacy behavior.
	Strict bool
	// Weight maps a class to its pops per round-robin turn; nil or a
	// return < 1 means 1. Raising the interactive weight lets latency-
	// sensitive traffic take several slots per sweep slot.
	Weight func(Class) int
}

// Sched is the fair-share scheduler. All methods are safe for
// concurrent use; Next blocks until an item is available or the
// scheduler is closed and empty.
type Sched struct {
	maxDepth int
	strict   bool
	weight   func(Class) int

	mu     sync.Mutex
	cond   *sync.Cond
	flows  map[string]*flow
	ring   []*flow // active (non-empty) flows in round-robin order
	cursor int
	credit int // pops left for the flow at cursor this turn
	depth  int
	seq    uint64
	closed bool
}

// flow is one fairness unit: a heap of pending items.
type flow struct {
	id    string
	class Class
	items itemHeap
}

// NewSched returns a running scheduler.
func NewSched(opts SchedOptions) *Sched {
	if opts.MaxDepth == 0 {
		opts.MaxDepth = 64
	}
	s := &Sched{
		maxDepth: opts.MaxDepth,
		strict:   opts.Strict,
		weight:   opts.Weight,
		flows:    make(map[string]*flow),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Push admits it, or returns ErrFull at MaxDepth. Closed schedulers
// refuse everything (the caller's drain check fires first in practice).
func (s *Sched) Push(it *Item) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("queue: scheduler closed")
	}
	if s.depth >= s.maxDepth {
		return ErrFull
	}
	s.pushLocked(it)
	return nil
}

// PushReplay admits it regardless of MaxDepth: journal re-admission on
// restart must never drop accepted work, even when the accepted backlog
// exceeds the configured bound.
func (s *Sched) PushReplay(it *Item) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.pushLocked(it)
}

func (s *Sched) pushLocked(it *Item) {
	s.seq++
	it.seq = s.seq
	if it.Enqueued.IsZero() {
		it.Enqueued = time.Now()
	}
	id := it.Flow
	if s.strict {
		id = "" // one global flow, FIFO by seq
	}
	f, ok := s.flows[id]
	if !ok {
		f = &flow{id: id, class: it.Class}
		f.items.strict = s.strict
		s.flows[id] = f
		s.ring = append(s.ring, f)
	}
	heap.Push(&f.items, it)
	s.depth++
	s.cond.Signal()
}

// Next blocks until an item is available and returns it, or returns
// ok=false once the scheduler is closed and drained. After Close, Next
// keeps yielding the remaining backlog before reporting empty — drain
// semantics, matching the old closed-channel behavior.
func (s *Sched) Next() (*Item, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.depth == 0 {
		if s.closed {
			return nil, false
		}
		s.cond.Wait()
	}
	return s.popLocked(), true
}

// popLocked runs one deficit-round-robin step: the flow at the cursor
// yields up to weight(class) items, then the cursor advances. Flows
// leave the ring the moment they empty, so round-robin is always over
// flows that actually have work.
func (s *Sched) popLocked() *Item {
	if s.cursor >= len(s.ring) {
		s.cursor = 0
	}
	f := s.ring[s.cursor]
	if s.credit <= 0 {
		s.credit = s.weightOf(f.class)
	}
	it := heap.Pop(&f.items).(*Item)
	s.depth--
	s.credit--
	if f.items.Len() == 0 {
		s.dropFlowLocked(s.cursor)
		s.credit = 0
	} else if s.credit <= 0 {
		s.cursor++
		if s.cursor >= len(s.ring) {
			s.cursor = 0
		}
	}
	return it
}

func (s *Sched) weightOf(c Class) int {
	if s.weight == nil {
		return 1
	}
	if w := s.weight(c); w > 1 {
		return w
	}
	return 1
}

// dropFlowLocked removes the flow at ring index i, keeping the cursor
// on the flow that slid into its place (or wrapping).
func (s *Sched) dropFlowLocked(i int) {
	delete(s.flows, s.ring[i].id)
	s.ring = append(s.ring[:i], s.ring[i+1:]...)
	if s.cursor > i {
		s.cursor--
	}
	if s.cursor >= len(s.ring) {
		s.cursor = 0
	}
}

// Remove withdraws a still-pending item (a cancelled job) so it neither
// occupies capacity nor reaches a worker. Reports whether it was still
// pending — false means a worker already popped it (or it was never
// pushed). Emptied flows leave the ring immediately: a cancelled sweep
// must not leave its flow registered, or a long-lived daemon's DRR ring
// would grow without bound.
func (s *Sched) Remove(it *Item) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if it == nil || it.index < 0 || it.seq == 0 {
		return false
	}
	id := it.Flow
	if s.strict {
		id = ""
	}
	f, ok := s.flows[id]
	if !ok {
		return false
	}
	if it.index >= f.items.Len() || f.items.items[it.index] != it {
		return false
	}
	heap.Remove(&f.items, it.index)
	s.depth--
	if f.items.Len() == 0 {
		for i, rf := range s.ring {
			if rf == f {
				if s.cursor == i {
					// The removed flow's unspent DRR credit must not leak
					// to whichever flow slides into its ring slot.
					s.credit = 0
				}
				s.dropFlowLocked(i)
				break
			}
		}
	}
	return true
}

// Steal pops up to n pending items for donation to a peer, using the
// same deficit-round-robin discipline as Next — the donated work is
// exactly the work that would have run next locally, so stealing never
// inverts priorities. Non-blocking: an idle or closed scheduler grants
// nothing. Emptied flows are reaped exactly as on the Next path.
func (s *Sched) Steal(n int) []*Item {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*Item
	for len(out) < n && s.depth > 0 {
		out = append(out, s.popLocked())
	}
	return out
}

// Close stops admission. Workers drain the backlog through Next, which
// reports empty only after the last item is gone.
func (s *Sched) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Depth reports the total pending items.
func (s *Sched) Depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.depth
}

// Flows reports the registered fairness flows — the DRR ring size. The
// invariant a long-lived daemon depends on: every registered flow holds
// at least one pending item, so Flows is bounded by Depth and returns
// to at most the active-submitter count once backlogs settle. The
// coordd_queue_flows gauge watches exactly this.
func (s *Sched) Flows() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.flows)
}

// DepthByClass reports pending items per class (the /metrics labels).
func (s *Sched) DepthByClass() map[Class]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[Class]int, 2)
	for _, f := range s.flows {
		for _, it := range f.items.items {
			out[it.Class]++
		}
	}
	return out
}

// OldestAge reports how long the oldest pending item has waited, or 0
// when the queue is empty — the head-of-line latency gauge.
func (s *Sched) OldestAge(now time.Time) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	var oldest time.Time
	for _, f := range s.flows {
		for _, it := range f.items.items {
			if oldest.IsZero() || it.Enqueued.Before(oldest) {
				oldest = it.Enqueued
			}
		}
	}
	if oldest.IsZero() {
		return 0
	}
	if d := now.Sub(oldest); d > 0 {
		return d
	}
	return 0
}

// itemHeap orders a flow's items: admission order in strict mode;
// otherwise priority (higher first), then deadline (earlier first, with
// no-deadline last), then admission order.
type itemHeap struct {
	items  []*Item
	strict bool
}

func (h itemHeap) Len() int { return len(h.items) }

func (h itemHeap) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if h.strict {
		return a.seq < b.seq
	}
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	if !a.Deadline.Equal(b.Deadline) {
		if a.Deadline.IsZero() {
			return false
		}
		if b.Deadline.IsZero() {
			return true
		}
		return a.Deadline.Before(b.Deadline)
	}
	return a.seq < b.seq
}

func (h itemHeap) Swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].index = i
	h.items[j].index = j
}

func (h *itemHeap) Push(x any) {
	it := x.(*Item)
	it.index = len(h.items)
	h.items = append(h.items, it)
}

func (h *itemHeap) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	it.index = -1
	h.items = old[:n-1]
	return it
}
