package queue

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"coordattack/internal/store"
)

// The pending-queue journal is a write-ahead log of admission: one
// checksummed record is appended (and fsynced) per accepted job before
// the 202 leaves the daemon, and a tombstone is appended when the job
// settles. On open, the segments are replayed — accepts minus settles
// is the pending set a restarted daemon re-admits — and compacted into
// a single fresh segment holding only the still-pending accepts, so the
// log never grows across restarts.
//
// Line format, one record per line:
//
//	coordd-queue/v1 <sha256-hex over the JSON> <compact JSON record>\n
//
// The checksum binds each line independently, so replay survives a torn
// tail (a crash mid-append) and even a torn middle (a chaos-injected
// short write that later appends merge into): undecodable lines are
// counted and skipped, checksummed lines are trusted. Segments are
// created crash-safely with the store's own discipline — temp file,
// fsync, rename, directory fsync — through the same store.FS
// abstraction, so internal/chaos injects EIO/ENOSPC/torn-write faults
// into the journal exactly as it does into the result store.
//
// Like the store, the journal degrades instead of failing its caller: a
// write-path error demotes it to memory-only (logged once, visible in
// /healthz), after which accepted jobs simply lose crash durability
// until restart. Admission never fails because the log is sick.

// journalVersion prefixes every record line. Unrecognized versions are
// skipped on replay (counted as lost), never misparsed.
const journalVersion = "coordd-queue/v1"

// Record ops.
const (
	OpAccept = "accept"
	OpSettle = "settle"
	// OpIntent marks a pending job as granted to a thief but not yet
	// committed: the first phase of the two-phase steal handoff. The job
	// stays pending (an intent is an annotated accept, not a tombstone),
	// so a crash on both sides before the thief commits still replays
	// the job here — nothing is stranded.
	OpIntent = "intent"
)

// Record is one journal entry. Accept records carry the canonical spec
// and its scheduling envelope; settle records only the key; intent
// records are the accept record re-stamped with the thief's address.
type Record struct {
	Op       string          `json:"op"`
	Key      string          `json:"key"`
	Flow     string          `json:"flow,omitempty"`
	Class    string          `json:"class,omitempty"`
	Priority int             `json:"priority,omitempty"`
	Spec     json.RawMessage `json:"spec,omitempty"`
	// Thief is the stealing peer's advertise address on intent records.
	Thief string `json:"thief,omitempty"`
	// At is the accept wall-clock in unix nanoseconds, preserved across
	// replay so queue-age metrics survive a restart.
	At int64 `json:"at,omitempty"`
}

// JournalOptions tunes OpenJournal.
type JournalOptions struct {
	// FS overrides the filesystem; nil means the real disk. Chaos
	// harnesses inject faults here.
	FS store.FS
	// Logf receives one line per degradation, truncation, and
	// compaction event; nil discards them.
	Logf func(format string, args ...any)
	// CompactEvery rewrites the log once this many tombstones have
	// accumulated since the last compaction, bounding live growth.
	// 0 means 1024.
	CompactEvery int
}

// JournalStats is a point-in-time snapshot for /metrics and /healthz.
type JournalStats struct {
	Pending     int   `json:"pending"`
	Accepts     int64 `json:"accepts"`
	Settles     int64 `json:"settles"`
	Replayed    int   `json:"replayed"`
	Truncated   int64 `json:"truncated"`
	Compactions int64 `json:"compactions"`
	Degraded    bool  `json:"degraded"`
}

// Journal is the durable pending queue. Safe for concurrent use; every
// append is fsynced before it returns.
type Journal struct {
	dir  string
	fs   store.FS
	logf func(format string, args ...any)

	mu           sync.Mutex
	active       store.File
	seq          uint64 // sequence number of the active segment
	pending      map[string]*Record
	order        []string // pending keys in accept order
	replay       []Record // snapshot of pending taken at open
	settledSince int
	compactEvery int
	degraded     bool

	accepts, settles, truncated, compactions int64
}

// OpenJournal opens (or creates) the journal at dir, replays its
// segments, and compacts them into a fresh one. The pending set
// recovered from disk is available through Pending until consumed.
func OpenJournal(dir string, opts JournalOptions) (*Journal, error) {
	if dir == "" {
		return nil, fmt.Errorf("queue: empty journal directory")
	}
	fs := opts.FS
	if fs == nil {
		fs = store.DiskFS()
	}
	if opts.CompactEvery == 0 {
		opts.CompactEvery = 1024
	}
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("queue: %w", err)
	}
	j := &Journal{
		dir:          dir,
		fs:           fs,
		logf:         opts.Logf,
		pending:      make(map[string]*Record),
		compactEvery: opts.CompactEvery,
	}
	segs, err := j.scan()
	if err != nil {
		return nil, err
	}
	for _, key := range j.order {
		j.replay = append(j.replay, *j.pending[key])
	}
	// Compact-on-open: rewrite the pending set into one fresh segment
	// and drop the old ones. A failure here degrades the journal at
	// birth — replay still works (the reads succeeded), new accepts just
	// are not durable until the disk heals and the daemon restarts.
	j.mu.Lock()
	if err := j.compactLocked(); err == nil {
		for _, s := range segs {
			_ = j.fs.Remove(filepath.Join(dir, s))
		}
	}
	j.mu.Unlock()
	return j, nil
}

// scan replays every segment in order, building the pending set, and
// returns the segment filenames it consumed. Stray temp files from a
// crash mid-compaction are swept.
func (j *Journal) scan() ([]string, error) {
	entries, err := j.fs.ReadDir(j.dir)
	if err != nil {
		return nil, fmt.Errorf("queue: %w", err)
	}
	var segs []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		if strings.HasPrefix(name, "tmp-") {
			_ = j.fs.Remove(filepath.Join(j.dir, name))
			continue
		}
		if seq, ok := segmentSeq(name); ok {
			segs = append(segs, name)
			if seq > j.seq {
				j.seq = seq
			}
		}
	}
	sort.Slice(segs, func(a, b int) bool {
		sa, _ := segmentSeq(segs[a])
		sb, _ := segmentSeq(segs[b])
		return sa < sb
	})
	for _, name := range segs {
		data, err := j.fs.ReadFile(filepath.Join(j.dir, name))
		if err != nil {
			continue
		}
		j.applySegment(name, data)
	}
	return segs, nil
}

// applySegment replays one segment's lines into the pending set.
// Undecodable lines — the torn tail of a crash mid-append, or a chaos-
// injected short write — are counted and skipped; every line that
// checksums is applied.
func (j *Journal) applySegment(name string, data []byte) {
	for len(data) > 0 {
		line := data
		if nl := indexByte(data, '\n'); nl >= 0 {
			line, data = data[:nl], data[nl+1:]
		} else {
			data = nil // trailing partial line
		}
		if len(line) == 0 {
			continue
		}
		rec, err := decodeLine(line)
		if err != nil {
			j.truncated++
			if j.logf != nil {
				j.logf("queue: journal %s: dropped undecodable record: %v", name, err)
			}
			continue
		}
		switch rec.Op {
		case OpAccept, OpIntent:
			// An intent is still pending — only the commit-driven settle
			// tombstone clears it. Replay surfaces the recorded thief so
			// the service can poll it before re-running locally.
			if _, ok := j.pending[rec.Key]; !ok {
				j.order = append(j.order, rec.Key)
			}
			j.pending[rec.Key] = rec
		case OpSettle:
			if _, ok := j.pending[rec.Key]; ok {
				delete(j.pending, rec.Key)
				j.order = removeKey(j.order, rec.Key)
			}
		}
	}
}

func indexByte(b []byte, c byte) int {
	for i, v := range b {
		if v == c {
			return i
		}
	}
	return -1
}

func removeKey(order []string, key string) []string {
	for i, k := range order {
		if k == key {
			return append(order[:i], order[i+1:]...)
		}
	}
	return order
}

// segmentSeq parses "<seq>.wal" names.
func segmentSeq(name string) (uint64, bool) {
	base, ok := strings.CutSuffix(name, ".wal")
	if !ok || len(base) != 8 {
		return 0, false
	}
	n, err := strconv.ParseUint(base, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Pending returns the accept records recovered at open, in admission
// order — what the service re-admits on restart.
func (j *Journal) Pending() []Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Record, len(j.replay))
	copy(out, j.replay)
	return out
}

// Accept appends (and fsyncs) one accept record. A write error demotes
// the journal to memory-only and is returned for logging; callers treat
// it as advisory — admission proceeds, durability is what was lost.
func (j *Journal) Accept(rec Record) error {
	rec.Op = OpAccept
	if rec.At == 0 {
		rec.At = time.Now().UnixNano()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.accepts++
	r := rec
	if _, ok := j.pending[rec.Key]; !ok {
		j.order = append(j.order, rec.Key)
	}
	j.pending[rec.Key] = &r
	return j.appendLocked(&r)
}

// Intent re-stamps key's pending record with the thief's address and
// appends (and fsyncs) it — phase one of the two-phase steal handoff.
// The job stays pending: a replay after a crash re-admits it (annotated
// with the thief), and only the commit-driven Settle clears it. A key
// with no pending accept is a no-op.
func (j *Journal) Intent(key, thief string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec, ok := j.pending[key]
	if !ok {
		return nil
	}
	r := *rec
	r.Op = OpIntent
	r.Thief = thief
	j.pending[key] = &r
	return j.appendLocked(&r)
}

// Settle appends a tombstone for key. Settling a key with no pending
// accept (a replayed duplicate, a never-journaled job) is a no-op.
func (j *Journal) Settle(key string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.pending[key]; !ok {
		return nil
	}
	delete(j.pending, key)
	j.order = removeKey(j.order, key)
	j.settles++
	j.settledSince++
	if err := j.appendLocked(&Record{Op: OpSettle, Key: key}); err != nil {
		return err
	}
	if j.settledSince >= j.compactEvery {
		// Live compaction: the log has accumulated a segment's worth of
		// tombstones; rewrite it down to the pending set so a long-lived
		// daemon's journal stays bounded by its backlog, not its history.
		old := j.activeSegmentPath()
		if err := j.compactLocked(); err == nil && old != "" {
			_ = j.fs.Remove(old)
		}
	}
	return nil
}

func (j *Journal) activeSegmentPath() string {
	if j.active == nil {
		return ""
	}
	return filepath.Join(j.dir, fmt.Sprintf("%08d.wal", j.seq))
}

// appendLocked writes one fsynced record line to the active segment,
// opening the first segment lazily. Any error demotes the journal.
func (j *Journal) appendLocked(rec *Record) error {
	if j.degraded {
		return nil
	}
	if j.active == nil {
		if err := j.compactLocked(); err != nil {
			return err
		}
	}
	line, err := encodeLine(rec)
	if err != nil {
		return j.demoteLocked(err)
	}
	if _, err := j.active.Write(line); err != nil {
		return j.demoteLocked(err)
	}
	if err := j.active.Sync(); err != nil {
		return j.demoteLocked(err)
	}
	return nil
}

// compactLocked writes the current pending set into a fresh segment —
// temp file, fsync, rename, dir fsync — and makes it the active append
// target. The caller removes superseded segments on success.
func (j *Journal) compactLocked() error {
	tmp, err := j.fs.CreateTemp(j.dir, "tmp-*")
	if err != nil {
		return j.demoteLocked(err)
	}
	for _, key := range j.order {
		line, err := encodeLine(j.pending[key])
		if err != nil {
			tmp.Close()
			_ = j.fs.Remove(tmp.Name())
			return j.demoteLocked(err)
		}
		if _, err := tmp.Write(line); err != nil {
			tmp.Close()
			_ = j.fs.Remove(tmp.Name())
			return j.demoteLocked(err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		_ = j.fs.Remove(tmp.Name())
		return j.demoteLocked(err)
	}
	next := j.seq + 1
	dest := filepath.Join(j.dir, fmt.Sprintf("%08d.wal", next))
	if err := j.fs.Rename(tmp.Name(), dest); err != nil {
		tmp.Close()
		_ = j.fs.Remove(tmp.Name())
		return j.demoteLocked(err)
	}
	if err := j.fs.SyncDir(j.dir); err != nil {
		tmp.Close()
		return j.demoteLocked(err)
	}
	// The open handle follows the rename: appends land in the new
	// segment file.
	if j.active != nil {
		j.active.Close()
	}
	j.active = tmp
	j.seq = next
	j.settledSince = 0
	j.compactions++
	return nil
}

// demoteLocked flips the journal to memory-only exactly once.
func (j *Journal) demoteLocked(cause error) error {
	if !j.degraded {
		j.degraded = true
		if j.logf != nil {
			j.logf("queue: journal degraded to memory-only: %v (accepted jobs lose crash durability until restart)", cause)
		}
	}
	return cause
}

// Degraded reports whether a write error demoted the journal.
func (j *Journal) Degraded() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.degraded
}

// Stats snapshots the journal's counters.
func (j *Journal) Stats() JournalStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JournalStats{
		Pending:     len(j.pending),
		Accepts:     j.accepts,
		Settles:     j.settles,
		Replayed:    len(j.replay),
		Truncated:   j.truncated,
		Compactions: j.compactions,
		Degraded:    j.degraded,
	}
}

// Close closes the active segment handle. Records already appended stay
// durable; a closed journal refuses nothing — further appends simply
// demote it (the daemon is exiting anyway).
func (j *Journal) Close() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.active != nil {
		j.active.Close()
		j.active = nil
		j.degraded = true
	}
}

// encodeLine renders one record line with its binding checksum.
func encodeLine(rec *Record) ([]byte, error) {
	body, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(body)
	line := make([]byte, 0, len(journalVersion)+1+64+1+len(body)+1)
	line = append(line, journalVersion...)
	line = append(line, ' ')
	line = append(line, hex.EncodeToString(sum[:])...)
	line = append(line, ' ')
	line = append(line, body...)
	line = append(line, '\n')
	return line, nil
}

// decodeLine parses and verifies one record line.
func decodeLine(line []byte) (*Record, error) {
	rest, ok := strings.CutPrefix(string(line), journalVersion+" ")
	if !ok {
		return nil, fmt.Errorf("bad version prefix")
	}
	sum, body, ok := strings.Cut(rest, " ")
	if !ok || len(sum) != 64 {
		return nil, fmt.Errorf("malformed checksum field")
	}
	got := sha256.Sum256([]byte(body))
	if hex.EncodeToString(got[:]) != sum {
		return nil, fmt.Errorf("checksum mismatch")
	}
	var rec Record
	if err := json.Unmarshal([]byte(body), &rec); err != nil {
		return nil, err
	}
	if rec.Key == "" || (rec.Op != OpAccept && rec.Op != OpSettle && rec.Op != OpIntent) {
		return nil, fmt.Errorf("invalid record op %q", rec.Op)
	}
	return &rec, nil
}
