package queue

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"coordattack/internal/store"
)

// failFS wraps the disk FS with a manual outage switch, a minimal stand-
// in for internal/chaos (which cannot be imported here: chaos → service
// → queue). The full chaos-driven journal fault tests live in
// internal/chaos.
type failFS struct {
	store.FS
	broken atomic.Bool
}

func (f *failFS) err() error {
	if f.broken.Load() {
		return fmt.Errorf("failFS: injected write error")
	}
	return nil
}

func (f *failFS) CreateTemp(dir, pattern string) (store.File, error) {
	if err := f.err(); err != nil {
		return nil, err
	}
	inner, err := f.FS.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &failFile{File: inner, fs: f}, nil
}

func (f *failFS) Rename(oldpath, newpath string) error {
	if err := f.err(); err != nil {
		return err
	}
	return f.FS.Rename(oldpath, newpath)
}

type failFile struct {
	store.File
	fs *failFS
}

func (f *failFile) Write(p []byte) (int, error) {
	if err := f.fs.err(); err != nil {
		return 0, err
	}
	return f.File.Write(p)
}

func (f *failFile) Sync() error {
	if err := f.fs.err(); err != nil {
		return err
	}
	return f.File.Sync()
}

func openJournal(t *testing.T, dir string, opts JournalOptions) *Journal {
	t.Helper()
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	j, err := OpenJournal(dir, opts)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	return j
}

func acceptRec(key string) Record {
	return Record{
		Key:   key,
		Flow:  "interactive",
		Class: string(ClassInteractive),
		Spec:  json.RawMessage(fmt.Sprintf(`{"protocol":"s:0.5","seed":%q}`, key)),
	}
}

func pendingKeys(recs []Record) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.Key
	}
	return out
}

// TestJournalReplayAfterReopen: accepts minus settles is exactly the
// pending set a reopened journal reports, in admission order.
func TestJournalReplayAfterReopen(t *testing.T) {
	dir := t.TempDir()
	j1 := openJournal(t, dir, JournalOptions{})
	for _, k := range []string{"a", "b", "c", "d"} {
		if err := j1.Accept(acceptRec(k)); err != nil {
			t.Fatalf("Accept(%s): %v", k, err)
		}
	}
	if err := j1.Settle("b"); err != nil {
		t.Fatalf("Settle: %v", err)
	}
	j1.Close()

	j2 := openJournal(t, dir, JournalOptions{})
	defer j2.Close()
	got := pendingKeys(j2.Pending())
	want := []string{"a", "c", "d"}
	if len(got) != len(want) {
		t.Fatalf("pending after reopen = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pending order = %v, want %v", got, want)
		}
	}
	st := j2.Stats()
	if st.Replayed != 3 || st.Pending != 3 || st.Degraded {
		t.Fatalf("stats after reopen = %+v", st)
	}
	// The replayed records keep their scheduling envelope.
	if j2.Pending()[0].Flow != "interactive" || len(j2.Pending()[0].Spec) == 0 {
		t.Fatalf("replayed record lost its envelope: %+v", j2.Pending()[0])
	}
}

// TestJournalCompactOnOpen: reopening rewrites the log into one fresh
// segment and removes the old ones and stray temp files.
func TestJournalCompactOnOpen(t *testing.T) {
	dir := t.TempDir()
	j1 := openJournal(t, dir, JournalOptions{})
	for i := 0; i < 5; i++ {
		if err := j1.Accept(acceptRec(fmt.Sprintf("k%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if err := j1.Settle(fmt.Sprintf("k%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	j1.Close()
	// A crash mid-compaction leaves a temp file behind.
	if err := os.WriteFile(filepath.Join(dir, "tmp-123"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}

	j2 := openJournal(t, dir, JournalOptions{})
	j2.Close()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "tmp-") {
			t.Fatalf("stray temp file %s survived open", e.Name())
		}
		segs = append(segs, e.Name())
	}
	if len(segs) != 1 {
		t.Fatalf("segments after compact-on-open = %v, want exactly one", segs)
	}
	// The compacted segment holds only the single pending accept.
	data, err := os.ReadFile(filepath.Join(dir, segs[0]))
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(data), "\n"); n != 1 {
		t.Fatalf("compacted segment has %d lines, want 1:\n%s", n, data)
	}
	if got := pendingKeys(j2.Pending()); len(got) != 1 || got[0] != "k4" {
		t.Fatalf("pending after compaction = %v, want [k4]", got)
	}
}

// TestJournalLiveCompaction: once CompactEvery tombstones accumulate the
// log is rewritten in place, bounded by the backlog.
func TestJournalLiveCompaction(t *testing.T) {
	dir := t.TempDir()
	j := openJournal(t, dir, JournalOptions{CompactEvery: 3})
	defer j.Close()
	for i := 0; i < 8; i++ {
		if err := j.Accept(acceptRec(fmt.Sprintf("k%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		if err := j.Settle(fmt.Sprintf("k%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	st := j.Stats()
	// One compaction at open plus two live ones (after the 3rd and 6th
	// settles).
	if st.Compactions != 3 {
		t.Fatalf("compactions = %d, want 3 (stats %+v)", st.Compactions, st)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("segments after live compaction = %v, want one", names)
	}
	data, err := os.ReadFile(filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(data), "\n"); n != 2 {
		t.Fatalf("live-compacted segment has %d lines, want 2 pending:\n%s", n, data)
	}
}

// TestJournalTornTailRecovery: a crash mid-append leaves a partial final
// line; replay skips it and keeps every intact record.
func TestJournalTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	j1 := openJournal(t, dir, JournalOptions{})
	for _, k := range []string{"a", "b"} {
		if err := j1.Accept(acceptRec(k)); err != nil {
			t.Fatal(err)
		}
	}
	j1.Close()
	// Fabricate the torn tail: append a prefix of a valid record line
	// with no trailing newline, as a crash mid-write would leave.
	seg := onlySegment(t, dir)
	full, err := encodeLine(&Record{Op: OpAccept, Key: "torn", Flow: "interactive"})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(full[:len(full)/2]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2 := openJournal(t, dir, JournalOptions{})
	defer j2.Close()
	got := pendingKeys(j2.Pending())
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("pending after torn tail = %v, want [a b]", got)
	}
	if st := j2.Stats(); st.Truncated != 1 {
		t.Fatalf("truncated = %d, want 1", st.Truncated)
	}
}

// TestJournalSkipsCorruptMiddleLine: a corrupted line mid-segment (bit
// rot, or a torn write merged with a later append) is skipped while the
// lines around it replay.
func TestJournalSkipsCorruptMiddleLine(t *testing.T) {
	dir := t.TempDir()
	j1 := openJournal(t, dir, JournalOptions{})
	for _, k := range []string{"a", "b", "c"} {
		if err := j1.Accept(acceptRec(k)); err != nil {
			t.Fatal(err)
		}
	}
	j1.Close()
	seg := onlySegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	// Flip a byte inside the middle record's JSON body.
	mid := []byte(lines[1])
	mid[len(mid)-10] ^= 0x01
	lines[1] = string(mid)
	if err := os.WriteFile(seg, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}

	j2 := openJournal(t, dir, JournalOptions{})
	defer j2.Close()
	got := pendingKeys(j2.Pending())
	if len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Fatalf("pending around corrupt line = %v, want [a c]", got)
	}
	if st := j2.Stats(); st.Truncated != 1 {
		t.Fatalf("truncated = %d, want 1", st.Truncated)
	}
}

// TestJournalSettleUnknownKeyIsNoop: tombstoning a key with no pending
// accept (replayed duplicate, never-journaled job) does nothing.
func TestJournalSettleUnknownKeyIsNoop(t *testing.T) {
	dir := t.TempDir()
	j := openJournal(t, dir, JournalOptions{})
	defer j.Close()
	if err := j.Settle("ghost"); err != nil {
		t.Fatalf("Settle(ghost) = %v", err)
	}
	if st := j.Stats(); st.Settles != 0 {
		t.Fatalf("settles = %d after no-op settle", st.Settles)
	}
}

// TestJournalDegradesOnWriteError: a failing disk demotes the journal to
// memory-only — accepts still succeed in memory, admission never fails.
func TestJournalDegradesOnWriteError(t *testing.T) {
	dir := t.TempDir()
	ffs := &failFS{FS: store.DiskFS()}
	j := openJournal(t, dir, JournalOptions{FS: ffs})
	defer j.Close()
	if err := j.Accept(acceptRec("before")); err != nil {
		t.Fatalf("accept on healthy disk: %v", err)
	}
	ffs.broken.Store(true)
	if err := j.Accept(acceptRec("during")); err == nil {
		t.Fatal("accept during outage returned nil, want advisory error")
	}
	if !j.Degraded() {
		t.Fatal("journal not degraded after write error")
	}
	// Degraded journals absorb further traffic silently.
	if err := j.Accept(acceptRec("after")); err != nil {
		t.Fatalf("accept while degraded = %v, want nil", err)
	}
	if err := j.Settle("before"); err != nil {
		t.Fatalf("settle while degraded = %v, want nil", err)
	}
	if st := j.Stats(); st.Pending != 2 || !st.Degraded {
		t.Fatalf("stats while degraded = %+v", st)
	}
}

func onlySegment(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("want exactly one segment, have %v", names)
	}
	return filepath.Join(dir, entries[0].Name())
}
