package sim

import (
	"fmt"
	"sync"

	"coordattack/internal/graph"
	"coordattack/internal/protocol"
	"coordattack/internal/rng"
	"coordattack/internal/run"
)

// ConcurrentEngine is the zero-alloc counterpart of ConcurrentOutputs:
// one persistent goroutine per general, advancing the shared
// struct-of-arrays state against the run bitset with a single barrier per
// round. Where ConcurrentOutputs spawns m goroutines, allocates channels,
// and boxes messages for every execution, this engine spawns its workers
// once and runs trials against them until Close.
//
// Race freedom comes from the FastState buffer contract: within a round,
// worker i reads only previous-parity state and writes only its own slot
// of the current parity buffer, so workers never touch the same memory in
// the same round; the barrier orders rounds.
//
// Use Trial/TrialSeeded from a single goroutine. Close releases the
// workers; a ConcurrentEngine is not usable afterwards.
type ConcurrentEngine struct {
	p     protocol.FastProtocol
	n, m  int
	g     *graph.G
	state protocol.FastState
	rs    *run.Set
	bank  *rng.Bank
	page  rng.SeedPage
	outs  []bool

	bar    *barrier // m workers + the driving goroutine
	errs   []error  // per-process step error for the current trial
	stop   bool     // read by workers at the start-of-trial gate
	wg     sync.WaitGroup
	closed bool
}

// NewConcurrentEngine builds the persistent-worker engine for p on g with
// horizon n. The error wraps ErrNoFastPath when the fast path is
// unavailable, exactly like NewEngine.
func NewConcurrentEngine(p protocol.Protocol, g *graph.G, n int) (*ConcurrentEngine, error) {
	fp, ok := p.(protocol.FastProtocol)
	if !ok {
		return nil, fmt.Errorf("%w: %s has no fast state", ErrNoFastPath, p.Name())
	}
	state, err := fp.NewFastState(g, n)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrNoFastPath, p.Name(), err)
	}
	m := g.NumVertices()
	rs, err := run.NewSet(n, m)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNoFastPath, err)
	}
	ce := &ConcurrentEngine{
		p:     fp,
		n:     n,
		m:     m,
		g:     g,
		state: state,
		rs:    rs,
		bank:  rng.NewBank(m),
		outs:  make([]bool, m+1),
		bar:   newBarrier(m + 1),
		errs:  make([]error, m+1),
	}
	for i := 1; i <= m; i++ {
		ce.wg.Add(1)
		go ce.worker(graph.ProcID(i))
	}
	return ce, nil
}

// worker is one general's loop: wait at the start-of-trial gate, then
// step every round, pacing the barrier even after an error so peers never
// deadlock (mirroring ConcurrentOutputs' failure isolation).
func (ce *ConcurrentEngine) worker(id graph.ProcID) {
	defer ce.wg.Done()
	for {
		ce.bar.Await() // start-of-trial gate (or shutdown release)
		if ce.stop {
			return
		}
		failed := false
		for round := 1; round <= ce.n; round++ {
			if !failed {
				if err := ce.safeFastStep(id, round); err != nil {
					ce.errs[id] = err
					failed = true
				}
			}
			ce.bar.Await()
		}
	}
}

func (ce *ConcurrentEngine) safeFastStep(id graph.ProcID, round int) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &MachineError{
				Protocol: ce.p.Name(), Proc: id, Round: round, Phase: "step",
				Panicked: true, Value: v,
			}
		}
	}()
	return ce.state.Step(ce.rs, round, id)
}

// LoadRun loads r as the run every subsequent trial executes.
func (ce *ConcurrentEngine) LoadRun(r *run.Run) error {
	if r.N() != ce.n {
		return fmt.Errorf("sim: engine built for N=%d, run has N=%d", ce.n, r.N())
	}
	if err := r.Validate(ce.g); err != nil {
		return fmt.Errorf("sim: run does not fit graph: %w", err)
	}
	return ce.rs.LoadRun(r, ce.m)
}

// RunSet exposes the engine's bitset; mutate only between trials.
func (ce *ConcurrentEngine) RunSet() *run.Set { return ce.rs }

// Trial executes one trial with the tapes of stream.Tape(trial, ·). The
// returned slice is reused by the next trial.
func (ce *ConcurrentEngine) Trial(stream rng.Stream, trial uint64) ([]bool, error) {
	ce.page.Ensure(stream, trial, ce.m)
	ce.bank.ReseedFrom(&ce.page, trial)
	return ce.TrialSeeded()
}

// TrialSeeded executes one trial with the bank as already seeded.
func (ce *ConcurrentEngine) TrialSeeded() ([]bool, error) {
	if ce.closed {
		return nil, fmt.Errorf("sim: trial on closed ConcurrentEngine")
	}
	if err := ce.state.Init(ce.rs, ce.bank); err != nil {
		return nil, err
	}
	for i := 1; i <= ce.m; i++ {
		ce.errs[i] = nil
	}
	ce.bar.Await() // release workers into round 1
	for round := 1; round <= ce.n; round++ {
		ce.bar.Await() // all workers have finished this round
	}
	for i := 1; i <= ce.m; i++ {
		if ce.errs[i] != nil {
			return nil, ce.errs[i]
		}
	}
	for i := 1; i <= ce.m; i++ {
		ce.outs[i] = ce.state.Output(graph.ProcID(i))
	}
	return ce.outs, nil
}

// Close releases the worker goroutines. Safe to call twice.
func (ce *ConcurrentEngine) Close() {
	if ce.closed {
		return
	}
	ce.closed = true
	ce.stop = true // visible to workers via the barrier's lock
	ce.bar.Await() // release workers from the start-of-trial gate
	ce.wg.Wait()
}
