package sim

import (
	"errors"
	"fmt"

	"coordattack/internal/graph"
	"coordattack/internal/protocol"
)

// ErrMachineFault is the sentinel wrapped by every MachineError, so
// callers can classify execution failures with errors.Is.
var ErrMachineFault = errors.New("sim: machine fault")

// MachineError describes one machine's failure during execution: an
// error returned from Step, an illegal nil message from Send, or a panic
// recovered in any phase. Engines never let a machine panic escape or
// deadlock its peers; they return a MachineError instead.
type MachineError struct {
	// Protocol is the protocol's Name.
	Protocol string
	// Proc is the failing machine.
	Proc graph.ProcID
	// Round is the round of the failure; 0 for the output phase.
	Round int
	// Phase is "send", "step", or "output".
	Phase string
	// Panicked reports whether the failure was a recovered panic; Value
	// then holds the panic value.
	Panicked bool
	Value    any
	// Err is the underlying error for non-panic failures.
	Err error
}

// Error implements error.
func (e *MachineError) Error() string {
	if e.Panicked {
		return fmt.Sprintf("sim: %s machine %d panicked in %s round %d: %v",
			e.Protocol, e.Proc, e.Phase, e.Round, e.Value)
	}
	return fmt.Sprintf("sim: %s machine %d %s round %d: %v",
		e.Protocol, e.Proc, e.Phase, e.Round, e.Err)
}

// Unwrap lets errors.Is(err, ErrMachineFault) classify engine failures,
// and errors.Is/As reach the underlying cause.
func (e *MachineError) Unwrap() []error {
	if e.Err != nil {
		return []error{ErrMachineFault, e.Err}
	}
	return []error{ErrMachineFault}
}

// safeSend calls mach.Send with panic isolation, converting panics and
// illegal nil messages into MachineErrors.
func safeSend(p protocol.Protocol, mach protocol.Machine, proc graph.ProcID, round int, to graph.ProcID) (msg protocol.Message, err error) {
	defer func() {
		if v := recover(); v != nil {
			msg, err = nil, &MachineError{
				Protocol: p.Name(), Proc: proc, Round: round, Phase: "send",
				Panicked: true, Value: v,
			}
		}
	}()
	msg = mach.Send(round, to)
	if msg == nil {
		return nil, &MachineError{
			Protocol: p.Name(), Proc: proc, Round: round, Phase: "send",
			Err: fmt.Errorf("sent nil message to %d", to),
		}
	}
	return msg, nil
}

// safeStep calls mach.Step with panic isolation.
func safeStep(p protocol.Protocol, mach protocol.Machine, proc graph.ProcID, round int, received []protocol.Received) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &MachineError{
				Protocol: p.Name(), Proc: proc, Round: round, Phase: "step",
				Panicked: true, Value: v,
			}
		}
	}()
	if err := mach.Step(round, received); err != nil {
		return &MachineError{
			Protocol: p.Name(), Proc: proc, Round: round, Phase: "step", Err: err,
		}
	}
	return nil
}

// safeOutput calls mach.Output with panic isolation.
func safeOutput(p protocol.Protocol, mach protocol.Machine, proc graph.ProcID) (out bool, err error) {
	defer func() {
		if v := recover(); v != nil {
			out, err = false, &MachineError{
				Protocol: p.Name(), Proc: proc, Phase: "output",
				Panicked: true, Value: v,
			}
		}
	}()
	return mach.Output(), nil
}
