package sim

import (
	"sync"

	"coordattack/internal/graph"
	"coordattack/internal/protocol"
	"coordattack/internal/run"
)

// ConcurrentOutputs executes the protocol with one goroutine per general.
//
// Each ordered adjacent pair (i, j) gets a channel of capacity one. A
// round proceeds in three phases, separated by a cyclic barrier shared by
// all m goroutines:
//
//  1. send:    every process puts σ_i(q^{r-1}, j) on its outgoing channels;
//  2. deliver: every process drains its incoming channels, keeping the
//     messages the run delivers and discarding the rest (the adversary);
//  3. step:    every process applies δ_i to the delivered set.
//
// The drain phase must complete everywhere before the next send phase
// reuses the channels, hence the second barrier. Semantics are identical
// to Outputs; TestEnginesAgree drives both on random (run, α).
//
// Failure isolation: a machine that panics, errors in Step, or sends nil
// is marked failed but its goroutine keeps running the full round
// schedule — sending placeholders, draining its inbox, and pacing the
// barrier — so its peers never deadlock. The first failure (by process
// id) is returned as a MachineError and the outputs are discarded.
func ConcurrentOutputs(p protocol.Protocol, g *graph.G, r *run.Run, tapes Tapes) ([]bool, error) {
	machines, err := newMachines(p, g, r, tapes)
	if err != nil {
		return nil, err
	}
	m := g.NumVertices()

	chans := make(map[[2]graph.ProcID]chan protocol.Message, 2*g.NumEdges())
	for _, e := range g.Edges() {
		chans[[2]graph.ProcID{e.A, e.B}] = make(chan protocol.Message, 1)
		chans[[2]graph.ProcID{e.B, e.A}] = make(chan protocol.Message, 1)
	}

	bar := newBarrier(m)
	outs := make([]bool, m+1)
	errs := make([]error, m+1)
	var wg sync.WaitGroup

	for i := 1; i <= m; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := graph.ProcID(i)
			mach := machines[i]
			neighbors := g.Neighbors(id)
			inbox := make([]protocol.Received, 0, len(neighbors))
			failed := false
			for round := 1; round <= r.N(); round++ {
				// Phase 1: send. A failed machine is silent in the model
				// sense but must still fill its channels so receivers'
				// drains don't block; it sends placeholders, which
				// receivers discard.
				for _, to := range neighbors {
					var msg protocol.Message
					if !failed {
						var err error
						msg, err = safeSend(p, mach, id, round, to)
						if err != nil {
							errs[i] = err
							failed = true
						}
					}
					if failed {
						msg = nilPlaceholder{}
					}
					chans[[2]graph.ProcID{id, to}] <- msg
				}
				bar.Await()
				// Phase 2: drain and filter (adversary applied here). Even
				// a failed machine drains, to keep the channels empty for
				// the next cycle.
				inbox = inbox[:0]
				for _, from := range neighbors {
					msg := <-chans[[2]graph.ProcID{from, id}]
					if r.Delivered(from, id, round) {
						if _, bad := msg.(nilPlaceholder); !bad {
							inbox = append(inbox, protocol.Received{From: from, Msg: msg})
						}
					}
				}
				bar.Await()
				// Phase 3: step. Neighbor lists are sorted, so the inbox
				// already is.
				if !failed {
					if err := safeStep(p, mach, id, round, inbox); err != nil {
						errs[i] = err
						failed = true
					}
				}
			}
			if !failed {
				out, err := safeOutput(p, mach, id)
				if err != nil {
					errs[i] = err
					return
				}
				outs[i] = out
			}
		}(i)
	}
	wg.Wait()

	for i := 1; i <= m; i++ {
		if errs[i] != nil {
			return nil, errs[i]
		}
	}
	return outs, nil
}

// nilPlaceholder stands in for the message of a failed machine so the
// channel plumbing stays balanced while the error propagates.
type nilPlaceholder struct{}

func (nilPlaceholder) CAMessage() {}

// ConcurrentOutcome is ConcurrentOutputs followed by classification.
func ConcurrentOutcome(p protocol.Protocol, g *graph.G, r *run.Run, tapes Tapes) (protocol.Outcome, error) {
	outs, err := ConcurrentOutputs(p, g, r, tapes)
	if err != nil {
		return 0, err
	}
	return protocol.Classify(outs), nil
}
