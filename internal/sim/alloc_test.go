package sim

import (
	"testing"

	"coordattack/internal/baseline"
	"coordattack/internal/core"
	"coordattack/internal/graph"
	"coordattack/internal/protocol"
	"coordattack/internal/rng"
	"coordattack/internal/run"
)

// The allocation-regression suite: the steady-state trial loop of both
// fast engines must allocate nothing, so future PRs cannot silently
// reintroduce per-trial garbage. AllocsPerRun reports the average across
// all goroutines, which covers the concurrent engine's workers too.

func zeroAllocTrialLoop(t *testing.T, name string, trialFn func(trial uint64) error) {
	t.Helper()
	// Warm up: first trials fill the seed page and grow nothing after.
	trial := uint64(0)
	for ; trial < 8; trial++ {
		if err := trialFn(trial); err != nil {
			t.Fatalf("%s warmup: %v", name, err)
		}
	}
	allocs := testing.AllocsPerRun(400, func() {
		if err := trialFn(trial); err != nil {
			t.Fatal(err)
		}
		trial++
	})
	if allocs != 0 {
		t.Errorf("%s: %v allocs per steady-state trial, want 0", name, allocs)
	}
}

func TestEngineTrialZeroAlloc(t *testing.T) {
	const n = 10
	stream := rng.NewStream(1992)
	for pname, p := range map[string]protocol.Protocol{
		"s":           core.MustS(0.1),
		"detfullinfo": baseline.NewDetFullInfo(),
	} {
		for gname, g := range fastTestGraphs(t) {
			eng, err := NewEngine(p, g, n)
			if err != nil {
				t.Fatal(err)
			}
			good, err := run.Good(g, n, g.Vertices()...)
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.LoadRun(good); err != nil {
				t.Fatal(err)
			}
			zeroAllocTrialLoop(t, pname+"/"+gname, func(trial uint64) error {
				_, err := eng.Trial(stream, trial)
				return err
			})
		}
	}
}

func TestConcurrentEngineTrialZeroAlloc(t *testing.T) {
	const n = 10
	g, err := graph.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	stream := rng.NewStream(1992)
	ce, err := NewConcurrentEngine(core.MustS(0.1), g, n)
	if err != nil {
		t.Fatal(err)
	}
	defer ce.Close()
	good, err := run.Good(g, n, g.Vertices()...)
	if err != nil {
		t.Fatal(err)
	}
	if err := ce.LoadRun(good); err != nil {
		t.Fatal(err)
	}
	zeroAllocTrialLoop(t, "concurrent/s/complete4", func(trial uint64) error {
		_, err := ce.Trial(stream, trial)
		return err
	})
}

// TestEngineResampledRunZeroAlloc covers the Monte-Carlo shape: a fresh
// random run is written into the engine's bitset every trial (via the
// pooled Set, no *run.Run materialized) before executing.
func TestEngineResampledRunZeroAlloc(t *testing.T) {
	const n = 10
	g, err := graph.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	stream := rng.NewStream(3)
	runStream := rng.NewStream(4)
	eng, err := NewEngine(core.MustS(0.1), g, n)
	if err != nil {
		t.Fatal(err)
	}
	sampler := rng.NewTape(0)
	edges := g.Edges()
	var runPage rng.SeedPage
	zeroAllocTrialLoop(t, "resampled/s/complete4", func(trial uint64) error {
		runPage.Ensure(runStream, trial, 0)
		sampler.Reseed(runPage.Seed(trial, 0))
		rs := eng.RunSet()
		if err := rs.Reset(n, 4); err != nil {
			return err
		}
		for _, e := range edges {
			for round := 1; round <= n; round++ {
				keepAB, err := sampler.Bit()
				if err != nil {
					return err
				}
				if keepAB == 1 {
					if err := rs.Deliver(e.A, e.B, round); err != nil {
						return err
					}
				}
				keepBA, err := sampler.Bit()
				if err != nil {
					return err
				}
				if keepBA == 1 {
					if err := rs.Deliver(e.B, e.A, round); err != nil {
						return err
					}
				}
			}
		}
		if err := rs.AddInput(1); err != nil {
			return err
		}
		_, err := eng.Trial(stream, trial)
		return err
	})
}
