package sim

import (
	"errors"
	"fmt"
	"sync"

	"coordattack/internal/graph"
	"coordattack/internal/protocol"
	"coordattack/internal/rng"
	"coordattack/internal/run"
)

// ErrNoFastPath is wrapped by NewEngine and NewConcurrentEngine when the
// protocol or shape cannot use the zero-alloc path; callers classify with
// errors.Is and fall back to the reference engines.
var ErrNoFastPath = errors.New("sim: no fast path")

// Engine is the zero-alloc sequential trial engine. It owns every piece
// of per-trial scratch — the run bitset, the tape bank, the seed page,
// the protocol's struct-of-arrays state, and the output vector — so the
// steady-state loop
//
//	engine.LoadRun(r)            // or write engine.RunSet() directly
//	for trial := ...; { outs, _ := engine.Trial(stream, trial) }
//
// allocates nothing after warmup. Semantics are bit-identical to
// Outputs(p, g, r, StreamTapes(stream, trial)): same tape seeds, same
// transition order, same outputs; the differential suite enforces it.
//
// An Engine is not safe for concurrent use; Monte-Carlo workers each own
// one (see EnginePool). The slice returned by Trial is owned by the
// engine and overwritten by the next trial.
type Engine struct {
	p     protocol.FastProtocol
	g     *graph.G
	n, m  int
	state protocol.FastState
	rs    *run.Set
	bank  *rng.Bank
	page  rng.SeedPage
	outs  []bool
}

// NewEngine builds a fast engine for p on g with horizon n. The error
// wraps ErrNoFastPath when p offers no fast state or rejects the shape.
func NewEngine(p protocol.Protocol, g *graph.G, n int) (*Engine, error) {
	fp, ok := p.(protocol.FastProtocol)
	if !ok {
		return nil, fmt.Errorf("%w: %s has no fast state", ErrNoFastPath, p.Name())
	}
	state, err := fp.NewFastState(g, n)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrNoFastPath, p.Name(), err)
	}
	m := g.NumVertices()
	rs, err := run.NewSet(n, m)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNoFastPath, err)
	}
	return &Engine{
		p:     fp,
		g:     g,
		n:     n,
		m:     m,
		state: state,
		rs:    rs,
		bank:  rng.NewBank(m),
		outs:  make([]bool, m+1),
	}, nil
}

// Graph reports the engine's graph.
func (e *Engine) Graph() *graph.G { return e.g }

// N reports the engine's horizon.
func (e *Engine) N() int { return e.n }

// LoadRun loads r as the run every subsequent trial executes, validating
// it against the engine's graph exactly as the reference engine does.
func (e *Engine) LoadRun(r *run.Run) error {
	if r.N() != e.n {
		return fmt.Errorf("sim: engine built for N=%d, run has N=%d", e.n, r.N())
	}
	if err := r.Validate(e.g); err != nil {
		return fmt.Errorf("sim: run does not fit graph: %w", err)
	}
	return e.rs.LoadRun(r, e.m)
}

// RunSet exposes the engine's bitset so per-trial samplers can write the
// run in place instead of materializing a *run.Run. The caller must only
// mutate it between trials and keep it within the engine's graph.
func (e *Engine) RunSet() *run.Set { return e.rs }

// Trial executes one trial of the loaded run with the tapes of
// stream.Tape(trial, ·), reseeding the engine's bank from its seed page.
// The returned slice (index 1..m) is reused by the next trial.
func (e *Engine) Trial(stream rng.Stream, trial uint64) ([]bool, error) {
	e.page.Ensure(stream, trial, e.m)
	e.bank.ReseedFrom(&e.page, trial)
	return e.TrialSeeded()
}

// TrialSeeded executes one trial with the bank as already seeded — the
// entry point for callers that manage reseeding themselves.
func (e *Engine) TrialSeeded() (outs []bool, err error) {
	defer func() {
		if v := recover(); v != nil {
			outs, err = nil, &MachineError{
				Protocol: e.p.Name(), Phase: "fast-trial", Panicked: true, Value: v,
			}
		}
	}()
	if err := e.state.Init(e.rs, e.bank); err != nil {
		return nil, err
	}
	for round := 1; round <= e.n; round++ {
		for i := 1; i <= e.m; i++ {
			if err := e.state.Step(e.rs, round, graph.ProcID(i)); err != nil {
				return nil, err
			}
		}
	}
	for i := 1; i <= e.m; i++ {
		e.outs[i] = e.state.Output(graph.ProcID(i))
	}
	return e.outs, nil
}

// EnginePool recycles Engines for one (protocol, graph, horizon) shape
// across Monte-Carlo worker ranges via sync.Pool: warm engines keep their
// bitsets, banks, and pages, so a worker picking one up runs zero-alloc
// from its first trial.
type EnginePool struct {
	pool sync.Pool
}

// NewEnginePool validates the shape by building one engine eagerly (so
// callers learn about ErrNoFastPath up front) and seeds the pool with it.
func NewEnginePool(p protocol.Protocol, g *graph.G, n int) (*EnginePool, error) {
	first, err := NewEngine(p, g, n)
	if err != nil {
		return nil, err
	}
	ep := &EnginePool{pool: sync.Pool{New: func() any {
		e, err := NewEngine(p, g, n)
		if err != nil {
			// NewEngine is deterministic in (p, g, n); it cannot fail here
			// after succeeding above.
			panic(err)
		}
		return e
	}}}
	ep.pool.Put(first)
	return ep, nil
}

// Get returns a warm engine. Pair with Put.
func (ep *EnginePool) Get() *Engine { return ep.pool.Get().(*Engine) }

// Put returns an engine to the pool.
func (ep *EnginePool) Put(e *Engine) { ep.pool.Put(e) }
