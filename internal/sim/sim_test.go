package sim

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"coordattack/internal/graph"
	"coordattack/internal/protocol"
	"coordattack/internal/rng"
	"coordattack/internal/run"
)

// echoMsg carries its origin so tests can audit the delivery plumbing.
type echoMsg struct {
	From  graph.ProcID
	Round int
}

func (echoMsg) CAMessage() {}

// echoProto records exactly which (sender, round) pairs each machine
// receives. Output = "received anything at all".
type echoProto struct{}

func (echoProto) Name() string { return "echo" }

func (echoProto) NewMachine(cfg protocol.Config) (protocol.Machine, error) {
	return &echoMachine{id: cfg.ID}, nil
}

type echoMachine struct {
	id   graph.ProcID
	got  []echoMsg
	last []protocol.Received
}

func (e *echoMachine) Send(round int, to graph.ProcID) protocol.Message {
	return echoMsg{From: e.id, Round: round}
}

func (e *echoMachine) Step(round int, received []protocol.Received) error {
	e.last = received
	for _, r := range received {
		e.got = append(e.got, r.Msg.(echoMsg))
	}
	return nil
}

func (e *echoMachine) Output() bool { return len(e.got) > 0 }

// parityProto is a tiny randomized protocol used for engine-equivalence
// tests: each machine draws one random bit, floods it, and outputs the
// parity of every bit it has seen (its own plus every received copy).
type parityProto struct{}

func (parityProto) Name() string { return "parity" }

type parityMsg struct{ Bit byte }

func (parityMsg) CAMessage() {}

type parityMachine struct {
	bit byte
	acc byte
}

func (parityProto) NewMachine(cfg protocol.Config) (protocol.Machine, error) {
	b, err := cfg.Tape.Bit()
	if err != nil {
		return nil, err
	}
	m := &parityMachine{bit: b, acc: b}
	if cfg.Input {
		m.acc ^= 1
	}
	return m, nil
}

func (p *parityMachine) Send(round int, to graph.ProcID) protocol.Message {
	return parityMsg{Bit: p.bit}
}

func (p *parityMachine) Step(round int, received []protocol.Received) error {
	for _, r := range received {
		p.acc ^= r.Msg.(parityMsg).Bit
	}
	return nil
}

func (p *parityMachine) Output() bool { return p.acc == 1 }

// nilProto violates the model by sending a nil message.
type nilProto struct{}

func (nilProto) Name() string { return "nil" }

func (nilProto) NewMachine(cfg protocol.Config) (protocol.Machine, error) {
	return nilMachine{}, nil
}

type nilMachine struct{}

func (nilMachine) Send(int, graph.ProcID) protocol.Message { return nil }
func (nilMachine) Step(int, []protocol.Received) error     { return nil }
func (nilMachine) Output() bool                            { return false }

func TestOutputsDeliveryFiltering(t *testing.T) {
	g := graph.MustNew(3, []graph.Edge{{A: 1, B: 2}, {A: 2, B: 3}})
	r := run.MustNew(2)
	r.MustDeliver(1, 2, 1).MustDeliver(3, 2, 2)
	outs, err := Outputs(echoProto{}, g, r, SeedTapes(1))
	if err != nil {
		t.Fatal(err)
	}
	// Only process 2 received anything.
	if outs[1] || !outs[2] || outs[3] {
		t.Errorf("outputs = %v, want only process 2 true", outs)
	}
}

func TestExecuteTraceContents(t *testing.T) {
	g := graph.Pair()
	r := run.MustNew(2)
	r.AddInput(1)
	r.MustDeliver(1, 2, 1) // round 1: 1→2 delivered, 2→1 lost
	exec, err := Execute(echoProto{}, g, r, SeedTapes(2))
	if err != nil {
		t.Fatal(err)
	}
	if exec.N != 2 || len(exec.Locals) != 3 {
		t.Fatalf("trace shape wrong: N=%d locals=%d", exec.N, len(exec.Locals))
	}
	if !exec.Locals[1].Input || exec.Locals[2].Input {
		t.Error("inputs recorded wrongly")
	}
	r1 := exec.Locals[1].Rounds[0]
	if len(r1.Sent) != 1 || r1.Sent[0].To != 2 || !r1.Sent[0].Delivered {
		t.Errorf("process 1 round 1 sends = %+v", r1.Sent)
	}
	if len(r1.Received) != 0 {
		t.Errorf("process 1 round 1 received %v, want none (2→1 lost)", r1.Received)
	}
	r2 := exec.Locals[2].Rounds[0]
	if len(r2.Received) != 1 || r2.Received[0].From != 1 {
		t.Errorf("process 2 round 1 received %v, want from 1", r2.Received)
	}
	if len(r2.Sent) != 1 || r2.Sent[0].Delivered {
		t.Errorf("process 2 round 1 sends = %+v, want undelivered", r2.Sent)
	}
	if got, want := exec.Outcome(), protocol.PartialAttack; got != want {
		t.Errorf("echo outcome = %v, want %v (only 2 received)", got, want)
	}
}

func TestReceivedSortedBySender(t *testing.T) {
	g, err := graph.Star(4) // center 1
	if err != nil {
		t.Fatal(err)
	}
	r := run.MustNew(1)
	r.MustDeliver(4, 1, 1).MustDeliver(2, 1, 1).MustDeliver(3, 1, 1)
	exec, err := Execute(echoProto{}, g, r, SeedTapes(3))
	if err != nil {
		t.Fatal(err)
	}
	got := exec.Locals[1].Rounds[0].Received
	if len(got) != 3 {
		t.Fatalf("center received %d messages, want 3", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].From >= got[i].From {
			t.Errorf("inbox not sorted by sender: %v", got)
		}
	}
}

func TestNilMessageRejected(t *testing.T) {
	g := graph.Pair()
	r := run.MustNew(1)
	if _, err := Outputs(nilProto{}, g, r, SeedTapes(4)); err == nil {
		t.Error("loop engine accepted nil message")
	}
	if _, err := Execute(nilProto{}, g, r, SeedTapes(4)); err == nil {
		t.Error("trace engine accepted nil message")
	}
	if _, err := ConcurrentOutputs(nilProto{}, g, r, SeedTapes(4)); err == nil {
		t.Error("concurrent engine accepted nil message")
	}
}

func TestRunGraphMismatchRejected(t *testing.T) {
	g := graph.Pair()
	r := run.MustNew(1)
	r.MustDeliver(1, 2, 1)
	bad := graph.MustNew(2, nil) // no edges: delivery 1→2 is a non-edge
	if _, err := Outputs(echoProto{}, bad, r, SeedTapes(5)); err == nil {
		t.Error("run with non-edge delivery accepted")
	}
	_ = g
}

func TestTapeExhaustionSurfaces(t *testing.T) {
	g := graph.Pair()
	r := run.MustNew(1)
	tapes := func(i graph.ProcID) *rng.Tape {
		bounded, err := rng.NewBoundedTape(uint64(i), 0+1) // 1 bit budget... parity needs exactly 1
		if err != nil {
			t.Fatal(err)
		}
		return bounded
	}
	// parityProto draws exactly one bit per machine: should succeed.
	if _, err := Outputs(parityProto{}, g, r, tapes); err != nil {
		t.Fatalf("1-bit budget should suffice for parity: %v", err)
	}
}

func TestOutcomeClassification(t *testing.T) {
	g := graph.Pair()
	// No deliveries: echo outputs false everywhere → NA.
	r := run.MustNew(1)
	oc, err := Outcome(echoProto{}, g, r, SeedTapes(6))
	if err != nil {
		t.Fatal(err)
	}
	if oc != protocol.NoAttack {
		t.Errorf("outcome = %v, want NA", oc)
	}
	// All deliveries: both received → TA.
	good, err := run.Good(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	oc, err = Outcome(echoProto{}, g, good, SeedTapes(6))
	if err != nil {
		t.Fatal(err)
	}
	if oc != protocol.TotalAttack {
		t.Errorf("outcome = %v, want TA", oc)
	}
}

func TestEnginesAgreeOnRandomRuns(t *testing.T) {
	graphs := []*graph.G{graph.Pair()}
	if g, err := graph.Ring(4); err == nil {
		graphs = append(graphs, g)
	}
	if g, err := graph.Complete(5); err == nil {
		graphs = append(graphs, g)
	}
	for _, g := range graphs {
		tape := rng.NewTape(uint64(g.NumVertices()))
		for trial := 0; trial < 30; trial++ {
			r, err := run.RandomSubset(g, 4, tape)
			if err != nil {
				t.Fatal(err)
			}
			seed := uint64(trial)
			loop, err := Outputs(parityProto{}, g, r, SeedTapes(seed))
			if err != nil {
				t.Fatal(err)
			}
			conc, err := ConcurrentOutputs(parityProto{}, g, r, SeedTapes(seed))
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i <= g.NumVertices(); i++ {
				if loop[i] != conc[i] {
					t.Fatalf("%v trial %d: engines disagree at %d: loop=%v conc=%v (run %v)",
						g, trial, i, loop, conc, r)
				}
			}
		}
	}
}

func TestConcurrentOutcome(t *testing.T) {
	g := graph.Pair()
	good, err := run.Good(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	oc, err := ConcurrentOutcome(echoProto{}, g, good, SeedTapes(7))
	if err != nil {
		t.Fatal(err)
	}
	if oc != protocol.TotalAttack {
		t.Errorf("outcome = %v, want TA", oc)
	}
}

func TestExecuteDeterministic(t *testing.T) {
	g, err := graph.Ring(5)
	if err != nil {
		t.Fatal(err)
	}
	r, err := run.RandomSubset(g, 3, rng.NewTape(8))
	if err != nil {
		t.Fatal(err)
	}
	a, err := Outputs(parityProto{}, g, r, SeedTapes(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Outputs(parityProto{}, g, r, SeedTapes(9))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed executions differ: %v vs %v", a, b)
		}
	}
}

func TestSendSeesPreRoundState(t *testing.T) {
	// The model sends all round-r messages from q^{r-1}: a machine's Step
	// in round r must not influence its own sends in round r. stateProto
	// sends its step counter; receivers check they always see the
	// sender's previous-round counter.
	g := graph.Pair()
	good, err := run.Good(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := Execute(&counterProto{t: t}, g, good, SeedTapes(10))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		for round := 1; round <= 3; round++ {
			rec := exec.Locals[i].Rounds[round-1].Received
			for _, m := range rec {
				if got := m.Msg.(counterMsg).Steps; got != round-1 {
					t.Errorf("round %d: process %d saw counter %d, want %d", round, i, got, round-1)
				}
			}
		}
	}
}

type counterProto struct{ t *testing.T }

func (*counterProto) Name() string { return "counter" }

type counterMsg struct{ Steps int }

func (counterMsg) CAMessage() {}

type counterMachine struct{ steps int }

func (*counterProto) NewMachine(cfg protocol.Config) (protocol.Machine, error) {
	return &counterMachine{}, nil
}

func (c *counterMachine) Send(round int, to graph.ProcID) protocol.Message {
	return counterMsg{Steps: c.steps}
}

func (c *counterMachine) Step(round int, received []protocol.Received) error {
	c.steps++
	return nil
}

func (c *counterMachine) Output() bool { return false }

func TestBarrierStress(t *testing.T) {
	const parties, cycles = 8, 200
	bar := newBarrier(parties)
	var phase atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < parties; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := 0; c < cycles; c++ {
				bar.Await()
				if got := phase.Load(); got != int64(c) {
					t.Errorf("party saw phase %d during cycle %d", got, c)
					return
				}
				bar.Await()
				if p0 := phase.CompareAndSwap(int64(c), int64(c+1)); p0 {
					// exactly one party advances the phase per cycle
					_ = p0
				}
				bar.Await()
			}
		}()
	}
	wg.Wait()
	if got := phase.Load(); got != cycles {
		t.Errorf("completed %d phases, want %d", got, cycles)
	}
}

func TestConfigValidate(t *testing.T) {
	g := graph.Pair()
	tape := rng.NewTape(1)
	tests := []struct {
		name string
		cfg  protocol.Config
		ok   bool
	}{
		{"valid", protocol.Config{ID: 1, G: g, N: 3, Input: true, Tape: tape}, true},
		{"nil graph", protocol.Config{ID: 1, N: 3, Tape: tape}, false},
		{"bad id", protocol.Config{ID: 9, G: g, N: 3, Tape: tape}, false},
		{"zero id", protocol.Config{ID: 0, G: g, N: 3, Tape: tape}, false},
		{"bad n", protocol.Config{ID: 1, G: g, N: 0, Tape: tape}, false},
		{"nil tape", protocol.Config{ID: 1, G: g, N: 3}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if (err == nil) != tc.ok {
				t.Errorf("Validate() err = %v, ok=%v", err, tc.ok)
			}
		})
	}
}

func TestClassify(t *testing.T) {
	tests := []struct {
		outs []bool
		want protocol.Outcome
	}{
		{[]bool{false, false, false}, protocol.NoAttack},
		{[]bool{false, true, true}, protocol.TotalAttack},
		{[]bool{false, true, false}, protocol.PartialAttack},
		{[]bool{false, false, true, true}, protocol.PartialAttack},
	}
	for _, tc := range tests {
		if got := protocol.Classify(tc.outs); got != tc.want {
			t.Errorf("Classify(%v) = %v, want %v", tc.outs, got, tc.want)
		}
	}
	for _, o := range []protocol.Outcome{protocol.NoAttack, protocol.TotalAttack, protocol.PartialAttack} {
		if s := o.String(); s == "" || strings.HasPrefix(s, "Outcome(") {
			t.Errorf("String for %d = %q", int(o), s)
		}
	}
	if s := protocol.Outcome(99).String(); !strings.HasPrefix(s, "Outcome(") {
		t.Errorf("unknown outcome String = %q", s)
	}
}

func TestQuickEnginesAgree(t *testing.T) {
	g, err := graph.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	f := func(runSeed, tapeSeed uint64) bool {
		r, err := run.RandomSubset(g, 3, rng.NewTape(runSeed))
		if err != nil {
			return false
		}
		loop, err := Outputs(parityProto{}, g, r, SeedTapes(tapeSeed))
		if err != nil {
			return false
		}
		conc, err := ConcurrentOutputs(parityProto{}, g, r, SeedTapes(tapeSeed))
		if err != nil {
			return false
		}
		for i := range loop {
			if loop[i] != conc[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
