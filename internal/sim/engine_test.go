package sim

import (
	"errors"
	"testing"

	"coordattack/internal/baseline"
	"coordattack/internal/core"
	"coordattack/internal/graph"
	"coordattack/internal/protocol"
	"coordattack/internal/rng"
	"coordattack/internal/run"
)

func fastTestGraphs(t *testing.T) map[string]*graph.G {
	t.Helper()
	complete4, err := graph.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	ring6, err := graph.Ring(6)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*graph.G{"pair": graph.Pair(), "complete4": complete4, "ring6": ring6}
}

func fastTestProtocols(t *testing.T) map[string]protocol.Protocol {
	t.Helper()
	slack, err := core.NewSWithSlack(0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	alt, err := core.NewSAltValidity(0.2)
	if err != nil {
		t.Fatal(err)
	}
	thresh, err := baseline.NewDetThreshold(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]protocol.Protocol{
		"s":            core.MustS(0.1),
		"s-slack":      slack,
		"s-alt":        alt,
		"detfullinfo":  baseline.NewDetFullInfo(),
		"detthreshold": thresh,
	}
}

// TestFastEnginesMatchReference is the sim-level differential suite: on
// random runs, the zero-alloc sequential and concurrent engines must
// reproduce the reference engine's outputs bit for bit, for every fast
// protocol on every test graph, with the identical (stream, trial) tape
// labels.
func TestFastEnginesMatchReference(t *testing.T) {
	const n = 6
	stream := rng.NewStream(2024)
	runStream := rng.NewStream(5150)
	for gname, g := range fastTestGraphs(t) {
		for pname, p := range fastTestProtocols(t) {
			eng, err := NewEngine(p, g, n)
			if err != nil {
				t.Fatalf("%s/%s: NewEngine: %v", gname, pname, err)
			}
			ceng, err := NewConcurrentEngine(p, g, n)
			if err != nil {
				t.Fatalf("%s/%s: NewConcurrentEngine: %v", gname, pname, err)
			}
			for trial := uint64(0); trial < 30; trial++ {
				r, err := run.RandomSubset(g, n, runStream.Tape(trial, 0))
				if err != nil {
					t.Fatal(err)
				}
				want, err := Outputs(p, g, r, StreamTapes(stream, trial))
				if err != nil {
					t.Fatalf("%s/%s trial %d: reference: %v", gname, pname, trial, err)
				}
				if err := eng.LoadRun(r); err != nil {
					t.Fatal(err)
				}
				got, err := eng.Trial(stream, trial)
				if err != nil {
					t.Fatalf("%s/%s trial %d: fast: %v", gname, pname, trial, err)
				}
				for i := 1; i <= g.NumVertices(); i++ {
					if got[i] != want[i] {
						t.Fatalf("%s/%s trial %d: fast output[%d] = %v, reference %v\nrun %v",
							gname, pname, trial, i, got[i], want[i], r)
					}
				}
				if err := ceng.LoadRun(r); err != nil {
					t.Fatal(err)
				}
				cgot, err := ceng.Trial(stream, trial)
				if err != nil {
					t.Fatalf("%s/%s trial %d: concurrent fast: %v", gname, pname, trial, err)
				}
				for i := 1; i <= g.NumVertices(); i++ {
					if cgot[i] != want[i] {
						t.Fatalf("%s/%s trial %d: concurrent fast output[%d] = %v, reference %v",
							gname, pname, trial, i, cgot[i], want[i])
					}
				}
			}
			ceng.Close()
		}
	}
}

// TestFastEngineMatchesConcurrentReference closes the square: the
// channel-based concurrent reference agrees with the fast path too.
func TestFastEngineMatchesConcurrentReference(t *testing.T) {
	g, err := graph.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	p := core.MustS(0.25)
	const n = 5
	stream := rng.NewStream(9)
	runStream := rng.NewStream(10)
	eng, err := NewEngine(p, g, n)
	if err != nil {
		t.Fatal(err)
	}
	for trial := uint64(0); trial < 20; trial++ {
		r, err := run.RandomSubset(g, n, runStream.Tape(trial, 0))
		if err != nil {
			t.Fatal(err)
		}
		want, err := ConcurrentOutputs(p, g, r, StreamTapes(stream, trial))
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.LoadRun(r); err != nil {
			t.Fatal(err)
		}
		got, err := eng.Trial(stream, trial)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= 4; i++ {
			if got[i] != want[i] {
				t.Fatalf("trial %d: fast output[%d] = %v, concurrent reference %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestNewEngineFallbackClassification(t *testing.T) {
	g := graph.Pair()
	// Protocol A has no fast state: the error must classify as no-fast-path.
	a := baseline.NewA()
	if _, err := NewEngine(a, g, 10); !errors.Is(err, ErrNoFastPath) {
		t.Fatalf("NewEngine(A) = %v, want ErrNoFastPath", err)
	}
	if _, err := NewConcurrentEngine(a, g, 10); !errors.Is(err, ErrNoFastPath) {
		t.Fatalf("NewConcurrentEngine(A) = %v, want ErrNoFastPath", err)
	}
	// Shapes Protocol S rejects surface the same way.
	big, err := graph.Complete(65)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(core.MustS(0.5), big, 3); !errors.Is(err, ErrNoFastPath) {
		t.Fatalf("NewEngine(S, m=65) = %v, want ErrNoFastPath", err)
	}
}

func TestEngineRejectsMismatchedRuns(t *testing.T) {
	g := graph.Pair()
	eng, err := NewEngine(core.MustS(0.5), g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.LoadRun(run.MustNew(3)); err == nil {
		t.Fatal("LoadRun accepted a run with the wrong N")
	}
	bad := run.MustNew(4).MustDeliver(1, 3, 1) // process 3 not in Pair
	if err := eng.LoadRun(bad); err == nil {
		t.Fatal("LoadRun accepted a run off the graph")
	}
}

func TestEnginePool(t *testing.T) {
	g := graph.Pair()
	pool, err := NewEnginePool(core.MustS(0.5), g, 4)
	if err != nil {
		t.Fatal(err)
	}
	e1 := pool.Get()
	good, err := run.Good(g, 4, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := e1.LoadRun(good); err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Trial(rng.NewStream(1), 0); err != nil {
		t.Fatal(err)
	}
	pool.Put(e1)
	e2 := pool.Get()
	if err := e2.LoadRun(good); err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Trial(rng.NewStream(1), 1); err != nil {
		t.Fatal(err)
	}
	pool.Put(e2)
	if _, err := NewEnginePool(baseline.NewA(), g, 4); !errors.Is(err, ErrNoFastPath) {
		t.Fatalf("pool for a fast-less protocol = %v, want ErrNoFastPath", err)
	}
}

func TestConcurrentEngineCloseIdempotent(t *testing.T) {
	ce, err := NewConcurrentEngine(core.MustS(0.5), graph.Pair(), 3)
	if err != nil {
		t.Fatal(err)
	}
	ce.Close()
	ce.Close()
	if _, err := ce.TrialSeeded(); err == nil {
		t.Fatal("trial on a closed engine must fail")
	}
}
