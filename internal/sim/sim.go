// Package sim executes protocols over runs.
//
// It provides two engines with identical semantics: a fast sequential
// loop engine (the reference), and a concurrent engine with one goroutine
// per general exchanging messages over channels with a barrier per round —
// the natural Go rendering of the synchronous model. Property tests drive
// both with identical (run, α) and require identical executions.
//
// Per §2 of the paper: in every round 1..N every process sends a message
// to every neighbor (σ_i), the run decides which are delivered, and every
// process then steps its state machine (δ_i) on the delivered set S_i^r.
package sim

import (
	"fmt"
	"sort"

	"coordattack/internal/graph"
	"coordattack/internal/protocol"
	"coordattack/internal/rng"
	"coordattack/internal/run"
)

// Tapes supplies the private random tape α_i for each process. Use
// StreamTapes for the common case.
type Tapes func(graph.ProcID) *rng.Tape

// StreamTapes adapts an rng.Stream trial to a Tapes function.
func StreamTapes(s rng.Stream, trial uint64) Tapes {
	return func(i graph.ProcID) *rng.Tape { return s.Tape(trial, uint64(i)) }
}

// SeedTapes derives per-process tapes from a single seed; convenient for
// one-off executions.
func SeedTapes(seed uint64) Tapes {
	s := rng.NewStream(seed)
	return StreamTapes(s, 0)
}

func newMachines(p protocol.Protocol, g *graph.G, r *run.Run, tapes Tapes) ([]protocol.Machine, error) {
	if err := r.Validate(g); err != nil {
		return nil, fmt.Errorf("sim: run does not fit graph: %w", err)
	}
	m := g.NumVertices()
	machines := make([]protocol.Machine, m+1)
	for i := 1; i <= m; i++ {
		id := graph.ProcID(i)
		cfg := protocol.Config{
			ID:    id,
			G:     g,
			N:     r.N(),
			Input: r.HasInput(id),
			Tape:  tapes(id),
		}
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		mach, err := p.NewMachine(cfg)
		if err != nil {
			return nil, fmt.Errorf("sim: creating machine %d for %s: %w", i, p.Name(), err)
		}
		machines[i] = mach
	}
	return machines, nil
}

// Outputs runs the loop engine and returns only the decision vector
// (index 1..m; index 0 unused). This is the fast path used by Monte-Carlo
// estimation; it records no trace.
func Outputs(p protocol.Protocol, g *graph.G, r *run.Run, tapes Tapes) ([]bool, error) {
	machines, err := newMachines(p, g, r, tapes)
	if err != nil {
		return nil, err
	}
	m := g.NumVertices()
	inboxes := make([][]protocol.Received, m+1)
	for round := 1; round <= r.N(); round++ {
		for i := 1; i <= m; i++ {
			inboxes[i] = inboxes[i][:0]
		}
		for i := 1; i <= m; i++ {
			from := graph.ProcID(i)
			for _, to := range g.Neighbors(from) {
				msg, err := safeSend(p, machines[i], from, round, to)
				if err != nil {
					return nil, err
				}
				if r.Delivered(from, to, round) {
					inboxes[to] = append(inboxes[to], protocol.Received{From: from, Msg: msg})
				}
			}
		}
		for i := 1; i <= m; i++ {
			sortReceived(inboxes[i])
			if err := safeStep(p, machines[i], graph.ProcID(i), round, inboxes[i]); err != nil {
				return nil, err
			}
		}
	}
	outs := make([]bool, m+1)
	for i := 1; i <= m; i++ {
		out, err := safeOutput(p, machines[i], graph.ProcID(i))
		if err != nil {
			return nil, err
		}
		outs[i] = out
	}
	return outs, nil
}

// Outcome runs the loop engine and classifies the result.
func Outcome(p protocol.Protocol, g *graph.G, r *run.Run, tapes Tapes) (protocol.Outcome, error) {
	outs, err := Outputs(p, g, r, tapes)
	if err != nil {
		return 0, err
	}
	return protocol.Classify(outs), nil
}

// Execute runs the loop engine recording a full execution trace: per
// process and round, every sent message with its delivery fate and every
// received message — the paper's (E_i) vector.
func Execute(p protocol.Protocol, g *graph.G, r *run.Run, tapes Tapes) (*protocol.Execution, error) {
	machines, err := newMachines(p, g, r, tapes)
	if err != nil {
		return nil, err
	}
	m := g.NumVertices()
	exec := &protocol.Execution{N: r.N(), Locals: make([]protocol.LocalExecution, m+1)}
	for i := 1; i <= m; i++ {
		exec.Locals[i] = protocol.LocalExecution{
			ID:     graph.ProcID(i),
			Input:  r.HasInput(graph.ProcID(i)),
			Rounds: make([]protocol.RoundRecord, r.N()),
		}
	}
	inboxes := make([][]protocol.Received, m+1)
	for round := 1; round <= r.N(); round++ {
		for i := 1; i <= m; i++ {
			inboxes[i] = nil // fresh slices: the trace retains them
		}
		for i := 1; i <= m; i++ {
			from := graph.ProcID(i)
			rec := &exec.Locals[i].Rounds[round-1]
			for _, to := range g.Neighbors(from) {
				msg, err := safeSend(p, machines[i], from, round, to)
				if err != nil {
					return nil, err
				}
				delivered := r.Delivered(from, to, round)
				rec.Sent = append(rec.Sent, protocol.SentRecord{To: to, Msg: msg, Delivered: delivered})
				if delivered {
					inboxes[to] = append(inboxes[to], protocol.Received{From: from, Msg: msg})
				}
			}
		}
		for i := 1; i <= m; i++ {
			sortReceived(inboxes[i])
			exec.Locals[i].Rounds[round-1].Received = inboxes[i]
			if err := safeStep(p, machines[i], graph.ProcID(i), round, inboxes[i]); err != nil {
				return nil, err
			}
		}
	}
	for i := 1; i <= m; i++ {
		out, err := safeOutput(p, machines[i], graph.ProcID(i))
		if err != nil {
			return nil, err
		}
		exec.Locals[i].Output = out
	}
	return exec, nil
}

func sortReceived(rs []protocol.Received) {
	sort.Slice(rs, func(a, b int) bool { return rs[a].From < rs[b].From })
}
