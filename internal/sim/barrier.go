package sim

import "sync"

// barrier is a reusable cyclic barrier for n parties. Await blocks until
// all n parties have arrived, then releases them together and resets for
// the next cycle. The zero value is unusable; construct with newBarrier.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	waiting int
	cycle   uint64
}

func newBarrier(parties int) *barrier {
	b := &barrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Await blocks until all parties have called Await for the current cycle.
func (b *barrier) Await() {
	b.mu.Lock()
	defer b.mu.Unlock()
	cycle := b.cycle
	b.waiting++
	if b.waiting == b.parties {
		b.waiting = 0
		b.cycle++
		b.cond.Broadcast()
		return
	}
	for cycle == b.cycle {
		b.cond.Wait()
	}
}
