package sim_test

import (
	"fmt"
	"log"

	"coordattack/internal/core"
	"coordattack/internal/graph"
	"coordattack/internal/run"
	"coordattack/internal/sim"
)

// ExampleOutputs executes Protocol S on a damaged run: the loop engine is
// the fast path every Monte-Carlo estimate rides on.
func ExampleOutputs() {
	g := graph.Pair()
	s := core.MustS(0.5)
	good, err := run.Good(g, 6, 1, 2)
	if err != nil {
		log.Fatal(err)
	}
	r := run.CutAt(good, 4)
	outs, err := sim.Outputs(s, g, r, sim.SeedTapes(11))
	if err != nil {
		log.Fatal(err)
	}
	conc, err := sim.ConcurrentOutputs(s, g, r, sim.SeedTapes(11))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("engines agree:", outs[1] == conc[1] && outs[2] == conc[2])
	// Output:
	// engines agree: true
}
