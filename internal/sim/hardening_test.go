package sim

import (
	"errors"
	"testing"

	"coordattack/internal/graph"
	"coordattack/internal/protocol"
	"coordattack/internal/run"
)

// panicProto panics in the configured phase on the configured (proc,
// round) — the deliberately misbehaving machine of the deadlock
// regression tests.
type panicProto struct {
	proc  graph.ProcID
	round int
	phase string // "send", "step", "output"
}

func (p panicProto) Name() string { return "panic" }

func (p panicProto) NewMachine(cfg protocol.Config) (protocol.Machine, error) {
	return &panicMachine{p: p, id: cfg.ID}, nil
}

type panicMachine struct {
	p  panicProto
	id graph.ProcID
}

type panicMsg struct{}

func (panicMsg) CAMessage() {}

func (m *panicMachine) Send(round int, to graph.ProcID) protocol.Message {
	if m.p.phase == "send" && m.id == m.p.proc && round == m.p.round {
		panic("injected send panic")
	}
	return panicMsg{}
}

func (m *panicMachine) Step(round int, received []protocol.Received) error {
	if m.p.phase == "step" && m.id == m.p.proc && round == m.p.round {
		panic("injected step panic")
	}
	return nil
}

func (m *panicMachine) Output() bool {
	if m.p.phase == "output" && m.id == m.p.proc {
		panic("injected output panic")
	}
	return false
}

// TestConcurrentSurvivesPanickingMachine is the deadlock regression: a
// machine that panics mid-round used to kill its goroutine and hang
// every peer on the barrier forever. Now the panic is recovered, the
// failed goroutine keeps pacing the barrier, and the engine returns a
// MachineError. Run with -race -timeout to catch reintroduction.
func TestConcurrentSurvivesPanickingMachine(t *testing.T) {
	g, err := graph.Complete(5)
	if err != nil {
		t.Fatal(err)
	}
	good, err := run.Good(g, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, phase := range []string{"send", "step", "output"} {
		for _, proc := range []graph.ProcID{1, 3, 5} {
			p := panicProto{proc: proc, round: 3, phase: phase}
			outs, err := ConcurrentOutputs(p, g, good, SeedTapes(1))
			if err == nil {
				t.Fatalf("phase %s proc %d: no error (outs %v)", phase, proc, outs)
			}
			if !errors.Is(err, ErrMachineFault) {
				t.Errorf("phase %s proc %d: error %v does not wrap ErrMachineFault", phase, proc, err)
			}
			var me *MachineError
			if !errors.As(err, &me) {
				t.Fatalf("phase %s proc %d: error %v is not a MachineError", phase, proc, err)
			}
			if !me.Panicked || me.Proc != proc || me.Phase != phase {
				t.Errorf("phase %s proc %d: got %+v", phase, proc, me)
			}
		}
	}
}

// TestLoopEnginesSurvivePanickingMachine: the sequential engines convert
// panics to errors too, so mc trials fail cleanly instead of crashing
// the process.
func TestLoopEnginesSurvivePanickingMachine(t *testing.T) {
	g := graph.Pair()
	good, err := run.Good(g, 4, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := panicProto{proc: 2, round: 2, phase: "step"}
	if _, err := Outputs(p, g, good, SeedTapes(1)); err == nil {
		t.Error("loop engine: no error from panicking machine")
	} else if !errors.Is(err, ErrMachineFault) {
		t.Errorf("loop engine: %v does not wrap ErrMachineFault", err)
	}
	if _, err := Execute(p, g, good, SeedTapes(1)); err == nil {
		t.Error("trace engine: no error from panicking machine")
	}
	if _, err := Outputs(panicProto{proc: 1, round: 1, phase: "output"}, g, good, SeedTapes(1)); err == nil {
		t.Error("loop engine: no error from panicking Output")
	}
}

// TestConcurrentPanicDoesNotCorruptPeers: with a large graph and a panic
// in the middle of the send fan-out, all surviving goroutines must still
// complete every round (no partial channel fills, no deadlock) — the
// engine returns the failure without hanging.
func TestConcurrentPanicDoesNotCorruptPeers(t *testing.T) {
	g, err := graph.Complete(8)
	if err != nil {
		t.Fatal(err)
	}
	good, err := run.Good(g, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 10; round += 3 {
		p := panicProto{proc: 4, round: round, phase: "send"}
		if _, err := ConcurrentOutputs(p, g, good, SeedTapes(7)); err == nil {
			t.Fatalf("round %d: panic not surfaced", round)
		}
	}
}
