package table

import (
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := New("demo", "N", "liveness", "bound")
	tb.Note = "a note"
	tb.AddRow("4", "0.40", "0.50")
	tb.AddRow("10", "1.00", "1.00")
	out := tb.Render()
	for _, want := range []string{"== demo ==", "a note", "N", "liveness", "bound", "0.40", "10"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title, note, header, separator, two rows
		t.Errorf("Render has %d lines, want 6:\n%s", len(lines), out)
	}
	// Columns aligned: header and rows share the position of column 2.
	header := lines[2]
	row := lines[4]
	if strings.Index(header, "liveness") != strings.Index(row, "0.40") {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tb := New("", "a", "b")
	tb.AddRow("only")
	out := tb.Render()
	if !strings.Contains(out, "only") {
		t.Errorf("row lost: %s", out)
	}
}

func TestMarkdown(t *testing.T) {
	tb := New("T1", "N", "U")
	tb.AddRow("5", "0.25")
	md := tb.Markdown()
	for _, want := range []string{"**T1**", "| N | U |", "| --- | --- |", "| 5 | 0.25 |"} {
		if !strings.Contains(md, want) {
			t.Errorf("Markdown missing %q:\n%s", want, md)
		}
	}
}

func TestMarkdownEscapesPipes(t *testing.T) {
	tb := New("", "witness |M|", "v")
	tb.AddRow("a|b", "1")
	md := tb.Markdown()
	if !strings.Contains(md, `witness \|M\|`) || !strings.Contains(md, `a\|b`) {
		t.Errorf("pipes not escaped:\n%s", md)
	}
}

func TestFormatters(t *testing.T) {
	if F(1.23456, 2) != "1.23" {
		t.Errorf("F = %q", F(1.23456, 2))
	}
	if P(0.5) != "0.5000" {
		t.Errorf("P = %q", P(0.5))
	}
	if I(42) != "42" {
		t.Errorf("I = %q", I(42))
	}
}

func TestChart(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	c := NewChart("fig", xs)
	if err := c.Add("linear", '*', []float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := c.Add("flat", 'o', []float64{2, 2, 2, 2}); err != nil {
		t.Fatal(err)
	}
	if err := c.Add("bad", 'x', []float64{1}); err == nil {
		t.Error("mismatched series length accepted")
	}
	out := c.Render()
	for _, want := range []string{"== fig ==", "*", "o", "linear", "flat", "x: 1 .. 4"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
}

func TestChartEdgeCases(t *testing.T) {
	empty := NewChart("e", nil)
	if !strings.Contains(empty.Render(), "empty") {
		t.Error("empty chart not flagged")
	}
	allNaN := NewChart("n", []float64{1, 2})
	if err := allNaN.Add("nan", '*', []float64{math.NaN(), math.NaN()}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(allNaN.Render(), "no finite data") {
		t.Error("all-NaN chart not flagged")
	}
	constant := NewChart("c", []float64{5, 5})
	if err := constant.Add("pt", '*', []float64{3, 3}); err != nil {
		t.Fatal(err)
	}
	if out := constant.Render(); !strings.Contains(out, "*") {
		t.Errorf("constant chart lost its points:\n%s", out)
	}
}
