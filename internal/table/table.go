// Package table renders experiment results as aligned ASCII tables and
// simple ASCII charts, for cmd/coordbench and EXPERIMENTS.md.
package table

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Note    string
	Columns []string
	Rows    [][]string
}

// New returns a table with the given title and column headers.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) *Table {
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
	return t
}

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len([]rune(c))
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len([]rune(cell)) > widths[i] {
				widths[i] = len([]rune(cell))
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	writeRow := func(cells []string) {
		for i := range t.Columns {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(cell, widths[i]))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

func pad(s string, w int) string {
	if n := w - len([]rune(s)); n > 0 {
		return s + strings.Repeat(" ", n)
	}
	return s
}

// Markdown renders the table as GitHub-flavored markdown, for
// EXPERIMENTS.md. Pipes inside cells (e.g. "|M|") are escaped so they
// cannot break the table syntax.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n\n", t.Note)
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(escapeCells(t.Columns), " | "))
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		cells := make([]string, len(t.Columns))
		copy(cells, row)
		fmt.Fprintf(&b, "| %s |\n", strings.Join(escapeCells(cells), " | "))
	}
	return b.String()
}

func escapeCells(cells []string) []string {
	out := make([]string, len(cells))
	for i, c := range cells {
		out[i] = strings.ReplaceAll(c, "|", `\|`)
	}
	return out
}

// F formats a float with the given number of decimals.
func F(x float64, decimals int) string {
	return strconv.FormatFloat(x, 'f', decimals, 64)
}

// P formats a probability with four decimals.
func P(x float64) string { return F(x, 4) }

// I formats an integer.
func I(x int) string { return strconv.Itoa(x) }

// Chart draws series as a plain ASCII chart: one symbol per series, x
// indices mapped across the width, y values scaled into the height. It
// is deliberately crude — enough to show the *shape* of a figure
// (linearity, saturation, crossover) in a terminal or a text file.
type Chart struct {
	Title  string
	Width  int // plot columns (default 60)
	Height int // plot rows (default 16)

	xs     []float64
	series []chartSeries
}

type chartSeries struct {
	name   string
	symbol byte
	ys     []float64
}

// NewChart returns an empty chart with the shared x coordinates.
func NewChart(title string, xs []float64) *Chart {
	return &Chart{Title: title, Width: 60, Height: 16, xs: xs}
}

// Add attaches one series; ys must have one value per x (NaN = missing).
func (c *Chart) Add(name string, symbol byte, ys []float64) error {
	if len(ys) != len(c.xs) {
		return fmt.Errorf("table: series %q has %d points, chart has %d xs", name, len(ys), len(c.xs))
	}
	c.series = append(c.series, chartSeries{name: name, symbol: symbol, ys: ys})
	return nil
}

// Render draws the chart.
func (c *Chart) Render() string {
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", c.Title)
	}
	if len(c.xs) == 0 || len(c.series) == 0 {
		b.WriteString("(empty chart)\n")
		return b.String()
	}
	xmin, xmax := minMax(c.xs)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.series {
		lo, hi := minMax(s.ys)
		ymin = math.Min(ymin, lo)
		ymax = math.Max(ymax, hi)
	}
	if math.IsInf(ymin, 1) { // all values NaN
		b.WriteString("(no finite data)\n")
		return b.String()
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	grid := make([][]byte, c.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", c.Width))
	}
	for _, s := range c.series {
		for i, y := range s.ys {
			if math.IsNaN(y) {
				continue
			}
			col := int((c.xs[i] - xmin) / (xmax - xmin) * float64(c.Width-1))
			rowF := (y - ymin) / (ymax - ymin) * float64(c.Height-1)
			row := c.Height - 1 - int(rowF+0.5)
			grid[row][col] = s.symbol
		}
	}
	for r, line := range grid {
		yVal := ymax - (ymax-ymin)*float64(r)/float64(c.Height-1)
		fmt.Fprintf(&b, "%8.3f |%s\n", yVal, string(line))
	}
	fmt.Fprintf(&b, "%8s +%s\n", "", strings.Repeat("-", c.Width))
	fmt.Fprintf(&b, "%8s  x: %.3g .. %.3g\n", "", xmin, xmax)
	for _, s := range c.series {
		fmt.Fprintf(&b, "%8s  %c = %s\n", "", s.symbol, s.name)
	}
	return b.String()
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	return lo, hi
}
