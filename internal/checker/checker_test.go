package checker

import (
	"strings"
	"testing"

	"coordattack/internal/baseline"
	"coordattack/internal/core"
	"coordattack/internal/graph"
	"coordattack/internal/protocol"
)

func cfg() Config { return Config{Runs: 60, TapesPerRun: 3, Rounds: 4, Seed: 42} }

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Runs: 0, TapesPerRun: 1, Rounds: 1},
		{Runs: 1, TapesPerRun: 0, Rounds: 1},
		{Runs: 1, TapesPerRun: 1, Rounds: 0},
	}
	g := graph.Pair()
	for i, c := range bad {
		if _, err := Validity(core.MustS(0.5), g, c); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestValidityAuditPassesForS(t *testing.T) {
	rep, err := Validity(core.MustS(0.3), graph.Pair(), cfg())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("S failed validity audit: %v", rep.Violations)
	}
	if rep.Checked == 0 {
		t.Error("audit checked nothing")
	}
	if !strings.Contains(rep.String(), "checked") {
		t.Errorf("String = %q", rep.String())
	}
}

func TestValidityAuditPassesForA(t *testing.T) {
	rep, err := Validity(baseline.NewA(), graph.Pair(), cfg())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("A failed validity audit: %v", rep.Violations)
	}
}

// invalidProto attacks whenever any message arrives, input or not:
// a validity violator the audit must catch.
type invalidProto struct{}

func (invalidProto) Name() string { return "invalid" }

func (invalidProto) NewMachine(c protocol.Config) (protocol.Machine, error) {
	return &invalidMachine{}, nil
}

type invalidMachine struct{ heard bool }

func (m *invalidMachine) Send(int, graph.ProcID) protocol.Message { return baseline.DetMsg{} }
func (m *invalidMachine) Step(_ int, rec []protocol.Received) error {
	if len(rec) > 0 {
		m.heard = true
	}
	return nil
}
func (m *invalidMachine) Output() bool { return m.heard }

func TestValidityAuditCatchesViolator(t *testing.T) {
	rep, err := Validity(invalidProto{}, graph.Pair(), cfg())
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Error("validity audit passed a protocol that attacks without input")
	}
	if len(rep.Violations) > 10 {
		t.Errorf("violations uncapped: %d", len(rep.Violations))
	}
}

func TestAgreementAuditS(t *testing.T) {
	g, err := graph.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := AgreementS(core.MustS(0.2), g, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("agreement audit failed: %v", rep.Violations)
	}
	// Slack variants are audited against their own (larger) supremum.
	slack, err := core.NewSWithSlack(0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := AgreementS(slack, g, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.OK() {
		t.Errorf("slack agreement audit failed: %v", rep2.Violations)
	}
}

func TestTradeoffAudit(t *testing.T) {
	g, err := graph.Complete(3)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Tradeoff(core.MustS(0.15), g, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("tradeoff audit failed: %v", rep.Violations)
	}
	slack, err := core.NewSWithSlack(0.15, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Tradeoff(slack, g, cfg()); err == nil {
		t.Error("tradeoff audit accepted a slack variant")
	}
}

func TestElementaryBoundsAudit(t *testing.T) {
	g, err := graph.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ElementaryBounds(core.MustS(0.2), g, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("elementary bounds failed: %v", rep.Violations)
	}
	slack, err := core.NewSWithSlack(0.2, 2)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := ElementaryBounds(slack, g, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.OK() {
		t.Errorf("slack elementary bounds failed: %v", rep2.Violations)
	}
}

func TestLevelLemmasAudit(t *testing.T) {
	for _, build := range []func() (*graph.G, error){
		func() (*graph.G, error) { return graph.Complete(2) },
		func() (*graph.G, error) { return graph.Ring(4) },
		func() (*graph.G, error) { return graph.Line(3) },
	} {
		g, err := build()
		if err != nil {
			t.Fatal(err)
		}
		rep, err := LevelLemmas(g, cfg())
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			t.Errorf("%v: level lemmas failed: %v", g, rep.Violations)
		}
	}
	single := graph.MustNew(1, nil)
	if _, err := LevelLemmas(single, cfg()); err == nil {
		t.Error("m=1 accepted")
	}
}

func TestInvariantsAudit(t *testing.T) {
	for _, build := range []func() (*graph.G, error){
		func() (*graph.G, error) { return graph.Complete(2) },
		func() (*graph.G, error) { return graph.Ring(5) },
	} {
		g, err := build()
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Invariants(core.MustS(0.25), g, cfg())
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			t.Errorf("%v: invariant audit failed: %v", g, rep.Violations)
		}
		if rep.Checked == 0 {
			t.Error("invariant audit checked nothing")
		}
	}
}
