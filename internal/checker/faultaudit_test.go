package checker

import (
	"testing"

	"coordattack/internal/core"
	"coordattack/internal/fault"
	"coordattack/internal/graph"
)

// agreementCfg needs more tapes per run than the default cfg() so the
// Hoeffding radius is meaningfully smaller than 1-ε.
func agreementCfg() Config { return Config{Runs: 12, TapesPerRun: 400, Rounds: 4, Seed: 9} }

func TestAgreementEmpiricalPassesForS(t *testing.T) {
	eps := 0.3
	rep, err := AgreementEmpirical(core.MustS(eps), graph.Pair(), eps, 1e-9, agreementCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("agreement audit failed for plain S: %v", rep.Violations)
	}
	if rep.Checked == 0 {
		t.Error("agreement audit checked nothing")
	}
	if _, err := AgreementEmpirical(core.MustS(eps), graph.Pair(), 1.5, 0, agreementCfg()); err == nil {
		t.Error("eps > 1 accepted")
	}
}

// TestAgreementEmpiricalPassesUnderNonByzantineFaults: crash, omission,
// and stutter faults shed liveness but never safety, so the audit stays
// clean on the fault-injected protocol.
func TestAgreementEmpiricalPassesUnderNonByzantineFaults(t *testing.T) {
	eps := 0.3
	s := core.MustS(eps)
	plan := fault.MustPlan(
		fault.Fault{Proc: 1, Kind: fault.OmitRound, Round: 2},
		fault.Fault{Proc: 2, Kind: fault.CrashStop, Round: 3},
	)
	rep, err := AgreementEmpirical(fault.Inject(s, plan), graph.Pair(), eps, 1e-9, agreementCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("agreement audit failed under non-Byzantine faults: %v", rep.Violations)
	}
}

// TestCheckerCatchesDecisionFlip: the Byzantine decision flip must be
// caught by both safety audits — Validity (the flipped process attacks
// on input-free runs) and AgreementEmpirical (near-certain disagreement
// on connected runs).
func TestCheckerCatchesDecisionFlip(t *testing.T) {
	s := core.MustS(0.3)
	flipped := fault.Inject(s, fault.MustPlan(fault.Fault{Proc: 2, Kind: fault.DecisionFlip}))

	vrep, err := Validity(flipped, graph.Pair(), cfg())
	if err != nil {
		t.Fatal(err)
	}
	if vrep.OK() {
		t.Error("validity audit missed the decision flip")
	}

	arep, err := AgreementEmpirical(flipped, graph.Pair(), 0.3, 1e-9, agreementCfg())
	if err != nil {
		t.Fatal(err)
	}
	if arep.OK() {
		t.Error("agreement audit missed the decision flip")
	}
}
