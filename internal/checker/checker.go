// Package checker provides machine-checked audits of the paper's
// correctness conditions and lemmas, reusable by tests, experiments, and
// the CLIs. Each audit samples runs (and tapes where relevant), verifies
// a property on every sample, and returns a Report with the number of
// cases checked and any violations found.
//
// The audits cover: validity (Theorem 6.5 for S, and generically for any
// protocol), agreement (Theorem 6.7), the Lemma 6.3 invariants and Lemma
// 6.4 count = ML (white-box on Protocol S), the level lemmas (4.2, 5.2,
// 6.1, 6.2), and the Theorem 5.4 tradeoff bound.
package checker

import (
	"fmt"

	"coordattack/internal/causality"
	"coordattack/internal/core"
	"coordattack/internal/graph"
	"coordattack/internal/protocol"
	"coordattack/internal/rng"
	"coordattack/internal/run"
	"coordattack/internal/sim"
	"coordattack/internal/stats"
)

// Report summarizes an audit.
type Report struct {
	// Checked counts individual property checks performed.
	Checked int
	// Violations holds human-readable descriptions of failures, capped
	// at maxViolations.
	Violations []string
}

const maxViolations = 10

// OK reports whether the audit found no violations.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

func (r *Report) addViolation(format string, args ...any) {
	if len(r.Violations) < maxViolations {
		r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
	}
}

// String renders "checked N, violations K".
func (r *Report) String() string {
	return fmt.Sprintf("checked %d, violations %d", r.Checked, len(r.Violations))
}

// Config sets the sampling budget for audits.
type Config struct {
	// Runs is the number of random runs to sample (≥ 1).
	Runs int
	// TapesPerRun is the number of random tapes per run for properties
	// quantified over α (≥ 1).
	TapesPerRun int
	// Rounds is the horizon N of sampled runs (≥ 1).
	Rounds int
	Seed   uint64
}

func (c Config) validate() error {
	if c.Runs < 1 || c.TapesPerRun < 1 || c.Rounds < 1 {
		return fmt.Errorf("checker: config needs Runs, TapesPerRun, Rounds ≥ 1, got %+v", c)
	}
	return nil
}

// Validity audits the validity condition for an arbitrary protocol: on
// sampled runs with I(R) = ∅, every process outputs 0 under every sampled
// tape.
func Validity(p protocol.Protocol, g *graph.G, cfg Config) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	report := &Report{}
	runTape := rng.NewTape(cfg.Seed)
	stream := rng.NewStream(rng.Mix64(cfg.Seed ^ 0xbadd))
	for trial := 0; trial < cfg.Runs; trial++ {
		r, err := run.RandomSubset(g, cfg.Rounds, runTape)
		if err != nil {
			return nil, err
		}
		for _, i := range r.Inputs() {
			r.RemoveInput(i)
		}
		for rep := 0; rep < cfg.TapesPerRun; rep++ {
			outs, err := sim.Outputs(p, g, r, sim.StreamTapes(stream, uint64(trial*cfg.TapesPerRun+rep)))
			if err != nil {
				return nil, err
			}
			report.Checked++
			for i := 1; i < len(outs); i++ {
				if outs[i] {
					report.addViolation("validity: %s: process %d attacked on input-free run %v",
						p.Name(), i, r)
				}
			}
		}
	}
	return report, nil
}

// AgreementEmpirical audits Agreement(ε) for an arbitrary protocol —
// including fault-injected wrappers (internal/fault), where the exact
// Protocol S analysis does not apply. On each sampled run it estimates
// Pr[PA|R] over TapesPerRun tapes and flags a violation when the
// empirical frequency exceeds ε by more than the Hoeffding radius at
// confidence delta (per run); delta ≤ 0 defaults to 1e-9. A Byzantine
// fault such as a decision flip forces disagreement with probability far
// above ε and is caught here; non-Byzantine faults only shed liveness
// and pass.
func AgreementEmpirical(p protocol.Protocol, g *graph.G, eps, delta float64, cfg Config) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if eps <= 0 || eps > 1 {
		return nil, fmt.Errorf("checker: eps must be in (0, 1], got %v", eps)
	}
	if delta <= 0 {
		delta = 1e-9
	}
	radius, err := stats.HoeffdingRadius(cfg.TapesPerRun, delta)
	if err != nil {
		return nil, err
	}
	report := &Report{}
	runTape := rng.NewTape(cfg.Seed)
	stream := rng.NewStream(rng.Mix64(cfg.Seed ^ 0xfa117))
	for trial := 0; trial < cfg.Runs; trial++ {
		r, err := run.RandomSubset(g, cfg.Rounds, runTape)
		if err != nil {
			return nil, err
		}
		pa := 0
		for rep := 0; rep < cfg.TapesPerRun; rep++ {
			outs, err := sim.Outputs(p, g, r, sim.StreamTapes(stream, uint64(trial*cfg.TapesPerRun+rep)))
			if err != nil {
				return nil, err
			}
			if protocol.Classify(outs) == protocol.PartialAttack {
				pa++
			}
		}
		report.Checked++
		if freq := float64(pa) / float64(cfg.TapesPerRun); freq > eps+radius {
			report.addViolation("agreement: %s: Pr[PA|%v] ≈ %.4f > ε=%v (+%.4f radius)",
				p.Name(), r, freq, eps, radius)
		}
	}
	return report, nil
}

// AgreementS audits Theorem 6.7 with the exact analysis: Pr[PA|R] ≤ ε on
// every sampled run, plus the structured worst-case family.
func AgreementS(s *core.S, g *graph.G, cfg Config) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	report := &Report{}
	runTape := rng.NewTape(cfg.Seed)
	check := func(r *run.Run) error {
		a, err := s.Analyze(g, r)
		if err != nil {
			return err
		}
		report.Checked++
		if limit := core.UnsafetySup(s.Epsilon(), s.Slack()); a.PPartial > limit+1e-12 {
			report.addViolation("agreement: Pr[PA|%v] = %v > %v", r, a.PPartial, limit)
		}
		return nil
	}
	for trial := 0; trial < cfg.Runs; trial++ {
		r, err := run.RandomSubset(g, cfg.Rounds, runTape)
		if err != nil {
			return nil, err
		}
		if err := check(r); err != nil {
			return nil, err
		}
	}
	return report, nil
}

// Tradeoff audits Theorem 5.4 (liveness ≤ ε·L(R)) and Theorem 6.8
// (liveness = min(1, ε·ML(R))) on sampled runs, using the exact analysis.
func Tradeoff(s *core.S, g *graph.G, cfg Config) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if s.Slack() != 0 {
		return nil, fmt.Errorf("checker: tradeoff audit applies to the paper's Protocol S (slack 0), got slack %d", s.Slack())
	}
	report := &Report{}
	runTape := rng.NewTape(cfg.Seed)
	for trial := 0; trial < cfg.Runs; trial++ {
		r, err := run.RandomSubset(g, cfg.Rounds, runTape)
		if err != nil {
			return nil, err
		}
		a, err := s.Analyze(g, r)
		if err != nil {
			return nil, err
		}
		report.Checked++
		if a.PTotal > a.Bound+1e-12 {
			report.addViolation("theorem 5.4: liveness %v > bound %v on %v", a.PTotal, a.Bound, r)
		}
		if want := core.LivenessExact(s.Epsilon(), a.ModMin); a.PTotal != want {
			report.addViolation("theorem 6.8: liveness %v ≠ min(1, ε·ML) = %v on %v", a.PTotal, want, r)
		}
	}
	return report, nil
}

// ElementaryBounds audits the two inequalities at the root of all the
// lower bounds, via the exact analysis: Lemma 2.2 (the unsafety is at
// least any pairwise attack-probability gap) and Lemma 2.3 (the liveness
// is at most any single attack probability).
func ElementaryBounds(s *core.S, g *graph.G, cfg Config) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := g.NumVertices()
	report := &Report{}
	runTape := rng.NewTape(cfg.Seed)
	limit := core.UnsafetySup(s.Epsilon(), s.Slack())
	for trial := 0; trial < cfg.Runs; trial++ {
		r, err := run.RandomSubset(g, cfg.Rounds, runTape)
		if err != nil {
			return nil, err
		}
		a, err := s.Analyze(g, r)
		if err != nil {
			return nil, err
		}
		report.Checked++
		for i := 1; i <= m; i++ {
			for j := 1; j <= m; j++ {
				if gap := a.PAttack[i] - a.PAttack[j]; gap > limit+1e-12 {
					report.addViolation("lemma 2.2: Pr[D_%d]-Pr[D_%d] = %v > U on %v", i, j, gap, r)
				}
			}
			if a.PTotal > a.PAttack[i]+1e-12 {
				report.addViolation("lemma 2.3: liveness %v > Pr[D_%d] = %v on %v",
					a.PTotal, i, a.PAttack[i], r)
			}
		}
	}
	return report, nil
}

// LevelLemmas audits the pure-causality lemmas on sampled runs:
// Lemma 4.2 (clipping preserves L_i and ML_i and yields a subset),
// Lemma 5.2 (clipping drops someone below L_i), Lemma 6.1
// (L-1 ≤ ML ≤ L), and Lemma 6.2 (|ML_i − ML_j| ≤ 1).
func LevelLemmas(g *graph.G, cfg Config) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := g.NumVertices()
	if m < 2 {
		return nil, fmt.Errorf("checker: level lemmas need m ≥ 2, got %d", m)
	}
	report := &Report{}
	runTape := rng.NewTape(cfg.Seed)
	for trial := 0; trial < cfg.Runs; trial++ {
		r, err := run.RandomSubset(g, cfg.Rounds, runTape)
		if err != nil {
			return nil, err
		}
		lt, err := causality.NewLevelTable(r, m)
		if err != nil {
			return nil, err
		}
		mt, err := causality.NewModLevelTable(r, m)
		if err != nil {
			return nil, err
		}
		report.Checked++
		for i := 1; i <= m; i++ {
			pi := graph.ProcID(i)
			l, ml := lt.Final(pi), mt.Final(pi)
			if ml > l || ml < l-1 {
				report.addViolation("lemma 6.1: L_%d=%d ML_%d=%d on %v", i, l, i, ml, r)
			}
			for j := 1; j <= m; j++ {
				if mt.Final(graph.ProcID(j)) < ml-1 {
					report.addViolation("lemma 6.2: ML_%d=%d ML_%d=%d on %v",
						i, ml, j, mt.Final(graph.ProcID(j)), r)
				}
			}
			clip := causality.Clip(r, m, pi)
			if !clip.SubsetOf(r) {
				report.addViolation("lemma 4.2: clip not subset on %v", r)
			}
			clt, err := causality.NewLevelTable(clip, m)
			if err != nil {
				return nil, err
			}
			if clt.Final(pi) != l {
				report.addViolation("lemma 4.2: L_%d changed %d→%d under clip on %v",
					i, l, clt.Final(pi), r)
			}
			if l > 0 && clt.Min() > l-1 {
				report.addViolation("lemma 5.2: clip min level %d > L_%d-1=%d on %v",
					clt.Min(), i, l-1, r)
			}
		}
	}
	return report, nil
}

// Invariants audits the Lemma 6.3 invariants and Lemma 6.4 (count = ML)
// by driving Protocol S round by round with white-box access.
func Invariants(s *core.S, g *graph.G, cfg Config) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := g.NumVertices()
	report := &Report{}
	runTape := rng.NewTape(cfg.Seed)
	stream := rng.NewStream(rng.Mix64(cfg.Seed ^ 0x1eaf))
	for trial := 0; trial < cfg.Runs; trial++ {
		r, err := run.RandomSubset(g, cfg.Rounds, runTape)
		if err != nil {
			return nil, err
		}
		mt, err := causality.NewModLevelTable(r, m)
		if err != nil {
			return nil, err
		}
		machines := make([]*core.SMachine, m+1)
		for i := 1; i <= m; i++ {
			mach, err := s.NewMachine(protocol.Config{
				ID: graph.ProcID(i), G: g, N: r.N(),
				Input: r.HasInput(graph.ProcID(i)),
				Tape:  stream.Tape(uint64(trial), uint64(i)),
			})
			if err != nil {
				return nil, err
			}
			machines[i] = mach.(*core.SMachine)
		}
		audit := func(round int) {
			report.Checked++
			for i := 1; i <= m; i++ {
				sm := machines[i]
				if got, want := sm.Count(), mt.At(graph.ProcID(i), round); got != want {
					report.addViolation("lemma 6.4: count_%d^%d=%d ML=%d on %v", i, round, got, want, r)
				}
				if (sm.Count() >= 1) != (sm.RFireKnown() && sm.Valid()) {
					report.addViolation("lemma 6.3(2): process %d round %d inconsistent", i, round)
				}
				if mask := sm.SeenMask(); m < 64 && mask == (uint64(1)<<uint(m))-1 {
					report.addViolation("lemma 6.3(7): seen_%d = V at round %d", i, round)
				}
			}
		}
		audit(0)
		for round := 1; round <= r.N(); round++ {
			inboxes := make([][]protocol.Received, m+1)
			for i := 1; i <= m; i++ {
				from := graph.ProcID(i)
				for _, to := range g.Neighbors(from) {
					msg := machines[i].Send(round, to)
					if r.Delivered(from, to, round) {
						inboxes[to] = append(inboxes[to], protocol.Received{From: from, Msg: msg})
					}
				}
			}
			for i := 1; i <= m; i++ {
				if err := machines[i].Step(round, inboxes[i]); err != nil {
					return nil, err
				}
			}
			audit(round)
		}
	}
	return report, nil
}
