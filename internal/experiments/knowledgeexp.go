package experiments

import (
	"coordattack/internal/graph"
	"coordattack/internal/knowledge"
	"coordattack/internal/table"
)

// T17Knowledge grounds §4's information levels in their cited semantics
// ([HM] knowledge): over fully enumerated run spaces it checks, run by
// run and process by process, that the combinatorial level L_i(R)
// (flows-to dynamic programming) equals the Halpern-Moses knowledge depth
// (the largest h with K_i E^(h-1) "input arrived", computed from
// clip-indistinguishability classes) — and that common knowledge of the
// input is attained on no run at all, the epistemic root of the
// coordinated-attack impossibility.
func T17Knowledge(opt Options) (*Result, error) {
	opt = opt.withDefaults()
	ring3, err := graph.Ring(3)
	if err != nil {
		return nil, err
	}
	type spec struct {
		name string
		g    *graph.G
		n    int
	}
	specs := []spec{
		{"K_2, N=1", graph.Pair(), 1},
		{"K_2, N=2", graph.Pair(), 2},
		{"K_2, N=3", graph.Pair(), 3},
		{"ring(3), N=1", ring3, 1},
	}
	if opt.Quick {
		specs = specs[:2]
	}
	tb := table.New("T17: information levels = knowledge depth (exhaustive)",
		"space", "runs", "(run, process) checks", "level ≠ depth", "runs with CK(input)")
	ok := true
	for _, sp := range specs {
		s, err := knowledge.NewSpace(sp.g, sp.n)
		if err != nil {
			return nil, err
		}
		m := sp.g.NumVertices()
		mismatches, checks := 0, 0
		for _, r := range s.Runs() {
			lt, err := opt.Memo.Table(r, m, false)
			if err != nil {
				return nil, err
			}
			for i := 1; i <= m; i++ {
				depth, err := s.Depth(graph.ProcID(i), knowledge.InputArrived, r)
				if err != nil {
					return nil, err
				}
				checks++
				if depth != lt.Final(graph.ProcID(i)) {
					mismatches++
				}
			}
		}
		ck, err := s.CommonKnowledgeAll(knowledge.InputArrived)
		if err != nil {
			return nil, err
		}
		ckRuns := 0
		for _, v := range ck {
			if v {
				ckRuns++
			}
		}
		tb.AddRow(sp.name, table.I(s.Size()), table.I(checks), table.I(mismatches), table.I(ckRuns))
		if mismatches != 0 || ckRuns != 0 {
			ok = false
		}
	}
	return &Result{
		ID:     "T17",
		Claim:  "§4/[HM]: the level measure is exactly Halpern-Moses knowledge depth, and common knowledge of the input is unattainable",
		Tables: []*table.Table{tb},
		OK:     ok,
		Summary: "Across every run of every enumerated space, the flows-to levels and the " +
			"indistinguishability-class knowledge depths coincide exactly — §4's 'knowledge' framing is " +
			"literal. No run attains common knowledge of the input: the epistemic statement of the " +
			"impossibility that forces the paper's probabilistic compromise.",
	}, nil
}
