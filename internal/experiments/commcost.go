package experiments

import (
	"fmt"

	"coordattack/internal/baseline"
	"coordattack/internal/core"
	"coordattack/internal/graph"
	"coordattack/internal/protocol"
	"coordattack/internal/run"
	"coordattack/internal/sim"
	"coordattack/internal/table"
)

// T21CommCost prices Protocol S's optimality in messages. The model makes
// everyone send every round, but only non-null packets carry information:
// Protocol A moves a single packet per round (O(N) packets), the ring
// relay a single token (O(N)), while Protocol S floods its full state on
// every edge every round (2|E|·N packets). The optimal liveness/unsafety
// tradeoff is bought with maximal communication — and the experiment
// shows the cheap protocols' packet thrift is precisely what the
// adversary exploits (their unsafety windows, T1/T18).
func T21CommCost(opt Options) (*Result, error) {
	opt = opt.withDefaults()
	const n = 12
	ring5, err := graph.Ring(5)
	if err != nil {
		return nil, err
	}
	type scenario struct {
		name  string
		p     protocol.Protocol
		g     *graph.G
		mkRun func(g *graph.G) (*run.Run, error)
		// maxPackets is the analytic packet ceiling for the good run.
		maxPackets int
		unsafety   string
	}
	sEps := 0.1
	s, err := core.NewS(sEps)
	if err != nil {
		return nil, err
	}
	allInputs := func(g *graph.G) (*run.Run, error) { return run.Good(g, n, g.Vertices()...) }
	scenarios := []scenario{
		{"A on K_2", baseline.NewA(), graph.Pair(), allInputs, n, "1/(N-1)"},
		{"RingRelay on ring(5)", baseline.NewRingRelay(), ring5,
			func(g *graph.G) (*run.Run, error) { return run.Good(g, n, 1) }, n, "(m-1)/(N-m)"},
		{"S on K_2", s, graph.Pair(), allInputs, 2 * 1 * n, "ε"},
		{"S on ring(5)", s, ring5, allInputs, 2 * 5 * n, "ε"},
	}
	if opt.Quick {
		scenarios = scenarios[:3]
	}
	tb := table.New(fmt.Sprintf("T21: message complexity on the good run (N=%d)", n),
		"protocol", "send slots", "packets sent", "packets delivered", "ceiling", "U_s shape")
	ok := true
	for i, sc := range scenarios {
		r, err := sc.mkRun(sc.g)
		if err != nil {
			return nil, err
		}
		exec, err := sim.Execute(sc.p, sc.g, r, sim.SeedTapes(opt.Seed+uint64(i)))
		if err != nil {
			return nil, err
		}
		cost := exec.CommCost()
		tb.AddRow(sc.name, table.I(cost.SendSlots), table.I(cost.PacketsSent),
			table.I(cost.PacketsDelivered), table.I(sc.maxPackets), sc.unsafety)
		if cost.PacketsSent > sc.maxPackets {
			ok = false
		}
		if cost.SendSlots != 2*sc.g.NumEdges()*n {
			ok = false // the model's every-round send discipline
		}
		// The relays stay an order of magnitude below the flooders.
		if (sc.name == "A on K_2" || sc.name == "RingRelay on ring(5)") &&
			cost.PacketsSent > n {
			ok = false
		}
	}
	// Protocol S's packets are all of them: flooding = every slot a packet.
	sExec, err := sim.Execute(s, graph.Pair(), mustGoodPair(n), sim.SeedTapes(opt.Seed+9))
	if err != nil {
		return nil, err
	}
	if c := sExec.CommCost(); c.PacketsSent != c.SendSlots {
		ok = false
	}
	return &Result{
		ID:     "T21",
		Claim:  "optimality costs communication: S floods 2|E|·N packets where the fragile relays send O(N) — the unsafety window is the price of thrift",
		Tables: []*table.Table{tb},
		OK:     ok,
		Summary: "Protocol A and the ring relay each move at most one packet per round and pay for it with " +
			"unsafety windows the adversary can hit (1/(N-1), (m-1)/(N-m)); Protocol S fills every send " +
			"slot with full state and pins the window to one rfire unit. Within this model, information " +
			"redundancy is exactly what the ε bound is made of.",
	}, nil
}

func mustGoodPair(n int) *run.Run {
	r, err := run.Good(graph.Pair(), n, 1, 2)
	if err != nil {
		panic(err) // K_2 good runs cannot fail to build
	}
	return r
}
