package experiments

import (
	"fmt"
	"math"

	"coordattack/internal/baseline"
	"coordattack/internal/causality"
	"coordattack/internal/core"
	"coordattack/internal/graph"
	"coordattack/internal/protocol"
	"coordattack/internal/rng"
	"coordattack/internal/run"
	"coordattack/internal/sim"
	"coordattack/internal/stats"
	"coordattack/internal/table"
)

// T12Independence measures the engine of the second lower bound:
// Lemma A.2 (causal independence implies probabilistic independence of
// the attack events) and Lemma A.3 (an ε-attacker forces a causally
// independent peer to probability 0). The probe protocol is XORCoins,
// whose attack events are coin parities over each process's causal past;
// Protocol S supplies the Lemma A.3 half on the run R̃ of Lemma A.5.
func T12Independence(opt Options) (*Result, error) {
	opt = opt.withDefaults()
	ring, err := graph.Ring(4)
	if err != nil {
		return nil, err
	}
	coins := baseline.NewXORCoins()

	// Scenario 1 (independent): inputs at 1 and 2; the only delivery is
	// 3→2, so past(1) = {1} and past(2) = {2,3} are disjoint.
	indep := run.MustNew(3)
	indep.AddInput(1).AddInput(2)
	indep.MustDeliver(3, 2, 1)

	// Scenario 2 (entangled): the good run on K_2 — both generals hear
	// both coins, so their decisions are the same parity.
	pair := graph.Pair()
	entangled, err := run.Good(pair, 2, 1, 2)
	if err != nil {
		return nil, err
	}

	tb := table.New("T12: Lemma A.2 — causal independence ⇒ probabilistic independence (XORCoins probe)",
		"scenario", "causally indep?", "Pr[D_1]", "Pr[D_2]", "joint MC", "joint exact", "product", "|joint−product|")
	ok := true

	type scenario struct {
		name  string
		g     *graph.G
		r     *run.Run
		indep bool
	}
	for i, sc := range []scenario{
		{"disjoint pasts (ring 4)", ring, indep, true},
		{"good run (K_2)", pair, entangled, false},
	} {
		if got := causality.CausallyIndependent(sc.r, sc.g.NumVertices(), 1, 2); got != sc.indep {
			ok = false
		}
		p1, p2, joint, err := jointAttackFreq(coins, sc.g, sc.r, opt.Trials, opt.Seed+uint64(50+i))
		if err != nil {
			return nil, err
		}
		exact, err := baseline.AnalyzeXORCoins(sc.g.NumVertices(), sc.r)
		if err != nil {
			return nil, err
		}
		jointExact := exact.JointAttack(1, 2)
		product := p1 * p2
		gap := math.Abs(jointExact - exact.PAttack[1]*exact.PAttack[2])
		tb.AddRow(sc.name, fmt.Sprintf("%v", sc.indep),
			table.P(p1), table.P(p2), table.P(joint), table.P(jointExact), table.P(product), table.P(gap))
		if sc.indep && gap > 1e-12 {
			ok = false // Lemma A.2: exactly independent
		}
		if !sc.indep && gap < 0.2 {
			ok = false // entangled scenario must show strong correlation
		}
		radius, err := stats.HoeffdingRadius(opt.Trials, 1e-6)
		if err != nil {
			return nil, err
		}
		if math.Abs(joint-jointExact) > radius {
			ok = false // MC agrees with the exact enumeration
		}
	}

	// Lemma A.3 with Protocol S: on R̃ = {(v₀,1,0)} ∪ (messages avoiding
	// process 1), Pr[D_1|R̃] = ε while 1 and 2 are causally independent —
	// so agreement forces Pr[D_2|R̃] = 0.
	eps := 0.2
	s := core.MustS(eps)
	tilde := run.MustNew(3)
	tilde.AddInput(1)
	tilde.MustDeliver(2, 3, 1).MustDeliver(3, 2, 2)
	tri, err := graph.Complete(3)
	if err != nil {
		return nil, err
	}
	if !causality.CausallyIndependent(tilde, 3, 1, 2) {
		ok = false
	}
	a, err := s.Analyze(tri, tilde)
	if err != nil {
		return nil, err
	}
	tb2 := table.New(fmt.Sprintf("T12b: Lemma A.3 on R̃ (Protocol S, ε=%.2f)", eps),
		"process", "Pr[D_i|R̃] exact")
	tb2.AddRow("1", table.P(a.PAttack[1]))
	tb2.AddRow("2", table.P(a.PAttack[2]))
	tb2.AddRow("3", table.P(a.PAttack[3]))
	if !approxEqual(a.PAttack[1], eps, 1e-12) || a.PAttack[2] != 0 {
		ok = false
	}
	return &Result{
		ID:     "T12",
		Claim:  "Lemmas A.2/A.3: causal independence forces probabilistic independence, and an ε-attacker zeroes its causally independent peers",
		Tables: []*table.Table{tb, tb2},
		OK:     ok,
		Summary: "With disjoint causal pasts the measured joint attack frequency equals the product of " +
			"marginals; with shared pasts the events are strongly correlated. On the Lemma A.5 run, " +
			"process 1 attacks with probability exactly ε while its causally independent peer's " +
			"probability is exactly 0 — the mechanism behind the second lower bound.",
	}, nil
}

// jointAttackFreq estimates Pr[D_1], Pr[D_2], and Pr[D_1 ∧ D_2] from one
// shared sample, so the independence gap is not inflated by cross-sample
// noise.
func jointAttackFreq(p protocol.Protocol, g *graph.G, r *run.Run, trials int, seed uint64) (p1, p2, joint float64, err error) {
	stream := rng.NewStream(seed)
	var n1, n2, nBoth int
	for trial := 0; trial < trials; trial++ {
		outs, err := sim.Outputs(p, g, r, sim.StreamTapes(stream, uint64(trial)))
		if err != nil {
			return 0, 0, 0, err
		}
		if outs[1] {
			n1++
		}
		if outs[2] {
			n2++
		}
		if outs[1] && outs[2] {
			nBoth++
		}
	}
	n := float64(trials)
	return float64(n1) / n, float64(n2) / n, float64(nBoth) / n, nil
}
