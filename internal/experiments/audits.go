package experiments

import (
	"fmt"

	"coordattack/internal/checker"
	"coordattack/internal/core"
	"coordattack/internal/graph"
	"coordattack/internal/table"
)

func auditGraphs() ([]*graph.G, []string, error) {
	ring5, err := graph.Ring(5)
	if err != nil {
		return nil, nil, err
	}
	complete4, err := graph.Complete(4)
	if err != nil {
		return nil, nil, err
	}
	line4, err := graph.Line(4)
	if err != nil {
		return nil, nil, err
	}
	star5, err := graph.Star(5)
	if err != nil {
		return nil, nil, err
	}
	gs := []*graph.G{graph.Pair(), ring5, complete4, line4, star5}
	names := []string{"K_2", "ring(5)", "K_4", "line(4)", "star(5)"}
	return gs, names, nil
}

// T4LevelLemmas audits the pure-causality lemmas (4.2, 5.2, 6.1, 6.2) on
// random runs over assorted graphs.
func T4LevelLemmas(opt Options) (*Result, error) {
	opt = opt.withDefaults()
	runs := 400
	if opt.Quick {
		runs = 100
	}
	gs, names, err := auditGraphs()
	if err != nil {
		return nil, err
	}
	tb := table.New("T4: level lemma audits over random runs",
		"graph", "runs sampled", "checks", "violations")
	ok := true
	total := 0
	for i, g := range gs {
		rep, err := checker.LevelLemmas(g, checker.Config{
			Runs: runs, TapesPerRun: 1, Rounds: 5, Seed: opt.Seed + uint64(i),
		})
		if err != nil {
			return nil, err
		}
		tb.AddRow(names[i], table.I(runs), table.I(rep.Checked), table.I(len(rep.Violations)))
		total += rep.Checked
		if !rep.OK() {
			ok = false
		}
	}
	return &Result{
		ID:     "T4",
		Claim:  "Lemmas 4.2, 5.2, 6.1, 6.2: clipping preserves levels, ML tracks L within 1, processes within 1 of each other",
		Tables: []*table.Table{tb},
		OK:     ok,
		Summary: fmt.Sprintf("%d property checks across five topologies, zero violations: the causality "+
			"machinery satisfies every lemma the lower-bound proof leans on.", total),
	}, nil
}

// T5Invariants audits Protocol S itself: the Lemma 6.3 invariants, Lemma
// 6.4 count = ML per round, validity (Thm 6.5), agreement (Thm 6.7), and
// the tradeoff (Thms 5.4/6.8), all on random runs with the white-box
// checker.
func T5Invariants(opt Options) (*Result, error) {
	opt = opt.withDefaults()
	runs := 200
	if opt.Quick {
		runs = 60
	}
	gs, names, err := auditGraphs()
	if err != nil {
		return nil, err
	}
	s := core.MustS(0.2)
	tb := table.New("T5: Protocol S invariant audits (ε=0.2)",
		"graph", "audit", "checks", "violations")
	ok := true
	total := 0
	for i, g := range gs {
		cfg := checker.Config{Runs: runs, TapesPerRun: 2, Rounds: 5, Seed: opt.Seed + uint64(10+i)}
		audits := []struct {
			name string
			run  func() (*checker.Report, error)
		}{
			{"Lemma 6.3/6.4 (count=ML)", func() (*checker.Report, error) { return checker.Invariants(s, g, cfg) }},
			{"validity (Thm 6.5)", func() (*checker.Report, error) { return checker.Validity(s, g, cfg) }},
			{"agreement (Thm 6.7)", func() (*checker.Report, error) { return checker.AgreementS(s, g, cfg) }},
			{"tradeoff (Thm 5.4/6.8)", func() (*checker.Report, error) { return checker.Tradeoff(s, g, cfg) }},
			{"elementary (L.2.2/2.3)", func() (*checker.Report, error) { return checker.ElementaryBounds(s, g, cfg) }},
		}
		for _, a := range audits {
			rep, err := a.run()
			if err != nil {
				return nil, err
			}
			tb.AddRow(names[i], a.name, table.I(rep.Checked), table.I(len(rep.Violations)))
			total += rep.Checked
			if !rep.OK() {
				ok = false
			}
		}
	}
	return &Result{
		ID:     "T5",
		Claim:  "Lemma 6.3 invariants & Lemma 6.4 (count_i^r = ML_i^r): the protocol computes its run's modified level exactly",
		Tables: []*table.Table{tb},
		OK:     ok,
		Summary: fmt.Sprintf("%d white-box checks, zero violations — the invariant proofs the paper defers "+
			"to its full version hold on every sampled run and round.", total),
	}, nil
}
