package experiments

import (
	"fmt"

	"coordattack/internal/baseline"
	"coordattack/internal/core"
	"coordattack/internal/graph"
	"coordattack/internal/mc"
	"coordattack/internal/run"
	"coordattack/internal/table"
)

// T18RelayVsFlood is an extension experiment (our generalization, not the
// paper's): the natural m-general ring-relay descendant of Protocol A has
// a disagreement window m−1 rounds wide — U_s = (m−1)/(N−m) — because a
// single circulating token leaves a full lap of generals behind whenever
// it dies. Protocol S floods its full state every round, so its window
// stays one rfire-unit wide at any m. At matched unsafety budgets the
// comparison quantifies why the paper's protocol counts levels instead of
// passing tokens.
func T18RelayVsFlood(opt Options) (*Result, error) {
	opt = opt.withDefaults()
	const n = 40
	ms := []int{3, 5, 8}
	if opt.Quick {
		ms = ms[:2]
	}
	relay := baseline.NewRingRelay()
	tb := table.New(fmt.Sprintf("T18: ring relay vs Protocol S flooding (N=%d, good run, matched unsafety)", n),
		"m", "U_s(relay) exact", "U_s(relay) MC@worst", "relay liveness", "S liveness @ same ε", "S window width")
	ok := true
	for idx, m := range ms {
		g, err := graph.Ring(m)
		if err != nil {
			return nil, err
		}
		good, err := run.Good(g, n, 1)
		if err != nil {
			return nil, err
		}
		worst, err := baseline.WorstCutUnsafetyRingRelay(m, n)
		if err != nil {
			return nil, err
		}
		// Monte-Carlo confirmation on a worst cut.
		resWorst, err := mc.Estimate(mc.Config{
			Ctx:      opt.Ctx,
			Protocol: relay, Graph: g, Run: run.CutAt(good, n/2),
			Trials: opt.Trials, Seed: opt.Seed + uint64(idx),
		})
		if err != nil {
			return nil, err
		}
		relayGood, err := baseline.AnalyzeRingRelay(m, good)
		if err != nil {
			return nil, err
		}
		// Protocol S granted the same unsafety budget ε = U_s(relay).
		s, err := core.NewS(worst)
		if err != nil {
			return nil, err
		}
		sAnalysis, err := s.Analyze(g, good)
		if err != nil {
			return nil, err
		}
		tb.AddRow(table.I(m), table.P(worst), table.P(resWorst.PA.Mean()),
			table.P(relayGood.PTotal), table.P(sAnalysis.PTotal), "1 rfire unit")
		if relayGood.PTotal != 1 {
			ok = false
		}
		if consistent, err := resWorst.PA.Consistent(worst, 1e-6); err != nil || !consistent {
			ok = false
		}
		if sAnalysis.PPartial > worst+1e-12 {
			ok = false // S within the granted budget
		}
		if sAnalysis.PTotal < 1-1e-12 {
			ok = false // at ε = (m−1)/(N−m), ε·ML(good) ≥ 1 on these rings
		}
		if want := float64(m-1) / float64(n-m); !approxEqual(worst, want, 1e-12) {
			ok = false
		}
	}
	return &Result{
		ID:     "T18",
		Claim:  "extension: a relay token's disagreement window grows linearly with m; flooding (Protocol S) keeps it at one unit for any m",
		Tables: []*table.Table{tb},
		OK:     ok,
		Summary: "The ring-relay generalization of Protocol A pays (m−1)/(N−m) worst-case disagreement — " +
			"confirmed by exact analysis and Monte Carlo — while Protocol S, granted the same unsafety " +
			"budget, saturates liveness on the good run with its window still a single rfire unit. " +
			"Flooding full state is what makes the paper's optimal tradeoff scale with group size.",
	}, nil
}
