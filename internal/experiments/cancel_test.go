package experiments

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestExperimentCancelledMidRun: a slow experiment with a cancelled
// Options.Ctx stops at the next trial boundary instead of running its
// full Monte-Carlo budget, and surfaces the context error.
func TestExperimentCancelledMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(50*time.Millisecond, cancel)
	defer timer.Stop()
	defer cancel()

	// T8 sweeps five loss rates at Trials each; this budget would take
	// far longer than the cancellation delay.
	start := time.Now()
	_, err := T8WeakAdversary(Options{Trials: 2_000_000, Seed: 7, Ctx: ctx})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("cancelled experiment still ran %v", elapsed)
	}
}

// TestExperimentPreCancelledContext: an already-cancelled context stops
// the experiment before any meaningful work.
func TestExperimentPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := F1Tradeoff(Options{Quick: true, Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestExperimentNilContextRuns: the zero Options still runs to
// completion — context plumbing must not change default behavior.
func TestExperimentNilContextRuns(t *testing.T) {
	res, err := T2DropOne(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || !res.OK {
		t.Fatalf("result %+v", res)
	}
}
