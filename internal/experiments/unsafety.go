package experiments

import (
	"fmt"

	"coordattack/internal/adversary"
	"coordattack/internal/core"
	"coordattack/internal/graph"
	"coordattack/internal/mc"
	"coordattack/internal/table"
)

// T3UnsafetyS verifies Theorem 6.7 adversarially: searching the run space
// for the worst Pr[PA|R] of Protocol S recovers exactly ε and never more.
// Three searches are used — exhaustive where the space is enumerable,
// the structured family, and randomized hill-climbing — plus a
// Monte-Carlo confirmation of the worst run found.
func T3UnsafetyS(opt Options) (*Result, error) {
	opt = opt.withDefaults()
	type point struct {
		gname string
		g     *graph.G
		n     int
		eps   float64
	}
	ring4, err := graph.Ring(4)
	if err != nil {
		return nil, err
	}
	complete5, err := graph.Complete(5)
	if err != nil {
		return nil, err
	}
	points := []point{
		{"K_2", graph.Pair(), 2, 0.5},
		{"K_2", graph.Pair(), 8, 0.1},
		{"K_2", graph.Pair(), 16, 0.02},
		{"ring(4)", ring4, 6, 0.1},
		{"K_5", complete5, 5, 0.25},
	}
	if opt.Quick {
		points = points[:3]
	}
	tb := table.New("T3: adversary search for U_s(S)",
		"graph", "N", "ε", "method", "U found", "U MC at worst run", "target ε")
	ok := true
	for idx, pt := range points {
		s, err := core.NewS(pt.eps)
		if err != nil {
			return nil, err
		}
		obj := adversary.ExactSObjective(s, pt.g)

		var res *adversary.Result
		method := "hill-climb"
		if pt.g.NumVertices() == 2 && pt.n <= 3 {
			method = "exhaustive"
			res, err = adversary.Exhaustive(pt.g, pt.n, obj)
		} else {
			steps := 150
			if opt.Quick {
				steps = 60
			}
			res, err = adversary.HillClimb(pt.g, pt.n, obj, adversary.HillConfig{
				Restarts: 3, Steps: steps, Seed: opt.Seed + uint64(idx),
			})
		}
		if err != nil {
			return nil, err
		}
		est, err := mc.Estimate(mc.Config{
			Ctx:      opt.Ctx,
			Protocol: s, Graph: pt.g, Run: res.Run,
			Trials: opt.Trials, Seed: opt.Seed + uint64(100+idx),
		})
		if err != nil {
			return nil, err
		}
		tb.AddRow(pt.gname, table.I(pt.n), table.F(pt.eps, 3), method,
			table.P(res.Value), table.P(est.PA.Mean()), table.F(pt.eps, 3))
		if res.Value > pt.eps+1e-12 {
			ok = false // Theorem 6.7: never above ε
		}
		if !approxEqual(res.Value, pt.eps, 1e-9) {
			ok = false // tightness: the worst case exists
		}
		if consistent, err := est.PA.Consistent(pt.eps, 1e-6); err != nil || !consistent {
			ok = false
		}
	}
	return &Result{
		ID:     "T3",
		Claim:  "Thm 6.7: U_s(S) ≤ ε, and the bound is achieved (tight)",
		Tables: []*table.Table{tb},
		OK:     ok,
		Summary: fmt.Sprintf("Every search method tops out at exactly ε across graphs and horizons; "+
			"Monte Carlo on the discovered worst runs (%d trials) confirms the window the adversary "+
			"can hit is one rfire-unit wide.", opt.Trials),
	}, nil
}
