package experiments

import (
	"strings"
	"testing"
)

func quickOpt() Options { return Options{Quick: true, Trials: 4000, Seed: 2024} }

func TestAllExperimentsPassQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			res, err := e.Run(quickOpt())
			if err != nil {
				t.Fatalf("%s errored: %v", e.ID, err)
			}
			if res.ID != e.ID {
				t.Errorf("result id %q != experiment id %q", res.ID, e.ID)
			}
			if !res.OK {
				t.Errorf("%s FAILED its claim check:\n%s", e.ID, res.Render())
			}
			if len(res.Tables) == 0 {
				t.Errorf("%s produced no tables", e.ID)
			}
			if res.Claim == "" || res.Summary == "" {
				t.Errorf("%s missing claim or summary", e.ID)
			}
		})
	}
}

func TestAllHasExpectedIDs(t *testing.T) {
	want := []string{"T1", "T2", "F1", "T3", "F2", "T4", "T5", "T6", "T7", "T8", "T9", "T10", "T11", "T12", "T13", "T14", "T15", "T16", "T17", "T18", "T19", "T20", "T21"}
	got := All()
	if len(got) != len(want) {
		t.Fatalf("All has %d experiments, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.ID != want[i] {
			t.Errorf("All[%d] = %s, want %s", i, e.ID, want[i])
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("t3")
	if err != nil || e.ID != "T3" {
		t.Errorf("ByID(t3) = %v, %v", e.ID, err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestRenderAndMarkdown(t *testing.T) {
	res, err := T2DropOne(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	text := res.Render()
	for _, want := range []string{"T2", "PASS", "protocol", "liveness"} {
		if !strings.Contains(text, want) {
			t.Errorf("Render missing %q", want)
		}
	}
	md := res.Markdown()
	for _, want := range []string{"### T2", "*Verdict: PASS.*", "| protocol |"} {
		if !strings.Contains(md, want) {
			t.Errorf("Markdown missing %q:\n%s", want, md)
		}
	}
}

func TestFiguresHaveCharts(t *testing.T) {
	for _, id := range []string{"F1", "F2"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(quickOpt())
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Charts) == 0 {
			t.Errorf("%s has no chart", id)
		}
		if !strings.Contains(res.Render(), "x:") {
			t.Errorf("%s chart not rendered", id)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Trials != 20000 || o.Seed != 1992 {
		t.Errorf("defaults = %+v", o)
	}
	q := Options{Quick: true}.withDefaults()
	if q.Trials != 4000 {
		t.Errorf("quick default trials = %d", q.Trials)
	}
	keep := Options{Trials: 123, Seed: 9}.withDefaults()
	if keep.Trials != 123 || keep.Seed != 9 {
		t.Errorf("explicit options overridden: %+v", keep)
	}
}
