package experiments

import (
	"fmt"

	"coordattack/internal/baseline"
	"coordattack/internal/core"
	"coordattack/internal/graph"
	"coordattack/internal/run"
	"coordattack/internal/table"
)

// T10Amplification answers §3's first question the way §5 does: no, you
// cannot push Protocol A's unsafety below ≈1/N while keeping good-run
// liveness 1 — in particular not by running A several times. Each k-phase
// variant keeps liveness 1 on the good run but its worst-case unsafety is
// that of a single phase of length N/k, i.e. ≈ k/N: amplification moves
// *away* from the Theorem 5.4 frontier L/U ≤ L(R).
func T10Amplification(opt Options) (*Result, error) {
	opt = opt.withDefaults()
	n := 24
	ks := []int{1, 2, 4, 8}
	if opt.Quick {
		n = 12
		ks = []int{1, 2, 4}
	}
	g := graph.Pair()
	good, err := run.Good(g, n, 1, 2)
	if err != nil {
		return nil, err
	}
	tb := table.New(fmt.Sprintf("T10: amplification A×k on N=%d rounds", n),
		"protocol", "phases k", "L(good) exact", "worst-cut U exact", "L/U", "frontier N+1")
	ok := true
	var ratios []float64
	for _, k := range ks {
		for _, mode := range []baseline.CombineMode{baseline.CombineAll, baseline.CombineAny} {
			if k == 1 && mode == baseline.CombineAny {
				continue // identical to CombineAll for one phase
			}
			p, err := baseline.NewRepeatedA(k, mode)
			if err != nil {
				return nil, err
			}
			liveGood, err := baseline.AnalyzeRepeatedA(p, good)
			if err != nil {
				return nil, err
			}
			worstU := 0.0
			for cut := 1; cut <= n; cut++ {
				d, err := baseline.AnalyzeRepeatedA(p, run.CutAt(good, cut))
				if err != nil {
					return nil, err
				}
				if d.PPartial > worstU {
					worstU = d.PPartial
				}
			}
			ratio := core.LivenessOverUnsafety(liveGood.PTotal, worstU)
			ratios = append(ratios, ratio)
			tb.AddRow(p.Name(), table.I(k), table.P(liveGood.PTotal),
				table.P(worstU), table.F(ratio, 2), table.I(n+1))
			if liveGood.PTotal != 1 {
				ok = false // amplification keeps good-run liveness
			}
			if ratio > float64(n)+1+1e-9 {
				ok = false // Theorem 5.4 frontier
			}
			if k > 1 {
				phaseWorst := 1 / (float64(n)/float64(k) - 1)
				if worstU < phaseWorst-1e-9 {
					ok = false // unsafety at least one phase's worst case
				}
			}
		}
	}
	// The k=1 original must dominate every amplification.
	for _, r := range ratios[1:] {
		if r > ratios[0]+1e-9 {
			ok = false
		}
	}
	return &Result{
		ID:     "T10",
		Claim:  "§3/§5: running A several times cannot beat U ≈ 1/N with liveness 1 — the tradeoff is fundamental",
		Tables: []*table.Table{tb},
		OK:     ok,
		Summary: "Every A×k keeps liveness 1 on the good run but multiplies worst-case unsafety by ≈k, " +
			"so its L/U ratio falls k-fold below the single-run Protocol A — exactly the behaviour the " +
			"Theorem 5.4 lower bound predicts for any attempted amplification.",
	}, nil
}
