package experiments

import "encoding/json"

// jsonResult is the wire form of a Result for -json output.
type jsonResult struct {
	ID      string      `json:"id"`
	Claim   string      `json:"claim"`
	OK      bool        `json:"ok"`
	Summary string      `json:"summary"`
	Tables  []jsonTable `json:"tables"`
}

type jsonTable struct {
	Title   string     `json:"title"`
	Note    string     `json:"note,omitempty"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// JSON renders the result as machine-readable JSON (tables only; charts
// are a terminal affordance and are omitted).
func (r *Result) JSON() ([]byte, error) {
	out := jsonResult{
		ID:      r.ID,
		Claim:   r.Claim,
		OK:      r.OK,
		Summary: r.Summary,
		Tables:  make([]jsonTable, 0, len(r.Tables)),
	}
	for _, t := range r.Tables {
		out.Tables = append(out.Tables, jsonTable{
			Title:   t.Title,
			Note:    t.Note,
			Columns: t.Columns,
			Rows:    t.Rows,
		})
	}
	return json.MarshalIndent(out, "", "  ")
}
