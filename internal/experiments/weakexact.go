package experiments

import (
	"fmt"

	"coordattack/internal/adversary"
	"coordattack/internal/core"
	"coordattack/internal/graph"
	"coordattack/internal/mc"
	"coordattack/internal/table"
	"coordattack/internal/weak"
)

// T15WeakExact sharpens §8's "preliminary results" into exact numbers:
// on K_2, Protocol S's counters under iid loss form a small Markov chain
// (Lemma 6.2 pins them one apart), so expected liveness and expected
// disagreement under the weak adversary have closed forms. The table
// reports them against Monte-Carlo estimates of the real protocol, plus
// the deadline needed to saturate liveness — which grows only by a
// constant factor in the loss rate, not in ε.
func T15WeakExact(opt Options) (*Result, error) {
	opt = opt.withDefaults()
	const n = 25
	eps := 0.08
	g := graph.Pair()
	s, err := core.NewS(eps)
	if err != nil {
		return nil, err
	}
	tb := table.New(fmt.Sprintf("T15: exact weak-adversary analysis (K_2, N=%d, ε=%.2f)", n, eps),
		"loss p", "E[ML] exact", "liveness exact", "liveness MC", "disagree exact", "disagree MC")
	ok := true
	var xs, liveSeries, disagreeSeries []float64
	for i, p := range []float64{0, 0.02, 0.05, 0.1, 0.2, 0.4} {
		exact, err := weak.Exact(n, eps, p)
		if err != nil {
			return nil, err
		}
		res, err := mc.Estimate(mc.Config{
			Ctx:      opt.Ctx,
			Protocol: s, Graph: g,
			Sampler: adversary.WeakSampler(g, n, p, 1, 2),
			Trials:  opt.Trials, Seed: opt.Seed + uint64(i),
		})
		if err != nil {
			return nil, err
		}
		tb.AddRow(table.F(p, 2), table.F(exact.MeanMinCount, 2),
			table.P(exact.Liveness), table.P(res.TA.Mean()),
			table.P(exact.Disagreement), table.P(res.PA.Mean()))
		if consistent, err := res.TA.Consistent(exact.Liveness, 1e-6); err != nil || !consistent {
			ok = false
		}
		if consistent, err := res.PA.Consistent(exact.Disagreement, 1e-6); err != nil || !consistent {
			ok = false
		}
		if exact.Disagreement > eps+1e-12 {
			ok = false // expectation can never exceed the worst case
		}
		xs = append(xs, p)
		liveSeries = append(liveSeries, exact.Liveness)
		disagreeSeries = append(disagreeSeries, exact.Disagreement/eps)
	}
	chart := table.NewChart("T15: exact liveness (*) and disagreement/ε (o) vs loss p", xs)
	if err := chart.Add("liveness", '*', liveSeries); err != nil {
		return nil, err
	}
	if err := chart.Add("disagreement / ε", 'o', disagreeSeries); err != nil {
		return nil, err
	}

	tb2 := table.New(fmt.Sprintf("T15b: rounds to 99%% liveness (ε=%.2f)", eps),
		"loss p", "rounds needed", "vs lossless")
	base, err := weak.SaturationRounds(eps, 0, 0.99, 500)
	if err != nil {
		return nil, err
	}
	for _, p := range []float64{0, 0.05, 0.1, 0.2, 0.3} {
		need, err := weak.SaturationRounds(eps, p, 0.99, 500)
		if err != nil {
			return nil, err
		}
		tb2.AddRow(table.F(p, 2), table.I(need), table.F(float64(need)/float64(base), 2))
		if need > 4*base {
			ok = false // constant-factor slowdown, per §8's optimism
		}
	}
	return &Result{
		ID:     "T15",
		Claim:  "§8 sharpened: under iid loss the exact expected disagreement collapses below ε and the liveness deadline grows by a constant factor only",
		Tables: []*table.Table{tb, tb2},
		Charts: []*table.Chart{chart},
		OK:     ok,
		Summary: "The closed-form Markov-chain analysis of Protocol S's counters matches the simulated " +
			"protocol at every loss rate. Against the weak adversary the deadline for 99% liveness " +
			"stretches by ≈1/(1-p)², while the strong-adversary bound would demand 1/ε rounds per " +
			"unit of liveness regardless — randomness without aim barely hurts.",
	}, nil
}
