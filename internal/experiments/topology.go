package experiments

import (
	"fmt"

	"coordattack/internal/causality"
	"coordattack/internal/core"
	"coordattack/internal/graph"
	"coordattack/internal/run"
	"coordattack/internal/table"
)

// T9Topology maps how the information level — and with it Protocol S's
// liveness — grows across topologies. Levels rise roughly once per
// diameter's worth of rounds, so for a fixed horizon the complete graph
// dominates the ring, which dominates the line: redundancy buys liveness.
func T9Topology(opt Options) (*Result, error) {
	opt = opt.withDefaults()
	const m = 8
	n := 2 * m
	eps := 1.0 / float64(n)
	ring, err := graph.Ring(m)
	if err != nil {
		return nil, err
	}
	line, err := graph.Line(m)
	if err != nil {
		return nil, err
	}
	star, err := graph.Star(m)
	if err != nil {
		return nil, err
	}
	complete, err := graph.Complete(m)
	if err != nil {
		return nil, err
	}
	grid, err := graph.Grid(2, m/2)
	if err != nil {
		return nil, err
	}
	cube, err := graph.Hypercube(3)
	if err != nil {
		return nil, err
	}
	type topo struct {
		name string
		g    *graph.G
	}
	topos := []topo{
		{"complete", complete},
		{"hypercube(3)", cube},
		{"star", star},
		{"grid(2x4)", grid},
		{"ring", ring},
		{"line", line},
	}
	if opt.Quick {
		topos = []topo{{"complete", complete}, {"ring", ring}, {"line", line}}
	}
	s, err := core.NewS(eps)
	if err != nil {
		return nil, err
	}
	tb := table.New(fmt.Sprintf("T9: level growth by topology (m=%d, N=%d, ε=%.3g, good run)", m, n, eps),
		"topology", "|E|", "diameter", "ML(R_g)", "L(R_g)", "liveness exact", "bound ε·L")
	ok := true
	mls := make(map[string]int, len(topos))
	for _, tp := range topos {
		good, err := run.Good(tp.g, n, tp.g.Vertices()...)
		if err != nil {
			return nil, err
		}
		a, err := s.AnalyzeWith(tp.g, good, opt.Memo)
		if err != nil {
			return nil, err
		}
		tb.AddRow(tp.name, table.I(tp.g.NumEdges()), table.I(tp.g.Diameter()),
			table.I(a.ModMin), table.I(a.LevelMin), table.P(a.PTotal), table.P(a.Bound))
		mls[tp.name] = a.ModMin
		if a.PTotal > a.Bound+1e-12 {
			ok = false
		}
		// Sanity: levels need at least diameter rounds per increment
		// beyond the first, so ML ≤ N/diam + 1 (coarse ceiling).
		if d := tp.g.Diameter(); d > 0 && a.ModMin > n/d+2 {
			ok = false
		}
	}
	if mls["complete"] < mls["ring"] || mls["ring"] < mls["line"] {
		ok = false // denser graphs must not lose levels
	}

	// Second table: liveness vs N on the ring, showing the linear climb.
	tb2 := table.New("T9b: Protocol S liveness vs N on ring(8), ε=1/16, good run",
		"N", "ML(R_g)", "liveness exact")
	sweep := []int{8, 12, 16, 24, 32}
	if opt.Quick {
		sweep = []int{8, 16}
	}
	prevML := -1
	var xs, livenessSeries, mlSeries []float64
	for _, nn := range sweep {
		good, err := run.Good(ring, nn, ring.Vertices()...)
		if err != nil {
			return nil, err
		}
		ml, err := causality.RunModLevel(good, m)
		if err != nil {
			return nil, err
		}
		tb2.AddRow(table.I(nn), table.I(ml), table.P(core.LivenessExact(eps, ml)))
		xs = append(xs, float64(nn))
		mlSeries = append(mlSeries, float64(ml))
		livenessSeries = append(livenessSeries, core.LivenessExact(eps, ml))
		if ml < prevML {
			ok = false // monotone in N
		}
		prevML = ml
	}
	chart := table.NewChart("T9b: ring(8) level (*) and liveness×10 (+) vs N", xs)
	if err := chart.Add("ML(R_g)", '*', mlSeries); err != nil {
		return nil, err
	}
	scaled := make([]float64, len(livenessSeries))
	for i, v := range livenessSeries {
		scaled[i] = 10 * v
	}
	if err := chart.Add("liveness × 10", '+', scaled); err != nil {
		return nil, err
	}
	return &Result{
		ID:     "T9",
		Claim:  "levels (hence liveness per ε) grow with rounds and shrink with diameter: topology buys liveness",
		Tables: []*table.Table{tb, tb2},
		Charts: []*table.Chart{chart},
		OK:     ok,
		Summary: "On a fixed horizon the complete graph reaches the highest modified level and the line the " +
			"lowest; on a fixed ring the level climbs with N. Protocol S's liveness min(1, ε·ML) inherits " +
			"both trends, always below the Theorem 5.4 ceiling.",
	}, nil
}
