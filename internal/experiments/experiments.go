// Package experiments regenerates every quantitative claim of the paper
// as a measured experiment. The paper (a theory paper) has no numbered
// tables or figures; its evaluation is its theorems and worked examples.
// DESIGN.md §3 maps each claim to an experiment id:
//
//	T1  §3        U_s(A) = 1/(N-1), L(A, R_good) = 1
//	T2  §3        one dropped message kills Protocol A's liveness
//	F1  Thm 5.4   L(F,R) ≤ ε·L(R): the liveness/unsafety tradeoff
//	T3  Thm 6.7   U_s(S) ≤ ε, tight — by adversary search
//	F2  Thm 6.8   L(S,R) = min(1, ε·ML(R))
//	T4  L.6.1/6.2 level lemma audits
//	T5  L.6.3/6.4 Protocol S invariant audits
//	T6  Thm A.1   no protocol beats ε·ML(R) per unit of unsafety
//	T7  §1        deterministic CA impossible: constructive witness
//	T8  §8        weak adversary: vastly better in expectation
//	T9  model     level growth and liveness across topologies
//	T10 §3/§5     amplification (RepeatedA) cannot beat the tradeoff
//	T11 systems   loop and channel engines agree; throughput
//
// Each experiment returns a Result carrying tables (and charts for the
// F-series), a pass/fail verdict for the claim's *shape*, and a one-line
// summary. cmd/coordbench prints them; the root benchmarks time them;
// EXPERIMENTS.md records them.
package experiments

import (
	"context"
	"fmt"
	"strings"

	"coordattack/internal/causality"
	"coordattack/internal/table"
)

// Options tunes experiment fidelity.
type Options struct {
	// Trials is the Monte-Carlo budget per estimated point (default 20000).
	Trials int
	// Seed roots all randomness (default 1992, the paper's year).
	Seed uint64
	// Quick shrinks sweeps for use inside go test.
	Quick bool
	// Ctx, when non-nil, cancels the experiment mid-run: it is threaded
	// into every Monte-Carlo estimation, so a cancelled experiment stops
	// at the next trial boundary and returns the context error instead
	// of running its remaining sweep points. Nil means run to completion.
	Ctx context.Context
	// Memo, when non-nil, caches level/modified-level tables across
	// analyses keyed by run prefix: sweeps that revisit runs (the F1/F2
	// prefix ladders, multi-protocol scenario grids) and repeated
	// submissions through one service share the causality work. Results
	// are bit-identical with or without it. Safe for concurrent use.
	Memo *causality.Memo
}

func (o Options) withDefaults() Options {
	if o.Trials == 0 {
		o.Trials = 20000
		if o.Quick {
			o.Trials = 4000
		}
	}
	if o.Seed == 0 {
		o.Seed = 1992
	}
	return o
}

// Result is one experiment's output.
type Result struct {
	ID      string
	Claim   string
	Tables  []*table.Table
	Charts  []*table.Chart
	OK      bool
	Summary string
}

// Render formats the result for a terminal.
func (r *Result) Render() string {
	var b strings.Builder
	verdict := "PASS"
	if !r.OK {
		verdict = "FAIL"
	}
	fmt.Fprintf(&b, "### %s [%s] — %s\n", r.ID, verdict, r.Claim)
	for _, t := range r.Tables {
		b.WriteString(t.Render())
		b.WriteByte('\n')
	}
	for _, c := range r.Charts {
		b.WriteString(c.Render())
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%s\n", r.Summary)
	return b.String()
}

// Markdown formats the result for EXPERIMENTS.md.
func (r *Result) Markdown() string {
	var b strings.Builder
	verdict := "PASS"
	if !r.OK {
		verdict = "FAIL"
	}
	fmt.Fprintf(&b, "### %s — %s\n\n*Verdict: %s.* %s\n\n", r.ID, r.Claim, verdict, r.Summary)
	for _, t := range r.Tables {
		b.WriteString(t.Markdown())
		b.WriteByte('\n')
	}
	for _, c := range r.Charts {
		b.WriteString("```\n")
		b.WriteString(c.Render())
		b.WriteString("```\n\n")
	}
	return b.String()
}

// Experiment is a named experiment function.
type Experiment struct {
	ID  string
	Run func(Options) (*Result, error)
}

// All returns every experiment in report order.
func All() []Experiment {
	return []Experiment{
		{ID: "T1", Run: T1ProtocolA},
		{ID: "T2", Run: T2DropOne},
		{ID: "F1", Run: F1Tradeoff},
		{ID: "T3", Run: T3UnsafetyS},
		{ID: "F2", Run: F2LivenessS},
		{ID: "T4", Run: T4LevelLemmas},
		{ID: "T5", Run: T5Invariants},
		{ID: "T6", Run: T6SecondBound},
		{ID: "T7", Run: T7Impossibility},
		{ID: "T8", Run: T8WeakAdversary},
		{ID: "T9", Run: T9Topology},
		{ID: "T10", Run: T10Amplification},
		{ID: "T11", Run: T11Engines},
		{ID: "T12", Run: T12Independence},
		{ID: "T13", Run: T13Exhaustive},
		{ID: "T14", Run: T14Async},
		{ID: "T15", Run: T15WeakExact},
		{ID: "T16", Run: T16AltValidity},
		{ID: "T17", Run: T17Knowledge},
		{ID: "T18", Run: T18RelayVsFlood},
		{ID: "T19", Run: T19FireDistribution},
		{ID: "T20", Run: T20Certificates},
		{ID: "T21", Run: T21CommCost},
	}
}

// IDs returns every experiment id in report order. This is the engine
// registry the service layer (internal/service) dispatches through and
// serves at /v1/experiments.
func IDs() []string {
	all := All()
	ids := make([]string, len(all))
	for i, e := range all {
		ids[i] = e.ID
	}
	return ids
}

// ByID returns the experiment with the given id (case-insensitive).
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

func approxEqual(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}
