package experiments

import (
	"fmt"
	"math"

	"coordattack/internal/baseline"
	"coordattack/internal/core"
	"coordattack/internal/graph"
	"coordattack/internal/mc"
	"coordattack/internal/run"
	"coordattack/internal/table"
)

// F1Tradeoff regenerates the paper's central tradeoff as a figure:
// sweeping runs of increasing information level L(R) (prefixes of the
// good run), it plots the Theorem 5.4 ceiling ε·L(R), Protocol S's
// exact and measured liveness hugging the ceiling from below, and
// Protocol A's all-or-nothing liveness. The headline L/U ≤ N is the
// endpoint of the ceiling.
func F1Tradeoff(opt Options) (*Result, error) {
	opt = opt.withDefaults()
	n := 20
	if opt.Quick {
		n = 10
	}
	eps := 1.0 / float64(n) // ceiling reaches 1 exactly at L(R) = N
	g := graph.Pair()
	s, err := core.NewS(eps)
	if err != nil {
		return nil, err
	}
	good, err := run.Good(g, n, 1, 2)
	if err != nil {
		return nil, err
	}

	tb := table.New(fmt.Sprintf("F1: liveness vs information level (K_2, N=%d, ε=%.3g)", n, eps),
		"prefix k", "L(R)", "ML(R)", "bound ε·L(R)", "S exact", "S MC", "A exact", "L/U(S)")
	var xs, bound, sExactS, sMC, aSeries []float64
	ok := true
	for k := 0; k <= n; k++ {
		r := run.Prefix(good, k)
		a, err := s.AnalyzeWith(g, r, opt.Memo)
		if err != nil {
			return nil, err
		}
		res, err := mc.Estimate(mc.Config{
			Ctx:      opt.Ctx,
			Protocol: s, Graph: g, Run: r,
			Trials: opt.Trials, Seed: opt.Seed + uint64(k),
		})
		if err != nil {
			return nil, err
		}
		aDist, err := baseline.AnalyzeA(r)
		if err != nil {
			return nil, err
		}
		ratio := core.LivenessOverUnsafety(a.PTotal, core.UnsafetySup(eps, 0))
		tb.AddRow(table.I(k), table.I(a.LevelMin), table.I(a.ModMin),
			table.P(a.Bound), table.P(a.PTotal), table.P(res.TA.Mean()),
			table.P(aDist.PTotal), table.F(ratio, 2))
		xs = append(xs, float64(a.LevelMin))
		bound = append(bound, a.Bound)
		sExactS = append(sExactS, a.PTotal)
		sMC = append(sMC, res.TA.Mean())
		aSeries = append(aSeries, aDist.PTotal)

		if a.PTotal > a.Bound+1e-12 {
			ok = false // Theorem 5.4 must hold
		}
		if a.Bound-a.PTotal > eps+1e-12 {
			ok = false // S is within one ε of the ceiling (Lemma 6.1 gap)
		}
		if consistent, err := res.TA.Consistent(a.PTotal, 1e-6); err != nil || !consistent {
			ok = false
		}
		if ratio > float64(n)+1+1e-9 {
			ok = false // L/U ≤ L(R) ≤ N+1
		}
	}
	chart := table.NewChart("F1: liveness vs L(R) — ceiling (#), S exact (*), S MC (+), A (o)", xs)
	for _, sAdd := range []struct {
		name string
		sym  byte
		ys   []float64
	}{
		{"bound ε·L(R)", '#', bound},
		{"Protocol S exact", '*', sExactS},
		{"Protocol S MC", '+', sMC},
		{"Protocol A exact", 'o', aSeries},
	} {
		if err := chart.Add(sAdd.name, sAdd.sym, sAdd.ys); err != nil {
			return nil, err
		}
	}
	return &Result{
		ID:     "F1",
		Claim:  "Thm 5.4: L(F,R) ≤ U_s(F)·L(R) — liveness per unit unsafety is at most the information level, hence L/U ≤ N",
		Tables: []*table.Table{tb},
		Charts: []*table.Chart{chart},
		OK:     ok,
		Summary: "Protocol S tracks the ε·L(R) ceiling to within one ε at every level; " +
			"Protocol A is all-or-nothing (1 only on the full prefix, else 0). " +
			"The ratio L/U grows linearly in L(R) and saturates at the Theorem 5.4 ceiling.",
	}, nil
}

// F2LivenessS regenerates Theorem 6.8 as a figure: over runs with
// modified level ML(R) = 0..N, Protocol S's measured liveness equals
// min(1, ε·ML(R)) — exactly, not just in trend.
func F2LivenessS(opt Options) (*Result, error) {
	opt = opt.withDefaults()
	n := 16
	if opt.Quick {
		n = 8
	}
	eps := 2.0 / float64(n) // saturation visible at ML = N/2
	g := graph.Pair()
	s, err := core.NewS(eps)
	if err != nil {
		return nil, err
	}
	good, err := run.Good(g, n, 1, 2)
	if err != nil {
		return nil, err
	}
	tb := table.New(fmt.Sprintf("F2: Protocol S liveness vs ML(R) (K_2, N=%d, ε=%.3g)", n, eps),
		"ML(R)", "formula min(1,ε·ML)", "exact", "MC", "|MC−formula|")
	var xs, formula, measured []float64
	ok := true
	seen := map[int]bool{}
	for k := 0; k <= n; k++ {
		r := run.Prefix(good, k)
		a, err := s.AnalyzeWith(g, r, opt.Memo)
		if err != nil {
			return nil, err
		}
		if seen[a.ModMin] {
			continue // prefixes can repeat a level; one point per level
		}
		seen[a.ModMin] = true
		want := core.LivenessExact(eps, a.ModMin)
		res, err := mc.Estimate(mc.Config{
			Ctx:      opt.Ctx,
			Protocol: s, Graph: g, Run: r,
			Trials: opt.Trials, Seed: opt.Seed + uint64(100+k),
		})
		if err != nil {
			return nil, err
		}
		diff := math.Abs(res.TA.Mean() - want)
		tb.AddRow(table.I(a.ModMin), table.P(want), table.P(a.PTotal), table.P(res.TA.Mean()), table.P(diff))
		xs = append(xs, float64(a.ModMin))
		formula = append(formula, want)
		measured = append(measured, res.TA.Mean())
		if a.PTotal != want {
			ok = false
		}
		if consistent, err := res.TA.Consistent(want, 1e-6); err != nil || !consistent {
			ok = false
		}
	}
	chart := table.NewChart("F2: liveness vs ML(R) — formula (*), measured (+)", xs)
	if err := chart.Add("min(1, ε·ML)", '*', formula); err != nil {
		return nil, err
	}
	if err := chart.Add("measured", '+', measured); err != nil {
		return nil, err
	}
	return &Result{
		ID:     "F2",
		Claim:  "Thm 6.8: L(S,R) = min(1, ε·ML(R)) — liveness grows linearly with the run's modified level, then saturates",
		Tables: []*table.Table{tb},
		Charts: []*table.Chart{chart},
		OK:     ok,
		Summary: fmt.Sprintf("Measured liveness matches min(1, ε·ML(R)) at every sampled level "+
			"(Hoeffding-consistent at %d trials); the exact analysis matches to machine precision.", opt.Trials),
	}, nil
}
