package experiments

import (
	"fmt"

	"coordattack/internal/adversary"
	"coordattack/internal/baseline"
	"coordattack/internal/core"
	"coordattack/internal/graph"
	"coordattack/internal/mc"
	"coordattack/internal/run"
	"coordattack/internal/table"
)

// T1ProtocolA reproduces §3's quantities for Protocol A: liveness 1 on
// the good run, and worst-case unsafety exactly 1/(N-1), across a sweep
// of horizons. The unsafety column is found by adversary search (the
// structured family with the exact objective), not assumed.
func T1ProtocolA(opt Options) (*Result, error) {
	opt = opt.withDefaults()
	ns := []int{5, 10, 20, 50, 100}
	if opt.Quick {
		ns = []int{5, 10, 20}
	}
	g := graph.Pair()
	tb := table.New("T1: Protocol A — liveness and unsafety vs N",
		"N", "L(A,R_g) exact", "L(A,R_g) MC", "U_s(A) search", "U_s(A) MC", "1/(N-1)")
	ok := true
	for _, n := range ns {
		good, err := run.Good(g, n, 1, 2)
		if err != nil {
			return nil, err
		}
		exactGood, err := baseline.AnalyzeA(good)
		if err != nil {
			return nil, err
		}
		resGood, err := mc.Estimate(mc.Config{
			Ctx:      opt.Ctx,
			Protocol: baseline.NewA(), Graph: g, Run: good,
			Trials: opt.Trials, Seed: opt.Seed + uint64(n),
		})
		if err != nil {
			return nil, err
		}
		family, err := adversary.Structured(g, n)
		if err != nil {
			return nil, err
		}
		worst, err := adversary.SearchFamily(family, adversary.ExactAObjective())
		if err != nil {
			return nil, err
		}
		resWorst, err := mc.Estimate(mc.Config{
			Ctx:      opt.Ctx,
			Protocol: baseline.NewA(), Graph: g, Run: worst.Run,
			Trials: opt.Trials, Seed: opt.Seed + uint64(2*n),
		})
		if err != nil {
			return nil, err
		}
		paper, err := baseline.WorstCutUnsafetyA(n)
		if err != nil {
			return nil, err
		}
		tb.AddRow(table.I(n),
			table.P(exactGood.PTotal), table.P(resGood.TA.Mean()),
			table.P(worst.Value), table.P(resWorst.PA.Mean()),
			table.P(paper))
		if exactGood.PTotal != 1 || resGood.TA.Mean() != 1 {
			ok = false
		}
		if !approxEqual(worst.Value, paper, 1e-12) {
			ok = false
		}
		if consistent, err := resWorst.PA.Consistent(paper, 1e-6); err != nil || !consistent {
			ok = false
		}
	}
	return &Result{
		ID:     "T1",
		Claim:  "§3: U_s(A) = 1/(N-1) ≈ 1/N and L(A, R_good) = 1",
		Tables: []*table.Table{tb},
		OK:     ok,
		Summary: fmt.Sprintf("Adversary search over %d-round structured families recovers U_s(A) = 1/(N-1) exactly; "+
			"good-run liveness is 1 in both exact analysis and %d-trial Monte Carlo.", ns[len(ns)-1], opt.Trials),
	}, nil
}

// T2DropOne reproduces §3's second question: destroy exactly one message
// (process 1's round-2 packet) and Protocol A's liveness collapses to 0,
// while Protocol S retains liveness proportional to the information that
// still flows — the motivation for Protocol S.
func T2DropOne(opt Options) (*Result, error) {
	opt = opt.withDefaults()
	const n = 8
	eps := 0.1
	g := graph.Pair()
	good, err := run.Good(g, n, 1, 2)
	if err != nil {
		return nil, err
	}
	dropped := good.Clone().Drop(1, 2, 2)

	tb := table.New("T2: one destroyed message (1→2 in round 2), N=8, ε=0.1",
		"protocol", "messages delivered", "liveness exact", "liveness MC")

	aExact, err := baseline.AnalyzeA(dropped)
	if err != nil {
		return nil, err
	}
	aRes, err := mc.Estimate(mc.Config{
		Ctx:      opt.Ctx,
		Protocol: baseline.NewA(), Graph: g, Run: dropped,
		Trials: opt.Trials, Seed: opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	s := core.MustS(eps)
	sExact, err := s.Analyze(g, dropped)
	if err != nil {
		return nil, err
	}
	sRes, err := mc.Estimate(mc.Config{
		Ctx:      opt.Ctx,
		Protocol: s, Graph: g, Run: dropped,
		Trials: opt.Trials, Seed: opt.Seed + 1,
	})
	if err != nil {
		return nil, err
	}
	tb.AddRow("A", table.I(dropped.NumDeliveries()), table.P(aExact.PTotal), table.P(aRes.TA.Mean()))
	tb.AddRow(s.Name(), table.I(dropped.NumDeliveries()), table.P(sExact.PTotal), table.P(sRes.TA.Mean()))

	ok := aExact.PTotal == 0 && aRes.TA.Mean() == 0 && sExact.PTotal > 0
	if consistent, err := sRes.TA.Consistent(sExact.PTotal, 1e-6); err != nil || !consistent {
		ok = false
	}
	return &Result{
		ID:     "T2",
		Claim:  "§3: with all but one message delivered, L(A,R) = 0; Protocol S's liveness grows with delivered information",
		Tables: []*table.Table{tb},
		OK:     ok,
		Summary: fmt.Sprintf("Protocol A dies on a single early loss (liveness 0 of %d delivered messages); "+
			"Protocol S still attacks with probability %.3f = ε·ML(R).", dropped.NumDeliveries(), sExact.PTotal),
	}, nil
}
