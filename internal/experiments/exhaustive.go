package experiments

import (
	"fmt"

	"coordattack/internal/baseline"
	"coordattack/internal/core"
	"coordattack/internal/graph"
	"coordattack/internal/run"
	"coordattack/internal/stats"
	"coordattack/internal/table"
)

// T13Exhaustive removes sampling from the picture entirely: on K_2 with
// N = 3 it enumerates every run the strong adversary can choose (all
// input subsets × all 2^6 delivery patterns = 256 runs) and checks, on
// every single one, Theorem 5.4 (liveness ≤ ε·L(R)), Theorem 6.7
// (Pr[PA|R] ≤ ε), Theorem 6.8 (liveness = min(1, ε·ML(R))), Lemma 6.1
// (L-1 ≤ ML ≤ L), and Protocol A's exact distribution. The suprema over
// the whole space are reported — these are U_s by definition, not by
// search.
func T13Exhaustive(opt Options) (*Result, error) {
	opt = opt.withDefaults()
	const n = 3
	eps := 0.25
	g := graph.Pair()
	s, err := core.NewS(eps)
	if err != nil {
		return nil, err
	}

	var (
		runsTotal   int
		violations  int
		maxPAS      float64
		maxPAA      float64
		mlHist      stats.IntHistogram
		maxRatio    float64
		worstSRunID string
	)
	err = run.Enumerate(g, n, nil, func(r *run.Run) error {
		runsTotal++
		a, err := s.Analyze(g, r)
		if err != nil {
			return err
		}
		mlHist.Add(a.ModMin)
		if a.PTotal > a.Bound+1e-12 {
			violations++ // Theorem 5.4
		}
		if a.PPartial > eps+1e-12 {
			violations++ // Theorem 6.7
		}
		if want := core.LivenessExact(eps, a.ModMin); a.PTotal != want {
			violations++ // Theorem 6.8
		}
		for i := 1; i <= 2; i++ {
			if a.ModLevels[i] > a.Levels[i] || a.ModLevels[i] < a.Levels[i]-1 {
				violations++ // Lemma 6.1
			}
		}
		if a.PPartial > maxPAS {
			maxPAS = a.PPartial
			worstSRunID = r.String()
		}
		if ratio := core.LivenessOverUnsafety(a.PTotal, eps); ratio > maxRatio {
			maxRatio = ratio
		}
		d, err := baseline.AnalyzeA(r)
		if err != nil {
			return err
		}
		if sum := d.PTotal + d.PPartial + d.PNone; !approxEqual(sum, 1, 1e-9) {
			violations++
		}
		if d.PPartial > maxPAA {
			maxPAA = d.PPartial
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	wantRuns := 4 * 64 // 2^2 input sets × 2^(2·3) delivery patterns
	worstA, err := baseline.WorstCutUnsafetyA(n)
	if err != nil {
		return nil, err
	}

	tb := table.New(fmt.Sprintf("T13: exhaustive verification on K_2, N=%d, ε=%.2f (%d runs)", n, eps, runsTotal),
		"quantity", "value", "paper")
	tb.AddRow("runs enumerated", table.I(runsTotal), table.I(wantRuns))
	tb.AddRow("claim violations", table.I(violations), "0")
	tb.AddRow("sup_R Pr[PA|R] for S  (= U_s(S))", table.P(maxPAS), table.P(eps))
	tb.AddRow("sup_R Pr[PA|R] for A  (= U_s(A))", table.P(maxPAA), table.P(worstA))
	tb.AddRow("max L(S,R)/ε over runs", table.F(maxRatio, 3), fmt.Sprintf("≤ %d (N+1)", n+1))

	tb2 := table.New("T13b: run census by ML(R)", "ML(R)", "runs", "L(S,R) = min(1, ε·ML)")
	for _, ml := range mlHist.Values() {
		tb2.AddRow(table.I(ml), table.I(mlHist.Count(ml)), table.P(core.LivenessExact(eps, ml)))
	}

	ok := runsTotal == wantRuns &&
		violations == 0 &&
		approxEqual(maxPAS, eps, 1e-12) &&
		approxEqual(maxPAA, worstA, 1e-12) &&
		maxRatio <= float64(n+1)+1e-9
	return &Result{
		ID:     "T13",
		Claim:  "every theorem holds on every run of the enumerated strong-adversary space; U_s values are suprema over the whole space",
		Tables: []*table.Table{tb, tb2},
		OK:     ok,
		Summary: fmt.Sprintf("All %d runs of the K_2, N=%d space verified with zero violations; "+
			"the suprema U_s(S) = ε and U_s(A) = 1/(N-1) are attained, and no run pushes L/U past "+
			"the Theorem 5.4 frontier. Worst run for S: %s.", runsTotal, n, worstSRunID),
	}, nil
}
