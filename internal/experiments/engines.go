package experiments

import (
	"fmt"
	"time"

	"coordattack/internal/core"
	"coordattack/internal/graph"
	"coordattack/internal/rng"
	"coordattack/internal/run"
	"coordattack/internal/sim"
	"coordattack/internal/table"
)

// T11Engines cross-checks the two execution engines — the sequential loop
// engine and the goroutine-per-general channel engine — on identical
// (run, α) pairs, and reports their relative throughput. Equality here is
// what licenses using the fast loop engine for every Monte-Carlo column
// in the other experiments.
func T11Engines(opt Options) (*Result, error) {
	opt = opt.withDefaults()
	executions := 400
	if opt.Quick {
		executions = 100
	}
	ring, err := graph.Ring(6)
	if err != nil {
		return nil, err
	}
	complete, err := graph.Complete(8)
	if err != nil {
		return nil, err
	}
	type scenario struct {
		name string
		g    *graph.G
		n    int
	}
	scenarios := []scenario{
		{"K_2, N=16", graph.Pair(), 16},
		{"ring(6), N=12", ring, 12},
		{"K_8, N=8", complete, 8},
	}
	if opt.Quick {
		scenarios = scenarios[:2]
	}
	s := core.MustS(0.1)
	tb := table.New("T11: engine equivalence and throughput (Protocol S)",
		"scenario", "executions", "agreements", "loop µs/exec", "channel µs/exec")
	ok := true
	for si, sc := range scenarios {
		runTape := rng.NewTape(opt.Seed + uint64(si))
		agree := 0
		var loopNS, concNS int64
		for trial := 0; trial < executions; trial++ {
			r, err := run.RandomSubset(sc.g, sc.n, runTape)
			if err != nil {
				return nil, err
			}
			tapes := sim.SeedTapes(opt.Seed + uint64(trial))
			t0 := time.Now()
			loop, err := sim.Outputs(s, sc.g, r, tapes)
			if err != nil {
				return nil, err
			}
			loopNS += time.Since(t0).Nanoseconds()
			t1 := time.Now()
			conc, err := sim.ConcurrentOutputs(s, sc.g, r, tapes)
			if err != nil {
				return nil, err
			}
			concNS += time.Since(t1).Nanoseconds()
			same := true
			for i := range loop {
				if loop[i] != conc[i] {
					same = false
				}
			}
			if same {
				agree++
			}
		}
		if agree != executions {
			ok = false
		}
		tb.AddRow(sc.name, table.I(executions), table.I(agree),
			table.F(float64(loopNS)/float64(executions)/1e3, 1),
			table.F(float64(concNS)/float64(executions)/1e3, 1))
	}
	return &Result{
		ID:     "T11",
		Claim:  "both engines realize the same §2 semantics; the loop engine is the fast path",
		Tables: []*table.Table{tb},
		OK:     ok,
		Summary: fmt.Sprintf("Across %d random (run, α) pairs per scenario the loop and channel engines "+
			"agreed on every output bit; the sequential engine's speed advantage is what every "+
			"Monte-Carlo column in this report rides on.", executions),
	}, nil
}
