package experiments

import (
	"testing"

	"coordattack/internal/causality"
)

// TestMemoExploitedByScenarioGrid pins that Options.Memo is actually
// consulted: T16 analyzes the same three runs under two protocols, so
// the second protocol's level tables must come from the cache (tables
// depend only on the run, never the protocol).
func TestMemoExploitedByScenarioGrid(t *testing.T) {
	memo := causality.NewMemo()
	opt := Options{Quick: true, Trials: 100, Memo: memo}
	if _, err := T16AltValidity(opt); err != nil {
		t.Fatal(err)
	}
	st := memo.Stats()
	if st.Misses == 0 {
		t.Fatal("experiment never consulted the memo")
	}
	if st.Hits < 6 {
		t.Errorf("memo hits = %d, want ≥ 6 (3 scenarios × {L, ML} for the second protocol)", st.Hits)
	}
}

// TestMemoRepeatedSubmissionHitsAndIdenticalResults mirrors the service
// shape: one memo lives across job submissions. A re-run of the same
// experiment must be served from cache and render identically to a
// memo-less run.
func TestMemoRepeatedSubmissionHitsAndIdenticalResults(t *testing.T) {
	memo := causality.NewMemo()
	opt := Options{Quick: true, Trials: 100, Memo: memo}
	first, err := F1Tradeoff(opt)
	if err != nil {
		t.Fatal(err)
	}
	afterFirst := memo.Stats()
	second, err := F1Tradeoff(opt)
	if err != nil {
		t.Fatal(err)
	}
	afterSecond := memo.Stats()
	if afterSecond.Misses != afterFirst.Misses {
		t.Errorf("second submission recomputed %d tables; want all from cache",
			afterSecond.Misses-afterFirst.Misses)
	}
	if gained := afterSecond.Hits - afterFirst.Hits; gained == 0 {
		t.Error("second submission never hit the memo")
	}
	plain, err := F1Tradeoff(Options{Quick: true, Trials: 100})
	if err != nil {
		t.Fatal(err)
	}
	if first.Render() != plain.Render() || second.Render() != plain.Render() {
		t.Error("memoized results differ from memo-less results")
	}
}
