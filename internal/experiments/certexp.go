package experiments

import (
	"fmt"

	"coordattack/internal/core"
	"coordattack/internal/graph"
	"coordattack/internal/lowerbound"
	"coordattack/internal/rng"
	"coordattack/internal/run"
	"coordattack/internal/stats"
	"coordattack/internal/table"
)

// T20Certificates replays the Theorem 5.4 proof — the Lemma 5.3 chain of
// clip-and-descend steps — on every run of an enumerable space and on
// sampled larger instances, verifying each step numerically (Lemma 4.2's
// indistinguishability, Lemma 5.2's witness, Lemma 2.2's window charge).
// The proof of the paper's central bound is thereby exercised as code on
// thousands of concrete cases, not read as prose.
func T20Certificates(opt Options) (*Result, error) {
	opt = opt.withDefaults()
	eps := 0.2
	s, err := core.NewS(eps)
	if err != nil {
		return nil, err
	}
	tb := table.New("T20: Theorem 5.4 certificates, replayed and verified",
		"space", "certificates", "failed", "mean chain length", "max chain length")
	ok := true

	// Exhaustive: every (run, process) pair of K_2, N=2.
	g := graph.Pair()
	var chainLens stats.IntHistogram
	failures := 0
	count := 0
	err = run.Enumerate(g, 2, nil, func(r *run.Run) error {
		for i := graph.ProcID(1); i <= 2; i++ {
			cert, cerr := lowerbound.Certify(s, g, r, i)
			count++
			if cerr != nil {
				failures++
				return nil
			}
			chainLens.Add(len(cert.Steps))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	maxLen := 0
	for _, v := range chainLens.Values() {
		if v > maxLen {
			maxLen = v
		}
	}
	tb.AddRow("K_2, N=2 (all runs)", table.I(count), table.I(failures),
		table.F(chainLens.Mean(), 2), table.I(maxLen))
	if failures > 0 {
		ok = false
	}

	// Sampled: ring(4), N=5.
	ring, err := graph.Ring(4)
	if err != nil {
		return nil, err
	}
	samples := 150
	if opt.Quick {
		samples = 50
	}
	var ringLens stats.IntHistogram
	ringFailures, ringCount := 0, 0
	tape := rng.NewTape(opt.Seed + 0x20)
	for trial := 0; trial < samples; trial++ {
		r, err := run.RandomSubset(ring, 5, tape)
		if err != nil {
			return nil, err
		}
		for i := graph.ProcID(1); i <= 4; i++ {
			cert, cerr := lowerbound.Certify(s, ring, r, i)
			ringCount++
			if cerr != nil {
				ringFailures++
				continue
			}
			ringLens.Add(len(cert.Steps))
		}
	}
	ringMax := 0
	for _, v := range ringLens.Values() {
		if v > ringMax {
			ringMax = v
		}
	}
	tb.AddRow("ring(4), N=5 (sampled)", table.I(ringCount), table.I(ringFailures),
		table.F(ringLens.Mean(), 2), table.I(ringMax))
	if ringFailures > 0 {
		ok = false
	}
	return &Result{
		ID:     "T20",
		Claim:  "Lemma 5.3's induction verifies numerically on every certificate: clip preserves i's view, a witness always drops a level, each level costs at most one ε window",
		Tables: []*table.Table{tb},
		OK:     ok,
		Summary: fmt.Sprintf("%d certificates replayed with zero failures — every chain walks its run down "+
			"to level 0 where validity zeroes the attack probability, certifying Pr[D_i|R] ≤ ε·L_i(R) "+
			"case by case.", count+ringCount),
	}, nil
}
