package experiments

import (
	"fmt"

	"coordattack/internal/baseline"
	"coordattack/internal/graph"
	"coordattack/internal/impossibility"
	"coordattack/internal/protocol"
	"coordattack/internal/sim"
	"coordattack/internal/table"
)

// T7Impossibility makes §1's impossibility citation constructive: for
// each deterministic baseline, the chain argument walks from the good run
// (total attack) toward the empty run (validity forces silence) and
// returns the first run on which the protocol disagrees with itself.
func T7Impossibility(opt Options) (*Result, error) {
	opt = opt.withDefaults()
	ring, err := graph.Ring(4)
	if err != nil {
		return nil, err
	}
	thr, err := baseline.NewDetThreshold(1, 2)
	if err != nil {
		return nil, err
	}
	type victim struct {
		gname string
		g     *graph.G
		n     int
		p     protocol.Protocol
	}
	victims := []victim{
		{"K_2", graph.Pair(), 4, baseline.NewDetFullInfo()},
		{"K_2", graph.Pair(), 6, thr},
		{"ring(4)", ring, 4, baseline.NewDetFullInfo()},
	}
	if opt.Quick {
		victims = victims[:2]
	}
	tb := table.New("T7: chain argument — constructive disagreement for deterministic protocols",
		"graph", "protocol", "N", "chain steps", "witness |M|", "witness outputs")
	ok := true
	for _, v := range victims {
		viol, err := impossibility.FindViolation(v.p, v.g, v.n)
		if err != nil {
			return nil, fmt.Errorf("experiments: chain argument on %s: %w", v.p.Name(), err)
		}
		// Independently reproduce the disagreement.
		oc, err := sim.Outcome(v.p, v.g, viol.Run, sim.SeedTapes(opt.Seed))
		if err != nil {
			return nil, err
		}
		if oc != protocol.PartialAttack {
			ok = false
		}
		tb.AddRow(v.gname, v.p.Name(), table.I(v.n),
			table.I(viol.Steps), table.I(viol.Run.NumDeliveries()), fmt.Sprintf("%v", viol.Outputs[1:]))
	}
	return &Result{
		ID:     "T7",
		Claim:  "§1 ([G],[HM]): no deterministic protocol satisfies validity + agreement + nontriviality",
		Tables: []*table.Table{tb},
		OK:     ok,
		Summary: "For every deterministic baseline the chain argument terminates with an explicit run on " +
			"which the protocol partially attacks — the impossibility that motivates randomization.",
	}, nil
}
