package experiments

import (
	"fmt"

	"coordattack/internal/adversary"
	"coordattack/internal/causality"
	"coordattack/internal/core"
	"coordattack/internal/graph"
	"coordattack/internal/mc"
	"coordattack/internal/rng"
	"coordattack/internal/run"
	"coordattack/internal/stats"
	"coordattack/internal/table"
)

// T8WeakAdversary measures §8's closing remark: against a weak
// (probabilistic) adversary that loses each message independently with
// probability p, Protocol S performs vastly better than its worst case —
// expected modified levels stay near N, liveness stays near 1, and the
// expected disagreement probability is far below ε, because random loss
// almost never lands rfire in the one-unit window that a strong adversary
// targets deliberately.
func T8WeakAdversary(opt Options) (*Result, error) {
	opt = opt.withDefaults()
	eps := 0.1
	n := 30
	mlSamples := 300
	if opt.Quick {
		n = 16
		mlSamples = 100
	}
	g := graph.Pair()
	s, err := core.NewS(eps)
	if err != nil {
		return nil, err
	}
	ps := []float64{0, 0.01, 0.05, 0.1, 0.3}
	tb := table.New(fmt.Sprintf("T8: Protocol S under the weak adversary (K_2, N=%d, ε=%.3g)", n, eps),
		"loss p", "E[ML(R)]", "liveness MC", "disagreement MC", "worst-case ε")
	ok := true
	for i, p := range ps {
		res, err := mc.Estimate(mc.Config{
			Ctx:      opt.Ctx,
			Protocol: s, Graph: g,
			Sampler: adversary.WeakSampler(g, n, p, 1, 2),
			Trials:  opt.Trials, Seed: opt.Seed + uint64(i),
		})
		if err != nil {
			return nil, err
		}
		// Expected modified level of sampled runs, estimated separately.
		var mlStats stats.Running
		mlTape := rng.NewTape(opt.Seed + uint64(1000+i))
		for t := 0; t < mlSamples; t++ {
			r, err := run.RandomLoss(g, n, p, mlTape, 1, 2)
			if err != nil {
				return nil, err
			}
			ml, err := causality.RunModLevel(r, 2)
			if err != nil {
				return nil, err
			}
			mlStats.Add(float64(ml))
		}
		tb.AddRow(table.F(p, 2), table.F(mlStats.Mean(), 1),
			table.P(res.TA.Mean()), table.P(res.PA.Mean()), table.F(eps, 3))
		if res.PA.Mean() > eps+1e-9 {
			ok = false // expected disagreement can never exceed the worst case
		}
		if p <= 0.05 && res.TA.Mean() < 0.95 {
			ok = false // near-lossless: liveness ≈ 1
		}
		if p <= 0.1 && res.PA.Mean() > eps/2 {
			ok = false // "vastly better": well under the strong-adversary ε
		}
	}
	return &Result{
		ID:     "T8",
		Claim:  "§8: against a weak (iid-loss) adversary, performance is vastly better than the strong-adversary tradeoff",
		Tables: []*table.Table{tb},
		OK:     ok,
		Summary: "Random loss keeps ML(R) near N, so liveness saturates at 1 for realistic loss rates, " +
			"while the expected disagreement sits an order of magnitude below the worst-case ε: " +
			"the adversary's power in the lower bound is its *aim*, not its loss volume.",
	}, nil
}
