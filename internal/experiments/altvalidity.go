package experiments

import (
	"fmt"

	"coordattack/internal/core"
	"coordattack/internal/graph"
	"coordattack/internal/mc"
	"coordattack/internal/run"
	"coordattack/internal/table"
)

// T16AltValidity exercises footnote 1 of the paper: the alternative
// validity condition "if no messages are delivered, then no general
// attacks", which the authors note their results can be modified to fit.
// The modification implemented here draws rfire from (1, 1+1/ε], so an
// attack needs count ≥ 2 — impossible without a delivered message. The
// experiment verifies the variant S′ satisfies the alternative condition
// (which the paper's S does not), keeps U_s ≤ ε, and pays exactly one
// level of liveness everywhere.
func T16AltValidity(opt Options) (*Result, error) {
	opt = opt.withDefaults()
	eps := 0.1
	const n = 10
	g := graph.Pair()
	s, err := core.NewS(eps)
	if err != nil {
		return nil, err
	}
	sAlt, err := core.NewSAltValidity(eps)
	if err != nil {
		return nil, err
	}

	good, err := run.Good(g, n, 1, 2)
	if err != nil {
		return nil, err
	}
	silentWithInput, err := run.Silent(n, 1)
	if err != nil {
		return nil, err
	}
	halfway := run.Prefix(good, n/2)

	tb := table.New(fmt.Sprintf("T16: footnote 1 — alternative validity (K_2, N=%d, ε=%.2f)", n, eps),
		"run", "protocol", "ML(R)", "liveness exact", "liveness MC", "Pr[PA] exact")
	ok := true
	scenarios := []struct {
		name string
		r    *run.Run
	}{
		{"good", good},
		{"silent, input at 1", silentWithInput},
		{"prefix N/2", halfway},
	}
	for i, sc := range scenarios {
		for j, p := range []*core.S{s, sAlt} {
			a, err := p.AnalyzeWith(g, sc.r, opt.Memo)
			if err != nil {
				return nil, err
			}
			res, err := mc.Estimate(mc.Config{
				Ctx:      opt.Ctx,
				Protocol: p, Graph: g, Run: sc.r,
				Trials: opt.Trials, Seed: opt.Seed + uint64(i*10+j),
			})
			if err != nil {
				return nil, err
			}
			tb.AddRow(sc.name, p.Name(), table.I(a.ModMin),
				table.P(a.PTotal), table.P(res.TA.Mean()), table.P(a.PPartial))
			if consistent, err := res.TA.Consistent(a.PTotal, 1e-6); err != nil || !consistent {
				ok = false
			}
			if a.PPartial > eps+1e-12 {
				ok = false
			}
			// The defining difference: on the message-free run the
			// paper's S partially attacks with probability ε; S′ is
			// silent.
			if sc.name == "silent, input at 1" {
				if p.FireFloor() == 0 && !approxEqual(a.PPartial, eps, 1e-12) {
					ok = false
				}
				if p.FireFloor() == 1 && (a.PPartial != 0 || res.PA.Mean() != 0) {
					ok = false
				}
			}
			// And the cost: one level of liveness, everywhere.
			if p.FireFloor() == 1 {
				if want := core.LivenessExact(eps, a.ModMin-1); !approxEqual(a.PTotal, want, 1e-12) {
					ok = false
				}
			}
		}
	}
	return &Result{
		ID:     "T16",
		Claim:  "footnote 1: the results adapt to the alternative validity condition — S′ never attacks without a delivered message, at a cost of one ε of liveness",
		Tables: []*table.Table{tb},
		OK:     ok,
		Summary: "Shifting rfire's range by one unit converts Protocol S to the alternative validity " +
			"condition: the message-free run becomes perfectly silent (the paper's S risks ε there), " +
			"agreement is untouched, and liveness drops by exactly ε·1 on every run — the footnote's " +
			"\"results can be modified\", made precise.",
	}, nil
}
