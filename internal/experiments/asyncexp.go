package experiments

import (
	"fmt"

	"coordattack/internal/async"
	"coordattack/internal/core"
	"coordattack/internal/graph"
	"coordattack/internal/rng"
	"coordattack/internal/stats"
	"coordattack/internal/table"
)

// T14Async realizes §8's remark that the results extend to an
// asynchronous model: processes run on a timeout synchronizer over a
// network with adversarial latencies, each execution *induces* a
// synchronous run, and the paper's theorems apply to the induced run.
// The experiment sweeps the synchronizer timeout τ against a fixed
// latency distribution: agreement never degrades (PA ≤ ε on every
// induced run — latency is a liveness attack, not a safety one), while
// liveness rises with τ as more messages beat their deadlines.
func T14Async(opt Options) (*Result, error) {
	opt = opt.withDefaults()
	samples := 150
	if opt.Quick {
		samples = 50
	}
	const (
		n     = 12
		eps   = 0.1
		latLo = 1
		latHi = 5
		dropP = 0.05
	)
	g, err := graph.Ring(4)
	if err != nil {
		return nil, err
	}
	s, err := core.NewS(eps)
	if err != nil {
		return nil, err
	}
	inputs := g.Vertices()

	tb := table.New(fmt.Sprintf("T14: async reduction on ring(4), N=%d, ε=%.2f, latency U[%d,%d], drop %.2f",
		n, eps, latLo, latHi, dropP),
		"timeout τ", "E[ML(induced)]", "E[liveness]", "max Pr[PA|induced]", "ε")
	ok := true
	prevML := -1.0
	latRoot := rng.NewTape(opt.Seed + 0xa5)
	for _, tau := range []int{1, 2, 3, 5, 8} {
		var mlStats, liveStats stats.Running
		maxPA := 0.0
		for trial := 0; trial < samples; trial++ {
			lat, err := async.RandomLatency(latLo, latHi, dropP,
				latRoot.Fork(uint64(tau*10000+trial)))
			if err != nil {
				return nil, err
			}
			induced, _, err := async.InducedRun(async.Config{
				G: g, N: n, Timeout: tau, Latency: lat, Inputs: inputs,
			})
			if err != nil {
				return nil, err
			}
			a, err := s.Analyze(g, induced)
			if err != nil {
				return nil, err
			}
			mlStats.Add(float64(a.ModMin))
			liveStats.Add(a.PTotal)
			if a.PPartial > maxPA {
				maxPA = a.PPartial
			}
		}
		tb.AddRow(table.I(tau), table.F(mlStats.Mean(), 2),
			table.P(liveStats.Mean()), table.P(maxPA), table.F(eps, 2))
		if maxPA > eps+1e-12 {
			ok = false // agreement survives asynchrony
		}
		if mlStats.Mean() < prevML-0.2 {
			ok = false // liveness (via ML) grows with τ, modulo noise
		}
		prevML = mlStats.Mean()
	}
	return &Result{
		ID:     "T14",
		Claim:  "§8: the results extend to an asynchronous model — the timeout synchronizer reduces async executions to runs, preserving every bound",
		Tables: []*table.Table{tb},
		OK:     ok,
		Summary: "Across every sampled latency adversary and timeout, the induced run's exact Pr[PA] never " +
			"exceeds ε — asynchrony attacks liveness only. Raising the synchronizer timeout buys level " +
			"(more messages beat their deadlines) and with it liveness, the same rounds-for-confidence " +
			"trade as the synchronous model.",
	}, nil
}
