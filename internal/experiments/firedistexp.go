package experiments

import (
	"fmt"

	"coordattack/internal/core"
	"coordattack/internal/graph"
	"coordattack/internal/mc"
	"coordattack/internal/run"
	"coordattack/internal/table"
)

// T19FireDistribution ablates Protocol S's one free design choice: the
// distribution of the secret threshold rfire. For any distribution F the
// protocol's liveness at level ml is F(ml) and its unsafety is the widest
// one-level window of F, so Theorem 5.4 reads F(ml)/U_s ≤ ml. The uniform
// choice makes every window equal — achieving the frontier at EVERY level
// simultaneously — while front-loaded alternatives buy early liveness
// with a wide first window and back-loaded ones waste their mass. The
// paper's uniform rfire is the unique minimax choice, and this experiment
// measures exactly how the alternatives fall short.
func T19FireDistribution(opt Options) (*Result, error) {
	opt = opt.withDefaults()
	const (
		n   = 20
		eps = 0.1
	)
	uni, err := core.UniformFire(eps)
	if err != nil {
		return nil, err
	}
	geo, err := core.GeometricFire(0.9)
	if err != nil {
		return nil, err
	}
	front, err := core.PowerFire(eps, 0.5)
	if err != nil {
		return nil, err
	}
	back, err := core.PowerFire(eps, 2)
	if err != nil {
		return nil, err
	}
	dists := []core.FireDist{uni, geo, front, back}
	if opt.Quick {
		dists = dists[:2]
	}

	g := graph.Pair()
	good, err := run.Good(g, n, 1, 2)
	if err != nil {
		return nil, err
	}
	probeMLs := []int{1, 5, 10}
	cols := []string{"rfire distribution", "U_s (widest window)"}
	for _, ml := range probeMLs {
		cols = append(cols, fmt.Sprintf("L@ML=%d", ml))
		cols = append(cols, fmt.Sprintf("(L/U)/ML@%d", ml))
	}
	cols = append(cols, "MC check @ML=10")
	tb := table.New(fmt.Sprintf("T19: rfire distribution ablation (K_2, N=%d)", n), cols...)
	ok := true
	for di, d := range dists {
		sf, err := core.NewSFire(d)
		if err != nil {
			return nil, err
		}
		u := d.WindowSup(n + 1)
		row := []string{d.Name, table.P(u)}
		for _, ml := range probeMLs {
			live := sf.LivenessAt(ml)
			frontier := live / u / float64(ml) // ≤ 1, =1 on the frontier
			row = append(row, table.P(live), table.F(frontier, 3))
			if frontier > 1+1e-9 {
				ok = false // Theorem 5.4 must cap every distribution
			}
			if d.Name == uni.Name && !approxEqual(frontier, 1, 1e-9) {
				ok = false // uniform sits on the frontier at every level
			}
		}
		// Monte-Carlo confirmation at ML = 10 (prefix run).
		r10 := run.Prefix(good, 10)
		res, err := mc.Estimate(mc.Config{
			Ctx:      opt.Ctx,
			Protocol: sf, Graph: g, Run: r10,
			Trials: opt.Trials, Seed: opt.Seed + uint64(di),
		})
		if err != nil {
			return nil, err
		}
		want := sf.LivenessAt(10)
		row = append(row, table.P(res.TA.Mean()))
		if consistent, err := res.TA.Consistent(want, 1e-6); err != nil || !consistent {
			ok = false
		}
		tb.AddRow(row...)
	}
	// The alternatives must each fall short of the frontier somewhere.
	for _, d := range dists[1:] {
		u := d.WindowSup(n + 1)
		short := false
		for ml := 1; ml <= n; ml++ {
			if d.CDF(float64(ml))/u < float64(ml)-1e-9 {
				short = true
				break
			}
		}
		if !short {
			ok = false
		}
	}
	return &Result{
		ID:     "T19",
		Claim:  "ablation: uniform rfire is the unique minimax distribution — equal windows sit on the Theorem 5.4 frontier at every level",
		Tables: []*table.Table{tb},
		OK:     ok,
		Summary: "Every alternative distribution respects the frontier F(ml)/U ≤ ml but wastes it somewhere: " +
			"front-loaded choices pay a wide first window (high U), back-loaded ones strand mass beyond " +
			"reachable levels. Uniform mass-per-window is exactly what 'the adversary cannot aim inside " +
			"one window' demands — the paper's design choice, derived rather than assumed.",
	}, nil
}
