package experiments

import (
	"fmt"

	"coordattack/internal/core"
	"coordattack/internal/graph"
	"coordattack/internal/mc"
	"coordattack/internal/run"
	"coordattack/internal/table"
)

// T6SecondBound probes Theorem A.1: under the usual-case assumption no
// protocol can beat ε·ML(R) on all runs. We realize the theorem's pivot —
// the spanning-tree run with ML(R) = 1, where Protocol S's liveness is
// exactly ε — and then measure the slack-1 variant, which *does* beat
// ε·ML(R) on every run (liveness ε·(ML+1)) and pays for it exactly as
// the theorem requires: its true unsafety doubles, so per unit of
// unsafety it is no better than S.
func T6SecondBound(opt Options) (*Result, error) {
	opt = opt.withDefaults()
	eps := 0.15
	ring, err := graph.Ring(5)
	if err != nil {
		return nil, err
	}
	star, err := graph.Star(5)
	if err != nil {
		return nil, err
	}
	type scenario struct {
		gname string
		g     *graph.G
		n     int
	}
	scenarios := []scenario{
		{"ring(5)", ring, 5},
		{"star(5)", star, 4},
	}
	if opt.Quick {
		scenarios = scenarios[:1]
	}
	s := core.MustS(eps)
	greedy, err := core.NewSWithSlack(eps, 1)
	if err != nil {
		return nil, err
	}
	tb := table.New(fmt.Sprintf("T6: tree run (ML=1) and the slack tradeoff, ε=%.3g", eps),
		"graph", "protocol", "run", "ML(R)", "liveness exact", "liveness MC", "U_s sup", "(L/U)·1[ML=1]")
	ok := true
	for i, sc := range scenarios {
		// Theorem A.1 needs the usual-case assumption; assert it holds
		// for the scenario before leaning on the theorem.
		if err := core.UsualCase(sc.g, sc.n, eps); err != nil {
			return nil, err
		}
		tree, err := run.Tree(sc.g, sc.n, 1)
		if err != nil {
			return nil, err
		}
		for j, p := range []*core.S{s, greedy} {
			a, err := p.Analyze(sc.g, tree)
			if err != nil {
				return nil, err
			}
			res, err := mc.Estimate(mc.Config{
				Ctx:      opt.Ctx,
				Protocol: p, Graph: sc.g, Run: tree,
				Trials: opt.Trials, Seed: opt.Seed + uint64(i*10+j),
			})
			if err != nil {
				return nil, err
			}
			usup := core.UnsafetySup(eps, p.Slack())
			ratio := core.LivenessOverUnsafety(a.PTotal, usup)
			tb.AddRow(sc.gname, p.Name(), "tree", table.I(a.ModMin),
				table.P(a.PTotal), table.P(res.TA.Mean()), table.P(usup), table.F(ratio, 3))
			// Theorem A.1's pivot: S achieves exactly ε on the ML=1 run.
			if p.Slack() == 0 && !approxEqual(a.PTotal, eps, 1e-12) {
				ok = false
			}
			// The slack variant beats ε·ML — but only by paying in U:
			// both protocols have identical L/U on this run.
			if p.Slack() == 1 && !approxEqual(a.PTotal, 2*eps, 1e-12) {
				ok = false
			}
			if !approxEqual(ratio, 1, 1e-9) {
				ok = false // liveness/unsafety = 1 on the ML=1 run, for both
			}
			if consistent, err := res.TA.Consistent(a.PTotal, 1e-6); err != nil || !consistent {
				ok = false
			}
		}
	}
	return &Result{
		ID:     "T6",
		Claim:  "Thm A.1: beating ε·ML(R) anywhere costs unsafety elsewhere — liveness per unit unsafety is capped by ML(R)",
		Tables: []*table.Table{tb},
		OK:     ok,
		Summary: "On the Lemma A.6 tree run (ML = 1), Protocol S attacks with probability exactly ε. " +
			"The slack-1 variant doubles its liveness on every run — and its worst-case unsafety doubles " +
			"with it (U_s = 2ε on the silent run), leaving the normalized ratio unchanged: " +
			"Protocol S is optimal per unit of unsafety, as Theorem A.1 demands.",
	}, nil
}
