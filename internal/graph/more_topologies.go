package graph

import "fmt"

// BinaryTree returns the complete binary tree of the given depth: depth 0
// is a single root (vertex 1), depth d has 2^(d+1)-1 vertices numbered in
// level order (vertex k's children are 2k and 2k+1).
func BinaryTree(depth int) (*G, error) {
	if depth < 0 || depth > 15 {
		return nil, fmt.Errorf("graph: binary tree depth %d outside 0..15", depth)
	}
	m := (1 << uint(depth+1)) - 1
	edges := make([]Edge, 0, m-1)
	for v := 2; v <= m; v++ {
		edges = append(edges, Edge{A: ProcID(v / 2), B: ProcID(v)})
	}
	return New(m, edges)
}

// Torus returns the rows×cols grid with wraparound in both dimensions
// (each vertex has degree 4 when rows, cols ≥ 3). Requires rows, cols ≥ 3
// to avoid duplicate wrap edges.
func Torus(rows, cols int) (*G, error) {
	if rows < 3 || cols < 3 {
		return nil, fmt.Errorf("graph: torus needs rows, cols ≥ 3, got %dx%d", rows, cols)
	}
	id := func(r, c int) ProcID { return ProcID(r*cols + c + 1) }
	var edges []Edge
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			edges = append(edges, NewEdge(id(r, c), id(r, (c+1)%cols)))
			edges = append(edges, NewEdge(id(r, c), id((r+1)%rows, c)))
		}
	}
	return New(rows*cols, edges)
}

// Wheel returns the wheel graph: a hub (vertex 1) connected to every
// vertex of an (m-1)-cycle. Requires m ≥ 4.
func Wheel(m int) (*G, error) {
	if m < 4 {
		return nil, fmt.Errorf("graph: wheel needs m ≥ 4, got %d", m)
	}
	edges := make([]Edge, 0, 2*(m-1))
	for v := 2; v <= m; v++ {
		edges = append(edges, Edge{A: 1, B: ProcID(v)})
	}
	for v := 2; v < m; v++ {
		edges = append(edges, Edge{A: ProcID(v), B: ProcID(v + 1)})
	}
	edges = append(edges, Edge{A: 2, B: ProcID(m)})
	return New(m, edges)
}
