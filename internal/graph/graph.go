// Package graph is the topology substrate: the undirected graph G(V, E) of
// generals from §2 of the paper, with the constructors and queries the
// protocols, adversaries, and experiments need.
//
// Vertices are process identifiers 1..m, matching the paper's convention
// (process 1 is the distinguished general that draws rfire in Protocol S).
// The environment node v₀ is *not* part of the graph; it is modeled by the
// run's input set.
package graph

import (
	"fmt"
	"sort"
	"strings"
)

// ProcID identifies a general: an integer in 1..m. The zero value is
// reserved for the environment node v₀ and never appears as a vertex.
type ProcID int

// Env is the environment node v₀ that delivers the "try to attack" input
// signal at the end of round 0.
const Env ProcID = 0

// Edge is an unordered pair of distinct vertices. Canonical form has
// A < B; use NewEdge to construct.
type Edge struct {
	A, B ProcID
}

// NewEdge returns the canonical (smaller-first) form of the edge {a, b}.
func NewEdge(a, b ProcID) Edge {
	if a > b {
		a, b = b, a
	}
	return Edge{A: a, B: b}
}

// G is an undirected simple graph on vertices 1..m. Construct with New or
// one of the topology constructors; a G is immutable after construction
// and safe for concurrent readers.
type G struct {
	m     int
	adj   [][]ProcID // adj[i] sorted neighbor lists, index 1..m
	edges []Edge     // sorted canonical edge list
}

// New builds a graph on m ≥ 1 vertices with the given edges. Self-loops,
// duplicate edges (in either orientation), and out-of-range endpoints are
// rejected.
func New(m int, edges []Edge) (*G, error) {
	if m < 1 {
		return nil, fmt.Errorf("graph: need at least 1 vertex, got %d", m)
	}
	seen := make(map[Edge]bool, len(edges))
	canon := make([]Edge, 0, len(edges))
	for _, e := range edges {
		if e.A == e.B {
			return nil, fmt.Errorf("graph: self-loop on vertex %d", e.A)
		}
		if e.A < 1 || e.A > ProcID(m) || e.B < 1 || e.B > ProcID(m) {
			return nil, fmt.Errorf("graph: edge {%d,%d} out of range 1..%d", e.A, e.B, m)
		}
		c := NewEdge(e.A, e.B)
		if seen[c] {
			return nil, fmt.Errorf("graph: duplicate edge {%d,%d}", c.A, c.B)
		}
		seen[c] = true
		canon = append(canon, c)
	}
	sort.Slice(canon, func(i, j int) bool {
		if canon[i].A != canon[j].A {
			return canon[i].A < canon[j].A
		}
		return canon[i].B < canon[j].B
	})
	adj := make([][]ProcID, m+1)
	for _, e := range canon {
		adj[e.A] = append(adj[e.A], e.B)
		adj[e.B] = append(adj[e.B], e.A)
	}
	for i := 1; i <= m; i++ {
		sort.Slice(adj[i], func(a, b int) bool { return adj[i][a] < adj[i][b] })
	}
	return &G{m: m, adj: adj, edges: canon}, nil
}

// MustNew is New but panics on error; for use with known-good literals in
// tests and examples.
func MustNew(m int, edges []Edge) *G {
	g, err := New(m, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// NumVertices reports m, the number of generals.
func (g *G) NumVertices() int { return g.m }

// NumEdges reports |E|.
func (g *G) NumEdges() int { return len(g.edges) }

// Vertices returns 1..m as a fresh slice.
func (g *G) Vertices() []ProcID {
	vs := make([]ProcID, g.m)
	for i := range vs {
		vs[i] = ProcID(i + 1)
	}
	return vs
}

// Edges returns a copy of the canonical sorted edge list.
func (g *G) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// Neighbors returns a copy of i's sorted neighbor list. It panics if i is
// out of range, which indicates a programming error rather than bad input.
func (g *G) Neighbors(i ProcID) []ProcID {
	g.check(i)
	out := make([]ProcID, len(g.adj[i]))
	copy(out, g.adj[i])
	return out
}

// Degree reports the number of neighbors of i.
func (g *G) Degree(i ProcID) int {
	g.check(i)
	return len(g.adj[i])
}

// HasEdge reports whether {a, b} ∈ E.
func (g *G) HasEdge(a, b ProcID) bool {
	if a < 1 || a > ProcID(g.m) || b < 1 || b > ProcID(g.m) || a == b {
		return false
	}
	for _, n := range g.adj[a] {
		if n == b {
			return true
		}
	}
	return false
}

func (g *G) check(i ProcID) {
	if i < 1 || i > ProcID(g.m) {
		panic(fmt.Sprintf("graph: vertex %d out of range 1..%d", i, g.m))
	}
}

// BFSFrom returns dist[v] = hop distance from src to every vertex, with -1
// for unreachable vertices. Index 0 of the returned slice is unused.
func (g *G) BFSFrom(src ProcID) []int {
	g.check(src)
	dist := make([]int, g.m+1)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]ProcID, 0, g.m)
	queue = append(queue, src)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.adj[v] {
			if dist[w] == -1 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// Connected reports whether the graph is connected. A single vertex is
// connected.
func (g *G) Connected() bool {
	dist := g.BFSFrom(1)
	for i := 1; i <= g.m; i++ {
		if dist[i] == -1 {
			return false
		}
	}
	return true
}

// Diameter returns the largest hop distance between any two vertices, or
// -1 if the graph is disconnected.
func (g *G) Diameter() int {
	diam := 0
	for s := 1; s <= g.m; s++ {
		dist := g.BFSFrom(ProcID(s))
		for i := 1; i <= g.m; i++ {
			if dist[i] == -1 {
				return -1
			}
			if dist[i] > diam {
				diam = dist[i]
			}
		}
	}
	return diam
}

// Eccentricity returns the largest hop distance from src to any vertex, or
// -1 if some vertex is unreachable from src.
func (g *G) Eccentricity(src ProcID) int {
	dist := g.BFSFrom(src)
	ecc := 0
	for i := 1; i <= g.m; i++ {
		if dist[i] == -1 {
			return -1
		}
		if dist[i] > ecc {
			ecc = dist[i]
		}
	}
	return ecc
}

// SpanningTree returns the BFS spanning tree rooted at root as a parent
// map: parent[v] is v's parent, parent[root] = Env (0). Returns an error
// if the graph is disconnected. This is the tree used in Lemma A.6 to
// construct the run R₁ with ML(R) = 1.
func (g *G) SpanningTree(root ProcID) (map[ProcID]ProcID, error) {
	g.check(root)
	parent := make(map[ProcID]ProcID, g.m)
	parent[root] = Env
	queue := []ProcID{root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.adj[v] {
			if _, ok := parent[w]; !ok {
				parent[w] = v
				queue = append(queue, w)
			}
		}
	}
	if len(parent) != g.m {
		return nil, fmt.Errorf("graph: not connected; spanning tree from %d covers %d of %d vertices",
			root, len(parent), g.m)
	}
	return parent, nil
}

// String renders the graph compactly, e.g. "G(m=3; 1-2 2-3)".
func (g *G) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "G(m=%d;", g.m)
	for _, e := range g.edges {
		fmt.Fprintf(&b, " %d-%d", e.A, e.B)
	}
	b.WriteByte(')')
	return b.String()
}
