package graph

import "testing"

func TestBinaryTree(t *testing.T) {
	tests := []struct {
		depth, m, e, diam int
	}{
		{0, 1, 0, 0},
		{1, 3, 2, 2},
		{2, 7, 6, 4},
		{3, 15, 14, 6},
	}
	for _, tc := range tests {
		g, err := BinaryTree(tc.depth)
		if err != nil {
			t.Fatalf("depth %d: %v", tc.depth, err)
		}
		if g.NumVertices() != tc.m || g.NumEdges() != tc.e {
			t.Errorf("depth %d: m=%d e=%d, want %d/%d",
				tc.depth, g.NumVertices(), g.NumEdges(), tc.m, tc.e)
		}
		if !g.Connected() {
			t.Errorf("depth %d: not connected", tc.depth)
		}
		if got := g.Diameter(); got != tc.diam {
			t.Errorf("depth %d: diameter %d, want %d", tc.depth, got, tc.diam)
		}
	}
	if _, err := BinaryTree(-1); err == nil {
		t.Error("negative depth accepted")
	}
	if _, err := BinaryTree(16); err == nil {
		t.Error("depth 16 accepted")
	}
}

func TestBinaryTreeParentStructure(t *testing.T) {
	g, err := BinaryTree(3)
	if err != nil {
		t.Fatal(err)
	}
	for v := 2; v <= 15; v++ {
		if !g.HasEdge(ProcID(v/2), ProcID(v)) {
			t.Errorf("missing parent edge %d-%d", v/2, v)
		}
	}
	if g.Degree(1) != 2 {
		t.Errorf("root degree %d, want 2", g.Degree(1))
	}
	if g.Degree(15) != 1 {
		t.Errorf("leaf degree %d, want 1", g.Degree(15))
	}
}

func TestTorus(t *testing.T) {
	g, err := Torus(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 12 {
		t.Errorf("m = %d, want 12", g.NumVertices())
	}
	// Every vertex of a torus has degree 4.
	for _, v := range g.Vertices() {
		if g.Degree(v) != 4 {
			t.Errorf("vertex %d degree %d, want 4", v, g.Degree(v))
		}
	}
	if g.NumEdges() != 24 { // m·4/2
		t.Errorf("edges = %d, want 24", g.NumEdges())
	}
	if !g.Connected() {
		t.Error("torus not connected")
	}
	// Diameter of 3x4 torus: ⌊3/2⌋+⌊4/2⌋ = 3.
	if got := g.Diameter(); got != 3 {
		t.Errorf("diameter = %d, want 3", got)
	}
	if _, err := Torus(2, 4); err == nil {
		t.Error("2-row torus accepted")
	}
	if _, err := Torus(4, 2); err == nil {
		t.Error("2-col torus accepted")
	}
}

func TestWheel(t *testing.T) {
	g, err := Wheel(6)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 6 || g.NumEdges() != 10 {
		t.Errorf("wheel(6): m=%d e=%d, want 6/10", g.NumVertices(), g.NumEdges())
	}
	if g.Degree(1) != 5 {
		t.Errorf("hub degree %d, want 5", g.Degree(1))
	}
	for v := ProcID(2); v <= 6; v++ {
		if g.Degree(v) != 3 {
			t.Errorf("rim vertex %d degree %d, want 3", v, g.Degree(v))
		}
	}
	if got := g.Diameter(); got != 2 {
		t.Errorf("diameter = %d, want 2", got)
	}
	if _, err := Wheel(3); err == nil {
		t.Error("wheel(3) accepted")
	}
}
