package graph

import (
	"fmt"

	"coordattack/internal/rng"
)

// Complete returns K_m, the complete graph on m vertices.
func Complete(m int) (*G, error) {
	if m < 1 {
		return nil, fmt.Errorf("graph: complete graph needs m ≥ 1, got %d", m)
	}
	edges := make([]Edge, 0, m*(m-1)/2)
	for a := 1; a <= m; a++ {
		for b := a + 1; b <= m; b++ {
			edges = append(edges, Edge{A: ProcID(a), B: ProcID(b)})
		}
	}
	return New(m, edges)
}

// Pair returns K_2, the classic two-generals topology.
func Pair() *G {
	g, err := Complete(2)
	if err != nil {
		panic(err) // cannot happen: Complete(2) is always valid
	}
	return g
}

// Line returns the path 1-2-…-m.
func Line(m int) (*G, error) {
	if m < 1 {
		return nil, fmt.Errorf("graph: line needs m ≥ 1, got %d", m)
	}
	edges := make([]Edge, 0, m-1)
	for a := 1; a < m; a++ {
		edges = append(edges, Edge{A: ProcID(a), B: ProcID(a + 1)})
	}
	return New(m, edges)
}

// Ring returns the cycle 1-2-…-m-1. Requires m ≥ 3.
func Ring(m int) (*G, error) {
	if m < 3 {
		return nil, fmt.Errorf("graph: ring needs m ≥ 3, got %d", m)
	}
	edges := make([]Edge, 0, m)
	for a := 1; a < m; a++ {
		edges = append(edges, Edge{A: ProcID(a), B: ProcID(a + 1)})
	}
	edges = append(edges, Edge{A: 1, B: ProcID(m)})
	return New(m, edges)
}

// Star returns the star with center 1 and m-1 leaves. Requires m ≥ 2.
func Star(m int) (*G, error) {
	if m < 2 {
		return nil, fmt.Errorf("graph: star needs m ≥ 2, got %d", m)
	}
	edges := make([]Edge, 0, m-1)
	for a := 2; a <= m; a++ {
		edges = append(edges, Edge{A: 1, B: ProcID(a)})
	}
	return New(m, edges)
}

// Grid returns the rows×cols king-less grid (4-neighborhood), vertices
// numbered row-major starting at 1.
func Grid(rows, cols int) (*G, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("graph: grid needs positive dims, got %dx%d", rows, cols)
	}
	id := func(r, c int) ProcID { return ProcID(r*cols + c + 1) }
	var edges []Edge
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, Edge{A: id(r, c), B: id(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, Edge{A: id(r, c), B: id(r+1, c)})
			}
		}
	}
	return New(rows*cols, edges)
}

// Hypercube returns the d-dimensional hypercube on 2^d vertices.
// Requires 1 ≤ d ≤ 16.
func Hypercube(d int) (*G, error) {
	if d < 1 || d > 16 {
		return nil, fmt.Errorf("graph: hypercube dimension %d out of 1..16", d)
	}
	m := 1 << uint(d)
	edges := make([]Edge, 0, m*d/2)
	for v := 0; v < m; v++ {
		for b := 0; b < d; b++ {
			w := v ^ (1 << uint(b))
			if v < w {
				edges = append(edges, Edge{A: ProcID(v + 1), B: ProcID(w + 1)})
			}
		}
	}
	return New(m, edges)
}

// RandomConnected returns a connected Erdős–Rényi-style graph: a uniform
// random spanning tree skeleton (random attachment) plus each remaining
// edge independently with probability p, drawn from tape. Always connected
// by construction.
func RandomConnected(m int, p float64, tape *rng.Tape) (*G, error) {
	if m < 1 {
		return nil, fmt.Errorf("graph: random graph needs m ≥ 1, got %d", m)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("graph: edge probability %v out of [0,1]", p)
	}
	have := make(map[Edge]bool, m*2)
	var edges []Edge
	add := func(e Edge) {
		if !have[e] {
			have[e] = true
			edges = append(edges, e)
		}
	}
	// Random attachment tree: vertex v attaches to a uniform earlier vertex.
	for v := 2; v <= m; v++ {
		u, err := tape.IntRange(1, v-1)
		if err != nil {
			return nil, fmt.Errorf("graph: drawing tree edge: %w", err)
		}
		add(NewEdge(ProcID(u), ProcID(v)))
	}
	for a := 1; a <= m; a++ {
		for b := a + 1; b <= m; b++ {
			e := Edge{A: ProcID(a), B: ProcID(b)}
			if have[e] {
				continue
			}
			hit, err := tape.Bernoulli(p)
			if err != nil {
				return nil, fmt.Errorf("graph: drawing extra edge: %w", err)
			}
			if hit {
				add(e)
			}
		}
	}
	return New(m, edges)
}
