package graph

import (
	"testing"
	"testing/quick"

	"coordattack/internal/rng"
)

func TestNewEdgeCanonical(t *testing.T) {
	if e := NewEdge(3, 1); e.A != 1 || e.B != 3 {
		t.Errorf("NewEdge(3,1) = %v, want {1,3}", e)
	}
	if e := NewEdge(1, 3); e.A != 1 || e.B != 3 {
		t.Errorf("NewEdge(1,3) = %v, want {1,3}", e)
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	tests := []struct {
		name  string
		m     int
		edges []Edge
	}{
		{"zero vertices", 0, nil},
		{"negative vertices", -1, nil},
		{"self loop", 2, []Edge{{A: 1, B: 1}}},
		{"out of range high", 2, []Edge{{A: 1, B: 3}}},
		{"out of range low", 2, []Edge{{A: 0, B: 1}}},
		{"duplicate", 3, []Edge{{A: 1, B: 2}, {A: 2, B: 1}}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.m, tc.edges); err == nil {
				t.Errorf("New(%d, %v) succeeded, want error", tc.m, tc.edges)
			}
		})
	}
}

func TestBasicAccessors(t *testing.T) {
	g := MustNew(4, []Edge{{A: 1, B: 2}, {A: 2, B: 3}, {A: 3, B: 4}, {A: 4, B: 1}})
	if got := g.NumVertices(); got != 4 {
		t.Errorf("NumVertices = %d, want 4", got)
	}
	if got := g.NumEdges(); got != 4 {
		t.Errorf("NumEdges = %d, want 4", got)
	}
	if got := g.Degree(2); got != 2 {
		t.Errorf("Degree(2) = %d, want 2", got)
	}
	if !g.HasEdge(4, 1) || !g.HasEdge(1, 4) {
		t.Error("HasEdge(4,1) should hold in both orientations")
	}
	if g.HasEdge(1, 3) {
		t.Error("HasEdge(1,3) should be false")
	}
	if g.HasEdge(1, 1) {
		t.Error("HasEdge(1,1) self-loop should be false")
	}
	if g.HasEdge(0, 1) || g.HasEdge(1, 99) {
		t.Error("HasEdge with out-of-range vertex should be false")
	}
	vs := g.Vertices()
	if len(vs) != 4 || vs[0] != 1 || vs[3] != 4 {
		t.Errorf("Vertices = %v", vs)
	}
}

func TestNeighborsSortedAndCopied(t *testing.T) {
	g := MustNew(4, []Edge{{A: 3, B: 1}, {A: 1, B: 4}, {A: 1, B: 2}})
	n := g.Neighbors(1)
	want := []ProcID{2, 3, 4}
	if len(n) != len(want) {
		t.Fatalf("Neighbors(1) = %v, want %v", n, want)
	}
	for i := range want {
		if n[i] != want[i] {
			t.Fatalf("Neighbors(1) = %v, want %v", n, want)
		}
	}
	n[0] = 99 // mutation must not leak into the graph
	if g.Neighbors(1)[0] != 2 {
		t.Error("Neighbors returned a view into internal state")
	}
}

func TestEdgesSortedAndCopied(t *testing.T) {
	g := MustNew(3, []Edge{{A: 2, B: 3}, {A: 1, B: 2}})
	es := g.Edges()
	if es[0] != (Edge{A: 1, B: 2}) || es[1] != (Edge{A: 2, B: 3}) {
		t.Errorf("Edges = %v, want sorted canonical order", es)
	}
	es[0] = Edge{A: 9, B: 9}
	if g.Edges()[0] != (Edge{A: 1, B: 2}) {
		t.Error("Edges returned a view into internal state")
	}
}

func TestBFSAndDiameter(t *testing.T) {
	line, err := Line(5)
	if err != nil {
		t.Fatal(err)
	}
	dist := line.BFSFrom(1)
	for i := 1; i <= 5; i++ {
		if dist[i] != i-1 {
			t.Errorf("line dist[1->%d] = %d, want %d", i, dist[i], i-1)
		}
	}
	if got := line.Diameter(); got != 4 {
		t.Errorf("line(5) diameter = %d, want 4", got)
	}
	if got := line.Eccentricity(3); got != 2 {
		t.Errorf("line(5) ecc(3) = %d, want 2", got)
	}
}

func TestDisconnected(t *testing.T) {
	g := MustNew(4, []Edge{{A: 1, B: 2}, {A: 3, B: 4}})
	if g.Connected() {
		t.Error("two components reported connected")
	}
	if got := g.Diameter(); got != -1 {
		t.Errorf("disconnected diameter = %d, want -1", got)
	}
	if got := g.Eccentricity(1); got != -1 {
		t.Errorf("disconnected eccentricity = %d, want -1", got)
	}
	if _, err := g.SpanningTree(1); err == nil {
		t.Error("SpanningTree on disconnected graph succeeded")
	}
}

func TestSingleVertex(t *testing.T) {
	g := MustNew(1, nil)
	if !g.Connected() {
		t.Error("K_1 should be connected")
	}
	if got := g.Diameter(); got != 0 {
		t.Errorf("K_1 diameter = %d, want 0", got)
	}
}

func TestSpanningTree(t *testing.T) {
	g, err := Ring(6)
	if err != nil {
		t.Fatal(err)
	}
	parent, err := g.SpanningTree(1)
	if err != nil {
		t.Fatal(err)
	}
	if parent[1] != Env {
		t.Errorf("root parent = %d, want Env", parent[1])
	}
	if len(parent) != 6 {
		t.Errorf("tree covers %d vertices, want 6", len(parent))
	}
	// Every non-root must reach the root via parents, without cycles.
	for v := ProcID(2); v <= 6; v++ {
		cur, steps := v, 0
		for cur != 1 {
			cur = parent[cur]
			steps++
			if steps > 6 {
				t.Fatalf("parent chain from %d does not reach root", v)
			}
			if !g.HasEdge(cur, v) && steps == 1 {
				t.Fatalf("tree edge %d-%d not in graph", parent[v], v)
			}
		}
	}
}

func TestTopologyShapes(t *testing.T) {
	tests := []struct {
		name     string
		build    func() (*G, error)
		m, e     int
		diameter int
	}{
		{"complete4", func() (*G, error) { return Complete(4) }, 4, 6, 1},
		{"complete2", func() (*G, error) { return Complete(2) }, 2, 1, 1},
		{"line6", func() (*G, error) { return Line(6) }, 6, 5, 5},
		{"line1", func() (*G, error) { return Line(1) }, 1, 0, 0},
		{"ring5", func() (*G, error) { return Ring(5) }, 5, 5, 2},
		{"ring6", func() (*G, error) { return Ring(6) }, 6, 6, 3},
		{"star7", func() (*G, error) { return Star(7) }, 7, 6, 2},
		{"star2", func() (*G, error) { return Star(2) }, 2, 1, 1},
		{"grid2x3", func() (*G, error) { return Grid(2, 3) }, 6, 7, 3},
		{"grid1x4", func() (*G, error) { return Grid(1, 4) }, 4, 3, 3},
		{"cube3", func() (*G, error) { return Hypercube(3) }, 8, 12, 3},
		{"cube1", func() (*G, error) { return Hypercube(1) }, 2, 1, 1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			g, err := tc.build()
			if err != nil {
				t.Fatal(err)
			}
			if got := g.NumVertices(); got != tc.m {
				t.Errorf("vertices = %d, want %d", got, tc.m)
			}
			if got := g.NumEdges(); got != tc.e {
				t.Errorf("edges = %d, want %d", got, tc.e)
			}
			if !g.Connected() {
				t.Error("not connected")
			}
			if got := g.Diameter(); got != tc.diameter {
				t.Errorf("diameter = %d, want %d", got, tc.diameter)
			}
		})
	}
}

func TestTopologyRejectsBadSizes(t *testing.T) {
	if _, err := Complete(0); err == nil {
		t.Error("Complete(0) succeeded")
	}
	if _, err := Line(0); err == nil {
		t.Error("Line(0) succeeded")
	}
	if _, err := Ring(2); err == nil {
		t.Error("Ring(2) succeeded")
	}
	if _, err := Star(1); err == nil {
		t.Error("Star(1) succeeded")
	}
	if _, err := Grid(0, 3); err == nil {
		t.Error("Grid(0,3) succeeded")
	}
	if _, err := Hypercube(0); err == nil {
		t.Error("Hypercube(0) succeeded")
	}
	if _, err := Hypercube(17); err == nil {
		t.Error("Hypercube(17) succeeded")
	}
}

func TestPair(t *testing.T) {
	g := Pair()
	if g.NumVertices() != 2 || !g.HasEdge(1, 2) {
		t.Errorf("Pair() = %v", g)
	}
}

func TestRandomConnected(t *testing.T) {
	tape := rng.NewTape(42)
	for _, m := range []int{1, 2, 5, 12} {
		for _, p := range []float64{0, 0.3, 1} {
			g, err := RandomConnected(m, p, tape)
			if err != nil {
				t.Fatalf("RandomConnected(%d, %v): %v", m, p, err)
			}
			if !g.Connected() {
				t.Errorf("RandomConnected(%d, %v) not connected", m, p)
			}
			if p == 1 && g.NumEdges() != m*(m-1)/2 {
				t.Errorf("p=1 should give complete graph, got %d edges", g.NumEdges())
			}
			if p == 0 && m > 1 && g.NumEdges() != m-1 {
				t.Errorf("p=0 should give a tree, got %d edges for m=%d", g.NumEdges(), m)
			}
		}
	}
	if _, err := RandomConnected(0, 0.5, tape); err == nil {
		t.Error("RandomConnected(0) succeeded")
	}
	if _, err := RandomConnected(3, 1.5, tape); err == nil {
		t.Error("RandomConnected(p=1.5) succeeded")
	}
}

func TestRandomConnectedDeterministic(t *testing.T) {
	g1, err := RandomConnected(8, 0.4, rng.NewTape(7))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := RandomConnected(8, 0.4, rng.NewTape(7))
	if err != nil {
		t.Fatal(err)
	}
	if g1.String() != g2.String() {
		t.Errorf("same seed produced different graphs:\n%s\n%s", g1, g2)
	}
}

func TestString(t *testing.T) {
	g := MustNew(3, []Edge{{A: 2, B: 3}, {A: 1, B: 2}})
	if got, want := g.String(), "G(m=3; 1-2 2-3)"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestQuickDiameterAtMostVertices(t *testing.T) {
	f := func(seed uint64, mRaw uint8, pRaw uint8) bool {
		m := int(mRaw%10) + 1
		p := float64(pRaw) / 255
		g, err := RandomConnected(m, p, rng.NewTape(seed))
		if err != nil {
			return false
		}
		d := g.Diameter()
		return d >= 0 && d < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickBFSSymmetric(t *testing.T) {
	f := func(seed uint64) bool {
		g, err := RandomConnected(7, 0.3, rng.NewTape(seed))
		if err != nil {
			return false
		}
		for a := ProcID(1); a <= 7; a++ {
			da := g.BFSFrom(a)
			for b := ProcID(1); b <= 7; b++ {
				if g.BFSFrom(b)[a] != da[b] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
