// Package weak develops §8's closing remark — that against a *weak*
// adversary, a probabilistic one that destroys each message independently
// with unknown probability p, performance is vastly better than the
// strong-adversary tradeoff — into exact, checkable numbers for the
// two-generals case.
//
// On K_2, Protocol S's pair of counters (count_1, count_2) evolves as a
// Markov chain driven by the four per-round delivery patterns (each
// direction delivered independently with probability 1-p). The chain is
// small because Lemma 6.2 pins |count_1 − count_2| ≤ 1, so this package
// computes the exact end-of-run distribution of (count_1, count_2), and
// from it the exact expected liveness E[Pr[TA|R]] and expected
// disagreement E[Pr[PA|R]] under the weak adversary — no sampling. The
// Monte-Carlo estimates of experiment T8/T15 validate against these.
//
// The qualitative content: expected disagreement decays because a blind
// adversary must land the one-unit window around the hidden rfire, while
// the counters march upward at rate ≈ (1-p)² per exchange — liveness
// saturates long before the deadline for any realistic loss rate.
package weak

import (
	"fmt"
	"math"
)

// PairState is the joint counter state of the two generals on K_2, after
// both have started counting. The transition structure below also covers
// the startup phase (before general 2 has heard rfire).
type PairState struct {
	// C1, C2 are count_1 and count_2.
	C1, C2 int
}

// Dist is the exact weak-adversary outcome distribution for Protocol S
// on K_2: probabilities averaged over both the delivery randomness (iid
// loss p) and rfire.
type Dist struct {
	// Liveness is E[Pr[TA|R]] = Pr[both attack].
	Liveness float64
	// Disagreement is E[Pr[PA|R]].
	Disagreement float64
	// Silence is E[Pr[NA|R]].
	Silence float64
	// MeanMinCount is E[min(count_1, count_2)] at the end of the run —
	// the expected modified level E[ML(R)].
	MeanMinCount float64
}

// Exact computes the exact Protocol S outcome distribution on K_2 over n
// rounds with both generals signaled, agreement parameter epsilon, and
// iid per-message loss probability p.
//
// The state space: before general 2 hears rfire it holds count_2 = 0 and
// general 1 is stuck at count_1 = 1 (it can learn nothing new — hearing
// count 0 from 2 never merges to V... it does not: a count-0 message
// carries seen = ∅ < V). After the first 1→2 delivery the pair behaves as
// the coupled chain with |C1−C2| ≤ 1. Transitions per round, given the
// pre-round state (c1, c2) and delivery pattern (d12, d21):
//
//	receiving an equal count merges seen to V: count += 1;
//	receiving a higher count jumps to that count + 1 (seen merges to V);
//	receiving a lower count changes nothing.
//
// Both generals process the same round's messages from pre-round states.
func Exact(n int, epsilon, p float64) (*Dist, error) {
	if n < 1 {
		return nil, fmt.Errorf("weak: need n ≥ 1, got %d", n)
	}
	if epsilon <= 0 || epsilon > 1 || math.IsNaN(epsilon) {
		return nil, fmt.Errorf("weak: epsilon %v outside (0,1]", epsilon)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("weak: loss probability %v outside [0,1]", p)
	}
	q := 1 - p // delivery probability

	// Probability mass over states. The startup state (c2 = 0, general 2
	// has not heard rfire) is encoded as C2 = 0; every post-startup state
	// has C2 ≥ 1... general 2's first transition on hearing count c1 ≥ 1
	// jumps it to c1 + 1 (higher-count rule).
	type state = PairState
	mass := map[state]float64{{C1: 1, C2: 0}: 1}

	step := func(c1, c2 int, d12, d21 bool) (int, int) {
		n1, n2 := c1, c2
		// General 2 receives general 1's message.
		if d12 {
			switch {
			case c1 > c2:
				n2 = c1 + 1
			case c1 == c2 && c1 >= 1:
				n2 = c2 + 1
			}
		}
		// General 1 receives general 2's message (pre-round value c2).
		if d21 {
			switch {
			case c2 > c1:
				n1 = c2 + 1
			case c2 == c1 && c2 >= 1:
				n1 = c1 + 1
			}
		}
		return n1, n2
	}

	patterns := []struct {
		d12, d21 bool
		prob     float64
	}{
		{false, false, p * p},
		{true, false, q * p},
		{false, true, p * q},
		{true, true, q * q},
	}
	for round := 0; round < n; round++ {
		next := make(map[state]float64, len(mass)*2)
		for st, pr := range mass {
			if pr == 0 {
				continue
			}
			for _, pat := range patterns {
				c1, c2 := step(st.C1, st.C2, pat.d12, pat.d21)
				next[state{C1: c1, C2: c2}] += pr * pat.prob
			}
		}
		mass = next
	}

	d := &Dist{}
	total := 0.0
	for st, pr := range mass {
		total += pr
		lo, hi := st.C1, st.C2
		if lo > hi {
			lo, hi = hi, lo
		}
		// Conditional on the counters, rfire uniform on (0, 1/ε] gives
		// TA iff rfire ≤ lo, PA iff lo < rfire ≤ hi (only the general
		// with the higher, rfire-knowing counter attacks), NA otherwise.
		// A counter of 0 means that general can never attack.
		pTA := 0.0
		if lo >= 1 {
			pTA = clamp01(epsilon * float64(lo))
		}
		pAny := 0.0
		if hi >= 1 {
			pAny = clamp01(epsilon * float64(hi))
		}
		d.Liveness += pr * pTA
		d.Disagreement += pr * (pAny - pTA)
		d.Silence += pr * (1 - pAny)
		d.MeanMinCount += pr * float64(lo)
	}
	if math.Abs(total-1) > 1e-9 {
		return nil, fmt.Errorf("weak: probability mass leaked to %v", total)
	}
	return d, nil
}

// SaturationRounds returns the smallest horizon n at which the exact
// expected liveness reaches the target (e.g. 0.99) for the given ε and
// loss rate, or an error if it does not happen within maxN. It quantifies
// §8's "vastly improved performance": under random loss the required
// deadline grows only by a 1/(1-p)²-ish factor, not at all in ε.
func SaturationRounds(epsilon, p, target float64, maxN int) (int, error) {
	if target <= 0 || target > 1 {
		return 0, fmt.Errorf("weak: target %v outside (0,1]", target)
	}
	if maxN < 1 {
		return 0, fmt.Errorf("weak: maxN must be positive")
	}
	for n := 1; n <= maxN; n++ {
		d, err := Exact(n, epsilon, p)
		if err != nil {
			return 0, err
		}
		if d.Liveness >= target {
			return n, nil
		}
	}
	return 0, fmt.Errorf("weak: liveness %v not reached within %d rounds", target, maxN)
}

func clamp01(x float64) float64 {
	switch {
	case x < 0:
		return 0
	case x > 1:
		return 1
	default:
		return x
	}
}
