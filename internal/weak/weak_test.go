package weak

import (
	"math"
	"testing"

	"coordattack/internal/adversary"
	"coordattack/internal/core"
	"coordattack/internal/graph"
	"coordattack/internal/mc"
)

func TestExactValidation(t *testing.T) {
	if _, err := Exact(0, 0.1, 0.1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Exact(5, 0, 0.1); err == nil {
		t.Error("epsilon=0 accepted")
	}
	if _, err := Exact(5, 1.5, 0.1); err == nil {
		t.Error("epsilon>1 accepted")
	}
	if _, err := Exact(5, math.NaN(), 0.1); err == nil {
		t.Error("NaN epsilon accepted")
	}
	if _, err := Exact(5, 0.1, -0.1); err == nil {
		t.Error("negative p accepted")
	}
	if _, err := Exact(5, 0.1, 1.1); err == nil {
		t.Error("p>1 accepted")
	}
}

func TestExactLosslessMatchesGoodRunAnalysis(t *testing.T) {
	// p = 0 is the good run: liveness = min(1, ε·N) (ML of the good K_2
	// run with both inputs is N), disagreement = min(1, ε·(N+1)) − that.
	for _, n := range []int{2, 5, 9, 20} {
		for _, eps := range []float64{0.05, 0.2} {
			d, err := Exact(n, eps, 0)
			if err != nil {
				t.Fatal(err)
			}
			wantLive := math.Min(1, eps*float64(n))
			if math.Abs(d.Liveness-wantLive) > 1e-12 {
				t.Errorf("n=%d ε=%v: lossless liveness %v, want %v", n, eps, d.Liveness, wantLive)
			}
			wantPA := math.Min(1, eps*float64(n+1)) - wantLive
			if math.Abs(d.Disagreement-wantPA) > 1e-12 {
				t.Errorf("n=%d ε=%v: lossless disagreement %v, want %v", n, eps, d.Disagreement, wantPA)
			}
			if math.Abs(d.MeanMinCount-float64(n)) > 1e-12 {
				t.Errorf("n=%d: lossless E[min count] = %v, want %d", n, d.MeanMinCount, n)
			}
		}
	}
}

func TestExactTotalLossIsSilent(t *testing.T) {
	d, err := Exact(10, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Nothing delivered: general 2 never counts, general 1 sits at 1.
	// Only general 1 can attack: disagreement = ε, liveness = 0.
	if d.Liveness != 0 {
		t.Errorf("total-loss liveness = %v, want 0", d.Liveness)
	}
	if math.Abs(d.Disagreement-0.3) > 1e-12 {
		t.Errorf("total-loss disagreement = %v, want ε", d.Disagreement)
	}
	if d.MeanMinCount != 0 {
		t.Errorf("total-loss E[min count] = %v, want 0", d.MeanMinCount)
	}
}

func TestExactDistributionWellFormed(t *testing.T) {
	for _, p := range []float64{0, 0.05, 0.3, 0.7, 1} {
		d, err := Exact(12, 0.1, p)
		if err != nil {
			t.Fatal(err)
		}
		sum := d.Liveness + d.Disagreement + d.Silence
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("p=%v: outcome mass %v", p, sum)
		}
		if d.Liveness < 0 || d.Disagreement < 0 || d.Silence < 0 {
			t.Errorf("p=%v: negative component %+v", p, d)
		}
		if d.MeanMinCount < 0 || d.MeanMinCount > 12 {
			t.Errorf("p=%v: mean min count %v out of range", p, d.MeanMinCount)
		}
	}
}

func TestExactMonotoneInLoss(t *testing.T) {
	// More loss cannot increase expected liveness or the mean level.
	prevLive, prevML := math.Inf(1), math.Inf(1)
	for _, p := range []float64{0, 0.1, 0.2, 0.4, 0.6, 0.8, 1} {
		d, err := Exact(15, 0.05, p)
		if err != nil {
			t.Fatal(err)
		}
		if d.Liveness > prevLive+1e-12 {
			t.Errorf("liveness rose with loss at p=%v", p)
		}
		if d.MeanMinCount > prevML+1e-12 {
			t.Errorf("mean level rose with loss at p=%v", p)
		}
		prevLive, prevML = d.Liveness, d.MeanMinCount
	}
}

func TestExactMatchesMonteCarlo(t *testing.T) {
	// The Markov chain against the real protocol under the real sampler:
	// expected liveness and disagreement must agree within MC noise.
	g := graph.Pair()
	const n = 14
	eps := 0.08
	s := core.MustS(eps)
	for _, p := range []float64{0.05, 0.2, 0.5} {
		exact, err := Exact(n, eps, p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := mc.Estimate(mc.Config{
			Protocol: s, Graph: g,
			Sampler: adversary.WeakSampler(g, n, p, 1, 2),
			Trials:  30000, Seed: uint64(1000 * p),
		})
		if err != nil {
			t.Fatal(err)
		}
		if ok, err := res.TA.Consistent(exact.Liveness, 1e-6); err != nil || !ok {
			t.Errorf("p=%v: MC liveness %v inconsistent with exact %v", p, res.TA, exact.Liveness)
		}
		if ok, err := res.PA.Consistent(exact.Disagreement, 1e-6); err != nil || !ok {
			t.Errorf("p=%v: MC disagreement %v inconsistent with exact %v", p, res.PA, exact.Disagreement)
		}
	}
}

func TestExactAlsoModelsSingleInputRuns(t *testing.T) {
	// With input at general 1 only, general 2 learns validity and rfire
	// from the same first message, so the counter chain is unchanged —
	// the MC of the real protocol under the single-input weak adversary
	// must still match Exact.
	g := graph.Pair()
	const n = 12
	eps := 0.1
	s := core.MustS(eps)
	for _, p := range []float64{0.1, 0.4} {
		exact, err := Exact(n, eps, p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := mc.Estimate(mc.Config{
			Protocol: s, Graph: g,
			Sampler: adversary.WeakSampler(g, n, p, 1), // input at 1 only
			Trials:  30000, Seed: uint64(7000 * p),
		})
		if err != nil {
			t.Fatal(err)
		}
		if ok, err := res.TA.Consistent(exact.Liveness, 1e-6); err != nil || !ok {
			t.Errorf("p=%v single-input: MC liveness %v vs exact %v", p, res.TA, exact.Liveness)
		}
		if ok, err := res.PA.Consistent(exact.Disagreement, 1e-6); err != nil || !ok {
			t.Errorf("p=%v single-input: MC disagreement %v vs exact %v", p, res.PA, exact.Disagreement)
		}
	}
}

func TestDisagreementFarBelowEpsilonWhenSaturated(t *testing.T) {
	// §8's headline: at ε·N comfortably above 1 and modest loss, the
	// expected disagreement is orders of magnitude below ε.
	eps := 0.1
	d, err := Exact(40, eps, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if d.Liveness < 0.999 {
		t.Errorf("liveness %v below saturation", d.Liveness)
	}
	if d.Disagreement > eps/100 {
		t.Errorf("disagreement %v not ≪ ε = %v", d.Disagreement, eps)
	}
}

func TestSaturationRounds(t *testing.T) {
	// Lossless: liveness 1 needs exactly ⌈1/ε⌉ rounds.
	n0, err := SaturationRounds(0.1, 0, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if n0 != 10 {
		t.Errorf("lossless saturation at %d rounds, want 10", n0)
	}
	// 20% loss: later, but by far less than the strong adversary's
	// "no better than linear" — a constant factor ≈ 1/(1-p)².
	n20, err := SaturationRounds(0.1, 0.2, 0.99, 200)
	if err != nil {
		t.Fatal(err)
	}
	if n20 <= n0 {
		t.Errorf("lossy saturation %d not after lossless %d", n20, n0)
	}
	if n20 > 3*n0 {
		t.Errorf("lossy saturation %d more than 3× lossless %d — not 'vastly better'", n20, n0)
	}
	if _, err := SaturationRounds(0.1, 0.9, 1, 5); err == nil {
		t.Error("unreachable target accepted")
	}
	if _, err := SaturationRounds(0.1, 0, 2, 10); err == nil {
		t.Error("target > 1 accepted")
	}
	if _, err := SaturationRounds(0.1, 0, 0.5, 0); err == nil {
		t.Error("maxN = 0 accepted")
	}
}
