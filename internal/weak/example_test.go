package weak_test

import (
	"fmt"
	"log"

	"coordattack/internal/weak"
)

// ExampleExact prices the §8 weak adversary exactly: with ε = 0.1 over 40
// rounds and 5% iid loss, liveness is saturated and expected disagreement
// is negligible next to the worst-case ε.
func ExampleExact() {
	d, err := weak.Exact(40, 0.1, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("liveness ≥ 0.999: %v\n", d.Liveness >= 0.999)
	fmt.Printf("disagreement < ε/100: %v\n", d.Disagreement < 0.1/100)
	// Output:
	// liveness ≥ 0.999: true
	// disagreement < ε/100: true
}

// ExampleSaturationRounds compares deadlines: random loss stretches the
// rounds needed for near-certain attack by a constant factor, not by the
// 1/ε wall the strong adversary imposes.
func ExampleSaturationRounds() {
	lossless, err := weak.SaturationRounds(0.1, 0, 1, 100)
	if err != nil {
		log.Fatal(err)
	}
	lossy, err := weak.SaturationRounds(0.1, 0.2, 0.99, 200)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lossless: %d rounds; 20%% loss: within 3x: %v\n", lossless, lossy <= 3*lossless)
	// Output:
	// lossless: 10 rounds; 20% loss: within 3x: true
}
