package baseline

import (
	"fmt"

	"coordattack/internal/graph"
	"coordattack/internal/protocol"
	"coordattack/internal/run"
)

// RingRelay is OUR m-general generalization of §3's Protocol A — an
// extension, not something the paper defines. A single token circulates
// a ring 1 → 2 → … → m → 1 …; the coordinator (process 1) seeds it with
// a secret threshold rfire uniform in {m+1 .. N}, and a general attacks
// iff it last held the token within the m rounds before rfire. If every
// token hop before round rfire is delivered, everyone's last possession
// falls in that window: total attack. The first destroyed hop at round c
// strands the generals who held the token before the window: partial
// attack exactly when rfire − m < c < rfire, a window of m−1 rounds, so
//
//	U_s(RingRelay_m) = (m−1)/(N−m),
//
// degrading linearly in m — the reason relaying cannot replace Protocol
// S's flooding as the group grows (experiment T18 measures the contrast).
//
// Validity: the token exists only if the coordinator received the input
// signal, and it carries that fact; no input at process 1 means no token
// and no attacks (inputs elsewhere are ignored by this simple extension).
type RingRelay struct{}

var _ protocol.Protocol = RingRelay{}

// NewRingRelay returns the ring-relay extension protocol.
func NewRingRelay() RingRelay { return RingRelay{} }

// Name implements protocol.Protocol.
func (RingRelay) Name() string { return "RingRelay" }

// RelayToken is the circulating packet.
type RelayToken struct {
	RFire int
}

// CAMessage implements protocol.Message.
func (RelayToken) CAMessage() {}

// RelayNull is the null message sent on non-token slots.
type RelayNull struct{}

// CAMessage implements protocol.Message.
func (RelayNull) CAMessage() {}

// Null implements protocol.NullMarker.
func (RelayNull) Null() bool { return true }

// NewMachine implements protocol.Protocol. Requires a graph containing
// the ring edges i→i+1 (mod m) — Ring(m) or denser — m ≥ 3 and N ≥ m+1.
func (RingRelay) NewMachine(cfg protocol.Config) (protocol.Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := cfg.G.NumVertices()
	if m < 3 {
		return nil, fmt.Errorf("baseline: RingRelay needs m ≥ 3, got %d", m)
	}
	if cfg.N < m+1 {
		return nil, fmt.Errorf("baseline: RingRelay needs N ≥ m+1 = %d, got %d", m+1, cfg.N)
	}
	for i := 1; i <= m; i++ {
		next := graph.ProcID(i%m + 1)
		if !cfg.G.HasEdge(graph.ProcID(i), next) {
			return nil, fmt.Errorf("baseline: RingRelay needs ring edge %d-%d", i, next)
		}
	}
	mach := &relayMachine{id: cfg.ID, m: m}
	if cfg.ID == 1 && cfg.Input {
		f, err := cfg.Tape.IntRange(m+1, cfg.N)
		if err != nil {
			return nil, fmt.Errorf("baseline: drawing rfire: %w", err)
		}
		mach.rfire = f
		mach.rfireKnown = true
		mach.lastHeld = 0 // the coordinator holds the token "at round 0"
		mach.holding = true
	} else {
		mach.lastHeld = -1
	}
	return mach, nil
}

type relayMachine struct {
	id graph.ProcID
	m  int

	rfire      int
	rfireKnown bool
	holding    bool
	lastHeld   int // round at the end of which we last held the token; -1 never
}

var _ protocol.Machine = (*relayMachine)(nil)

// next is the clockwise successor on the ring.
func (rm *relayMachine) next() graph.ProcID { return graph.ProcID(int(rm.id)%rm.m + 1) }

// Send implements protocol.Machine: the holder forwards the token each
// round; everyone else sends nulls.
func (rm *relayMachine) Send(round int, to graph.ProcID) protocol.Message {
	if rm.holding && to == rm.next() {
		return RelayToken{RFire: rm.rfire}
	}
	return RelayNull{}
}

// Step implements protocol.Machine.
func (rm *relayMachine) Step(round int, received []protocol.Received) error {
	if rm.holding {
		// The token was sent onward this round; whether it survives is
		// the adversary's choice, but we no longer hold it.
		rm.holding = false
	}
	for _, r := range received {
		tok, ok := r.Msg.(RelayToken)
		if !ok {
			continue
		}
		rm.holding = true
		rm.lastHeld = round
		rm.rfire = tok.RFire
		rm.rfireKnown = true
	}
	return nil
}

// Output implements protocol.Machine: attack iff the token's last visit
// was within the m rounds before rfire.
func (rm *relayMachine) Output() bool {
	return rm.rfireKnown && rm.lastHeld >= rm.rfire-rm.m
}

// AnalyzeRingRelay returns the exact outcome distribution of RingRelay on
// run r over a ring of m generals. The token path is deterministic given
// the run; only rfire is random.
func AnalyzeRingRelay(m int, r *run.Run) (*Dist, error) {
	if m < 3 {
		return nil, fmt.Errorf("baseline: RingRelay analysis needs m ≥ 3, got %d", m)
	}
	n := r.N()
	if n < m+1 {
		return nil, fmt.Errorf("baseline: RingRelay analysis needs N ≥ m+1 = %d, got %d", m+1, n)
	}
	if !r.HasInput(1) {
		// No token ever: certain silence.
		return &Dist{PNone: 1}, nil
	}
	// Deterministic token walk: holder h starts at 1 (round 0); at round
	// t the holder sends to its successor; delivery decides survival.
	lastHeld := make([]int, m+1)
	for i := range lastHeld {
		lastHeld[i] = -1
	}
	lastHeld[1] = 0
	knows := make([]bool, m+1)
	knows[1] = true
	holder := graph.ProcID(1)
	alive := true
	for t := 1; t <= n && alive; t++ {
		next := graph.ProcID(int(holder)%m + 1)
		if r.Delivered(holder, next, t) {
			holder = next
			lastHeld[holder] = t
			knows[holder] = true
		} else {
			alive = false
		}
	}
	// Sweep rfire uniform in {m+1 .. N}.
	var nTA, nPA, nNA int
	for f := m + 1; f <= n; f++ {
		attackers, refusers := 0, 0
		for i := 1; i <= m; i++ {
			if knows[i] && lastHeld[i] >= f-m {
				attackers++
			} else {
				refusers++
			}
		}
		switch {
		case attackers == m:
			nTA++
		case attackers > 0 && refusers > 0:
			nPA++
		default:
			nNA++
		}
	}
	den := float64(n - m)
	return &Dist{
		PTotal:   float64(nTA) / den,
		PPartial: float64(nPA) / den,
		PNone:    float64(nNA) / den,
	}, nil
}

// WorstCutUnsafetyRingRelay is the exact worst-case unsafety of the
// ring-relay extension: the adversary cuts one hop, and partial attack
// occurs iff rfire lands in the (m−1)-wide window after the cut.
func WorstCutUnsafetyRingRelay(m, n int) (float64, error) {
	if m < 3 || n < m+1 {
		return 0, fmt.Errorf("baseline: need m ≥ 3 and N ≥ m+1, got m=%d N=%d", m, n)
	}
	worst := float64(m-1) / float64(n-m)
	if worst > 1 {
		worst = 1
	}
	return worst, nil
}
