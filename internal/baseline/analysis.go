package baseline

import (
	"fmt"

	"coordattack/internal/graph"
	"coordattack/internal/run"
)

// Dist is an exact outcome distribution over (TA, PA, NA).
type Dist struct {
	PTotal   float64
	PPartial float64
	PNone    float64
}

// joint is the exact joint decision distribution of the two generals for
// one phase of Protocol A: probabilities that (1 attacks, 2 attacks),
// (only 1), (only 2), (neither), over the uniform choice of rfire.
type joint struct {
	both, only1, only2, neither float64
}

// phaseJoint deterministically simulates one Protocol A phase's packet
// flow on run r (rounds offset+1 .. offset+length) and sweeps rfire over
// its uniform range {2..length}. Everything except rfire is deterministic
// given the run, which is what makes the analysis exact.
func phaseJoint(r *run.Run, offset, length int) joint {
	var (
		lastRecv [3]int
		valid    [3]bool
		know2    bool
	)
	valid[1] = r.HasInput(1)
	valid[2] = r.HasInput(2)
	for vr := 1; vr <= length; vr++ {
		real := offset + vr
		if real > r.N() {
			break
		}
		sender, receiver := 1, 2
		if vr%2 == 1 {
			sender, receiver = 2, 1
		}
		var sent bool
		switch {
		case vr == 1:
			sent = true // process 2 opens the relay
		case sender == 1 && vr == 2:
			sent = lastRecv[1] == 1 && valid[1]
		default:
			sent = lastRecv[sender] == vr-1
		}
		if sent && r.Delivered(graph.ProcID(sender), graph.ProcID(receiver), real) {
			lastRecv[receiver] = vr
			if valid[sender] {
				valid[receiver] = true
			}
			if sender == 1 {
				know2 = true
			}
		}
	}
	var nBoth, nOnly1, nOnly2, nNeither int
	for f := 2; f <= length; f++ {
		o1 := valid[1] && lastRecv[1] >= f-1
		o2 := valid[2] && know2 && lastRecv[2] >= f-1
		switch {
		case o1 && o2:
			nBoth++
		case o1:
			nOnly1++
		case o2:
			nOnly2++
		default:
			nNeither++
		}
	}
	den := float64(length - 1)
	return joint{
		both:    float64(nBoth) / den,
		only1:   float64(nOnly1) / den,
		only2:   float64(nOnly2) / den,
		neither: float64(nNeither) / den,
	}
}

// AnalyzeA returns the exact outcome distribution of Protocol A on run r
// (two generals; r.N() ≥ 2). On the good run PTotal = 1; over cut runs
// the worst PPartial is exactly 1/(N-1) — experiment T1 rediscovers both.
func AnalyzeA(r *run.Run) (*Dist, error) {
	if r.N() < 2 {
		return nil, fmt.Errorf("baseline: Protocol A analysis needs N ≥ 2, got %d", r.N())
	}
	j := phaseJoint(r, 0, r.N())
	return &Dist{
		PTotal:   j.both,
		PPartial: j.only1 + j.only2,
		PNone:    j.neither,
	}, nil
}

// AnalyzeRepeatedA returns the exact outcome distribution of RepeatedA on
// run r. Phase thresholds are independent, so the joint distribution of
// the combined decisions factors across phases.
func AnalyzeRepeatedA(p *RepeatedA, r *run.Run) (*Dist, error) {
	length, err := p.PhaseLength(r.N())
	if err != nil {
		return nil, err
	}
	joints := make([]joint, 0, p.k)
	for phase := 0; phase < p.k; phase++ {
		joints = append(joints, phaseJoint(r, phase*length, length))
	}
	var pBoth, p1, p2 float64
	switch p.mode {
	case CombineAll:
		pBoth, p1, p2 = 1, 1, 1
		for _, j := range joints {
			pBoth *= j.both
			p1 *= j.both + j.only1
			p2 *= j.both + j.only2
		}
	default: // CombineAny: work with complements
		qBoth, q1, q2 := 1.0, 1.0, 1.0
		for _, j := range joints {
			qBoth *= j.neither        // neither attacks in any phase
			q1 *= j.neither + j.only2 // 1 never attacks
			q2 *= j.neither + j.only1 // 2 never attacks
		}
		p1, p2 = 1-q1, 1-q2
		// TA = 1 - P[1 never] - P[2 never] + P[neither ever]
		pBoth = 1 - q1 - q2 + qBoth
	}
	d := &Dist{
		PTotal:   pBoth,
		PPartial: p1 + p2 - 2*pBoth,
		PNone:    1 - p1 - p2 + pBoth,
	}
	return d, nil
}

// WorstCutUnsafetyA is the exact worst-case unsafety of Protocol A over
// all runs for horizon n: the adversary's best strategy is to cut the
// relay at its guess of rfire, succeeding with probability 1/(n-1).
func WorstCutUnsafetyA(n int) (float64, error) {
	if n < 2 {
		return 0, fmt.Errorf("baseline: Protocol A needs N ≥ 2, got %d", n)
	}
	return 1 / float64(n-1), nil
}
