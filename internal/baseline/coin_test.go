package baseline

import (
	"math"
	"testing"

	"coordattack/internal/graph"
	"coordattack/internal/rng"
	"coordattack/internal/run"
	"coordattack/internal/sim"
)

func TestXORCoinsValidity(t *testing.T) {
	p := NewXORCoins()
	g, err := graph.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	tape := rng.NewTape(3)
	for trial := 0; trial < 60; trial++ {
		r, err := run.RandomSubset(g, 3, tape)
		if err != nil {
			t.Fatal(err)
		}
		for _, i := range r.Inputs() {
			r.RemoveInput(i)
		}
		outs, err := sim.Outputs(p, g, r, sim.SeedTapes(uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= 4; i++ {
			if outs[i] {
				t.Fatalf("validity violated on %v", r)
			}
		}
	}
}

func TestXORCoinsPerfectCorrelationOnGoodRun(t *testing.T) {
	// On the K_2 good run both generals know both coins: their decisions
	// coincide in every execution.
	p := NewXORCoins()
	g := graph.Pair()
	good, err := run.Good(g, 2, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	stream := rng.NewStream(5)
	attacks := 0
	const trials = 2000
	for trial := 0; trial < trials; trial++ {
		outs, err := sim.Outputs(p, g, good, sim.StreamTapes(stream, uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		if outs[1] != outs[2] {
			t.Fatalf("decisions diverged on good run: %v", outs)
		}
		if outs[1] {
			attacks++
		}
	}
	// The shared parity is a fair coin: attack frequency ≈ 1/2.
	if frac := float64(attacks) / trials; math.Abs(frac-0.5) > 0.05 {
		t.Errorf("attack frequency %v far from 0.5", frac)
	}
}

func TestXORCoinsIndependenceWhenCausallyIndependent(t *testing.T) {
	// Ring of 4; inputs at 1 and 2; deliveries only 3→2. Process 1's
	// past is {1}, process 2's past is {2,3}: disjoint, so D_1 ⊥ D_2
	// (Lemma A.2). Each is a parity of fair coins: marginals ≈ 1/2,
	// joint ≈ 1/4.
	p := NewXORCoins()
	g, err := graph.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	r := run.MustNew(3)
	r.AddInput(1).AddInput(2).MustDeliver(3, 2, 1)
	stream := rng.NewStream(11)
	var n1, n2, nBoth int
	const trials = 8000
	for trial := 0; trial < trials; trial++ {
		outs, err := sim.Outputs(p, g, r, sim.StreamTapes(stream, uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		if outs[1] {
			n1++
		}
		if outs[2] {
			n2++
		}
		if outs[1] && outs[2] {
			nBoth++
		}
	}
	p1 := float64(n1) / trials
	p2 := float64(n2) / trials
	joint := float64(nBoth) / trials
	if math.Abs(p1-0.5) > 0.03 || math.Abs(p2-0.5) > 0.03 {
		t.Errorf("marginals %v, %v far from 0.5", p1, p2)
	}
	if math.Abs(joint-p1*p2) > 0.03 {
		t.Errorf("joint %v far from product %v: independence violated", joint, p1*p2)
	}
}

func TestXORCoinsRejectsHugeGraph(t *testing.T) {
	// m > 64 cannot be represented in the coin masks.
	edges := make([]graph.Edge, 0, 65)
	for i := 2; i <= 65; i++ {
		edges = append(edges, graph.Edge{A: 1, B: graph.ProcID(i)})
	}
	big, err := graph.New(65, edges)
	if err != nil {
		t.Fatal(err)
	}
	r := run.MustNew(1)
	if _, err := sim.Outputs(NewXORCoins(), big, r, sim.SeedTapes(1)); err == nil {
		t.Error("m=65 accepted")
	}
}

func TestXORCoinsConsumesOneBit(t *testing.T) {
	g := graph.Pair()
	r, err := run.Good(g, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	tapes := map[graph.ProcID]*rng.Tape{1: rng.NewTape(1), 2: rng.NewTape(2)}
	if _, err := sim.Outputs(NewXORCoins(), g, r, func(i graph.ProcID) *rng.Tape { return tapes[i] }); err != nil {
		t.Fatal(err)
	}
	for i, tape := range tapes {
		if tape.Consumed() != 1 {
			t.Errorf("process %d consumed %d bits, want exactly 1 (J = 1 protocol)", i, tape.Consumed())
		}
	}
}
