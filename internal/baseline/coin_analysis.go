package baseline

import (
	"fmt"
	"math/bits"

	"coordattack/internal/causality"
	"coordattack/internal/graph"
	"coordattack/internal/run"
)

// CoinAnalysis is the exact behaviour of XORCoins on one run. Given the
// run, process i's decision is deterministic in the coin vector: it
// attacks iff it has heard the input and the parity of the coins in its
// causal past is odd. The causal pasts are computable (flows-to), and the
// coin vector is uniform on {0,1}^m, so every probability is a sum over
// 2^m equally likely patterns — exact, no sampling.
type CoinAnalysis struct {
	// Known[i] is the bitmask of processes whose coin reached i (bit j-1
	// for process j); index 1..m, index 0 unused.
	Known []uint64
	// Valid[i] reports whether i heard the input.
	Valid []bool
	// PAttack[i] = Pr[D_i|R]: 0 if invalid, else exactly 1/2 (a parity
	// of ≥ 1 fair coins is a fair coin — i's own coin is always known).
	PAttack []float64
	// PTotal, PPartial, PNone are the exact outcome probabilities.
	PTotal, PPartial, PNone float64
}

// AnalyzeXORCoins computes the exact outcome distribution of XORCoins on
// run r over m processes (m ≤ 20 keeps the 2^m enumeration fast; the
// protocol itself allows up to 64).
func AnalyzeXORCoins(m int, r *run.Run) (*CoinAnalysis, error) {
	if m < 2 || m > 20 {
		return nil, fmt.Errorf("baseline: XORCoins analysis needs 2 ≤ m ≤ 20, got %d", m)
	}
	a := &CoinAnalysis{
		Known:   make([]uint64, m+1),
		Valid:   make([]bool, m+1),
		PAttack: make([]float64, m+1),
	}
	inputFirst := causality.InputArrival(r, m)
	for j := 1; j <= m; j++ {
		arrive := causality.ArrivalFrom(r, m, graph.ProcID(j), 0)
		for i := 1; i <= m; i++ {
			if arrive[i] <= r.N() {
				a.Known[i] |= 1 << uint(j-1)
			}
		}
	}
	anyValid := false
	for i := 1; i <= m; i++ {
		a.Valid[i] = inputFirst[i] <= r.N()
		if a.Valid[i] {
			a.PAttack[i] = 0.5
			anyValid = true
		}
	}
	if !anyValid {
		a.PNone = 1
		return a, nil
	}
	var nTA, nPA, nNA int
	total := 1 << uint(m)
	for coins := 0; coins < total; coins++ {
		attackers, refusers := 0, 0
		for i := 1; i <= m; i++ {
			if a.Valid[i] && bits.OnesCount64(uint64(coins)&a.Known[i])%2 == 1 {
				attackers++
			} else {
				refusers++
			}
		}
		switch {
		case attackers == m:
			nTA++
		case attackers > 0 && refusers > 0:
			nPA++
		default:
			nNA++
		}
	}
	a.PTotal = float64(nTA) / float64(total)
	a.PPartial = float64(nPA) / float64(total)
	a.PNone = float64(nNA) / float64(total)
	return a, nil
}

// JointAttack returns the exact Pr[D_i ∧ D_j | R] for XORCoins: by
// Lemma A.2 this equals Pr[D_i]·Pr[D_j] = 1/4 whenever i and j are
// causally independent (disjoint known-sets) and both valid.
func (a *CoinAnalysis) JointAttack(i, j graph.ProcID) float64 {
	if !a.Valid[i] || !a.Valid[j] {
		return 0
	}
	ki, kj := a.Known[i], a.Known[j]
	m := len(a.Known) - 1
	total := 1 << uint(m)
	hits := 0
	for coins := 0; coins < total; coins++ {
		if bits.OnesCount64(uint64(coins)&ki)%2 == 1 && bits.OnesCount64(uint64(coins)&kj)%2 == 1 {
			hits++
		}
	}
	return float64(hits) / float64(total)
}
