package baseline

import (
	"math"
	"testing"

	"coordattack/internal/causality"
	"coordattack/internal/graph"
	"coordattack/internal/protocol"
	"coordattack/internal/rng"
	"coordattack/internal/run"
	"coordattack/internal/sim"
)

func TestAnalyzeXORCoinsValidation(t *testing.T) {
	r := run.MustNew(2)
	if _, err := AnalyzeXORCoins(1, r); err == nil {
		t.Error("m=1 accepted")
	}
	if _, err := AnalyzeXORCoins(21, r); err == nil {
		t.Error("m=21 accepted")
	}
}

func TestAnalyzeXORCoinsNoInput(t *testing.T) {
	a, err := AnalyzeXORCoins(3, run.MustNew(2))
	if err != nil {
		t.Fatal(err)
	}
	if a.PNone != 1 || a.PTotal != 0 || a.PPartial != 0 {
		t.Errorf("no-input distribution wrong: %+v", a)
	}
}

func TestAnalyzeXORCoinsGoodRunPair(t *testing.T) {
	// Good run on K_2: both know both coins → decisions identical →
	// TA and NA each 1/2, PA = 0; marginals 1/2.
	g := graph.Pair()
	good, err := run.Good(g, 2, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, err := AnalyzeXORCoins(2, good)
	if err != nil {
		t.Fatal(err)
	}
	if a.PTotal != 0.5 || a.PNone != 0.5 || a.PPartial != 0 {
		t.Errorf("good-run distribution (%v, %v, %v), want (0.5, 0, 0.5)",
			a.PTotal, a.PPartial, a.PNone)
	}
	if a.PAttack[1] != 0.5 || a.PAttack[2] != 0.5 {
		t.Errorf("marginals %v", a.PAttack)
	}
	if joint := a.JointAttack(1, 2); joint != 0.5 {
		t.Errorf("entangled joint = %v, want 0.5 (identical events)", joint)
	}
}

func TestAnalyzeXORCoinsIndependentJoint(t *testing.T) {
	// Disjoint pasts: joint = product = 1/4 (Lemma A.2, exactly).
	r := run.MustNew(3)
	r.AddInput(1).AddInput(2)
	r.MustDeliver(3, 2, 1)
	a, err := AnalyzeXORCoins(4, r)
	if err != nil {
		t.Fatal(err)
	}
	if !causality.CausallyIndependent(r, 4, 1, 2) {
		t.Fatal("setup: 1 and 2 should be causally independent")
	}
	if joint := a.JointAttack(1, 2); math.Abs(joint-0.25) > 1e-12 {
		t.Errorf("independent joint = %v, want exactly 1/4", joint)
	}
}

func TestAnalyzeXORCoinsMatchesMonteCarlo(t *testing.T) {
	g, err := graph.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	p := NewXORCoins()
	tape := rng.NewTape(17)
	for trialRun := 0; trialRun < 6; trialRun++ {
		r, err := run.RandomSubset(g, 3, tape)
		if err != nil {
			t.Fatal(err)
		}
		a, err := AnalyzeXORCoins(4, r)
		if err != nil {
			t.Fatal(err)
		}
		stream := rng.NewStream(uint64(trialRun))
		var nTA, nPA int
		const trials = 6000
		for trial := 0; trial < trials; trial++ {
			oc, err := sim.Outcome(p, g, r, sim.StreamTapes(stream, uint64(trial)))
			if err != nil {
				t.Fatal(err)
			}
			switch oc {
			case protocol.TotalAttack:
				nTA++
			case protocol.PartialAttack:
				nPA++
			}
		}
		ta := float64(nTA) / trials
		pa := float64(nPA) / trials
		if math.Abs(ta-a.PTotal) > 0.03 || math.Abs(pa-a.PPartial) > 0.03 {
			t.Errorf("run %v: exact (%.3f, %.3f) vs measured (%.3f, %.3f)",
				r, a.PTotal, a.PPartial, ta, pa)
		}
	}
}
