package baseline

import (
	"fmt"

	"coordattack/internal/graph"
	"coordattack/internal/protocol"
)

// DetMsg is the message of the deterministic baselines: a validity flood.
type DetMsg struct {
	Valid bool
}

// CAMessage implements protocol.Message.
func (DetMsg) CAMessage() {}

// DetFullInfo is the natural deterministic attempt at coordinated attack:
// flood knowledge of the input, and attack iff the input is known and
// every neighbor's message arrived in every round (perfect information).
// It satisfies validity and attacks on the good run, so by the Gray/
// Halpern-Moses impossibility it must violate agreement on some run —
// the chain argument in internal/impossibility finds that run.
type DetFullInfo struct{}

var _ protocol.Protocol = DetFullInfo{}

// NewDetFullInfo returns the full-information deterministic baseline.
func NewDetFullInfo() DetFullInfo { return DetFullInfo{} }

// Name implements protocol.Protocol.
func (DetFullInfo) Name() string { return "DetFullInfo" }

// NewMachine implements protocol.Protocol. The machine never touches the
// random tape: this is a J = 0 protocol.
func (DetFullInfo) NewMachine(cfg protocol.Config) (protocol.Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &detFullInfoMachine{
		valid:  cfg.Input,
		degree: cfg.G.Degree(cfg.ID),
	}, nil
}

type detFullInfoMachine struct {
	valid   bool
	degree  int
	missing bool
}

func (d *detFullInfoMachine) Send(round int, to graph.ProcID) protocol.Message {
	return DetMsg{Valid: d.valid}
}

func (d *detFullInfoMachine) Step(round int, received []protocol.Received) error {
	if len(received) < d.degree {
		d.missing = true
	}
	for _, r := range received {
		msg, ok := r.Msg.(DetMsg)
		if !ok {
			return fmt.Errorf("baseline: DetFullInfo received foreign message %T", r.Msg)
		}
		if msg.Valid {
			d.valid = true
		}
	}
	return nil
}

func (d *detFullInfoMachine) Output() bool { return d.valid && !d.missing }

// DetThreshold is a softer deterministic baseline: attack iff the input
// is known and at least frac of all expected messages arrived. It too is
// deterministic, so the chain argument breaks it as well — demonstrating
// that the impossibility is not an artifact of DetFullInfo's brittleness.
type DetThreshold struct {
	// Num/Den is the required delivered fraction, e.g. 1/2.
	Num, Den int
}

var _ protocol.Protocol = DetThreshold{}

// NewDetThreshold returns the threshold baseline requiring num/den of all
// expected messages.
func NewDetThreshold(num, den int) (DetThreshold, error) {
	if den <= 0 || num < 0 || num > den {
		return DetThreshold{}, fmt.Errorf("baseline: threshold %d/%d not a fraction in [0,1]", num, den)
	}
	return DetThreshold{Num: num, Den: den}, nil
}

// Name implements protocol.Protocol.
func (p DetThreshold) Name() string { return fmt.Sprintf("DetThreshold(%d/%d)", p.Num, p.Den) }

// NewMachine implements protocol.Protocol.
func (p DetThreshold) NewMachine(cfg protocol.Config) (protocol.Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &detThresholdMachine{
		valid:    cfg.Input,
		expected: cfg.G.Degree(cfg.ID) * cfg.N,
		num:      p.Num,
		den:      p.Den,
	}, nil
}

type detThresholdMachine struct {
	valid    bool
	expected int
	got      int
	num, den int
}

func (d *detThresholdMachine) Send(round int, to graph.ProcID) protocol.Message {
	return DetMsg{Valid: d.valid}
}

func (d *detThresholdMachine) Step(round int, received []protocol.Received) error {
	d.got += len(received)
	for _, r := range received {
		if msg, ok := r.Msg.(DetMsg); ok && msg.Valid {
			d.valid = true
		}
	}
	return nil
}

func (d *detThresholdMachine) Output() bool {
	return d.valid && d.got*d.den >= d.expected*d.num
}
