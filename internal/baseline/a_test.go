package baseline

import (
	"math"
	"testing"

	"coordattack/internal/graph"
	"coordattack/internal/protocol"
	"coordattack/internal/rng"
	"coordattack/internal/run"
	"coordattack/internal/sim"
)

func pair() *graph.G { return graph.Pair() }

func mustGood(t *testing.T, n int, inputs ...graph.ProcID) *run.Run {
	t.Helper()
	r, err := run.Good(pair(), n, inputs...)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// estimate measures outcome frequencies over Monte-Carlo trials.
func estimate(t *testing.T, p protocol.Protocol, r *run.Run, trials int, seed uint64) (ta, pa, na float64) {
	t.Helper()
	stream := rng.NewStream(seed)
	var nTA, nPA, nNA int
	for trial := 0; trial < trials; trial++ {
		oc, err := sim.Outcome(p, pair(), r, sim.StreamTapes(stream, uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		switch oc {
		case protocol.TotalAttack:
			nTA++
		case protocol.PartialAttack:
			nPA++
		default:
			nNA++
		}
	}
	n := float64(trials)
	return float64(nTA) / n, float64(nPA) / n, float64(nNA) / n
}

func TestAMachineValidation(t *testing.T) {
	a := NewA()
	tri, err := graph.Complete(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.NewMachine(protocol.Config{ID: 1, G: tri, N: 5, Tape: rng.NewTape(1)}); err == nil {
		t.Error("Protocol A accepted 3 generals")
	}
	if _, err := a.NewMachine(protocol.Config{ID: 1, G: pair(), N: 1, Tape: rng.NewTape(1)}); err == nil {
		t.Error("Protocol A accepted N=1")
	}
	if a.Name() != "A" {
		t.Errorf("Name = %q", a.Name())
	}
}

func TestALivenessOneOnGoodRun(t *testing.T) {
	// §3: L(A, R_g) = 1 — on the fully delivered run with valid input,
	// both generals always attack, for every rfire.
	a := NewA()
	for _, n := range []int{2, 3, 5, 10} {
		r := mustGood(t, n, 1)
		stream := rng.NewStream(42)
		for trial := 0; trial < 50; trial++ {
			oc, err := sim.Outcome(a, pair(), r, sim.StreamTapes(stream, uint64(trial)))
			if err != nil {
				t.Fatal(err)
			}
			if oc != protocol.TotalAttack {
				t.Fatalf("N=%d trial %d: outcome %v on good run, want TA", n, trial, oc)
			}
		}
		d, err := AnalyzeA(r)
		if err != nil {
			t.Fatal(err)
		}
		if d.PTotal != 1 {
			t.Errorf("N=%d: exact PTotal on good run = %v, want 1", n, d.PTotal)
		}
	}
}

func TestAValidity(t *testing.T) {
	// No input: nobody attacks, whatever the adversary does.
	a := NewA()
	tape := rng.NewTape(9)
	for trial := 0; trial < 100; trial++ {
		r, err := run.RandomSubset(pair(), 5, tape)
		if err != nil {
			t.Fatal(err)
		}
		for _, i := range r.Inputs() {
			r.RemoveInput(i)
		}
		outs, err := sim.Outputs(a, pair(), r, sim.SeedTapes(uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		if outs[1] || outs[2] {
			t.Fatalf("validity violated on %v: %v", r, outs)
		}
	}
}

func TestACutAtRfireCausesPartialAttack(t *testing.T) {
	// White-box: fix the tape, read the drawn rfire, cut exactly there —
	// partial attack must result; cutting anywhere else must not.
	a := NewA()
	const n = 8
	tapes := sim.SeedTapes(123)
	mach, err := a.NewMachine(protocol.Config{ID: 1, G: pair(), N: n, Input: true, Tape: tapes(1)})
	if err != nil {
		t.Fatal(err)
	}
	rfire, known := mach.(*AMachine).RFire()
	if !known || rfire < 2 || rfire > n {
		t.Fatalf("rfire = %d (known=%v), want in {2..%d}", rfire, known, n)
	}
	good := mustGood(t, n, 1, 2)
	for cut := 1; cut <= n; cut++ {
		r := run.CutAt(good, cut)
		oc, err := sim.Outcome(a, pair(), r, sim.SeedTapes(123))
		if err != nil {
			t.Fatal(err)
		}
		var want protocol.Outcome
		switch {
		case cut == rfire:
			want = protocol.PartialAttack
		case cut > rfire:
			want = protocol.TotalAttack
		default:
			want = protocol.NoAttack
		}
		if oc != want {
			t.Errorf("cut=%d rfire=%d: outcome %v, want %v", cut, rfire, oc, want)
		}
	}
}

func TestAUnsafetyIsOneOverN(t *testing.T) {
	// §3: U_s(A) = 1/(N-1) ≈ 1/N. The worst run is a cut at any round
	// in {2..N}; exact analysis and Monte-Carlo agree.
	for _, n := range []int{4, 8, 16} {
		good := mustGood(t, n, 1, 2)
		worst, err := WorstCutUnsafetyA(n)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 2; cut <= n; cut++ {
			r := run.CutAt(good, cut)
			d, err := AnalyzeA(r)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(d.PPartial-worst) > 1e-12 {
				t.Errorf("N=%d cut=%d: exact PA = %v, want %v", n, cut, d.PPartial, worst)
			}
		}
		_, pa, _ := estimate(t, NewA(), run.CutAt(good, n/2+1), 6000, uint64(n))
		if math.Abs(pa-worst) > 0.02 {
			t.Errorf("N=%d: measured PA = %v, want ≈ %v", n, pa, worst)
		}
	}
	if _, err := WorstCutUnsafetyA(1); err == nil {
		t.Error("WorstCutUnsafetyA(1) succeeded")
	}
}

func TestADropOneMessageKillsLiveness(t *testing.T) {
	// §3 question 2: drop only process 1's round-2 packet: all but one
	// message delivered, yet L(A, R) = 0 — the motivation for Protocol S.
	const n = 6
	r := mustGood(t, n, 1, 2)
	r.Drop(1, 2, 2)
	d, err := AnalyzeA(r)
	if err != nil {
		t.Fatal(err)
	}
	if d.PTotal != 0 {
		t.Errorf("liveness after one drop = %v, want 0", d.PTotal)
	}
	ta, _, _ := estimate(t, NewA(), r, 2000, 7)
	if ta != 0 {
		t.Errorf("measured liveness after one drop = %v, want 0", ta)
	}
}

func TestAnalyzeAMatchesMonteCarlo(t *testing.T) {
	// Exact analysis vs simulation on random runs — the analysis is a
	// complete model of the protocol.
	const n, trials = 6, 3000
	tape := rng.NewTape(31)
	for trialRun := 0; trialRun < 12; trialRun++ {
		r, err := run.RandomSubset(pair(), n, tape)
		if err != nil {
			t.Fatal(err)
		}
		d, err := AnalyzeA(r)
		if err != nil {
			t.Fatal(err)
		}
		ta, pa, na := estimate(t, NewA(), r, trials, uint64(trialRun))
		if math.Abs(ta-d.PTotal) > 0.035 || math.Abs(pa-d.PPartial) > 0.035 || math.Abs(na-d.PNone) > 0.035 {
			t.Errorf("run %v: exact (%.3f, %.3f, %.3f) vs measured (%.3f, %.3f, %.3f)",
				r, d.PTotal, d.PPartial, d.PNone, ta, pa, na)
		}
	}
}

func TestAInputOnlyAtProcessTwo(t *testing.T) {
	// Input at 2 only, good run: 2's round-1 packet reports the input,
	// 1 relays — both attack always.
	const n = 6
	r := mustGood(t, n, 2)
	d, err := AnalyzeA(r)
	if err != nil {
		t.Fatal(err)
	}
	if d.PTotal != 1 {
		t.Errorf("PTotal = %v, want 1", d.PTotal)
	}
	// Input at 2 only and round-1 packet cut: protocol dies silently.
	cut := run.CutAt(r.Clone(), 1)
	d2, err := AnalyzeA(cut)
	if err != nil {
		t.Fatal(err)
	}
	if d2.PNone != 1 {
		t.Errorf("PNone = %v, want 1 (nobody ever learns anything)", d2.PNone)
	}
}

func TestAEnginesAgree(t *testing.T) {
	a := NewA()
	tape := rng.NewTape(77)
	for trial := 0; trial < 25; trial++ {
		r, err := run.RandomSubset(pair(), 5, tape)
		if err != nil {
			t.Fatal(err)
		}
		loop, err := sim.Outputs(a, pair(), r, sim.SeedTapes(uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		conc, err := sim.ConcurrentOutputs(a, pair(), r, sim.SeedTapes(uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		if loop[1] != conc[1] || loop[2] != conc[2] {
			t.Fatalf("trial %d: engines disagree: %v vs %v", trial, loop, conc)
		}
	}
}
