// Package baseline implements the comparators the paper measures Protocol
// S against: the simple two-general Protocol A of §3, the "run A several
// times" amplification RepeatedA whose failure motivates the §5 lower
// bound, and deterministic protocols used by the impossibility chain
// argument.
package baseline

import (
	"fmt"

	"coordattack/internal/graph"
	"coordattack/internal/protocol"
)

// A is the §3 example protocol for two generals. Process 1 draws a random
// round rfire uniform in {2..N}. The generals relay a single packet back
// and forth — process 2 on odd rounds, process 1 on even rounds — each
// sending only if it received the previous packet, so the first destroyed
// packet silences the protocol. A general attacks iff the relay survived
// into round rfire-1, it knows rfire, and it knows the input arrived.
// The adversary cannot see rfire, so it causes partial attack only by
// guessing the cut round: U_s(A) = 1/(N-1) ≈ 1/N, while on the good run
// liveness is 1.
type A struct{}

var _ protocol.Protocol = A{}

// NewA returns Protocol A.
func NewA() A { return A{} }

// Name implements protocol.Protocol.
func (A) Name() string { return "A" }

// NewMachine implements protocol.Protocol. Protocol A is defined for
// exactly two generals and needs N ≥ 2 so that rfire's range {2..N} is
// nonempty.
func (A) NewMachine(cfg protocol.Config) (protocol.Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.G.NumVertices() != 2 {
		return nil, fmt.Errorf("baseline: Protocol A needs exactly 2 generals, got %d", cfg.G.NumVertices())
	}
	if cfg.N < 2 {
		return nil, fmt.Errorf("baseline: Protocol A needs N ≥ 2, got %d", cfg.N)
	}
	m := &AMachine{id: cfg.ID, n: cfg.N, valid: cfg.Input}
	if cfg.ID == 1 {
		f, err := cfg.Tape.IntRange(2, cfg.N)
		if err != nil {
			return nil, fmt.Errorf("baseline: drawing rfire: %w", err)
		}
		m.rfire = f
		m.rfireKnown = true
	}
	return m, nil
}

// APacket is a non-null Protocol A message ("packet" in §3): it carries
// rfire when the sender knows it and the sender's knowledge of the input.
type APacket struct {
	RFire      int
	RFireKnown bool
	Valid      bool
}

// CAMessage implements protocol.Message.
func (APacket) CAMessage() {}

// ANull is the null message sent in rounds where the protocol has no
// packet to send; receivers ignore it.
type ANull struct{}

// CAMessage implements protocol.Message.
func (ANull) CAMessage() {}

// Null implements protocol.NullMarker.
func (ANull) Null() bool { return true }

// AMachine is one general running Protocol A. The offset field shifts the
// protocol in time so RepeatedA can run phases of A back to back; plain A
// has offset 0 and span n.
type AMachine struct {
	id     graph.ProcID
	n      int // virtual horizon (rfire ∈ {2..n})
	offset int // real round = offset + virtual round

	rfire      int
	rfireKnown bool
	valid      bool
	lastPacket int // highest virtual round whose packet we received
}

var _ protocol.Machine = (*AMachine)(nil)

// virtualRound maps a real round into this machine's phase, or 0 if the
// round is outside the phase.
func (a *AMachine) virtualRound(round int) int {
	vr := round - a.offset
	if vr < 1 || vr > a.n {
		return 0
	}
	return vr
}

// sendsPacket reports whether σ emits a packet (vs a null) this round:
// process 2 opens in virtual round 1; afterwards a process sends on its
// parity (1 even, 2 odd) iff it received the previous round's packet —
// with the §3 validity gate at round 2: process 1 stays silent unless it
// knows some input arrived.
func (a *AMachine) sendsPacket(vr int) bool {
	if vr == 0 {
		return false
	}
	if vr == 1 {
		return a.id == 2
	}
	myTurn := (a.id == 1 && vr%2 == 0) || (a.id == 2 && vr%2 == 1)
	if !myTurn || a.lastPacket != vr-1 {
		return false
	}
	if a.id == 1 && vr == 2 && !a.valid {
		return false
	}
	return true
}

// Send implements protocol.Machine.
func (a *AMachine) Send(round int, to graph.ProcID) protocol.Message {
	if !a.sendsPacket(a.virtualRound(round)) {
		return ANull{}
	}
	return APacket{RFire: a.rfire, RFireKnown: a.rfireKnown, Valid: a.valid}
}

// Step implements protocol.Machine.
func (a *AMachine) Step(round int, received []protocol.Received) error {
	vr := a.virtualRound(round)
	if vr == 0 {
		return nil
	}
	for _, r := range received {
		pkt, ok := r.Msg.(APacket)
		if !ok {
			continue // null (or foreign phase) message: ignored
		}
		if vr > a.lastPacket {
			a.lastPacket = vr
		}
		if pkt.Valid {
			a.valid = true
		}
		if pkt.RFireKnown && !a.rfireKnown {
			a.rfire = pkt.RFire
			a.rfireKnown = true
		}
	}
	return nil
}

// Output implements protocol.Machine: attack iff the packet chain reached
// round rfire-1, rfire is known, and the input is known to have arrived.
func (a *AMachine) Output() bool {
	return a.valid && a.rfireKnown && a.lastPacket >= a.rfire-1
}

// LastPacket exposes the chain length for white-box tests.
func (a *AMachine) LastPacket() int { return a.lastPacket }

// RFire exposes (rfire, known) for white-box tests.
func (a *AMachine) RFire() (int, bool) { return a.rfire, a.rfireKnown }

// Valid exposes the validity flag for white-box tests.
func (a *AMachine) Valid() bool { return a.valid }
