package baseline

import (
	"fmt"
	"math/bits"

	"coordattack/internal/graph"
	"coordattack/internal/protocol"
)

// XORCoins is a deliberately naive randomized protocol used to *probe the
// model*, not to solve coordinated attack well: every process flips one
// fair coin at start and floods (process → coin) pairs; a process attacks
// iff it knows some input arrived and the XOR of every coin it has heard
// (its own included) is 1.
//
// Its value is that D_i is a parity over exactly the coins in i's causal
// past, which makes Appendix A tangible: when i and j are causally
// independent their pasts are disjoint, so D_i and D_j are parities of
// disjoint fair coins — probabilistically independent (Lemma A.2). When
// both hear all the same coins (e.g. the good run on K_2) the events are
// identical — maximally correlated. Experiment T12 measures both regimes.
type XORCoins struct{}

var _ protocol.Protocol = XORCoins{}

// NewXORCoins returns the coin-parity test protocol.
func NewXORCoins() XORCoins { return XORCoins{} }

// Name implements protocol.Protocol.
func (XORCoins) Name() string { return "XORCoins" }

// XORMsg floods the sender's knowledge: which processes' coins it has
// heard (a bitmask, bit i-1 ⇔ process i), those coins' values (same
// indexing), and validity.
type XORMsg struct {
	Known uint64
	Coins uint64
	Valid bool
}

// CAMessage implements protocol.Message.
func (XORMsg) CAMessage() {}

// NewMachine implements protocol.Protocol. Every process consumes exactly
// one random bit (so the protocol fits a J = 1 budget).
func (XORCoins) NewMachine(cfg protocol.Config) (protocol.Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if m := cfg.G.NumVertices(); m > 64 {
		return nil, fmt.Errorf("baseline: XORCoins needs m ≤ 64, got %d", m)
	}
	b, err := cfg.Tape.Bit()
	if err != nil {
		return nil, fmt.Errorf("baseline: flipping coin: %w", err)
	}
	mach := &xorMachine{valid: cfg.Input, known: 1 << uint(cfg.ID-1)}
	if b == 1 {
		mach.coins = 1 << uint(cfg.ID-1)
	}
	return mach, nil
}

type xorMachine struct {
	known uint64
	coins uint64
	valid bool
}

func (x *xorMachine) Send(round int, to graph.ProcID) protocol.Message {
	return XORMsg{Known: x.known, Coins: x.coins, Valid: x.valid}
}

func (x *xorMachine) Step(round int, received []protocol.Received) error {
	for _, r := range received {
		msg, ok := r.Msg.(XORMsg)
		if !ok {
			return fmt.Errorf("baseline: XORCoins received foreign message %T", r.Msg)
		}
		x.known |= msg.Known
		x.coins |= msg.Coins & msg.Known
		if msg.Valid {
			x.valid = true
		}
	}
	return nil
}

func (x *xorMachine) Output() bool {
	return x.valid && bits.OnesCount64(x.coins)%2 == 1
}
