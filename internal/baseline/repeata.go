package baseline

import (
	"fmt"

	"coordattack/internal/graph"
	"coordattack/internal/protocol"
)

// CombineMode says how RepeatedA merges its phases' decisions.
type CombineMode int

const (
	// CombineAll attacks iff every phase decided to attack.
	CombineAll CombineMode = iota + 1
	// CombineAny attacks iff at least one phase decided to attack.
	CombineAny
)

func (c CombineMode) String() string {
	switch c {
	case CombineAll:
		return "all"
	case CombineAny:
		return "any"
	default:
		return fmt.Sprintf("CombineMode(%d)", int(c))
	}
}

// RepeatedA is the §3 amplification attempt: run k independent copies of
// Protocol A back to back (each in N/k rounds, each with a fresh rfire)
// and combine the phase decisions. The paper's §5 lower bound implies
// this cannot beat the L/U ≤ L(R) tradeoff, and experiment T10 measures
// the failure: each phase's unsafety is ≈ k/N, so the combined protocol
// is strictly worse than a single A over all N rounds.
type RepeatedA struct {
	k    int
	mode CombineMode
}

var _ protocol.Protocol = (*RepeatedA)(nil)

// NewRepeatedA returns the k-phase amplification with the given combine
// mode. k must be at least 1.
func NewRepeatedA(k int, mode CombineMode) (*RepeatedA, error) {
	if k < 1 {
		return nil, fmt.Errorf("baseline: RepeatedA needs k ≥ 1, got %d", k)
	}
	if mode != CombineAll && mode != CombineAny {
		return nil, fmt.Errorf("baseline: unknown combine mode %d", mode)
	}
	return &RepeatedA{k: k, mode: mode}, nil
}

// Name implements protocol.Protocol.
func (p *RepeatedA) Name() string { return fmt.Sprintf("A×%d(%s)", p.k, p.mode) }

// K reports the phase count.
func (p *RepeatedA) K() int { return p.k }

// Mode reports the combine mode.
func (p *RepeatedA) Mode() CombineMode { return p.mode }

// PhaseLength returns the rounds per phase for horizon n, or an error if
// n is too short to give every phase the minimum two rounds.
func (p *RepeatedA) PhaseLength(n int) (int, error) {
	l := n / p.k
	if l < 2 {
		return 0, fmt.Errorf("baseline: RepeatedA with k=%d needs N ≥ %d, got %d", p.k, 2*p.k, n)
	}
	return l, nil
}

// NewMachine implements protocol.Protocol.
func (p *RepeatedA) NewMachine(cfg protocol.Config) (protocol.Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.G.NumVertices() != 2 {
		return nil, fmt.Errorf("baseline: RepeatedA needs exactly 2 generals, got %d", cfg.G.NumVertices())
	}
	length, err := p.PhaseLength(cfg.N)
	if err != nil {
		return nil, err
	}
	m := &RepeatedAMachine{mode: p.mode, length: length}
	for phase := 0; phase < p.k; phase++ {
		am := &AMachine{id: cfg.ID, n: length, offset: phase * length, valid: cfg.Input}
		if cfg.ID == 1 {
			f, err := cfg.Tape.IntRange(2, length)
			if err != nil {
				return nil, fmt.Errorf("baseline: drawing rfire for phase %d: %w", phase, err)
			}
			am.rfire = f
			am.rfireKnown = true
		}
		m.phases = append(m.phases, am)
	}
	return m, nil
}

// RepeatedAMachine runs the phase machines, routing each round to the
// phase that owns it.
type RepeatedAMachine struct {
	mode   CombineMode
	length int
	phases []*AMachine
}

var _ protocol.Machine = (*RepeatedAMachine)(nil)

func (m *RepeatedAMachine) phaseFor(round int) *AMachine {
	idx := (round - 1) / m.length
	if idx < 0 || idx >= len(m.phases) {
		return nil // leftover rounds beyond k·length: idle
	}
	return m.phases[idx]
}

// Send implements protocol.Machine.
func (m *RepeatedAMachine) Send(round int, to graph.ProcID) protocol.Message {
	if ph := m.phaseFor(round); ph != nil {
		return ph.Send(round, to)
	}
	return ANull{}
}

// Step implements protocol.Machine.
func (m *RepeatedAMachine) Step(round int, received []protocol.Received) error {
	if ph := m.phaseFor(round); ph != nil {
		return ph.Step(round, received)
	}
	return nil
}

// Output implements protocol.Machine.
func (m *RepeatedAMachine) Output() bool {
	switch m.mode {
	case CombineAll:
		for _, ph := range m.phases {
			if !ph.Output() {
				return false
			}
		}
		return true
	default: // CombineAny
		for _, ph := range m.phases {
			if ph.Output() {
				return true
			}
		}
		return false
	}
}
