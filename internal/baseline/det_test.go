package baseline

import (
	"testing"

	"coordattack/internal/graph"
	"coordattack/internal/protocol"
	"coordattack/internal/rng"
	"coordattack/internal/run"
	"coordattack/internal/sim"
)

func TestDetFullInfoGoodRun(t *testing.T) {
	p := NewDetFullInfo()
	if p.Name() == "" {
		t.Error("empty name")
	}
	for _, build := range []func() (*graph.G, error){
		func() (*graph.G, error) { return graph.Complete(2) },
		func() (*graph.G, error) { return graph.Ring(4) },
		func() (*graph.G, error) { return graph.Star(5) },
	} {
		g, err := build()
		if err != nil {
			t.Fatal(err)
		}
		r, err := run.Good(g, g.NumVertices(), 1)
		if err != nil {
			t.Fatal(err)
		}
		oc, err := sim.Outcome(p, g, r, sim.SeedTapes(1))
		if err != nil {
			t.Fatal(err)
		}
		if oc != protocol.TotalAttack {
			t.Errorf("%v: good-run outcome %v, want TA (nontriviality)", g, oc)
		}
	}
}

func TestDetFullInfoValidity(t *testing.T) {
	p := NewDetFullInfo()
	g := graph.Pair()
	r, err := run.Good(g, 4) // everything delivered, no input
	if err != nil {
		t.Fatal(err)
	}
	oc, err := sim.Outcome(p, g, r, sim.SeedTapes(2))
	if err != nil {
		t.Fatal(err)
	}
	if oc != protocol.NoAttack {
		t.Errorf("outcome %v on no-input run, want NA", oc)
	}
}

func TestDetFullInfoDisagreesAfterLastDrop(t *testing.T) {
	// Drop one round-N delivery: the receiver loses full information and
	// refuses; the other still attacks — the concrete two-generals
	// disagreement.
	p := NewDetFullInfo()
	g := graph.Pair()
	r, err := run.Good(g, 3, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	r.Drop(1, 2, 3)
	outs, err := sim.Outputs(p, g, r, sim.SeedTapes(3))
	if err != nil {
		t.Fatal(err)
	}
	if !outs[1] || outs[2] {
		t.Errorf("outputs = %v, want 1 attacks and 2 does not", outs)
	}
}

func TestDetThresholdValidation(t *testing.T) {
	if _, err := NewDetThreshold(3, 2); err == nil {
		t.Error("fraction > 1 accepted")
	}
	if _, err := NewDetThreshold(-1, 2); err == nil {
		t.Error("negative numerator accepted")
	}
	if _, err := NewDetThreshold(1, 0); err == nil {
		t.Error("zero denominator accepted")
	}
	p, err := NewDetThreshold(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() == "" {
		t.Error("empty name")
	}
}

func TestDetThresholdBehaviour(t *testing.T) {
	p, err := NewDetThreshold(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Pair()
	// Good run: full delivery ≥ half → TA.
	good, err := run.Good(g, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	oc, err := sim.Outcome(p, g, good, sim.SeedTapes(4))
	if err != nil {
		t.Fatal(err)
	}
	if oc != protocol.TotalAttack {
		t.Errorf("good run outcome %v, want TA", oc)
	}
	// Prefix keeping only round 1 of 4: 1/4 < 1/2 delivered → nobody
	// attacks (both fall below threshold).
	quarter := run.Prefix(good, 1)
	oc, err = sim.Outcome(p, g, quarter, sim.SeedTapes(4))
	if err != nil {
		t.Fatal(err)
	}
	if oc != protocol.NoAttack {
		t.Errorf("quarter-delivery outcome %v, want NA", oc)
	}
	// No input: validity.
	silent, err := run.Good(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	oc, err = sim.Outcome(p, g, silent, sim.SeedTapes(4))
	if err != nil {
		t.Fatal(err)
	}
	if oc != protocol.NoAttack {
		t.Errorf("no-input outcome %v, want NA", oc)
	}
}

func TestDetProtocolsIgnoreTape(t *testing.T) {
	// J = 0: deterministic protocols must not consume a single random
	// bit. We hand each process a persistent tape and audit consumption.
	g := graph.Pair()
	r, err := run.Good(g, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	thr, err := NewDetThreshold(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []protocol.Protocol{NewDetFullInfo(), thr} {
		tapes := map[graph.ProcID]*rng.Tape{1: rng.NewTape(1), 2: rng.NewTape(2)}
		if _, err := sim.Outputs(p, g, r, func(i graph.ProcID) *rng.Tape { return tapes[i] }); err != nil {
			t.Fatal(err)
		}
		for i, tape := range tapes {
			if tape.Consumed() != 0 {
				t.Errorf("%s: process %d consumed %d random bits, want 0", p.Name(), i, tape.Consumed())
			}
		}
	}
}
