package baseline

import (
	"math"
	"testing"

	"coordattack/internal/graph"
	"coordattack/internal/protocol"
	"coordattack/internal/rng"
	"coordattack/internal/run"
	"coordattack/internal/sim"
)

func ringAndGood(t *testing.T, m, n int, inputs ...graph.ProcID) (*graph.G, *run.Run) {
	t.Helper()
	g, err := graph.Ring(m)
	if err != nil {
		t.Fatal(err)
	}
	r, err := run.Good(g, n, inputs...)
	if err != nil {
		t.Fatal(err)
	}
	return g, r
}

func TestRingRelayValidation(t *testing.T) {
	p := NewRingRelay()
	g, err := graph.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.NewMachine(protocol.Config{ID: 1, G: g, N: 4, Tape: rng.NewTape(1)}); err == nil {
		t.Error("N = m accepted (needs N ≥ m+1)")
	}
	line, err := graph.Line(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.NewMachine(protocol.Config{ID: 1, G: line, N: 9, Tape: rng.NewTape(1)}); err == nil {
		t.Error("missing ring edge accepted")
	}
	if _, err := AnalyzeRingRelay(2, run.MustNew(9)); err == nil {
		t.Error("m=2 analysis accepted")
	}
	if _, err := AnalyzeRingRelay(4, run.MustNew(4)); err == nil {
		t.Error("short-horizon analysis accepted")
	}
	if _, err := WorstCutUnsafetyRingRelay(2, 9); err == nil {
		t.Error("bad worst-cut params accepted")
	}
}

func TestRingRelayLivenessOneOnGoodRun(t *testing.T) {
	p := NewRingRelay()
	for _, m := range []int{3, 5} {
		n := 3 * m
		g, good := ringAndGood(t, m, n, 1)
		for trial := 0; trial < 40; trial++ {
			oc, err := sim.Outcome(p, g, good, sim.SeedTapes(uint64(trial)))
			if err != nil {
				t.Fatal(err)
			}
			if oc != protocol.TotalAttack {
				t.Fatalf("m=%d trial %d: outcome %v on good run", m, trial, oc)
			}
		}
		d, err := AnalyzeRingRelay(m, good)
		if err != nil {
			t.Fatal(err)
		}
		if d.PTotal != 1 {
			t.Errorf("m=%d: exact good-run liveness %v", m, d.PTotal)
		}
	}
}

func TestRingRelayValidity(t *testing.T) {
	p := NewRingRelay()
	g, err := graph.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	tape := rng.NewTape(3)
	for trial := 0; trial < 60; trial++ {
		r, err := run.RandomSubset(g, 6, tape)
		if err != nil {
			t.Fatal(err)
		}
		for _, i := range r.Inputs() {
			r.RemoveInput(i)
		}
		outs, err := sim.Outputs(p, g, r, sim.SeedTapes(uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= 4; i++ {
			if outs[i] {
				t.Fatalf("validity violated on %v", r)
			}
		}
	}
	// Input only away from the coordinator: token never starts.
	silent, err := run.Good(g, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	d, err := AnalyzeRingRelay(4, silent)
	if err != nil {
		t.Fatal(err)
	}
	if d.PNone != 1 {
		t.Errorf("input-at-3 run: PNone = %v, want 1", d.PNone)
	}
}

func TestRingRelayAnalysisMatchesMonteCarlo(t *testing.T) {
	p := NewRingRelay()
	const m, n, trials = 4, 12, 4000
	g, good := ringAndGood(t, m, n, 1)
	tape := rng.NewTape(7)
	runs := []*run.Run{good, run.CutAt(good, 7), run.CutAt(good, 3)}
	for i := 0; i < 5; i++ {
		r, err := run.RandomSubset(g, n, tape)
		if err != nil {
			t.Fatal(err)
		}
		r.AddInput(1)
		runs = append(runs, r)
	}
	stream := rng.NewStream(11)
	for _, r := range runs {
		d, err := AnalyzeRingRelay(m, r)
		if err != nil {
			t.Fatal(err)
		}
		var nTA, nPA int
		for trial := 0; trial < trials; trial++ {
			oc, err := sim.Outcome(p, g, r, sim.StreamTapes(stream, uint64(trial)))
			if err != nil {
				t.Fatal(err)
			}
			switch oc {
			case protocol.TotalAttack:
				nTA++
			case protocol.PartialAttack:
				nPA++
			}
		}
		ta := float64(nTA) / trials
		pa := float64(nPA) / trials
		if math.Abs(ta-d.PTotal) > 0.035 || math.Abs(pa-d.PPartial) > 0.035 {
			t.Errorf("run %v: exact (%.3f, %.3f) vs measured (%.3f, %.3f)",
				r, d.PTotal, d.PPartial, ta, pa)
		}
	}
}

func TestRingRelayUnsafetyWindow(t *testing.T) {
	// The PA window is m−1 rounds wide: cutting anywhere in the middle
	// yields PA probability exactly (m−1)/(N−m), and the worst over all
	// cuts equals WorstCutUnsafetyRingRelay.
	const m, n = 5, 25
	_, good := ringAndGood(t, m, n, 1)
	worst, err := WorstCutUnsafetyRingRelay(m, n)
	if err != nil {
		t.Fatal(err)
	}
	if want := float64(m-1) / float64(n-m); math.Abs(worst-want) > 1e-12 {
		t.Fatalf("WorstCutUnsafetyRingRelay = %v, want %v", worst, want)
	}
	maxPA := 0.0
	for c := 1; c <= n; c++ {
		d, err := AnalyzeRingRelay(m, run.CutAt(good, c))
		if err != nil {
			t.Fatal(err)
		}
		if d.PPartial > maxPA {
			maxPA = d.PPartial
		}
	}
	if math.Abs(maxPA-worst) > 1e-12 {
		t.Errorf("max cut PA = %v, want %v", maxPA, worst)
	}
	// A mid-window cut exactly realizes it.
	d, err := AnalyzeRingRelay(m, run.CutAt(good, n/2))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.PPartial-worst) > 1e-12 {
		t.Errorf("mid cut PA = %v, want %v", d.PPartial, worst)
	}
}

func TestRingRelayDegradesWithM(t *testing.T) {
	// The point of the extension: the disagreement window grows linearly
	// in the ring size, unlike Protocol S's fixed ε.
	const n = 40
	prev := 0.0
	for _, m := range []int{3, 5, 8, 12} {
		worst, err := WorstCutUnsafetyRingRelay(m, n)
		if err != nil {
			t.Fatal(err)
		}
		if worst <= prev {
			t.Errorf("m=%d: unsafety %v did not grow from %v", m, worst, prev)
		}
		prev = worst
	}
}
