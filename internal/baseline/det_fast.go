package baseline

import (
	"fmt"

	"coordattack/internal/graph"
	"coordattack/internal/protocol"
	"coordattack/internal/rng"
	"coordattack/internal/run"
)

// The deterministic baselines carry tiny per-process state (a validity
// bit plus message accounting), so their fast states are flat arrays of
// that state, double-buffered by round parity exactly like Protocol S's.
// Both fold delivered in-neighbors in ascending sender order; for these
// protocols the fold is pure OR/count, so order only matters for keeping
// the structural contract uniform across fast states.

var (
	_ protocol.FastProtocol = DetFullInfo{}
	_ protocol.FastProtocol = DetThreshold{}
)

type detCell struct {
	valid   bool
	missing bool
	got     int
}

type detFastState struct {
	n, m int
	// threshold: nil for DetFullInfo; for DetThreshold the num/den pair.
	num, den  int
	threshold bool
	neighbors [][]graph.ProcID
	buf       [2][]detCell
}

func newDetFastState(g *graph.G, n int) (*detFastState, error) {
	if n < 1 {
		return nil, fmt.Errorf("baseline: fast state needs N ≥ 1, got %d", n)
	}
	m := g.NumVertices()
	st := &detFastState{n: n, m: m}
	st.neighbors = make([][]graph.ProcID, m+1)
	for i := 1; i <= m; i++ {
		st.neighbors[i] = g.Neighbors(graph.ProcID(i))
	}
	st.buf[0] = make([]detCell, m+1)
	st.buf[1] = make([]detCell, m+1)
	return st, nil
}

// NewFastState implements protocol.FastProtocol.
func (DetFullInfo) NewFastState(g *graph.G, n int) (protocol.FastState, error) {
	return newDetFastState(g, n)
}

// NewFastState implements protocol.FastProtocol.
func (p DetThreshold) NewFastState(g *graph.G, n int) (protocol.FastState, error) {
	st, err := newDetFastState(g, n)
	if err != nil {
		return nil, err
	}
	st.threshold = true
	st.num, st.den = p.Num, p.Den
	return st, nil
}

// Init implements protocol.FastState. Neither baseline touches the tape:
// these are J = 0 protocols.
func (st *detFastState) Init(rs *run.Set, bank *rng.Bank) error {
	cur := st.buf[0]
	for i := 1; i <= st.m; i++ {
		cur[i] = detCell{valid: rs.HasInput(graph.ProcID(i))}
	}
	return nil
}

// Step implements protocol.FastState.
func (st *detFastState) Step(rs *run.Set, round int, i graph.ProcID) error {
	prev := st.buf[(round-1)&1]
	cell := prev[i]
	received := 0
	for _, from := range st.neighbors[i] {
		if rs.Delivered(from, i, round) {
			received++
			cell.valid = cell.valid || prev[from].valid
		}
	}
	if received < len(st.neighbors[i]) {
		cell.missing = true
	}
	cell.got += received
	st.buf[round&1][i] = cell
	return nil
}

// Output implements protocol.FastState.
func (st *detFastState) Output(i graph.ProcID) bool {
	cell := &st.buf[st.n&1][i]
	if st.threshold {
		expected := len(st.neighbors[i]) * st.n
		return cell.valid && cell.got*st.den >= expected*st.num
	}
	return cell.valid && !cell.missing
}
