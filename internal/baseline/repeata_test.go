package baseline

import (
	"math"
	"strings"
	"testing"

	"coordattack/internal/protocol"
	"coordattack/internal/rng"
	"coordattack/internal/run"
	"coordattack/internal/sim"
)

func TestNewRepeatedAValidation(t *testing.T) {
	if _, err := NewRepeatedA(0, CombineAll); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewRepeatedA(2, CombineMode(9)); err == nil {
		t.Error("bogus combine mode accepted")
	}
	p, err := NewRepeatedA(3, CombineAny)
	if err != nil {
		t.Fatal(err)
	}
	if p.K() != 3 || p.Mode() != CombineAny {
		t.Errorf("accessors: k=%d mode=%v", p.K(), p.Mode())
	}
	if !strings.Contains(p.Name(), "3") || !strings.Contains(p.Name(), "any") {
		t.Errorf("Name = %q", p.Name())
	}
	if _, err := p.PhaseLength(5); err == nil {
		t.Error("N=5 with k=3 accepted (phases need ≥ 2 rounds)")
	}
	if l, err := p.PhaseLength(12); err != nil || l != 4 {
		t.Errorf("PhaseLength(12) = %d, %v; want 4", l, err)
	}
	if _, err := p.NewMachine(protocol.Config{ID: 1, G: pair(), N: 5, Tape: rng.NewTape(1)}); err == nil {
		t.Error("machine with too-short N accepted")
	}
}

func TestRepeatedAEqualsAWhenKIsOne(t *testing.T) {
	// k=1 must reproduce Protocol A exactly: same tape → same rfire →
	// same outputs on every run.
	p1, err := NewRepeatedA(1, CombineAll)
	if err != nil {
		t.Fatal(err)
	}
	a := NewA()
	tape := rng.NewTape(5)
	for trial := 0; trial < 40; trial++ {
		r, err := run.RandomSubset(pair(), 6, tape)
		if err != nil {
			t.Fatal(err)
		}
		outsA, err := sim.Outputs(a, pair(), r, sim.SeedTapes(uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		outsR, err := sim.Outputs(p1, pair(), r, sim.SeedTapes(uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		if outsA[1] != outsR[1] || outsA[2] != outsR[2] {
			t.Fatalf("trial %d: A and A×1 disagree: %v vs %v on %v", trial, outsA, outsR, r)
		}
	}
}

func TestRepeatedALivenessOnGoodRun(t *testing.T) {
	// Every phase succeeds on the good run, so both combine modes give
	// liveness 1 — the amplification keeps the good-run behaviour...
	const n = 12
	good := mustGood(t, n, 1, 2)
	for _, mode := range []CombineMode{CombineAll, CombineAny} {
		p, err := NewRepeatedA(3, mode)
		if err != nil {
			t.Fatal(err)
		}
		d, err := AnalyzeRepeatedA(p, good)
		if err != nil {
			t.Fatal(err)
		}
		if d.PTotal != 1 {
			t.Errorf("mode %v: good-run liveness = %v, want 1", mode, d.PTotal)
		}
	}
}

func TestRepeatedAUnsafetyWorseThanA(t *testing.T) {
	// ...but its worst-case unsafety is ≈ k/N, k times worse than A's
	// 1/(N-1): amplification cannot beat the §5 tradeoff (T10).
	const n = 12
	good := mustGood(t, n, 1, 2)
	singleWorst, err := WorstCutUnsafetyA(n)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 3} {
		for _, mode := range []CombineMode{CombineAll, CombineAny} {
			p, err := NewRepeatedA(k, mode)
			if err != nil {
				t.Fatal(err)
			}
			length, err := p.PhaseLength(n)
			if err != nil {
				t.Fatal(err)
			}
			// Adversary: deliver everything except one cut inside the
			// last phase (CombineAll) or the first phase (CombineAny);
			// earlier/later phases then combine to expose the PA.
			worstPA := 0.0
			for cut := 1; cut <= n; cut++ {
				d, err := AnalyzeRepeatedA(p, run.CutAt(good, cut))
				if err != nil {
					t.Fatal(err)
				}
				if d.PPartial > worstPA {
					worstPA = d.PPartial
				}
			}
			phaseWorst := 1 / float64(length-1)
			if worstPA < phaseWorst-1e-9 {
				t.Errorf("k=%d mode %v: worst cut PA %v below phase bound %v", k, mode, worstPA, phaseWorst)
			}
			if worstPA <= singleWorst {
				t.Errorf("k=%d mode %v: amplification 'improved' unsafety (%v ≤ %v) — it must not",
					k, mode, worstPA, singleWorst)
			}
		}
	}
}

func TestAnalyzeRepeatedAMatchesMonteCarlo(t *testing.T) {
	const n, trials = 8, 4000
	p, err := NewRepeatedA(2, CombineAll)
	if err != nil {
		t.Fatal(err)
	}
	pAny, err := NewRepeatedA(2, CombineAny)
	if err != nil {
		t.Fatal(err)
	}
	tape := rng.NewTape(13)
	for trialRun := 0; trialRun < 8; trialRun++ {
		r, err := run.RandomSubset(pair(), n, tape)
		if err != nil {
			t.Fatal(err)
		}
		for _, proto := range []*RepeatedA{p, pAny} {
			d, err := AnalyzeRepeatedA(proto, r)
			if err != nil {
				t.Fatal(err)
			}
			ta, pa, na := estimate(t, proto, r, trials, uint64(trialRun))
			if math.Abs(ta-d.PTotal) > 0.03 || math.Abs(pa-d.PPartial) > 0.03 || math.Abs(na-d.PNone) > 0.03 {
				t.Errorf("%s on %v: exact (%.3f,%.3f,%.3f) vs measured (%.3f,%.3f,%.3f)",
					proto.Name(), r, d.PTotal, d.PPartial, d.PNone, ta, pa, na)
			}
		}
	}
}

func TestRepeatedAValidity(t *testing.T) {
	p, err := NewRepeatedA(2, CombineAny)
	if err != nil {
		t.Fatal(err)
	}
	tape := rng.NewTape(17)
	for trial := 0; trial < 50; trial++ {
		r, err := run.RandomSubset(pair(), 8, tape)
		if err != nil {
			t.Fatal(err)
		}
		for _, i := range r.Inputs() {
			r.RemoveInput(i)
		}
		outs, err := sim.Outputs(p, pair(), r, sim.SeedTapes(uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		if outs[1] || outs[2] {
			t.Fatalf("validity violated: %v on %v", outs, r)
		}
	}
}

func TestCombineModeString(t *testing.T) {
	if CombineAll.String() != "all" || CombineAny.String() != "any" {
		t.Error("CombineMode strings wrong")
	}
	if !strings.HasPrefix(CombineMode(42).String(), "CombineMode(") {
		t.Error("unknown mode string wrong")
	}
}
