package chaos

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"coordattack/internal/mc"
	"coordattack/internal/queue"
	"coordattack/internal/service"
)

// latestSegment returns the newest journal segment in dir — the one a
// crash mid-append would have torn.
func latestSegment(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".wal" {
			segs = append(segs, e.Name())
		}
	}
	if len(segs) == 0 {
		t.Fatal("no journal segments on disk")
	}
	sort.Strings(segs)
	return filepath.Join(dir, segs[len(segs)-1])
}

// TestSoakCrashRestartRequeueExactlyOnce is the crash soak for the
// durable pending queue: a daemon is "killed" (abandoned un-drained)
// with a non-empty backlog — one running gate job, three accepted
// singletons, and a four-cell sweep, all journaled but unstarted — and
// the crash additionally tears the journal's final append mid-line. A
// second daemon over the same queue directory must:
//
//   - recover every fully-written accept (the torn tail is dropped,
//     counted in coordd_queue_journal_truncated_total, and loses no
//     intact record);
//   - re-admit the backlog, sweep cells and singletons alike, keeping
//     each record's class;
//   - settle every replayed job done exactly once: engine runs equal
//     the number of distinct keys, and the journal ends empty.
func TestSoakCrashRestartRequeueExactlyOnce(t *testing.T) {
	qdir := filepath.Join(t.TempDir(), "queue")
	j1, err := queue.OpenJournal(qdir, queue.JournalOptions{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(j1.Close)
	block := make(chan struct{})
	srv1 := service.New(service.Config{
		Workers:          1,
		Journal:          j1,
		WatchdogInterval: -1,
		WrapEngine: func(name string, next service.RunFunc) service.RunFunc {
			return func(ctx context.Context, spec service.JobSpec, workers int, progress func(mc.Snapshot)) (json.RawMessage, error) {
				if spec.Seed == 666 {
					<-block
				}
				return next(ctx, spec, workers, progress)
			}
		},
	})

	// The gate job holds the only worker so everything after it stays
	// accepted-but-unstarted.
	gate, err := srv1.Submit(soakSpec(666))
	if err != nil {
		t.Fatal(err)
	}
	waitRunning := time.Now().Add(5 * time.Second)
	for {
		st, err := srv1.Get(gate.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == service.StateRunning {
			break
		}
		if time.Now().After(waitRunning) {
			t.Fatalf("gate job stuck in %s", st.State)
		}
		time.Sleep(time.Millisecond)
	}
	for seed := uint64(1); seed <= 3; seed++ {
		if _, err := srv1.Submit(soakSpec(seed)); err != nil {
			t.Fatalf("singleton seed %d: %v", seed, err)
		}
	}
	if _, err := srv1.SubmitSweep(service.SweepSpec{
		Base: soakSpec(0),
		Axes: service.SweepAxes{Seeds: []uint64{201, 202, 203, 204}},
	}); err != nil {
		t.Fatal(err)
	}
	// The sweep dispatcher is asynchronous; wait for all 8 accepts
	// (gate + 3 singletons + 4 cells) to reach the journal.
	const backlog = 8
	waitJournal := time.Now().Add(10 * time.Second)
	for j1.Stats().Pending != backlog {
		if time.Now().After(waitJournal) {
			t.Fatalf("journal pending = %d, want %d", j1.Stats().Pending, backlog)
		}
		time.Sleep(time.Millisecond)
	}
	keys := make(map[string]bool)
	for _, st := range srv1.Jobs() {
		keys[st.Key] = true
	}
	if len(keys) != backlog {
		t.Fatalf("accepted %d distinct keys, want %d", len(keys), backlog)
	}

	// Crash. srv1 is abandoned un-drained with its journal handle open,
	// exactly as SIGKILL leaves a process; on top, the final append is
	// torn mid-line.
	t.Cleanup(func() {
		close(block)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv1.Drain(ctx)
	})
	seg := latestSegment(t, qdir)
	torn := []byte("coordd-queue/v1 0f0f0f {\"op\":\"accept\",\"key\":\"torn-midwri")
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Restart: reopen the journal, verify recovery, bring up a fresh
	// daemon over it and let the backlog drain.
	j2, err := queue.OpenJournal(qdir, queue.JournalOptions{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(j2.Close)
	if st := j2.Stats(); st.Pending != backlog || st.Truncated != 1 {
		t.Fatalf("recovered pending=%d truncated=%d, want %d/1", st.Pending, st.Truncated, backlog)
	}
	classes := map[string]int{}
	for _, r := range j2.Pending() {
		if !keys[r.Key] {
			t.Fatalf("journal replayed unknown key %q", r.Key)
		}
		classes[r.Class]++
	}
	if classes[string(queue.ClassInteractive)] != 4 || classes[string(queue.ClassSweep)] != 4 {
		t.Fatalf("replayed classes = %v, want 4 interactive + 4 sweep", classes)
	}

	srv2 := service.New(service.Config{Workers: 3, Journal: j2})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv2.Drain(ctx)
	}()
	if got := srv2.Metrics().QueueReplayed.Load(); got != backlog {
		t.Fatalf("queue_replayed_total = %d, want %d", got, backlog)
	}
	waitSettle := time.Now().Add(30 * time.Second)
	for {
		jobs := srv2.Jobs()
		settled := 0
		for _, st := range jobs {
			if st.State.Terminal() {
				settled++
			}
		}
		if len(jobs) == backlog && settled == backlog {
			for _, st := range jobs {
				if st.State != service.StateDone {
					t.Fatalf("replayed job %s settled %s: %s", st.ID, st.State, st.Error)
				}
				if !keys[st.Key] {
					t.Fatalf("replayed job %s has unknown key %s", st.ID, st.Key)
				}
			}
			break
		}
		if time.Now().After(waitSettle) {
			t.Fatalf("backlog did not settle: %d jobs, %d settled", len(jobs), settled)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Exactly once: one engine run per distinct key, nothing lost,
	// nothing left in the journal to resurrect on a third boot.
	if runs := srv2.Metrics().EngineRuns.Load(); runs != backlog {
		t.Fatalf("engine runs after replay = %d, want %d", runs, backlog)
	}
	if failed, cancelled := srv2.Metrics().JobsFailed.Load(), srv2.Metrics().JobsCancelled.Load(); failed != 0 || cancelled != 0 {
		t.Fatalf("failed=%d cancelled=%d after replay, want 0/0", failed, cancelled)
	}
	if st := j2.Stats(); st.Pending != 0 {
		t.Fatalf("journal pending = %d after settlement, want 0", st.Pending)
	}
}
