package chaos

import (
	"encoding/json"
	"fmt"
	"testing"

	"coordattack/internal/queue"
	"coordattack/internal/store"
)

// TestJournalTornWriteFaultThenReplay: chaos-injected torn writes on the
// live pending-queue journal never corrupt the records around them —
// each line carries its own checksum, so replay recovers every fully-
// written accept and drops only the torn ones (and any record a torn
// line's remainder merged into).
func TestJournalTornWriteFaultThenReplay(t *testing.T) {
	dir := t.TempDir()
	cfs, err := NewFS(store.DiskFS(), Plan{Seed: 7, PTorn: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	j1, err := queue.OpenJournal(dir, queue.JournalOptions{FS: cfs, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	accepted := make(map[string]bool)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("k%02d", i)
		rec := queue.Record{
			Key:   k,
			Flow:  "interactive",
			Class: string(queue.ClassInteractive),
			Spec:  json.RawMessage(fmt.Sprintf(`{"protocol":"s:0.5","seed":%d}`, i)),
		}
		if err := j1.Accept(rec); err != nil {
			t.Fatalf("Accept(%s): %v", k, err)
		}
		accepted[k] = true
	}
	j1.Close()
	if cfs.Stats().TornWrites == 0 {
		t.Fatal("plan injected no torn writes; bump PTorn or change the seed")
	}

	j2, err := queue.OpenJournal(dir, queue.JournalOptions{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	st := j2.Stats()
	if st.Truncated == 0 {
		t.Fatalf("torn writes injected but nothing truncated: %+v", st)
	}
	for _, r := range j2.Pending() {
		if !accepted[r.Key] {
			t.Fatalf("replay invented key %q", r.Key)
		}
		if r.Flow != "interactive" {
			t.Fatalf("replayed record corrupted: %+v", r)
		}
	}
	if got := len(j2.Pending()); got == 0 || got >= n {
		t.Fatalf("replayed %d records, want in (0, %d) with faults injected", got, n)
	}
}

// TestJournalWriteFaultDegradesNotFails: an injected EIO on the journal
// write path demotes it to memory-only; subsequent accepts succeed
// without durability, mirroring the result store's degrade discipline.
func TestJournalWriteFaultDegradesNotFails(t *testing.T) {
	dir := t.TempDir()
	cfs, err := NewFS(store.DiskFS(), Plan{})
	if err != nil {
		t.Fatal(err)
	}
	j, err := queue.OpenJournal(dir, queue.JournalOptions{FS: cfs, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	cfs.Break()
	if err := j.Accept(queue.Record{Key: "x", Spec: json.RawMessage(`{}`)}); err == nil {
		t.Fatal("accept during outage returned nil, want advisory error")
	}
	if !j.Degraded() {
		t.Fatal("journal not degraded after injected EIO")
	}
	cfs.Heal()
	if err := j.Accept(queue.Record{Key: "y", Spec: json.RawMessage(`{}`)}); err != nil {
		t.Fatalf("accept while degraded = %v, want nil (memory-only)", err)
	}
	if st := j.Stats(); st.Pending != 2 {
		t.Fatalf("pending = %d, want 2 in-memory records", st.Pending)
	}
}
