package chaos

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// rtFunc adapts a function to http.RoundTripper.
type rtFunc func(*http.Request) (*http.Response, error)

func (f rtFunc) RoundTrip(req *http.Request) (*http.Response, error) { return f(req) }

func okResponse() *http.Response {
	return &http.Response{
		StatusCode: http.StatusOK,
		Body:       io.NopCloser(strings.NewReader("")),
	}
}

func netRequest(t *testing.T, url string) *http.Request {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	return req
}

// dropSchedule replays n requests against a fresh PeerNet and records
// which indices were dropped.
func dropSchedule(t *testing.T, plan NetPlan, n int) []bool {
	t.Helper()
	pn, err := NewPeerNet(rtFunc(func(*http.Request) (*http.Response, error) {
		return okResponse(), nil
	}), plan)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]bool, n)
	for i := range out {
		resp, err := pn.RoundTrip(netRequest(t, "http://peer:8344/v1/peer/results/k"))
		if err != nil {
			out[i] = true
			continue
		}
		resp.Body.Close()
	}
	return out
}

// The drop schedule is a pure function of (seed, request index): equal
// seeds replay identical fault sequences, distinct seeds diverge.
func TestPeerNetDeterministicSchedule(t *testing.T) {
	plan := NetPlan{Seed: 41, PDrop: 0.3}
	const n = 200
	first := dropSchedule(t, plan, n)
	second := dropSchedule(t, plan, n)
	drops := 0
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("request %d: drop=%v on replay %v — schedule not deterministic", i, first[i], second[i])
		}
		if first[i] {
			drops++
		}
	}
	// With PDrop 0.3 over 200 requests the schedule must actually both
	// drop and forward — a degenerate all-or-nothing tape would pass the
	// equality check while testing nothing.
	if drops < n/10 || drops > n/2+n/4 {
		t.Fatalf("%d of %d requests dropped at PDrop=0.3 — tape implausible", drops, n)
	}
	other := dropSchedule(t, NetPlan{Seed: 42, PDrop: 0.3}, n)
	same := 0
	for i := range first {
		if first[i] == other[i] {
			same++
		}
	}
	if same == n {
		t.Fatal("seeds 41 and 42 drew identical schedules")
	}
}

// Sever refuses exactly the partitioned host and Heal restores it;
// other peers are untouched throughout.
func TestPeerNetSeverHeal(t *testing.T) {
	var forwarded []string
	pn, err := NewPeerNet(rtFunc(func(req *http.Request) (*http.Response, error) {
		forwarded = append(forwarded, req.URL.Host)
		return okResponse(), nil
	}), NetPlan{})
	if err != nil {
		t.Fatal(err)
	}
	call := func(host string) error {
		resp, err := pn.RoundTrip(netRequest(t, "http://"+host+"/v1/peer/results/k"))
		if err == nil {
			resp.Body.Close()
		}
		return err
	}

	pn.Sever("10.0.0.2:8344")
	if err := call("10.0.0.2:8344"); err == nil {
		t.Fatal("severed peer answered")
	}
	if err := call("10.0.0.3:8344"); err != nil {
		t.Fatalf("unsevered peer refused: %v", err)
	}
	pn.Heal("10.0.0.2:8344")
	if err := call("10.0.0.2:8344"); err != nil {
		t.Fatalf("healed peer still refused: %v", err)
	}
	if len(forwarded) != 2 {
		t.Fatalf("inner transport saw %v, want the 2 admitted requests", forwarded)
	}
	st := pn.Stats()
	if st.Severed != 1 || st.Forwards != 2 || st.Drops != 0 {
		t.Fatalf("stats = %+v, want severed=1 forwards=2 drops=0", st)
	}
}

// Injected delay holds the request for DelayFor and counts it.
func TestPeerNetDelay(t *testing.T) {
	pn, err := NewPeerNet(rtFunc(func(*http.Request) (*http.Response, error) {
		return okResponse(), nil
	}), NetPlan{Seed: 7, PDelay: 1, DelayFor: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	const n = 4
	for i := 0; i < n; i++ {
		resp, err := pn.RoundTrip(netRequest(t, "http://peer:8344/healthz"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if elapsed := time.Since(start); elapsed < n*5*time.Millisecond {
		t.Fatalf("4 always-delayed requests took %v, want >= 20ms", elapsed)
	}
	if st := pn.Stats(); st.Delays != n {
		t.Fatalf("delays = %d, want %d", st.Delays, n)
	}
}

// A nil inner transport defaults to http.DefaultTransport and actually
// reaches a live server.
func TestPeerNetNilInnerDefaults(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()
	pn, err := NewPeerNet(nil, NetPlan{})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := pn.RoundTrip(netRequest(t, srv.URL+"/ping"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

// Invalid plans are rejected up front, mirroring Plan.validate.
func TestPeerNetPlanValidation(t *testing.T) {
	bad := []NetPlan{
		{PDrop: -0.1},
		{PDrop: 1.5},
		{PDelay: 2},
		{DelayFor: -time.Second},
	}
	for _, plan := range bad {
		if _, err := NewPeerNet(nil, plan); err == nil {
			t.Fatalf("plan %+v accepted", plan)
		}
	}
}
