package chaos

import (
	"fmt"
	"math"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"coordattack/internal/rng"
)

// netSalt derives the peer-network fault stream from the seed, on its
// own lineage so an FS and a PeerNet sharing one seed draw
// uncorrelated schedules.
const netSalt = 0x9ee7

// NetPlan is a deterministic per-request fault schedule for peer HTTP
// traffic. The zero value injects nothing; probabilities must be in
// [0, 1].
type NetPlan struct {
	// Seed roots the fault schedule; equal seeds replay equal faults
	// for the same request sequence.
	Seed uint64
	// PDrop is the per-request probability that the request never
	// reaches the peer: the caller sees a connection error, exactly
	// what a dropped SYN or a mid-flight RST produces.
	PDrop float64
	// PDelay is the per-request probability of injected latency before
	// the request is forwarded.
	PDelay float64
	// DelayFor is the injected latency; 0 with PDelay > 0 means 1ms.
	DelayFor time.Duration
}

func (p NetPlan) validate() error {
	// NaN fails every comparison, so check validity positively.
	for _, v := range []struct {
		name string
		val  float64
	}{{"PDrop", p.PDrop}, {"PDelay", p.PDelay}} {
		if !(v.val >= 0 && v.val <= 1) || math.IsNaN(v.val) {
			return fmt.Errorf("chaos: %s = %v out of [0,1]", v.name, v.val)
		}
	}
	if p.DelayFor < 0 {
		return fmt.Errorf("chaos: DelayFor = %v negative", p.DelayFor)
	}
	return nil
}

// NetStats counts the faults a PeerNet actually injected.
type NetStats struct {
	Drops    int64 // plan-drawn connection errors
	Delays   int64
	Severed  int64 // requests refused by a manual partition
	Forwards int64 // requests that reached the inner transport
}

// PeerNet is a fault-injecting http.RoundTripper for cluster peer
// traffic, the network-facing sibling of the chaos FS: plan faults are
// drawn per request from a deterministic rng stream, and Sever/Heal
// partition individual peers by host until healed — the cluster-layer
// analogue of pulling one node's network cable. Inject it via
// cluster.Options.Transport. It is safe for concurrent use; request
// indices are assigned in execution order.
type PeerNet struct {
	inner  http.RoundTripper
	plan   NetPlan
	stream rng.Stream
	op     atomic.Uint64

	mu      sync.Mutex
	severed map[string]bool // host:port → partitioned

	drops    atomic.Int64
	delays   atomic.Int64
	refused  atomic.Int64
	forwards atomic.Int64
}

// NewPeerNet wraps inner (nil means http.DefaultTransport) with plan's
// fault schedule.
func NewPeerNet(inner http.RoundTripper, plan NetPlan) (*PeerNet, error) {
	if err := plan.validate(); err != nil {
		return nil, err
	}
	if plan.DelayFor == 0 {
		plan.DelayFor = time.Millisecond
	}
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &PeerNet{
		inner:   inner,
		plan:    plan,
		stream:  rng.NewStream(rng.Mix64(plan.Seed ^ netSalt)),
		severed: make(map[string]bool),
	}, nil
}

// Sever starts a manual partition of host (a "host:port" as it appears
// in peer URLs): every request to it is refused until Heal.
func (p *PeerNet) Sever(host string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.severed[host] = true
}

// Heal ends the manual partition of host.
func (p *PeerNet) Heal(host string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.severed, host)
}

// Stats snapshots the injected-fault counters.
func (p *PeerNet) Stats() NetStats {
	return NetStats{
		Drops:    p.drops.Load(),
		Delays:   p.delays.Load(),
		Severed:  p.refused.Load(),
		Forwards: p.forwards.Load(),
	}
}

// refusedErr mimics what a real dial against a dead peer returns, so
// the cluster client's breaker path sees the error shape it sees in
// production.
func refusedErr(host string) error {
	return &net.OpError{Op: "dial", Net: "tcp", Err: fmt.Errorf("chaos: connect %s: %w", host, syscall.ECONNREFUSED)}
}

// RoundTrip applies the per-request schedule — maybe delay, maybe drop,
// refuse severed hosts — then forwards to the inner transport.
func (p *PeerNet) RoundTrip(req *http.Request) (*http.Response, error) {
	t := p.stream.Tape(p.op.Add(1), 0)
	if slow, _ := t.Bernoulli(p.plan.PDelay); slow {
		p.delays.Add(1)
		time.Sleep(p.plan.DelayFor)
	}
	host := req.URL.Host
	p.mu.Lock()
	cut := p.severed[host]
	p.mu.Unlock()
	if cut {
		p.refused.Add(1)
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, refusedErr(host)
	}
	if hit, _ := t.Bernoulli(p.plan.PDrop); hit {
		p.drops.Add(1)
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, refusedErr(host)
	}
	p.forwards.Add(1)
	return p.inner.RoundTrip(req)
}
