package chaos

import (
	"context"
	"strings"
	"testing"
	"time"

	"coordattack/internal/service"
	"coordattack/internal/store"
)

// soakSpec builds one small, fast mc job; distinct seeds mean distinct
// canonical keys, so the seed list is the distinct-work ledger the
// invariants count against.
func soakSpec(seed uint64) service.JobSpec {
	return service.JobSpec{Protocol: "s:0.5", Rounds: 2, Trials: 300, Seed: seed}
}

// settle submits one spec and waits for its job to reach a terminal
// state, returning the final status.
func settle(t *testing.T, srv *service.Server, spec service.JobSpec) *service.Status {
	t.Helper()
	st, err := srv.Submit(spec)
	if err != nil {
		t.Fatalf("submit seed %d: %v", spec.Seed, err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for !st.State.Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", st.ID, st.State)
		}
		time.Sleep(2 * time.Millisecond)
		var err error
		st, err = srv.Get(st.ID)
		if err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// TestSoakDegradeRecoverExactlyOnce is the chaos soak: a daemon whose
// store rides a fault-injected filesystem is driven through a healthy
// phase, a full disk outage, and a recovery, while the harness asserts
// the operational invariants:
//
//   - no job is lost or double-run: every submitted key settles done
//     exactly once, and coordd_engine_runs_total equals the number of
//     distinct uncached keys ever submitted;
//   - the store degrades under the outage and un-degrades without a
//     restart once the disk heals (coordd_store_recoveries_total ≥ 1);
//   - after recovery the write path works again and a full replay of
//     every spec is served from cache with zero new engine runs.
func TestSoakDegradeRecoverExactlyOnce(t *testing.T) {
	dir := t.TempDir()
	cfs, err := NewFS(store.DiskFS(), Plan{Seed: 7, PSlow: 0.05, SlowFor: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(dir, store.Options{FS: cfs, ProbeInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv := service.New(service.Config{Workers: 3, Store: st, JobTimeout: time.Minute})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Drain(ctx)
	}()

	// Phase A — healthy: distinct work runs and persists.
	var seeds []uint64
	for seed := uint64(1); seed <= 6; seed++ {
		seeds = append(seeds, seed)
		if fin := settle(t, srv, soakSpec(seed)); fin.State != service.StateDone || fin.Cached {
			t.Fatalf("phase A seed %d: state %s cached=%v", seed, fin.State, fin.Cached)
		}
	}
	if st.Degraded() {
		t.Fatal("store degraded during healthy phase")
	}
	if w := st.Stats().Writes; w != 6 {
		t.Fatalf("phase A store writes = %d, want 6", w)
	}

	// Phase B — outage: every store write fails with EIO. Jobs must
	// keep settling (store errors are advisory) and the store must
	// demote itself to read-only.
	cfs.Break()
	for seed := uint64(7); seed <= 12; seed++ {
		seeds = append(seeds, seed)
		if fin := settle(t, srv, soakSpec(seed)); fin.State != service.StateDone {
			t.Fatalf("phase B seed %d: state %s, want done despite outage", seed, fin.State)
		}
	}
	if !st.Degraded() {
		t.Fatal("store not degraded after write outage")
	}

	// Phase C — heal: the background probe must un-degrade the store
	// without any restart or operator action.
	cfs.Heal()
	recoverBy := time.Now().Add(5 * time.Second)
	for st.Degraded() {
		if time.Now().After(recoverBy) {
			t.Fatal("store still degraded 5s after disk healed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if r := st.Stats().Recoveries; r < 1 {
		t.Fatalf("store recoveries = %d, want >= 1", r)
	}
	writesBefore := st.Stats().Writes
	for seed := uint64(13); seed <= 15; seed++ {
		seeds = append(seeds, seed)
		if fin := settle(t, srv, soakSpec(seed)); fin.State != service.StateDone {
			t.Fatalf("phase C seed %d: state %s", seed, fin.State)
		}
	}
	if w := st.Stats().Writes; w <= writesBefore {
		t.Fatalf("store writes stuck at %d after recovery", w)
	}

	// Replay — every spec ever submitted answers from cache: no key was
	// lost, no work re-runs.
	for _, seed := range seeds {
		fin := settle(t, srv, soakSpec(seed))
		if fin.State != service.StateDone || !fin.Cached {
			t.Fatalf("replay seed %d: state %s cached=%v, want cached done", seed, fin.State, fin.Cached)
		}
	}

	m := srv.Metrics()
	if runs := m.EngineRuns.Load(); runs != int64(len(seeds)) {
		t.Errorf("engine runs = %d, want %d (one per distinct key, none for replays)", runs, len(seeds))
	}
	if done := m.JobsCompleted.Load(); done != int64(len(seeds)) {
		t.Errorf("jobs completed = %d, want %d", done, len(seeds))
	}
	if failed, cancelled := m.JobsFailed.Load(), m.JobsCancelled.Load(); failed != 0 || cancelled != 0 {
		t.Errorf("failed=%d cancelled=%d, want 0/0 — a job was lost", failed, cancelled)
	}
	if st.Degraded() {
		t.Error("store degraded at soak end")
	}
}

// TestEngineChaosPanicsAreIsolated drives a daemon through an engine
// fault schedule that panics every second run: the panicking jobs fail
// individually with the injected panic surfaced, the others complete,
// and the daemon keeps serving throughout.
func TestEngineChaosPanicsAreIsolated(t *testing.T) {
	eng := NewEngine(EnginePlan{PanicEvery: 2})
	srv := service.New(service.Config{Workers: 1, WrapEngine: eng.Wrap})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Drain(ctx)
	}()

	var done, failed int
	for seed := uint64(1); seed <= 4; seed++ {
		fin := settle(t, srv, soakSpec(100+seed))
		switch fin.State {
		case service.StateDone:
			done++
		case service.StateFailed:
			failed++
			if !strings.Contains(fin.Error, "chaos: injected panic") {
				t.Errorf("failed job error %q does not surface the injected panic", fin.Error)
			}
		default:
			t.Errorf("seed %d: state %s", seed, fin.State)
		}
	}
	if done != 2 || failed != 2 {
		t.Errorf("done=%d failed=%d, want 2/2 under panic-every-2", done, failed)
	}
	if got := eng.Stats().Panics; got != 2 {
		t.Errorf("injected panics = %d, want 2", got)
	}
	if got := srv.Metrics().EnginePanics.Load(); got != 2 {
		t.Errorf("recovered panics metric = %d, want 2", got)
	}
}
